package repro

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/asn"
	"repro/internal/cdn"
	"repro/internal/dnsserver"
	"repro/internal/dnswire"
	"repro/internal/king"
	"repro/internal/meridian"
	"repro/internal/netsim"
)

// TestSystemEndToEnd drives the complete CRP pipeline through its real
// interfaces: a generated world, the CDN's authoritative zone served over
// UDP, stub resolvers collecting redirections via actual DNS queries into a
// crp.Service, and finally closest-node selection and clustering validated
// against the simulator's ground truth. It is the cross-module integration
// test: dnswire ↔ dnsserver ↔ cdn ↔ netsim ↔ crp.
func TestSystemEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}

	// World.
	params := netsim.DefaultParams()
	params.NumClients = 40
	params.NumCandidates = 30
	params.NumReplicas = 120
	topo, err := netsim.Generate(params)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	network, err := cdn.New(cdn.Config{Topo: topo})
	if err != nil {
		t.Fatalf("cdn.New: %v", err)
	}
	clock := netsim.NewClock()
	backend := &dnsserver.CDNBackend{Topo: topo, CDN: network, Clock: clock}

	// Wire path.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	registry := dnsserver.NewRegistry()
	srv, err := dnsserver.Serve(pc, backend, registry)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Everyone (a sample of clients + all candidates) collects redirections
	// through real DNS queries.
	svc := crp.NewService(crp.WithWindow(10))
	epoch := time.Now()
	sample := topo.Clients()[:12]
	participants := append(append([]netsim.HostID(nil), sample...), topo.Candidates()...)

	for _, h := range participants {
		cl, err := dnsserver.NewClient(srv.Addr(), registry, h, dnsserver.WithTimeout(2*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		clock.Set(0)
		for probe := 0; probe < 10; probe++ {
			for _, name := range network.Names() {
				resp, err := cl.Query(name, dnswire.TypeA)
				if err != nil {
					cl.Close()
					t.Fatalf("query %q as host %d: %v", name, h, err)
				}
				if resp.RCode != dnswire.RCodeNoError || len(resp.Answers) == 0 {
					cl.Close()
					t.Fatalf("bad answer for %q: %v, %d records", name, resp.RCode, len(resp.Answers))
				}
				var ids []crp.ReplicaID
				for _, rec := range resp.Answers {
					a, ok := rec.Data.(*dnswire.ARecord)
					if !ok {
						cl.Close()
						t.Fatalf("non-A answer record: %v", rec)
					}
					id, ok := topo.HostByAddr(a.Addr)
					if !ok || network.IsFallback(id) {
						continue
					}
					ids = append(ids, crp.ReplicaID(topo.Host(id).Name))
				}
				if err := svc.Observe(crp.NodeID(topo.Host(h).Name), epoch.Add(clock.Now()), ids...); err != nil {
					cl.Close()
					t.Fatal(err)
				}
			}
			clock.Advance(10 * time.Minute)
		}
		cl.Close()
	}

	nodeOf := func(h netsim.HostID) crp.NodeID { return crp.NodeID(topo.Host(h).Name) }
	candidates := make([]crp.NodeID, len(topo.Candidates()))
	for i, c := range topo.Candidates() {
		candidates[i] = nodeOf(c)
	}

	// Closest-node selection through the service must clearly beat random
	// assignment on true RTT.
	evalAt := clock.Now()
	var crpSum, randSum float64
	for i, client := range sample {
		best, _, err := svc.ClosestTo(nodeOf(client), candidates)
		if err != nil {
			t.Fatalf("ClosestTo: %v", err)
		}
		chosen, ok := topo.HostByName(string(best.Node))
		if !ok {
			t.Fatalf("selected unknown node %q", best.Node)
		}
		crpSum += topo.RTTMs(client, chosen, evalAt)
		randSum += topo.RTTMs(client, topo.Candidates()[(i*7)%len(topo.Candidates())], evalAt)
	}
	if crpSum >= randSum {
		t.Errorf("CRP selection (total %.0f ms) no better than random (%.0f ms)", crpSum, randSum)
	}

	// Clustering through the service: members of multi-node clusters must be
	// closer to their centers than the population average pair.
	clusters, err := svc.ClusterAll(crp.ClusterConfig{Threshold: crp.DefaultThreshold, SecondPass: true})
	if err != nil {
		t.Fatalf("ClusterAll: %v", err)
	}
	var intraSum float64
	var intraN int
	for _, c := range clusters {
		if c.Size() < 2 {
			continue
		}
		cid, _ := topo.HostByName(string(c.Center))
		for _, m := range c.Members {
			if m == c.Center {
				continue
			}
			mid, _ := topo.HostByName(string(m))
			intraSum += topo.RTTMs(cid, mid, evalAt)
			intraN++
		}
	}
	if intraN == 0 {
		t.Fatal("no multi-node clusters formed")
	}
	var allSum float64
	var allN int
	for i := 0; i < len(participants); i++ {
		for j := i + 1; j < len(participants); j += 7 {
			allSum += topo.RTTMs(participants[i], participants[j], evalAt)
			allN++
		}
	}
	if intraSum/float64(intraN) >= allSum/float64(allN) {
		t.Errorf("intra-cluster mean RTT %.1f not below population mean %.1f",
			intraSum/float64(intraN), allSum/float64(allN))
	}

	// The King module and the ASN table operate on the same world.
	est, err := king.New(topo, topo.Candidates()[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.EstimateMs(sample[0], sample[1], evalAt); err != nil {
		t.Fatalf("king estimate: %v", err)
	}
	table, err := asn.BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Lookup(topo.Host(sample[0]).Addr); !ok {
		t.Error("ASN table missed a generated host")
	}

	// And the Meridian overlay answers queries on it too.
	overlay, err := meridian.Build(meridian.Config{Topo: topo, Members: topo.Candidates(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := overlay.ClosestTo(overlay.Members()[0], sample[0], evalAt)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Host(rec) == nil {
		t.Error("meridian recommended an unknown host")
	}
}

// TestSystemDeterministicAcrossRuns guards the repository's determinism
// guarantee at the system level: two fully independent worlds built from the
// same seed agree on redirections, similarities and clusters.
func TestSystemDeterministicAcrossRuns(t *testing.T) {
	build := func() (*netsim.Topology, *cdn.Network) {
		p := netsim.DefaultParams()
		p.NumClients = 30
		p.NumCandidates = 10
		p.NumReplicas = 60
		topo, err := netsim.Generate(p)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		network, err := cdn.New(cdn.Config{Topo: topo})
		if err != nil {
			t.Fatalf("cdn.New: %v", err)
		}
		return topo, network
	}
	topoA, cdnA := build()
	topoB, cdnB := build()

	for i, client := range topoA.Clients() {
		at := time.Duration(i) * 13 * time.Minute
		for _, name := range cdnA.Names() {
			a, err := cdnA.Redirect(name, client, at)
			if err != nil {
				t.Fatal(err)
			}
			b, err := cdnB.Redirect(name, client, at)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("redirections diverged for client %d at %v: %v vs %v", client, at, a, b)
			}
		}
		if topoA.RTTMs(client, topoA.Candidates()[0], at) != topoB.RTTMs(client, topoB.Candidates()[0], at) {
			t.Fatalf("RTTs diverged for client %d", client)
		}
	}
}
