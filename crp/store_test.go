package crp

import (
	"fmt"
	"testing"
	"time"
)

func TestShardCountDefaults(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 256}, {255, 256}, {256, 256}, {257, 512}, {1000, 1024}, {5000, 1024},
	}
	for _, c := range cases {
		if got := shardCount(c.in); got != c.want {
			t.Errorf("shardCount(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := shardCount2(1); got != 1 {
		t.Errorf("shardCount2(1) = %d, want 1 (explicit single-shard config)", got)
	}
	if got := shardCount2(5); got != 8 {
		t.Errorf("shardCount2(5) = %d, want 8", got)
	}
}

func TestStoreShardRoutingIsStableAndSpread(t *testing.T) {
	st := newStore(StoreConfig{Shards: 16}, nil)
	used := make(map[*storeShard]int)
	for i := 0; i < 512; i++ {
		id := NodeID(fmt.Sprintf("node-%04d", i))
		a, b := st.shardFor(id), st.shardFor(id)
		if a != b {
			t.Fatalf("shardFor(%q) not stable", id)
		}
		used[a]++
	}
	if len(used) < 12 {
		t.Errorf("512 ids landed on only %d of 16 shards; hash is degenerate", len(used))
	}
}

// TestStoreSnapshotReusesCleanShards pins the tentpole property: a mutation
// invalidates only its own shard's compiled sub-snapshot, so re-assembly
// reuses every other shard's slice untouched.
func TestStoreSnapshotReusesCleanShards(t *testing.T) {
	st := newStore(StoreConfig{Shards: 8}, nil)
	at := time.Unix(0, 0)
	for i := 0; i < 64; i++ {
		st.observe(NodeID(fmt.Sprintf("n-%03d", i)), func(tr *Tracker) {
			tr.Observe(at, ReplicaID(fmt.Sprintf("r%d", i%4)))
		})
	}
	before := st.snapshot()

	target := NodeID("n-017")
	dirtyIdx := -1
	for i := range st.shards {
		if &st.shards[i] == st.shardFor(target) {
			dirtyIdx = i
		}
	}
	st.observe(target, func(tr *Tracker) { tr.Observe(at.Add(time.Minute), "r9") })
	after := st.snapshot()

	if len(after.parts) != len(before.parts) {
		t.Fatalf("part count changed: %d -> %d", len(before.parts), len(after.parts))
	}
	for i := range after.parts {
		same := len(before.parts[i]) == len(after.parts[i]) &&
			(len(after.parts[i]) == 0 || &before.parts[i][0] == &after.parts[i][0])
		if i == dirtyIdx && same {
			t.Errorf("shard %d was mutated but its sub-snapshot slice was reused", i)
		}
		if i != dirtyIdx && !same {
			t.Errorf("shard %d was clean but its sub-snapshot was rebuilt", i)
		}
	}

	// The patched shard must carry the new observation.
	found := false
	for _, nv := range after.parts[dirtyIdx] {
		if nv.id == target {
			found = true
			for j, r := range nv.vec.ids {
				if r == "r9" && nv.vec.vals[j] > 0 {
					return
				}
			}
			t.Errorf("patched vector for %q lacks the new replica: %v", target, nv.vec.ids)
		}
	}
	if !found {
		t.Fatalf("node %q missing from its shard's sub-snapshot", target)
	}
}

// TestStoreSnapshotIsImmutable pins the stitched snapshot's contract: a
// snapshot handed out before a round of mutations still describes the old
// state, part for part and value for value.
func TestStoreSnapshotIsImmutable(t *testing.T) {
	st := newStore(StoreConfig{Shards: 4}, nil)
	at := time.Unix(0, 0)
	for i := 0; i < 32; i++ {
		st.observe(NodeID(fmt.Sprintf("n-%03d", i)), func(tr *Tracker) {
			tr.Observe(at, "r0")
		})
	}
	snap := st.snapshot()
	frozen := make(map[NodeID][]float64, snap.total)
	for _, part := range snap.parts {
		for _, nv := range part {
			frozen[nv.id] = append([]float64(nil), nv.vec.vals...)
		}
	}

	for i := 0; i < 32; i++ {
		st.observe(NodeID(fmt.Sprintf("n-%03d", i)), func(tr *Tracker) {
			tr.Observe(at.Add(time.Minute), "r1", "r2")
		})
	}
	st.forget("n-000")
	_ = st.snapshot() // force rebuilds on top of the old parts

	for _, part := range snap.parts {
		for _, nv := range part {
			want := frozen[nv.id]
			if len(nv.vec.vals) != len(want) {
				t.Fatalf("snapshot entry %q mutated in place: %v", nv.id, nv.vec.vals)
			}
			for j := range want {
				if nv.vec.vals[j] != want[j] {
					t.Fatalf("snapshot entry %q mutated in place: %v != %v", nv.id, nv.vec.vals, want)
				}
			}
		}
	}
}

// TestStoreForgetRebuildsShard pins the structural path: after a forget the
// shard re-collects, and the stitched snapshot no longer lists the node.
func TestStoreForgetRebuildsShard(t *testing.T) {
	st := newStore(StoreConfig{Shards: 4}, nil)
	at := time.Unix(0, 0)
	for i := 0; i < 16; i++ {
		st.observe(NodeID(fmt.Sprintf("n-%03d", i)), func(tr *Tracker) {
			tr.Observe(at, "r0")
		})
	}
	_ = st.snapshot()
	st.forget("n-007")
	snap := st.snapshot()
	if snap.total != 15 {
		t.Fatalf("snapshot total = %d after forget, want 15", snap.total)
	}
	for _, part := range snap.parts {
		for i, nv := range part {
			if nv.id == "n-007" {
				t.Fatal("forgotten node still present in stitched snapshot")
			}
			if i > 0 && part[i-1].id >= nv.id {
				t.Fatalf("sub-snapshot not sorted: %q before %q", part[i-1].id, nv.id)
			}
		}
	}
}

// TestStoreSnapshotSingleFlight pins that clean snapshots are cache hits:
// repeated assembly without mutations performs no shard recompiles.
func TestStoreSnapshotSingleFlight(t *testing.T) {
	st := newStore(StoreConfig{Shards: 4}, nil)
	at := time.Unix(0, 0)
	for i := 0; i < 16; i++ {
		st.observe(NodeID(fmt.Sprintf("n-%03d", i)), func(tr *Tracker) {
			tr.Observe(at, "r0")
		})
	}
	_ = st.snapshot()
	rebuilds := svcMetrics.shardRebuilds.Value()
	hits := svcMetrics.snapshotHits.Value()
	for i := 0; i < 5; i++ {
		_ = st.snapshot()
	}
	if got := svcMetrics.shardRebuilds.Value() - rebuilds; got != 0 {
		t.Errorf("%d shard rebuilds on clean snapshots, want 0", got)
	}
	if got := svcMetrics.snapshotHits.Value() - hits; got != 5 {
		t.Errorf("%d stitched-cache hits, want 5", got)
	}
}

// TestStoreModesAgree drives the same workload through the default sharded
// store and the single-shard full-rebuild baseline, and requires identical
// query results — the churn benchmark's comparison is only meaningful if the
// two modes are observably the same service.
func TestStoreModesAgree(t *testing.T) {
	sharded := NewService(WithWindow(10))
	single := NewServiceWithStore(StoreConfig{Shards: 1, FullRebuild: true}, WithWindow(10))
	at := time.Unix(0, 0)
	for i := 0; i < 120; i++ {
		node := NodeID(fmt.Sprintf("n-%03d", i%40))
		replica := ReplicaID(fmt.Sprintf("r%d", (i*7)%12))
		for _, svc := range []*Service{sharded, single} {
			if err := svc.Observe(node, at.Add(time.Duration(i)*time.Second), replica); err != nil {
				t.Fatal(err)
			}
		}
		if i%17 == 0 {
			sharded.Forget(node)
			single.Forget(node)
		}
	}

	a, b := sharded.Nodes(), single.Nodes()
	if len(a) != len(b) {
		t.Fatalf("node sets diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node sets diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}

	client := a[0]
	ra, err := sharded.TopK(client, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := single.TopK(client, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("TopK lengths diverge: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("TopK diverges at %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}

	ca, err := sharded.ClusterAll(ClusterConfig{Threshold: DefaultThreshold, SecondPass: true})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := single.ClusterAll(ClusterConfig{Threshold: DefaultThreshold, SecondPass: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ca) != len(cb) {
		t.Fatalf("cluster counts diverge: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].Center != cb[i].Center || len(ca[i].Members) != len(cb[i].Members) {
			t.Fatalf("cluster %d diverges: %+v vs %+v", i, ca[i], cb[i])
		}
		for j := range ca[i].Members {
			if ca[i].Members[j] != cb[i].Members[j] {
				t.Fatalf("cluster %d member %d diverges", i, j)
			}
		}
	}
}

// TestClusterVecsMatchesClusterSMF pins that the Service's vec-native SMF
// path clusters exactly like the public map-based ClusterSMF.
func TestClusterVecsMatchesClusterSMF(t *testing.T) {
	nodes := make([]Node, 0, 60)
	vecs := make([]nodeVec, 0, 60)
	for i := 0; i < 60; i++ {
		m := RatioMap{}
		for r := 0; r < 3; r++ {
			m[ReplicaID(fmt.Sprintf("g%d-r%d", i%6, r))] = float64(1 + (i+r)%4)
		}
		m = m.Normalize()
		id := NodeID(fmt.Sprintf("n-%03d", i))
		nodes = append(nodes, Node{ID: id, Map: m})
		vecs = append(vecs, nodeVec{id: id, vec: compileRatioMap(m)})
	}
	for _, cfg := range []ClusterConfig{
		{Threshold: DefaultThreshold},
		{Threshold: 0.5, SecondPass: true, Seed: 7},
		{Threshold: 0},
	} {
		want, err := ClusterSMF(nodes, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := clusterVecs(append([]nodeVec(nil), vecs...), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("cfg %+v: %d clusters vs %d", cfg, len(got), len(want))
		}
		for i := range want {
			if got[i].Center != want[i].Center || len(got[i].Members) != len(want[i].Members) {
				t.Fatalf("cfg %+v cluster %d: %+v vs %+v", cfg, i, got[i], want[i])
			}
			for j := range want[i].Members {
				if got[i].Members[j] != want[i].Members[j] {
					t.Fatalf("cfg %+v cluster %d member %d diverges", cfg, i, j)
				}
			}
		}
	}
}
