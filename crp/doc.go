// Package crp implements CDN-based Relative network Positioning (CRP), the
// approach introduced by Su, Choffnes, Bustamante and Kuzmanovic in
// "Relative Network Positioning via CDN Redirections" (IEEE ICDCS 2008).
//
// CRP estimates the relative network position of hosts without any direct
// probing. Each host passively (or with infrequent DNS lookups) records the
// CDN replica servers it is redirected to over time, summarized as a ratio
// map ν_N = ⟨(r_k, f_k), …⟩ where f_i is the fraction of redirections toward
// replica r_i. Because large CDNs redirect on network conditions, two hosts
// whose ratio maps have high cosine similarity are likely close to each
// other in the network; hosts with orthogonal maps are likely far apart.
//
// The package provides the paper's building blocks and both of its
// applications:
//
//   - Tracker accumulates redirection observations with the probe-interval
//     and window-size semantics studied in the paper's §VI (Figs. 8–9).
//   - CosineSimilarity compares ratio maps (§III-B).
//   - RankBySimilarity / TopK / SelectClosest implement closest-node
//     selection (§IV-A).
//   - ClusterSMF implements the Strongest Mappings First clustering
//     algorithm with its optional second pass (§V-B), and EvaluateClusters /
//     Summarize compute the paper's cluster-quality metrics.
//   - Service is the stand-alone positioning service sketched in §III-B,
//     answering the three query types of §IV-B for many nodes concurrently.
//
// CRP is not a general latency-prediction system: if two hosts share no
// replica servers, their similarity is zero and CRP can only report that
// they are unlikely to be near one another.
package crp
