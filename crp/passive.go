package crp

import (
	"errors"
	"strings"
	"time"
)

// Passive collection, §VI: "even this minor overhead may not be necessary
// if the service can passively monitor user-generated DNS translations
// (e.g., from Web browsing) instead of actively requesting CDN
// redirections." PassiveMonitor is that tap: it is fed every DNS answer a
// node observes (from a stub resolver hook, a packet capture, or a
// simulator), keeps only the watched CDN-accelerated names, applies the
// non-positioning-answer filter, records per-name quality for adaptive
// name selection, and feeds the surviving redirections into a Service.
type PassiveMonitor struct {
	svc      *Service
	node     NodeID
	names    map[string]bool // lowercased; empty = watch every name
	filter   func(ReplicaID) bool
	selector *NameSelector
}

// PassiveConfig parameterizes a PassiveMonitor.
type PassiveConfig struct {
	// Names restricts collection to these CDN-accelerated names
	// (case-insensitive). Empty watches everything — useful together with
	// Selector to learn which names are worth watching.
	Names []string
	// Filter, when set, flags answers that carry no positioning information
	// (the paper's example: replicas in the CDN's own domain). Flagged
	// answers are excluded from ratio maps but still counted in Selector
	// statistics.
	Filter func(ReplicaID) bool
	// Selector, when set, accumulates per-name quality statistics from the
	// observed traffic.
	Selector *NameSelector
}

// NewPassiveMonitor builds a monitor feeding observations for node into svc.
func NewPassiveMonitor(svc *Service, node NodeID, cfg PassiveConfig) (*PassiveMonitor, error) {
	if svc == nil {
		return nil, errors.New("crp: nil Service")
	}
	if node == "" {
		return nil, errors.New("crp: empty node ID")
	}
	m := &PassiveMonitor{
		svc:      svc,
		node:     node,
		names:    make(map[string]bool, len(cfg.Names)),
		filter:   cfg.Filter,
		selector: cfg.Selector,
	}
	for _, n := range cfg.Names {
		m.names[strings.ToLower(n)] = true
	}
	return m, nil
}

// ObserveDNS feeds one observed DNS translation: the queried name and the
// replica servers it resolved to at time at. It returns true when the
// observation was recorded into the node's ratio map (the name is watched
// and at least one answer survived the filter).
func (m *PassiveMonitor) ObserveDNS(at time.Time, qname string, answers ...ReplicaID) (bool, error) {
	if len(m.names) > 0 && !m.names[strings.ToLower(qname)] {
		return false, nil
	}
	kept := make([]ReplicaID, 0, len(answers))
	var flagged []bool
	if m.selector != nil {
		flagged = make([]bool, len(answers))
	}
	for i, r := range answers {
		drop := m.filter != nil && m.filter(r)
		if flagged != nil {
			flagged[i] = drop
		}
		if !drop {
			kept = append(kept, r)
		}
	}
	if m.selector != nil {
		m.selector.RecordLookup(qname, answers, flagged)
	}
	if len(kept) == 0 {
		return false, nil
	}
	if err := m.svc.Observe(m.node, at, kept...); err != nil {
		return false, err
	}
	return true, nil
}

// Node returns the node identity this monitor feeds.
func (m *PassiveMonitor) Node() NodeID { return m.node }
