package crp

import "testing"

func candidateMaps() map[NodeID]RatioMap {
	return map[NodeID]RatioMap{
		"near":    {"r1": 0.5, "r2": 0.5},
		"medium":  {"r1": 0.9, "r3": 0.1},
		"far":     {"r9": 1.0},
		"distant": {"r8": 1.0},
	}
}

func TestRankBySimilarityOrder(t *testing.T) {
	client := RatioMap{"r1": 0.5, "r2": 0.5}
	ranked := RankBySimilarity(client, candidateMaps())
	if len(ranked) != 4 {
		t.Fatalf("ranked %d candidates, want 4", len(ranked))
	}
	if ranked[0].Node != "near" || ranked[1].Node != "medium" {
		t.Errorf("order = %v", ranked)
	}
	// Zero-similarity nodes rank last, tie-broken by ID.
	if ranked[2].Node != "distant" || ranked[3].Node != "far" {
		t.Errorf("zero-sim tail = %v, want distant,far (alphabetical)", ranked[2:])
	}
	if ranked[0].Similarity < ranked[1].Similarity ||
		ranked[1].Similarity < ranked[2].Similarity {
		t.Errorf("similarities not descending: %v", ranked)
	}
}

func TestRankBySimilarityDeterministicTies(t *testing.T) {
	client := RatioMap{"r1": 1}
	cands := map[NodeID]RatioMap{
		"b": {"r1": 1},
		"a": {"r1": 1},
		"c": {"r1": 1},
	}
	for i := 0; i < 10; i++ {
		ranked := RankBySimilarity(client, cands)
		if ranked[0].Node != "a" || ranked[1].Node != "b" || ranked[2].Node != "c" {
			t.Fatalf("tie-break not deterministic: %v", ranked)
		}
	}
}

func TestTopK(t *testing.T) {
	client := RatioMap{"r1": 0.5, "r2": 0.5}
	if got := TopK(client, candidateMaps(), 2); len(got) != 2 || got[0].Node != "near" {
		t.Errorf("TopK(2) = %v", got)
	}
	if got := TopK(client, candidateMaps(), 100); len(got) != 4 {
		t.Errorf("TopK(100) returned %d", len(got))
	}
	if got := TopK(client, candidateMaps(), 0); got != nil {
		t.Errorf("TopK(0) = %v, want nil", got)
	}
	if got := TopK(client, candidateMaps(), -3); got != nil {
		t.Errorf("TopK(-3) = %v, want nil", got)
	}
}

func TestSelectClosest(t *testing.T) {
	client := RatioMap{"r1": 0.5, "r2": 0.5}
	best, ok := SelectClosest(client, candidateMaps())
	if !ok || best.Node != "near" {
		t.Errorf("SelectClosest = %+v, %v", best, ok)
	}
}

func TestSelectClosestNoSignal(t *testing.T) {
	client := RatioMap{"rz": 1}
	best, ok := SelectClosest(client, candidateMaps())
	if ok {
		t.Errorf("SelectClosest reported ok with zero similarity everywhere: %+v", best)
	}
	// It still returns a deterministic candidate so callers can fall back.
	if best.Node == "" {
		t.Error("SelectClosest returned no candidate at all")
	}

	if _, ok := SelectClosest(client, nil); ok {
		t.Error("SelectClosest over no candidates reported ok")
	}
}

func TestSelectClosestEmptyClient(t *testing.T) {
	if _, ok := SelectClosest(RatioMap{}, candidateMaps()); ok {
		t.Error("empty client map should produce no selection signal")
	}
}
