package crp

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNamespaceValid(t *testing.T) {
	cases := []struct {
		ns Namespace
		ok bool
	}{
		{DefaultNamespace, true},
		{"cdnA", true},
		{Namespace(strings.Repeat("x", MaxNamespaceBytes)), true},
		{Namespace(strings.Repeat("x", MaxNamespaceBytes+1)), false},
		{"with!sep", false},
		{"with\x00nul", false},
		{Namespace([]byte{0xff, 0xfe}), false},
		{"ünïcode", true},
	}
	for _, c := range cases {
		err := c.ns.Valid()
		if (err == nil) != c.ok {
			t.Errorf("Namespace(%q).Valid() = %v, want ok=%v", c.ns, err, c.ok)
		}
	}
}

func TestQualifySplitRoundTrip(t *testing.T) {
	// The default namespace qualifies to identity.
	if got := Qualify(DefaultNamespace, "r1"); got != "r1" {
		t.Fatalf("Qualify(default, r1) = %q", got)
	}
	q := Qualify("cdnA", "r1")
	if q != "cdnA!r1" {
		t.Fatalf("Qualify = %q, want cdnA!r1", q)
	}
	ns, r := SplitReplica(q)
	if ns != "cdnA" || r != "r1" {
		t.Fatalf("SplitReplica(%q) = %q, %q", q, ns, r)
	}
	if NamespaceOf(q) != "cdnA" || NamespaceOf("bare") != DefaultNamespace {
		t.Fatal("NamespaceOf mismatch")
	}
	// The first separator wins: the replica part may itself contain '!'.
	ns, r = SplitReplica("a!b!c")
	if ns != "a" || r != "b!c" {
		t.Fatalf("SplitReplica(a!b!c) = %q, %q", ns, r)
	}
}

func TestNamespaceViewAndList(t *testing.T) {
	m := RatioMap{
		"cdnA!r1": 0.3,
		"cdnA!r2": 0.2,
		"cdnB!r1": 0.4,
		"bare":    0.1,
	}
	if got := m.Namespaces(); len(got) != 3 || got[0] != DefaultNamespace || got[1] != "cdnA" || got[2] != "cdnB" {
		t.Fatalf("Namespaces() = %v", got)
	}
	va := m.NamespaceView("cdnA")
	if len(va) != 2 || va["cdnA!r1"] != 0.3 || va["cdnA!r2"] != 0.2 {
		t.Fatalf("NamespaceView(cdnA) = %v", va)
	}
	// The view is NOT renormalized: mass is the coverage signal.
	if got := va.Sum(); math.Abs(got-0.5) > 1e-15 {
		t.Fatalf("view mass = %v, want 0.5", got)
	}
	vd := m.NamespaceView(DefaultNamespace)
	if len(vd) != 1 || vd["bare"] != 0.1 {
		t.Fatalf("NamespaceView(default) = %v", vd)
	}
}

// randomRatioMap draws a normalized map over a shared replica pool so two
// draws overlap realistically.
func randomRatioMap(rng *rand.Rand, ns Namespace, pool, size int) RatioMap {
	m := make(RatioMap)
	for len(m) < size {
		r := Qualify(ns, ReplicaID(fmt.Sprintf("r%03d", rng.Intn(pool))))
		m[r] = float64(1+rng.Intn(100)) / 100
	}
	return m.Normalize()
}

// TestFusedCosineSingleNamespaceBitIdentical is the kernel-level back-compat
// pin: on maps holding exactly one namespace — default or named — the fused
// kernel must return the plain cosine bit for bit, whatever the weights.
func TestFusedCosineSingleNamespaceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ns := range []Namespace{DefaultNamespace, "cdnA"} {
		for i := 0; i < 500; i++ {
			a := randomRatioMap(rng, ns, 40, 1+rng.Intn(12))
			b := randomRatioMap(rng, ns, 40, 1+rng.Intn(12))
			want := CosineSimilarity(a, b)
			got, err := FusedCosineSimilarity(FusionConfig{}, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("ns=%q case %d: fused %v != plain %v (diff %g)", ns, i, got, want, got-want)
			}
			weighted, err := FusedCosineSimilarity(FusionConfig{Weights: map[Namespace]float64{ns: 0.25}}, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if weighted != want {
				t.Fatalf("ns=%q case %d: weighted single-ns fused %v != plain %v", ns, i, weighted, want)
			}
		}
	}
}

// TestCosineInMatchesFilteredMapCosine pins the namespace-scoped vector
// kernel against the map-level reference: restricting the cosine to one
// namespace equals computing the plain cosine over the NamespaceView maps.
func TestCosineInMatchesFilteredMapCosine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	namespaces := []Namespace{DefaultNamespace, "cdnA", "cdnB"}
	for i := 0; i < 300; i++ {
		a, b := make(RatioMap), make(RatioMap)
		for _, ns := range namespaces {
			for r, v := range randomRatioMap(rng, ns, 25, rng.Intn(8)) {
				a[r] = v
			}
			for r, v := range randomRatioMap(rng, ns, 25, rng.Intn(8)) {
				b[r] = v
			}
		}
		va, vb := compileRatioMap(a), compileRatioMap(b)
		for _, ns := range namespaces {
			got := cosineIn(va, vb, ns)
			want := CosineSimilarity(a.NamespaceView(ns), b.NamespaceView(ns))
			if got != want {
				t.Fatalf("case %d ns=%q: cosineIn %v != filtered map cosine %v", i, ns, got, want)
			}
		}
	}
}

// TestFusedCosineMixing verifies the coverage-weighted mix against a
// hand-computed expectation on a two-namespace pair.
func TestFusedCosineMixing(t *testing.T) {
	a := RatioMap{"cdnA!r1": 0.4, "cdnA!r2": 0.2, "cdnB!s1": 0.4}
	b := RatioMap{"cdnA!r1": 0.3, "cdnA!r3": 0.3, "cdnB!s1": 0.2, "cdnB!s2": 0.2}

	cosA := CosineSimilarity(a.NamespaceView("cdnA"), b.NamespaceView("cdnA"))
	cosB := CosineSimilarity(a.NamespaceView("cdnB"), b.NamespaceView("cdnB"))
	// Default coverage weight: min(massA, massB) per namespace.
	wA := math.Min(0.6, 0.6)
	wB := math.Min(0.4, 0.4)
	want := (wA*cosA + wB*cosB) / (wA + wB)

	got, err := FusedCosineSimilarity(FusionConfig{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("fused = %v, want %v", got, want)
	}

	// Static weights scale the coverage term per namespace.
	got2, err := FusedCosineSimilarity(FusionConfig{Weights: map[Namespace]float64{"cdnB": 3}}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want2 := (wA*cosA + 3*wB*cosB) / (wA + 3*wB)
	if math.Abs(got2-want2) > 1e-15 {
		t.Fatalf("weighted fused = %v, want %v", got2, want2)
	}

	// A zero static weight removes the namespace from the mix entirely.
	got3, err := FusedCosineSimilarity(FusionConfig{Weights: map[Namespace]float64{"cdnB": 0}}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got3 != cosA {
		t.Fatalf("cdnB-muted fused = %v, want pure cdnA cosine %v", got3, cosA)
	}
}

func TestFusionConfigValidation(t *testing.T) {
	if _, err := FusedCosineSimilarity(FusionConfig{Weights: map[Namespace]float64{"bad!ns": 1}}, RatioMap{}, RatioMap{}); err == nil {
		t.Fatal("invalid weight namespace accepted")
	}
	svc := NewService()
	if err := svc.EnableFusion(FusionConfig{}); err != nil {
		t.Fatal(err)
	}
	if !svc.FusionEnabled() {
		t.Fatal("FusionEnabled() = false after EnableFusion")
	}
	if err := svc.EnableFusion(FusionConfig{}); err == nil {
		t.Fatal("double EnableFusion accepted")
	}
}

// TestFusionCoverageOverride: a custom coverage function replaces the
// min-mass default in the mix weights.
func TestFusionCoverageOverride(t *testing.T) {
	a := RatioMap{"cdnA!r1": 0.8, "cdnB!s1": 0.2}
	b := RatioMap{"cdnA!r1": 0.5, "cdnB!s1": 0.5}
	cosA := CosineSimilarity(a.NamespaceView("cdnA"), b.NamespaceView("cdnA"))
	cosB := CosineSimilarity(a.NamespaceView("cdnB"), b.NamespaceView("cdnB"))

	flat := func(massA, massB float64) float64 { return 1 }
	got, err := FusedCosineSimilarity(FusionConfig{Coverage: flat}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := (cosA + cosB) / 2
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("flat-coverage fused = %v, want %v", got, want)
	}
}
