package crp

import (
	"sort"
	"sync"
)

// The paper's §VI observes that CDN names should not be hand-picked: a
// deployed CRP client should score each candidate CDN-accelerated name by
// the quality of the position information its redirections carry, and keep
// only the useful ones. Two signals are proposed: (a) ping the returned
// replica servers during bootstrap and keep names that resolve to
// low-latency servers, and (b) with no probing at all, drop names whose
// answers are dominated by the CDN's distant default servers (for Akamai,
// replicas with addresses in the CDN's own domain). NameSelector implements
// both.

// NameQuality summarizes how useful one CDN name's redirections are for
// relative positioning.
type NameQuality struct {
	Name string
	// Lookups is how many resolutions of the name were recorded.
	Lookups int
	// DistinctReplicas is how many different replica servers appeared.
	// A name pinned to one server carries no positioning signal.
	DistinctReplicas int
	// FilteredFraction is the fraction of answer records the caller's
	// filter rule flagged (e.g., CDN-owned-domain fallback servers).
	FilteredFraction float64
	// MedianPingMs is the median of recorded bootstrap pings to the name's
	// replicas, or 0 when none were recorded.
	MedianPingMs float64
}

type nameStats struct {
	lookups  int
	answers  int
	filtered int
	replicas map[ReplicaID]struct{}
	pings    []float64
}

// NameSelector accumulates per-name observations and selects the CDN names
// worth driving CRP with. It is safe for concurrent use.
type NameSelector struct {
	mu    sync.Mutex
	stats map[string]*nameStats
}

// NewNameSelector returns an empty selector.
func NewNameSelector() *NameSelector {
	return &NameSelector{stats: make(map[string]*nameStats)}
}

func (s *NameSelector) statsFor(name string) *nameStats {
	st, ok := s.stats[name]
	if !ok {
		st = &nameStats{replicas: make(map[ReplicaID]struct{})}
		s.stats[name] = st
	}
	return st
}

// RecordLookup records one resolution of name. flagged marks, per answer
// record, whether the caller's filter rule matched it (pass nil when no
// rule applies); flagged may be shorter than replicas.
func (s *NameSelector) RecordLookup(name string, replicas []ReplicaID, flagged []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.statsFor(name)
	st.lookups++
	for i, r := range replicas {
		st.answers++
		st.replicas[r] = struct{}{}
		if i < len(flagged) && flagged[i] {
			st.filtered++
		}
	}
}

// RecordPing records a bootstrap ping to one of name's replica servers.
func (s *NameSelector) RecordPing(name string, rttMs float64) {
	if rttMs < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.statsFor(name)
	st.pings = append(st.pings, rttMs)
}

// Qualities returns per-name summaries, sorted by name.
func (s *NameSelector) Qualities() []NameQuality {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NameQuality, 0, len(s.stats))
	for name, st := range s.stats {
		q := NameQuality{
			Name:             name,
			Lookups:          st.lookups,
			DistinctReplicas: len(st.replicas),
		}
		if st.answers > 0 {
			q.FilteredFraction = float64(st.filtered) / float64(st.answers)
		}
		if len(st.pings) > 0 {
			pings := append([]float64(nil), st.pings...)
			sort.Float64s(pings)
			q.MedianPingMs = pings[len(pings)/2]
		}
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SelectCriteria bounds which names Select keeps.
type SelectCriteria struct {
	// MaxFilteredFraction rejects names whose answers are dominated by
	// filtered (non-positioning) servers. Defaults to 0.5.
	MaxFilteredFraction float64
	// MaxMedianPingMs rejects names whose bootstrap pings show only distant
	// replicas; 0 disables the ping criterion (no-probing mode).
	MaxMedianPingMs float64
	// MinDistinctReplicas rejects names pinned to too few servers to carry
	// signal. Defaults to 2.
	MinDistinctReplicas int
}

// Select returns the names passing the criteria, sorted by name.
func (s *NameSelector) Select(c SelectCriteria) []string {
	if c.MaxFilteredFraction == 0 {
		c.MaxFilteredFraction = 0.5
	}
	if c.MinDistinctReplicas == 0 {
		c.MinDistinctReplicas = 2
	}
	var out []string
	for _, q := range s.Qualities() {
		if q.Lookups == 0 {
			continue
		}
		if q.FilteredFraction > c.MaxFilteredFraction {
			continue
		}
		if q.DistinctReplicas < c.MinDistinctReplicas {
			continue
		}
		if c.MaxMedianPingMs > 0 && q.MedianPingMs > 0 && q.MedianPingMs > c.MaxMedianPingMs {
			continue
		}
		out = append(out, q.Name)
	}
	return out
}
