package crp

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
)

// Node couples a node identity with its redirection ratio map, as input to
// clustering.
type Node struct {
	ID  NodeID
	Map RatioMap
}

// Cluster is a group of nodes believed to be mutually nearby. Members
// includes the center.
type Cluster struct {
	Center  NodeID
	Members []NodeID
}

// Size returns the number of members (including the center).
func (c Cluster) Size() int { return len(c.Members) }

// ClusterConfig parameterizes ClusterSMF.
type ClusterConfig struct {
	// Threshold is the minimum cosine similarity t for a node to join a
	// cluster. The paper studies t ∈ {0.01, 0.1, 0.5} and settles on 0.1.
	Threshold float64
	// SecondPass enables the optional pass that promotes unclustered nodes
	// to centers and groups the remaining singletons around them.
	SecondPass bool
	// Seed drives the second pass's random choice of singleton centers.
	Seed int64
}

// DefaultThreshold is the similarity threshold the paper selects (t = 0.1).
const DefaultThreshold = 0.1

// ClusterSMF clusters nodes with the paper's Strongest Mappings First
// algorithm (§V-B):
//
//  1. Cluster centers are the nodes with the strongest mappings to replica
//     servers: for every replica server, among the nodes whose dominant
//     (highest-ratio) replica it is, the node with the highest such ratio
//     becomes a center. Centers therefore emerge from the data and no
//     target cluster count is needed — the reason the paper rejects k-means.
//  2. Every remaining node is assigned to the center with the largest
//     cosine similarity if that similarity is at least Threshold; otherwise
//     it forms its own singleton cluster.
//  3. Optionally (SecondPass), unclustered nodes are promoted to centers in
//     random order and remaining singletons with similarity ≥ Threshold
//     join them.
//
// The returned clusters are sorted by decreasing size, then center ID.
// Singleton clusters are included; Summarize and the paper's accounting
// treat only clusters of size ≥ 2 as "clustered" nodes.
//
// Every ratio map is compiled to a sorted vector once up front, and the
// center-assignment pass fans out across a bounded worker pool; the
// clustering is deterministic regardless of parallelism.
func ClusterSMF(nodes []Node, cfg ClusterConfig) ([]Cluster, error) {
	return clusterSMF(nodes, cfg, nil)
}

// clusterSMF implements ClusterSMF with an injectable similarity function.
// A nil sim uses the compiled-vector kernel; tests inject the map-based
// CosineSimilarity path to assert both kernels cluster identically.
func clusterSMF(nodes []Node, cfg ClusterConfig, sim func(a, b NodeID) float64) ([]Cluster, error) {
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("crp: threshold %v outside [0,1]", cfg.Threshold)
	}
	seen := make(map[NodeID]bool, len(nodes))
	for _, n := range nodes {
		if n.ID == "" {
			return nil, errors.New("crp: node with empty ID")
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("crp: duplicate node ID %q", n.ID)
		}
		seen[n.ID] = true
	}

	// Work on a sorted copy for determinism.
	sorted := make([]Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	d := clusterData{
		ids:  make([]NodeID, len(sorted)),
		domR: make([]ReplicaID, len(sorted)),
		domF: make([]float64, len(sorted)),
	}
	for i, n := range sorted {
		d.ids[i] = n.ID
		d.domR[i], d.domF[i] = dominant(n.Map)
	}

	// simIdx scores sorted[i] against sorted[j] by index — the O(N·C)
	// assignment loop must not pay two map lookups per pair. The compiled
	// kernel backs it unless a map-based sim was injected.
	if sim == nil {
		// Compile every map once; all O(N·C) similarity work below runs on
		// the allocation-free merge-join kernel.
		vecs := make(map[NodeID]ratioVec, len(sorted))
		compiled := make([]ratioVec, len(sorted))
		parallelFor(len(sorted), func(i int) {
			compiled[i] = compileRatioMap(sorted[i].Map)
		})
		for i, n := range sorted {
			vecs[n.ID] = compiled[i]
		}
		d.sim = func(a, b NodeID) float64 { return vecs[a].cosine(vecs[b]) }
		d.simIdx = func(i, j int) float64 { return compiled[i].cosine(compiled[j]) }
	} else {
		d.sim = sim
		d.simIdx = func(i, j int) float64 { return sim(sorted[i].ID, sorted[j].ID) }
	}
	return clusterCore(d, cfg), nil
}

// clusterVecs is the Service's SMF entry point: it clusters pre-compiled
// candidate vectors (a flattened store snapshot) directly, skipping the
// per-node ratio-map clones and recompilation the []Node path pays. The
// caller guarantees unique, non-empty IDs — the store's invariant. The
// input slice is reordered in place.
func clusterVecs(vecs []nodeVec, cfg ClusterConfig) ([]Cluster, error) {
	return clusterVecsSim(vecs, cfg, plainCosine)
}

// clusterVecsSim is clusterVecs with an explicit vector-similarity kernel —
// the seam a fusion-enabled Service routes its SMF queries through.
func clusterVecsSim(vecs []nodeVec, cfg ClusterConfig, sim simFunc) ([]Cluster, error) {
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("crp: threshold %v outside [0,1]", cfg.Threshold)
	}
	sort.Slice(vecs, func(i, j int) bool { return vecs[i].id < vecs[j].id })
	d := clusterData{
		ids:  make([]NodeID, len(vecs)),
		domR: make([]ReplicaID, len(vecs)),
		domF: make([]float64, len(vecs)),
	}
	byID := make(map[NodeID]ratioVec, len(vecs))
	for i, nv := range vecs {
		d.ids[i] = nv.id
		d.domR[i], d.domF[i] = dominantVec(nv.vec)
		byID[nv.id] = nv.vec
	}
	d.sim = func(a, b NodeID) float64 { return sim(byID[a], byID[b]) }
	d.simIdx = func(i, j int) float64 { return sim(vecs[i].vec, vecs[j].vec) }
	return clusterCore(d, cfg), nil
}

// clusterData is the per-node input to clusterCore: IDs in ascending order,
// each node's dominant replica and ratio, and the similarity kernels (by
// sorted index for the O(N·C) assignment loop, by ID for the second pass).
type clusterData struct {
	ids    []NodeID
	domR   []ReplicaID // "" when the node's map is empty
	domF   []float64
	simIdx func(i, j int) float64
	sim    func(a, b NodeID) float64
}

// clusterCore runs SMF steps 1–3 over prepared clusterData. Both the
// map-based and compiled-vector front ends feed it, so the two paths cluster
// identically by construction.
func clusterCore(d clusterData, cfg ClusterConfig) []Cluster {
	sorted := d.ids
	sim, simIdx := d.sim, d.simIdx

	// Step 1: strongest mapping per replica server → centers.
	type strongest struct {
		node  NodeID
		ratio float64
	}
	best := make(map[ReplicaID]strongest)
	for i, id := range sorted {
		r, f := d.domR[i], d.domF[i]
		if r == "" {
			continue // empty map: cannot be a center
		}
		if cur, ok := best[r]; !ok || f > cur.ratio {
			best[r] = strongest{id, f}
		}
	}
	isCenter := make(map[NodeID]bool, len(best))
	for _, s := range best {
		isCenter[s.node] = true
	}

	var centers []NodeID
	var centerIdx []int // index into sorted, parallel to centers
	for i, id := range sorted {
		if isCenter[id] {
			centers = append(centers, id)
			centerIdx = append(centerIdx, i)
		}
	}

	clusters := make(map[NodeID]*Cluster, len(centers))
	for _, c := range centers {
		clusters[c] = &Cluster{Center: c, Members: []NodeID{c}}
	}

	// Step 2: assign non-centers to the most similar center above t. Each
	// node's best center is independent of the others, so the scan fans out
	// across the worker pool into a pre-sized result slice; the serial
	// stitch-up below preserves the sorted-order member append.
	type assignment struct {
		center NodeID
		sim    float64
	}
	assigned := make([]assignment, len(sorted))
	parallelFor(len(sorted), func(i int) {
		if isCenter[sorted[i]] {
			return
		}
		bestCenter, bestSim := NodeID(""), 0.0
		for ci, c := range centers {
			if s := simIdx(i, centerIdx[ci]); s > bestSim ||
				(s == bestSim && s > 0 && (bestCenter == "" || c < bestCenter)) {
				bestCenter, bestSim = c, s
			}
		}
		assigned[i] = assignment{center: bestCenter, sim: bestSim}
	})
	var singletons []NodeID
	for i, id := range sorted {
		if isCenter[id] {
			continue
		}
		a := assigned[i]
		if a.center != "" && a.sim >= cfg.Threshold && a.sim > 0 {
			cl := clusters[a.center]
			cl.Members = append(cl.Members, id)
		} else {
			singletons = append(singletons, id)
		}
	}

	// Step 3: optional second pass over the singletons.
	if cfg.SecondPass && len(singletons) > 1 {
		rng := rand.New(rand.NewPCG(uint64(cfg.Seed), 0x534d46))
		remaining := append([]NodeID(nil), singletons...)
		singletons = singletons[:0]
		for len(remaining) > 0 {
			// Pick a random unclustered node as a new center.
			i := rng.IntN(len(remaining))
			center := remaining[i]
			remaining = append(remaining[:i], remaining[i+1:]...)
			cl := &Cluster{Center: center, Members: []NodeID{center}}
			kept := remaining[:0]
			for _, id := range remaining {
				if s := sim(id, center); s >= cfg.Threshold && s > 0 {
					cl.Members = append(cl.Members, id)
				} else {
					kept = append(kept, id)
				}
			}
			remaining = kept
			clusters[center] = cl
			centers = append(centers, center)
		}
	} else {
		for _, id := range singletons {
			clusters[id] = &Cluster{Center: id, Members: []NodeID{id}}
			centers = append(centers, id)
		}
		singletons = nil
	}
	for _, id := range singletons {
		clusters[id] = &Cluster{Center: id, Members: []NodeID{id}}
		centers = append(centers, id)
	}

	out := make([]Cluster, 0, len(clusters))
	for _, c := range centers {
		cl := clusters[c]
		sort.Slice(cl.Members, func(i, j int) bool { return cl.Members[i] < cl.Members[j] })
		out = append(out, *cl)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Center < out[j].Center
	})
	return out
}

// dominant returns the replica with the highest ratio in m and that ratio,
// breaking ties toward the lexicographically smallest replica for
// determinism. An empty map yields ("", 0).
func dominant(m RatioMap) (ReplicaID, float64) {
	var bestR ReplicaID
	bestF := -1.0
	for r, f := range m {
		if f > bestF || (f == bestF && r < bestR) {
			bestR, bestF = r, f
		}
	}
	if bestF < 0 {
		return "", 0
	}
	return bestR, bestF
}

// dominantVec is dominant over a compiled vector. The IDs are sorted
// ascending, so keeping the first strict maximum reproduces dominant's
// smallest-replica tie-break exactly; the values are the same floats the
// source map holds, so the two paths agree bit for bit.
func dominantVec(v ratioVec) (ReplicaID, float64) {
	if len(v.ids) == 0 {
		return "", 0
	}
	bestI := 0
	for i := 1; i < len(v.vals); i++ {
		if v.vals[i] > v.vals[bestI] {
			bestI = i
		}
	}
	return v.ids[bestI], v.vals[bestI]
}
