package crp

import (
	"slices"
	"sort"
	"sync"
)

// NodeID identifies a participating node (a client, server or peer) in a
// CRP deployment.
type NodeID string

// Scored is a candidate node with its cosine similarity to a reference node.
type Scored struct {
	Node       NodeID
	Similarity float64
}

// RankBySimilarity orders the candidate nodes by decreasing cosine
// similarity to the client's ratio map (§IV-A: the candidate most similar to
// the client is its likely-closest node). Ties break on NodeID so rankings
// are deterministic.
//
// Candidates with zero similarity are still ranked (last): the paper's
// semantics is that CRP cannot position them relative to the client, only
// report that they are unlikely to be near it. Callers that need to
// distinguish "closest" from "unknown" should inspect Similarity.
//
// Each map is compiled to a sorted vector once, and large candidate sets are
// scored across a bounded worker pool; the returned ranking is deterministic
// regardless of parallelism.
func RankBySimilarity(client RatioMap, candidates map[NodeID]RatioMap) []Scored {
	cands := make([]nodeVec, 0, len(candidates))
	for id, m := range candidates {
		cands = append(cands, nodeVec{id: id, vec: compileRatioMap(m)})
	}
	return rankVecs(compileRatioMap(client), cands)
}

// scoredBetter reports whether a ranks strictly before b: higher similarity
// first, ties broken on NodeID. It is a total order, the source of every
// ranking's determinism.
func scoredBetter(a, b Scored) bool {
	if a.Similarity != b.Similarity {
		return a.Similarity > b.Similarity
	}
	return a.Node < b.Node
}

func scoredCmp(a, b Scored) int {
	if scoredBetter(a, b) {
		return -1
	}
	if scoredBetter(b, a) {
		return 1
	}
	return 0
}

// rankVecs is the compiled-vector ranking kernel behind RankBySimilarity and
// the Service query path. It scores candidates in parallel into a pre-sized
// slice, then sorts by decreasing similarity with NodeID tie-break, so the
// output is deterministic.
func rankVecs(client ratioVec, cands []nodeVec) []Scored {
	out := make([]Scored, len(cands))
	parallelFor(len(cands), func(i int) {
		out[i] = Scored{Node: cands[i].id, Similarity: client.cosine(cands[i].vec)}
	})
	slices.SortFunc(out, scoredCmp)
	return out
}

// simExcluded marks a candidate that must not appear in results (the query
// client itself when ranking against a shared all-node snapshot). Real
// similarities live on [0, 1], so any negative sentinel is unambiguous.
const simExcluded = -1.0

// simFunc scores a client vector against a candidate vector. The query
// surface is parameterized over it so a fusion-enabled Service can swap the
// plain cosine for the fused multi-CDN kernel without forking the selection
// and clustering machinery; plainCosine is the default.
type simFunc = func(client, cand ratioVec) float64

// plainCosine is ratioVec.cosine as a simFunc.
var plainCosine simFunc = ratioVec.cosine

// scoredScratch recycles the O(N) scoring buffers behind topVecs and
// topSnap. A Top-K query writes one Scored per candidate and keeps only k of
// them; at service scale that is megabytes of garbage per query, and under a
// query-per-few-milliseconds load the collector's assist work shows up
// directly in the query tail. The scratch slice never escapes: selectTop
// copies the k winners into its own heap before the buffer is recycled.
var scoredScratch = sync.Pool{New: func() any { return new([]Scored) }}

func getScoredScratch(n int) *[]Scored {
	buf := scoredScratch.Get().(*[]Scored)
	if cap(*buf) < n {
		*buf = make([]Scored, n)
	}
	*buf = (*buf)[:n]
	return buf
}

// topVecs scores candidates in parallel and selects the k best without
// sorting the full candidate set — O(n log k) selection instead of
// O(n log n), the difference between a Top-5 query and a full ranking at
// service scale. Candidates whose id equals exclude are skipped. The result
// is ordered and deterministic (same total order as rankVecs).
func topVecs(client ratioVec, cands []nodeVec, k int, exclude NodeID, sim simFunc) []Scored {
	if k <= 0 {
		return nil
	}
	buf := getScoredScratch(len(cands))
	defer scoredScratch.Put(buf)
	scored := *buf
	parallelFor(len(cands), func(i int) {
		if cands[i].id == exclude {
			scored[i] = Scored{Node: cands[i].id, Similarity: simExcluded}
			return
		}
		scored[i] = Scored{Node: cands[i].id, Similarity: sim(client, cands[i].vec)}
	})
	return selectTop(scored, k)
}

// topSnap is topVecs over a stitched store snapshot: it scores the per-shard
// parts without flattening them first, so the "all known nodes" query path
// adds no O(N) copy on top of the O(N) scoring pass. Candidate IDs are
// unique across parts (shards partition the node space) and selection runs
// on the same total order as topVecs, so the result is deterministic
// regardless of how the parts are laid out.
func topSnap(client ratioVec, snap storeSnap, k int, exclude NodeID, sim simFunc) []Scored {
	if k <= 0 || snap.total == 0 {
		return nil
	}
	// Flat index i maps to parts[p][i-starts[p]]; a binary search over at
	// most a few hundred offsets is noise next to one cosine.
	starts := make([]int, 0, len(snap.parts))
	off := 0
	for _, part := range snap.parts {
		starts = append(starts, off)
		off += len(part)
	}
	buf := getScoredScratch(snap.total)
	defer scoredScratch.Put(buf)
	scored := *buf
	parallelFor(snap.total, func(i int) {
		p := sort.SearchInts(starts, i+1) - 1
		nv := snap.parts[p][i-starts[p]]
		if nv.id == exclude {
			scored[i] = Scored{Node: nv.id, Similarity: simExcluded}
			return
		}
		scored[i] = Scored{Node: nv.id, Similarity: sim(client, nv.vec)}
	})
	return selectTop(scored, k)
}

// selectTop reduces a scored slice to its k best entries in ranking order,
// skipping excluded sentinels. It is shared by topVecs and topSnap.
func selectTop(scored []Scored, k int) []Scored {
	// Bounded min-heap of the k best seen: heap[0] is the worst kept, so a
	// new candidate only enters by beating it.
	heap := make([]Scored, 0, min(k, len(scored)))
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			worst := i
			if l < len(heap) && scoredBetter(heap[worst], heap[l]) {
				worst = l
			}
			if r < len(heap) && scoredBetter(heap[worst], heap[r]) {
				worst = r
			}
			if worst == i {
				return
			}
			heap[i], heap[worst] = heap[worst], heap[i]
			i = worst
		}
	}
	for _, s := range scored {
		if s.Similarity == simExcluded {
			continue
		}
		if len(heap) < k {
			heap = append(heap, s)
			// Sift up: the worst kept candidate belongs at the root.
			for i := len(heap) - 1; i > 0; {
				parent := (i - 1) / 2
				if !scoredBetter(heap[parent], heap[i]) {
					break
				}
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			}
			continue
		}
		if scoredBetter(s, heap[0]) {
			heap[0] = s
			siftDown(0)
		}
	}
	slices.SortFunc(heap, scoredCmp)
	return heap
}

// TopK returns the k candidates most similar to the client (all of them if
// k exceeds the candidate count; none if k <= 0).
func TopK(client RatioMap, candidates map[NodeID]RatioMap, k int) []Scored {
	if k <= 0 {
		return nil
	}
	ranked := RankBySimilarity(client, candidates)
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// SelectClosest returns the candidate with the highest cosine similarity to
// the client. ok is false when there are no candidates or when every
// candidate has zero similarity — the case where CRP has no positioning
// information for this client at all.
func SelectClosest(client RatioMap, candidates map[NodeID]RatioMap) (best Scored, ok bool) {
	ranked := RankBySimilarity(client, candidates)
	return bestOf(ranked)
}

// bestOf extracts the SelectClosest result from a ranking.
func bestOf(ranked []Scored) (best Scored, ok bool) {
	if len(ranked) == 0 || ranked[0].Similarity == 0 {
		if len(ranked) > 0 {
			return ranked[0], false
		}
		return Scored{}, false
	}
	return ranked[0], true
}
