package crp

import "sort"

// NodeID identifies a participating node (a client, server or peer) in a
// CRP deployment.
type NodeID string

// Scored is a candidate node with its cosine similarity to a reference node.
type Scored struct {
	Node       NodeID
	Similarity float64
}

// RankBySimilarity orders the candidate nodes by decreasing cosine
// similarity to the client's ratio map (§IV-A: the candidate most similar to
// the client is its likely-closest node). Ties break on NodeID so rankings
// are deterministic.
//
// Candidates with zero similarity are still ranked (last): the paper's
// semantics is that CRP cannot position them relative to the client, only
// report that they are unlikely to be near it. Callers that need to
// distinguish "closest" from "unknown" should inspect Similarity.
func RankBySimilarity(client RatioMap, candidates map[NodeID]RatioMap) []Scored {
	out := make([]Scored, 0, len(candidates))
	for id, m := range candidates {
		out = append(out, Scored{Node: id, Similarity: CosineSimilarity(client, m)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// TopK returns the k candidates most similar to the client (all of them if
// k exceeds the candidate count; none if k <= 0).
func TopK(client RatioMap, candidates map[NodeID]RatioMap, k int) []Scored {
	if k <= 0 {
		return nil
	}
	ranked := RankBySimilarity(client, candidates)
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}

// SelectClosest returns the candidate with the highest cosine similarity to
// the client. ok is false when there are no candidates or when every
// candidate has zero similarity — the case where CRP has no positioning
// information for this client at all.
func SelectClosest(client RatioMap, candidates map[NodeID]RatioMap) (best Scored, ok bool) {
	ranked := RankBySimilarity(client, candidates)
	if len(ranked) == 0 || ranked[0].Similarity == 0 {
		if len(ranked) > 0 {
			return ranked[0], false
		}
		return Scored{}, false
	}
	return ranked[0], true
}
