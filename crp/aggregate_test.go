package crp

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// groupByFirstByte keys every node ID that starts with "c" to a group named
// after its first two runes ("cA-77" → "cA"), and declines everything else —
// a tiny stand-in for prefix keying that keeps tests independent of netip.
func groupByFirstByte(n NodeID) (string, bool) {
	if len(n) >= 2 && n[0] == 'c' {
		return string(n[:2]), true
	}
	return "", false
}

func TestEnableAggregationValidation(t *testing.T) {
	svc := NewService()
	if err := svc.EnableAggregation(AggregatorConfig{}); err == nil {
		t.Fatal("nil KeyOf accepted")
	}
	if err := svc.EnableAggregation(AggregatorConfig{KeyOf: groupByFirstByte}); err != nil {
		t.Fatal(err)
	}
	if err := svc.EnableAggregation(AggregatorConfig{KeyOf: groupByFirstByte}); err == nil {
		t.Fatal("double enable accepted")
	}
}

// Keyed clients are absorbed into aggregates — no per-client tracker, no
// store entry — while unkeyed nodes keep the ordinary path, and both resolve
// through the same query surface.
func TestAggregationAbsorbsKeyedClients(t *testing.T) {
	base := time.Unix(5_000, 0)
	svc := NewService()
	if err := svc.EnableAggregation(AggregatorConfig{KeyOf: groupByFirstByte}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		if err := svc.Observe(NodeID(fmt.Sprintf("cA-%d", i)), base, "R1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Observe("server-1", base, "R1"); err != nil {
		t.Fatal(err)
	}

	if got := svc.Nodes(); len(got) != 1 || got[0] != "server-1" {
		t.Fatalf("store nodes = %v; aggregated clients must not reach the store", got)
	}
	info := svc.AggregateInfo()
	if !info.Enabled || info.Groups != 1 {
		t.Fatalf("AggregateInfo = %+v, want 1 group", info)
	}
	if info.StateBytes <= 0 {
		t.Fatalf("state bytes proxy = %d, want > 0", info.StateBytes)
	}

	// A member resolves through its aggregate: its ratio map is the group's.
	m, err := svc.RatioMap("cA-3")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m["R1"] < 0.999 {
		t.Fatalf("aggregated ratio map = %v, want {R1: 1}", m)
	}
	if sim, err := svc.Similarity("cA-3", "server-1"); err != nil || sim < 0.999 {
		t.Fatalf("Similarity = %v, %v; want ~1", sim, err)
	}
	// Aggregated clients are valid explicit candidates too.
	if best, ok, err := svc.ClosestTo("server-1", []NodeID{"cA-7"}); err != nil || !ok || best.Node != "cA-7" {
		t.Fatalf("ClosestTo with aggregated candidate = %+v, %v, %v", best, ok, err)
	}
}

// A keyed client whose prefix has no aggregate yet (never observed) is
// unknown — the fallback chain ends at ErrUnknownNode, not a zero vector.
func TestAggregationAbsentClientIsUnknown(t *testing.T) {
	svc := NewService()
	if err := svc.EnableAggregation(AggregatorConfig{KeyOf: groupByFirstByte}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Observe("cA-1", time.Unix(5_000, 0), "R1"); err != nil {
		t.Fatal(err)
	}

	// cZ-9 is keyed but its group has never seen a probe.
	if _, err := svc.RatioMap("cZ-9"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("RatioMap(absent) err = %v, want ErrUnknownNode", err)
	}
	if _, _, err := svc.ClosestTo("cZ-9", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("ClosestTo(absent) err = %v, want ErrUnknownNode", err)
	}
	if _, err := svc.TopK("cA-1", []NodeID{"cZ-9"}, 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("TopK with absent candidate err = %v, want ErrUnknownNode", err)
	}
}

// Invalidating an aggregate while queries are in flight must be clean: every
// concurrent query either sees the old group or a fresh miss
// (ErrUnknownNode), never a torn vector. Run under -race via make check.
func TestAggregateInvalidatedMidQuery(t *testing.T) {
	base := time.Unix(5_000, 0)
	svc := NewService()
	if err := svc.EnableAggregation(AggregatorConfig{KeyOf: groupByFirstByte}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Observe("server-1", base, "R1"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Observe("server-2", base, "R2"); err != nil {
		t.Fatal(err)
	}
	seed := func() {
		for i := 0; i < 20; i++ {
			if err := svc.Observe("cA-1", base.Add(time.Duration(i)*time.Second), "R1"); err != nil {
				t.Error(err)
			}
		}
	}
	seed()

	key, ok := groupByFirstByte("cA-1")
	if !ok {
		t.Fatal("test key func declined cA-1")
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				best, ok, err := svc.ClosestTo("cA-1", []NodeID{"server-1", "server-2"})
				switch {
				case err == nil:
					if !ok || best.Node != "server-1" {
						t.Errorf("ClosestTo = %+v, %v; want server-1", best, ok)
						return
					}
				case errors.Is(err, ErrUnknownNode):
					// The invalidation window: a clean miss.
				default:
					t.Errorf("ClosestTo err = %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if !svc.InvalidateAggregate(key) && svc.AggregateInfo().Groups != 0 {
			t.Errorf("invalidate %d: group neither dropped nor absent", i)
		}
		seed() // recreate the group
	}
	close(stop)
	wg.Wait()

	if svc.InvalidateAggregate("no-such-key") {
		t.Fatal("invalidating an unknown key reported true")
	}
}

// A monitored client whose redirections disagree with its group is demoted:
// its divergence reservoir seeds a real per-client tracker, later probes land
// there, and queries prefer it over the aggregate.
func TestDivergentClientDemoted(t *testing.T) {
	base := time.Unix(5_000, 0)
	svc := NewService()
	err := svc.EnableAggregation(AggregatorConfig{
		KeyOf:         groupByFirstByte,
		MonitorEvery:  1, // monitor everyone: the test drives one divergent client
		MonitorProbes: 4,
		MinAgreement:  0.5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The group's consensus: many siblings all redirected to R1.
	for i := 0; i < 10; i++ {
		for j := 0; j < 5; j++ {
			if err := svc.Observe(NodeID(fmt.Sprintf("cA-s%d", i)), base, "R1"); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The divergent client sees only R9. Its first probes are absorbed while
	// the reservoir fills; once full, the disagreement demotes it.
	div := NodeID("cA-div")
	for i := 0; i < 8; i++ {
		if err := svc.Observe(div, base.Add(time.Duration(i)*time.Second), "R9"); err != nil {
			t.Fatal(err)
		}
		if svc.AggregateInfo().Demoted > 0 {
			break
		}
	}
	info := svc.AggregateInfo()
	if info.Demoted != 1 {
		t.Fatalf("demoted = %d, want 1 (info %+v)", info.Demoted, info)
	}

	// The demoted client has a per-client tracker seeded from its reservoir:
	// its ratio map is pure R9, not the group's R1.
	m, err := svc.RatioMap(div)
	if err != nil {
		t.Fatal(err)
	}
	if m["R9"] < 0.999 {
		t.Fatalf("demoted client's ratio map = %v, want {R9: 1}", m)
	}

	// Later probes keep landing per-client.
	before := len(svc.Nodes())
	if err := svc.Observe(div, base.Add(time.Hour), "R9"); err != nil {
		t.Fatal(err)
	}
	if got := len(svc.Nodes()); got != before {
		t.Fatalf("post-demotion observe changed store membership %d -> %d", before, got)
	}
	// Siblings still resolve through the aggregate, dominated by R1. The
	// divergent client's pre-demotion probes were absorbed while its
	// reservoir filled, so a small R9 residue is expected — bounded by
	// MonitorProbes per divergent client and decayed away over time.
	sib, err := svc.RatioMap("cA-s0")
	if err != nil {
		t.Fatal(err)
	}
	if sib["R1"] < 0.9 || sib["R1"] <= sib["R9"] {
		t.Fatalf("sibling ratio map = %v, want R1-dominated", sib)
	}
}

// On a clean topology — every client in a prefix behaves identically — the
// aggregate answers the closest-node query exactly as per-client tracking
// would: quantized group maps preserve the argmax.
func TestAggregateMatchesPerClientOnCleanTopology(t *testing.T) {
	base := time.Unix(5_000, 0)
	perClient := NewService()
	aggregated := NewService()
	if err := aggregated.EnableAggregation(AggregatorConfig{KeyOf: groupByFirstByte}); err != nil {
		t.Fatal(err)
	}

	// Three candidate servers with distinct replica affinities, per-client
	// tracked on both services (symbolic names: KeyOf declines them).
	profiles := map[NodeID][]ReplicaID{
		"server-1": {"R1", "R1", "R1", "R2"},
		"server-2": {"R2", "R2", "R2", "R3"},
		"server-3": {"R3", "R3", "R3", "R1"},
	}
	candidates := []NodeID{"server-1", "server-2", "server-3"}
	// Three client prefixes, each behaving like one server's profile.
	behavior := map[string]NodeID{"cA": "server-1", "cB": "server-2", "cC": "server-3"}

	for _, svc := range []*Service{perClient, aggregated} {
		for node, reps := range profiles {
			for i, r := range reps {
				if err := svc.Observe(node, base.Add(time.Duration(i)*time.Second), r); err != nil {
					t.Fatal(err)
				}
			}
		}
		for pfx, like := range behavior {
			for c := 0; c < 6; c++ {
				client := NodeID(fmt.Sprintf("%s-%d", pfx, c))
				for i, r := range profiles[like] {
					at := base.Add(time.Duration(c*10+i) * time.Second)
					if err := svc.Observe(client, at, r); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}

	for pfx, want := range behavior {
		for c := 0; c < 6; c++ {
			client := NodeID(fmt.Sprintf("%s-%d", pfx, c))
			pBest, pOK, err := perClient.ClosestTo(client, candidates)
			if err != nil || !pOK {
				t.Fatalf("per-client ClosestTo(%s): %v, %v", client, pOK, err)
			}
			aBest, aOK, err := aggregated.ClosestTo(client, candidates)
			if err != nil || !aOK {
				t.Fatalf("aggregated ClosestTo(%s): %v, %v", client, aOK, err)
			}
			if pBest.Node != want {
				t.Fatalf("per-client baseline off: ClosestTo(%s) = %v, want %v", client, pBest.Node, want)
			}
			if aBest.Node != pBest.Node {
				t.Fatalf("aggregate disagrees with per-client: ClosestTo(%s) = %v, want %v",
					client, aBest.Node, pBest.Node)
			}
		}
	}

	// TopK order agrees too.
	for pfx := range behavior {
		client := NodeID(pfx + "-0")
		pTop, err := perClient.TopK(client, candidates, 3)
		if err != nil {
			t.Fatal(err)
		}
		aTop, err := aggregated.TopK(client, candidates, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(pTop) != len(aTop) {
			t.Fatalf("TopK lengths differ: %d vs %d", len(pTop), len(aTop))
		}
		for i := range pTop {
			if pTop[i].Node != aTop[i].Node {
				t.Fatalf("TopK(%s) rank %d: per-client %v, aggregate %v", client, i, pTop[i].Node, aTop[i].Node)
			}
		}
	}

	// SameCluster positions an aggregated client via its most similar
	// tracked node's cluster.
	cfg := ClusterConfig{Threshold: 0.1}
	members, err := aggregated.SameCluster("cA-0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range members {
		if m == "server-1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("SameCluster(cA-0) = %v, want server-1 among members", members)
	}
}

func TestPrefixKeyFunc(t *testing.T) {
	keyOf := PrefixKeyFunc(24)
	if key, ok := keyOf("10.1.2.77"); !ok || key != "10.1.2.0/24" {
		t.Fatalf("PrefixKeyFunc(10.1.2.77) = %q, %v", key, ok)
	}
	if key, ok := keyOf("10.1.3.4"); !ok || key != "10.1.3.0/24" {
		t.Fatalf("PrefixKeyFunc(10.1.3.4) = %q, %v", key, ok)
	}
	if _, ok := keyOf("server-1"); ok {
		t.Fatal("symbolic ID keyed")
	}
	if _, ok := keyOf("2001:db8::1"); ok {
		t.Fatal("IPv6 keyed by an IPv4 prefix func")
	}
	if key, ok := PrefixKeyFunc(16)("10.1.2.77"); !ok || key != "10.1.0.0/16" {
		t.Fatalf("PrefixKeyFunc/16 = %q, %v", key, ok)
	}
}
