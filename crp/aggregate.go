package crp

import (
	"errors"
	"math"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The aggregation plane collapses per-client tracker entries into per-prefix
// aggregate ratio maps, the million-client scaling move the paper's §III-B
// service shape needs: clients behind the same routing prefix (or LDNS) see
// near-identical redirection behaviour (Gürsun's routing-aware partitioning,
// PAPERS.md), so one aggregate entry can answer positioning queries for
// thousands of clients. The representation is deliberately compact — replica
// IDs interned to uint32s, per-group weights in SoA slices instead of
// per-node maps, served vectors quantized to 16-bit steps — so aggregate
// state is bounded by (prefixes x replicas-per-prefix), not by client count.
//
// Divergent clients are the accuracy escape hatch: a deterministic 1-in-N
// sample of clients keeps a small probe reservoir, and a sampled client
// whose recent redirections disagree with its group's map (cosine below
// MinAgreement) is demoted to an ordinary per-client tracker, seeded from
// the reservoir. Queries resolve per-client state first and fall back to
// the aggregate, so demotion is transparent to callers. DESIGN.md §10
// develops the design and its limits (aggregates are a local ingest
// compaction: they are not replicated by the peering plane and not
// persisted by WriteSnapshot).

// AggregatorConfig shapes the Service's aggregation plane; see
// Service.EnableAggregation.
type AggregatorConfig struct {
	// KeyOf maps a node to its aggregation key (e.g. the routing prefix
	// covering its address). Nodes for which ok is false — candidate
	// servers with symbolic names, typically — always get per-client
	// trackers. Required; must be safe for concurrent use.
	KeyOf func(NodeID) (string, bool)
	// MinAgreement is the cosine agreement below which a monitored client
	// is demoted to per-client tracking. Default 0.5.
	MinAgreement float64
	// MonitorEvery samples 1-in-N keyed clients (deterministically, by ID
	// hash) for divergence monitoring; 1 monitors every client. Default 64.
	MonitorEvery int
	// MonitorProbes is the per-monitored-client probe reservoir length used
	// for the divergence check (and for seeding the tracker on demotion).
	// Default 8.
	MonitorProbes int
	// DecayProbes halves a group's accumulated weights every time its probe
	// count reaches this bound, so old redirection history fades instead of
	// dominating forever (the windowing analogue of WithWindow at aggregate
	// granularity). Default 4096.
	DecayProbes int
}

func (c *AggregatorConfig) setDefaults() {
	if c.MinAgreement <= 0 {
		c.MinAgreement = 0.5
	}
	if c.MonitorEvery <= 0 {
		c.MonitorEvery = 64
	}
	if c.MonitorProbes <= 0 {
		c.MonitorProbes = 8
	}
	if c.DecayProbes <= 0 {
		c.DecayProbes = 4096
	}
}

// AggregateInfo is a point-in-time summary of the aggregation plane's state.
type AggregateInfo struct {
	Enabled  bool
	Groups   int64 // live aggregate ratio maps
	Demoted  int64 // clients demoted to per-client tracking
	Monitors int64 // clients under divergence monitoring
	Interned int64 // distinct replica IDs in the intern table
	// StateBytes is the plane's bookkeeping estimate of its own footprint
	// (groups, monitors, demotion set, intern table) — the RSS proxy the
	// scale bench and the daemon's stats op report.
	StateBytes int64
}

// Aggregation-plane instruments, process-wide like svcMetrics. The fallback
// ppm gauge is derived from the hit/fallback counters on every resolution so
// the daemon's stats op can report the ratio without arithmetic client-side.
var aggMetrics = struct {
	observes   *obs.Counter // probes absorbed into an aggregate
	hits       *obs.Counter // client resolutions served from an aggregate
	fallbacks  *obs.Counter // keyed-client resolutions served per-client
	demotions  *obs.Counter
	groups     *obs.Gauge
	demoted    *obs.Gauge
	monitors   *obs.Gauge
	interned   *obs.Gauge
	stateBytes *obs.Gauge
	fallback   *obs.Gauge // fallbacks-per-million resolutions
}{
	observes:   obs.Default().Counter("crp.aggregate.observes"),
	hits:       obs.Default().Counter("crp.aggregate.hits"),
	fallbacks:  obs.Default().Counter("crp.aggregate.fallbacks"),
	demotions:  obs.Default().Counter("crp.aggregate.demotions"),
	groups:     obs.Default().Gauge("crp.aggregate.groups"),
	demoted:    obs.Default().Gauge("crp.aggregate.demoted"),
	monitors:   obs.Default().Gauge("crp.aggregate.monitors"),
	interned:   obs.Default().Gauge("crp.aggregate.interned"),
	stateBytes: obs.Default().Gauge("crp.aggregate.state_bytes"),
	fallback:   obs.Default().Gauge("crp.aggregate.fallback_ppm"),
}

// noteResolution updates the hit/fallback counters and the derived ppm gauge.
func noteResolution(fallback bool) {
	if fallback {
		aggMetrics.fallbacks.Inc()
	} else {
		aggMetrics.hits.Inc()
	}
	f := aggMetrics.fallbacks.Value()
	total := f + aggMetrics.hits.Value()
	aggMetrics.fallback.Set(int64(f * 1_000_000 / total))
}

const (
	aggShardCount = 64 // fixed power of two; aggregation keys hash here
	// aggRecompileEvery bounds served-vector staleness: a group's cached
	// compiled vector is reused until this many probes have landed since it
	// was built. Positioning ratios move slowly (one probe shifts a
	// 4096-probe group by <0.03%), so queries stay allocation-free under
	// continuous ingest instead of recompiling per mutation.
	aggRecompileEvery = 16
	// aggQuantSteps is the quantization grid of served weights: ratios are
	// snapped to 1/65535 steps before normalization, which is what lets the
	// weights live in 16 bits when serialized and bounds the accuracy cost
	// of the compact representation.
	aggQuantSteps = 65535
)

// internTable interns replica IDs to dense uint32s, shared by every group so
// each distinct replica name is stored once process-wide.
type internTable struct {
	mu    sync.RWMutex
	idx   map[ReplicaID]uint32
	names []ReplicaID
}

func (it *internTable) intern(r ReplicaID) uint32 {
	it.mu.RLock()
	i, ok := it.idx[r]
	it.mu.RUnlock()
	if ok {
		return i
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	if i, ok := it.idx[r]; ok {
		return i
	}
	i = uint32(len(it.names))
	it.names = append(it.names, r)
	it.idx[r] = i
	aggMetrics.interned.Set(int64(len(it.names)))
	return i
}

func (it *internTable) name(i uint32) ReplicaID {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return it.names[i]
}

func (it *internTable) size() int {
	it.mu.RLock()
	defer it.mu.RUnlock()
	return len(it.names)
}

// aggGroup is one aggregate ratio map in SoA form: interned replica IDs
// sorted ascending with their accumulated weights alongside — no per-node
// map, no per-probe history. version counts mutations; the served compiled
// vector is cached until aggRecompileEvery probes of staleness.
type aggGroup struct {
	ids    []uint32
	w      []float32
	probes uint64
	total  float64 // accumulated probe weight (decays with the weights)

	version    uint64
	vec        ratioVec
	vecVersion uint64
	vecValid   bool
}

// add absorbs one probe: total weight 1 split evenly across its replicas,
// matching Tracker's per-probe weighting so aggregate and per-client maps
// live on the same scale.
func (g *aggGroup) add(interned []uint32, decayAt int) {
	per := float32(1) / float32(len(interned))
	for _, id := range interned {
		pos := sort.Search(len(g.ids), func(i int) bool { return g.ids[i] >= id })
		if pos < len(g.ids) && g.ids[pos] == id {
			g.w[pos] += per
			continue
		}
		g.ids = append(g.ids, 0)
		g.w = append(g.w, 0)
		copy(g.ids[pos+1:], g.ids[pos:])
		copy(g.w[pos+1:], g.w[pos:])
		g.ids[pos], g.w[pos] = id, per
	}
	g.probes++
	g.total++
	g.version++
	if decayAt > 0 && g.probes >= uint64(decayAt) {
		g.decay()
	}
}

// decay halves every weight and prunes entries that have faded to noise, so
// a group tracks the current mapping epoch instead of its whole history and
// its SoA slices cannot grow without bound under replica churn.
func (g *aggGroup) decay() {
	kept := 0
	for i := range g.ids {
		w := g.w[i] * 0.5
		if w < 1e-4 {
			continue
		}
		g.ids[kept], g.w[kept] = g.ids[i], w
		kept++
	}
	g.ids, g.w = g.ids[:kept], g.w[:kept]
	g.probes /= 2
	g.total *= 0.5
	g.version++
}

// cosineCounts is the divergence kernel: cosine between the group's raw
// weights and a monitored client's reservoir counts, merge-joined in
// interned-ID space (both sides sorted ascending). No allocation.
func (g *aggGroup) cosineCounts(ids []uint32, counts []float32) float64 {
	dot, na, nb := 0.0, 0.0, 0.0
	for _, w := range g.w {
		na += float64(w) * float64(w)
	}
	for _, c := range counts {
		nb += float64(c) * float64(c)
	}
	i, j := 0, 0
	for i < len(g.ids) && j < len(ids) {
		switch {
		case g.ids[i] < ids[j]:
			i++
		case g.ids[i] > ids[j]:
			j++
		default:
			dot += float64(g.w[i]) * float64(counts[j])
			i++
			j++
		}
	}
	if dot == 0 || na == 0 || nb == 0 {
		return 0
	}
	sim := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if sim > 1 {
		return 1
	}
	return sim
}

// compileLocked rebuilds the served vector if it is stale: weights quantized
// to the aggQuantSteps grid, renormalized, sorted by replica name so the
// result merge-joins against per-client ratioVecs. Caller holds the shard
// lock.
func (g *aggGroup) compileLocked(it *internTable) ratioVec {
	if g.vecValid && g.version-g.vecVersion < aggRecompileEvery {
		return g.vec
	}
	var wmax float32
	for _, w := range g.w {
		if w > wmax {
			wmax = w
		}
	}
	type pair struct {
		name ReplicaID
		q    uint32
	}
	pairs := make([]pair, 0, len(g.ids))
	sumQ := uint64(0)
	for i, id := range g.ids {
		q := uint32(math.Round(float64(g.w[i]) / float64(wmax) * aggQuantSteps))
		if q == 0 {
			continue
		}
		pairs = append(pairs, pair{it.name(id), q})
		sumQ += uint64(q)
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].name < pairs[b].name })
	ids := make([]ReplicaID, len(pairs))
	vals := make([]float64, len(pairs))
	s := 0.0
	for i, p := range pairs {
		ids[i] = p.name
		v := float64(p.q) / float64(sumQ)
		vals[i] = v
		s += v * v
	}
	g.vec = ratioVec{ids: ids, vals: vals, norm: math.Sqrt(s)}
	g.vecVersion, g.vecValid = g.version, true
	return g.vec
}

// aggMonitor is the divergence reservoir of one sampled client: its last
// MonitorProbes probes, interned, with timestamps so demotion can seed the
// per-client tracker.
type aggMonitor struct {
	probes []monProbe // ring, oldest first once full
	next   int
	full   bool
}

type monProbe struct {
	at  time.Time
	ids []uint32
}

func (m *aggMonitor) push(p monProbe, cap int) {
	if len(m.probes) < cap {
		m.probes = append(m.probes, p)
		return
	}
	m.probes[m.next] = p
	m.next = (m.next + 1) % len(m.probes)
	m.full = true
}

// chronological returns the reservoir oldest-first.
func (m *aggMonitor) chronological() []monProbe {
	out := make([]monProbe, 0, len(m.probes))
	out = append(out, m.probes[m.next:]...)
	out = append(out, m.probes[:m.next]...)
	return out
}

// counts folds the reservoir into per-replica counts in interned-ID space
// (sorted ascending), each probe contributing weight 1 split across its
// replicas — the same scale aggGroup accumulates on.
func (m *aggMonitor) counts() ([]uint32, []float32) {
	ids := make([]uint32, 0, 8)
	counts := make([]float32, 0, 8)
	for _, p := range m.probes {
		per := float32(1) / float32(len(p.ids))
		for _, id := range p.ids {
			pos := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
			if pos < len(ids) && ids[pos] == id {
				counts[pos] += per
				continue
			}
			ids = append(ids, 0)
			counts = append(counts, 0)
			copy(ids[pos+1:], ids[pos:])
			copy(counts[pos+1:], counts[pos:])
			ids[pos], counts[pos] = id, per
		}
	}
	return ids, counts
}

// aggShard owns one partition of the aggregation key space: its groups, the
// monitored clients whose keys hash here, and the demotion set.
type aggShard struct {
	mu       sync.Mutex
	groups   map[string]*aggGroup
	monitors map[NodeID]*aggMonitor
	demoted  map[NodeID]struct{}
}

// aggregator is the aggregation plane of one Service.
type aggregator struct {
	cfg    AggregatorConfig
	intern internTable
	shards [aggShardCount]aggShard

	// bytes is the running footprint estimate (the RSS proxy): slice slots,
	// map entries and interned names are charged as they are created.
	bytes    atomic.Int64
	groupsN  atomic.Int64
	demotedN atomic.Int64
	monitorN atomic.Int64
}

func newAggregator(cfg AggregatorConfig) *aggregator {
	cfg.setDefaults()
	a := &aggregator{cfg: cfg}
	a.intern.idx = make(map[ReplicaID]uint32)
	for i := range a.shards {
		a.shards[i].groups = make(map[string]*aggGroup)
		a.shards[i].monitors = make(map[NodeID]*aggMonitor)
		a.shards[i].demoted = make(map[NodeID]struct{})
	}
	return a
}

// Footprint estimates charged to the bytes gauge. They deliberately
// overcount a little (map buckets amortized per entry) so the proxy bounds
// real usage from above rather than flattering it.
const (
	aggGroupBytes   = 144 // struct + map entry + slice headers
	aggSlotBytes    = 8   // one (uint32 id, float32 weight) SoA slot
	aggMonitorBytes = 112 // struct + map entry
	aggProbeBytes   = 48  // monProbe header + a few interned IDs
	aggDemotedBytes = 56  // map entry + ID string
	aggInternBytes  = 40  // name string + map entry + slice slot
)

func (a *aggregator) addBytes(n int64) {
	aggMetrics.stateBytes.Set(a.bytes.Add(n))
}

func fnvKey(key string) uint32 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

func (a *aggregator) shardFor(key string) *aggShard {
	return &a.shards[fnvKey(key)&(aggShardCount-1)]
}

// monitored reports whether node is in the deterministic 1-in-MonitorEvery
// divergence sample.
func (a *aggregator) monitored(node NodeID) bool {
	if a.cfg.MonitorEvery <= 1 {
		return true
	}
	return fnvKey(string(node))%uint32(a.cfg.MonitorEvery) == 0
}

// aggRoute says where Service.Observe should send a probe after consulting
// the aggregation plane.
type aggRoute int

const (
	aggUnkeyed   aggRoute = iota // KeyOf declined: ordinary per-client path
	aggAbsorbed                  // probe absorbed into an aggregate; done
	aggPerClient                 // demoted client: per-client path (+ seeds on the demoting probe)
)

// probeSeed is one reservoir probe released on demotion, replayed into the
// client's fresh per-client tracker.
type probeSeed struct {
	at       time.Time
	replicas []ReplicaID
}

// observe routes one probe through the aggregation plane. For keyed,
// non-demoted clients the probe is absorbed into the client's aggregate
// group (creating it on first sight); sampled clients additionally maintain
// their divergence reservoir, and a reservoir that disagrees with the group
// demotes the client, returning its probes as seeds for the per-client
// tracker (the demoting probe included — it is not absorbed).
func (a *aggregator) observe(node NodeID, at time.Time, replicas []ReplicaID) (aggRoute, []probeSeed) {
	key, ok := a.cfg.KeyOf(node)
	if !ok {
		return aggUnkeyed, nil
	}
	interned := make([]uint32, len(replicas))
	for i, r := range replicas {
		interned[i] = a.intern.intern(r)
	}

	sh := a.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, demoted := sh.demoted[node]; demoted {
		return aggPerClient, nil
	}
	g := sh.groups[key]
	if g == nil {
		g = &aggGroup{}
		sh.groups[key] = g
		aggMetrics.groups.Set(a.groupsN.Add(1))
		a.addBytes(aggGroupBytes + int64(len(key)))
	}

	if a.monitored(node) {
		m := sh.monitors[node]
		if m == nil {
			m = &aggMonitor{}
			sh.monitors[node] = m
			aggMetrics.monitors.Set(a.monitorN.Add(1))
			a.addBytes(aggMonitorBytes + int64(len(node)))
		}
		if len(m.probes) < a.cfg.MonitorProbes {
			a.addBytes(aggProbeBytes)
		}
		m.push(monProbe{at: at, ids: interned}, a.cfg.MonitorProbes)
		// Divergence is only meaningful once the reservoir is full and the
		// group holds more history than this client alone could have
		// contributed to it.
		if m.full && g.probes > uint64(2*a.cfg.MonitorProbes) {
			ids, counts := m.counts()
			if g.cosineCounts(ids, counts) < a.cfg.MinAgreement {
				seeds := make([]probeSeed, 0, len(m.probes))
				for _, p := range m.chronological() {
					names := make([]ReplicaID, len(p.ids))
					for i, id := range p.ids {
						names[i] = a.intern.name(id)
					}
					seeds = append(seeds, probeSeed{at: p.at, replicas: names})
				}
				delete(sh.monitors, node)
				aggMetrics.monitors.Set(a.monitorN.Add(-1))
				a.addBytes(-int64(aggMonitorBytes + len(node) + len(seeds)*aggProbeBytes))
				sh.demoted[node] = struct{}{}
				aggMetrics.demoted.Set(a.demotedN.Add(1))
				a.addBytes(aggDemotedBytes + int64(len(node)))
				aggMetrics.demotions.Inc()
				return aggPerClient, seeds
			}
		}
	}

	slots := len(g.ids)
	g.add(interned, a.cfg.DecayProbes)
	if grew := len(g.ids) - slots; grew != 0 {
		a.addBytes(int64(grew) * aggSlotBytes)
	}
	aggMetrics.observes.Inc()
	return aggAbsorbed, nil
}

// vecFor resolves a client to its aggregate's served vector. ok is false for
// unkeyed clients, demoted clients (their per-client tracker is
// authoritative) and keys with no aggregate.
func (a *aggregator) vecFor(node NodeID) (ratioVec, bool) {
	key, ok := a.cfg.KeyOf(node)
	if !ok {
		return ratioVec{}, false
	}
	sh := a.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, demoted := sh.demoted[node]; demoted {
		return ratioVec{}, false
	}
	g := sh.groups[key]
	if g == nil || len(g.ids) == 0 {
		return ratioVec{}, false
	}
	// The compiled vector's slices are freshly allocated per compile and
	// never mutated afterwards, so returning it past the lock is safe.
	return g.compileLocked(&a.intern), true
}

// keyed reports whether the aggregation plane claims node (used for
// fallback-ratio accounting on the query path).
func (a *aggregator) keyed(node NodeID) bool {
	_, ok := a.cfg.KeyOf(node)
	return ok
}

// invalidate drops the aggregate group for key, returning whether one
// existed. Member clients fall back to per-client state (demoted clients)
// or, until re-observed, to ErrUnknownNode — queries racing an invalidation
// see either the old vector or a clean miss, never a torn one.
func (a *aggregator) invalidate(key string) bool {
	sh := a.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	g, ok := sh.groups[key]
	if !ok {
		return false
	}
	delete(sh.groups, key)
	aggMetrics.groups.Set(a.groupsN.Add(-1))
	a.addBytes(-int64(aggGroupBytes + len(key) + len(g.ids)*aggSlotBytes))
	return true
}

func (a *aggregator) info() AggregateInfo {
	return AggregateInfo{
		Enabled:    true,
		Groups:     a.groupsN.Load(),
		Demoted:    a.demotedN.Load(),
		Monitors:   a.monitorN.Load(),
		Interned:   int64(a.intern.size()),
		StateBytes: a.bytes.Load(),
	}
}

// PrefixKeyFunc returns a KeyOf that aggregates IPv4-addressed clients by
// their /bits prefix (e.g. bits=24 keys "10.1.2.77" as "10.1.2.0/24").
// NodeIDs that do not parse as IPv4 addresses — candidate servers with
// symbolic names — are declined and stay on the per-client path. It is the
// fixed-granularity alternative to routing-table-aware keying
// (asn.Table.KeyFunc), and what crpd's -aggregate flag installs.
func PrefixKeyFunc(bits int) func(NodeID) (string, bool) {
	return func(n NodeID) (string, bool) {
		addr, err := netip.ParseAddr(string(n))
		if err != nil || !addr.Is4() {
			return "", false
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			return "", false
		}
		return p.String(), true
	}
}

// EnableAggregation switches the service's ingest path to prefix/LDNS
// aggregation (see the package comment at the top of this file). Call once,
// before the service takes traffic; it is not synchronized against in-flight
// operations.
func (s *Service) EnableAggregation(cfg AggregatorConfig) error {
	if cfg.KeyOf == nil {
		return errors.New("crp: AggregatorConfig.KeyOf is required")
	}
	if s.agg != nil {
		return errors.New("crp: aggregation already enabled")
	}
	s.agg = newAggregator(cfg)
	return nil
}

// AggregateInfo reports the aggregation plane's current state; the zero
// value (Enabled false) when aggregation is off.
func (s *Service) AggregateInfo() AggregateInfo {
	if s.agg == nil {
		return AggregateInfo{}
	}
	return s.agg.info()
}

// InvalidateAggregate drops the aggregate ratio map for key (e.g. when a
// routing change makes a prefix's history meaningless). It reports whether
// a group existed. Clients of the group keep resolving through their
// per-client state if they have any; others read as unknown until
// re-observed.
func (s *Service) InvalidateAggregate(key string) bool {
	if s.agg == nil {
		return false
	}
	return s.agg.invalidate(key)
}
