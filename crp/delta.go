package crp

import (
	"errors"
	"time"
)

// Replication surface of the Service, consumed by internal/peering. Every
// node entry carries last-writer-wins metadata (origin daemon + monotonic
// per-node version); a delta ships that metadata together with the entry's
// complete probe window, so applying a delta replaces the window wholesale
// and replicas of the same entry version are byte-identical everywhere. The
// convergence argument, the tombstone GC horizon, and the digest protocol
// built on ShardDigests are laid out in DESIGN.md §8.

// NodeMeta is the replication metadata of one node entry as exchanged
// between peers: which daemon last mutated the entry, the entry's monotonic
// version, and whether it is a deletion tombstone.
type NodeMeta struct {
	Node    NodeID `json:"node"`
	Origin  string `json:"origin,omitempty"`
	Version uint64 `json:"version"`
	Deleted bool   `json:"deleted,omitempty"`
}

// Supersedes reports whether m wins over o under the last-writer-wins rule:
// higher version wins; equal versions tie-break on origin (lexicographically
// greater wins, so concurrent writers resolve identically everywhere); fully
// equal metadata with differing deletion state lets the tombstone win. Equal
// metadata never supersedes — re-applying it is idempotent. The relation is
// a total order over distinct metadata, which is what makes delta application
// commutative: any interleaving of the same delta set converges to the same
// store.
func (m NodeMeta) Supersedes(o NodeMeta) bool {
	if m.Version != o.Version {
		return m.Version > o.Version
	}
	if m.Origin != o.Origin {
		return m.Origin > o.Origin
	}
	if m.Deleted != o.Deleted {
		return m.Deleted
	}
	return false
}

// NodeDelta is one replicated node entry in transit: its metadata plus the
// full probe window (empty for tombstones). DeletedAt rides along so the
// receiving peer's GC horizon counts from the original deletion, not from
// delta arrival.
type NodeDelta struct {
	NodeMeta
	DeletedAt time.Time `json:"deletedAt,omitempty"`
	Probes    []Probe   `json:"probes,omitempty"`
}

// SetOrigin declares this service's daemon identity, stamped as the origin
// of every subsequent local mutation. Set once, before traffic; it is not
// synchronized against in-flight mutations.
func (s *Service) SetOrigin(id string) {
	s.store.origin = id
}

// SetClock overrides the wall clock used to time Forget tombstones. Set
// once, before traffic. Deterministic harnesses point this at a virtual
// clock so tombstone GC is reproducible.
func (s *Service) SetClock(now func() time.Time) {
	if now != nil {
		s.store.now = now
	}
}

// SetMutationHook installs fn, called after every local Observe/Forget with
// the mutated node ID (remote delta application does not fire it). The
// peering layer uses this to queue fresh local mutations for rumor pushes.
// Set once, before traffic; fn must be safe for concurrent calls and must
// not call back into the Service.
func (s *Service) SetMutationHook(fn func(NodeID)) {
	s.store.onMutate = fn
}

// ShardCount returns the store's shard width. Peers can only compare shard
// digests when their widths agree.
func (s *Service) ShardCount() int {
	return len(s.store.shards)
}

// ShardOf returns the index of the shard holding node.
func (s *Service) ShardOf(node NodeID) int {
	return s.store.shardIndex(node)
}

// ShardDigests returns one digest word per shard over the sorted replication
// metadata of the shard's entries (including tombstones). Two stores with
// equal digests at equal widths hold the same replicated state.
func (s *Service) ShardDigests() []uint64 {
	return s.store.digests()
}

// ShardMetas returns the replication metadata of every entry in shard i,
// sorted by node ID, for the anti-entropy diff phase.
func (s *Service) ShardMetas(i int) ([]NodeMeta, error) {
	if i < 0 || i >= len(s.store.shards) {
		return nil, errors.New("crp: shard index out of range")
	}
	return s.store.shardMetas(i), nil
}

// ExportDelta packages node's full current state for transmission to a peer;
// ok is false when the store has never heard of the node (no live entry, no
// tombstone).
func (s *Service) ExportDelta(node NodeID) (NodeDelta, bool) {
	return s.store.exportDelta(node)
}

// ApplyDelta installs a remotely-produced delta if it supersedes the local
// entry, replacing the probe window wholesale. It reports whether the delta
// was applied (false means stale or idempotent). The mutation hook does not
// fire for applied deltas.
func (s *Service) ApplyDelta(d NodeDelta) (bool, error) {
	if d.Node == "" {
		return false, errors.New("crp: delta with empty node ID")
	}
	if d.Version == 0 {
		return false, errors.New("crp: delta with zero version")
	}
	return s.store.applyDelta(d), nil
}

// GCTombstones reclaims deletion tombstones older than the horizon and
// returns how many it removed. The caller (the peering layer) derives the
// horizon from its configured GC window.
func (s *Service) GCTombstones(horizon time.Time) int {
	return s.store.gcTombstones(horizon)
}
