package crp

import (
	"strings"
	"testing"
	"time"
)

func TestNewPassiveMonitorValidation(t *testing.T) {
	if _, err := NewPassiveMonitor(nil, "n", PassiveConfig{}); err == nil {
		t.Error("nil service should fail")
	}
	if _, err := NewPassiveMonitor(NewService(), "", PassiveConfig{}); err == nil {
		t.Error("empty node should fail")
	}
}

func TestPassiveMonitorWatchedNamesOnly(t *testing.T) {
	svc := NewService()
	m, err := NewPassiveMonitor(svc, "client", PassiveConfig{
		Names: []string{"img.cdn.example."},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unwatched traffic is ignored.
	recorded, err := m.ObserveDNS(t0, "www.unrelated.example.", "r1")
	if err != nil {
		t.Fatal(err)
	}
	if recorded {
		t.Error("unwatched name recorded")
	}
	// Watched traffic lands, case-insensitively.
	recorded, err = m.ObserveDNS(t0, "IMG.cdn.Example.", "r1", "r2")
	if err != nil {
		t.Fatal(err)
	}
	if !recorded {
		t.Error("watched name not recorded")
	}
	rm, err := svc.RatioMap("client")
	if err != nil {
		t.Fatal(err)
	}
	if len(rm) != 2 {
		t.Errorf("ratio map = %v, want two replicas", rm)
	}
}

func TestPassiveMonitorWatchAllWhenNoNames(t *testing.T) {
	svc := NewService()
	m, err := NewPassiveMonitor(svc, "client", PassiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := m.ObserveDNS(t0, "anything.example.", "r1")
	if err != nil {
		t.Fatal(err)
	}
	if !recorded {
		t.Error("watch-all monitor ignored traffic")
	}
}

func TestPassiveMonitorFilterAndSelector(t *testing.T) {
	svc := NewService()
	selector := NewNameSelector()
	m, err := NewPassiveMonitor(svc, "client", PassiveConfig{
		Filter:   func(r ReplicaID) bool { return strings.HasPrefix(string(r), "owned-") },
		Selector: selector,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A mixed answer: the owned replica is filtered, the real one recorded.
	recorded, err := m.ObserveDNS(t0, "a.cdn.", "owned-1", "real-1")
	if err != nil {
		t.Fatal(err)
	}
	if !recorded {
		t.Error("mixed answer should still be recorded")
	}
	rm, err := svc.RatioMap("client")
	if err != nil {
		t.Fatal(err)
	}
	if _, leaked := rm["owned-1"]; leaked {
		t.Error("filtered replica reached the ratio map")
	}

	// An all-owned answer records nothing in the map...
	recorded, err = m.ObserveDNS(t0.Add(time.Minute), "b.cdn.", "owned-2", "owned-3")
	if err != nil {
		t.Fatal(err)
	}
	if recorded {
		t.Error("fully filtered answer reported as recorded")
	}

	// ...but the selector saw everything and can reject the bad name.
	quals := selector.Qualities()
	if len(quals) != 2 {
		t.Fatalf("selector names = %d, want 2", len(quals))
	}
	byName := map[string]NameQuality{}
	for _, q := range quals {
		byName[q.Name] = q
	}
	if byName["b.cdn."].FilteredFraction != 1 {
		t.Errorf("b.cdn. filtered fraction = %v, want 1", byName["b.cdn."].FilteredFraction)
	}
	if byName["a.cdn."].FilteredFraction != 0.5 {
		t.Errorf("a.cdn. filtered fraction = %v, want 0.5", byName["a.cdn."].FilteredFraction)
	}
}

func TestPassiveMonitorNode(t *testing.T) {
	m, err := NewPassiveMonitor(NewService(), "n1", PassiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Node() != "n1" {
		t.Errorf("Node = %q", m.Node())
	}
}
