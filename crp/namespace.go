package crp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode/utf8"
)

// Multi-CDN namespaces. The paper's own future work is combining redirection
// signals from multiple CDNs; here each CDN gets a namespace and a replica
// observed through CDN ns is recorded under the qualified identity
// "<ns>!<replica>". Qualification lives in ID space, not in a parallel
// schema: ratio maps, compiled vectors, the sharded store, snapshots, the
// delta protocol and both wire codecs all carry namespaced replicas as
// ordinary ReplicaIDs, so a 1-namespace deployment (the default namespace,
// which qualifies to the bare replica ID) is byte-identical to the
// pre-namespace system at every layer. Because compiled vectors sort by
// replica ID and every qualified ID of a namespace shares the "<ns>!"
// prefix, each non-default namespace's entries form one contiguous sub-vector
// of every compiled vector — the property the fused kernel exploits.

// Namespace names one CDN's redirection signal. The default (empty)
// namespace is the legacy single-CDN signal: it qualifies replica IDs to
// themselves.
type Namespace string

// DefaultNamespace is the single-CDN namespace; Qualify under it is the
// identity, which is what keeps 1-namespace deployments bit-identical to the
// pre-namespace seed path.
const DefaultNamespace Namespace = ""

// NamespaceSep separates the namespace from the replica identity inside a
// qualified ReplicaID. '!' sorts below every character that occurs in DNS
// names, so all qualified IDs of one namespace are lexicographically
// contiguous and precede any unqualified ID sharing the namespace string as
// a prefix.
const NamespaceSep = '!'

// MaxNamespaceBytes bounds a namespace name on every wire surface.
const MaxNamespaceBytes = 64

// Valid reports whether the namespace is well-formed: the default namespace,
// or a NUL-free UTF-8 string of at most MaxNamespaceBytes bytes that does
// not contain the separator.
func (ns Namespace) Valid() error {
	if ns == DefaultNamespace {
		return nil
	}
	if len(ns) > MaxNamespaceBytes {
		return fmt.Errorf("crp: namespace is %d bytes, limit %d", len(ns), MaxNamespaceBytes)
	}
	if !utf8.ValidString(string(ns)) {
		return fmt.Errorf("crp: namespace is not valid UTF-8")
	}
	for i := 0; i < len(ns); i++ {
		if ns[i] == NamespaceSep {
			return fmt.Errorf("crp: namespace contains the separator %q", NamespaceSep)
		}
		if ns[i] == 0 {
			return fmt.Errorf("crp: namespace contains a NUL byte")
		}
	}
	return nil
}

// Qualify returns the replica's identity under namespace ns. The default
// namespace qualifies to the bare ID.
func Qualify(ns Namespace, r ReplicaID) ReplicaID {
	if ns == DefaultNamespace {
		return r
	}
	return ReplicaID(string(ns) + string(NamespaceSep) + string(r))
}

// SplitReplica splits a possibly-qualified replica ID into its namespace and
// bare identity. IDs without a separator belong to the default namespace.
func SplitReplica(r ReplicaID) (Namespace, ReplicaID) {
	if i := strings.IndexByte(string(r), NamespaceSep); i >= 0 {
		return Namespace(r[:i]), r[i+1:]
	}
	return DefaultNamespace, r
}

// NamespaceOf returns the namespace a replica ID belongs to.
func NamespaceOf(r ReplicaID) Namespace {
	ns, _ := SplitReplica(r)
	return ns
}

// NamespaceView returns the sub-map of m belonging to namespace ns, with the
// qualified replica IDs preserved. The result is freshly allocated and NOT
// renormalized: its mass is the fraction of the node's probes that went
// through CDN ns, which is exactly the coverage signal fusion weights by.
func (m RatioMap) NamespaceView(ns Namespace) RatioMap {
	out := make(RatioMap)
	for r, f := range m {
		if NamespaceOf(r) == ns {
			out[r] = f
		}
	}
	return out
}

// Namespaces returns the namespaces present in the map, sorted.
func (m RatioMap) Namespaces() []Namespace {
	seen := make(map[Namespace]bool)
	for r := range m {
		seen[NamespaceOf(r)] = true
	}
	out := make([]Namespace, 0, len(seen))
	for ns := range seen {
		out = append(out, ns)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FusionConfig parameterizes the fused similarity kernel: per-CDN cosines
// combined by coverage-weighted mixing.
type FusionConfig struct {
	// Weights optionally scales each namespace's contribution to the mix; an
	// absent namespace weighs 1. Zero or negative weight mutes a namespace.
	Weights map[Namespace]float64
	// Coverage combines the two nodes' probe mass (L1 ratio mass, each on
	// [0,1]) in one namespace into the pair's coverage weight for it. Nil
	// uses min(a, b): a CDN only one side has history with carries no pair
	// signal, and thin two-sided coverage is down-weighted proportionally.
	Coverage func(massA, massB float64) float64
}

// fusionKernel is a compiled FusionConfig.
type fusionKernel struct {
	weights  map[Namespace]float64
	coverage func(a, b float64) float64
}

func newFusionKernel(cfg FusionConfig) (*fusionKernel, error) {
	for ns := range cfg.Weights {
		if err := ns.Valid(); err != nil {
			return nil, err
		}
	}
	k := &fusionKernel{coverage: cfg.Coverage}
	if len(cfg.Weights) > 0 {
		k.weights = make(map[Namespace]float64, len(cfg.Weights))
		for ns, w := range cfg.Weights {
			k.weights[ns] = w
		}
	}
	if k.coverage == nil {
		k.coverage = math.Min
	}
	return k, nil
}

func (k *fusionKernel) weightOf(ns Namespace) float64 {
	if k.weights == nil {
		return 1
	}
	if w, ok := k.weights[ns]; ok {
		return w
	}
	return 1
}

// nsAcc accumulates one namespace's per-pair statistics during the fused
// merge pass: dot product over matched replicas, each side's squared norm
// and L1 mass over its own replicas.
type nsAcc struct {
	ns           Namespace
	dot, a2, b2  float64
	massA, massB float64
}

// fusedAccs is the single-pass accumulation behind the fused kernel: one
// co-walk of both sorted vectors, bucketing every term by its replica's
// namespace. Per-namespace accumulation visits replicas in ascending ID
// order — the same order compileRatioMap and ratioVec.dot use — so each
// namespace's dot and norms are bit-identical to what the plain kernel
// would compute over that namespace's sub-vectors alone. Qualified
// namespaces are contiguous in the sorted order, so the bucket lookup is
// almost always a repeat of the previous hit; a short linear scan covers
// the interleaved default-namespace case.
func fusedAccs(a, b ratioVec, accs []nsAcc) []nsAcc {
	last := -1
	bucket := func(ns Namespace) *nsAcc {
		if last >= 0 && accs[last].ns == ns {
			return &accs[last]
		}
		for i := range accs {
			if accs[i].ns == ns {
				last = i
				return &accs[i]
			}
		}
		accs = append(accs, nsAcc{ns: ns})
		last = len(accs) - 1
		return &accs[last]
	}
	i, j := 0, 0
	for i < len(a.ids) || j < len(b.ids) {
		switch {
		case j >= len(b.ids) || (i < len(a.ids) && a.ids[i] < b.ids[j]):
			v := a.vals[i]
			acc := bucket(NamespaceOf(a.ids[i]))
			acc.a2 += v * v
			acc.massA += v
			i++
		case i >= len(a.ids) || a.ids[i] > b.ids[j]:
			v := b.vals[j]
			acc := bucket(NamespaceOf(b.ids[j]))
			acc.b2 += v * v
			acc.massB += v
			j++
		default:
			va, vb := a.vals[i], b.vals[j]
			acc := bucket(NamespaceOf(a.ids[i]))
			acc.dot += va * vb
			acc.a2 += va * va
			acc.massA += va
			acc.b2 += vb * vb
			acc.massB += vb
			i++
			j++
		}
	}
	return accs
}

// nsCosine finishes one namespace's cosine from its accumulated terms, with
// the same zero handling and drift clamping as ratioVec.cosine. The norms
// are square-rooted separately and multiplied — the exact float sequence of
// the plain kernel (compile-time sqrt per side, then a product) — so a
// single-namespace fused similarity is bit-identical to the plain one.
func (acc *nsAcc) nsCosine() float64 {
	if acc.dot == 0 {
		return 0
	}
	na, nb := math.Sqrt(acc.a2), math.Sqrt(acc.b2)
	if na == 0 || nb == 0 {
		return 0
	}
	sim := acc.dot / (na * nb)
	if sim > 1 {
		return 1
	}
	if sim < 0 {
		return 0
	}
	return sim
}

// cosine is the fused similarity of two compiled vectors: each namespace's
// cosine over its contiguous sub-vectors, mixed by coverage weight times the
// namespace's configured weight. A pair whose replicas all live in one
// namespace returns that namespace's cosine directly — bit-identical to the
// plain kernel, the property the 1-namespace back-compat gate pins.
func (k *fusionKernel) cosine(a, b ratioVec) float64 {
	var stack [4]nsAcc
	accs := fusedAccs(a, b, stack[:0])
	if len(accs) == 0 {
		return 0
	}
	if len(accs) == 1 {
		return accs[0].nsCosine()
	}
	num, den := 0.0, 0.0
	for i := range accs {
		w := k.weightOf(accs[i].ns)
		if w <= 0 {
			continue
		}
		w *= k.coverage(accs[i].massA, accs[i].massB)
		if w <= 0 {
			continue
		}
		num += w * accs[i].nsCosine()
		den += w
	}
	if den == 0 {
		return 0
	}
	sim := num / den
	if sim > 1 {
		return 1
	}
	if sim < 0 {
		return 0
	}
	return sim
}

// cosineIn is the namespace-scoped cosine of two compiled vectors: only
// replicas belonging to ns contribute, with the plain kernel's accumulation
// order, zero handling and clamping. When every replica of both vectors is
// already in ns it is bit-identical to ratioVec.cosine. No allocation.
func cosineIn(a, b ratioVec, ns Namespace) float64 {
	dot, a2, b2 := 0.0, 0.0, 0.0
	i, j := 0, 0
	for i < len(a.ids) || j < len(b.ids) {
		switch {
		case j >= len(b.ids) || (i < len(a.ids) && a.ids[i] < b.ids[j]):
			if NamespaceOf(a.ids[i]) == ns {
				a2 += a.vals[i] * a.vals[i]
			}
			i++
		case i >= len(a.ids) || a.ids[i] > b.ids[j]:
			if NamespaceOf(b.ids[j]) == ns {
				b2 += b.vals[j] * b.vals[j]
			}
			j++
		default:
			if NamespaceOf(a.ids[i]) == ns {
				dot += a.vals[i] * b.vals[j]
				a2 += a.vals[i] * a.vals[i]
				b2 += b.vals[j] * b.vals[j]
			}
			i++
			j++
		}
	}
	if dot == 0 || a2 == 0 || b2 == 0 {
		return 0
	}
	sim := dot / (math.Sqrt(a2) * math.Sqrt(b2))
	if sim > 1 {
		return 1
	}
	if sim < 0 {
		return 0
	}
	return sim
}

// FusedCosineSimilarity is the map-level entry point of the fused kernel,
// the multi-CDN analogue of CosineSimilarity. It exists for callers that
// hold plain ratio maps (the experiment harness); the Service query surface
// runs the same kernel on cached compiled vectors.
func FusedCosineSimilarity(cfg FusionConfig, a, b RatioMap) (float64, error) {
	k, err := newFusionKernel(cfg)
	if err != nil {
		return 0, err
	}
	return k.cosine(compileRatioMap(a), compileRatioMap(b)), nil
}
