package crp

import "math"

// ratioVec is the compiled form of a RatioMap: replica IDs sorted ascending,
// a parallel slice of their ratios, and the precomputed Euclidean norm. It
// exists because every similarity query reduces to cosine similarity, and
// the map representation pays three sorts per call (Dot plus two Norms, each
// via Replicas). Compiling once amortizes the sort, and the merge-join
// kernel below makes each subsequent cosine allocation-free.
//
// A ratioVec is immutable after compileRatioMap returns; it may be shared
// freely across goroutines without copying.
type ratioVec struct {
	ids  []ReplicaID
	vals []float64
	norm float64
}

// compileRatioMap sorts m once and precomputes its norm. The norm
// accumulates in ascending replica order — the same deterministic order
// RatioMap.Norm uses — so compiled and map-based similarities are
// bit-identical.
func compileRatioMap(m RatioMap) ratioVec {
	ids := m.Replicas()
	vals := make([]float64, len(ids))
	s := 0.0
	for i, r := range ids {
		v := m[r]
		vals[i] = v
		s += v * v
	}
	return ratioVec{ids: ids, vals: vals, norm: math.Sqrt(s)}
}

// dot is the merge-join dot product of two compiled vectors. Matched terms
// accumulate in ascending replica order — the same order the map-based Dot
// visits them (it walks the smaller map's sorted replicas) — so the result
// is bit-identical to Dot on the source maps.
func (a ratioVec) dot(b ratioVec) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] < b.ids[j]:
			i++
		case a.ids[i] > b.ids[j]:
			j++
		default:
			s += a.vals[i] * b.vals[j]
			i++
			j++
		}
	}
	return s
}

// cosine returns the cosine similarity of two compiled vectors on [0, 1],
// with the same zero-handling and drift clamping as CosineSimilarity. It
// performs no allocation.
func (a ratioVec) cosine(b ratioVec) float64 {
	dot := a.dot(b)
	if dot == 0 {
		return 0
	}
	if a.norm == 0 || b.norm == 0 {
		return 0
	}
	sim := dot / (a.norm * b.norm)
	if sim > 1 {
		return 1
	}
	if sim < 0 {
		return 0
	}
	return sim
}

// nodeVec couples a node identity with its compiled ratio vector, the
// working representation of a candidate inside the query fan-out paths.
type nodeVec struct {
	id  NodeID
	vec ratioVec
}
