package crp

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestServiceChurnStress interleaves every mutation and query the daemon
// exposes — Observe, Forget, TopK, ClosestTo, Similarity, ClusterAll,
// Nodes — across goroutines, under both store shapes. Run with -race (the
// repo's make check does) this is the concurrency gate for the sharded
// store: snapshot stitching, per-shard patching and structural rebuilds all
// race against ingestion here.
func TestServiceChurnStress(t *testing.T) {
	shapes := []struct {
		name string
		cfg  StoreConfig
	}{
		{"sharded", StoreConfig{}},
		{"fewShards", StoreConfig{Shards: 2}},
		{"singleFullRebuild", StoreConfig{Shards: 1, FullRebuild: true}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			s := NewServiceWithStore(shape.cfg, WithWindow(8))
			at := time.Unix(0, 0)
			// Seed enough nodes that queries always have candidates even
			// while Forget churns.
			for i := 0; i < 24; i++ {
				if err := s.Observe(NodeID(fmt.Sprintf("seed-%02d", i)), at,
					ReplicaID(fmt.Sprintf("r%d", i%5))); err != nil {
					t.Fatal(err)
				}
			}

			const workers, iters = 8, 120
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					node := NodeID(fmt.Sprintf("churn-%d", w%4))
					for i := 0; i < iters; i++ {
						switch i % 6 {
						case 0:
							if err := s.Observe(node, at.Add(time.Duration(i)*time.Second),
								ReplicaID(fmt.Sprintf("r%d", i%5))); err != nil {
								errs <- err
								return
							}
						case 1:
							if _, err := s.TopK("seed-00", nil, 3); err != nil {
								errs <- err
								return
							}
						case 2:
							if _, _, err := s.ClosestTo("seed-01", nil); err != nil {
								errs <- err
								return
							}
						case 3:
							if _, err := s.Similarity("seed-02", "seed-03"); err != nil {
								errs <- err
								return
							}
						case 4:
							if _, err := s.ClusterAll(ClusterConfig{Threshold: DefaultThreshold}); err != nil {
								errs <- err
								return
							}
						case 5:
							if w%2 == 0 {
								s.Forget(node)
							} else {
								_ = s.Nodes()
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if n := len(s.Nodes()); n < 24 {
				t.Errorf("lost seed nodes under churn: %d < 24", n)
			}
		})
	}
}

// TestServiceForgetInvalidatesSnapshot is the regression the sharded rewrite
// must not lose: Forget — even of a node that was just served from the
// compiled snapshot, and even of an unknown node — acts as a snapshot
// barrier, so the next all-nodes query reflects the removal.
func TestServiceForgetInvalidatesSnapshot(t *testing.T) {
	s := NewService()
	at := time.Unix(0, 0)
	for i := 0; i < 12; i++ {
		if err := s.Observe(NodeID(fmt.Sprintf("n-%02d", i)), at, "shared"); err != nil {
			t.Fatal(err)
		}
	}
	ranked, err := s.TopK("n-00", nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 11 {
		t.Fatalf("TopK ranked %d, want 11", len(ranked))
	}

	s.Forget("n-05")
	ranked, err = s.TopK("n-00", nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 10 {
		t.Fatalf("TopK after Forget ranked %d, want 10", len(ranked))
	}
	for _, sc := range ranked {
		if sc.Node == "n-05" {
			t.Error("forgotten node served from a stale snapshot")
		}
	}

	// Forgetting an unknown node still bumps the version (the pre-sharding
	// contract): the stitched snapshot is reassembled, not served stale.
	rebuilds := svcMetrics.snapshotRebuilds.Value()
	s.Forget("never-existed")
	if _, err := s.TopK("n-00", nil, 3); err != nil {
		t.Fatal(err)
	}
	if got := svcMetrics.snapshotRebuilds.Value() - rebuilds; got == 0 {
		t.Error("Forget of an unknown node did not invalidate the stitched snapshot")
	}
}

// TestServiceOrderingDeterminism pins the tie-break contract across the
// sharded rewrite: Nodes() is sorted, and TopK over the stitched snapshot
// ranks equal similarities by ascending NodeID — repeatably, and identically
// to the single-shard baseline whose candidate order is entirely different.
func TestServiceOrderingDeterminism(t *testing.T) {
	build := func(cfg StoreConfig) *Service {
		s := NewServiceWithStore(cfg)
		at := time.Unix(0, 0)
		// All candidates share one replica with identical ratios: every
		// similarity ties, so ordering is decided purely by the tie-break.
		for i := 0; i < 40; i++ {
			if err := s.Observe(NodeID(fmt.Sprintf("tie-%02d", i)), at, "r0"); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	sharded := build(StoreConfig{})
	single := build(StoreConfig{Shards: 1, FullRebuild: true})

	nodes := sharded.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("Nodes() not sorted: %q before %q", nodes[i-1], nodes[i])
		}
	}

	first, err := sharded.TopK("tie-00", nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Similarity == first[i].Similarity && first[i-1].Node >= first[i].Node {
			t.Fatalf("tied similarities not ordered by NodeID: %+v", first)
		}
	}
	for trial := 0; trial < 5; trial++ {
		again, err := sharded.TopK("tie-00", nil, 10)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := single.TopK("tie-00", nil, 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("TopK not repeatable at %d: %+v vs %+v", i, again[i], first[i])
			}
			if ref[i] != first[i] {
				t.Fatalf("TopK diverges from single-shard baseline at %d: %+v vs %+v", i, ref[i], first[i])
			}
		}
	}
}
