package crp

import (
	"sort"
	"time"
)

// FrameStream is one monitored aggregate in a DriftFrame: the L1-normalized
// redirection-mass distribution of a client population within a single CDN
// namespace. Group is empty for the whole tracked population and names the
// aggregation-plane prefix/LDNS group otherwise. Support counts the
// contributing evidence — tracked nodes for population streams, absorbed
// probes (post-decay) for aggregate groups — so a detector can gate
// too-thin streams.
type FrameStream struct {
	NS      string   `json:"ns"`
	Group   string   `json:"group,omitempty"`
	Support int      `json:"support"`
	Map     RatioMap `json:"map"`
}

// DriftFrame is one snapshot of the compiled ratio-map stream, the input of
// the internal/drift detector: every (namespace, population) aggregate the
// service currently serves, plus the service's cumulative accepted-probe
// count so staleness ("map frozen while probes keep landing") is decidable.
// Streams are sorted by (NS, Group) and the maps are freshly built, so a
// frame is an immutable value once returned.
type DriftFrame struct {
	At       time.Time     `json:"at"`
	Observes uint64        `json:"observes"`
	Streams  []FrameStream `json:"streams"`
}

// DriftFrame captures the current ratio-map stream snapshot at time at. It
// walks the sharded store's compiled snapshot (cheap: sub-snapshots are
// cached per shard) splitting each node's vector by replica namespace, and,
// when aggregation is enabled, the aggregation plane's compiled per-group
// vectors. All accumulation and normalization runs in sorted order, so the
// same store state always yields the byte-identical frame.
func (s *Service) DriftFrame(at time.Time) DriftFrame {
	f := DriftFrame{At: at, Observes: s.observeSeq()}

	// Whole-population streams: per-namespace sums over every tracked
	// node's compiled ratio vector.
	type popAcc struct {
		m     map[ReplicaID]float64
		nodes int
	}
	pops := make(map[Namespace]*popAcc)
	snap := s.store.snapshot()
	for _, part := range snap.parts {
		for _, nv := range part {
			var seen map[Namespace]bool
			for i, id := range nv.vec.ids {
				ns, bare := SplitReplica(id)
				a := pops[ns]
				if a == nil {
					a = &popAcc{m: make(map[ReplicaID]float64)}
					pops[ns] = a
				}
				a.m[bare] += nv.vec.vals[i]
				if seen == nil {
					seen = make(map[Namespace]bool, 2)
				}
				if !seen[ns] {
					seen[ns] = true
					a.nodes++
				}
			}
		}
	}
	nss := make([]Namespace, 0, len(pops))
	for ns := range pops {
		nss = append(nss, ns)
	}
	sort.Slice(nss, func(a, b int) bool { return nss[a] < nss[b] })
	for _, ns := range nss {
		a := pops[ns]
		f.Streams = append(f.Streams, FrameStream{
			NS: string(ns), Support: a.nodes, Map: normalizedSorted(a.m),
		})
	}

	// Aggregation-plane streams: one per (namespace, prefix group).
	if s.agg != nil {
		type grec struct {
			key    string
			vec    ratioVec
			probes int
		}
		var gs []grec
		for si := range s.agg.shards {
			sh := &s.agg.shards[si]
			sh.mu.Lock()
			for key, g := range sh.groups {
				vec := g.compileLocked(&s.agg.intern)
				// compileLocked's vec is cached inside the group; copy the
				// slices so the frame stays immutable.
				cp := ratioVec{
					ids:  append([]ReplicaID(nil), vec.ids...),
					vals: append([]float64(nil), vec.vals...),
					norm: vec.norm,
				}
				gs = append(gs, grec{key: key, vec: cp, probes: int(g.probes)})
			}
			sh.mu.Unlock()
		}
		sort.Slice(gs, func(a, b int) bool { return gs[a].key < gs[b].key })
		for _, g := range gs {
			per := make(map[Namespace]map[ReplicaID]float64)
			for i, id := range g.vec.ids {
				ns, bare := SplitReplica(id)
				m := per[ns]
				if m == nil {
					m = make(map[ReplicaID]float64)
					per[ns] = m
				}
				m[bare] += g.vec.vals[i]
			}
			gns := make([]Namespace, 0, len(per))
			for ns := range per {
				gns = append(gns, ns)
			}
			sort.Slice(gns, func(a, b int) bool { return gns[a] < gns[b] })
			for _, ns := range gns {
				f.Streams = append(f.Streams, FrameStream{
					NS: string(ns), Group: g.key, Support: g.probes,
					Map: normalizedSorted(per[ns]),
				})
			}
		}
	}

	sort.Slice(f.Streams, func(a, b int) bool {
		if f.Streams[a].NS != f.Streams[b].NS {
			return f.Streams[a].NS < f.Streams[b].NS
		}
		return f.Streams[a].Group < f.Streams[b].Group
	})
	return f
}

// normalizedSorted L1-normalizes m into a fresh RatioMap, summing in sorted
// key order so the float rounding is identical across reruns regardless of
// map iteration order.
func normalizedSorted(m map[ReplicaID]float64) RatioMap {
	ids := make([]ReplicaID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	sum := 0.0
	for _, id := range ids {
		sum += m[id]
	}
	out := make(RatioMap, len(m))
	if sum <= 0 {
		return out
	}
	for _, id := range ids {
		out[id] = m[id] / sum
	}
	return out
}
