package crp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the fan-out size below which parallelFor stays on the
// calling goroutine: spawning workers costs more than a few dozen cosine
// evaluations.
const parallelThreshold = 64

// parallelFor runs fn(i) for every i in [0, n) across a bounded worker pool
// of at most runtime.GOMAXPROCS(0) goroutines. Chunks of iterations are
// claimed from a shared atomic counter (individual claims would serialize on
// the counter for cheap bodies like one cosine), so callers must not assume
// any ordering; writing results into index i of a pre-sized slice keeps
// output deterministic. Small n runs inline on the calling goroutine.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < parallelThreshold {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := n / (workers * 8)
	if chunk < 16 {
		chunk = 16
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}
