package crp

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// seedShardedService spreads probe history across every shard of an
// 8-shard store and leaves all shards dirty (no query has compiled them).
func seedShardedService(t testing.TB, nodes int) *Service {
	t.Helper()
	s := NewServiceWithStore(StoreConfig{Shards: 8}, WithWindow(10))
	for n := 0; n < nodes; n++ {
		node := NodeID(fmt.Sprintf("node-%03d", n))
		for i := 0; i < 6; i++ {
			at := t0.Add(time.Duration(n*13+i) * time.Minute)
			r1 := ReplicaID(fmt.Sprintf("r%d", n%7))
			r2 := ReplicaID(fmt.Sprintf("r%d", (n+i)%7))
			if err := s.Observe(node, at, r1, r2); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// TestSnapshotWithDirtyShardsEqualsQuiescent is the regression test for
// snapshot consistency on the sharded store: a snapshot taken mid-churn —
// every shard dirty, nothing compiled — must be byte-identical to one
// taken at quiescence after the query path has patched every shard's
// compiled vectors. WriteSnapshot reads tracker histories, not compiled
// state, so shard dirtiness must be invisible to persistence.
func TestSnapshotWithDirtyShardsEqualsQuiescent(t *testing.T) {
	s := seedShardedService(t, 64)

	var dirty bytes.Buffer
	if err := s.WriteSnapshot(&dirty); err != nil {
		t.Fatalf("WriteSnapshot (dirty): %v", err)
	}

	// Force quiescence: a query compiles every shard's vectors.
	if _, err := s.TopK("node-000", nil, 5); err != nil {
		t.Fatal(err)
	}

	var quiescent bytes.Buffer
	if err := s.WriteSnapshot(&quiescent); err != nil {
		t.Fatalf("WriteSnapshot (quiescent): %v", err)
	}
	if !bytes.Equal(dirty.Bytes(), quiescent.Bytes()) {
		t.Fatalf("snapshot mid-churn differs from snapshot at quiescence:\ndirty:     %d bytes\nquiescent: %d bytes",
			dirty.Len(), quiescent.Len())
	}
}

// TestSnapshotRoundTripAcrossStoreShapes restores a sharded service's
// snapshot into every store shape (sharded, single-shard full-rebuild,
// default) and asserts identical node sets and ratio maps: persistence is
// store-shape-agnostic in both directions.
func TestSnapshotRoundTripAcrossStoreShapes(t *testing.T) {
	src := seedShardedService(t, 48)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	shapes := map[string]StoreConfig{
		"sharded-8":    {Shards: 8},
		"single-full":  {Shards: 1, FullRebuild: true},
		"defaults":     {},
		"sharded-wide": {Shards: 64},
	}
	for name, cfg := range shapes {
		t.Run(name, func(t *testing.T) {
			dst := NewServiceWithStore(cfg, WithWindow(10))
			if err := dst.LoadSnapshot(bytes.NewReader(snap)); err != nil {
				t.Fatalf("LoadSnapshot: %v", err)
			}
			if !reflect.DeepEqual(src.Nodes(), dst.Nodes()) {
				t.Fatalf("node sets differ: %d vs %d nodes", len(src.Nodes()), len(dst.Nodes()))
			}
			for _, id := range src.Nodes() {
				a, err := src.RatioMap(id)
				if err != nil {
					t.Fatal(err)
				}
				b, err := dst.RatioMap(id)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("node %q maps differ:\n%v\n%v", id, a, b)
				}
			}
			// The restored store must serve queries, not just lookups.
			if _, err := dst.TopK("node-000", nil, 3); err != nil {
				t.Fatalf("TopK on restored service: %v", err)
			}
		})
	}
}

// TestSnapshotDuringConcurrentChurn hammers a sharded service with
// concurrent observes and queries while snapshots are being written; every
// snapshot must decode and restore cleanly. Run under -race this also
// asserts WriteSnapshot's reads are synchronized with shard mutation.
func TestSnapshotDuringConcurrentChurn(t *testing.T) {
	s := seedShardedService(t, 32)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				node := NodeID(fmt.Sprintf("node-%03d", (w*8+i)%32))
				at := t0.Add(time.Duration(1000+i) * time.Second)
				if err := s.Observe(node, at, ReplicaID(fmt.Sprintf("r%d", i%7))); err != nil {
					t.Error(err)
					return
				}
				if i%5 == 0 {
					if _, err := s.TopK(node, nil, 3); err != nil {
						t.Error(err)
						return
					}
				}
				i++
			}
		}(w)
	}

	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := s.WriteSnapshot(&buf); err != nil {
			t.Fatalf("WriteSnapshot %d under churn: %v", i, err)
		}
		dst := NewServiceWithStore(StoreConfig{Shards: 4}, WithWindow(10))
		if err := dst.LoadSnapshot(&buf); err != nil {
			t.Fatalf("LoadSnapshot %d under churn: %v", i, err)
		}
		if got := len(dst.Nodes()); got != 32 {
			t.Fatalf("snapshot %d restored %d nodes, want 32", i, got)
		}
	}
	close(stop)
	wg.Wait()
}
