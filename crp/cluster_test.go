package crp

import (
	"fmt"
	"reflect"
	"testing"
)

// threeMetros builds nodes in three synthetic "metros", each dominated by
// its own replica servers, plus one node with no overlap at all.
func threeMetros() []Node {
	return []Node{
		// Metro 1: dominated by rA/rB.
		{ID: "m1-a", Map: RatioMap{"rA": 0.9, "rB": 0.1}},
		{ID: "m1-b", Map: RatioMap{"rA": 0.7, "rB": 0.3}},
		{ID: "m1-c", Map: RatioMap{"rA": 0.6, "rB": 0.4}},
		// Metro 2: dominated by rC/rD.
		{ID: "m2-a", Map: RatioMap{"rC": 0.8, "rD": 0.2}},
		{ID: "m2-b", Map: RatioMap{"rC": 0.65, "rD": 0.35}},
		// Metro 3: dominated by rE.
		{ID: "m3-a", Map: RatioMap{"rE": 1.0}},
		{ID: "m3-b", Map: RatioMap{"rE": 0.85, "rA": 0.15}},
		// Orphan: unique replica set.
		{ID: "orphan", Map: RatioMap{"rZ": 1.0}},
	}
}

func clusterOf(t *testing.T, clusters []Cluster, id NodeID) Cluster {
	t.Helper()
	for _, c := range clusters {
		for _, m := range c.Members {
			if m == id {
				return c
			}
		}
	}
	t.Fatalf("node %q not in any cluster", id)
	return Cluster{}
}

func TestClusterSMFGroupsMetros(t *testing.T) {
	clusters, err := ClusterSMF(threeMetros(), ClusterConfig{Threshold: DefaultThreshold})
	if err != nil {
		t.Fatal(err)
	}
	// Every node appears exactly once.
	total := 0
	seen := map[NodeID]bool{}
	for _, c := range clusters {
		total += c.Size()
		for _, m := range c.Members {
			if seen[m] {
				t.Errorf("node %q in multiple clusters", m)
			}
			seen[m] = true
		}
	}
	if total != len(threeMetros()) {
		t.Errorf("clusters cover %d nodes, want %d", total, len(threeMetros()))
	}

	// Metro cohesion: each metro's nodes share a cluster.
	for _, metro := range [][]NodeID{
		{"m1-a", "m1-b", "m1-c"},
		{"m2-a", "m2-b"},
		{"m3-a", "m3-b"},
	} {
		first := clusterOf(t, clusters, metro[0])
		for _, id := range metro[1:] {
			if clusterOf(t, clusters, id).Center != first.Center {
				t.Errorf("nodes %v split across clusters", metro)
			}
		}
	}
	// Metro separation: distinct metros are in distinct clusters.
	if clusterOf(t, clusters, "m1-a").Center == clusterOf(t, clusters, "m2-a").Center {
		t.Error("metros 1 and 2 merged")
	}
	// Orphan is a singleton.
	if got := clusterOf(t, clusters, "orphan"); got.Size() != 1 {
		t.Errorf("orphan cluster size = %d, want 1", got.Size())
	}
}

func TestClusterSMFCentersHaveStrongestMappings(t *testing.T) {
	clusters, err := ClusterSMF(threeMetros(), ClusterConfig{Threshold: DefaultThreshold})
	if err != nil {
		t.Fatal(err)
	}
	// m1-a (ratio 0.9 to rA) should be metro 1's center, m3-a (1.0) metro 3's.
	if c := clusterOf(t, clusters, "m1-a"); c.Center != "m1-a" {
		t.Errorf("metro 1 center = %v, want m1-a (strongest mapping)", c.Center)
	}
	if c := clusterOf(t, clusters, "m3-a"); c.Center != "m3-a" {
		t.Errorf("metro 3 center = %v, want m3-a", c.Center)
	}
}

func TestClusterSMFThresholdMonotonicity(t *testing.T) {
	// Higher t clusters fewer nodes (Table I's first three rows).
	nodes := threeMetros()
	var fracs []float64
	for _, threshold := range []float64{0.01, 0.1, 0.9999} {
		clusters, err := ClusterSMF(nodes, ClusterConfig{Threshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		fracs = append(fracs, Summarize(clusters, len(nodes)).FracClustered)
	}
	if fracs[0] < fracs[1] || fracs[1] < fracs[2] {
		t.Errorf("clustered fractions %v not non-increasing in t", fracs)
	}
	if fracs[2] >= fracs[0] {
		t.Errorf("extreme threshold should cluster strictly fewer nodes: %v", fracs)
	}
}

func TestClusterSMFSecondPassGroupsLeftovers(t *testing.T) {
	// Two nodes that are similar to each other but dissimilar to every
	// center stay singletons in pass 1 and merge in pass 2.
	nodes := append(threeMetros(),
		Node{ID: "pair-1", Map: RatioMap{"rP": 0.5, "rQ": 0.5}},
		Node{ID: "pair-2", Map: RatioMap{"rP": 0.45, "rQ": 0.55}},
	)
	// pair-1 dominates neither rP nor rQ... actually one of the pair will be
	// a center (strongest mapping for rP/rQ). Use maps whose dominant
	// replicas are claimed by stronger nodes.
	nodes = append(nodes,
		Node{ID: "anchor-p", Map: RatioMap{"rP": 1.0}},
		Node{ID: "anchor-q", Map: RatioMap{"rQ": 1.0}},
	)

	single, err := ClusterSMF(nodes, ClusterConfig{Threshold: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	second, err := ClusterSMF(nodes, ClusterConfig{Threshold: 0.95, SecondPass: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s1 := Summarize(single, len(nodes))
	s2 := Summarize(second, len(nodes))
	if s2.NodesClustered < s1.NodesClustered {
		t.Errorf("second pass clustered fewer nodes (%d) than single pass (%d)",
			s2.NodesClustered, s1.NodesClustered)
	}
	// The similar pair must end up together under the second pass.
	if clusterOf(t, second, "pair-1").Center != clusterOf(t, second, "pair-2").Center {
		t.Error("second pass failed to merge the similar singleton pair")
	}
}

func TestClusterSMFDeterministic(t *testing.T) {
	for i := 0; i < 5; i++ {
		a, err := ClusterSMF(threeMetros(), ClusterConfig{Threshold: 0.1, SecondPass: true, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ClusterSMF(threeMetros(), ClusterConfig{Threshold: 0.1, SecondPass: true, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("non-deterministic clustering:\n%v\n%v", a, b)
		}
	}
}

func TestClusterSMFInputOrderIrrelevant(t *testing.T) {
	nodes := threeMetros()
	reversed := make([]Node, len(nodes))
	for i, n := range nodes {
		reversed[len(nodes)-1-i] = n
	}
	a, err := ClusterSMF(nodes, ClusterConfig{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterSMF(reversed, ClusterConfig{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("clustering depends on input order:\n%v\n%v", a, b)
	}
}

func TestClusterSMFValidation(t *testing.T) {
	if _, err := ClusterSMF(threeMetros(), ClusterConfig{Threshold: -0.1}); err == nil {
		t.Error("negative threshold should fail")
	}
	if _, err := ClusterSMF(threeMetros(), ClusterConfig{Threshold: 1.5}); err == nil {
		t.Error("threshold > 1 should fail")
	}
	dup := []Node{{ID: "x", Map: RatioMap{"r": 1}}, {ID: "x", Map: RatioMap{"r": 1}}}
	if _, err := ClusterSMF(dup, ClusterConfig{Threshold: 0.1}); err == nil {
		t.Error("duplicate IDs should fail")
	}
	empty := []Node{{ID: "", Map: RatioMap{"r": 1}}}
	if _, err := ClusterSMF(empty, ClusterConfig{Threshold: 0.1}); err == nil {
		t.Error("empty ID should fail")
	}
}

func TestClusterSMFEmptyAndDegenerateInputs(t *testing.T) {
	clusters, err := ClusterSMF(nil, ClusterConfig{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 0 {
		t.Errorf("clustering nothing produced %v", clusters)
	}
	// Nodes with empty maps become singletons.
	clusters, err = ClusterSMF([]Node{
		{ID: "empty1", Map: RatioMap{}},
		{ID: "empty2", Map: nil},
		{ID: "real", Map: RatioMap{"r": 1}},
	}, ClusterConfig{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Errorf("got %d clusters, want 3 singletons", len(clusters))
	}
}

func TestClusterSMFSortedBySizeThenCenter(t *testing.T) {
	clusters, err := ClusterSMF(threeMetros(), ClusterConfig{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(clusters); i++ {
		if clusters[i].Size() > clusters[i-1].Size() {
			t.Errorf("clusters not sorted by size: %v", clusters)
		}
		if clusters[i].Size() == clusters[i-1].Size() &&
			clusters[i].Center < clusters[i-1].Center {
			t.Errorf("size ties not sorted by center: %v", clusters)
		}
	}
}

func TestClusterSMFScalesToManyNodes(t *testing.T) {
	// A sanity/perf guard: 500 nodes over 50 replica groups must cluster
	// correctly and fast.
	var nodes []Node
	for i := 0; i < 500; i++ {
		group := i % 50
		nodes = append(nodes, Node{
			ID: NodeID(fmt.Sprintf("n%03d", i)),
			Map: RatioMap{
				ReplicaID(fmt.Sprintf("g%d-a", group)): 0.6 + float64(i%5)*0.05,
				ReplicaID(fmt.Sprintf("g%d-b", group)): 0.4 - float64(i%5)*0.05,
			},
		})
	}
	clusters, err := ClusterSMF(nodes, ClusterConfig{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(clusters, len(nodes))
	if s.NumClusters != 50 {
		t.Errorf("got %d clusters, want 50", s.NumClusters)
	}
	if s.NodesClustered != 500 {
		t.Errorf("clustered %d nodes, want all 500", s.NodesClustered)
	}
}

func TestDominant(t *testing.T) {
	r, f := dominant(RatioMap{"b": 0.5, "a": 0.5, "c": 0.3})
	if r != "a" || f != 0.5 {
		t.Errorf("dominant = %v,%v; want a,0.5 (tie to smallest ID)", r, f)
	}
	if r, f := dominant(RatioMap{}); r != "" || f != 0 {
		t.Errorf("dominant of empty = %v,%v", r, f)
	}
}
