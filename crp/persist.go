package crp

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Service snapshots: a CRP deployment accumulates redirection history over
// hours (the paper's bootstrap time is ~100 minutes), so a restarting
// service daemon must not start cold. Snapshots serialize every node's
// probe history; restoring replays the probes through fresh trackers, so
// window and age bounds are re-applied under the restoring service's
// configuration.

// Probe is one recorded redirection observation.
type Probe struct {
	At       time.Time   `json:"at"`
	Replicas []ReplicaID `json:"replicas"`
}

// Probes returns the tracker's current window of observations in recorded
// order. The result is an independent copy.
func (t *Tracker) Probes() []Probe {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Probe, len(t.probes))
	for i, p := range t.probes {
		replicas := make([]ReplicaID, len(p.replicas))
		copy(replicas, p.replicas)
		out[i] = Probe{At: p.at, Replicas: replicas}
	}
	return out
}

type nodeSnapshot struct {
	Node   NodeID  `json:"node"`
	Probes []Probe `json:"probes"`
}

type serviceSnapshot struct {
	Version int            `json:"version"`
	Nodes   []nodeSnapshot `json:"nodes"`
}

const snapshotVersion = 1

// WriteSnapshot serializes the service's full observation state.
func (s *Service) WriteSnapshot(w io.Writer) error {
	snap := serviceSnapshot{Version: snapshotVersion}
	for _, id := range s.Nodes() {
		tr, ok := s.store.get(id)
		if !ok {
			continue
		}
		snap.Nodes = append(snap.Nodes, nodeSnapshot{Node: id, Probes: tr.Probes()})
	}
	return json.NewEncoder(w).Encode(snap)
}

// LoadSnapshot merges a snapshot into the service, replaying each node's
// probes through its tracker. Existing nodes keep their current history and
// receive the snapshot's probes on top.
func (s *Service) LoadSnapshot(r io.Reader) error {
	var snap serviceSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("crp: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("crp: unsupported snapshot version %d", snap.Version)
	}
	for _, n := range snap.Nodes {
		if n.Node == "" {
			return fmt.Errorf("crp: snapshot contains a node with an empty ID")
		}
		for _, p := range n.Probes {
			if err := s.Observe(n.Node, p.At, p.Replicas...); err != nil {
				return err
			}
		}
	}
	return nil
}
