package crp

import (
	"testing"
	"time"
)

// Tombstone GC changes the metadata set the anti-entropy digest is computed
// over, so it must publish like any other mutation: bump the shard version
// and thereby invalidate the cached digest. The original implementation
// deleted the metadata without a version bump — harmless while digests were
// recomputed on every call, but silently wrong the moment a digest cache
// exists: two peers GCing on different schedules would compare stale words
// and either re-sync shards that agree or, worse, never re-sync shards that
// differ.
func TestGCTombstonesRepublishesDigest(t *testing.T) {
	base := time.Unix(1_000_000, 0)
	svc := NewService()
	svc.SetClock(func() time.Time { return base })

	if err := svc.Observe("node-a", base, "R1"); err != nil {
		t.Fatal(err)
	}
	svc.Forget("node-a") // tombstone stamped at base
	shard := svc.ShardOf("node-a")

	d1 := svc.ShardDigests()
	if d2 := svc.ShardDigests(); d2[shard] != d1[shard] {
		t.Fatalf("digest unstable without mutations: %x then %x", d1[shard], d2[shard])
	}

	// A horizon before the deletion time reclaims nothing and must publish
	// nothing: no version movement, digest unchanged.
	v := svc.store.version.Load()
	if n := svc.GCTombstones(base.Add(-time.Hour)); n != 0 {
		t.Fatalf("GC before horizon reclaimed %d tombstones", n)
	}
	if got := svc.store.version.Load(); got != v {
		t.Fatalf("empty GC bumped store version %d -> %d", v, got)
	}
	if d := svc.ShardDigests(); d[shard] != d1[shard] {
		t.Fatalf("empty GC changed digest: %x -> %x", d1[shard], d[shard])
	}

	// Reclaiming the tombstone removes its metadata, so the digest must
	// change — through the cache, not only on a cold recompute.
	if n := svc.GCTombstones(base.Add(time.Hour)); n != 1 {
		t.Fatalf("GC reclaimed %d tombstones, want 1", n)
	}
	if got := svc.store.version.Load(); got != v+1 {
		t.Fatalf("GC bumped store version %d -> %d, want %d", v, got, v+1)
	}
	d3 := svc.ShardDigests()
	if d3[shard] == d1[shard] {
		t.Fatalf("digest unchanged after GC reclaimed the shard's tombstone")
	}

	metas, err := svc.ShardMetas(shard)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 0 {
		t.Fatalf("shard metadata not empty after GC: %+v", metas)
	}
}

// The cached digest must track every metadata mutation class, not just GC:
// observe, forget and remote delta application all bump the shard version,
// so each must be visible through the cache.
func TestShardDigestCacheTracksMutations(t *testing.T) {
	base := time.Unix(2_000_000, 0)
	svc := NewService()
	svc.SetClock(func() time.Time { return base })

	if err := svc.Observe("node-b", base, "R1"); err != nil {
		t.Fatal(err)
	}
	shard := svc.ShardOf("node-b")
	d1 := svc.ShardDigests()[shard]

	if err := svc.Observe("node-b", base.Add(time.Second), "R2"); err != nil {
		t.Fatal(err)
	}
	d2 := svc.ShardDigests()[shard]
	if d2 == d1 {
		t.Fatal("digest unchanged after a version-advancing observe")
	}

	svc.Forget("node-b")
	d3 := svc.ShardDigests()[shard]
	if d3 == d2 {
		t.Fatal("digest unchanged after forget")
	}

	applied, err := svc.ApplyDelta(NodeDelta{
		NodeMeta: NodeMeta{Node: "node-b", Origin: "peer-1", Version: 100},
		Probes:   []Probe{{At: base, Replicas: []ReplicaID{"R3"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Fatal("superseding delta not applied")
	}
	if d4 := svc.ShardDigests()[shard]; d4 == d3 {
		t.Fatal("digest unchanged after remote delta application")
	}
}
