package crp

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Namespace-scoped Service surface: the per-CDN complement to the fused
// queries. A fused deployment still needs single-signal answers — operators
// compare the fused ranking against each CDN's own, the fusion benchmark is
// exactly that comparison, and a namespaced forget withdraws one CDN's
// history after a remapping event without resetting nodes.

// nsObserves tracks per-namespace observe volume. Each namespace is
// interned to a numeric index on first sight so its gauge name
// (crp.service.ns.NNN.observes) joins an all-digit middle-segment family
// that obs.SummarizeGaugeFamily can fold into count/sum/min/mean/max/p99 —
// the daemon's stats reply must not grow by one line per namespace.
type nsObserves struct {
	mu     sync.Mutex
	gauges map[Namespace]*obs.Gauge
}

func newNSObserves() *nsObserves {
	return &nsObserves{gauges: make(map[Namespace]*obs.Gauge)}
}

// bump counts one observe against the namespace of each probed replica.
// Nil receiver (fusion disabled) is a no-op, keeping the single-CDN observe
// path free of namespace work.
func (n *nsObserves) bump(replicas []ReplicaID) {
	if n == nil {
		return
	}
	n.mu.Lock()
	for _, r := range replicas {
		ns := NamespaceOf(r)
		g, ok := n.gauges[ns]
		if !ok {
			g = obs.Default().Gauge(fmt.Sprintf("crp.service.ns.%03d.observes", len(n.gauges)))
			n.gauges[ns] = g
		}
		g.Inc()
	}
	n.mu.Unlock()
}

// nsSim returns the namespace-scoped similarity kernel for ns.
func nsSim(ns Namespace) simFunc {
	return func(a, b ratioVec) float64 { return cosineIn(a, b, ns) }
}

// RatioMapIn returns the sub-map of node's ratio map belonging to namespace
// ns, with qualified replica IDs preserved and mass NOT renormalized (the
// ns mass is the node's probe coverage of that CDN).
func (s *Service) RatioMapIn(ns Namespace, node NodeID) (RatioMap, error) {
	if err := ns.Valid(); err != nil {
		return nil, err
	}
	m, err := s.RatioMap(node)
	if err != nil {
		return nil, err
	}
	return m.NamespaceView(ns), nil
}

// SimilarityIn returns the cosine similarity of two nodes restricted to
// namespace ns: only that CDN's redirections contribute. On a service whose
// replicas all live in ns it is bit-identical to Similarity.
func (s *Service) SimilarityIn(ns Namespace, a, b NodeID) (float64, error) {
	if err := ns.Valid(); err != nil {
		return 0, err
	}
	defer timeQuery()()
	svcMetrics.queries.Inc()
	va, err := s.clientVec(a)
	if err != nil {
		return 0, err
	}
	vb, err := s.clientVec(b)
	if err != nil {
		return 0, err
	}
	return cosineIn(va, vb, ns), nil
}

// ClosestToIn is ClosestTo under a single namespace's signal, with the same
// candidate semantics (nil = all known nodes, empty = none, client never a
// candidate).
func (s *Service) ClosestToIn(ns Namespace, client NodeID, candidates []NodeID) (Scored, bool, error) {
	if err := ns.Valid(); err != nil {
		return Scored{}, false, err
	}
	defer timeQuery()()
	svcMetrics.queries.Inc()
	cv, err := s.clientVec(client)
	if err != nil {
		return Scored{}, false, err
	}
	if candidates == nil {
		best, ok := bestOf(topSnap(cv, s.store.snapshot(), 1, client, nsSim(ns)))
		return best, ok, nil
	}
	cands, err := s.candidateVecs(candidates)
	if err != nil {
		return Scored{}, false, err
	}
	best, ok := bestOf(topVecs(cv, cands, 1, client, nsSim(ns)))
	return best, ok, nil
}

// TopKIn is TopK under a single namespace's signal, with the same candidate
// semantics as TopK.
func (s *Service) TopKIn(ns Namespace, client NodeID, candidates []NodeID, k int) ([]Scored, error) {
	if err := ns.Valid(); err != nil {
		return nil, err
	}
	defer timeQuery()()
	svcMetrics.queries.Inc()
	cv, err := s.clientVec(client)
	if err != nil {
		return nil, err
	}
	if candidates == nil {
		return topSnap(cv, s.store.snapshot(), k, client, nsSim(ns)), nil
	}
	cands, err := s.candidateVecs(candidates)
	if err != nil {
		return nil, err
	}
	return topVecs(cv, cands, k, client, nsSim(ns)), nil
}

// ForgetNamespace withdraws one CDN's history from a node: every replica of
// namespace ns is removed from the node's probe window, probes left empty
// are dropped, and sibling namespaces' probes stay exactly as they were.
// The mutation publishes like an Observe — the entry's version advances and
// the mutation hook fires — so over gossip it replicates as a wholesale
// window replacement: peers converge on the ns-free window without their
// sibling-namespace state being cleared. Returns whether anything changed;
// an unknown node or a node with no ns history is a published no-op (false).
func (s *Service) ForgetNamespace(node NodeID, ns Namespace) (bool, error) {
	if err := ns.Valid(); err != nil {
		return false, err
	}
	return s.store.mutate(node, func(t *Tracker) bool { return t.DropNamespace(ns) }), nil
}
