package crp

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// ReplicaID identifies a CDN replica server, typically its hostname or IP
// address as observed in DNS answers.
type ReplicaID string

// RatioMap is a node's redirection frequency map ν_N: for each replica
// server the node has been redirected to, the fraction of redirections that
// went to it. A well-formed ratio map is non-negative and sums to 1, but the
// similarity functions only require non-negative entries.
type RatioMap map[ReplicaID]float64

// Clone returns an independent copy of the map.
func (m RatioMap) Clone() RatioMap {
	out := make(RatioMap, len(m))
	for r, f := range m {
		out[r] = f
	}
	return out
}

// Sum returns the total of all ratios. Accumulation follows the sorted
// replica order so results are bit-for-bit reproducible across runs (Go
// randomizes map iteration, and float addition is not associative).
func (m RatioMap) Sum() float64 {
	s := 0.0
	for _, r := range m.Replicas() {
		s += m[r]
	}
	return s
}

// Norm returns the Euclidean norm of the map viewed as a vector, with the
// same deterministic accumulation order as Sum.
func (m RatioMap) Norm() float64 {
	s := 0.0
	for _, r := range m.Replicas() {
		s += m[r] * m[r]
	}
	return math.Sqrt(s)
}

// Normalize returns a copy scaled so the ratios sum to 1. Normalizing an
// empty or all-zero map returns an empty map.
func (m RatioMap) Normalize() RatioMap {
	sum := m.Sum()
	if sum <= 0 {
		return RatioMap{}
	}
	out := make(RatioMap, len(m))
	for r, f := range m {
		out[r] = f / sum
	}
	return out
}

// Replicas returns the replica servers in the map, sorted for stable output.
func (m RatioMap) Replicas() []ReplicaID {
	out := make([]ReplicaID, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	slices.Sort(out)
	return out
}

// String renders the map in the paper's ⟨r ⇒ f, …⟩ notation with stable
// ordering.
func (m RatioMap) String() string {
	var sb strings.Builder
	sb.WriteString("⟨")
	for i, r := range m.Replicas() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s ⇒ %.3f", string(r), m[r])
	}
	sb.WriteString("⟩")
	return sb.String()
}

// Dot returns the dot product of two ratio maps. A zero dot product means
// the hosts share no replica servers, the case where CRP can only report
// "not near one another". Accumulation follows the smaller map's sorted
// replica order for bit-for-bit reproducibility.
func Dot(a, b RatioMap) float64 {
	// Iterate over the smaller map.
	if len(b) < len(a) {
		a, b = b, a
	}
	s := 0.0
	for _, r := range a.Replicas() {
		if fb, ok := b[r]; ok {
			s += a[r] * fb
		}
	}
	return s
}

// CosineSimilarity returns the cosine similarity of two ratio maps on
// [0, 1]: 1 for identical direction, 0 for orthogonal maps (no shared
// replicas) or when either map is empty. This is the paper's relative
// distance metric (§III-B):
//
//	cos_sim(A,B) = Σ ν_A,i·ν_B,i / sqrt(Σ ν_A,i² · Σ ν_B,i²)
//
// This one-shot form keeps the Dot early-out: disjoint maps (the common
// case when scoring across metros) cost a single sort and no norm work.
// The fan-out paths — RankBySimilarity, ClusterSMF, the Service queries —
// instead compile each map once to a sorted vector and run the allocation-
// free merge-join kernel in ratiovec.go; both kernels accumulate in
// ascending replica order and are bit-identical.
func CosineSimilarity(a, b RatioMap) float64 {
	dot := Dot(a, b)
	if dot == 0 {
		return 0
	}
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	sim := dot / (na * nb)
	// Guard against floating-point drift outside [0, 1].
	if sim > 1 {
		return 1
	}
	if sim < 0 {
		return 0
	}
	return sim
}

// JaccardSimilarity returns |A∩B| / |A∪B| over the replica *sets* of two
// ratio maps, ignoring frequencies. It is not part of the paper's design;
// it exists as an ablation baseline to quantify how much the frequency
// weighting in cosine similarity contributes.
func JaccardSimilarity(a, b RatioMap) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	inter := 0
	for r := range a {
		if _, ok := b[r]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// OverlapCount returns the number of replica servers two maps share — the
// crudest similarity signal, used as an ablation baseline.
func OverlapCount(a, b RatioMap) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for r := range a {
		if _, ok := b[r]; ok {
			n++
		}
	}
	return n
}
