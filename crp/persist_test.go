package crp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestTrackerProbesCopy(t *testing.T) {
	tr := NewTracker()
	tr.Observe(t0, "r1", "r2")
	tr.Observe(t0.Add(time.Minute), "r3")
	probes := tr.Probes()
	if len(probes) != 2 {
		t.Fatalf("Probes = %d, want 2", len(probes))
	}
	if !probes[0].At.Equal(t0) || len(probes[0].Replicas) != 2 {
		t.Errorf("probe 0 = %+v", probes[0])
	}
	probes[0].Replicas[0] = "tampered"
	if tr.Probes()[0].Replicas[0] == "tampered" {
		t.Error("Probes exposes internal storage")
	}
}

func TestServiceSnapshotRoundTrip(t *testing.T) {
	src := populateService(t)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	dst := NewService(WithWindow(10))
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}

	if !reflect.DeepEqual(src.Nodes(), dst.Nodes()) {
		t.Fatalf("node sets differ: %v vs %v", src.Nodes(), dst.Nodes())
	}
	for _, id := range src.Nodes() {
		a, err := src.RatioMap(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := dst.RatioMap(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("node %q maps differ:\n%v\n%v", id, a, b)
		}
	}
}

func TestServiceSnapshotReappliesWindow(t *testing.T) {
	// A snapshot from an unbounded service restored into a windowed one is
	// re-trimmed by the window.
	src := NewService()
	for i := 0; i < 50; i++ {
		if err := src.Observe("n", t0.Add(time.Duration(i)*time.Minute), "r"); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewService(WithWindow(5))
	if err := dst.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	tr, ok := dst.store.get("n")
	if !ok {
		t.Fatal("restored service does not know node n")
	}
	if got := tr.Len(); got != 5 {
		t.Errorf("restored tracker holds %d probes, want window of 5", got)
	}
}

func TestServiceSnapshotMerges(t *testing.T) {
	a := NewService()
	if err := a.Observe("n", t0, "r1"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewService()
	if err := b.Observe("n", t0.Add(time.Minute), "r2"); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := b.RatioMap("n")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Errorf("merged map = %v, want both replicas", m)
	}
}

func TestLoadSnapshotErrors(t *testing.T) {
	s := NewService()
	if err := s.LoadSnapshot(strings.NewReader("{oops")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if err := s.LoadSnapshot(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("unknown version accepted")
	}
	if err := s.LoadSnapshot(strings.NewReader(
		`{"version":1,"nodes":[{"node":"","probes":[]}]}`)); err == nil {
		t.Error("empty node ID accepted")
	}
}
