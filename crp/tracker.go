package crp

import (
	"sync"
	"time"
)

// A probe is one redirection observation: a single DNS lookup of a
// CDN-accelerated name, which may return several replica servers (Akamai
// returns two A records).
type probe struct {
	at       time.Time
	replicas []ReplicaID
}

// Tracker accumulates a node's CDN redirections and derives its ratio map.
// The window is counted in probes, matching the paper's §VI study of "probe
// window sizes, i.e., the number of recent redirections considered in a
// recommendation" (Fig. 9). Tracker is safe for concurrent use.
//
// Each probe contributes equal total weight to the ratio map, split evenly
// across the replicas it returned, so the ratios always sum to 1 as the
// paper's formulation requires.
type Tracker struct {
	mu     sync.Mutex
	window int           // max probes kept; 0 = unbounded ("all probes")
	maxAge time.Duration // max probe age relative to the newest; 0 = unbounded
	probes []probe

	// Derived state, rebuilt lazily: the ratio map and its compiled vector
	// are cached between observations so repeated queries (the steady state
	// of a positioning service) stop rebuilding them from the probe window.
	// dirty is set by Observe and Reset. Expiry keys off the newest probe,
	// not the wall clock, so a cached map never goes stale between probes.
	dirty     bool
	cachedMap RatioMap
	cachedVec ratioVec
}

// TrackerOption customizes a Tracker.
type TrackerOption func(*Tracker)

// WithWindow bounds the tracker to the last n probes; n <= 0 keeps all
// probes (the paper's "all probes" configuration).
func WithWindow(n int) TrackerOption {
	return func(t *Tracker) {
		if n < 0 {
			n = 0
		}
		t.window = n
	}
}

// WithMaxAge drops probes older than d relative to the most recent probe,
// bounding how much stale redirection history can influence the map. The
// paper observes that in dynamic environments long histories hurt; a time
// bound is the natural complement to the probe-count window.
func WithMaxAge(d time.Duration) TrackerOption {
	return func(t *Tracker) {
		if d < 0 {
			d = 0
		}
		t.maxAge = d
	}
}

// NewTracker returns an empty tracker.
func NewTracker(opts ...TrackerOption) *Tracker {
	t := &Tracker{dirty: true}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Observe records one probe: the replica servers a single CDN lookup
// returned at the given time. Probes must be supplied in non-decreasing
// time order; out-of-order probes are accepted but age-based expiry keys off
// the newest probe seen. A probe with no replicas is ignored.
func (t *Tracker) Observe(at time.Time, replicas ...ReplicaID) {
	if len(replicas) == 0 {
		return
	}
	cp := make([]ReplicaID, len(replicas))
	copy(cp, replicas)

	t.mu.Lock()
	defer t.mu.Unlock()
	t.probes = append(t.probes, probe{at: at, replicas: cp})
	t.compactLocked()
	t.dirty = true
}

// compactLocked enforces the probe-count and age windows. Both filters
// compact in place; the vacated tail of the backing array is zeroed so the
// dropped probes' replica slices become collectable — a long-lived tracker
// must not pin its entire history through the array tail.
func (t *Tracker) compactLocked() {
	before := len(t.probes)
	if t.window > 0 && len(t.probes) > t.window {
		drop := len(t.probes) - t.window
		t.probes = append(t.probes[:0], t.probes[drop:]...)
	}
	if t.maxAge > 0 && len(t.probes) > 0 {
		newest := t.probes[0].at
		for _, p := range t.probes {
			if p.at.After(newest) {
				newest = p.at
			}
		}
		cutoff := newest.Add(-t.maxAge)
		kept := t.probes[:0]
		for _, p := range t.probes {
			if !p.at.Before(cutoff) {
				kept = append(kept, p)
			}
		}
		t.probes = kept
	}
	if n := len(t.probes); n < before {
		if cap(t.probes) >= 64 && n < cap(t.probes)/4 {
			// A large expiry (long maxAge gap) leaves a mostly-empty backing
			// array; reallocate instead of carrying it forever.
			t.probes = append(make([]probe, 0, n), t.probes...)
		} else {
			clear(t.probes[n:before])
		}
	}
}

// Len returns the number of probes currently in the window.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.probes)
}

// RatioMap derives the node's current redirection ratio map from the probes
// in the window. The result is freshly allocated (a clone of the cached
// map) and sums to 1 unless the tracker is empty (in which case it is
// empty).
func (t *Tracker) RatioMap() RatioMap {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refreshLocked()
	return t.cachedMap.Clone()
}

// vec returns the compiled form of the current ratio map. The returned
// vector is immutable and shared: callers must not modify it. This is the
// Service query path's representation — between observations it costs one
// mutex acquisition and no allocation.
func (t *Tracker) vec() ratioVec {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.refreshLocked()
	return t.cachedVec
}

// refreshLocked rebuilds the cached ratio map and compiled vector if an
// Observe or Reset invalidated them.
func (t *Tracker) refreshLocked() {
	if !t.dirty {
		return
	}
	m := make(RatioMap)
	if len(t.probes) > 0 {
		perProbe := 1 / float64(len(t.probes))
		for _, p := range t.probes {
			w := perProbe / float64(len(p.replicas))
			for _, r := range p.replicas {
				m[r] += w
			}
		}
	}
	t.cachedMap = m
	t.cachedVec = compileRatioMap(m)
	t.dirty = false
}

// LastProbe returns the time of the most recent probe and whether one
// exists.
func (t *Tracker) LastProbe() (time.Time, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.probes) == 0 {
		return time.Time{}, false
	}
	newest := t.probes[0].at
	for _, p := range t.probes {
		if p.at.After(newest) {
			newest = p.at
		}
	}
	return newest, true
}

// DropNamespace removes every replica belonging to namespace ns from the
// probe window, discarding probes left empty, and reports whether anything
// was removed. Sibling namespaces' probes are untouched — this is the
// tracker half of a namespaced forget: one CDN's history is withdrawn (say,
// after a remapping event invalidated it) without resetting the node.
func (t *Tracker) DropNamespace(ns Namespace) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	changed := false
	kept := t.probes[:0]
	for _, p := range t.probes {
		keptReplicas := p.replicas[:0]
		for _, r := range p.replicas {
			if NamespaceOf(r) == ns {
				changed = true
				continue
			}
			keptReplicas = append(keptReplicas, r)
		}
		p.replicas = keptReplicas
		if len(p.replicas) > 0 {
			kept = append(kept, p)
		}
	}
	if n := len(kept); n < len(t.probes) {
		clear(t.probes[n:])
	}
	t.probes = kept
	if changed {
		t.dirty = true
	}
	return changed
}

// Reset discards all recorded probes.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.probes = nil
	t.dirty = true
	t.cachedMap = nil
	t.cachedVec = ratioVec{}
}
