package crp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

var nsBase = time.Unix(1_810_000_000, 0).UTC()

// feedStream replays one deterministic observation stream into any number of
// services, so bit-level comparisons start from identical inputs.
func feedStream(t *testing.T, seed int64, ns Namespace, nodes, probes int, svcs ...*Service) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nodes; i++ {
		node := NodeID(fmt.Sprintf("n%03d", i))
		for k := 0; k < probes; k++ {
			at := nsBase.Add(time.Duration(i*probes+k) * time.Minute)
			ids := []ReplicaID{
				Qualify(ns, ReplicaID(fmt.Sprintf("r%02d", rng.Intn(20)))),
				Qualify(ns, ReplicaID(fmt.Sprintf("r%02d", rng.Intn(20)))),
			}
			for _, svc := range svcs {
				if err := svc.Observe(node, at, ids...); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestSingleNamespacePinAcrossStoreShapes is the back-compat pin the
// refactor is gated on: a service holding a single namespace — the default
// (pre-refactor IDs) or one named CDN — answers and serializes bit-identically
// with the fusion kernel enabled or disabled, under all three store shapes.
// Ratio maps, compiled-vector query results, snapshot bytes and shard delta
// digests all compare equal.
func TestSingleNamespacePinAcrossStoreShapes(t *testing.T) {
	for _, shape := range storeShapes {
		for _, ns := range []Namespace{DefaultNamespace, "cdnA"} {
			name := shape.name + "/named"
			if ns == DefaultNamespace {
				name = shape.name + "/default-ns"
			}
			t.Run(name, func(t *testing.T) {
				plain := NewServiceWithStore(shape.cfg, WithWindow(12))
				fused := NewServiceWithStore(shape.cfg, WithWindow(12))
				if err := fused.EnableFusion(FusionConfig{}); err != nil {
					t.Fatal(err)
				}
				feedStream(t, 42, ns, 24, 6, plain, fused)

				nodes := plain.Nodes()
				if len(nodes) != 24 {
					t.Fatalf("plain service holds %d nodes", len(nodes))
				}
				for _, node := range nodes {
					pm, err1 := plain.RatioMap(node)
					fm, err2 := fused.RatioMap(node)
					if err1 != nil || err2 != nil {
						t.Fatalf("RatioMap(%s): %v / %v", node, err1, err2)
					}
					if len(pm) != len(fm) {
						t.Fatalf("RatioMap(%s) sizes diverge", node)
					}
					for r, v := range pm {
						if fm[r] != v {
							t.Fatalf("RatioMap(%s)[%s] = %v vs %v", node, r, fm[r], v)
						}
					}
					pk, err1 := plain.TopK(node, nil, 8)
					fk, err2 := fused.TopK(node, nil, 8)
					if err1 != nil || err2 != nil {
						t.Fatalf("TopK(%s): %v / %v", node, err1, err2)
					}
					if len(pk) != len(fk) {
						t.Fatalf("TopK(%s) lengths diverge", node)
					}
					for i := range pk {
						if pk[i] != fk[i] {
							t.Fatalf("TopK(%s)[%d] = %+v vs %+v", node, i, fk[i], pk[i])
						}
					}
				}
				for _, pair := range [][2]NodeID{{"n000", "n001"}, {"n005", "n017"}} {
					ps, err1 := plain.Similarity(pair[0], pair[1])
					fs, err2 := fused.Similarity(pair[0], pair[1])
					if err1 != nil || err2 != nil {
						t.Fatalf("Similarity%v: %v / %v", pair, err1, err2)
					}
					if ps != fs {
						t.Fatalf("Similarity%v = %v vs %v", pair, fs, ps)
					}
				}

				var pb, fb bytes.Buffer
				if err := plain.WriteSnapshot(&pb); err != nil {
					t.Fatal(err)
				}
				if err := fused.WriteSnapshot(&fb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(pb.Bytes(), fb.Bytes()) {
					t.Fatal("snapshot bytes diverge with fusion enabled")
				}

				pd, fd := plain.ShardDigests(), fused.ShardDigests()
				if len(pd) != len(fd) {
					t.Fatalf("shard digest widths diverge: %d vs %d", len(pd), len(fd))
				}
				for i := range pd {
					if pd[i] != fd[i] {
						t.Fatalf("shard %d digest diverges", i)
					}
				}

				for _, node := range nodes {
					pdelta, ok1 := plain.ExportDelta(node)
					fdelta, ok2 := fused.ExportDelta(node)
					if !ok1 || !ok2 {
						t.Fatalf("ExportDelta(%s) = %v / %v", node, ok1, ok2)
					}
					pj, _ := json.Marshal(pdelta)
					fj, _ := json.Marshal(fdelta)
					if !bytes.Equal(pj, fj) {
						t.Fatalf("delta for %s diverges:\n%s\n%s", node, pj, fj)
					}
				}
			})
		}
	}
}

// TestCrossNamespaceIsolation: probes under CDN A must not perturb CDN B's
// scoped signal. Ratios are fractions of the node's whole probe history, so
// growing A's history rescales B's sub-map uniformly — the invariants are
// the sub-vector's direction, not its magnitude: the replica set, the
// within-namespace proportions, the scoped similarity and the scoped
// ranking order all stay put while A's history keeps growing.
func TestCrossNamespaceIsolation(t *testing.T) {
	svc := NewService()
	if err := svc.EnableFusion(FusionConfig{}); err != nil {
		t.Fatal(err)
	}
	feedStream(t, 1, "cdnA", 12, 4, svc)
	feedStream(t, 2, "cdnB", 12, 4, svc)

	type view struct {
		m   RatioMap
		sim float64
		top []Scored
	}
	capture := func() view {
		m, err := svc.RatioMapIn("cdnB", "n003")
		if err != nil {
			t.Fatal(err)
		}
		sim, err := svc.SimilarityIn("cdnB", "n003", "n007")
		if err != nil {
			t.Fatal(err)
		}
		top, err := svc.TopKIn("cdnB", "n003", nil, 5)
		if err != nil {
			t.Fatal(err)
		}
		return view{m, sim, top}
	}

	const tol = 1e-12
	before := capture()
	feedStream(t, 3, "cdnA", 12, 6, svc) // keep hammering A
	after := capture()

	if len(before.m) != len(after.m) {
		t.Fatalf("cdnB sub-map size changed: %d -> %d", len(before.m), len(after.m))
	}
	bSum, aSum := before.m.Sum(), after.m.Sum()
	for r, v := range before.m {
		if got := after.m[r]; abs(got/aSum-v/bSum) > tol {
			t.Fatalf("cdnB proportion for %s changed: %v -> %v", r, v/bSum, got/aSum)
		}
	}
	if abs(before.sim-after.sim) > tol {
		t.Fatalf("cdnB-scoped similarity changed: %v -> %v", before.sim, after.sim)
	}
	if len(before.top) != len(after.top) {
		t.Fatalf("cdnB-scoped TopK length changed")
	}
	for i := range before.top {
		if before.top[i].Node != after.top[i].Node {
			t.Fatalf("cdnB-scoped TopK[%d] node changed: %+v -> %+v", i, before.top[i], after.top[i])
		}
		if abs(before.top[i].Similarity-after.top[i].Similarity) > tol {
			t.Fatalf("cdnB-scoped TopK[%d] similarity changed: %+v -> %+v", i, before.top[i], after.top[i])
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestForgetNamespaceReplicatesOverDelta: a namespaced forget publishes like
// an observe, so the resulting delta replicates the ns-free window to a peer
// without clearing the sibling namespace's state there.
func TestForgetNamespaceReplicatesOverDelta(t *testing.T) {
	for _, shape := range storeShapes {
		t.Run(shape.name, func(t *testing.T) {
			src := NewServiceWithStore(shape.cfg, WithWindow(10))
			src.SetOrigin("origin-a")
			dst := NewServiceWithStore(shape.cfg, WithWindow(10))
			dst.SetOrigin("origin-b")
			feedStream(t, 5, "cdnA", 6, 3, src, dst)
			feedStream(t, 6, "cdnB", 6, 3, src, dst)

			const node = NodeID("n002")
			beforeB, err := src.RatioMapIn("cdnB", node)
			if err != nil {
				t.Fatal(err)
			}
			if len(beforeB) == 0 {
				t.Fatal("test needs cdnB history on the node")
			}

			changed, err := src.ForgetNamespace(node, "cdnA")
			if err != nil || !changed {
				t.Fatalf("ForgetNamespace = %v, %v", changed, err)
			}
			if m, _ := src.RatioMapIn("cdnA", node); len(m) != 0 {
				t.Fatalf("cdnA view survived the forget: %v", m)
			}
			// The sibling's probes are intact: same replica set, renormalized
			// over the now-smaller history.
			wantB, err := src.RatioMapIn("cdnB", node)
			if err != nil {
				t.Fatal(err)
			}
			if len(wantB) != len(beforeB) {
				t.Fatalf("forget dropped cdnB replicas: %d -> %d", len(beforeB), len(wantB))
			}
			for r := range beforeB {
				if wantB[r] == 0 {
					t.Fatalf("cdnB replica %s lost in the forget", r)
				}
			}

			d, ok := src.ExportDelta(node)
			if !ok {
				t.Fatal("no delta after namespaced forget")
			}
			applied, err := dst.ApplyDelta(d)
			if err != nil || !applied {
				t.Fatalf("ApplyDelta = %v, %v", applied, err)
			}
			if m, _ := dst.RatioMapIn("cdnA", node); len(m) != 0 {
				t.Fatalf("peer still holds cdnA state: %v", m)
			}
			gotB, err := dst.RatioMapIn("cdnB", node)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotB) != len(wantB) {
				t.Fatalf("peer cdnB view resized: %d vs %d", len(gotB), len(wantB))
			}
			for r, v := range wantB {
				if gotB[r] != v {
					t.Fatalf("peer cdnB ratio for %s = %v, want %v", r, gotB[r], v)
				}
			}

			// Replaying the forget is a published no-op: nothing changed, so
			// the version must not advance (no gossip churn).
			verBefore := d.Version
			changed, err = src.ForgetNamespace(node, "cdnA")
			if err != nil || changed {
				t.Fatalf("replayed ForgetNamespace = %v, %v; want no-op", changed, err)
			}
			d2, ok := src.ExportDelta(node)
			if !ok || d2.Version != verBefore {
				t.Fatalf("no-op forget advanced version: %d -> %d", verBefore, d2.Version)
			}
		})
	}
}

func TestForgetNamespaceEdgeCases(t *testing.T) {
	svc := NewService()
	// Unknown node: no mutation, no error.
	changed, err := svc.ForgetNamespace("ghost", "cdnA")
	if err != nil || changed {
		t.Fatalf("unknown node: %v, %v", changed, err)
	}
	// Invalid namespace: rejected before touching the store.
	if _, err := svc.ForgetNamespace("ghost", "bad!ns"); err == nil {
		t.Fatal("invalid namespace accepted")
	}
	// Forgetting the default namespace drops only unqualified replicas.
	if err := svc.Observe("n1", nsBase, "bare", "cdnA!r1"); err != nil {
		t.Fatal(err)
	}
	changed, err = svc.ForgetNamespace("n1", DefaultNamespace)
	if err != nil || !changed {
		t.Fatalf("default-ns forget = %v, %v", changed, err)
	}
	m, err := svc.RatioMap("n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m["cdnA!r1"] == 0 {
		t.Fatalf("map after default-ns forget = %v", m)
	}
}

// TestDropNamespaceTracker exercises the tracker-level primitive directly:
// in-place compaction, emptied-probe dropping and the changed report.
func TestDropNamespaceTracker(t *testing.T) {
	tr := NewTracker(WithWindow(8))
	tr.Observe(nsBase, "cdnA!r1", "cdnB!s1")
	tr.Observe(nsBase.Add(time.Minute), "cdnA!r2")
	tr.Observe(nsBase.Add(2*time.Minute), "cdnB!s2")

	if !tr.DropNamespace("cdnA") {
		t.Fatal("DropNamespace(cdnA) reported no change")
	}
	m := tr.RatioMap()
	for r := range m {
		if NamespaceOf(r) != "cdnB" {
			t.Fatalf("replica %s survived the drop", r)
		}
	}
	if len(m) != 2 {
		t.Fatalf("map = %v, want the two cdnB replicas", m)
	}
	if tr.DropNamespace("cdnA") {
		t.Fatal("second DropNamespace(cdnA) reported a change")
	}
	if tr.DropNamespace("ghost") {
		t.Fatal("DropNamespace of an absent namespace reported a change")
	}
}

// TestScopedQueriesValidateNamespace: every *In method rejects a malformed
// namespace up front.
func TestScopedQueriesValidateNamespace(t *testing.T) {
	svc := NewService()
	bad := Namespace("oops!sep")
	if _, err := svc.RatioMapIn(bad, "n"); err == nil {
		t.Fatal("RatioMapIn accepted a bad namespace")
	}
	if _, err := svc.SimilarityIn(bad, "a", "b"); err == nil {
		t.Fatal("SimilarityIn accepted a bad namespace")
	}
	if _, _, err := svc.ClosestToIn(bad, "c", nil); err == nil {
		t.Fatal("ClosestToIn accepted a bad namespace")
	}
	if _, err := svc.TopKIn(bad, "c", nil, 3); err == nil {
		t.Fatal("TopKIn accepted a bad namespace")
	}
}
