package crp

import (
	"sync"
	"testing"
)

func seedSelector() *NameSelector {
	s := NewNameSelector()
	// A good name: diverse nearby replicas, nothing filtered.
	for i := 0; i < 10; i++ {
		s.RecordLookup("good.cdn.", []ReplicaID{
			ReplicaID("r" + string(rune('a'+i%4))),
			ReplicaID("r" + string(rune('a'+(i+1)%4))),
		}, nil)
		s.RecordPing("good.cdn.", 12+float64(i))
	}
	// A bad name: answers dominated by filtered fallback servers.
	for i := 0; i < 10; i++ {
		s.RecordLookup("owned.cdn.", []ReplicaID{"core1", "core2"}, []bool{true, true})
		s.RecordPing("owned.cdn.", 180+float64(i))
	}
	// A pinned name: always the same single replica.
	for i := 0; i < 10; i++ {
		s.RecordLookup("pinned.cdn.", []ReplicaID{"only"}, nil)
	}
	return s
}

func TestNameSelectorQualities(t *testing.T) {
	s := seedSelector()
	qs := s.Qualities()
	if len(qs) != 3 {
		t.Fatalf("qualities for %d names, want 3", len(qs))
	}
	byName := map[string]NameQuality{}
	for _, q := range qs {
		byName[q.Name] = q
	}
	good := byName["good.cdn."]
	if good.Lookups != 10 || good.DistinctReplicas != 4 {
		t.Errorf("good stats: %+v", good)
	}
	if good.FilteredFraction != 0 {
		t.Errorf("good FilteredFraction = %v", good.FilteredFraction)
	}
	if good.MedianPingMs < 12 || good.MedianPingMs > 22 {
		t.Errorf("good MedianPingMs = %v", good.MedianPingMs)
	}
	owned := byName["owned.cdn."]
	if owned.FilteredFraction != 1 {
		t.Errorf("owned FilteredFraction = %v, want 1", owned.FilteredFraction)
	}
	if byName["pinned.cdn."].DistinctReplicas != 1 {
		t.Errorf("pinned DistinctReplicas = %d", byName["pinned.cdn."].DistinctReplicas)
	}
}

func TestNameSelectorFilterRule(t *testing.T) {
	// No-probing mode: only the filtered-fraction rule applies.
	s := seedSelector()
	got := s.Select(SelectCriteria{})
	if len(got) != 1 || got[0] != "good.cdn." {
		t.Errorf("Select = %v, want only good.cdn.", got)
	}
}

func TestNameSelectorPingRule(t *testing.T) {
	s := NewNameSelector()
	for i := 0; i < 5; i++ {
		s.RecordLookup("near.cdn.", []ReplicaID{"a", "b"}, nil)
		s.RecordPing("near.cdn.", 15)
		s.RecordLookup("far.cdn.", []ReplicaID{"x", "y"}, nil)
		s.RecordPing("far.cdn.", 250)
	}
	got := s.Select(SelectCriteria{MaxMedianPingMs: 100})
	if len(got) != 1 || got[0] != "near.cdn." {
		t.Errorf("Select with ping rule = %v, want only near.cdn.", got)
	}
	// Without the ping criterion both pass.
	if got := s.Select(SelectCriteria{}); len(got) != 2 {
		t.Errorf("Select without ping rule = %v, want both", got)
	}
}

func TestNameSelectorNegativePingIgnored(t *testing.T) {
	s := NewNameSelector()
	s.RecordLookup("n.", []ReplicaID{"a", "b"}, nil)
	s.RecordPing("n.", -5)
	if q := s.Qualities()[0]; q.MedianPingMs != 0 {
		t.Errorf("negative ping recorded: %+v", q)
	}
}

func TestNameSelectorEmpty(t *testing.T) {
	s := NewNameSelector()
	if got := s.Select(SelectCriteria{}); got != nil {
		t.Errorf("Select on empty selector = %v", got)
	}
	if got := s.Qualities(); len(got) != 0 {
		t.Errorf("Qualities on empty selector = %v", got)
	}
}

func TestNameSelectorConcurrent(t *testing.T) {
	s := NewNameSelector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.RecordLookup("n.", []ReplicaID{"a"}, nil)
				s.RecordPing("n.", float64(i))
				_ = s.Qualities()
			}
		}(w)
	}
	wg.Wait()
	if q := s.Qualities()[0]; q.Lookups != 800 {
		t.Errorf("Lookups = %d, want 800", q.Lookups)
	}
}
