package crp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// The sharded tracker store is the Service's storage core. The paper frames
// CRP as a shared positioning service under continuous probe traffic
// (§III-B); with a single tracker map and a single compiled all-nodes
// snapshot, every Observe invalidates the snapshot *globally* and the next
// query repays an O(N) recompile — under steady ingestion the snapshot hit
// ratio collapses to zero. Here NodeIDs hash to S shards (a power of two,
// ~4× GOMAXPROCS), each shard owning its tracker submap, its own lock, a
// version counter and a compiled sub-snapshot of nodeVecs. A mutation
// dirties only its shard, so snapshot assembly recompiles only the dirty
// shards and stitches the immutable per-shard slices back into the global
// candidate set: the steady-state cost of one mutation drops from O(N) to
// O(N/S) — and usually to O(N/S copy + 1 recompile), because a shard whose
// membership did not change patches its previous sub-snapshot in place
// instead of re-collecting and re-sorting it.

// StoreConfig tunes the Service's sharded tracker store. It exists for
// benchmarks and tests that need to pin a specific store shape — production
// callers should use NewService, which picks defaults from the host.
type StoreConfig struct {
	// Shards is the shard count; it is rounded up to a power of two.
	// Zero or negative picks the default (~4× GOMAXPROCS, at least 256).
	Shards int
	// FullRebuild disables incremental sub-snapshot maintenance: a dirty
	// shard re-collects and re-sorts its whole submap instead of patching
	// changed vectors in place. With Shards: 1 this reproduces the
	// pre-sharding single-snapshot design, the baseline the churn benchmark
	// compares against.
	FullRebuild bool
}

// defaultShardCount returns the default store width: the next power of two
// of 4× GOMAXPROCS, clamped to [256, 1024]. The large floor matters even on
// small hosts — shards bound the *invalidation scope* of a mutation, not
// just lock contention. A rebuild patches every shard a batch of writes
// touched, each patch copying N/S entries, so with B writes spread across
// shards the copied volume is ≈ S·(1-(1-1/S)^B)·N/S entries — a quantity
// that *shrinks* as S grows, along with the allocation garbage those copies
// feed the collector. The churn benchmark measures the effect directly: at
// 50k nodes under a 1.5k/s observe stream, going from 64 to 256 shards
// nearly halves query p99 on a single-core host. Per-shard fixed overhead
// (two small maps, a gauge, three words of sync state) is a few hundred
// bytes, so even a store holding a handful of nodes pays nothing noticeable
// for an oversized shard table.
func defaultShardCount() int {
	return shardCount(4 * runtime.GOMAXPROCS(0))
}

// shardCount rounds n up to a power of two in [256, 1024].
func shardCount(n int) int {
	const floor, ceil = 256, 1024
	if n < floor {
		n = floor
	}
	if n > ceil {
		n = ceil
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// store is the sharded tracker map plus the stitched-snapshot cache.
type store struct {
	shards []storeShard
	mask   uint32
	opts   []TrackerOption
	full   bool // FullRebuild mode

	// version counts completed mutations store-wide; it is bumped strictly
	// after the mutation (tracker update and shard bookkeeping) lands, so a
	// stitched snapshot assembled concurrently with a mutation is tagged
	// with the pre-mutation version and reassembled on the next query.
	version atomic.Uint64

	// Stitched snapshot cache: the per-shard slices as of stitchVersion.
	// Assembly is O(S) slice-header copies when no shard is dirty.
	stitchMu      sync.Mutex
	stitched      storeSnap
	stitchVersion uint64
	stitchValid   bool
}

// storeShard owns one partition of the node space.
type storeShard struct {
	mu       sync.RWMutex
	trackers map[NodeID]*Tracker
	// dirty holds nodes whose tracker changed since the last sub-snapshot
	// build; structural records membership changes (add/forget), which force
	// a full re-collect. Both are guarded by mu. A node's dirty mark is set
	// strictly after its tracker mutation lands, so a rebuild that consumes
	// the mark always compiles the post-mutation vector.
	dirty      map[NodeID]struct{}
	structural bool

	// version counts completed mutations to this shard, bumped after the
	// mutation lands (same publication rule as store.version).
	version atomic.Uint64

	// Compiled sub-snapshot: nodeVecs sorted by NodeID, immutable once
	// published. snapMu single-flights rebuilds — concurrent queries that
	// find the shard dirty serialize here, and all but the first return the
	// freshly built slice without duplicating the work.
	snapMu      sync.Mutex
	snapVecs    []nodeVec
	snapVersion uint64

	nodes *obs.Gauge // crp.service.shard.NNN.nodes
}

// storeSnap is a stitched point-in-time view of the store's compiled
// candidate vectors: one immutable sorted slice per shard. Query kernels
// consume it part-wise; total is the candidate count across all parts.
type storeSnap struct {
	parts [][]nodeVec
	total int
}

// flatten concatenates the parts into one slice, for consumers that need a
// single contiguous candidate set (the clustering path, which sorts and
// indexes it anyway). The result is freshly allocated and safe to reorder.
func (s storeSnap) flatten() []nodeVec {
	out := make([]nodeVec, 0, s.total)
	for _, p := range s.parts {
		out = append(out, p...)
	}
	return out
}

// newStore builds an empty store with cfg.Shards shards (rounded up to a
// power of two) applying opts to every tracker it creates.
func newStore(cfg StoreConfig, opts []TrackerOption) *store {
	n := cfg.Shards
	if n <= 0 {
		n = defaultShardCount()
	}
	n = shardCount2(n)
	st := &store{
		shards: make([]storeShard, n),
		mask:   uint32(n - 1),
		opts:   opts,
		full:   cfg.FullRebuild,
	}
	for i := range st.shards {
		st.shards[i].trackers = make(map[NodeID]*Tracker)
		st.shards[i].dirty = make(map[NodeID]struct{})
		st.shards[i].nodes = obs.Default().Gauge(fmt.Sprintf("crp.service.shard.%03d.nodes", i))
	}
	svcMetrics.shardWidth.Set(int64(n))
	return st
}

// shardCount2 rounds n up to a power of two without applying the default
// clamp, so explicit StoreConfig{Shards: 1} really gets one shard.
func shardCount2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardFor routes a node to its shard by FNV-1a over the ID bytes.
func (st *store) shardFor(id NodeID) *storeShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &st.shards[h&st.mask]
}

// observe records one probe for node, creating its tracker on first sight,
// and publishes the mutation: tracker update, then dirty mark, then the
// version bumps. Only node's shard is invalidated.
func (st *store) observe(node NodeID, tr func(*Tracker)) {
	sh := st.shardFor(node)
	sh.mu.Lock()
	t, ok := sh.trackers[node]
	if !ok {
		t = NewTracker(st.opts...)
		sh.trackers[node] = t
		sh.structural = true
		sh.nodes.Inc()
	}
	sh.mu.Unlock()

	tr(t)

	sh.mu.Lock()
	sh.dirty[node] = struct{}{}
	sh.mu.Unlock()
	sh.version.Add(1)
	st.version.Add(1)
}

// forget removes a node. Like the pre-sharding design, the versions bump
// even when the node was unknown, so forget is always a snapshot barrier.
func (st *store) forget(node NodeID) {
	sh := st.shardFor(node)
	sh.mu.Lock()
	if _, ok := sh.trackers[node]; ok {
		delete(sh.trackers, node)
		sh.structural = true
		sh.nodes.Dec()
	}
	sh.mu.Unlock()
	sh.version.Add(1)
	st.version.Add(1)
}

// get returns node's tracker.
func (st *store) get(node NodeID) (*Tracker, bool) {
	sh := st.shardFor(node)
	sh.mu.RLock()
	t, ok := sh.trackers[node]
	sh.mu.RUnlock()
	return t, ok
}

// len returns the number of known nodes.
func (st *store) len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.trackers)
		sh.mu.RUnlock()
	}
	return n
}

// nodeIDs returns every known node ID in ascending order.
func (st *store) nodeIDs() []NodeID {
	out := make([]NodeID, 0, st.len())
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for id := range sh.trackers {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapshot assembles the stitched candidate set: every shard's compiled
// sub-snapshot, rebuilt only where a mutation landed since the last
// assembly. The returned parts (and the vectors inside them) are immutable.
func (st *store) snapshot() storeSnap {
	v := st.version.Load()
	st.stitchMu.Lock()
	defer st.stitchMu.Unlock()
	if st.stitchValid && st.stitchVersion == v {
		svcMetrics.snapshotHits.Inc()
		return st.stitched
	}
	svcMetrics.snapshotRebuilds.Inc()
	parts := make([][]nodeVec, len(st.shards))
	total := 0
	for i := range st.shards {
		parts[i] = st.shards[i].vecs(st.full)
		total += len(parts[i])
	}
	st.stitched = storeSnap{parts: parts, total: total}
	st.stitchVersion, st.stitchValid = v, true
	return st.stitched
}

// vecs returns the shard's compiled sub-snapshot, rebuilding it if a
// mutation landed since the last build. When the shard's membership is
// unchanged (no adds or forgets), the rebuild patches only the dirty nodes'
// vectors into a copy of the previous slice — no re-collect, no re-sort;
// full forces the re-collect path unconditionally (the pre-sharding
// baseline behavior).
func (sh *storeShard) vecs(full bool) []nodeVec {
	v := sh.version.Load()
	sh.snapMu.Lock()
	defer sh.snapMu.Unlock()
	if sh.snapVecs != nil && sh.snapVersion == v {
		return sh.snapVecs
	}
	svcMetrics.shardRebuilds.Inc()

	// Consume the dirty set under the shard lock. Every consumed mark was
	// published after its tracker mutation, so compiling below (after the
	// version load above) observes the mutated state; marks published later
	// stay for the next rebuild, which the post-mutation version bump
	// guarantees will happen.
	sh.mu.Lock()
	structural := sh.structural || full || sh.snapVecs == nil
	sh.structural = false
	var dirtyTrackers []nodeVec // id + tracker vec to patch in
	if structural {
		clear(sh.dirty)
	} else {
		dirtyTrackers = make([]nodeVec, 0, len(sh.dirty))
		for id := range sh.dirty {
			// Membership didn't change, so every dirty node is still present.
			dirtyTrackers = append(dirtyTrackers, nodeVec{id: id})
		}
		clear(sh.dirty)
	}
	var entries []nodeVec
	var trackers []*Tracker
	if structural {
		entries = make([]nodeVec, 0, len(sh.trackers))
		trackers = make([]*Tracker, 0, len(sh.trackers))
		for id, t := range sh.trackers {
			entries = append(entries, nodeVec{id: id})
			trackers = append(trackers, t)
		}
	} else {
		trackers = make([]*Tracker, len(dirtyTrackers))
		for i := range dirtyTrackers {
			trackers[i] = sh.trackers[dirtyTrackers[i].id]
		}
	}
	sh.mu.Unlock()

	// Compile outside the shard lock: vec() is usually a per-tracker cache
	// hit, and a rebuild must never block the shard's writers.
	if structural {
		sort.Sort(&vecSorter{entries, trackers})
		for i := range entries {
			entries[i].vec = trackers[i].vec()
		}
		sh.snapVecs, sh.snapVersion = entries, v
		return entries
	}

	patched := make([]nodeVec, len(sh.snapVecs))
	copy(patched, sh.snapVecs)
	for i := range dirtyTrackers {
		id := dirtyTrackers[i].id
		if trackers[i] == nil {
			// A forget raced in after the structural check; it bumped the
			// version after setting structural, so the next rebuild
			// re-collects. Skip the vanished node here.
			continue
		}
		pos := sort.Search(len(patched), func(j int) bool { return patched[j].id >= id })
		if pos >= len(patched) || patched[pos].id != id {
			continue // same race, add side: the pending structural rebuild will pick it up
		}
		patched[pos].vec = trackers[i].vec()
	}
	sh.snapVecs, sh.snapVersion = patched, v
	return patched
}

// vecSorter sorts a nodeVec slice by ID while keeping a parallel tracker
// slice aligned, so the compile loop after sorting indexes both coherently.
type vecSorter struct {
	entries  []nodeVec
	trackers []*Tracker
}

func (s *vecSorter) Len() int           { return len(s.entries) }
func (s *vecSorter) Less(i, j int) bool { return s.entries[i].id < s.entries[j].id }
func (s *vecSorter) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.trackers[i], s.trackers[j] = s.trackers[j], s.trackers[i]
}
