package crp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The sharded tracker store is the Service's storage core. The paper frames
// CRP as a shared positioning service under continuous probe traffic
// (§III-B); with a single tracker map and a single compiled all-nodes
// snapshot, every Observe invalidates the snapshot *globally* and the next
// query repays an O(N) recompile — under steady ingestion the snapshot hit
// ratio collapses to zero. Here NodeIDs hash to S shards (a power of two,
// ~4× GOMAXPROCS), each shard owning its tracker submap, its own lock, a
// version counter and a compiled sub-snapshot of nodeVecs. A mutation
// dirties only its shard, so snapshot assembly recompiles only the dirty
// shards and stitches the immutable per-shard slices back into the global
// candidate set: the steady-state cost of one mutation drops from O(N) to
// O(N/S) — and usually to O(N/S copy + 1 recompile), because a shard whose
// membership did not change patches its previous sub-snapshot in place
// instead of re-collecting and re-sorting it.

// StoreConfig tunes the Service's sharded tracker store. It exists for
// benchmarks and tests that need to pin a specific store shape — production
// callers should use NewService, which picks defaults from the host.
type StoreConfig struct {
	// Shards is the shard count; it is rounded up to a power of two.
	// Zero or negative picks the default (~4× GOMAXPROCS, at least 256).
	Shards int
	// FullRebuild disables incremental sub-snapshot maintenance: a dirty
	// shard re-collects and re-sorts its whole submap instead of patching
	// changed vectors in place. With Shards: 1 this reproduces the
	// pre-sharding single-snapshot design, the baseline the churn benchmark
	// compares against.
	FullRebuild bool
}

// defaultShardCount returns the default store width: the next power of two
// of 4× GOMAXPROCS, clamped to [256, 1024]. The large floor matters even on
// small hosts — shards bound the *invalidation scope* of a mutation, not
// just lock contention. A rebuild patches every shard a batch of writes
// touched, each patch copying N/S entries, so with B writes spread across
// shards the copied volume is ≈ S·(1-(1-1/S)^B)·N/S entries — a quantity
// that *shrinks* as S grows, along with the allocation garbage those copies
// feed the collector. The churn benchmark measures the effect directly: at
// 50k nodes under a 1.5k/s observe stream, going from 64 to 256 shards
// nearly halves query p99 on a single-core host. Per-shard fixed overhead
// (two small maps, a gauge, three words of sync state) is a few hundred
// bytes, so even a store holding a handful of nodes pays nothing noticeable
// for an oversized shard table.
func defaultShardCount() int {
	return shardCount(4 * runtime.GOMAXPROCS(0))
}

// shardCount rounds n up to a power of two in [256, 1024].
func shardCount(n int) int {
	const floor, ceil = 256, 1024
	if n < floor {
		n = floor
	}
	if n > ceil {
		n = ceil
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// entryMeta is the replication metadata of one node entry: which daemon's
// mutation produced the entry's current probe window (origin), how many
// mutations the entry has seen (version, monotonic per node), and whether
// the entry is a deletion tombstone awaiting garbage collection. Tombstones
// keep a deletion time so the GC horizon can reclaim them once every peer
// has had a chance to learn about the forget.
type entryMeta struct {
	origin    string
	version   uint64
	deleted   bool
	deletedAt time.Time
}

// meta converts the internal record to the exported NodeMeta form.
func (e entryMeta) meta(node NodeID) NodeMeta {
	return NodeMeta{Node: node, Origin: e.origin, Version: e.version, Deleted: e.deleted}
}

// store is the sharded tracker map plus the stitched-snapshot cache.
type store struct {
	shards []storeShard
	mask   uint32
	opts   []TrackerOption
	full   bool // FullRebuild mode

	// Replication identity, set once before traffic by the peering layer
	// (see Service.SetOrigin/SetClock/SetMutationHook). origin stamps local
	// mutations; now times tombstones; onMutate, when non-nil, is invoked
	// after every local Observe/Forget so a gossip layer can queue the node
	// for rumor propagation. Remote delta application (applyDelta) does not
	// fire the hook — the peering layer forwards those itself.
	origin   string
	now      func() time.Time
	onMutate func(NodeID)

	// version counts completed mutations store-wide; it is bumped strictly
	// after the mutation (tracker update and shard bookkeeping) lands, so a
	// stitched snapshot assembled concurrently with a mutation is tagged
	// with the pre-mutation version and reassembled on the next query.
	version atomic.Uint64

	// Stitched snapshot cache: the per-shard slices as of stitchVersion.
	// Assembly is O(S) slice-header copies when no shard is dirty.
	stitchMu      sync.Mutex
	stitched      storeSnap
	stitchVersion uint64
	stitchValid   bool
}

// storeShard owns one partition of the node space.
type storeShard struct {
	mu       sync.RWMutex
	trackers map[NodeID]*Tracker
	// dirty holds nodes whose tracker changed since the last sub-snapshot
	// build; structural records membership changes (add/forget), which force
	// a full re-collect. Both are guarded by mu. A node's dirty mark is set
	// strictly after its tracker mutation lands, so a rebuild that consumes
	// the mark always compiles the post-mutation vector.
	dirty      map[NodeID]struct{}
	structural bool

	// meta carries the replication metadata of every entry this shard has
	// ever learned about, including tombstones for forgotten nodes (which
	// have no tracker). Guarded by mu. Invariant: every key of trackers has
	// a meta record with deleted == false; deleted records have no tracker.
	meta map[NodeID]entryMeta

	// version counts completed mutations to this shard, bumped after the
	// mutation lands (same publication rule as store.version).
	version atomic.Uint64

	// Compiled sub-snapshot: nodeVecs sorted by NodeID, immutable once
	// published. snapMu single-flights rebuilds — concurrent queries that
	// find the shard dirty serialize here, and all but the first return the
	// freshly built slice without duplicating the work.
	snapMu      sync.Mutex
	snapVecs    []nodeVec
	snapVersion uint64

	// Cached anti-entropy digest, keyed on the shard version like the
	// sub-snapshot above. Without the cache every gossip digest exchange
	// re-collects and re-sorts the shard's full metadata set — per peer, per
	// tick — which at aggregate scale dominates the gossip loop. The cache
	// makes the steady state (no mutations between ticks) one atomic load.
	// Every metadata mutation must therefore bump the shard version —
	// including tombstone GC, which changes the digest's input set.
	digestMu      sync.Mutex
	digestVal     uint64
	digestVersion uint64
	digestValid   bool

	nodes *obs.Gauge // crp.service.shard.NNN.nodes
}

// storeSnap is a stitched point-in-time view of the store's compiled
// candidate vectors: one immutable sorted slice per shard. Query kernels
// consume it part-wise; total is the candidate count across all parts.
type storeSnap struct {
	parts [][]nodeVec
	total int
}

// flatten concatenates the parts into one slice, for consumers that need a
// single contiguous candidate set (the clustering path, which sorts and
// indexes it anyway). The result is freshly allocated and safe to reorder.
func (s storeSnap) flatten() []nodeVec {
	out := make([]nodeVec, 0, s.total)
	for _, p := range s.parts {
		out = append(out, p...)
	}
	return out
}

// newStore builds an empty store with cfg.Shards shards (rounded up to a
// power of two) applying opts to every tracker it creates.
func newStore(cfg StoreConfig, opts []TrackerOption) *store {
	n := cfg.Shards
	if n <= 0 {
		n = defaultShardCount()
	}
	n = shardCount2(n)
	st := &store{
		shards: make([]storeShard, n),
		mask:   uint32(n - 1),
		opts:   opts,
		full:   cfg.FullRebuild,
		now:    time.Now,
	}
	for i := range st.shards {
		st.shards[i].trackers = make(map[NodeID]*Tracker)
		st.shards[i].dirty = make(map[NodeID]struct{})
		st.shards[i].meta = make(map[NodeID]entryMeta)
		st.shards[i].nodes = obs.Default().Gauge(fmt.Sprintf("crp.service.shard.%03d.nodes", i))
	}
	svcMetrics.shardWidth.Set(int64(n))
	return st
}

// shardCount2 rounds n up to a power of two without applying the default
// clamp, so explicit StoreConfig{Shards: 1} really gets one shard.
func shardCount2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardIndex routes a node to its shard index by FNV-1a over the ID bytes.
func (st *store) shardIndex(id NodeID) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return int(h & st.mask)
}

// shardFor routes a node to its shard.
func (st *store) shardFor(id NodeID) *storeShard {
	return &st.shards[st.shardIndex(id)]
}

// observe records one probe for node, creating its tracker on first sight
// (or resurrecting it over a tombstone), and publishes the mutation: tracker
// update, then dirty mark and metadata stamp, then the version bumps. Only
// node's shard is invalidated. The metadata stamp happens under the shard
// lock together with the dirty mark, so concurrent observes of the same node
// each advance the entry version by exactly one and the final version always
// describes the final probe window.
func (st *store) observe(node NodeID, tr func(*Tracker)) {
	sh := st.shardFor(node)
	sh.mu.Lock()
	t, ok := sh.trackers[node]
	if !ok {
		t = NewTracker(st.opts...)
		sh.trackers[node] = t
		sh.structural = true
		sh.nodes.Inc()
	}
	sh.mu.Unlock()

	tr(t)

	sh.mu.Lock()
	sh.dirty[node] = struct{}{}
	m := sh.meta[node]
	m.origin, m.version = st.origin, m.version+1
	m.deleted, m.deletedAt = false, time.Time{}
	sh.meta[node] = m
	sh.mu.Unlock()
	sh.version.Add(1)
	st.version.Add(1)
	if st.onMutate != nil {
		st.onMutate(node)
	}
}

// mutate runs fn against node's existing tracker and, when fn reports it
// changed something, publishes the mutation exactly like observe: dirty mark
// and metadata stamp under the shard lock, then the version bumps and the
// mutation hook. Unlike observe it never creates a tracker — a mutation of
// an unknown node is a no-op — and a no-change fn leaves every version
// untouched, so idempotent re-application (a replayed namespaced forget)
// does not churn snapshots or gossip. Returns whether a mutation was
// published.
func (st *store) mutate(node NodeID, fn func(*Tracker) bool) bool {
	sh := st.shardFor(node)
	sh.mu.RLock()
	t, ok := sh.trackers[node]
	sh.mu.RUnlock()
	if !ok {
		return false
	}

	if !fn(t) {
		return false
	}

	sh.mu.Lock()
	sh.dirty[node] = struct{}{}
	m := sh.meta[node]
	m.origin, m.version = st.origin, m.version+1
	m.deleted, m.deletedAt = false, time.Time{}
	sh.meta[node] = m
	sh.mu.Unlock()
	sh.version.Add(1)
	st.version.Add(1)
	if st.onMutate != nil {
		st.onMutate(node)
	}
	return true
}

// forget removes a node, leaving a deletion tombstone so the forget can
// propagate to gossip peers before the GC horizon reclaims it. Like the
// pre-sharding design, the versions bump even when the node was unknown, so
// forget is always a snapshot barrier; the tombstone is written either way,
// making a forget-by-name effective mesh-wide even when issued on a daemon
// that never observed the node.
func (st *store) forget(node NodeID) {
	sh := st.shardFor(node)
	sh.mu.Lock()
	if _, ok := sh.trackers[node]; ok {
		delete(sh.trackers, node)
		sh.structural = true
		sh.nodes.Dec()
	}
	delete(sh.dirty, node)
	m := sh.meta[node]
	m.origin, m.version = st.origin, m.version+1
	m.deleted, m.deletedAt = true, st.now()
	sh.meta[node] = m
	sh.mu.Unlock()
	sh.version.Add(1)
	st.version.Add(1)
	if st.onMutate != nil {
		st.onMutate(node)
	}
}

// get returns node's tracker.
func (st *store) get(node NodeID) (*Tracker, bool) {
	sh := st.shardFor(node)
	sh.mu.RLock()
	t, ok := sh.trackers[node]
	sh.mu.RUnlock()
	return t, ok
}

// len returns the number of known nodes.
func (st *store) len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		n += len(sh.trackers)
		sh.mu.RUnlock()
	}
	return n
}

// nodeIDs returns every known node ID in ascending order.
func (st *store) nodeIDs() []NodeID {
	out := make([]NodeID, 0, st.len())
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for id := range sh.trackers {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// snapshot assembles the stitched candidate set: every shard's compiled
// sub-snapshot, rebuilt only where a mutation landed since the last
// assembly. The returned parts (and the vectors inside them) are immutable.
func (st *store) snapshot() storeSnap {
	v := st.version.Load()
	st.stitchMu.Lock()
	defer st.stitchMu.Unlock()
	if st.stitchValid && st.stitchVersion == v {
		svcMetrics.snapshotHits.Inc()
		return st.stitched
	}
	svcMetrics.snapshotRebuilds.Inc()
	parts := make([][]nodeVec, len(st.shards))
	total := 0
	for i := range st.shards {
		parts[i] = st.shards[i].vecs(st.full)
		total += len(parts[i])
	}
	st.stitched = storeSnap{parts: parts, total: total}
	st.stitchVersion, st.stitchValid = v, true
	return st.stitched
}

// vecs returns the shard's compiled sub-snapshot, rebuilding it if a
// mutation landed since the last build. When the shard's membership is
// unchanged (no adds or forgets), the rebuild patches only the dirty nodes'
// vectors into a copy of the previous slice — no re-collect, no re-sort;
// full forces the re-collect path unconditionally (the pre-sharding
// baseline behavior).
func (sh *storeShard) vecs(full bool) []nodeVec {
	v := sh.version.Load()
	sh.snapMu.Lock()
	defer sh.snapMu.Unlock()
	if sh.snapVecs != nil && sh.snapVersion == v {
		return sh.snapVecs
	}
	svcMetrics.shardRebuilds.Inc()

	// Consume the dirty set under the shard lock. Every consumed mark was
	// published after its tracker mutation, so compiling below (after the
	// version load above) observes the mutated state; marks published later
	// stay for the next rebuild, which the post-mutation version bump
	// guarantees will happen.
	sh.mu.Lock()
	structural := sh.structural || full || sh.snapVecs == nil
	sh.structural = false
	var dirtyTrackers []nodeVec // id + tracker vec to patch in
	if structural {
		clear(sh.dirty)
	} else {
		dirtyTrackers = make([]nodeVec, 0, len(sh.dirty))
		for id := range sh.dirty {
			// Membership didn't change, so every dirty node is still present.
			dirtyTrackers = append(dirtyTrackers, nodeVec{id: id})
		}
		clear(sh.dirty)
	}
	var entries []nodeVec
	var trackers []*Tracker
	if structural {
		entries = make([]nodeVec, 0, len(sh.trackers))
		trackers = make([]*Tracker, 0, len(sh.trackers))
		for id, t := range sh.trackers {
			entries = append(entries, nodeVec{id: id})
			trackers = append(trackers, t)
		}
	} else {
		trackers = make([]*Tracker, len(dirtyTrackers))
		for i := range dirtyTrackers {
			trackers[i] = sh.trackers[dirtyTrackers[i].id]
		}
	}
	sh.mu.Unlock()

	// Compile outside the shard lock: vec() is usually a per-tracker cache
	// hit, and a rebuild must never block the shard's writers.
	if structural {
		sort.Sort(&vecSorter{entries, trackers})
		for i := range entries {
			entries[i].vec = trackers[i].vec()
		}
		sh.snapVecs, sh.snapVersion = entries, v
		return entries
	}

	patched := make([]nodeVec, len(sh.snapVecs))
	copy(patched, sh.snapVecs)
	for i := range dirtyTrackers {
		id := dirtyTrackers[i].id
		if trackers[i] == nil {
			// A forget raced in after the structural check; it bumped the
			// version after setting structural, so the next rebuild
			// re-collects. Skip the vanished node here.
			continue
		}
		pos := sort.Search(len(patched), func(j int) bool { return patched[j].id >= id })
		if pos >= len(patched) || patched[pos].id != id {
			continue // same race, add side: the pending structural rebuild will pick it up
		}
		patched[pos].vec = trackers[i].vec()
	}
	sh.snapVecs, sh.snapVersion = patched, v
	return patched
}

// applyDelta installs a remotely-produced node entry if it supersedes the
// local one under the last-writer-wins rule (NodeMeta.Supersedes). The probe
// window is replaced wholesale — deltas carry the origin's full window, so
// replication never interleaves probe histories and every replica of an entry
// version is byte-identical. Returns false when the delta is stale or
// idempotent (local meta equal or newer). Unlike observe/forget this does NOT
// fire the mutation hook: the peering layer decides itself whether to forward
// an applied delta (rumor TTL), and firing the hook here would re-stamp the
// entry as a local mutation.
func (st *store) applyDelta(d NodeDelta) bool {
	// Build the replacement tracker outside the shard lock; replaying the
	// probe window touches no shared state.
	var t *Tracker
	if !d.Deleted {
		t = NewTracker(st.opts...)
		for _, p := range d.Probes {
			t.Observe(p.At, p.Replicas...)
		}
	}

	sh := st.shardFor(d.Node)
	sh.mu.Lock()
	cur, known := sh.meta[d.Node]
	if known && !d.NodeMeta.Supersedes(cur.meta(d.Node)) {
		sh.mu.Unlock()
		return false
	}
	_, hadTracker := sh.trackers[d.Node]
	if d.Deleted {
		if hadTracker {
			delete(sh.trackers, d.Node)
			sh.structural = true
			sh.nodes.Dec()
		}
		delete(sh.dirty, d.Node)
		sh.meta[d.Node] = entryMeta{
			origin: d.Origin, version: d.Version,
			deleted: true, deletedAt: d.DeletedAt,
		}
	} else {
		sh.trackers[d.Node] = t
		if !hadTracker {
			sh.structural = true
			sh.nodes.Inc()
		} else {
			// Wholesale replacement of an existing tracker: a dirty mark
			// suffices, because the patch rebuild re-reads sh.trackers under
			// the lock and so compiles the new tracker's vector.
			sh.dirty[d.Node] = struct{}{}
		}
		sh.meta[d.Node] = entryMeta{origin: d.Origin, version: d.Version}
	}
	sh.mu.Unlock()
	sh.version.Add(1)
	st.version.Add(1)
	return true
}

// exportDelta packages node's full current state — replication metadata plus
// the complete probe window (empty for tombstones) — for transmission to a
// peer. ok is false when the store has never heard of the node.
func (st *store) exportDelta(node NodeID) (NodeDelta, bool) {
	sh := st.shardFor(node)
	sh.mu.RLock()
	m, known := sh.meta[node]
	t := sh.trackers[node]
	sh.mu.RUnlock()
	if !known {
		return NodeDelta{}, false
	}
	d := NodeDelta{NodeMeta: m.meta(node), DeletedAt: m.deletedAt}
	if t != nil {
		d.Probes = t.Probes()
	}
	return d, true
}

// shardMetas returns the replication metadata of every entry (live and
// tombstoned) in shard i, sorted by node ID. The peering layer ships these
// flat lists when two peers' shard digests disagree.
func (st *store) shardMetas(i int) []NodeMeta {
	sh := &st.shards[i]
	sh.mu.RLock()
	out := make([]NodeMeta, 0, len(sh.meta))
	for id, m := range sh.meta {
		out = append(out, m.meta(id))
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}

// shardDigest folds shard i's sorted metadata into one FNV-1a word. Two
// shards with identical (node, origin, version, deleted) sets — the full
// replicated state, since the probe window is a function of (origin, version)
// — produce identical digests, so digest comparison is the cheap first phase
// of anti-entropy: only shards whose words differ exchange metadata.
//
// The digest is cached against the shard version (same publication rule as
// the compiled sub-snapshot: the version is loaded before the fold, and
// mutations bump it only after they land, so a cached word always describes
// a state at least as new as its version tag).
func (st *store) shardDigest(i int) uint64 {
	sh := &st.shards[i]
	v := sh.version.Load()
	sh.digestMu.Lock()
	defer sh.digestMu.Unlock()
	if sh.digestValid && sh.digestVersion == v {
		return sh.digestVal
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	metas := st.shardMetas(i)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for _, m := range metas {
		for j := 0; j < len(m.Node); j++ {
			mix(m.Node[j])
		}
		mix(0)
		for j := 0; j < len(m.Origin); j++ {
			mix(m.Origin[j])
		}
		mix(0)
		for s := 0; s < 64; s += 8 {
			mix(byte(m.Version >> s))
		}
		if m.Deleted {
			mix(1)
		} else {
			mix(0)
		}
	}
	sh.digestVal, sh.digestVersion, sh.digestValid = h, v, true
	return h
}

// digests returns every shard's digest, indexed by shard.
func (st *store) digests() []uint64 {
	out := make([]uint64, len(st.shards))
	for i := range st.shards {
		out[i] = st.shardDigest(i)
	}
	return out
}

// gcTombstones deletes tombstones whose deletion time is before the horizon
// and returns how many it reclaimed. Although reclamation touches no tracker
// and no compiled vector, it DOES change the metadata set the shard digest
// folds over, so every shard that reclaimed something publishes like any
// other mutation: delete under the lock, then bump the shard and store
// versions. Without the bump the cached digest keeps describing the
// pre-GC set, and an anti-entropy round against a peer that GC'd on a
// different schedule would compare a stale word — agreeing shards would
// look different (wasted metadata exchanges) and, worse, differing shards
// could look identical and never re-sync. Shards that reclaimed nothing
// publish nothing, so the routine stays free for the common empty tick. A
// peer that somehow missed the deletion for longer than the GC horizon can
// briefly resurrect the entry through anti-entropy — the horizon is the
// declared replication deadline, and DESIGN.md §8 documents the trade.
func (st *store) gcTombstones(horizon time.Time) int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		reclaimed := 0
		for id, m := range sh.meta {
			if m.deleted && m.deletedAt.Before(horizon) {
				delete(sh.meta, id)
				reclaimed++
			}
		}
		sh.mu.Unlock()
		if reclaimed > 0 {
			sh.version.Add(1)
			st.version.Add(1)
			n += reclaimed
		}
	}
	return n
}

// vecSorter sorts a nodeVec slice by ID while keeping a parallel tracker
// slice aligned, so the compile loop after sorting indexes both coherently.
type vecSorter struct {
	entries  []nodeVec
	trackers []*Tracker
}

func (s *vecSorter) Len() int           { return len(s.entries) }
func (s *vecSorter) Less(i, j int) bool { return s.entries[i].id < s.entries[j].id }
func (s *vecSorter) Swap(i, j int) {
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
	s.trackers[i], s.trackers[j] = s.trackers[j], s.trackers[i]
}
