package crp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// storeShapes are the three store configurations every replication property
// must hold under: the single-snapshot baseline, the production defaults,
// and an explicit narrow sharding.
var storeShapes = []struct {
	name string
	cfg  StoreConfig
}{
	{"single-full-rebuild", StoreConfig{Shards: 1, FullRebuild: true}},
	{"defaults", StoreConfig{}},
	{"shards-8", StoreConfig{Shards: 8}},
}

func deltaTestService(cfg StoreConfig) *Service {
	svc := NewServiceWithStore(cfg, WithWindow(10))
	svc.SetOrigin("origin-a")
	return svc
}

var deltaBase = time.Unix(1_800_000_000, 0).UTC()

// TestDeltaRoundTripVersionedEntries exports every entry of a populated
// service and applies it into a fresh one, for each store shape: the
// replica must end up with identical probe windows, ratio maps, metadata
// and compiled snapshot bytes.
func TestDeltaRoundTripVersionedEntries(t *testing.T) {
	for _, shape := range storeShapes {
		t.Run(shape.name, func(t *testing.T) {
			src := deltaTestService(shape.cfg)
			for i := 0; i < 20; i++ {
				node := NodeID(fmt.Sprintf("n%03d", i))
				for k := 0; k < 3+i%4; k++ {
					at := deltaBase.Add(time.Duration(k) * time.Minute)
					if err := src.Observe(node, at, ReplicaID(fmt.Sprintf("r%d", (i+k)%5)), "r-shared"); err != nil {
						t.Fatal(err)
					}
				}
			}

			dst := deltaTestService(shape.cfg)
			dst.SetOrigin("origin-b") // receiving daemon's own identity must not leak into applied entries
			for _, node := range src.Nodes() {
				d, ok := src.ExportDelta(node)
				if !ok {
					t.Fatalf("ExportDelta(%s) = not found", node)
				}
				if d.Origin != "origin-a" {
					t.Fatalf("delta origin = %q, want origin-a", d.Origin)
				}
				if d.Version == 0 || d.Deleted || len(d.Probes) == 0 {
					t.Fatalf("malformed live delta: %+v", d)
				}
				applied, err := dst.ApplyDelta(d)
				if err != nil || !applied {
					t.Fatalf("ApplyDelta(%s) = %v, %v", node, applied, err)
				}
				// Idempotence: the identical delta must not re-apply.
				applied, err = dst.ApplyDelta(d)
				if err != nil || applied {
					t.Fatalf("re-ApplyDelta(%s) = %v, %v; want not applied", node, applied, err)
				}
			}

			var want, got bytes.Buffer
			if err := src.WriteSnapshot(&want); err != nil {
				t.Fatal(err)
			}
			if err := dst.WriteSnapshot(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Fatal("replicated snapshot differs from source")
			}
			wantDig, gotDig := src.ShardDigests(), dst.ShardDigests()
			for i := range wantDig {
				if wantDig[i] != gotDig[i] {
					t.Fatalf("shard %d digest differs after round trip", i)
				}
			}
		})
	}
}

// TestDeltaRoundTripTombstones pins tombstone replication for each shape: a
// forgotten node exports as a deleted delta (original deletion time, no
// probes), applying it on a replica that still holds the live entry removes
// the entry, and the tombstone survives until the GC horizon passes.
func TestDeltaRoundTripTombstones(t *testing.T) {
	for _, shape := range storeShapes {
		t.Run(shape.name, func(t *testing.T) {
			now := deltaBase
			clock := func() time.Time { return now }
			src := deltaTestService(shape.cfg)
			src.SetClock(clock)
			dst := deltaTestService(shape.cfg)
			dst.SetClock(clock)

			if err := src.Observe("victim", deltaBase, "r1", "r2"); err != nil {
				t.Fatal(err)
			}
			live, ok := src.ExportDelta("victim")
			if !ok {
				t.Fatal("live entry not exportable")
			}
			if applied, err := dst.ApplyDelta(live); err != nil || !applied {
				t.Fatalf("seeding replica: %v, %v", applied, err)
			}

			now = now.Add(5 * time.Minute)
			src.Forget("victim")
			tomb, ok := src.ExportDelta("victim")
			if !ok {
				t.Fatal("tombstone not exportable")
			}
			if !tomb.Deleted || len(tomb.Probes) != 0 {
				t.Fatalf("tombstone delta = %+v, want deleted with no probes", tomb)
			}
			if !tomb.DeletedAt.Equal(now) {
				t.Fatalf("tombstone DeletedAt = %v, want %v", tomb.DeletedAt, now)
			}
			if tomb.Version <= live.Version {
				t.Fatalf("tombstone version %d must exceed live version %d", tomb.Version, live.Version)
			}

			if applied, err := dst.ApplyDelta(tomb); err != nil || !applied {
				t.Fatalf("applying tombstone: %v, %v", applied, err)
			}
			if _, err := dst.RatioMap("victim"); err == nil {
				t.Fatal("replica still resolves the forgotten node")
			}
			// A stale live delta must not resurrect the entry.
			if applied, err := dst.ApplyDelta(live); err != nil || applied {
				t.Fatalf("stale live delta applied over tombstone: %v, %v", applied, err)
			}

			// The tombstone holds the stores' digests equal until GC.
			srcDig, dstDig := src.ShardDigests(), dst.ShardDigests()
			for i := range srcDig {
				if srcDig[i] != dstDig[i] {
					t.Fatalf("shard %d digest differs with tombstone in place", i)
				}
			}
			if n := dst.GCTombstones(now.Add(-time.Minute)); n != 0 {
				t.Fatalf("GC before horizon reclaimed %d tombstones", n)
			}
			if n := dst.GCTombstones(now.Add(time.Minute)); n != 1 {
				t.Fatalf("GC past horizon reclaimed %d tombstones, want 1", n)
			}
		})
	}
}

// TestDeltaInterleavingIndependence is the commutativity property the
// convergence argument rests on: applying the same delta set in different
// orders — including re-deliveries — must yield byte-identical snapshots
// and equal digests, for every store shape.
func TestDeltaInterleavingIndependence(t *testing.T) {
	for _, shape := range storeShapes {
		t.Run(shape.name, func(t *testing.T) {
			// Build a delta set with genuine LWW conflicts: two origins write
			// overlapping node sets, and some nodes end as tombstones.
			now := deltaBase
			clock := func() time.Time { return now }
			var deltas []NodeDelta
			for _, origin := range []string{"origin-a", "origin-b"} {
				svc := deltaTestService(shape.cfg)
				svc.SetOrigin(origin)
				svc.SetClock(clock)
				for i := 0; i < 12; i++ {
					node := NodeID(fmt.Sprintf("n%03d", i))
					probes := 2 + i%3
					if origin == "origin-b" {
						probes++ // different version counts, so LWW picks per node
					}
					for k := 0; k < probes; k++ {
						at := deltaBase.Add(time.Duration(k) * time.Minute)
						if err := svc.Observe(node, at, ReplicaID(origin[len(origin)-1:]), ReplicaID(fmt.Sprintf("r%d", k))); err != nil {
							t.Fatal(err)
						}
					}
					if origin == "origin-a" && i%5 == 0 {
						svc.Forget(node)
					}
					d, ok := svc.ExportDelta(node)
					if !ok {
						t.Fatalf("export %s from %s", node, origin)
					}
					deltas = append(deltas, d)
				}
			}

			apply := func(order []int) (digest []uint64, snap []byte) {
				svc := deltaTestService(shape.cfg)
				svc.SetClock(clock)
				for _, idx := range order {
					if _, err := svc.ApplyDelta(deltas[idx]); err != nil {
						t.Fatal(err)
					}
				}
				var buf bytes.Buffer
				if err := svc.WriteSnapshot(&buf); err != nil {
					t.Fatal(err)
				}
				return svc.ShardDigests(), buf.Bytes()
			}

			forward := make([]int, len(deltas))
			for i := range forward {
				forward[i] = i
			}
			refDig, refSnap := apply(forward)

			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 5; trial++ {
				order := append([]int(nil), forward...)
				rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
				// Re-deliver a random third of the deltas (gossip duplicates).
				for i := 0; i < len(deltas)/3; i++ {
					order = append(order, rng.Intn(len(deltas)))
				}
				dig, snap := apply(order)
				if !bytes.Equal(refSnap, snap) {
					t.Fatalf("trial %d: snapshot differs under interleaving %v", trial, order)
				}
				for i := range refDig {
					if refDig[i] != dig[i] {
						t.Fatalf("trial %d: shard %d digest differs", trial, i)
					}
				}
			}
		})
	}
}

// TestApplyDeltaRejectsMalformed pins the validation edge of the
// replication surface.
func TestApplyDeltaRejectsMalformed(t *testing.T) {
	svc := deltaTestService(StoreConfig{})
	if _, err := svc.ApplyDelta(NodeDelta{NodeMeta: NodeMeta{Node: "", Version: 1}}); err == nil {
		t.Fatal("empty node accepted")
	}
	if _, err := svc.ApplyDelta(NodeDelta{NodeMeta: NodeMeta{Node: "n1", Version: 0}}); err == nil {
		t.Fatal("zero version accepted")
	}
}

// TestSupersedesTotalOrder enumerates the LWW tie-break rules.
func TestSupersedesTotalOrder(t *testing.T) {
	base := NodeMeta{Node: "n", Origin: "a", Version: 3}
	cases := []struct {
		name string
		m, o NodeMeta
		want bool
	}{
		{"higher version wins", NodeMeta{Version: 4, Origin: "a"}, base, true},
		{"lower version loses", NodeMeta{Version: 2, Origin: "z"}, base, false},
		{"equal version, greater origin wins", NodeMeta{Version: 3, Origin: "b"}, base, true},
		{"equal version, lesser origin loses", NodeMeta{Version: 3, Origin: "A"}, base, false},
		{"full tie, tombstone wins", NodeMeta{Version: 3, Origin: "a", Deleted: true}, base, true},
		{"identical never supersedes", base, base, false},
	}
	for _, tc := range cases {
		if got := tc.m.Supersedes(tc.o); got != tc.want {
			t.Errorf("%s: Supersedes = %v, want %v", tc.name, got, tc.want)
		}
	}
}
