package crp

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// TestPaperWorkedExample reproduces the paper's §IV-A example exactly:
// ν_A = ⟨rx ⇒ 0.2, ry ⇒ 0.8⟩, ν_B = ⟨rx ⇒ 0.6, ry ⇒ 0.4⟩,
// ν_C = ⟨rx ⇒ 0.1, ry ⇒ 0.9⟩, giving cos_sim(A,B) = 0.740 and
// cos_sim(A,C) = 0.991, so A selects server C.
func TestPaperWorkedExample(t *testing.T) {
	a := RatioMap{"rx": 0.2, "ry": 0.8}
	b := RatioMap{"rx": 0.6, "ry": 0.4}
	c := RatioMap{"rx": 0.1, "ry": 0.9}

	if got := CosineSimilarity(a, b); !almostEqual(got, 0.740, 0.0005) {
		t.Errorf("cos_sim(A,B) = %.4f, want 0.740", got)
	}
	if got := CosineSimilarity(a, c); !almostEqual(got, 0.991, 0.0005) {
		t.Errorf("cos_sim(A,C) = %.4f, want 0.991", got)
	}
	best, ok := SelectClosest(a, map[NodeID]RatioMap{"B": b, "C": c})
	if !ok || best.Node != "C" {
		t.Errorf("SelectClosest = %+v, ok=%v; want C", best, ok)
	}
}

func TestCosineSimilarityIdentical(t *testing.T) {
	m := RatioMap{"r1": 0.3, "r2": 0.7}
	if got := CosineSimilarity(m, m); !almostEqual(got, 1, 1e-12) {
		t.Errorf("cos_sim(m,m) = %v, want 1", got)
	}
	// Scaled copies point in the same direction.
	scaled := RatioMap{"r1": 0.6, "r2": 1.4}
	if got := CosineSimilarity(m, scaled); !almostEqual(got, 1, 1e-12) {
		t.Errorf("cos_sim(m, 2m) = %v, want 1", got)
	}
}

func TestCosineSimilarityOrthogonal(t *testing.T) {
	a := RatioMap{"r1": 1}
	b := RatioMap{"r2": 1}
	if got := CosineSimilarity(a, b); got != 0 {
		t.Errorf("cos_sim of disjoint maps = %v, want 0", got)
	}
}

func TestCosineSimilarityEmpty(t *testing.T) {
	m := RatioMap{"r1": 1}
	if got := CosineSimilarity(m, RatioMap{}); got != 0 {
		t.Errorf("cos_sim with empty map = %v, want 0", got)
	}
	if got := CosineSimilarity(RatioMap{}, RatioMap{}); got != 0 {
		t.Errorf("cos_sim of empty maps = %v, want 0", got)
	}
	if got := CosineSimilarity(nil, m); got != 0 {
		t.Errorf("cos_sim with nil map = %v, want 0", got)
	}
}

// ratioMapFromBytes builds a small ratio map from fuzz bytes for property
// tests.
func ratioMapFromBytes(bs []byte) RatioMap {
	m := RatioMap{}
	replicas := []ReplicaID{"r0", "r1", "r2", "r3", "r4"}
	for i, b := range bs {
		if i >= len(replicas) {
			break
		}
		if b > 0 {
			m[replicas[i]] = float64(b)
		}
	}
	return m
}

func TestCosineSimilarityProperties(t *testing.T) {
	symmetric := func(x, y []byte) bool {
		a, b := ratioMapFromBytes(x), ratioMapFromBytes(y)
		return CosineSimilarity(a, b) == CosineSimilarity(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	bounded := func(x, y []byte) bool {
		s := CosineSimilarity(ratioMapFromBytes(x), ratioMapFromBytes(y))
		return s >= 0 && s <= 1
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("bounds: %v", err)
	}
	selfIsOne := func(x []byte) bool {
		m := ratioMapFromBytes(x)
		if len(m) == 0 {
			return CosineSimilarity(m, m) == 0
		}
		return almostEqual(CosineSimilarity(m, m), 1, 1e-9)
	}
	if err := quick.Check(selfIsOne, nil); err != nil {
		t.Errorf("self similarity: %v", err)
	}
	scaleInvariant := func(x []byte, k uint8) bool {
		m := ratioMapFromBytes(x)
		scale := float64(k)/16 + 0.5
		scaled := RatioMap{}
		for r, f := range m {
			scaled[r] = f * scale
		}
		return almostEqual(CosineSimilarity(m, scaled), CosineSimilarity(m, m), 1e-9)
	}
	if err := quick.Check(scaleInvariant, nil); err != nil {
		t.Errorf("scale invariance: %v", err)
	}
}

func TestDot(t *testing.T) {
	a := RatioMap{"r1": 0.5, "r2": 0.5}
	b := RatioMap{"r2": 1.0, "r3": 2.0}
	if got := Dot(a, b); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Dot = %v, want 0.5", got)
	}
	if Dot(a, b) != Dot(b, a) {
		t.Error("Dot not symmetric")
	}
	if got := Dot(a, RatioMap{"zz": 1}); got != 0 {
		t.Errorf("disjoint Dot = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	m := RatioMap{"r1": 3, "r2": 1}
	n := m.Normalize()
	if !almostEqual(n.Sum(), 1, 1e-12) {
		t.Errorf("normalized sum = %v, want 1", n.Sum())
	}
	if !almostEqual(n["r1"], 0.75, 1e-12) || !almostEqual(n["r2"], 0.25, 1e-12) {
		t.Errorf("normalized = %v", n)
	}
	// Original untouched.
	if m["r1"] != 3 {
		t.Error("Normalize mutated the receiver")
	}
	if got := (RatioMap{}).Normalize(); len(got) != 0 {
		t.Errorf("normalizing empty map = %v, want empty", got)
	}
	if got := (RatioMap{"r": 0}).Normalize(); len(got) != 0 {
		t.Errorf("normalizing zero map = %v, want empty", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := RatioMap{"r1": 0.5}
	c := m.Clone()
	c["r1"] = 0.9
	c["r2"] = 0.1
	if m["r1"] != 0.5 || len(m) != 1 {
		t.Error("Clone shares storage with the original")
	}
}

func TestNorm(t *testing.T) {
	m := RatioMap{"r1": 3, "r2": 4}
	if got := m.Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := (RatioMap{}).Norm(); got != 0 {
		t.Errorf("empty Norm = %v, want 0", got)
	}
}

func TestReplicasSorted(t *testing.T) {
	m := RatioMap{"z": 1, "a": 1, "m": 1}
	got := m.Replicas()
	want := []ReplicaID{"a", "m", "z"}
	if len(got) != len(want) {
		t.Fatalf("Replicas = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Replicas = %v, want %v", got, want)
		}
	}
}

func TestStringNotation(t *testing.T) {
	m := RatioMap{"r1": 0.3, "r2": 0.7}
	if got, want := m.String(), "⟨r1 ⇒ 0.300, r2 ⇒ 0.700⟩"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestJaccardSimilarity(t *testing.T) {
	a := RatioMap{"r1": 0.9, "r2": 0.1}
	b := RatioMap{"r2": 0.5, "r3": 0.5}
	if got := JaccardSimilarity(a, b); !almostEqual(got, 1.0/3, 1e-12) {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := JaccardSimilarity(a, a); got != 1 {
		t.Errorf("self Jaccard = %v, want 1", got)
	}
	if got := JaccardSimilarity(a, RatioMap{}); got != 0 {
		t.Errorf("empty Jaccard = %v, want 0", got)
	}
}

func TestOverlapCount(t *testing.T) {
	a := RatioMap{"r1": 1, "r2": 1, "r3": 1}
	b := RatioMap{"r2": 1, "r3": 1, "r4": 1}
	if got := OverlapCount(a, b); got != 2 {
		t.Errorf("OverlapCount = %d, want 2", got)
	}
	if got := OverlapCount(a, RatioMap{}); got != 0 {
		t.Errorf("OverlapCount vs empty = %d, want 0", got)
	}
}
