package crp

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"
)

func TestDriftFramePopulationStreams(t *testing.T) {
	svc := NewService(WithWindow(8))
	at := time.Unix(1_000_000, 0)
	svc.Observe("n1", at, Qualify("cdnA", "r1"), Qualify("cdnA", "r2"), Qualify("cdnB", "x1"))
	svc.Observe("n2", at.Add(time.Second), Qualify("cdnA", "r1"))

	f := svc.DriftFrame(at.Add(2 * time.Second))
	if f.Observes != 2 {
		t.Fatalf("observes = %d, want 2", f.Observes)
	}
	if len(f.Streams) != 2 {
		t.Fatalf("streams = %+v, want one per namespace", f.Streams)
	}
	a, b := f.Streams[0], f.Streams[1]
	if a.NS != "cdnA" || b.NS != "cdnB" {
		t.Fatalf("streams not sorted by namespace: %q, %q", a.NS, b.NS)
	}
	if a.Support != 2 || b.Support != 1 {
		t.Fatalf("support = %d/%d, want 2/1", a.Support, b.Support)
	}
	for _, st := range f.Streams {
		sum := 0.0
		for _, v := range st.Map {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("stream %s/%s mass %v, want 1", st.NS, st.Group, sum)
		}
	}
	// n1's cdnA mass splits evenly between r1 and r2; n2 is all-r1. The
	// population stream is the normalized sum: r1 = (1/3+1)/x, r2 = (1/3)/x.
	if a.Map["r2"] >= a.Map["r1"] {
		t.Fatalf("population weights inverted: %+v", a.Map)
	}

	// Same state, same frame — byte-identical maps.
	g := svc.DriftFrame(at.Add(2 * time.Second))
	if !reflect.DeepEqual(f, g) {
		t.Fatalf("same-state frames differ:\n%+v\n%+v", f, g)
	}
}

func TestDriftFrameAggregationGroups(t *testing.T) {
	svc := NewService(WithWindow(8))
	if err := svc.EnableAggregation(AggregatorConfig{KeyOf: PrefixKeyFunc(24)}); err != nil {
		t.Fatal(err)
	}
	at := time.Unix(1_000_000, 0)
	for i := 0; i < 8; i++ {
		node := NodeID(fmt.Sprintf("10.0.0.%d", i))
		svc.Observe(node, at.Add(time.Duration(i)*time.Second), Qualify("cdnA", "r1"), Qualify("cdnB", "x1"))
	}
	f := svc.DriftFrame(at.Add(time.Minute))
	var groups []FrameStream
	for _, st := range f.Streams {
		if st.Group != "" {
			groups = append(groups, st)
		}
	}
	if len(groups) != 2 {
		t.Fatalf("want one group stream per namespace, got %+v", groups)
	}
	for _, st := range groups {
		if st.Group != "10.0.0.0/24" {
			t.Fatalf("group key = %q", st.Group)
		}
		if st.Support == 0 {
			t.Fatalf("group stream has zero support: %+v", st)
		}
		if len(st.Map) != 1 {
			t.Fatalf("group %s/%s map = %+v", st.NS, st.Group, st.Map)
		}
	}
}
