package crp

import (
	"math"
	"testing"
)

// gridDistance places nodes on a line by their numeric suffix so distances
// are easy to reason about: dist(nX, nY) = |X - Y|.
func gridDistance(a, b NodeID) float64 {
	pos := func(id NodeID) float64 {
		var x float64
		for _, c := range id[1:] {
			x = x*10 + float64(c-'0')
		}
		return x
	}
	return math.Abs(pos(a) - pos(b))
}

func TestEvaluateClusters(t *testing.T) {
	clusters := []Cluster{
		{Center: "n10", Members: []NodeID{"n10", "n12", "n14"}}, // tight
		{Center: "n50", Members: []NodeID{"n50", "n90"}},        // loose
		{Center: "n99", Members: []NodeID{"n99"}},               // singleton
	}
	stats, err := EvaluateClusters(clusters, gridDistance)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats for %d clusters, want 2 (singletons skipped)", len(stats))
	}

	tight := stats[0]
	if tight.Cluster.Center != "n10" {
		t.Fatalf("unexpected order: %v", stats)
	}
	if !almostEqual(tight.Intra, 3, 1e-12) { // (2 + 4) / 2
		t.Errorf("tight intra = %v, want 3", tight.Intra)
	}
	if !almostEqual(tight.Diameter, 4, 1e-12) { // n10..n14
		t.Errorf("tight diameter = %v, want 4", tight.Diameter)
	}
	if !almostEqual(tight.Inter, (40.0+89.0)/2, 1e-12) { // to n50 and n99
		t.Errorf("tight inter = %v, want 64.5", tight.Inter)
	}
	if !tight.Good() {
		t.Error("tight cluster should be good (inter >> intra)")
	}

	loose := stats[1]
	if !almostEqual(loose.Intra, 40, 1e-12) {
		t.Errorf("loose intra = %v, want 40", loose.Intra)
	}
	if !loose.Good() { // inter = (40 + 49)/2 = 44.5 > 40
		t.Error("loose cluster inter=44.5 > intra=40, should be good")
	}
}

func TestEvaluateClustersNilDistance(t *testing.T) {
	if _, err := EvaluateClusters(nil, nil); err == nil {
		t.Error("nil DistanceFunc should fail")
	}
}

func TestEvaluateClustersSingleCluster(t *testing.T) {
	stats, err := EvaluateClusters([]Cluster{
		{Center: "n1", Members: []NodeID{"n1", "n2"}},
	}, gridDistance)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("stats = %v", stats)
	}
	if stats[0].Inter != 0 {
		t.Errorf("lone cluster inter = %v, want 0 (no other centers)", stats[0].Inter)
	}
	if stats[0].Good() {
		t.Error("a lone cluster cannot be good (inter 0)")
	}
}

func TestSummarize(t *testing.T) {
	clusters := []Cluster{
		{Center: "a", Members: []NodeID{"a", "b", "c", "d"}},
		{Center: "e", Members: []NodeID{"e", "f", "g"}},
		{Center: "h", Members: []NodeID{"h", "i"}},
		{Center: "z1", Members: []NodeID{"z1"}},
		{Center: "z2", Members: []NodeID{"z2"}},
	}
	s := Summarize(clusters, 11)
	if s.NodesClustered != 9 {
		t.Errorf("NodesClustered = %d, want 9", s.NodesClustered)
	}
	if !almostEqual(s.FracClustered, 9.0/11, 1e-12) {
		t.Errorf("FracClustered = %v", s.FracClustered)
	}
	if s.NumClusters != 3 {
		t.Errorf("NumClusters = %d, want 3 (singletons excluded)", s.NumClusters)
	}
	if !almostEqual(s.MeanSize, 3, 1e-12) {
		t.Errorf("MeanSize = %v, want 3", s.MeanSize)
	}
	if !almostEqual(s.MedianSize, 3, 1e-12) {
		t.Errorf("MedianSize = %v, want 3", s.MedianSize)
	}
	if s.MaxSize != 4 {
		t.Errorf("MaxSize = %d, want 4", s.MaxSize)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	clusters := []Cluster{
		{Center: "a", Members: []NodeID{"a", "b"}},
		{Center: "c", Members: []NodeID{"c", "d", "e", "f", "g"}},
	}
	s := Summarize(clusters, 7)
	if !almostEqual(s.MedianSize, 3.5, 1e-12) {
		t.Errorf("MedianSize = %v, want 3.5", s.MedianSize)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, 0)
	if s.NodesClustered != 0 || s.NumClusters != 0 || s.FracClustered != 0 {
		t.Errorf("empty Summarize = %+v", s)
	}
}

func TestGoodClusterCounts(t *testing.T) {
	stats := []ClusterStats{
		{Diameter: 10, Intra: 5, Inter: 50},   // good, bucket 0-25
		{Diameter: 24, Intra: 5, Inter: 50},   // good, bucket 0-25
		{Diameter: 40, Intra: 5, Inter: 50},   // good, bucket 25-75
		{Diameter: 25, Intra: 5, Inter: 50},   // good, boundary → first bucket
		{Diameter: 80, Intra: 5, Inter: 50},   // beyond last bound: dropped
		{Diameter: 10, Intra: 50, Inter: 5},   // not good: dropped
		{Diameter: 74.9, Intra: 5, Inter: 50}, // good, bucket 25-75
	}
	counts := GoodClusterCounts(stats, []float64{25, 75})
	if counts[0] != 3 {
		t.Errorf("bucket 0-25 = %d, want 3", counts[0])
	}
	if counts[1] != 2 {
		t.Errorf("bucket 25-75 = %d, want 2", counts[1])
	}
}

func TestGoodClusterCountsEmpty(t *testing.T) {
	counts := GoodClusterCounts(nil, []float64{25, 75})
	if counts[0] != 0 || counts[1] != 0 {
		t.Errorf("counts = %v", counts)
	}
}
