package crp

import (
	"errors"
	"sort"
)

// DistanceFunc returns the ground-truth network distance (the paper uses
// measured RTT in milliseconds) between two nodes. It must be symmetric and
// non-negative, and safe for concurrent calls: EvaluateClusters fans the
// per-cluster statistics out across a worker pool.
type DistanceFunc func(a, b NodeID) float64

// ClusterStats captures the paper's cluster-quality metrics for one cluster
// (§V-B, Fig. 6): the average intracluster distance of members to the
// center, the cluster diameter (max pairwise member distance), and the
// average intercluster distance from this center to all other cluster
// centers.
type ClusterStats struct {
	Cluster  Cluster
	Intra    float64
	Diameter float64
	Inter    float64
}

// Good reports whether the cluster lands in the paper's "good" region of
// Fig. 6: its members are closer to their own center than the other cluster
// centers are (intercluster distance exceeds intracluster distance).
func (s ClusterStats) Good() bool { return s.Inter > s.Intra }

// EvaluateClusters computes ClusterStats for every cluster of size ≥ 2
// (singletons have no intracluster structure to evaluate). Intercluster
// distances are computed against the centers of all clusters, including
// singletons, since those are genuine alternative attachment points.
func EvaluateClusters(clusters []Cluster, dist DistanceFunc) ([]ClusterStats, error) {
	if dist == nil {
		return nil, errors.New("crp: nil DistanceFunc")
	}
	// Each cluster's statistics are independent (the O(members²) diameter
	// scan dominates), so evaluate clusters in parallel into a pre-sized
	// slice and collect the size ≥ 2 entries in order afterwards.
	stats := make([]ClusterStats, len(clusters))
	evaluated := make([]bool, len(clusters))
	parallelFor(len(clusters), func(i int) {
		c := clusters[i]
		if c.Size() < 2 {
			return
		}
		s := ClusterStats{Cluster: c}

		n := 0
		for _, m := range c.Members {
			if m == c.Center {
				continue
			}
			s.Intra += dist(m, c.Center)
			n++
		}
		if n > 0 {
			s.Intra /= float64(n)
		}

		for ai := 0; ai < len(c.Members); ai++ {
			for bi := ai + 1; bi < len(c.Members); bi++ {
				if d := dist(c.Members[ai], c.Members[bi]); d > s.Diameter {
					s.Diameter = d
				}
			}
		}

		nOther := 0
		for j, other := range clusters {
			if j == i {
				continue
			}
			s.Inter += dist(c.Center, other.Center)
			nOther++
		}
		if nOther > 0 {
			s.Inter /= float64(nOther)
		}
		stats[i] = s
		evaluated[i] = true
	})
	var out []ClusterStats
	for i := range stats {
		if evaluated[i] {
			out = append(out, stats[i])
		}
	}
	return out, nil
}

// Summary aggregates a clustering run the way the paper's Table I does.
// "Clustered" counts only nodes in clusters of size ≥ 2; NumClusters
// likewise counts only those clusters.
type Summary struct {
	TotalNodes     int
	NodesClustered int
	FracClustered  float64
	NumClusters    int
	MeanSize       float64
	MedianSize     float64
	MaxSize        int
}

// Summarize computes Table I-style statistics over a clustering of
// totalNodes nodes.
func Summarize(clusters []Cluster, totalNodes int) Summary {
	s := Summary{TotalNodes: totalNodes}
	var sizes []int
	for _, c := range clusters {
		if c.Size() < 2 {
			continue
		}
		sizes = append(sizes, c.Size())
		s.NodesClustered += c.Size()
		if c.Size() > s.MaxSize {
			s.MaxSize = c.Size()
		}
	}
	s.NumClusters = len(sizes)
	if totalNodes > 0 {
		s.FracClustered = float64(s.NodesClustered) / float64(totalNodes)
	}
	if len(sizes) > 0 {
		sum := 0
		for _, sz := range sizes {
			sum += sz
		}
		s.MeanSize = float64(sum) / float64(len(sizes))
		sort.Ints(sizes)
		if len(sizes)%2 == 1 {
			s.MedianSize = float64(sizes[len(sizes)/2])
		} else {
			s.MedianSize = float64(sizes[len(sizes)/2-1]+sizes[len(sizes)/2]) / 2
		}
	}
	return s
}

// GoodClusterCounts buckets good clusters by diameter the way the paper's
// Fig. 7 does. buckets holds the bucket upper bounds in ms (the paper uses
// 25 and 75); the returned slice has one count per bucket, where bucket i
// covers diameters in (bounds[i-1], bounds[i]] (the first bucket starts at
// 0, inclusive). Clusters with diameters beyond the last bound, and
// non-good clusters, are not counted.
func GoodClusterCounts(stats []ClusterStats, bounds []float64) []int {
	counts := make([]int, len(bounds))
	for _, s := range stats {
		if !s.Good() {
			continue
		}
		for i, b := range bounds {
			lower := 0.0
			if i > 0 {
				lower = bounds[i-1]
			}
			if s.Diameter >= lower && s.Diameter <= b {
				if i == 0 || s.Diameter > lower {
					counts[i]++
				}
				break
			}
		}
	}
	return counts
}
