package crp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Service is the stand-alone CRP positioning service sketched in the paper's
// §III-B: it maintains redirection trackers for many nodes and answers the
// location queries of §IV — closest-node selection and the three clustering
// queries (peers in my cluster; a full cluster assignment; n nodes in
// distinct clusters for failure independence). Service is safe for
// concurrent use and runs no background goroutines.
type Service struct {
	mu       sync.RWMutex
	trackers map[NodeID]*Tracker
	opts     []TrackerOption
}

// ErrUnknownNode is returned for queries about nodes the service has no
// observations for.
var ErrUnknownNode = errors.New("crp: unknown node")

// NewService returns an empty service. The tracker options are applied to
// every node's tracker (e.g., WithWindow(10) to adopt the paper's
// recommended 10-probe window).
func NewService(opts ...TrackerOption) *Service {
	return &Service{
		trackers: make(map[NodeID]*Tracker),
		opts:     opts,
	}
}

// Observe records a redirection probe for node: the replica servers one CDN
// lookup returned at time at. Unknown nodes are added automatically.
func (s *Service) Observe(node NodeID, at time.Time, replicas ...ReplicaID) error {
	if node == "" {
		return errors.New("crp: empty node ID")
	}
	s.mu.Lock()
	tr, ok := s.trackers[node]
	if !ok {
		tr = NewTracker(s.opts...)
		s.trackers[node] = tr
	}
	s.mu.Unlock()
	tr.Observe(at, replicas...)
	return nil
}

// Forget removes a node and its history.
func (s *Service) Forget(node NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.trackers, node)
}

// Nodes returns the known node IDs in sorted order.
func (s *Service) Nodes() []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]NodeID, 0, len(s.trackers))
	for id := range s.trackers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RatioMap returns the node's current ratio map.
func (s *Service) RatioMap(node NodeID) (RatioMap, error) {
	s.mu.RLock()
	tr, ok := s.trackers[node]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	return tr.RatioMap(), nil
}

// Similarity returns the cosine similarity between two nodes' current ratio
// maps.
func (s *Service) Similarity(a, b NodeID) (float64, error) {
	ma, err := s.RatioMap(a)
	if err != nil {
		return 0, err
	}
	mb, err := s.RatioMap(b)
	if err != nil {
		return 0, err
	}
	return CosineSimilarity(ma, mb), nil
}

// maps snapshots the ratio maps of the given nodes (or all nodes if nil).
func (s *Service) maps(nodes []NodeID) (map[NodeID]RatioMap, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[NodeID]RatioMap)
	if nodes == nil {
		for id, tr := range s.trackers {
			out[id] = tr.RatioMap()
		}
		return out, nil
	}
	for _, id := range nodes {
		tr, ok := s.trackers[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
		}
		out[id] = tr.RatioMap()
	}
	return out, nil
}

// ClosestTo ranks the candidate nodes by similarity to client and returns
// the best, with ok=false when CRP has no signal for any candidate.
func (s *Service) ClosestTo(client NodeID, candidates []NodeID) (Scored, bool, error) {
	cm, err := s.RatioMap(client)
	if err != nil {
		return Scored{}, false, err
	}
	maps, err := s.maps(candidates)
	if err != nil {
		return Scored{}, false, err
	}
	delete(maps, client)
	best, ok := SelectClosest(cm, maps)
	return best, ok, nil
}

// TopK returns the k candidates most similar to client.
func (s *Service) TopK(client NodeID, candidates []NodeID, k int) ([]Scored, error) {
	cm, err := s.RatioMap(client)
	if err != nil {
		return nil, err
	}
	maps, err := s.maps(candidates)
	if err != nil {
		return nil, err
	}
	delete(maps, client)
	return TopK(cm, maps, k), nil
}

// ClusterAll clusters every known node with SMF at the given threshold
// (§IV-B query 2: "given a set of nodes, map each node to a cluster").
func (s *Service) ClusterAll(cfg ClusterConfig) ([]Cluster, error) {
	maps, err := s.maps(nil)
	if err != nil {
		return nil, err
	}
	nodes := make([]Node, 0, len(maps))
	for id, m := range maps {
		nodes = append(nodes, Node{ID: id, Map: m})
	}
	return ClusterSMF(nodes, cfg)
}

// SameCluster returns the other members of node's cluster under SMF at the
// given config (§IV-B query 1: "given a node identifier, find the other
// nodes that belong to the same cluster" — e.g., BitTorrent peers on low-RTT
// paths).
func (s *Service) SameCluster(node NodeID, cfg ClusterConfig) ([]NodeID, error) {
	s.mu.RLock()
	_, known := s.trackers[node]
	s.mu.RUnlock()
	if !known {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	clusters, err := s.ClusterAll(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range clusters {
		for _, m := range c.Members {
			if m == node {
				others := make([]NodeID, 0, len(c.Members)-1)
				for _, o := range c.Members {
					if o != node {
						others = append(others, o)
					}
				}
				return others, nil
			}
		}
	}
	return nil, nil
}

// DistinctClusters returns up to n nodes drawn from different clusters
// (§IV-B query 3: peers whose network faults are uncorrelated with high
// probability). Larger clusters contribute first, and each cluster's center
// represents it.
func (s *Service) DistinctClusters(n int, cfg ClusterConfig) ([]NodeID, error) {
	if n <= 0 {
		return nil, nil
	}
	clusters, err := s.ClusterAll(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]NodeID, 0, n)
	for _, c := range clusters {
		out = append(out, c.Center)
		if len(out) == n {
			break
		}
	}
	return out, nil
}
