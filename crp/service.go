package crp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Service-level instruments, registered in the default obs registry and
// shared by every Service in the process: mutation/query volumes and the
// effectiveness of the compiled all-nodes snapshot cache. Incrementing a
// counter is one atomic add, so the hot paths stay allocation-free.
var svcMetrics = struct {
	observes         *obs.Counter
	queries          *obs.Counter // point queries: ratio map, similarity, ranking
	clusterQueries   *obs.Counter // queries that run a full SMF pass
	snapshotHits     *obs.Counter // all-nodes snapshot served from cache
	snapshotRebuilds *obs.Counter // all-nodes snapshot recompiled after a mutation
}{
	observes:         obs.Default().Counter("crp.service.observes"),
	queries:          obs.Default().Counter("crp.service.queries"),
	clusterQueries:   obs.Default().Counter("crp.service.cluster_queries"),
	snapshotHits:     obs.Default().Counter("crp.service.snapshot.hits"),
	snapshotRebuilds: obs.Default().Counter("crp.service.snapshot.rebuilds"),
}

// Service is the stand-alone CRP positioning service sketched in the paper's
// §III-B: it maintains redirection trackers for many nodes and answers the
// location queries of §IV — closest-node selection and the three clustering
// queries (peers in my cluster; a full cluster assignment; n nodes in
// distinct clusters for failure independence). Service is safe for
// concurrent use and runs no background goroutines.
type Service struct {
	mu       sync.RWMutex
	trackers map[NodeID]*Tracker
	opts     []TrackerOption

	// version is bumped after every completed Observe/Forget; it guards the
	// snapshot below. The bump happens strictly after the mutation lands so
	// a snapshot built concurrently with a mutation is always tagged with
	// the pre-mutation version and rebuilt on the next query.
	version atomic.Uint64

	// Compiled all-node candidate snapshot, shared by every query between
	// observations. Rebuilt lazily when version moves; the slice and the
	// vectors inside it are immutable once published.
	snapMu      sync.Mutex
	snapVecs    []nodeVec
	snapVersion uint64
}

// ErrUnknownNode is returned for queries about nodes the service has no
// observations for.
var ErrUnknownNode = errors.New("crp: unknown node")

// NewService returns an empty service. The tracker options are applied to
// every node's tracker (e.g., WithWindow(10) to adopt the paper's
// recommended 10-probe window).
func NewService(opts ...TrackerOption) *Service {
	return &Service{
		trackers: make(map[NodeID]*Tracker),
		opts:     opts,
	}
}

// Observe records a redirection probe for node: the replica servers one CDN
// lookup returned at time at. Unknown nodes are added automatically.
func (s *Service) Observe(node NodeID, at time.Time, replicas ...ReplicaID) error {
	if node == "" {
		return errors.New("crp: empty node ID")
	}
	s.mu.Lock()
	tr, ok := s.trackers[node]
	if !ok {
		tr = NewTracker(s.opts...)
		s.trackers[node] = tr
	}
	s.mu.Unlock()
	tr.Observe(at, replicas...)
	s.version.Add(1)
	svcMetrics.observes.Inc()
	return nil
}

// Forget removes a node and its history.
func (s *Service) Forget(node NodeID) {
	s.mu.Lock()
	delete(s.trackers, node)
	s.mu.Unlock()
	s.version.Add(1)
}

// Nodes returns the known node IDs in sorted order.
func (s *Service) Nodes() []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]NodeID, 0, len(s.trackers))
	for id := range s.trackers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RatioMap returns the node's current ratio map.
func (s *Service) RatioMap(node NodeID) (RatioMap, error) {
	svcMetrics.queries.Inc()
	s.mu.RLock()
	tr, ok := s.trackers[node]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	return tr.RatioMap(), nil
}

// Similarity returns the cosine similarity between two nodes' current ratio
// maps, computed on their cached compiled vectors.
func (s *Service) Similarity(a, b NodeID) (float64, error) {
	svcMetrics.queries.Inc()
	va, err := s.clientVec(a)
	if err != nil {
		return 0, err
	}
	vb, err := s.clientVec(b)
	if err != nil {
		return 0, err
	}
	return va.cosine(vb), nil
}

// maps snapshots the ratio maps of the given nodes. A nil slice means
// "every known node"; an empty non-nil slice means "no candidates" and
// yields an empty snapshot. Callers that build candidate lists dynamically
// must keep that distinction in mind.
func (s *Service) maps(nodes []NodeID) (map[NodeID]RatioMap, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[NodeID]RatioMap)
	if nodes == nil {
		for id, tr := range s.trackers {
			out[id] = tr.RatioMap()
		}
		return out, nil
	}
	for _, id := range nodes {
		tr, ok := s.trackers[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
		}
		out[id] = tr.RatioMap()
	}
	return out, nil
}

// clientVec returns the compiled ratio vector of one known node.
func (s *Service) clientVec(node NodeID) (ratioVec, error) {
	s.mu.RLock()
	tr, ok := s.trackers[node]
	s.mu.RUnlock()
	if !ok {
		return ratioVec{}, fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	return tr.vec(), nil
}

// candidateVecs snapshots the compiled ratio vectors of the given nodes
// (nil = every known node, empty non-nil = none), deduplicating repeated
// IDs. The nil ("all nodes") path serves a shared cached snapshot that is
// only rebuilt after an Observe or Forget, so repeated queries between
// observations are rebuild-free; callers exclude the query client during
// scoring, never by copying the snapshot. The returned slice and its
// vectors are immutable.
func (s *Service) candidateVecs(nodes []NodeID) ([]nodeVec, error) {
	if nodes == nil {
		return s.allVecs(), nil
	}
	type entry struct {
		id NodeID
		tr *Tracker
	}
	s.mu.RLock()
	list := make([]entry, 0, len(nodes))
	seen := make(map[NodeID]bool, len(nodes))
	for _, id := range nodes {
		tr, ok := s.trackers[id]
		if !ok {
			s.mu.RUnlock()
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		list = append(list, entry{id, tr})
	}
	s.mu.RUnlock()
	out := make([]nodeVec, len(list))
	for i, e := range list {
		out[i] = nodeVec{id: e.id, vec: e.tr.vec()}
	}
	return out, nil
}

// allVecs returns the compiled all-node candidate snapshot, rebuilding it if
// an Observe or Forget has landed since the last build. Tracker pointers are
// collected under the service lock, but compilation (usually a per-tracker
// cache hit) happens outside it so a rebuild never blocks writers.
func (s *Service) allVecs() []nodeVec {
	v := s.version.Load()
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snapVecs != nil && s.snapVersion == v {
		svcMetrics.snapshotHits.Inc()
		return s.snapVecs
	}
	svcMetrics.snapshotRebuilds.Inc()
	type entry struct {
		id NodeID
		tr *Tracker
	}
	s.mu.RLock()
	list := make([]entry, 0, len(s.trackers))
	for id, tr := range s.trackers {
		list = append(list, entry{id, tr})
	}
	s.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].id < list[j].id })
	vecs := make([]nodeVec, len(list))
	for i, e := range list {
		vecs[i] = nodeVec{id: e.id, vec: e.tr.vec()}
	}
	s.snapVecs, s.snapVersion = vecs, v
	return vecs
}

// ClosestTo ranks the candidate nodes by similarity to client and returns
// the best, with ok=false when CRP has no signal for any candidate.
//
// A nil candidates slice ranks client against every known node; an empty
// non-nil slice means "no candidates" and always reports ok=false. The
// client itself is never considered a candidate.
func (s *Service) ClosestTo(client NodeID, candidates []NodeID) (Scored, bool, error) {
	svcMetrics.queries.Inc()
	cv, err := s.clientVec(client)
	if err != nil {
		return Scored{}, false, err
	}
	cands, err := s.candidateVecs(candidates)
	if err != nil {
		return Scored{}, false, err
	}
	best, ok := bestOf(topVecs(cv, cands, 1, client))
	return best, ok, nil
}

// TopK returns the k candidates most similar to client.
//
// A nil candidates slice ranks client against every known node; an empty
// non-nil slice means "no candidates" and yields no results. The client
// itself is never considered a candidate.
func (s *Service) TopK(client NodeID, candidates []NodeID, k int) ([]Scored, error) {
	svcMetrics.queries.Inc()
	cv, err := s.clientVec(client)
	if err != nil {
		return nil, err
	}
	cands, err := s.candidateVecs(candidates)
	if err != nil {
		return nil, err
	}
	return topVecs(cv, cands, k, client), nil
}

// ClusterAll clusters every known node with SMF at the given threshold
// (§IV-B query 2: "given a set of nodes, map each node to a cluster").
func (s *Service) ClusterAll(cfg ClusterConfig) ([]Cluster, error) {
	svcMetrics.clusterQueries.Inc()
	maps, err := s.maps(nil)
	if err != nil {
		return nil, err
	}
	nodes := make([]Node, 0, len(maps))
	for id, m := range maps {
		nodes = append(nodes, Node{ID: id, Map: m})
	}
	return ClusterSMF(nodes, cfg)
}

// SameCluster returns the other members of node's cluster under SMF at the
// given config (§IV-B query 1: "given a node identifier, find the other
// nodes that belong to the same cluster" — e.g., BitTorrent peers on low-RTT
// paths).
func (s *Service) SameCluster(node NodeID, cfg ClusterConfig) ([]NodeID, error) {
	s.mu.RLock()
	_, known := s.trackers[node]
	s.mu.RUnlock()
	if !known {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	clusters, err := s.ClusterAll(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range clusters {
		for _, m := range c.Members {
			if m == node {
				others := make([]NodeID, 0, len(c.Members)-1)
				for _, o := range c.Members {
					if o != node {
						others = append(others, o)
					}
				}
				return others, nil
			}
		}
	}
	return nil, nil
}

// DistinctClusters returns up to n nodes drawn from different clusters
// (§IV-B query 3: peers whose network faults are uncorrelated with high
// probability). Larger clusters contribute first, and each cluster's center
// represents it.
func (s *Service) DistinctClusters(n int, cfg ClusterConfig) ([]NodeID, error) {
	if n <= 0 {
		return nil, nil
	}
	clusters, err := s.ClusterAll(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]NodeID, 0, n)
	for _, c := range clusters {
		out = append(out, c.Center)
		if len(out) == n {
			break
		}
	}
	return out, nil
}
