package crp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Service-level instruments, registered in the default obs registry and
// shared by every Service in the process: mutation/query volumes, the
// effectiveness of the stitched candidate snapshot, per-shard rebuild
// activity, and query latency histograms so the daemon's stats op and the
// churn benchmark can report service-layer percentiles, not just
// daemon-layer ones. Incrementing a counter is one atomic add, so the hot
// paths stay allocation-free.
var svcMetrics = struct {
	observes         *obs.Counter
	queries          *obs.Counter // point queries: ratio map, similarity, ranking
	clusterQueries   *obs.Counter // queries that run a full SMF pass
	snapshotHits     *obs.Counter // stitched snapshot served from cache
	snapshotRebuilds *obs.Counter // stitched snapshot reassembled after a mutation
	shardRebuilds    *obs.Counter // per-shard sub-snapshot recompiles
	shardWidth       *obs.Gauge   // shard count of the most recent store
	queryLatency     *obs.Histogram
	clusterLatency   *obs.Histogram
}{
	observes:         obs.Default().Counter("crp.service.observes"),
	queries:          obs.Default().Counter("crp.service.queries"),
	clusterQueries:   obs.Default().Counter("crp.service.cluster_queries"),
	snapshotHits:     obs.Default().Counter("crp.service.snapshot.hits"),
	snapshotRebuilds: obs.Default().Counter("crp.service.snapshot.rebuilds"),
	shardRebuilds:    obs.Default().Counter("crp.service.snapshot.shard_rebuilds"),
	shardWidth:       obs.Default().Gauge("crp.service.shards"),
	queryLatency:     obs.Default().Histogram("crp.service.latency.query", nil),
	clusterLatency:   obs.Default().Histogram("crp.service.latency.cluster", nil),
}

// Service is the stand-alone CRP positioning service sketched in the paper's
// §III-B: it maintains redirection trackers for many nodes and answers the
// location queries of §IV — closest-node selection and the three clustering
// queries (peers in my cluster; a full cluster assignment; n nodes in
// distinct clusters for failure independence). Service is safe for
// concurrent use and runs no background goroutines.
//
// Storage is a sharded tracker store (see store.go): an Observe or Forget
// invalidates only the compiled sub-snapshot of its own shard, so under
// continuous ingestion the all-nodes query path repays O(N/S) per mutation
// instead of recompiling the full candidate set.
type Service struct {
	store *store
	// agg, when non-nil, is the prefix/LDNS aggregation plane (aggregate.go):
	// keyed clients' probes collapse into per-prefix ratio maps and their
	// queries resolve per-client state first, then the aggregate. Set once by
	// EnableAggregation before the service takes traffic.
	agg *aggregator
	// fus, when non-nil, is the fused multi-CDN similarity kernel
	// (namespace.go): every similarity the query surface computes mixes
	// per-namespace cosines by coverage weight instead of running one cosine
	// across namespaces. Set once by EnableFusion before the service takes
	// traffic.
	fus *fusionKernel
	// nsObs tracks per-namespace observe volume when fusion is enabled.
	nsObs *nsObserves
	// obsSeq counts accepted probes for this service instance; see
	// observeSeq.
	obsSeq atomic.Uint64
}

// ErrUnknownNode is returned for queries about nodes the service has no
// observations for.
var ErrUnknownNode = errors.New("crp: unknown node")

// NewService returns an empty service. The tracker options are applied to
// every node's tracker (e.g., WithWindow(10) to adopt the paper's
// recommended 10-probe window).
func NewService(opts ...TrackerOption) *Service {
	return NewServiceWithStore(StoreConfig{}, opts...)
}

// NewServiceWithStore returns an empty service with an explicitly shaped
// tracker store. It exists for benchmarks and tests (e.g. the churn
// benchmark's single-snapshot baseline); production callers should use
// NewService.
func NewServiceWithStore(cfg StoreConfig, opts ...TrackerOption) *Service {
	return &Service{store: newStore(cfg, opts)}
}

// Observe records a redirection probe for node: the replica servers one CDN
// lookup returned at time at. Unknown nodes are added automatically.
//
// With aggregation enabled, probes of keyed clients are absorbed into their
// prefix's aggregate ratio map instead of a per-client tracker (aggregate.go)
// — such probes do not touch the sharded store, so they are invisible to the
// peering plane's replication and to WriteSnapshot. A keyed client demoted
// for divergence goes back to the ordinary per-client path, its fresh tracker
// seeded from the divergence reservoir.
func (s *Service) Observe(node NodeID, at time.Time, replicas ...ReplicaID) error {
	if node == "" {
		return errors.New("crp: empty node ID")
	}
	if s.agg != nil {
		route, seeds := s.agg.observe(node, at, replicas)
		switch route {
		case aggAbsorbed:
			svcMetrics.observes.Inc()
			s.obsSeq.Add(1)
			return nil
		case aggPerClient:
			if len(seeds) > 0 {
				// The demoting probe is the reservoir's newest entry, so
				// replaying the seeds replays it too.
				s.store.observe(node, func(t *Tracker) {
					for _, p := range seeds {
						t.Observe(p.at, p.replicas...)
					}
				})
				svcMetrics.observes.Inc()
				s.obsSeq.Add(1)
				return nil
			}
		}
		// aggUnkeyed, or a previously demoted client: per-client path.
	}
	s.store.observe(node, func(t *Tracker) { t.Observe(at, replicas...) })
	svcMetrics.observes.Inc()
	s.obsSeq.Add(1)
	s.nsObs.bump(replicas)
	return nil
}

// observeSeq counts this service's accepted probes (svcMetrics.observes is
// process-wide and shared by every Service). The drift tap stamps it into
// each frame so a detector can tell "map unchanged while probes kept
// landing" (stale) apart from "no traffic at all".
func (s *Service) observeSeq() uint64 { return s.obsSeq.Load() }

// simFn returns the vector-similarity kernel the query surface runs on:
// the fused multi-CDN kernel when fusion is enabled, the plain cosine
// otherwise.
func (s *Service) simFn() simFunc {
	if s.fus != nil {
		return s.fus.cosine
	}
	return plainCosine
}

// EnableFusion installs the fused multi-CDN similarity kernel: Similarity,
// ClosestTo, TopK and the SMF clustering queries score node pairs by mixing
// per-namespace cosines under coverage weighting (see FusionConfig) instead
// of one cosine across all namespaces. Call it once, before the service
// takes traffic. A service holding only one namespace answers every query
// bit-identically with fusion on or off — the multi-CDN path is strictly
// additive.
func (s *Service) EnableFusion(cfg FusionConfig) error {
	if s.fus != nil {
		return errors.New("crp: fusion already enabled")
	}
	k, err := newFusionKernel(cfg)
	if err != nil {
		return err
	}
	s.fus = k
	s.nsObs = newNSObserves()
	return nil
}

// FusionEnabled reports whether the fused similarity kernel is installed.
func (s *Service) FusionEnabled() bool { return s.fus != nil }

// Forget removes a node and its history.
func (s *Service) Forget(node NodeID) {
	s.store.forget(node)
}

// Nodes returns the known node IDs in sorted order.
func (s *Service) Nodes() []NodeID {
	return s.store.nodeIDs()
}

// RatioMap returns the node's current ratio map. For an aggregated client it
// is the client's group's served (quantized) map.
func (s *Service) RatioMap(node NodeID) (RatioMap, error) {
	defer timeQuery()()
	svcMetrics.queries.Inc()
	tr, ok := s.store.get(node)
	if ok {
		if s.agg != nil && s.agg.keyed(node) {
			noteResolution(true)
		}
		return tr.RatioMap(), nil
	}
	if s.agg != nil {
		if v, ok := s.agg.vecFor(node); ok {
			noteResolution(false)
			m := make(RatioMap, len(v.ids))
			for i, id := range v.ids {
				m[id] = v.vals[i]
			}
			return m, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownNode, node)
}

// Similarity returns the cosine similarity between two nodes' current ratio
// maps, computed on their cached compiled vectors.
func (s *Service) Similarity(a, b NodeID) (float64, error) {
	defer timeQuery()()
	svcMetrics.queries.Inc()
	va, err := s.clientVec(a)
	if err != nil {
		return 0, err
	}
	vb, err := s.clientVec(b)
	if err != nil {
		return 0, err
	}
	return s.simFn()(va, vb), nil
}

// clientVec returns the compiled ratio vector of one known node. Per-client
// state wins when both exist (a demoted client's tracker is authoritative);
// otherwise a keyed client resolves through its aggregate. The hit/fallback
// accounting only sees keyed clients, so the fallback ratio measures how
// often aggregation failed to absorb a client it claimed, not how much
// non-client (candidate) traffic the service carries.
func (s *Service) clientVec(node NodeID) (ratioVec, error) {
	tr, ok := s.store.get(node)
	if ok {
		if s.agg != nil && s.agg.keyed(node) {
			noteResolution(true)
		}
		return tr.vec(), nil
	}
	if s.agg != nil {
		if v, ok := s.agg.vecFor(node); ok {
			noteResolution(false)
			return v, nil
		}
	}
	return ratioVec{}, fmt.Errorf("%w: %q", ErrUnknownNode, node)
}

// candidateVecs snapshots the compiled ratio vectors of an explicit
// candidate list (an empty non-nil list means "no candidates"),
// deduplicating repeated IDs. The nil ("all nodes") case never reaches this
// path — it is served by the store's stitched snapshot; see TopK/ClosestTo.
// Aggregated clients are valid candidates too: a store miss falls back to
// the client's aggregate vector before erroring.
func (s *Service) candidateVecs(nodes []NodeID) ([]nodeVec, error) {
	type entry struct {
		id  NodeID
		tr  *Tracker
		vec ratioVec // aggregate-resolved when tr is nil
	}
	list := make([]entry, 0, len(nodes))
	seen := make(map[NodeID]bool, len(nodes))
	for _, id := range nodes {
		if seen[id] {
			continue
		}
		seen[id] = true
		if tr, ok := s.store.get(id); ok {
			list = append(list, entry{id: id, tr: tr})
			continue
		}
		if s.agg != nil {
			if v, ok := s.agg.vecFor(id); ok {
				list = append(list, entry{id: id, vec: v})
				continue
			}
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	out := make([]nodeVec, len(list))
	for i, e := range list {
		if e.tr != nil {
			out[i] = nodeVec{id: e.id, vec: e.tr.vec()}
		} else {
			out[i] = nodeVec{id: e.id, vec: e.vec}
		}
	}
	return out, nil
}

// ClosestTo ranks the candidate nodes by similarity to client and returns
// the best, with ok=false when CRP has no signal for any candidate.
//
// A nil candidates slice ranks client against every known node; an empty
// non-nil slice means "no candidates" and always reports ok=false. The
// client itself is never considered a candidate.
func (s *Service) ClosestTo(client NodeID, candidates []NodeID) (Scored, bool, error) {
	defer timeQuery()()
	svcMetrics.queries.Inc()
	cv, err := s.clientVec(client)
	if err != nil {
		return Scored{}, false, err
	}
	if candidates == nil {
		best, ok := bestOf(topSnap(cv, s.store.snapshot(), 1, client, s.simFn()))
		return best, ok, nil
	}
	cands, err := s.candidateVecs(candidates)
	if err != nil {
		return Scored{}, false, err
	}
	best, ok := bestOf(topVecs(cv, cands, 1, client, s.simFn()))
	return best, ok, nil
}

// TopK returns the k candidates most similar to client.
//
// A nil candidates slice ranks client against every known node; an empty
// non-nil slice means "no candidates" and yields no results. The client
// itself is never considered a candidate.
func (s *Service) TopK(client NodeID, candidates []NodeID, k int) ([]Scored, error) {
	defer timeQuery()()
	svcMetrics.queries.Inc()
	cv, err := s.clientVec(client)
	if err != nil {
		return nil, err
	}
	if candidates == nil {
		return topSnap(cv, s.store.snapshot(), k, client, s.simFn()), nil
	}
	cands, err := s.candidateVecs(candidates)
	if err != nil {
		return nil, err
	}
	return topVecs(cv, cands, k, client, s.simFn()), nil
}

// ClusterAll clusters every known node with SMF at the given threshold
// (§IV-B query 2: "given a set of nodes, map each node to a cluster"). It
// runs directly on the stitched compiled snapshot — no per-node ratio-map
// clones, no recompilation.
func (s *Service) ClusterAll(cfg ClusterConfig) ([]Cluster, error) {
	defer timeCluster()()
	svcMetrics.clusterQueries.Inc()
	return clusterVecsSim(s.store.snapshot().flatten(), cfg, s.simFn())
}

// SameCluster returns the other members of node's cluster under SMF at the
// given config (§IV-B query 1: "given a node identifier, find the other
// nodes that belong to the same cluster" — e.g., BitTorrent peers on low-RTT
// paths).
func (s *Service) SameCluster(node NodeID, cfg ClusterConfig) ([]NodeID, error) {
	if _, known := s.store.get(node); !known {
		if s.agg != nil {
			if v, ok := s.agg.vecFor(node); ok {
				noteResolution(false)
				return s.sameClusterVia(node, v, cfg)
			}
		}
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	clusters, err := s.ClusterAll(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range clusters {
		for _, m := range c.Members {
			if m == node {
				others := make([]NodeID, 0, len(c.Members)-1)
				for _, o := range c.Members {
					if o != node {
						others = append(others, o)
					}
				}
				return others, nil
			}
		}
	}
	return nil, nil
}

// sameClusterVia answers SameCluster for an aggregated client, which SMF
// never sees (clustering runs on the per-client snapshot): the client is
// assigned to the cluster of the tracked node most similar to its aggregate
// vector, and that cluster's members are its peers. No signal among the
// tracked nodes means no assignment — an empty result, like a tracked
// singleton's.
func (s *Service) sameClusterVia(node NodeID, v ratioVec, cfg ClusterConfig) ([]NodeID, error) {
	best, ok := bestOf(topSnap(v, s.store.snapshot(), 1, node, s.simFn()))
	if !ok {
		return nil, nil
	}
	clusters, err := s.ClusterAll(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range clusters {
		for _, m := range c.Members {
			if m == best.Node {
				// The client is not itself a member, so the whole cluster —
				// minus the client on the off chance an ID collides — is
				// "the other nodes in its cluster".
				others := make([]NodeID, 0, len(c.Members))
				for _, o := range c.Members {
					if o != node {
						others = append(others, o)
					}
				}
				return others, nil
			}
		}
	}
	return nil, nil
}

// DistinctClusters returns up to n nodes drawn from different clusters
// (§IV-B query 3: peers whose network faults are uncorrelated with high
// probability). Larger clusters contribute first, and each cluster's center
// represents it.
func (s *Service) DistinctClusters(n int, cfg ClusterConfig) ([]NodeID, error) {
	if n <= 0 {
		return nil, nil
	}
	clusters, err := s.ClusterAll(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]NodeID, 0, n)
	for _, c := range clusters {
		out = append(out, c.Center)
		if len(out) == n {
			break
		}
	}
	return out, nil
}

// timeQuery starts a service-layer latency sample for a point query; the
// returned func records it. Usage: defer timeQuery()().
func timeQuery() func() {
	start := time.Now()
	return func() { svcMetrics.queryLatency.ObserveDuration(time.Since(start)) }
}

// timeCluster is timeQuery for the SMF clustering queries, which live on a
// different latency scale and get their own histogram.
func timeCluster() func() {
	start := time.Now()
	return func() { svcMetrics.clusterLatency.ObserveDuration(time.Since(start)) }
}
