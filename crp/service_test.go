package crp

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// populateService fills a service with three metro-like groups of nodes.
func populateService(t *testing.T) *Service {
	t.Helper()
	s := NewService(WithWindow(10))
	at := t0
	groups := map[string][]ReplicaID{
		"west": {"rw1", "rw2"},
		"east": {"re1", "re2"},
		"asia": {"ra1"},
	}
	for g, replicas := range groups {
		for n := 0; n < 3; n++ {
			node := NodeID(fmt.Sprintf("%s-%d", g, n))
			for i := 0; i < 10; i++ {
				// Rotate through the group's replicas with a node-specific bias.
				r := replicas[(i+n)%len(replicas)]
				if err := s.Observe(node, at.Add(time.Duration(i)*time.Minute), r); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return s
}

func TestServiceObserveValidation(t *testing.T) {
	s := NewService()
	if err := s.Observe("", t0, "r"); err == nil {
		t.Error("Observe with empty node should fail")
	}
}

func TestServiceRatioMapAndSimilarity(t *testing.T) {
	s := populateService(t)
	m, err := s.RatioMap("west-0")
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Sum(), 1, 1e-9) {
		t.Errorf("ratio sum = %v", m.Sum())
	}
	same, err := s.Similarity("west-0", "west-1")
	if err != nil {
		t.Fatal(err)
	}
	cross, err := s.Similarity("west-0", "east-0")
	if err != nil {
		t.Fatal(err)
	}
	if same <= cross {
		t.Errorf("same-group similarity %v not above cross-group %v", same, cross)
	}
	if _, err := s.Similarity("west-0", "nope"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Similarity with unknown node: %v", err)
	}
}

func TestServiceClosestTo(t *testing.T) {
	s := populateService(t)
	best, ok, err := s.ClosestTo("west-0", []NodeID{"west-1", "east-0", "asia-0"})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || best.Node != "west-1" {
		t.Errorf("ClosestTo = %+v, ok=%v; want west-1", best, ok)
	}
	// Client excluded from its own candidate list.
	best, _, err = s.ClosestTo("west-0", []NodeID{"west-0", "west-2"})
	if err != nil {
		t.Fatal(err)
	}
	if best.Node == "west-0" {
		t.Error("ClosestTo returned the client itself")
	}
	if _, _, err := s.ClosestTo("ghost", []NodeID{"west-1"}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown client: %v", err)
	}
	if _, _, err := s.ClosestTo("west-0", []NodeID{"ghost"}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown candidate: %v", err)
	}
}

func TestServiceClosestToNoSignal(t *testing.T) {
	s := populateService(t)
	// asia nodes share no replicas with west nodes.
	_, ok, err := s.ClosestTo("asia-0", []NodeID{"west-0", "west-1"})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("ClosestTo should report no signal across disjoint replica sets")
	}
}

func TestServiceTopK(t *testing.T) {
	s := populateService(t)
	got, err := s.TopK("west-0", []NodeID{"west-1", "west-2", "east-0"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("TopK returned %d", len(got))
	}
	if got[0].Node != "west-1" && got[0].Node != "west-2" {
		t.Errorf("TopK[0] = %v, want a west node", got[0])
	}
}

func TestServiceClusterAllAndSameCluster(t *testing.T) {
	s := populateService(t)
	clusters, err := s.ClusterAll(ClusterConfig{Threshold: DefaultThreshold})
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(clusters, len(s.Nodes()))
	if sum.NumClusters < 3 {
		t.Errorf("found %d multi-node clusters, want ≥ 3 (one per group)", sum.NumClusters)
	}

	peers, err := s.SameCluster("west-0", ClusterConfig{Threshold: DefaultThreshold})
	if err != nil {
		t.Fatal(err)
	}
	want := map[NodeID]bool{"west-1": true, "west-2": true}
	if len(peers) != 2 || !want[peers[0]] || !want[peers[1]] {
		t.Errorf("SameCluster(west-0) = %v, want the other west nodes", peers)
	}
	if _, err := s.SameCluster("ghost", ClusterConfig{Threshold: 0.1}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("SameCluster unknown node: %v", err)
	}
}

func TestServiceDistinctClusters(t *testing.T) {
	s := populateService(t)
	got, err := s.DistinctClusters(3, ClusterConfig{Threshold: DefaultThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("DistinctClusters = %v", got)
	}
	// The three picks must come from three different groups.
	groups := map[byte]bool{}
	for _, id := range got {
		groups[id[0]] = true
	}
	if len(groups) != 3 {
		t.Errorf("DistinctClusters picks %v not from distinct groups", got)
	}
	if got, err := s.DistinctClusters(0, ClusterConfig{}); err != nil || got != nil {
		t.Errorf("DistinctClusters(0) = %v, %v", got, err)
	}
}

func TestServiceNodesAndForget(t *testing.T) {
	s := populateService(t)
	if n := len(s.Nodes()); n != 9 {
		t.Fatalf("Nodes = %d, want 9", n)
	}
	s.Forget("west-0")
	if n := len(s.Nodes()); n != 8 {
		t.Errorf("after Forget, Nodes = %d, want 8", n)
	}
	if _, err := s.RatioMap("west-0"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("RatioMap of forgotten node: %v", err)
	}
}

func TestServiceConcurrentUse(t *testing.T) {
	s := NewService(WithWindow(20))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			node := NodeID(fmt.Sprintf("node-%d", w%4))
			for i := 0; i < 100; i++ {
				_ = s.Observe(node, t0.Add(time.Duration(i)*time.Second),
					ReplicaID(fmt.Sprintf("r%d", i%3)))
				_, _ = s.RatioMap(node)
				_, _ = s.ClusterAll(ClusterConfig{Threshold: 0.1})
			}
		}(w)
	}
	wg.Wait()
	if n := len(s.Nodes()); n != 4 {
		t.Errorf("Nodes = %d, want 4", n)
	}
}

// TestServiceCandidatesNilVersusEmpty pins the candidate-slice semantics of
// ClosestTo and TopK: nil means "rank against every known node", while an
// empty non-nil slice means "no candidates at all". Callers building
// candidate lists dynamically must not conflate the two.
func TestServiceCandidatesNilVersusEmpty(t *testing.T) {
	s := populateService(t)

	// nil: the whole service is the candidate set (minus the client).
	best, ok, err := s.ClosestTo("west-0", nil)
	if err != nil || !ok {
		t.Fatalf("ClosestTo(nil): ok=%v err=%v", ok, err)
	}
	if best.Node == "west-0" {
		t.Error("ClosestTo(nil) returned the client itself")
	}
	ranked, err := s.TopK("west-0", nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(s.Nodes()) - 1; len(ranked) != want {
		t.Errorf("TopK(nil) ranked %d candidates, want all %d known nodes minus the client", len(ranked), want)
	}

	// Empty non-nil: no candidates, no signal — and no error.
	best, ok, err = s.ClosestTo("west-0", []NodeID{})
	if err != nil {
		t.Fatal(err)
	}
	if ok || best != (Scored{}) {
		t.Errorf("ClosestTo(empty) = %+v ok=%v, want zero Scored and ok=false", best, ok)
	}
	ranked, err = s.TopK("west-0", []NodeID{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 0 {
		t.Errorf("TopK(empty) ranked %d candidates, want 0", len(ranked))
	}
}

// TestServiceCandidateListEdgeCases pins the remaining candidate-list
// behaviors the query path must preserve: duplicate IDs rank once, the
// client is excluded even when listed explicitly, and an unknown candidate
// is an error.
func TestServiceCandidateListEdgeCases(t *testing.T) {
	s := populateService(t)

	ranked, err := s.TopK("west-0", []NodeID{"east-0", "east-0", "west-0", "west-1"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("TopK with duplicates and the client listed ranked %d, want 2: %+v", len(ranked), ranked)
	}
	seen := map[NodeID]bool{}
	for _, sc := range ranked {
		if sc.Node == "west-0" {
			t.Error("client ranked as its own candidate")
		}
		if seen[sc.Node] {
			t.Errorf("candidate %s ranked twice", sc.Node)
		}
		seen[sc.Node] = true
	}

	if _, err := s.TopK("west-0", []NodeID{"nope"}, 5); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("TopK with unknown candidate: err=%v, want ErrUnknownNode", err)
	}
	if _, _, err := s.ClosestTo("west-0", []NodeID{"nope"}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("ClosestTo with unknown candidate: err=%v, want ErrUnknownNode", err)
	}
}

// TestServiceQueriesSeeNewObservations guards the snapshot cache: a query
// after a new observation must reflect the new state, not a stale compiled
// snapshot.
func TestServiceQueriesSeeNewObservations(t *testing.T) {
	s := NewService()
	at := t0
	mustObserve := func(n NodeID, rs ...ReplicaID) {
		t.Helper()
		if err := s.Observe(n, at, rs...); err != nil {
			t.Fatal(err)
		}
	}
	mustObserve("client", "r1")
	mustObserve("a", "r1")
	mustObserve("b", "r9")

	best, ok, err := s.ClosestTo("client", nil)
	if err != nil || !ok || best.Node != "a" {
		t.Fatalf("ClosestTo = %+v ok=%v err=%v, want a", best, ok, err)
	}

	// b flips to the client's replica set with heavier overlap; the next
	// query must see it despite the previously cached snapshot.
	for i := 0; i < 8; i++ {
		mustObserve("b", "r1")
	}
	ranked, err := s.TopK("client", nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 || ranked[0].Similarity < ranked[1].Similarity {
		t.Fatalf("TopK after update = %+v", ranked)
	}
	sim, err := s.Similarity("client", "b")
	if err != nil {
		t.Fatal(err)
	}
	if sim == 0 {
		t.Error("Similarity(client, b) = 0 after b observed r1; stale snapshot?")
	}

	// Forget must invalidate too.
	s.Forget("a")
	ranked, err = s.TopK("client", nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range ranked {
		if sc.Node == "a" {
			t.Error("forgotten node still ranked from cached snapshot")
		}
	}
}
