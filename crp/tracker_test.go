package crp

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func TestTrackerRatioMapMatchesPaperFormulation(t *testing.T) {
	// Node redirected to r1 30% of the time and r2 70% of the time must
	// yield ν = ⟨r1 ⇒ 0.3, r2 ⇒ 0.7⟩.
	tr := NewTracker()
	for i := 0; i < 3; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), "r1")
	}
	for i := 3; i < 10; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), "r2")
	}
	m := tr.RatioMap()
	if !almostEqual(m["r1"], 0.3, 1e-12) || !almostEqual(m["r2"], 0.7, 1e-12) {
		t.Errorf("ratio map = %v, want r1=0.3 r2=0.7", m)
	}
	if !almostEqual(m.Sum(), 1, 1e-12) {
		t.Errorf("ratios sum to %v, want 1", m.Sum())
	}
}

func TestTrackerMultiRecordProbes(t *testing.T) {
	// A probe returning two A records splits its weight between them.
	tr := NewTracker()
	tr.Observe(t0, "r1", "r2")
	tr.Observe(t0.Add(time.Minute), "r1")
	m := tr.RatioMap()
	if !almostEqual(m["r1"], 0.75, 1e-12) || !almostEqual(m["r2"], 0.25, 1e-12) {
		t.Errorf("ratio map = %v, want r1=0.75 r2=0.25", m)
	}
}

func TestTrackerWindowKeepsRecentProbes(t *testing.T) {
	tr := NewTracker(WithWindow(10))
	for i := 0; i < 30; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), ReplicaID(fmt.Sprintf("r%d", i)))
	}
	if got := tr.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
	m := tr.RatioMap()
	if _, stale := m["r19"]; stale {
		t.Error("window retained a probe older than the last 10")
	}
	if _, fresh := m["r29"]; !fresh {
		t.Error("window dropped the most recent probe")
	}
	if _, fresh := m["r20"]; !fresh {
		t.Error("window dropped the 10th most recent probe")
	}
}

func TestTrackerUnboundedWindow(t *testing.T) {
	tr := NewTracker() // "all probes"
	for i := 0; i < 500; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), "r1")
	}
	if got := tr.Len(); got != 500 {
		t.Errorf("Len = %d, want 500", got)
	}
}

func TestTrackerMaxAge(t *testing.T) {
	tr := NewTracker(WithMaxAge(30 * time.Minute))
	tr.Observe(t0, "old")
	tr.Observe(t0.Add(20*time.Minute), "mid")
	tr.Observe(t0.Add(45*time.Minute), "new")
	// Newest probe is at +45m, so the 30m age window keeps probes from +15m on.
	m := tr.RatioMap()
	if _, ok := m["old"]; ok {
		t.Error("probe older than MaxAge survived")
	}
	if _, ok := m["mid"]; !ok {
		t.Error("probe within MaxAge dropped")
	}
	if _, ok := m["new"]; !ok {
		t.Error("newest probe dropped")
	}
}

func TestTrackerIgnoresEmptyProbe(t *testing.T) {
	tr := NewTracker()
	tr.Observe(t0)
	if tr.Len() != 0 {
		t.Error("empty probe recorded")
	}
}

func TestTrackerEmptyRatioMap(t *testing.T) {
	tr := NewTracker()
	if m := tr.RatioMap(); len(m) != 0 {
		t.Errorf("empty tracker map = %v", m)
	}
	if _, ok := tr.LastProbe(); ok {
		t.Error("LastProbe on empty tracker reported ok")
	}
}

func TestTrackerLastProbeAndReset(t *testing.T) {
	tr := NewTracker()
	tr.Observe(t0, "r1")
	tr.Observe(t0.Add(time.Hour), "r2")
	last, ok := tr.LastProbe()
	if !ok || !last.Equal(t0.Add(time.Hour)) {
		t.Errorf("LastProbe = %v, %v", last, ok)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Error("Reset did not clear probes")
	}
}

func TestTrackerObserveCopiesReplicaSlice(t *testing.T) {
	tr := NewTracker()
	replicas := []ReplicaID{"r1", "r2"}
	tr.Observe(t0, replicas...)
	replicas[0] = "tampered"
	m := tr.RatioMap()
	if _, ok := m["tampered"]; ok {
		t.Error("tracker aliased the caller's slice")
	}
}

func TestTrackerNegativeOptionsClamped(t *testing.T) {
	tr := NewTracker(WithWindow(-5), WithMaxAge(-time.Hour))
	for i := 0; i < 20; i++ {
		tr.Observe(t0.Add(time.Duration(i)*time.Minute), "r")
	}
	if got := tr.Len(); got != 20 {
		t.Errorf("negative options should mean unbounded; Len = %d", got)
	}
}

func TestTrackerConcurrentObserve(t *testing.T) {
	tr := NewTracker(WithWindow(100))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Observe(t0.Add(time.Duration(i)*time.Second), ReplicaID(fmt.Sprintf("r%d", w)))
				_ = tr.RatioMap()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Len(); got != 100 {
		t.Errorf("Len = %d, want 100", got)
	}
	if sum := tr.RatioMap().Sum(); !almostEqual(sum, 1, 1e-9) {
		t.Errorf("ratio sum = %v, want 1", sum)
	}
}

func TestTrackerWindowTenApproximatesRecentBehaviour(t *testing.T) {
	// After a redirection regime change, a 10-probe window reflects the new
	// regime while an unbounded window is still dominated by stale history —
	// the effect behind Fig. 9's "all probes can hurt" observation.
	windowed := NewTracker(WithWindow(10))
	unbounded := NewTracker()
	at := t0
	for i := 0; i < 90; i++ {
		windowed.Observe(at, "old")
		unbounded.Observe(at, "old")
		at = at.Add(10 * time.Minute)
	}
	for i := 0; i < 10; i++ {
		windowed.Observe(at, "new")
		unbounded.Observe(at, "new")
		at = at.Add(10 * time.Minute)
	}
	if got := windowed.RatioMap()["new"]; !almostEqual(got, 1, 1e-12) {
		t.Errorf("windowed new ratio = %v, want 1", got)
	}
	if got := unbounded.RatioMap()["new"]; got > 0.2 {
		t.Errorf("unbounded new ratio = %v, want 0.1", got)
	}
}

// timeMinutes converts a probe index to a duration offset for tests.
func timeMinutes(i int) time.Duration {
	return time.Duration(i) * time.Minute
}

// leakedTailEntries counts non-zero probe entries lingering in the backing
// array beyond the tracker's live window — dropped history that compaction
// failed to release for the garbage collector.
func leakedTailEntries(tr *Tracker) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, p := range tr.probes[len(tr.probes):cap(tr.probes)] {
		if p.replicas != nil {
			n++
		}
	}
	return n
}

// Regression: the in-place window compaction used to leave every dropped
// probe's replica slice alive in the backing array tail, so a long-lived
// tracker pinned its entire history. The tail must be zeroed.
func TestTrackerCompactReleasesDroppedProbes(t *testing.T) {
	tr := NewTracker(WithWindow(4))
	for i := 0; i < 500; i++ {
		tr.Observe(t0.Add(timeMinutes(i)), "r1", "r2")
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("window holds %d probes, want 4", got)
	}
	if leaked := leakedTailEntries(tr); leaked != 0 {
		t.Errorf("%d dropped probes still referenced in the backing array tail", leaked)
	}
	m := tr.RatioMap()
	if !almostEqual(m.Sum(), 1, 1e-9) {
		t.Errorf("ratio map sum = %v after compaction, want 1", m.Sum())
	}
}

// Same leak through the age-based filter: a mass expiry (long probe gap)
// must not keep the expired probes reachable, whether compaction clears the
// tail in place or reallocates.
func TestTrackerMaxAgeCompactReleasesExpiredProbes(t *testing.T) {
	tr := NewTracker(WithMaxAge(30 * time.Minute))
	for i := 0; i < 200; i++ {
		tr.Observe(t0.Add(timeMinutes(i)), "r1", "r2")
	}
	// One probe far in the future expires everything before it.
	tr.Observe(t0.Add(1000*time.Hour), "r9")
	if got := tr.Len(); got != 1 {
		t.Fatalf("tracker holds %d probes after mass expiry, want 1", got)
	}
	if leaked := leakedTailEntries(tr); leaked != 0 {
		t.Errorf("%d expired probes still referenced in the backing array tail", leaked)
	}
	if got := tr.RatioMap()["r9"]; !almostEqual(got, 1, 1e-12) {
		t.Errorf("r9 ratio = %v after mass expiry, want 1", got)
	}
}
