package crp

import (
	"fmt"
	"testing"
	"testing/quick"
)

// nodesFromRaw builds a node set from fuzz bytes: each row becomes one node
// with up to 5 replica entries drawn from a small replica universe.
func nodesFromRaw(raw [][5]byte) []Node {
	nodes := make([]Node, 0, len(raw))
	for i, row := range raw {
		m := RatioMap{}
		for j, b := range row {
			if b == 0 {
				continue
			}
			m[ReplicaID(fmt.Sprintf("r%d", (int(b)+j)%7))] += float64(b)
		}
		nodes = append(nodes, Node{ID: NodeID(fmt.Sprintf("n%03d", i)), Map: m.Normalize()})
	}
	return nodes
}

// TestClusterSMFIsPartition verifies, over arbitrary inputs, that SMF always
// produces an exact partition: every node in exactly one cluster, every
// cluster non-empty with its center among its members, no duplicated
// centers — with and without the second pass.
func TestClusterSMFIsPartition(t *testing.T) {
	check := func(raw [][5]byte, tByte uint8, secondPass bool) bool {
		nodes := nodesFromRaw(raw)
		clusters, err := ClusterSMF(nodes, ClusterConfig{
			Threshold:  float64(tByte) / 255,
			SecondPass: secondPass,
			Seed:       int64(tByte),
		})
		if err != nil {
			return false
		}
		seen := map[NodeID]bool{}
		centers := map[NodeID]bool{}
		for _, c := range clusters {
			if c.Size() == 0 {
				return false
			}
			if centers[c.Center] {
				return false
			}
			centers[c.Center] = true
			centerIsMember := false
			for _, m := range c.Members {
				if seen[m] {
					return false
				}
				seen[m] = true
				if m == c.Center {
					centerIsMember = true
				}
			}
			if !centerIsMember {
				return false
			}
		}
		return len(seen) == len(nodes)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestClusterSMFMembersMeetThreshold verifies the SMF assignment rule: every
// non-center member of a multi-node first-pass cluster has cosine similarity
// to its center of at least the threshold.
func TestClusterSMFMembersMeetThreshold(t *testing.T) {
	check := func(raw [][5]byte, tByte uint8) bool {
		nodes := nodesFromRaw(raw)
		threshold := float64(tByte)/255*0.9 + 0.05
		clusters, err := ClusterSMF(nodes, ClusterConfig{Threshold: threshold})
		if err != nil {
			return false
		}
		maps := map[NodeID]RatioMap{}
		for _, n := range nodes {
			maps[n.ID] = n.Map
		}
		for _, c := range clusters {
			for _, m := range c.Members {
				if m == c.Center {
					continue
				}
				if CosineSimilarity(maps[m], maps[c.Center]) < threshold {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTrackerRatioMapSumsToOne is the tracker's core invariant over
// arbitrary probe sequences.
func TestTrackerRatioMapSumsToOne(t *testing.T) {
	check := func(raw [][3]byte, window uint8) bool {
		tr := NewTracker(WithWindow(int(window % 16)))
		any := false
		for i, row := range raw {
			var replicas []ReplicaID
			for _, b := range row {
				if b != 0 {
					replicas = append(replicas, ReplicaID(fmt.Sprintf("r%d", b%9)))
				}
			}
			if len(replicas) == 0 {
				continue
			}
			any = true
			tr.Observe(t0.Add(timeMinutes(i)), replicas...)
		}
		m := tr.RatioMap()
		if !any {
			return len(m) == 0
		}
		return almostEqual(m.Sum(), 1, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
