package crp

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

// nodesFromRaw builds a node set from fuzz bytes: each row becomes one node
// with up to 5 replica entries drawn from a small replica universe.
func nodesFromRaw(raw [][5]byte) []Node {
	nodes := make([]Node, 0, len(raw))
	for i, row := range raw {
		m := RatioMap{}
		for j, b := range row {
			if b == 0 {
				continue
			}
			m[ReplicaID(fmt.Sprintf("r%d", (int(b)+j)%7))] += float64(b)
		}
		nodes = append(nodes, Node{ID: NodeID(fmt.Sprintf("n%03d", i)), Map: m.Normalize()})
	}
	return nodes
}

// TestClusterSMFIsPartition verifies, over arbitrary inputs, that SMF always
// produces an exact partition: every node in exactly one cluster, every
// cluster non-empty with its center among its members, no duplicated
// centers — with and without the second pass.
func TestClusterSMFIsPartition(t *testing.T) {
	check := func(raw [][5]byte, tByte uint8, secondPass bool) bool {
		nodes := nodesFromRaw(raw)
		clusters, err := ClusterSMF(nodes, ClusterConfig{
			Threshold:  float64(tByte) / 255,
			SecondPass: secondPass,
			Seed:       int64(tByte),
		})
		if err != nil {
			return false
		}
		seen := map[NodeID]bool{}
		centers := map[NodeID]bool{}
		for _, c := range clusters {
			if c.Size() == 0 {
				return false
			}
			if centers[c.Center] {
				return false
			}
			centers[c.Center] = true
			centerIsMember := false
			for _, m := range c.Members {
				if seen[m] {
					return false
				}
				seen[m] = true
				if m == c.Center {
					centerIsMember = true
				}
			}
			if !centerIsMember {
				return false
			}
		}
		return len(seen) == len(nodes)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestClusterSMFMembersMeetThreshold verifies the SMF assignment rule: every
// non-center member of a multi-node first-pass cluster has cosine similarity
// to its center of at least the threshold.
func TestClusterSMFMembersMeetThreshold(t *testing.T) {
	check := func(raw [][5]byte, tByte uint8) bool {
		nodes := nodesFromRaw(raw)
		threshold := float64(tByte)/255*0.9 + 0.05
		clusters, err := ClusterSMF(nodes, ClusterConfig{Threshold: threshold})
		if err != nil {
			return false
		}
		maps := map[NodeID]RatioMap{}
		for _, n := range nodes {
			maps[n.ID] = n.Map
		}
		for _, c := range clusters {
			for _, m := range c.Members {
				if m == c.Center {
					continue
				}
				if CosineSimilarity(maps[m], maps[c.Center]) < threshold {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTrackerRatioMapSumsToOne is the tracker's core invariant over
// arbitrary probe sequences.
func TestTrackerRatioMapSumsToOne(t *testing.T) {
	check := func(raw [][3]byte, window uint8) bool {
		tr := NewTracker(WithWindow(int(window % 16)))
		any := false
		for i, row := range raw {
			var replicas []ReplicaID
			for _, b := range row {
				if b != 0 {
					replicas = append(replicas, ReplicaID(fmt.Sprintf("r%d", b%9)))
				}
			}
			if len(replicas) == 0 {
				continue
			}
			any = true
			tr.Observe(t0.Add(timeMinutes(i)), replicas...)
		}
		m := tr.RatioMap()
		if !any {
			return len(m) == 0
		}
		return almostEqual(m.Sum(), 1, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// mapCosine is the reference map-based similarity path: Dot + two Norms,
// exactly the pre-compiled-kernel formulation of CosineSimilarity,
// including the zero handling and [0, 1] drift clamp.
func mapCosine(a, b RatioMap) float64 {
	dot := Dot(a, b)
	if dot == 0 {
		return 0
	}
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	sim := dot / (na * nb)
	if sim > 1 {
		return 1
	}
	if sim < 0 {
		return 0
	}
	return sim
}

// TestCompiledKernelMatchesMapCosine: the compiled-vector kernel must be
// bit-identical (==, not almost-equal) to the map-based Dot/Norm path on
// arbitrary ratio maps. Both accumulate in ascending replica order, so every
// intermediate float operation matches.
func TestCompiledKernelMatchesMapCosine(t *testing.T) {
	check := func(rawA, rawB [5]byte, denomA, denomB uint8) bool {
		mkMap := func(raw [5]byte, denom uint8) RatioMap {
			m := RatioMap{}
			for j, b := range raw {
				if b == 0 {
					continue
				}
				m[ReplicaID(fmt.Sprintf("r%d", (int(b)+j)%7))] += float64(b) / float64(int(denom)+1)
			}
			return m
		}
		a, b := mkMap(rawA, denomA), mkMap(rawB, denomB)
		want := mapCosine(a, b)
		if got := CosineSimilarity(a, b); got != want {
			return false
		}
		// And on the compiled representation directly.
		if got := compileRatioMap(a).cosine(compileRatioMap(b)); got != want {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCompiledRankMatchesMapRank: RankBySimilarity through the compiled
// parallel kernel must return the exact Scored slice (order and float bits)
// the serial map-based path produces.
func TestCompiledRankMatchesMapRank(t *testing.T) {
	check := func(raw [][5]byte, clientRaw [5]byte) bool {
		nodes := nodesFromRaw(raw)
		candidates := make(map[NodeID]RatioMap, len(nodes))
		for _, n := range nodes {
			candidates[n.ID] = n.Map
		}
		client := RatioMap{}
		for j, b := range clientRaw {
			if b != 0 {
				client[ReplicaID(fmt.Sprintf("r%d", (int(b)+j)%7))] += float64(b)
			}
		}
		client = client.Normalize()

		got := RankBySimilarity(client, candidates)

		// Serial map-based reference ranking.
		want := make([]Scored, 0, len(candidates))
		for id, m := range candidates {
			want = append(want, Scored{Node: id, Similarity: mapCosine(client, m)})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Similarity != want[j].Similarity {
				return want[i].Similarity > want[j].Similarity
			}
			return want[i].Node < want[j].Node
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCompiledClusterMatchesMapCluster: ClusterSMF on the compiled kernel
// must produce exactly the clustering the map-based similarity path
// produces, across thresholds and with and without the second pass.
func TestCompiledClusterMatchesMapCluster(t *testing.T) {
	check := func(raw [][5]byte, tByte uint8, secondPass bool) bool {
		nodes := nodesFromRaw(raw)
		cfg := ClusterConfig{
			Threshold:  float64(tByte) / 255,
			SecondPass: secondPass,
			Seed:       int64(tByte),
		}
		got, errGot := ClusterSMF(nodes, cfg)
		maps := make(map[NodeID]RatioMap, len(nodes))
		for _, n := range nodes {
			maps[n.ID] = n.Map
		}
		want, errWant := clusterSMF(nodes, cfg, func(a, b NodeID) float64 {
			return mapCosine(maps[a], maps[b])
		})
		if (errGot == nil) != (errWant == nil) {
			return false
		}
		if errGot != nil {
			return true
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Center != want[i].Center || len(got[i].Members) != len(want[i].Members) {
				return false
			}
			for j := range got[i].Members {
				if got[i].Members[j] != want[i].Members[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
