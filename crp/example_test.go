package crp_test

import (
	"fmt"
	"time"

	"repro/crp"
)

// The paper's §IV-A worked example: node A chooses between servers B and C
// by comparing cosine similarities of their redirection ratio maps.
func ExampleCosineSimilarity() {
	a := crp.RatioMap{"rx": 0.2, "ry": 0.8}
	b := crp.RatioMap{"rx": 0.6, "ry": 0.4}
	c := crp.RatioMap{"rx": 0.1, "ry": 0.9}
	fmt.Printf("cos_sim(A,B) = %.3f\n", crp.CosineSimilarity(a, b))
	fmt.Printf("cos_sim(A,C) = %.3f\n", crp.CosineSimilarity(a, c))
	// Output:
	// cos_sim(A,B) = 0.740
	// cos_sim(A,C) = 0.991
}

func ExampleSelectClosest() {
	client := crp.RatioMap{"rx": 0.2, "ry": 0.8}
	candidates := map[crp.NodeID]crp.RatioMap{
		"server-b": {"rx": 0.6, "ry": 0.4},
		"server-c": {"rx": 0.1, "ry": 0.9},
	}
	best, ok := crp.SelectClosest(client, candidates)
	fmt.Printf("%s (similarity %.3f, signal %v)\n", best.Node, best.Similarity, ok)
	// Output:
	// server-c (similarity 0.991, signal true)
}

func ExampleTracker() {
	// A node is redirected to r1 on 3 of 10 lookups and to r2 on 7.
	tr := crp.NewTracker(crp.WithWindow(10))
	start := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		replica := crp.ReplicaID("r2")
		if i < 3 {
			replica = "r1"
		}
		tr.Observe(start.Add(time.Duration(i)*10*time.Minute), replica)
	}
	fmt.Println(tr.RatioMap())
	// Output:
	// ⟨r1 ⇒ 0.300, r2 ⇒ 0.700⟩
}

func ExampleClusterSMF() {
	nodes := []crp.Node{
		{ID: "ny-1", Map: crp.RatioMap{"nyc-a": 0.7, "nyc-b": 0.3}},
		{ID: "ny-2", Map: crp.RatioMap{"nyc-a": 0.6, "nyc-b": 0.4}},
		{ID: "ldn-1", Map: crp.RatioMap{"lon-a": 0.9, "lon-b": 0.1}},
		{ID: "ldn-2", Map: crp.RatioMap{"lon-a": 0.8, "lon-b": 0.2}},
	}
	clusters, err := crp.ClusterSMF(nodes, crp.ClusterConfig{Threshold: crp.DefaultThreshold})
	if err != nil {
		panic(err)
	}
	for _, c := range clusters {
		fmt.Printf("center %s: %v\n", c.Center, c.Members)
	}
	// Output:
	// center ldn-1: [ldn-1 ldn-2]
	// center ny-1: [ny-1 ny-2]
}

func ExampleService() {
	svc := crp.NewService(crp.WithWindow(10))
	at := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		t := at.Add(time.Duration(i) * 10 * time.Minute)
		_ = svc.Observe("client", t, "replica-west-1", "replica-west-2")
		_ = svc.Observe("server-near", t, "replica-west-1", "replica-west-2")
		_ = svc.Observe("server-far", t, "replica-east-1")
	}
	best, ok, err := svc.ClosestTo("client", []crp.NodeID{"server-near", "server-far"})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s %v\n", best.Node, ok)
	// Output:
	// server-near true
}
