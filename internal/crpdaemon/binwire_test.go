package crpdaemon

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/binwire"
	"repro/internal/obs"
	"repro/internal/peering"
)

// TestWireBoundsArePinned pins the UDP payload arithmetic so a future edit
// cannot silently reopen the 65508..65536 dead band: 65535 total − 8 UDP
// header − 20 IPv4 header, identical on the request side, the reply side
// and the gossip plane.
func TestWireBoundsArePinned(t *testing.T) {
	const udpPayloadCeiling = 65535 - 8 - 20
	if MaxRequestSize != udpPayloadCeiling {
		t.Fatalf("MaxRequestSize = %d, want %d", MaxRequestSize, udpPayloadCeiling)
	}
	if MaxReplySize != udpPayloadCeiling {
		t.Fatalf("MaxReplySize = %d, want %d", MaxReplySize, udpPayloadCeiling)
	}
	if peering.MaxMsgSize != udpPayloadCeiling {
		t.Fatalf("peering.MaxMsgSize = %d, want %d", peering.MaxMsgSize, udpPayloadCeiling)
	}
}

func sampleRequests() []Request {
	th := 0.25
	zero := 0.0
	return []Request{
		{Op: "observe", Node: "n1", Replicas: []string{"r1", "r2"}},
		{Op: "similarity", A: "n1", B: "n2"},
		{Op: "ratio_map", Node: "nœud-1"},
		{Op: "closest", Client: "c1", Candidates: []string{"n1", "n2"}, K: 3},
		{Op: "closest", Client: "c1", K: 2},                   // nil candidates: all nodes
		{Op: "closest", Client: "c1", Candidates: []string{}}, // empty: no candidates
		{Op: "same_cluster", Node: "n1", Threshold: &th},
		{Op: "same_cluster", Node: "n1", Threshold: &zero}, // explicit 0 ≠ absent
		{Op: "distinct_clusters", N: 5},
		{Op: "stats"},
		{Op: "nodes"},
		{Op: "peer-join", Addr: "127.0.0.1:7946"},
		{Op: "peer-status"},
		{Op: "batch", Batch: []Request{
			{Op: "observe", Node: "n1", Replicas: []string{"r1"}},
			{Op: "similarity", A: "n1", B: "n2"},
			{Op: "stats"},
		}},
		// Namespaced shapes ride after the pre-namespace ones so extending
		// the corpus preserved the original seed numbering.
		{Op: "ratio_map", Node: "n1", NS: "cdnA"},
		{Op: "similarity", A: "n1", B: "n2", NS: strings.Repeat("n", MaxNSBytes)},
		{Op: "closest", Client: "c1", Candidates: []string{"n1"}, K: 2, NS: "cdnB"},
		{Op: "observe", Node: "n1", Replicas: []string{"cdnA!r1", "cdnB!r1"}},
		{Op: "batch", Batch: []Request{
			{Op: "observe", Node: "n1", Replicas: []string{"cdnA!r1"}},
			{Op: "closest", Client: "n1", K: 1, NS: "cdnA"},
		}},
	}
}

func reqJSON(t *testing.T, r Request) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestBinaryRequestRoundTrip pins decode(encode(x)) == x for every op,
// including the presence-sensitive shapes: nil vs empty candidates and the
// explicit zero threshold.
func TestBinaryRequestRoundTrip(t *testing.T) {
	for _, r := range sampleRequests() {
		raw, err := EncodeRequest(&r, true)
		if err != nil {
			t.Fatalf("%s: encode: %v", r.Op, err)
		}
		if raw[0] != binMagic {
			t.Fatalf("%s: first byte 0x%02x, want the binary magic", r.Op, raw[0])
		}
		got, bin, err := decodeRequest(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", r.Op, err)
		}
		if !bin {
			t.Fatalf("%s: decode reported JSON for a binary request", r.Op)
		}
		if reqJSON(t, got) != reqJSON(t, r) {
			t.Fatalf("%s: round trip mismatch:\n got %s\nwant %s", r.Op, reqJSON(t, got), reqJSON(t, r))
		}
		// The presence distinction must survive verbatim, not just via JSON.
		if (got.Candidates == nil) != (r.Candidates == nil) {
			t.Fatalf("%s: candidates nil-ness flipped on the wire", r.Op)
		}
		if (got.Threshold == nil) != (r.Threshold == nil) {
			t.Fatalf("%s: threshold presence flipped on the wire", r.Op)
		}
	}
}

// TestCrossCodecRequest is the JSON↔binary property test: for generated
// requests, both encodings decode to the same request, and the binary
// encoding is never larger.
func TestCrossCodecRequest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ops := []string{"observe", "ratio_map", "similarity", "closest", "nodes",
		"stats", "same_cluster", "distinct_clusters", "peer-join", "peer-status"}
	genSingle := func() Request {
		r := Request{Op: ops[rng.Intn(len(ops))]}
		if rng.Intn(2) == 0 {
			r.Node = fmt.Sprintf("node-%d", rng.Intn(1000))
		}
		if rng.Intn(3) == 0 {
			r.A, r.B = "a1", "b1"
		}
		if rng.Intn(3) == 0 {
			r.Client = "client-1"
		}
		for i := 0; i < rng.Intn(4); i++ {
			r.Replicas = append(r.Replicas, fmt.Sprintf("r%d", rng.Intn(100)))
		}
		switch rng.Intn(3) {
		case 0: // nil
		case 1:
			r.Candidates = []string{}
		case 2:
			r.Candidates = []string{fmt.Sprintf("c%d", rng.Intn(100))}
		}
		r.K = rng.Intn(MaxK + 1)
		r.N = rng.Intn(100)
		if rng.Intn(2) == 0 {
			th := float64(rng.Intn(100)) / 100
			r.Threshold = &th
		}
		return r
	}
	for i := 0; i < 300; i++ {
		r := genSingle()
		if i%5 == 0 {
			batch := Request{Op: "batch"}
			for j := 0; j < 1+rng.Intn(4); j++ {
				batch.Batch = append(batch.Batch, genSingle())
			}
			r = batch
		}
		jsonRaw, err := EncodeRequest(&r, false)
		if err != nil {
			t.Fatalf("case %d: json encode: %v", i, err)
		}
		binRaw, err := EncodeRequest(&r, true)
		if err != nil {
			t.Fatalf("case %d: binary encode: %v", i, err)
		}
		if len(binRaw) >= len(jsonRaw) {
			t.Fatalf("case %d (%s): binary %d bytes, JSON %d — binary must be smaller",
				i, r.Op, len(binRaw), len(jsonRaw))
		}
		fromJSON, bin, err := decodeRequest(jsonRaw)
		if err != nil || bin {
			t.Fatalf("case %d: json decode: bin=%v err=%v", i, bin, err)
		}
		fromBin, bin, err := decodeRequest(binRaw)
		if err != nil || !bin {
			t.Fatalf("case %d: binary decode: bin=%v err=%v", i, bin, err)
		}
		if reqJSON(t, fromJSON) != reqJSON(t, fromBin) {
			t.Fatalf("case %d: codecs disagree:\n json %s\n bin  %s",
				i, reqJSON(t, fromJSON), reqJSON(t, fromBin))
		}
	}
}

// TestBinaryResponseRoundTrip pins decode(encode(x)) == x for every reply
// shape, including the embedded introspection documents and batch replies.
func TestBinaryResponseRoundTrip(t *testing.T) {
	sim := 0.75
	cases := []Response{
		{OK: true},
		{Error: "no such node"},
		{OK: true, TimedOut: true, Nodes: []string{}},
		{OK: true, Similarity: &sim},
		{OK: true, RatioMap: map[string]float64{"r1": 0.5, "r2": 0.25, "r0": 1}},
		{OK: true, Nodes: []string{"n1", "n2"}},
		{OK: true, Ranked: []RankedNode{{Node: "n1", Similarity: 0.9}, {Node: "n2", Similarity: 0.1}}},
		{OK: true, Stats: &obs.Snapshot{Counters: map[string]uint64{"crpd.requests": 7}}},
		{OK: true, Peering: &peering.StatusReport{Self: "d1", ShardCount: 16, Peers: []peering.PeerInfo{}}},
		{OK: true, Batch: []Response{
			{OK: true},
			{Error: "bad sub-request"},
			{OK: true, Similarity: &sim},
		}},
	}
	for i, resp := range cases {
		raw := encodeResponse(&resp, true)
		got, bin, err := DecodeResponse(raw)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !bin {
			t.Fatalf("case %d: decode reported JSON for a binary reply", i)
		}
		want, _ := json.Marshal(resp)
		have, _ := json.Marshal(got)
		if string(want) != string(have) {
			t.Fatalf("case %d: round trip mismatch:\n got %s\nwant %s", i, have, want)
		}
		// Canonical: re-encode is byte-identical (sorted ratio-map keys).
		if again := encodeResponse(&got, true); string(again) != string(raw) {
			t.Fatalf("case %d: re-encode not byte-identical", i)
		}
	}
}

// TestBinaryRequestBounds is the boundary table for the binary request
// decoder: exact-limit accept, limit+1 reject, mirroring the JSON table in
// decode_test.go.
func TestBinaryRequestBounds(t *testing.T) {
	ids := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = "r"
		}
		return out
	}
	encode := func(r *Request) []byte {
		// Bypass EncodeRequest's checkRequest so over-limit shapes reach the
		// wire; mirror the encoder's framing by temporarily widening nothing —
		// encodeRequestBody itself has no bounds.
		var e binwire.Enc
		e.U8(binMagic)
		e.U8(binVersion)
		e.U8(kindReq)
		if err := encodeRequestBody(&e, r); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), e.Bytes()...)
	}

	t.Run("replicas at limit", func(t *testing.T) {
		if _, _, err := decodeRequest(encode(&Request{Op: "observe", Node: "n", Replicas: ids(MaxListEntries)})); err != nil {
			t.Fatalf("MaxListEntries replicas rejected: %v", err)
		}
	})
	t.Run("replicas over limit", func(t *testing.T) {
		if _, _, err := decodeRequest(encode(&Request{Op: "observe", Node: "n", Replicas: ids(MaxListEntries + 1)})); err == nil {
			t.Fatal("replicas over limit accepted")
		}
	})
	t.Run("candidates at limit", func(t *testing.T) {
		if _, _, err := decodeRequest(encode(&Request{Op: "closest", Client: "c", Candidates: ids(MaxListEntries)})); err != nil {
			t.Fatalf("MaxListEntries candidates rejected: %v", err)
		}
	})
	t.Run("candidates over limit", func(t *testing.T) {
		if _, _, err := decodeRequest(encode(&Request{Op: "closest", Client: "c", Candidates: ids(MaxListEntries + 1)})); err == nil {
			t.Fatal("candidates over limit accepted")
		}
	})
	t.Run("id at limit", func(t *testing.T) {
		if _, _, err := decodeRequest(encode(&Request{Op: "observe", Node: strings.Repeat("x", MaxIDBytes)})); err != nil {
			t.Fatalf("MaxIDBytes node rejected: %v", err)
		}
	})
	t.Run("id over limit", func(t *testing.T) {
		if _, _, err := decodeRequest(encode(&Request{Op: "observe", Node: strings.Repeat("x", MaxIDBytes+1)})); err == nil {
			t.Fatal("oversized node id accepted")
		}
	})
	t.Run("k at limit", func(t *testing.T) {
		if _, _, err := decodeRequest(encode(&Request{Op: "closest", Client: "c", K: MaxK})); err != nil {
			t.Fatalf("MaxK rejected: %v", err)
		}
	})
	t.Run("k over limit", func(t *testing.T) {
		if _, _, err := decodeRequest(encode(&Request{Op: "closest", Client: "c", K: MaxK + 1})); err == nil {
			t.Fatal("k over limit accepted")
		}
	})
	t.Run("n over limit", func(t *testing.T) {
		if _, _, err := decodeRequest(encode(&Request{Op: "distinct_clusters", N: MaxN + 1})); err == nil {
			t.Fatal("n over limit accepted")
		}
	})
	t.Run("batch at limit", func(t *testing.T) {
		r := Request{Op: "batch", Batch: make([]Request, MaxBatch)}
		for i := range r.Batch {
			r.Batch[i] = Request{Op: "stats"}
		}
		raw, err := EncodeRequest(&r, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := decodeRequest(raw); err != nil {
			t.Fatalf("MaxBatch batch rejected: %v", err)
		}
	})
	t.Run("batch over limit", func(t *testing.T) {
		var e binwire.Enc
		e.U8(binMagic)
		e.U8(binVersion)
		e.U8(kindBatchReq)
		e.Uvarint(MaxBatch + 1)
		for i := 0; i < MaxBatch+1; i++ {
			if err := encodeRequestBody(&e, &Request{Op: "stats"}); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := decodeRequest(e.Bytes()); err == nil {
			t.Fatal("batch over limit accepted")
		}
	})
	t.Run("empty batch", func(t *testing.T) {
		var e binwire.Enc
		e.U8(binMagic)
		e.U8(binVersion)
		e.U8(kindBatchReq)
		e.Uvarint(0)
		if _, _, err := decodeRequest(e.Bytes()); err == nil {
			t.Fatal("empty batch accepted")
		}
	})
	t.Run("nested batch rejected in JSON", func(t *testing.T) {
		// The binary framing cannot even express nesting (the kind byte is
		// per-datagram), so the nesting check is reachable only via JSON.
		raw := []byte(`{"op":"batch","batch":[{"op":"batch","batch":[{"op":"stats"}]}]}`)
		_, _, err := decodeRequest(raw)
		if err == nil || !strings.Contains(err.Error(), "nest") {
			t.Fatalf("nested batch: err = %v, want nesting rejection", err)
		}
	})
	t.Run("unknown opcode", func(t *testing.T) {
		var e binwire.Enc
		e.U8(binMagic)
		e.U8(binVersion)
		e.U8(kindReq)
		e.U8(200) // no such opcode
		if _, _, err := decodeRequest(e.Bytes()); err == nil {
			t.Fatal("unknown opcode accepted")
		}
	})
	t.Run("reserved flags", func(t *testing.T) {
		raw := encode(&Request{Op: "stats"})
		raw[4] |= 0x80 // flags byte follows the opcode
		if _, _, err := decodeRequest(raw); err == nil {
			t.Fatal("reserved flag bits accepted")
		}
	})
	t.Run("unknown version", func(t *testing.T) {
		raw := encode(&Request{Op: "stats"})
		raw[1] = binVersion + 1
		if _, _, err := decodeRequest(raw); err == nil {
			t.Fatal("unknown binary version accepted")
		}
	})
	t.Run("response kind in a request", func(t *testing.T) {
		var e binwire.Enc
		e.U8(binMagic)
		e.U8(binVersion)
		e.U8(kindResp)
		if _, _, err := decodeRequest(e.Bytes()); err == nil {
			t.Fatal("response frame accepted as a request")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		raw := append(encode(&Request{Op: "stats"}), 0)
		if _, _, err := decodeRequest(raw); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	})
	t.Run("oversized payload", func(t *testing.T) {
		raw := make([]byte, MaxRequestSize+1)
		raw[0] = binMagic
		_, bin, err := decodeRequest(raw)
		if err == nil || !strings.Contains(err.Error(), "request too large") {
			t.Fatalf("err = %v, want size rejection", err)
		}
		if !bin {
			t.Fatal("oversized binary request not sniffed as binary (reply would go back as JSON)")
		}
	})
	t.Run("every truncation fails cleanly", func(t *testing.T) {
		for _, r := range sampleRequests() {
			raw, err := EncodeRequest(&r, true)
			if err != nil {
				t.Fatal(err)
			}
			for cut := 0; cut < len(raw); cut++ {
				if _, _, err := decodeRequest(raw[:cut]); err == nil {
					t.Fatalf("%s truncated to %d/%d bytes accepted", r.Op, cut, len(raw))
				}
			}
		}
	})
}

// TestBatchDispatch drives a batch datagram end to end through Handle in
// both codecs: sub-responses come back in request order, and both codecs
// agree on the results.
func TestBatchDispatch(t *testing.T) {
	d, _ := startDaemon(t, Config{Registry: obs.NewRegistry()}, crp.WithWindow(8))
	defer d.Close()

	req := Request{Op: "batch", Batch: []Request{
		{Op: "observe", Node: "n1", Replicas: []string{"r1", "r2"}},
		{Op: "observe", Node: "n2", Replicas: []string{"r1", "r3"}},
		{Op: "similarity", A: "n1", B: "n2"},
		{Op: "similarity", A: "n1", B: "missing"}, // fails; batch must carry the error through
		{Op: "nodes"},
	}}
	var replies []Response
	for _, bin := range []bool{false, true} {
		raw, err := EncodeRequest(&req, bin)
		if err != nil {
			t.Fatal(err)
		}
		wire := d.Handle(raw)
		resp, respBin, err := DecodeResponse(wire)
		if err != nil {
			t.Fatalf("bin=%v: reply undecodable: %v", bin, err)
		}
		if respBin != bin {
			t.Fatalf("bin=%v: reply codec mismatch", bin)
		}
		if !resp.OK || len(resp.Batch) != len(req.Batch) {
			t.Fatalf("bin=%v: batch reply = %+v", bin, resp)
		}
		if !resp.Batch[0].OK || !resp.Batch[1].OK {
			t.Fatalf("bin=%v: observe sub-replies failed: %+v", bin, resp.Batch[:2])
		}
		if !resp.Batch[2].OK || resp.Batch[2].Similarity == nil {
			t.Fatalf("bin=%v: similarity sub-reply = %+v", bin, resp.Batch[2])
		}
		if resp.Batch[3].OK || resp.Batch[3].Error == "" {
			t.Fatalf("bin=%v: missing-node sub-reply should fail: %+v", bin, resp.Batch[3])
		}
		if !resp.Batch[4].OK || len(resp.Batch[4].Nodes) != 2 {
			t.Fatalf("bin=%v: nodes sub-reply = %+v", bin, resp.Batch[4])
		}
		replies = append(replies, resp)
	}
	a, _ := json.Marshal(replies[0])
	b, _ := json.Marshal(replies[1])
	if string(a) != string(b) {
		t.Fatalf("codecs disagree on the batch result:\n json %s\n bin  %s", a, b)
	}
}

// TestBatchHeavyClassification pins the pool routing: a batch is heavy iff
// any sub-request is heavy.
func TestBatchHeavyClassification(t *testing.T) {
	light := Request{Op: "batch", Batch: []Request{{Op: "observe"}, {Op: "stats"}}}
	if batchHeavy(&light) {
		t.Fatal("all-cheap batch classified heavy")
	}
	mixed := Request{Op: "batch", Batch: []Request{{Op: "observe"}, {Op: "distinct_clusters", N: 4}}}
	if !batchHeavy(&mixed) {
		t.Fatal("batch with a heavy sub-request classified cheap")
	}
}

// TestBatchReplyDegrades pins the oversize policy for batch replies: the
// largest sub-responses are stubbed (deterministically) until the envelope
// fits, and the small sub-results survive.
func TestBatchReplyDegrades(t *testing.T) {
	d, _ := startDaemon(t, Config{Registry: obs.NewRegistry()})
	defer d.Close()

	big := make([]string, 120)
	for i := range big {
		big[i] = strings.Repeat("n", 200) + fmt.Sprintf("%03d", i)
	}
	resp := Response{OK: true, Batch: []Response{
		{OK: true, Nodes: []string{"small-1"}},
		{OK: true, Nodes: big}, // ~24 KB each: 4 of these overflow 65507
		{OK: true, Nodes: big},
		{OK: true, Nodes: big},
		{OK: true, Nodes: big},
		{OK: true, Nodes: []string{"small-2"}},
	}}
	for _, bin := range []bool{false, true} {
		wire := d.encodeBounded(resp, bin)
		if len(wire) > MaxReplySize {
			t.Fatalf("bin=%v: degraded reply is still %d bytes", bin, len(wire))
		}
		got, _, err := DecodeResponse(wire)
		if err != nil {
			t.Fatalf("bin=%v: degraded reply undecodable: %v", bin, err)
		}
		if len(got.Batch) != 6 {
			t.Fatalf("bin=%v: degraded reply lost sub-slots: %+v", bin, got)
		}
		if len(got.Batch[0].Nodes) != 1 || len(got.Batch[5].Nodes) != 1 {
			t.Fatalf("bin=%v: small sub-results did not survive degradation", bin)
		}
		stubbed := 0
		for _, sub := range got.Batch {
			if strings.Contains(sub.Error, "response too large") {
				stubbed++
			}
		}
		if stubbed == 0 || stubbed == len(got.Batch) {
			t.Fatalf("bin=%v: %d/%d subs stubbed; want partial degradation", bin, stubbed, len(got.Batch))
		}
	}
}

// oneShotConn is a fake PacketConn that delivers one oversized datagram and
// then blocks: the only way to exercise what the read loop sees when the
// kernel hands it more than MaxRequestSize bytes (real loopback UDP cannot
// carry such a datagram).
type oneShotConn struct {
	payload   []byte
	delivered bool
	mu        sync.Mutex
	replies   chan []byte
	closed    chan struct{}
	once      sync.Once
}

func (c *oneShotConn) ReadFrom(b []byte) (int, net.Addr, error) {
	c.mu.Lock()
	first := !c.delivered
	c.delivered = true
	c.mu.Unlock()
	if first {
		n := copy(b, c.payload)
		return n, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9}, nil
	}
	<-c.closed
	return 0, nil, net.ErrClosed
}

func (c *oneShotConn) WriteTo(b []byte, _ net.Addr) (int, error) {
	select {
	case c.replies <- append([]byte(nil), b...):
	default:
	}
	return len(b), nil
}

func (c *oneShotConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *oneShotConn) LocalAddr() net.Addr              { return &net.UDPAddr{IP: net.IPv4zero, Port: 0} }
func (c *oneShotConn) SetDeadline(time.Time) error      { return nil }
func (c *oneShotConn) SetReadDeadline(time.Time) error  { return nil }
func (c *oneShotConn) SetWriteDeadline(time.Time) error { return nil }

// TestOversizedDatagramCounted is the crpd half of the truncation
// regression: a datagram larger than MaxRequestSize fills the read loop's
// bound+1 buffer, is counted as oversize, never reaches the decoder, and
// still earns the client a structured codec-matched error.
func TestOversizedDatagramCounted(t *testing.T) {
	payload := make([]byte, MaxRequestSize+4096)
	payload[0] = binMagic // oversized *binary* request: the error must come back binary
	conn := &oneShotConn{payload: payload, replies: make(chan []byte, 1), closed: make(chan struct{})}
	reg := obs.NewRegistry()
	d, err := Serve(conn, crp.NewService(), Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	select {
	case wire := <-conn.replies:
		resp, bin, err := DecodeResponse(wire)
		if err != nil {
			t.Fatalf("oversize reply undecodable: %v", err)
		}
		if !bin {
			t.Fatal("oversize error for a binary request came back as JSON")
		}
		if resp.OK || !strings.Contains(resp.Error, "request too large") {
			t.Fatalf("oversize reply = %+v", resp)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply to the oversized datagram")
	}
	if got := reg.Snapshot().Counters["crpd.oversized_requests"]; got != 1 {
		t.Fatalf("crpd.oversized_requests = %d, want 1", got)
	}
}

// corruptedRequestSeeds returns hand-built malformed binary requests for the
// checked-in fuzz corpus, one per decoder rejection path.
func corruptedRequestSeeds(valid [][]byte) [][]byte {
	var out [][]byte
	for _, raw := range valid {
		out = append(out, raw[:len(raw)/2])
		out = append(out, append(append([]byte(nil), raw...), 0))
	}
	bad := append([]byte(nil), valid[0]...)
	bad[1] = binVersion + 1
	out = append(out, bad)
	var e binwire.Enc
	e.U8(binMagic)
	e.U8(binVersion)
	e.U8(kindReq)
	e.U8(200) // unknown opcode
	out = append(out, append([]byte(nil), e.Bytes()...))
	return out
}

// FuzzDecodeBinaryRequest fuzzes the binary request decoder specifically:
// never panic, never accept an out-of-bounds request, and everything
// accepted re-encodes canonically and survives the full handler with a
// codec-matched reply. The checked-in corpus under testdata/fuzz seeds
// every op plus the corruption shapes above (regenerate with
// REGEN_FUZZ_CORPUS=1).
func FuzzDecodeBinaryRequest(f *testing.F) {
	var valid [][]byte
	for _, r := range sampleRequests() {
		raw, err := EncodeRequest(&r, true)
		if err != nil {
			f.Fatal(err)
		}
		valid = append(valid, raw)
		f.Add(raw)
	}
	for _, raw := range corruptedRequestSeeds(valid) {
		f.Add(raw)
	}
	d, _ := startDaemon(f, Config{Registry: obs.NewRegistry()}, crp.WithWindow(8))
	f.Cleanup(func() { d.Close() })

	f.Fuzz(func(t *testing.T, raw []byte) {
		req, bin, err := decodeRequest(raw)
		if err != nil {
			return
		}
		if len(req.Node) > MaxIDBytes || len(req.Replicas) > MaxListEntries ||
			len(req.Candidates) > MaxListEntries || req.K < 0 || req.K > MaxK ||
			req.N < 0 || req.N > MaxN || len(req.Batch) > MaxBatch {
			t.Fatalf("decoder accepted out-of-bounds request: %+v", req)
		}
		if bin {
			re, err := EncodeRequest(&req, true)
			if err != nil {
				t.Fatalf("decoded request unencodable: %v", err)
			}
			req2, _, err := decodeRequest(re)
			if err != nil {
				t.Fatalf("re-encoded request undecodable: %v", err)
			}
			if reqJSON(t, req) != reqJSON(t, req2) {
				t.Fatal("re-encode round trip drifted")
			}
		}
		wire := d.Handle(raw)
		_, respBin, err := DecodeResponse(wire)
		if err != nil {
			t.Fatalf("Handle reply undecodable: %v (%q)", err, wire)
		}
		if respBin != bin {
			t.Fatalf("request codec bin=%v but reply codec bin=%v", bin, respBin)
		}
	})
}

// TestGenerateFuzzCorpus writes the checked-in seed corpus for
// FuzzDecodeBinaryRequest; a no-op unless REGEN_FUZZ_CORPUS is set.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeBinaryRequest")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var valid [][]byte
	for _, r := range sampleRequests() {
		raw, err := EncodeRequest(&r, true)
		if err != nil {
			t.Fatal(err)
		}
		valid = append(valid, raw)
	}
	for i, raw := range append(valid, corruptedRequestSeeds(valid)...) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", raw)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
