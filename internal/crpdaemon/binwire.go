package crpdaemon

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/binwire"
	"repro/internal/drift"
	"repro/internal/obs"
	"repro/internal/peering"
)

// Compact binary codec for the crpd query protocol. One datagram is:
//
//	byte 0  binMagic (0xCB — never a valid JSON first byte, so the first
//	        byte routes the codec; distinct from the gossip plane's magic)
//	byte 1  binVersion
//	byte 2  frame kind: kindReq / kindResp for a single message,
//	        kindBatchReq / kindBatchResp for a uvarint-counted batch of
//	        bodies (1..MaxBatch; batches don't nest)
//	then the request or response body/bodies.
//
// A request body is: opcode u8, flags u8 (bit0 threshold present, bit1
// candidates present — a nil candidates list means "rank against every
// known node", so presence must survive the wire; bit2 ns present), node,
// a, b, client, addr strings, replicas (count + strings), [candidates
// (count + strings)], k uvarint, n uvarint, [threshold f64], [ns string].
// The ns field rides at the end of the body behind its presence bit, so a
// pre-namespace encoder's frames decode unchanged under the same version
// byte — no version bump, no corpus invalidation.
//
// A response body is: flags uvarint (presence bits below; a u8 through
// version 1, widened when the ninth bit arrived with drift-status), error
// string, [similarity f64], [ratioMap: count + sorted (key, f64) pairs —
// sorted so identical responses are byte-identical], [nodes: count +
// strings], [ranked: count + (node, similarity) pairs], [stats JSON blob],
// [peering JSON blob], [drift JSON blob]. The stats, peering and drift
// payloads are introspection documents — nested, schema-churning, and far
// off the hot path — so they ride as length-prefixed JSON rather than
// getting a parallel binary schema.
const (
	binMagic = 0xCB
	// binVersion 2 widened the response flags from u8 to uvarint; version
	// mismatches fail decode cleanly, and both ends of every deployment
	// ship from this tree.
	binVersion    = 2
	kindReq       = 0x01
	kindResp      = 0x02
	kindBatchReq  = 0x03
	kindBatchResp = 0x04

	// maxErrBytes bounds a decoded error string; the daemon's own errors are
	// short format strings.
	maxErrBytes = 4096
	// maxBlobBytes bounds the embedded stats/peering JSON documents. A reply
	// can never legally exceed MaxReplySize, so neither can a blob in it.
	maxBlobBytes = MaxReplySize
)

// Response flag bits.
const (
	respOK = 1 << iota
	respTimedOut
	respHasSimilarity
	respHasRatioMap
	respHasNodes
	respHasRanked
	respHasStats
	respHasPeering
	respHasDrift
)

// binOpCodes maps Request.Op to its wire opcode ("batch" is a frame kind,
// not an opcode); binOpNames is the inverse.
var binOpCodes = map[string]byte{
	"observe": 0, "ratio_map": 1, "similarity": 2, "closest": 3,
	"nodes": 4, "stats": 5, "same_cluster": 6, "distinct_clusters": 7,
	"peer-join": 8, "peer-status": 9, "drift-status": 10,
}

var binOpNames = func() map[byte]string {
	m := make(map[byte]string, len(binOpCodes))
	for name, code := range binOpCodes {
		m[code] = name
	}
	return m
}()

// DecodeRequest parses and bounds-checks one wire request in either codec,
// routed by the first byte. It is the same path the daemon runs on every
// datagram, exported so benches and tools can measure and exercise it.
func DecodeRequest(raw []byte) (Request, bool, error) {
	return decodeRequest(raw)
}

// EncodeRequest marshals one request in the chosen codec, validating it
// first so anything encoded is also decodable. Clients (and the bench) use
// this; the daemon only decodes requests.
func EncodeRequest(req *Request, bin bool) ([]byte, error) {
	if err := checkRequest(req); err != nil {
		return nil, err
	}
	if !bin {
		return json.Marshal(req)
	}
	var e binwire.Enc
	e.U8(binMagic)
	e.U8(binVersion)
	if req.Op == "batch" {
		e.U8(kindBatchReq)
		e.Uvarint(uint64(len(req.Batch)))
		for i := range req.Batch {
			if err := encodeRequestBody(&e, &req.Batch[i]); err != nil {
				return nil, fmt.Errorf("batch[%d]: %v", i, err)
			}
		}
	} else {
		e.U8(kindReq)
		if err := encodeRequestBody(&e, req); err != nil {
			return nil, err
		}
	}
	return append([]byte(nil), e.Bytes()...), nil
}

func encodeRequestBody(e *binwire.Enc, req *Request) error {
	code, ok := binOpCodes[req.Op]
	if !ok {
		return fmt.Errorf("unknown op %q", req.Op)
	}
	e.U8(code)
	var flags byte
	if req.Threshold != nil {
		flags |= 1
	}
	if req.Candidates != nil {
		flags |= 2
	}
	if req.NS != "" {
		flags |= 4
	}
	e.U8(flags)
	e.String(req.Node)
	e.String(req.A)
	e.String(req.B)
	e.String(req.Client)
	e.String(req.Addr)
	e.Uvarint(uint64(len(req.Replicas)))
	for _, r := range req.Replicas {
		e.String(r)
	}
	if req.Candidates != nil {
		e.Uvarint(uint64(len(req.Candidates)))
		for _, c := range req.Candidates {
			e.String(c)
		}
	}
	e.Uvarint(uint64(req.K))
	e.Uvarint(uint64(req.N))
	if req.Threshold != nil {
		e.F64(*req.Threshold)
	}
	if req.NS != "" {
		e.String(req.NS)
	}
	return nil
}

// decodeBinaryRequest parses a binary-codec request datagram. Structural
// bounds live here; the caller runs checkRequest on the result, the same
// semantic validation the JSON path gets.
func decodeBinaryRequest(raw []byte) (Request, error) {
	var req Request
	d := binwire.NewDec(raw)
	if _, err := d.U8(); err != nil { // magic, already sniffed by the caller
		return req, fmt.Errorf("bad request: %v", err)
	}
	ver, err := d.U8()
	if err != nil {
		return req, fmt.Errorf("bad request: %v", err)
	}
	if ver != binVersion {
		return req, fmt.Errorf("unsupported binary version %d", ver)
	}
	kind, err := d.U8()
	if err != nil {
		return req, fmt.Errorf("bad request: %v", err)
	}
	switch kind {
	case kindReq:
		if err := decodeRequestBody(d, &req); err != nil {
			return req, err
		}
	case kindBatchReq:
		n, err := d.Count(MaxBatch, 2)
		if err != nil {
			return req, fmt.Errorf("batch: %v", err)
		}
		if n == 0 {
			return req, fmt.Errorf("batch request carries no sub-requests")
		}
		req.Op = "batch"
		req.Batch = make([]Request, n)
		for i := range req.Batch {
			if err := decodeRequestBody(d, &req.Batch[i]); err != nil {
				return req, fmt.Errorf("batch[%d]: %v", i, err)
			}
		}
	default:
		return req, fmt.Errorf("unexpected frame kind 0x%02x in a request", kind)
	}
	if err := d.Done(); err != nil {
		return req, fmt.Errorf("bad request: %v", err)
	}
	return req, nil
}

func decodeRequestBody(d *binwire.Dec, req *Request) error {
	code, err := d.U8()
	if err != nil {
		return err
	}
	op, ok := binOpNames[code]
	if !ok {
		return fmt.Errorf("unknown opcode %d", code)
	}
	req.Op = op
	flags, err := d.U8()
	if err != nil {
		return err
	}
	if flags > 7 {
		return fmt.Errorf("reserved request flags 0x%02x", flags)
	}
	for _, f := range []*string{&req.Node, &req.A, &req.B, &req.Client, &req.Addr} {
		if *f, err = d.String(MaxIDBytes); err != nil {
			return err
		}
	}
	n, err := d.Count(MaxListEntries, 1)
	if err != nil {
		return err
	}
	if n > 0 {
		req.Replicas = make([]string, n)
		for i := range req.Replicas {
			if req.Replicas[i], err = d.String(MaxIDBytes); err != nil {
				return err
			}
		}
	}
	if flags&2 != 0 {
		if n, err = d.Count(MaxListEntries, 1); err != nil {
			return err
		}
		// Present-but-empty stays a non-nil empty list: "no candidates",
		// not "all nodes".
		req.Candidates = make([]string, n)
		for i := range req.Candidates {
			if req.Candidates[i], err = d.String(MaxIDBytes); err != nil {
				return err
			}
		}
	}
	k, err := d.Uvarint()
	if err != nil || k > MaxK {
		return fmt.Errorf("k: bad value")
	}
	req.K = int(k)
	nn, err := d.Uvarint()
	if err != nil || nn > MaxN {
		return fmt.Errorf("n: bad value")
	}
	req.N = int(nn)
	if flags&1 != 0 {
		t, err := d.F64()
		if err != nil {
			return err
		}
		req.Threshold = &t
	}
	if flags&4 != 0 {
		if req.NS, err = d.String(MaxNSBytes); err != nil {
			return err
		}
	}
	return nil
}

// encodeResponse marshals one response in the chosen codec. Encoding a
// response cannot fail: the daemon built it, and unrepresentable shapes
// don't occur (JSON falls back to a static error, matching marshal).
func encodeResponse(resp *Response, bin bool) []byte {
	if !bin {
		return marshal(*resp)
	}
	var e binwire.Enc
	e.U8(binMagic)
	e.U8(binVersion)
	if len(resp.Batch) > 0 {
		e.U8(kindBatchResp)
		e.Uvarint(uint64(len(resp.Batch)))
		for i := range resp.Batch {
			encodeResponseBody(&e, &resp.Batch[i])
		}
	} else {
		e.U8(kindResp)
		encodeResponseBody(&e, resp)
	}
	return append([]byte(nil), e.Bytes()...)
}

func encodeResponseBody(e *binwire.Enc, resp *Response) {
	var flags uint64
	if resp.OK {
		flags |= respOK
	}
	if resp.TimedOut {
		flags |= respTimedOut
	}
	if resp.Similarity != nil {
		flags |= respHasSimilarity
	}
	if resp.RatioMap != nil {
		flags |= respHasRatioMap
	}
	if resp.Nodes != nil {
		flags |= respHasNodes
	}
	if resp.Ranked != nil {
		flags |= respHasRanked
	}
	if resp.Stats != nil {
		flags |= respHasStats
	}
	if resp.Peering != nil {
		flags |= respHasPeering
	}
	if resp.Drift != nil {
		flags |= respHasDrift
	}
	e.Uvarint(flags)
	e.String(resp.Error)
	if resp.Similarity != nil {
		e.F64(*resp.Similarity)
	}
	if resp.RatioMap != nil {
		keys := make([]string, 0, len(resp.RatioMap))
		for k := range resp.RatioMap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.String(k)
			e.F64(resp.RatioMap[k])
		}
	}
	if resp.Nodes != nil {
		e.Uvarint(uint64(len(resp.Nodes)))
		for _, n := range resp.Nodes {
			e.String(n)
		}
	}
	if resp.Ranked != nil {
		e.Uvarint(uint64(len(resp.Ranked)))
		for _, r := range resp.Ranked {
			e.String(r.Node)
			e.F64(r.Similarity)
		}
	}
	if resp.Stats != nil {
		b, err := json.Marshal(resp.Stats)
		if err != nil {
			b = []byte("{}")
		}
		e.Blob(b)
	}
	if resp.Peering != nil {
		b, err := json.Marshal(resp.Peering)
		if err != nil {
			b = []byte("{}")
		}
		e.Blob(b)
	}
	if resp.Drift != nil {
		b, err := json.Marshal(resp.Drift)
		if err != nil {
			b = []byte("{}")
		}
		e.Blob(b)
	}
}

// EncodeResponseWire marshals one response in the chosen codec without the
// daemon's reply-size policy — exported so benches and tools can produce
// representative reply datagrams. The daemon's own replies go through
// encodeBounded, which adds the oversize degradation on top of this.
func EncodeResponseWire(resp *Response, bin bool) []byte {
	return encodeResponse(resp, bin)
}

// DecodeResponse parses one reply in either codec, routed by the first
// byte. Clients (and the bench) use this; the bin flag reports which codec
// the server answered in.
func DecodeResponse(raw []byte) (Response, bool, error) {
	var resp Response
	if len(raw) > 0 && raw[0] == binMagic {
		resp, err := decodeBinaryResponse(raw)
		return resp, true, err
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return resp, false, fmt.Errorf("bad response: %v", err)
	}
	return resp, false, nil
}

func decodeBinaryResponse(raw []byte) (Response, error) {
	var resp Response
	if len(raw) > MaxReplySize {
		return resp, fmt.Errorf("response too large: %d bytes exceeds the %d-byte limit", len(raw), MaxReplySize)
	}
	d := binwire.NewDec(raw)
	if _, err := d.U8(); err != nil {
		return resp, fmt.Errorf("bad response: %v", err)
	}
	ver, err := d.U8()
	if err != nil {
		return resp, fmt.Errorf("bad response: %v", err)
	}
	if ver != binVersion {
		return resp, fmt.Errorf("unsupported binary version %d", ver)
	}
	kind, err := d.U8()
	if err != nil {
		return resp, fmt.Errorf("bad response: %v", err)
	}
	switch kind {
	case kindResp:
		if err := decodeResponseBody(d, &resp); err != nil {
			return resp, err
		}
	case kindBatchResp:
		n, err := d.Count(MaxBatch, 2)
		if err != nil {
			return resp, fmt.Errorf("batch: %v", err)
		}
		resp.OK = true
		resp.Batch = make([]Response, n)
		for i := range resp.Batch {
			if err := decodeResponseBody(d, &resp.Batch[i]); err != nil {
				return resp, fmt.Errorf("batch[%d]: %v", i, err)
			}
		}
	default:
		return resp, fmt.Errorf("unexpected frame kind 0x%02x in a response", kind)
	}
	if err := d.Done(); err != nil {
		return resp, fmt.Errorf("bad response: %v", err)
	}
	return resp, nil
}

func decodeResponseBody(d *binwire.Dec, resp *Response) error {
	flags, err := d.Uvarint()
	if err != nil {
		return err
	}
	if flags >= respHasDrift<<1 {
		return fmt.Errorf("reserved response flags 0x%x", flags)
	}
	resp.OK = flags&respOK != 0
	resp.TimedOut = flags&respTimedOut != 0
	if resp.Error, err = d.String(maxErrBytes); err != nil {
		return err
	}
	if flags&respHasSimilarity != 0 {
		v, err := d.F64()
		if err != nil {
			return err
		}
		resp.Similarity = &v
	}
	if flags&respHasRatioMap != 0 {
		n, err := d.Count(MaxListEntries, 9)
		if err != nil {
			return err
		}
		resp.RatioMap = make(map[string]float64, n)
		for i := 0; i < n; i++ {
			k, err := d.String(MaxIDBytes)
			if err != nil {
				return err
			}
			v, err := d.F64()
			if err != nil {
				return err
			}
			resp.RatioMap[k] = v
		}
	}
	if flags&respHasNodes != 0 {
		n, err := d.Count(MaxListEntries, 1)
		if err != nil {
			return err
		}
		resp.Nodes = make([]string, n)
		for i := range resp.Nodes {
			if resp.Nodes[i], err = d.String(MaxIDBytes); err != nil {
				return err
			}
		}
	}
	if flags&respHasRanked != 0 {
		n, err := d.Count(MaxListEntries, 9)
		if err != nil {
			return err
		}
		resp.Ranked = make([]RankedNode, n)
		for i := range resp.Ranked {
			if resp.Ranked[i].Node, err = d.String(MaxIDBytes); err != nil {
				return err
			}
			if resp.Ranked[i].Similarity, err = d.F64(); err != nil {
				return err
			}
		}
	}
	if flags&respHasStats != 0 {
		b, err := d.Blob(maxBlobBytes)
		if err != nil {
			return err
		}
		resp.Stats = new(obs.Snapshot)
		if err := json.Unmarshal(b, resp.Stats); err != nil {
			return fmt.Errorf("stats blob: %v", err)
		}
	}
	if flags&respHasPeering != 0 {
		b, err := d.Blob(maxBlobBytes)
		if err != nil {
			return err
		}
		resp.Peering = new(peering.StatusReport)
		if err := json.Unmarshal(b, resp.Peering); err != nil {
			return fmt.Errorf("peering blob: %v", err)
		}
	}
	if flags&respHasDrift != 0 {
		b, err := d.Blob(maxBlobBytes)
		if err != nil {
			return err
		}
		resp.Drift = new(drift.Status)
		if err := json.Unmarshal(b, resp.Drift); err != nil {
			return fmt.Errorf("drift blob: %v", err)
		}
	}
	return nil
}
