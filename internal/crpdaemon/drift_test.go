package crpdaemon

import (
	"encoding/json"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/drift"
	"repro/internal/obs"
)

// TestDriftStatusOp serves a drift monitor through the query protocol: the
// op must report the detector's frame count and streams identically over
// the JSON and binary codecs, and a daemon without a monitor must answer
// with a structured error.
func TestDriftStatusOp(t *testing.T) {
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 16}, crp.WithWindow(10))
	clock := time.Date(2006, 11, 12, 0, 0, 0, 0, time.UTC)
	mon, err := drift.NewMonitor(svc, drift.Config{},
		drift.WithRegistry(obs.NewRegistry()),
		drift.WithClock(func() time.Time { return clock }))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Serve(pc, svc, Config{Registry: obs.NewRegistry(), Drift: mon})
	if err != nil {
		pc.Close()
		t.Fatal(err)
	}
	defer d.Close()

	c := dialDaemon(t, pc)
	defer c.close()

	for i := 0; i < 6; i++ {
		svc.Observe(crp.NodeID("n0"), clock, crp.Qualify("cdnA", "r0"), crp.Qualify("cdnA", "r1"))
		svc.Observe(crp.NodeID("n1"), clock, crp.Qualify("cdnA", "r1"))
		clock = clock.Add(time.Minute)
		mon.Tick()
	}

	resp := c.roundTrip(t, `{"op":"drift-status"}`)
	if !resp.OK || resp.Drift == nil {
		t.Fatalf("drift-status: %+v", resp)
	}
	if resp.Drift.Frames != 6 {
		t.Fatalf("frames = %d, want 6", resp.Drift.Frames)
	}
	if len(resp.Drift.Streams) != 1 || resp.Drift.Streams[0].NS != "cdnA" {
		t.Fatalf("streams = %+v", resp.Drift.Streams)
	}
	if resp.Drift.Config.Sensitivity != drift.DefaultConfig().Sensitivity {
		t.Fatalf("config not echoed: %+v", resp.Drift.Config)
	}

	// The binary codec must carry the same report.
	raw, err := EncodeRequest(&Request{Op: "drift-status"}, true)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	binResp, wasBin, err := DecodeResponse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !wasBin {
		t.Fatal("binary request answered in JSON")
	}
	if binResp.Drift == nil || !reflect.DeepEqual(binResp.Drift, resp.Drift) {
		t.Fatalf("binary drift report differs:\n bin  %+v\n json %+v", binResp.Drift, resp.Drift)
	}
}

func TestDriftStatusDisabled(t *testing.T) {
	d, pc := startDaemon(t, Config{}, crp.WithWindow(10))
	defer d.Close()
	c := dialDaemon(t, pc)
	defer c.close()
	resp := c.roundTrip(t, `{"op":"drift-status"}`)
	if resp.OK || resp.Error == "" {
		t.Fatalf("want structured error when drift is disabled, got %+v", resp)
	}
}

// TestDriftStatusJSONRoundTrip pins that the report survives the response
// envelope: crpq consumers re-encode it.
func TestDriftStatusJSONRoundTrip(t *testing.T) {
	st := drift.Status{Frames: 3}
	resp := Response{OK: true, Drift: &st}
	blob, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var back Response
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Drift == nil || back.Drift.Frames != 3 {
		t.Fatalf("round trip lost the drift report: %+v", back)
	}
}
