package crpdaemon

import (
	"encoding/json"
	"fmt"
	"unicode/utf8"
)

// Wire-field bounds. The daemon fronts an in-memory store keyed by
// client-supplied strings, so every field that sizes an allocation or a key
// is bounded before the request reaches a worker: a hostile or corrupted
// datagram must cost one structured error reply, not memory or CPU.
const (
	// MaxRequestSize bounds the raw datagram. It matches the read loop's
	// buffer: anything larger was truncated on the socket anyway, and
	// Handle (the in-process path, no kernel truncation) enforces it
	// explicitly.
	MaxRequestSize = 64 * 1024
	// MaxIDBytes bounds every identity field (node, replica, candidate).
	// Identities are DNS names in practice, which cap at 255 octets.
	MaxIDBytes = 255
	// MaxListEntries bounds the replicas and candidates lists.
	MaxListEntries = 10000
	// MaxK bounds top-k requests; MaxN bounds the sweep width.
	MaxK = 10000
	MaxN = 1 << 20
)

// decodeRequest parses and bounds-checks one wire request. It is the single
// decode path for both the socket loop and Handle, so the bounds hold on
// every route into a worker.
func decodeRequest(raw []byte) (Request, error) {
	var req Request
	if len(raw) > MaxRequestSize {
		return req, fmt.Errorf("request too large: %d bytes exceeds the %d-byte limit", len(raw), MaxRequestSize)
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		return req, fmt.Errorf("bad request: %v", err)
	}
	if err := checkRequest(&req); err != nil {
		return req, err
	}
	return req, nil
}

// checkRequest validates the decoded fields against the wire bounds.
func checkRequest(req *Request) error {
	for _, f := range []struct{ name, v string }{
		{"op", req.Op}, {"node", req.Node}, {"a", req.A}, {"b", req.B},
		{"client", req.Client}, {"addr", req.Addr},
	} {
		if err := checkID(f.name, f.v); err != nil {
			return err
		}
	}
	if len(req.Replicas) > MaxListEntries {
		return fmt.Errorf("replicas list has %d entries, limit %d", len(req.Replicas), MaxListEntries)
	}
	if len(req.Candidates) > MaxListEntries {
		return fmt.Errorf("candidates list has %d entries, limit %d", len(req.Candidates), MaxListEntries)
	}
	for i, r := range req.Replicas {
		if err := checkID(fmt.Sprintf("replicas[%d]", i), r); err != nil {
			return err
		}
	}
	for i, c := range req.Candidates {
		if err := checkID(fmt.Sprintf("candidates[%d]", i), c); err != nil {
			return err
		}
	}
	if req.K < 0 || req.K > MaxK {
		return fmt.Errorf("k %d outside [0, %d]", req.K, MaxK)
	}
	if req.N < 0 || req.N > MaxN {
		return fmt.Errorf("n %d outside [0, %d]", req.N, MaxN)
	}
	return nil
}

// checkID bounds one identity string: length-capped valid UTF-8 with no
// NULs (store keys end up in logs, metrics names and snapshot files).
func checkID(field, v string) error {
	if len(v) > MaxIDBytes {
		return fmt.Errorf("%s is %d bytes, limit %d", field, len(v), MaxIDBytes)
	}
	if !utf8.ValidString(v) {
		return fmt.Errorf("%s is not valid UTF-8", field)
	}
	for i := 0; i < len(v); i++ {
		if v[i] == 0 {
			return fmt.Errorf("%s contains a NUL byte", field)
		}
	}
	return nil
}
