package crpdaemon

import (
	"encoding/json"
	"fmt"
	"unicode/utf8"

	"repro/crp"
)

// Wire-field bounds. The daemon fronts an in-memory store keyed by
// client-supplied strings, so every field that sizes an allocation or a key
// is bounded before the request reaches a worker: a hostile or corrupted
// datagram must cost one structured error reply, not memory or CPU.
const (
	// MaxRequestSize bounds the raw datagram at the IPv4 UDP payload ceiling
	// (65535 - 8 UDP - 20 IP), symmetric with MaxReplySize. It used to be
	// 64 KiB — a bound no UDP datagram can reach, so the 65508..65536 band
	// was dead acceptance range; now the bound states exactly what the wire
	// can carry. The read loop reads with a buffer one byte larger so a
	// datagram exceeding the bound is detectable rather than silently
	// kernel-truncated into the decoder.
	MaxRequestSize = 65507
	// MaxIDBytes bounds every identity field (node, replica, candidate).
	// Identities are DNS names in practice, which cap at 255 octets.
	MaxIDBytes = 255
	// MaxListEntries bounds the replicas and candidates lists.
	MaxListEntries = 10000
	// MaxK bounds top-k requests; MaxN bounds the sweep width.
	MaxK = 10000
	MaxN = 1 << 20
	// MaxBatch bounds the sub-requests of one batch datagram. Each
	// sub-request is individually bounds-checked; batches don't nest.
	MaxBatch = 64
	// MaxNSBytes bounds the ns (CDN namespace) field; it mirrors
	// crp.MaxNamespaceBytes.
	MaxNSBytes = 64
)

// decodeRequest parses and bounds-checks one wire request in either codec,
// routed by the first byte (binMagic means binary; JSON starts with '{').
// It is the single decode path for both the socket loop and Handle, so the
// bounds hold on every route into a worker. The returned bin flag reports
// the request codec — replies go back the same way.
func decodeRequest(raw []byte) (Request, bool, error) {
	var req Request
	if len(raw) > MaxRequestSize {
		return req, len(raw) > 0 && raw[0] == binMagic,
			fmt.Errorf("request too large: %d bytes exceeds the %d-byte limit", len(raw), MaxRequestSize)
	}
	if len(raw) > 0 && raw[0] == binMagic {
		req, err := decodeBinaryRequest(raw)
		if err != nil {
			return req, true, err
		}
		return req, true, checkRequest(&req)
	}
	if err := json.Unmarshal(raw, &req); err != nil {
		return req, false, fmt.Errorf("bad request: %v", err)
	}
	return req, false, checkRequest(&req)
}

// checkRequest validates the decoded fields against the wire bounds. A
// batch request validates its envelope and then every sub-request; batches
// cannot nest.
func checkRequest(req *Request) error {
	if req.Op == "batch" {
		if len(req.Batch) == 0 {
			return fmt.Errorf("batch request carries no sub-requests")
		}
		if len(req.Batch) > MaxBatch {
			return fmt.Errorf("batch has %d sub-requests, limit %d", len(req.Batch), MaxBatch)
		}
		for i := range req.Batch {
			if req.Batch[i].Op == "batch" {
				return fmt.Errorf("batch[%d]: batches cannot nest", i)
			}
			if err := checkSingleRequest(&req.Batch[i]); err != nil {
				return fmt.Errorf("batch[%d]: %v", i, err)
			}
		}
		return nil
	}
	if len(req.Batch) > 0 {
		return fmt.Errorf("op %q cannot carry sub-requests", req.Op)
	}
	return checkSingleRequest(req)
}

// checkSingleRequest validates one non-batch request's fields.
func checkSingleRequest(req *Request) error {
	for _, f := range []struct{ name, v string }{
		{"op", req.Op}, {"node", req.Node}, {"a", req.A}, {"b", req.B},
		{"client", req.Client}, {"addr", req.Addr},
	} {
		if err := checkID(f.name, f.v); err != nil {
			return err
		}
	}
	if len(req.Replicas) > MaxListEntries {
		return fmt.Errorf("replicas list has %d entries, limit %d", len(req.Replicas), MaxListEntries)
	}
	if len(req.Candidates) > MaxListEntries {
		return fmt.Errorf("candidates list has %d entries, limit %d", len(req.Candidates), MaxListEntries)
	}
	for i, r := range req.Replicas {
		if err := checkID(fmt.Sprintf("replicas[%d]", i), r); err != nil {
			return err
		}
	}
	for i, c := range req.Candidates {
		if err := checkID(fmt.Sprintf("candidates[%d]", i), c); err != nil {
			return err
		}
	}
	if req.NS != "" {
		if err := crp.Namespace(req.NS).Valid(); err != nil {
			return fmt.Errorf("ns: %v", err)
		}
	}
	if req.K < 0 || req.K > MaxK {
		return fmt.Errorf("k %d outside [0, %d]", req.K, MaxK)
	}
	if req.N < 0 || req.N > MaxN {
		return fmt.Errorf("n %d outside [0, %d]", req.N, MaxN)
	}
	return nil
}

// checkID bounds one identity string: length-capped valid UTF-8 with no
// NULs (store keys end up in logs, metrics names and snapshot files).
func checkID(field, v string) error {
	if len(v) > MaxIDBytes {
		return fmt.Errorf("%s is %d bytes, limit %d", field, len(v), MaxIDBytes)
	}
	if !utf8.ValidString(v) {
		return fmt.Errorf("%s is not valid UTF-8", field)
	}
	for i := 0; i < len(v); i++ {
		if v[i] == 0 {
			return fmt.Errorf("%s contains a NUL byte", field)
		}
	}
	return nil
}
