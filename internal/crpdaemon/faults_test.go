package crpdaemon

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
)

func faultsTopo(t *testing.T) *netsim.Topology {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 10
	p.NumCandidates = 5
	p.NumReplicas = 20
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// startFaultyDaemon serves a daemon behind a fault-wrapped conn.
func startFaultyDaemon(t *testing.T, sc faults.Scenario) (*Daemon, net.PacketConn, *faults.Plane) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	plane, err := faults.New(faultsTopo(t), sc)
	if err != nil {
		pc.Close()
		t.Fatal(err)
	}
	d, err := Serve(plane.WrapPacketConn(pc, "crpd"), crp.NewService(), Config{
		Registry: obs.NewRegistry(),
		Timeout:  time.Second,
	})
	if err != nil {
		pc.Close()
		t.Fatal(err)
	}
	return d, pc, plane
}

// drain discards any replies (duplicates included) already queued on the
// client socket.
func drain(c *testClient) {
	buf := make([]byte, 64*1024)
	for {
		c.conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		if _, err := c.conn.Read(buf); err != nil {
			c.conn.SetReadDeadline(time.Time{})
			return
		}
	}
}

// TestDaemonUnderDupAndDelay drives the daemon through a conn that delays
// sends and duplicates some replies: every request must still get a
// structured answer, and malformed input must get a structured error — not
// silence — even with the fault plane interposed.
func TestDaemonUnderDupAndDelay(t *testing.T) {
	d, pc, plane := startFaultyDaemon(t, faults.Scenario{Seed: 31, Faults: []faults.Fault{
		{Kind: faults.PacketDup, Rate: 0.5, Target: "crpd"},
		{Kind: faults.PacketDelay, ExtraMs: 5, Target: "crpd"},
	}})
	defer d.Close()

	c := dialDaemon(t, pc)
	defer c.close()

	for i := 0; i < 8; i++ {
		resp := c.roundTrip(t, `{"op":"observe","node":"n1","replicas":["r1","r2"]}`)
		if !resp.OK {
			t.Fatalf("observe %d through faulty conn = %+v", i, resp)
		}
	}
	// Duplicated replies linger in the socket; drain them so the next
	// exchange reads its own reply rather than a stale copy.
	drain(c)
	resp := c.roundTrip(t, `{"op":"similarity","a":"n1","b":"n1"}`)
	if !resp.OK || resp.Similarity == nil {
		t.Fatalf("similarity through faulty conn = %+v", resp)
	}

	// Garbage must yield a structured error reply, not a hang or a drop.
	drain(c)
	resp = c.roundTrip(t, `{"op":`)
	if resp.OK || resp.Error == "" {
		t.Fatalf("malformed request reply = %+v, want structured error", resp)
	}
	if !strings.Contains(resp.Error, "decode") && !strings.Contains(resp.Error, "request") {
		t.Logf("error text: %q", resp.Error)
	}

	acts := plane.Activations()
	if acts[faults.PacketDelay] == 0 {
		t.Fatal("delay fault never fired")
	}
	if acts[faults.PacketDup] == 0 {
		t.Fatal("dup fault never fired over 10 replies")
	}
}

// TestDaemonUnderTotalLossStaysResponsive wraps the daemon's conn with a
// rate-1 receive loss: clients see timeouts (as they would against a dead
// path), and the daemon itself neither wedges nor leaks — Close returns
// promptly.
func TestDaemonUnderTotalLossStaysResponsive(t *testing.T) {
	d, pc, plane := startFaultyDaemon(t, faults.Scenario{Seed: 31, Faults: []faults.Fault{
		{Kind: faults.PacketLoss, Rate: 1, Target: "crpd"},
	}})

	c := dialDaemon(t, pc)
	defer c.close()
	if _, err := c.conn.Write([]byte(`{"op":"observe","node":"n1","replicas":["r1"]}`)); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 1024)
	if n, err := c.conn.Read(buf); err == nil {
		t.Fatalf("got reply %q through a rate-1 loss fault", buf[:n])
	}

	done := make(chan error, 1)
	go func() { done <- d.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon Close hung under total receive loss")
	}
	if plane.Activations()[faults.PacketLoss] == 0 {
		t.Fatal("loss fault never fired")
	}
}
