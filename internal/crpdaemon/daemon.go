// Package crpdaemon implements the CRP positioning daemon behind cmd/crpd:
// a JSON-over-UDP front end to a crp.Service, built for concurrent load.
//
// Requests are read by a single socket loop and dispatched to one of two
// bounded worker pools: cheap ops (observe, similarity, closest, ...) and
// heavy ops (the SMF clustering queries), so a burst of clustering requests
// cannot head-of-line-block the sub-millisecond queries. Every request
// carries a deadline from the moment it is read; requests that overstay it
// — in the queue or in a handler — get a structured timeout reply instead
// of a silent drop. Close follows the managed-goroutine pattern of
// dnsserver.Server: idempotent, stops the socket loop, and drains queued
// and in-flight handlers before returning.
//
// Every stage is instrumented through internal/obs: per-op request/error
// counts and latency histograms, an in-flight gauge, and counters for the
// failure paths (socket errors, queue rejections, timeouts, oversized
// replies). The "stats" op exports the registry snapshot to clients.
package crpdaemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/crp"
	"repro/internal/drift"
	"repro/internal/obs"
	"repro/internal/peering"
)

// Request is the union of all operation payloads, one JSON object per UDP
// datagram.
type Request struct {
	Op       string   `json:"op"`
	Node     string   `json:"node,omitempty"`
	Replicas []string `json:"replicas,omitempty"`
	A        string   `json:"a,omitempty"`
	B        string   `json:"b,omitempty"`
	Client   string   `json:"client,omitempty"`
	// Candidates must NOT be omitempty: an explicit empty list ("no
	// candidates") and an absent field ("rank against every known node")
	// are different closest queries, and omitempty would erase an empty
	// non-nil list on the marshal side, silently turning it into the
	// all-nodes query. nil still marshals as null, which decodes back to
	// nil, so both states survive the wire.
	Candidates []string `json:"candidates"`
	K          int      `json:"k,omitempty"`
	N          int      `json:"n,omitempty"`
	// Threshold is a pointer so that an explicit 0 — a valid SMF boundary
	// threshold — is distinguishable from an absent field (which means
	// crp.DefaultThreshold).
	Threshold *float64 `json:"threshold,omitempty"`
	// Addr is the gossip address of the peer to join (peer-join).
	Addr string `json:"addr,omitempty"`
	// NS scopes a ratio_map, similarity or closest query to one CDN
	// namespace: only that CDN's redirections contribute to the answer.
	// Empty (the default) keeps the unscoped semantics — the fused kernel
	// when the service has fusion enabled, the plain cosine otherwise.
	NS string `json:"ns,omitempty"`
	// Batch carries the sub-requests of op "batch": one datagram, N
	// queries, one reply with N results in order. Sub-requests are
	// individually bounded and cannot themselves be batches.
	Batch []Request `json:"batch,omitempty"`
}

// Response is the generic reply envelope.
type Response struct {
	OK         bool                  `json:"ok"`
	Error      string                `json:"error,omitempty"`
	TimedOut   bool                  `json:"timedOut,omitempty"`
	Similarity *float64              `json:"similarity,omitempty"`
	RatioMap   map[string]float64    `json:"ratioMap,omitempty"`
	Nodes      []string              `json:"nodes,omitempty"`
	Ranked     []RankedNode          `json:"ranked,omitempty"`
	Stats      *obs.Snapshot         `json:"stats,omitempty"`
	Peering    *peering.StatusReport `json:"peering,omitempty"`
	Drift      *drift.Status         `json:"drift,omitempty"`
	// Batch carries the sub-responses of a batch request, in request order.
	Batch []Response `json:"batch,omitempty"`
}

// RankedNode is one entry of a "closest" reply.
type RankedNode struct {
	Node       string  `json:"node"`
	Similarity float64 `json:"similarity"`
}

// MaxReplySize is the largest reply the daemon will put on the wire: the
// IPv4 UDP payload limit. Larger replies (e.g., a ratio map over tens of
// thousands of replicas) would be rejected by the kernel after the fact, so
// the daemon detects them and answers with a structured error instead.
const MaxReplySize = 65507

// Config tunes the daemon. The zero value picks production defaults.
type Config struct {
	// CheapWorkers is the pool size for cheap ops (default max(4, NumCPU)).
	CheapWorkers int
	// HeavyWorkers is the pool size for clustering ops
	// (default max(1, NumCPU/2)).
	HeavyWorkers int
	// QueueDepth bounds each pool's backlog (default 256). A full queue
	// rejects with a structured "server busy" error rather than stalling
	// the socket loop.
	QueueDepth int
	// Timeout is the per-request deadline, measured from the moment the
	// datagram is read (default 5s). Requests that exceed it — waiting or
	// executing — receive {"ok":false,"timedOut":true,...}.
	Timeout time.Duration
	// Registry receives the daemon's instruments (default obs.Default()).
	Registry *obs.Registry
	// Now is the daemon's clock (default time.Now; injectable for tests).
	Now func() time.Time
	// Hook, when non-nil, runs at the start of every handler with the
	// request op. Test-only seam for holding handlers in flight.
	Hook func(op string)
	// Peering, when non-nil, is the daemon's gossip engine; it enables the
	// peer-join and peer-status ops. The caller owns its lifecycle (Start,
	// Close, sockets) — the daemon only exposes it over the query protocol.
	Peering *peering.Peering
	// Drift, when non-nil, is the daemon's CDN-change detector; it enables
	// the drift-status op. As with Peering, the caller owns its lifecycle
	// (Start, Close) — the daemon only serves its report.
	Drift *drift.Monitor
}

func (c *Config) fillDefaults() {
	if c.CheapWorkers <= 0 {
		c.CheapWorkers = max(4, runtime.NumCPU())
	}
	if c.HeavyWorkers <= 0 {
		c.HeavyWorkers = max(1, runtime.NumCPU()/2)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// task is one admitted request moving through a worker pool.
type task struct {
	req      Request
	from     net.Addr
	deadline time.Time
	// bin records the request's codec; the reply goes back the same way.
	bin bool
}

// Daemon serves a crp.Service over a PacketConn. Create it with Serve and
// stop it with Close.
type Daemon struct {
	svc *crp.Service
	cfg Config
	reg *obs.Registry
	now func() time.Time
	pc  net.PacketConn

	cheapQ chan task
	heavyQ chan task

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error

	// writeMu serializes WriteTo calls. PacketConn writes are documented as
	// concurrency-safe, but serializing keeps reply interleaving fair under
	// heavy fan-out and gives the write-error counter a stable meaning.
	writeMu sync.Mutex

	inflight     *obs.Gauge
	readErrs     *obs.Counter
	writeErrs    *obs.Counter
	badReqs      *obs.Counter
	oversizeReqs *obs.Counter
	rejected     *obs.Counter
	timeouts     *obs.Counter
	oversized    *obs.Counter
	reqCount     map[string]*obs.Counter
	errCount     map[string]*obs.Counter
	latency      map[string]*obs.Histogram
}

// ops is the full operation set; heavy ops run a full SMF clustering pass
// over every known node and get their own pool.
var ops = map[string]bool{ // op -> heavy
	"observe":           false,
	"ratio_map":         false,
	"similarity":        false,
	"closest":           false,
	"nodes":             false,
	"stats":             false,
	"same_cluster":      true,
	"distinct_clusters": true,
	"peer-join":         false,
	"peer-status":       false,
	"drift-status":      false,
	// A batch runs as one unit; batchHeavy reclassifies it per datagram.
	"batch": false,
}

// batchHeavy reports whether any sub-request routes to the heavy pool: one
// clustering sub-query makes the whole datagram heavy, since the batch runs
// as one unit and must not head-of-line-block the cheap pool.
func batchHeavy(req *Request) bool {
	for i := range req.Batch {
		if ops[req.Batch[i].Op] {
			return true
		}
	}
	return false
}

// New builds a socketless daemon: Handle serves requests synchronously with
// full instrumentation, but no worker pools or read loop exist and no socket
// is owned. The deterministic scenario harness embeds daemons this way so a
// single-threaded driver sees a fixed execution order. Close is a no-op for
// a socketless daemon.
func New(svc *crp.Service, cfg Config) (*Daemon, error) {
	if svc == nil {
		return nil, errors.New("crpdaemon: nil Service")
	}
	cfg.fillDefaults()
	d := &Daemon{
		svc:    svc,
		cfg:    cfg,
		reg:    cfg.Registry,
		now:    cfg.Now,
		closed: make(chan struct{}),

		inflight:     cfg.Registry.Gauge("crpd.inflight"),
		readErrs:     cfg.Registry.Counter("crpd.read_errors"),
		writeErrs:    cfg.Registry.Counter("crpd.write_errors"),
		badReqs:      cfg.Registry.Counter("crpd.bad_requests"),
		oversizeReqs: cfg.Registry.Counter("crpd.oversized_requests"),
		rejected:     cfg.Registry.Counter("crpd.rejected"),
		timeouts:     cfg.Registry.Counter("crpd.timeouts"),
		oversized:    cfg.Registry.Counter("crpd.oversized_replies"),
		reqCount:     make(map[string]*obs.Counter, len(ops)),
		errCount:     make(map[string]*obs.Counter, len(ops)),
		latency:      make(map[string]*obs.Histogram, len(ops)),
	}
	for op := range ops {
		d.reqCount[op] = cfg.Registry.Counter("crpd.requests." + op)
		d.errCount[op] = cfg.Registry.Counter("crpd.errors." + op)
		d.latency[op] = cfg.Registry.Histogram("crpd.latency."+op, nil)
	}
	return d, nil
}

// Serve starts answering datagrams arriving on pc. The daemon owns pc after
// this call and closes it in Close.
func Serve(pc net.PacketConn, svc *crp.Service, cfg Config) (*Daemon, error) {
	if pc == nil {
		return nil, errors.New("crpdaemon: nil PacketConn")
	}
	d, err := New(svc, cfg)
	if err != nil {
		return nil, err
	}
	d.pc = pc
	d.cheapQ = make(chan task, d.cfg.QueueDepth)
	d.heavyQ = make(chan task, d.cfg.QueueDepth)

	for i := 0; i < d.cfg.CheapWorkers; i++ {
		d.wg.Add(1)
		go d.worker(d.cheapQ)
	}
	for i := 0; i < d.cfg.HeavyWorkers; i++ {
		d.wg.Add(1)
		go d.worker(d.heavyQ)
	}
	d.wg.Add(1)
	go d.readLoop()
	return d, nil
}

// Addr returns the daemon's listening address (nil for a socketless daemon).
func (d *Daemon) Addr() net.Addr {
	if d.pc == nil {
		return nil
	}
	return d.pc.LocalAddr()
}

// Close stops the daemon: no new requests are admitted, queued requests are
// drained through the pools, and Close returns once every in-flight handler
// has finished. It is safe to call concurrently and repeatedly.
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() {
		close(d.closed)
		if d.pc != nil {
			d.closeErr = d.pc.Close()
		}
	})
	d.wg.Wait()
	return d.closeErr
}

// readLoop is the single socket reader: it parses, classifies and admits
// requests. A failed read or an unparseable datagram never terminates the
// loop — only closing the daemon does.
func (d *Daemon) readLoop() {
	defer d.wg.Done()
	// Workers exit when their queue is closed and drained; only readLoop
	// sends on the queues, so it closes them on the way out.
	defer close(d.cheapQ)
	defer close(d.heavyQ)

	// One byte over the request bound: a datagram that fills a
	// MaxRequestSize buffer exactly would be indistinguishable from a
	// kernel-truncated larger one, so the extra byte makes oversize
	// detectable and the loop rejects it without decoding truncated bytes.
	buf := make([]byte, MaxRequestSize+1)
	for {
		n, from, err := d.pc.ReadFrom(buf)
		if err != nil {
			select {
			case <-d.closed:
				return
			default:
			}
			// A transient socket error (ICMP-induced, buffer pressure, a
			// spurious deadline) must not take the daemon down: count it
			// and keep serving. Only a vanished socket ends the loop.
			if errors.Is(err, net.ErrClosed) {
				return
			}
			d.readErrs.Inc()
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			// Back off briefly so a persistently failing socket cannot
			// spin the loop hot.
			time.Sleep(time.Millisecond)
			continue
		}
		if n > MaxRequestSize {
			d.oversizeReqs.Inc()
			bin := buf[0] == binMagic
			d.reply(from, Response{Error: fmt.Sprintf(
				"request too large: exceeds the %d-byte limit", MaxRequestSize)}, bin)
			continue
		}

		req, bin, err := decodeRequest(buf[:n])
		if err != nil {
			d.badReqs.Inc()
			d.reply(from, Response{Error: err.Error()}, bin)
			continue
		}
		heavy, known := ops[req.Op]
		if !known {
			d.badReqs.Inc()
			d.reply(from, Response{Error: fmt.Sprintf("unknown op %q", req.Op)}, bin)
			continue
		}
		if req.Op == "batch" {
			heavy = batchHeavy(&req)
		}

		q := d.cheapQ
		if heavy {
			q = d.heavyQ
		}
		t := task{req: req, from: from, deadline: d.now().Add(d.cfg.Timeout), bin: bin}
		select {
		case q <- t:
		default:
			d.rejected.Inc()
			d.errCount[req.Op].Inc()
			d.reply(from, Response{Error: fmt.Sprintf("server busy: %s queue full", req.Op)}, bin)
		}
	}
}

func (d *Daemon) worker(q chan task) {
	defer d.wg.Done()
	for t := range q {
		d.process(t)
	}
}

func (d *Daemon) process(t task) {
	op := t.req.Op
	d.inflight.Inc()
	defer d.inflight.Dec()
	d.reqCount[op].Inc()

	if d.cfg.Hook != nil {
		d.cfg.Hook(op)
	}

	start := d.now()
	if !start.Before(t.deadline) {
		// The request aged out waiting in the queue; don't burn a worker
		// computing an answer the client has stopped waiting for.
		d.timeouts.Inc()
		d.errCount[op].Inc()
		d.reply(t.from, Response{
			Error:    fmt.Sprintf("deadline exceeded: %s queued longer than %v", op, d.cfg.Timeout),
			TimedOut: true,
		}, t.bin)
		return
	}

	resp := d.dispatch(t.req)
	elapsed := d.now().Sub(start)
	d.latency[op].ObserveDuration(elapsed)
	if !resp.OK {
		d.errCount[op].Inc()
	}
	if end := start.Add(elapsed); end.After(t.deadline) {
		// The handler finished past the deadline: reply with a structured
		// timeout so the client can tell "slow server" from packet loss.
		d.timeouts.Inc()
		if resp.OK {
			d.errCount[op].Inc()
		}
		resp = Response{
			Error:    fmt.Sprintf("deadline exceeded: %s took %v (limit %v)", op, elapsed.Round(time.Microsecond), d.cfg.Timeout),
			TimedOut: true,
		}
	}
	d.reply(t.from, resp, t.bin)
}

// reply encodes one response in the request's codec — bounded by
// encodeBounded — and sends it, counting (not propagating) write failures:
// a failed reply to one client must never take down the service.
func (d *Daemon) reply(to net.Addr, resp Response, bin bool) {
	wire := d.encodeBounded(resp, bin)
	d.writeMu.Lock()
	_, err := d.pc.WriteTo(wire, to)
	d.writeMu.Unlock()
	if err != nil {
		select {
		case <-d.closed:
			// Shutdown-path write failures are expected, not signal.
		default:
			d.writeErrs.Inc()
		}
	}
}

// encodeBounded encodes resp in the chosen codec and enforces the reply
// ceiling. A too-large batch reply degrades deterministically: the largest
// encoded sub-response (lowest index on ties) is replaced with a structured
// error stub until the envelope fits, so the remaining sub-results still
// reach the client. A too-large single reply becomes the structured
// oversize error, as before.
func (d *Daemon) encodeBounded(resp Response, bin bool) []byte {
	wire := encodeResponse(&resp, bin)
	if len(wire) <= MaxReplySize {
		return wire
	}
	d.oversized.Inc()
	if len(resp.Batch) > 0 {
		replaced := make([]bool, len(resp.Batch))
		for {
			largest, size := -1, 0
			for i := range resp.Batch {
				if replaced[i] {
					continue
				}
				if n := len(encodeResponse(&resp.Batch[i], bin)); n > size {
					largest, size = i, n
				}
			}
			if largest < 0 {
				break
			}
			resp.Batch[largest] = Response{Error: fmt.Sprintf(
				"response too large: sub-response was %d bytes; narrow the query", size)}
			replaced[largest] = true
			if wire = encodeResponse(&resp, bin); len(wire) <= MaxReplySize {
				return wire
			}
		}
	}
	return encodeResponse(&Response{
		Error: fmt.Sprintf("response too large: %d bytes exceeds the %d-byte UDP limit; narrow the query", len(wire), MaxReplySize),
	}, bin)
}

// Handle processes one raw request and returns the encoded reply in the
// request's codec, applying the same oversize policy as the wire path. It
// is the synchronous core used by unit tests and by callers embedding the
// daemon in-process.
func (d *Daemon) Handle(raw []byte) []byte {
	req, bin, err := decodeRequest(raw)
	if err != nil {
		d.badReqs.Inc()
		return d.encodeBounded(Response{Error: err.Error()}, bin)
	}
	if _, known := ops[req.Op]; !known {
		d.badReqs.Inc()
		return d.encodeBounded(Response{Error: fmt.Sprintf("unknown op %q", req.Op)}, bin)
	}
	return d.encodeBounded(d.dispatch(req), bin)
}

func (d *Daemon) dispatch(req Request) Response {
	fail := func(err error) Response { return Response{Error: err.Error()} }
	cfg := crp.ClusterConfig{Threshold: crp.DefaultThreshold, SecondPass: true}
	if req.Threshold != nil {
		// Presence-detected: an explicit 0 is the valid boundary threshold,
		// not a request for the default.
		cfg.Threshold = *req.Threshold
	}

	if req.NS != "" {
		switch req.Op {
		case "ratio_map", "similarity", "closest":
		default:
			return Response{Error: fmt.Sprintf("op %q does not support ns scoping", req.Op)}
		}
	}

	switch req.Op {
	case "batch":
		// One datagram, N queries, N results in request order. The envelope
		// is OK; each sub-response carries its own verdict.
		out := make([]Response, len(req.Batch))
		for i := range req.Batch {
			out[i] = d.dispatch(req.Batch[i])
		}
		return Response{OK: true, Batch: out}

	case "observe":
		replicas := make([]crp.ReplicaID, len(req.Replicas))
		for i, r := range req.Replicas {
			replicas[i] = crp.ReplicaID(r)
		}
		if err := d.svc.Observe(crp.NodeID(req.Node), d.now(), replicas...); err != nil {
			return fail(err)
		}
		return Response{OK: true}

	case "ratio_map":
		var m crp.RatioMap
		var err error
		if req.NS != "" {
			m, err = d.svc.RatioMapIn(crp.Namespace(req.NS), crp.NodeID(req.Node))
		} else {
			m, err = d.svc.RatioMap(crp.NodeID(req.Node))
		}
		if err != nil {
			return fail(err)
		}
		out := make(map[string]float64, len(m))
		for r, f := range m {
			out[string(r)] = f
		}
		return Response{OK: true, RatioMap: out}

	case "similarity":
		var sim float64
		var err error
		if req.NS != "" {
			sim, err = d.svc.SimilarityIn(crp.Namespace(req.NS), crp.NodeID(req.A), crp.NodeID(req.B))
		} else {
			sim, err = d.svc.Similarity(crp.NodeID(req.A), crp.NodeID(req.B))
		}
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Similarity: &sim}

	case "closest":
		k := req.K
		if k <= 0 {
			k = 1
		}
		// Preserve the nil-vs-empty distinction across the wire: an absent
		// candidates field means "rank against every known node" (TopK's nil
		// semantics), while an explicit empty list means "no candidates".
		var cands []crp.NodeID
		if req.Candidates != nil {
			cands = make([]crp.NodeID, len(req.Candidates))
			for i, c := range req.Candidates {
				cands[i] = crp.NodeID(c)
			}
		}
		var ranked []crp.Scored
		var err error
		if req.NS != "" {
			ranked, err = d.svc.TopKIn(crp.Namespace(req.NS), crp.NodeID(req.Client), cands, k)
		} else {
			ranked, err = d.svc.TopK(crp.NodeID(req.Client), cands, k)
		}
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Ranked: toRanked(ranked)}

	case "same_cluster":
		peers, err := d.svc.SameCluster(crp.NodeID(req.Node), cfg)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Nodes: toStrings(peers)}

	case "distinct_clusters":
		n := req.N
		if n <= 0 {
			n = 1
		}
		nodes, err := d.svc.DistinctClusters(n, cfg)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Nodes: toStrings(nodes)}

	case "nodes":
		return Response{OK: true, Nodes: toStrings(d.svc.Nodes())}

	case "stats":
		snap := d.reg.Snapshot()
		// The per-shard node gauges scale with the store width (up to 1024
		// shards); at the wide end the raw family alone overflows the UDP
		// reply budget, so the exported copy carries a six-field summary
		// instead. The in-process registry keeps the full family.
		snap.SummarizeGaugeFamily("crp.service.shard.", ".nodes", "crp.service.shard_nodes")
		// Same treatment for the per-namespace families a fused multi-CDN
		// deployment grows: however many namespaces the service has seen,
		// the exported reply carries one six-field summary per family.
		snap.SummarizeGaugeFamily("crp.service.ns.", ".observes", "crp.service.ns_observes")
		snap.SummarizeGaugeFamily("cdn.ns.", ".replicas", "cdn.ns_replicas")
		return Response{OK: true, Stats: &snap}

	case "peer-join":
		if d.cfg.Peering == nil {
			return Response{Error: "peering disabled: daemon started without a gossip engine"}
		}
		if req.Addr == "" {
			return Response{Error: "peer-join requires addr"}
		}
		if err := d.cfg.Peering.Join(req.Addr); err != nil {
			return fail(err)
		}
		return Response{OK: true}

	case "peer-status":
		if d.cfg.Peering == nil {
			return Response{Error: "peering disabled: daemon started without a gossip engine"}
		}
		st := d.cfg.Peering.Status()
		return Response{OK: true, Peering: &st}

	case "drift-status":
		if d.cfg.Drift == nil {
			return Response{Error: "drift disabled: daemon started without a drift monitor"}
		}
		st := d.cfg.Drift.Status()
		return Response{OK: true, Drift: &st}

	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func toStrings(ids []crp.NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = string(id)
	}
	return out
}

func toRanked(scored []crp.Scored) []RankedNode {
	out := make([]RankedNode, len(scored))
	for i, s := range scored {
		out[i] = RankedNode{Node: string(s.Node), Similarity: s.Similarity}
	}
	return out
}

func marshal(resp Response) []byte {
	b, err := json.Marshal(resp)
	if err != nil {
		// The Response type contains nothing unmarshalable; this is
		// unreachable, but fail closed with a static error.
		return []byte(`{"ok":false,"error":"internal marshal failure"}`)
	}
	return b
}
