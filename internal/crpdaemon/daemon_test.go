package crpdaemon

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/obs"
)

// testDaemon returns an unstarted daemon suitable for driving Handle and
// dispatch directly, with a deterministic clock and a private registry.
func testDaemon(opts ...crp.TrackerOption) *Daemon {
	if len(opts) == 0 {
		opts = []crp.TrackerOption{crp.WithWindow(10)}
	}
	reg := obs.NewRegistry()
	d := &Daemon{
		svc:       crp.NewService(opts...),
		reg:       reg,
		badReqs:   reg.Counter("crpd.bad_requests"),
		oversized: reg.Counter("crpd.oversized_replies"),
	}
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	n := 0
	d.now = func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Minute)
	}
	return d
}

func do(t *testing.T, d *Daemon, req string) Response {
	t.Helper()
	var resp Response
	if err := json.Unmarshal(d.Handle([]byte(req)), &resp); err != nil {
		t.Fatalf("bad JSON reply: %v", err)
	}
	return resp
}

func seed(t *testing.T, d *Daemon) {
	t.Helper()
	for i := 0; i < 5; i++ {
		for node, reps := range map[string]string{
			"west-1": `["rw1","rw2"]`,
			"west-2": `["rw1","rw2"]`,
			"east-1": `["re1","re2"]`,
			"east-2": `["re1"]`,
		} {
			resp := do(t, d, `{"op":"observe","node":"`+node+`","replicas":`+reps+`}`)
			if !resp.OK {
				t.Fatalf("observe failed: %+v", resp)
			}
		}
	}
}

func TestDaemonObserveAndRatioMap(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	resp := do(t, d, `{"op":"ratio_map","node":"west-1"}`)
	if !resp.OK || len(resp.RatioMap) != 2 {
		t.Fatalf("ratio_map = %+v", resp)
	}
	sum := 0.0
	for _, f := range resp.RatioMap {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("ratios sum to %v", sum)
	}
}

func TestDaemonSimilarity(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	same := do(t, d, `{"op":"similarity","a":"west-1","b":"west-2"}`)
	cross := do(t, d, `{"op":"similarity","a":"west-1","b":"east-1"}`)
	if !same.OK || !cross.OK || same.Similarity == nil || cross.Similarity == nil {
		t.Fatalf("similarity replies: %+v / %+v", same, cross)
	}
	if *same.Similarity <= *cross.Similarity {
		t.Errorf("same-coast similarity %v not above cross-coast %v",
			*same.Similarity, *cross.Similarity)
	}
	if resp := do(t, d, `{"op":"similarity","a":"west-1","b":"ghost"}`); resp.OK {
		t.Error("similarity with unknown node should fail")
	}
}

func TestDaemonClosest(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	resp := do(t, d, `{"op":"closest","client":"west-1","candidates":["west-2","east-1"],"k":2}`)
	if !resp.OK || len(resp.Ranked) != 2 {
		t.Fatalf("closest = %+v", resp)
	}
	if resp.Ranked[0].Node != "west-2" {
		t.Errorf("closest to west-1 = %q, want west-2", resp.Ranked[0].Node)
	}
}

func TestDaemonClosestCandidatesNilVsEmpty(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	// An absent candidates field must rank against every known node
	// (regression: it used to become an empty non-nil slice, i.e. "no
	// candidates", and every wire query silently got zero results).
	all := do(t, d, `{"op":"closest","client":"west-1","k":3}`)
	if !all.OK || len(all.Ranked) != 3 {
		t.Fatalf("closest without candidates = %+v, want 3 ranked nodes", all)
	}
	// An explicit empty list still means "no candidates".
	none := do(t, d, `{"op":"closest","client":"west-1","candidates":[],"k":3}`)
	if !none.OK || len(none.Ranked) != 0 {
		t.Fatalf("closest with empty candidates = %+v, want no results", none)
	}
}

func TestDaemonClusterQueries(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	same := do(t, d, `{"op":"same_cluster","node":"west-1"}`)
	if !same.OK {
		t.Fatalf("same_cluster = %+v", same)
	}
	found := false
	for _, n := range same.Nodes {
		if n == "west-2" {
			found = true
		}
		if n == "east-1" || n == "east-2" {
			t.Errorf("east node %q in west-1's cluster", n)
		}
	}
	if !found {
		t.Error("west-2 missing from west-1's cluster")
	}

	distinct := do(t, d, `{"op":"distinct_clusters","n":2}`)
	if !distinct.OK || len(distinct.Nodes) != 2 {
		t.Fatalf("distinct_clusters = %+v", distinct)
	}
	if distinct.Nodes[0][0] == distinct.Nodes[1][0] {
		t.Errorf("distinct cluster picks %v from the same coast", distinct.Nodes)
	}
}

func TestDaemonNodesAndErrors(t *testing.T) {
	d := testDaemon()
	seed(t, d)
	nodes := do(t, d, `{"op":"nodes"}`)
	if !nodes.OK || len(nodes.Nodes) != 4 {
		t.Fatalf("nodes = %+v", nodes)
	}
	if resp := do(t, d, `{"op":"warp"}`); resp.OK {
		t.Error("unknown op should fail")
	}
	if resp := do(t, d, `not json`); resp.OK {
		t.Error("bad JSON should fail")
	}
	if resp := do(t, d, `{"op":"observe","node":""}`); resp.OK {
		t.Error("observe with empty node should fail")
	}
}

// TestDaemonThresholdZeroIsHonored is the regression test for the old
// dispatch treating threshold 0 as "unset" and substituting the default:
// two node groups with cross-similarity strictly between 0 and 0.1 must
// cluster together at an explicit threshold 0 and apart at the default.
func TestDaemonThresholdZeroIsHonored(t *testing.T) {
	d := testDaemon(crp.WithWindow(0))
	observe := func(node string, reps []string) {
		t.Helper()
		raw, _ := json.Marshal(Request{Op: "observe", Node: node, Replicas: reps})
		var resp Response
		if err := json.Unmarshal(d.Handle(raw), &resp); err != nil || !resp.OK {
			t.Fatalf("observe %s: %+v err %v", node, resp, err)
		}
	}
	// c and x share only the replica "shared", which dominates both maps
	// but carries a sliver of each node's mass (the rest is spread over
	// unique replicas): cosine(x, c) ≈ 0.06 ∈ (0, 0.1). "shared" is
	// strongest in c, so c is the SMF center and x the assignable node.
	spread := func(node, shared string, sharedCount, uniques int) []string {
		reps := make([]string, 0, sharedCount+uniques)
		for i := 0; i < sharedCount; i++ {
			reps = append(reps, shared)
		}
		for i := 0; i < uniques; i++ {
			reps = append(reps, fmt.Sprintf("%s-r%03d", node, i))
		}
		return reps
	}
	observe("c", spread("c", "shared", 3, 97))
	observe("x", spread("x", "shared", 2, 98))

	sim := do(t, d, `{"op":"similarity","a":"x","b":"c"}`)
	if !sim.OK || sim.Similarity == nil || *sim.Similarity <= 0 || *sim.Similarity >= 0.1 {
		t.Fatalf("test wants cross-similarity in (0, 0.1), got %+v", sim)
	}

	atDefault := do(t, d, `{"op":"same_cluster","node":"x"}`)
	if !atDefault.OK || len(atDefault.Nodes) != 0 {
		t.Fatalf("default threshold should separate x and c: %+v", atDefault)
	}
	atZero := do(t, d, `{"op":"same_cluster","node":"x","threshold":0}`)
	if !atZero.OK || len(atZero.Nodes) != 1 || atZero.Nodes[0] != "c" {
		t.Fatalf("explicit threshold 0 must be honored, got %+v", atZero)
	}
}

// TestDaemonOversizedReplyIsStructuredError is the regression test for
// replies above the UDP payload limit being silently undeliverable: a ratio
// map wide enough to exceed 64 KiB of JSON must yield a structured error.
func TestDaemonOversizedReplyIsStructuredError(t *testing.T) {
	d := testDaemon(crp.WithWindow(0)) // unbounded window keeps every replica
	reps := make([]string, 4000)
	for i := range reps {
		reps[i] = fmt.Sprintf("replica-%05d.cdn.example.net", i)
	}
	// Seed in batches that respect MaxRequestSize: the oversize under test
	// is the reply, not the request.
	var resp Response
	for start := 0; start < len(reps); start += 1000 {
		end := min(start+1000, len(reps))
		raw, _ := json.Marshal(Request{Op: "observe", Node: "wide", Replicas: reps[start:end]})
		if err := json.Unmarshal(d.Handle(raw), &resp); err != nil || !resp.OK {
			t.Fatalf("observe [%d:%d]: %+v err %v", start, end, resp, err)
		}
	}

	reply := d.Handle([]byte(`{"op":"ratio_map","node":"wide"}`))
	if len(reply) > MaxReplySize {
		t.Fatalf("oversized reply escaped: %d bytes", len(reply))
	}
	if err := json.Unmarshal(reply, &resp); err != nil {
		t.Fatalf("reply not JSON: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "response too large") {
		t.Fatalf("want structured oversize error, got %+v", resp)
	}
	if got := d.oversized.Value(); got != 1 {
		t.Errorf("oversized counter = %d, want 1", got)
	}
}

func TestDaemonStatsOp(t *testing.T) {
	reg := obs.NewRegistry()
	d, pc := startDaemon(t, Config{Registry: reg}, crp.WithWindow(10))
	defer d.Close()

	c := dialDaemon(t, pc)
	defer c.close()
	if resp := c.roundTrip(t, `{"op":"observe","node":"n1","replicas":["r1"]}`); !resp.OK {
		t.Fatalf("observe: %+v", resp)
	}
	resp := c.roundTrip(t, `{"op":"stats"}`)
	if !resp.OK || resp.Stats == nil {
		t.Fatalf("stats = %+v", resp)
	}
	if got := resp.Stats.Counters["crpd.requests.observe"]; got != 1 {
		t.Errorf("observe counter = %d, want 1", got)
	}
	if h, ok := resp.Stats.Histograms["crpd.latency.observe"]; !ok || h.Count != 1 {
		t.Errorf("observe latency histogram missing or empty: %+v ok=%v", h, ok)
	}
	if g, ok := resp.Stats.Gauges["crpd.inflight"]; !ok || g < 0 {
		t.Errorf("inflight gauge = %d ok=%v", g, ok)
	}
}

// TestDaemonStatsExportsServiceMetrics pins the cross-layer contract: a
// daemon on the default registry (the production configuration) exports the
// crp.Service's own instruments — query-latency histograms, the shard-width
// gauge and the per-shard node gauges — through the stats op, with no extra
// wiring. (A custom Registry only carries the daemon's instruments; the
// service's live in the process-wide default registry.) The assertions are
// lower bounds because that registry is shared with every other service in
// the process, including the ones other tests here create.
func TestDaemonStatsExportsServiceMetrics(t *testing.T) {
	d, pc := startDaemon(t, Config{Registry: obs.Default()}, crp.WithWindow(10))
	defer d.Close()

	c := dialDaemon(t, pc)
	defer c.close()
	for _, req := range []string{
		`{"op":"observe","node":"n1","replicas":["r1"]}`,
		`{"op":"observe","node":"n2","replicas":["r1","r2"]}`,
		`{"op":"closest","client":"n1","k":3}`,
	} {
		if resp := c.roundTrip(t, req); !resp.OK {
			t.Fatalf("%s: %+v", req, resp)
		}
	}
	resp := c.roundTrip(t, `{"op":"stats"}`)
	if !resp.OK || resp.Stats == nil {
		t.Fatalf("stats = %+v", resp)
	}
	if h, ok := resp.Stats.Histograms["crp.service.latency.query"]; !ok || h.Count == 0 {
		t.Errorf("service query-latency histogram missing or empty: %+v ok=%v", h, ok)
	}
	if g := resp.Stats.Gauges["crp.service.shards"]; g <= 0 {
		t.Errorf("shard-width gauge = %d, want > 0", g)
	}
	// The raw per-shard family is summarized for export (it can overflow the
	// UDP reply at 1024 shards); the wire snapshot must carry the aggregate
	// fields and none of the per-shard names.
	if sum := resp.Stats.Gauges["crp.service.shard_nodes.sum"]; sum < 2 {
		t.Errorf("shard-node summary sum = %d, want >= 2 (n1, n2 observed)", sum)
	}
	if cnt := resp.Stats.Gauges["crp.service.shard_nodes.count"]; cnt <= 0 {
		t.Errorf("shard-node summary count = %d, want > 0", cnt)
	}
	for name := range resp.Stats.Gauges {
		if strings.HasPrefix(name, "crp.service.shard.") && strings.HasSuffix(name, ".nodes") {
			t.Errorf("per-shard gauge %s leaked into the wire snapshot", name)
		}
	}
}

// TestDaemonStatsFitsReplyAtMaxShards is the regression for the oversized
// stats reply: at the store's maximum width (1024 shards) the per-shard node
// gauges alone used to push the JSON snapshot past MaxReplySize, so the
// stats op answered "response too large". The summarized export must fit.
func TestDaemonStatsFitsReplyAtMaxShards(t *testing.T) {
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 1024}, crp.WithWindow(10))
	reg := obs.Default() // the per-shard gauges live in the default registry
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Serve(pc, svc, Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i := 0; i < 64; i++ {
		node := crp.NodeID(fmt.Sprintf("node-%03d", i))
		if err := svc.Observe(node, time.Unix(int64(i), 0), "r1", "r2"); err != nil {
			t.Fatal(err)
		}
	}
	wire := d.Handle([]byte(`{"op":"stats"}`))
	if len(wire) > MaxReplySize {
		t.Fatalf("stats reply is %d bytes, exceeds MaxReplySize %d", len(wire), MaxReplySize)
	}
	var resp Response
	if err := json.Unmarshal(wire, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Stats == nil {
		t.Fatalf("stats = %+v", resp)
	}
	if resp.Stats.Gauges["crp.service.shard_nodes.count"] <= 0 {
		t.Errorf("summary count missing: %v", resp.Stats.Gauges["crp.service.shard_nodes.count"])
	}
	if resp.Stats.Gauges["crp.service.shard_nodes.sum"] < 64 {
		t.Errorf("summary sum = %d, want >= 64", resp.Stats.Gauges["crp.service.shard_nodes.sum"])
	}
}

func TestDaemonOverUDP(t *testing.T) {
	d, pc := startDaemon(t, Config{}, crp.WithWindow(10))
	defer d.Close()

	c := dialDaemon(t, pc)
	defer c.close()
	resp := c.roundTrip(t, `{"op":"observe","node":"n1","replicas":["r1"]}`)
	if !resp.OK {
		t.Fatalf("observe over UDP = %+v", resp)
	}
}

// --- wire-test helpers ---

func startDaemon(t testing.TB, cfg Config, opts ...crp.TrackerOption) (*Daemon, net.PacketConn) {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	d, err := Serve(pc, crp.NewService(opts...), cfg)
	if err != nil {
		pc.Close()
		t.Fatal(err)
	}
	return d, pc
}

type testClient struct {
	conn net.Conn
	buf  []byte
}

func dialDaemon(t *testing.T, pc net.PacketConn) *testClient {
	t.Helper()
	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	return &testClient{conn: conn, buf: make([]byte, 64*1024)}
}

func (c *testClient) close() { c.conn.Close() }

func (c *testClient) roundTrip(t *testing.T, req string) Response {
	t.Helper()
	if _, err := c.conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	if err := c.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	n, err := c.conn.Read(c.buf)
	if err != nil {
		t.Fatalf("read reply to %s: %v", req, err)
	}
	var resp Response
	if err := json.Unmarshal(c.buf[:n], &resp); err != nil {
		t.Fatalf("bad JSON reply: %v", err)
	}
	return resp
}
