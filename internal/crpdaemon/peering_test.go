package crpdaemon

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/obs"
	"repro/internal/peering"
)

// meshDaemon is one member of a real-UDP gossip mesh: a daemon on its query
// socket plus a peering engine on its own gossip socket.
type meshDaemon struct {
	d    *Daemon
	svc  *crp.Service
	peer *peering.Peering
	qpc  net.PacketConn // query socket
	gpc  net.PacketConn // gossip socket
}

// codec selects the engine's wire codec: "" negotiates binary, "json" pins
// the JSON fallback (a non-upgraded daemon).
func startMeshDaemon(t *testing.T, id, codec string) *meshDaemon {
	t.Helper()
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 16}, crp.WithWindow(10))
	gpc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := peering.New(peering.Config{
		Self: id, Addr: gpc.LocalAddr().String(), Service: svc,
		Fanout: 2, Interval: 20 * time.Millisecond, TTL: 3,
		Registry: obs.NewRegistry(), Seed: 42, Codec: codec,
	})
	if err != nil {
		gpc.Close()
		t.Fatal(err)
	}
	p.Attach(gpc)
	if err := p.Start(); err != nil {
		gpc.Close()
		t.Fatal(err)
	}
	qpc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		p.Close()
		gpc.Close()
		t.Fatal(err)
	}
	d, err := Serve(qpc, svc, Config{Registry: obs.NewRegistry(), Peering: p})
	if err != nil {
		p.Close()
		gpc.Close()
		qpc.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Close()
		p.Close()
		gpc.Close()
	})
	return &meshDaemon{d: d, svc: svc, peer: p, qpc: qpc, gpc: gpc}
}

// TestThreeDaemonMeshConvergesOverUDP is the end-to-end mesh test: three
// daemons on real UDP sockets, meshed through the peer-join op, fed disjoint
// observation streams through the query protocol, must converge to
// byte-identical compiled snapshots; a forget issued on one daemon must
// disappear from all; peer-status must report the mesh.
func TestThreeDaemonMeshConvergesOverUDP(t *testing.T) {
	ids := []string{"mesh-a", "mesh-b", "mesh-c"}
	ds := make([]*meshDaemon, len(ids))
	for i, id := range ids {
		ds[i] = startMeshDaemon(t, id, "")
	}

	// Mesh via the daemon op: a joins b, b joins c, c joins a. Join-acks
	// make each link bidirectional; anti-entropy handles the rest.
	clients := make([]*testClient, len(ds))
	for i := range ds {
		clients[i] = dialDaemon(t, ds[i].qpc)
		defer clients[i].close()
	}
	for i := range ds {
		target := ds[(i+1)%len(ds)].gpc.LocalAddr().String()
		resp := clients[i].roundTrip(t, fmt.Sprintf(`{"op":"peer-join","addr":"%s"}`, target))
		if !resp.OK {
			t.Fatalf("peer-join from %s: %+v", ids[i], resp)
		}
	}

	// Disjoint observation streams through the query protocol.
	for i, c := range clients {
		for j := 0; j < 6; j++ {
			req := fmt.Sprintf(`{"op":"observe","node":"%s-n%d","replicas":["r%d","r%d"]}`,
				ids[i], j, j%3, (j+1)%3)
			if resp := c.roundTrip(t, req); !resp.OK {
				t.Fatalf("observe on %s: %+v", ids[i], resp)
			}
		}
	}

	waitConverged := func(wantNodes int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if meshConverged(ds, wantNodes) {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		for i, md := range ds {
			t.Logf("%s: %d nodes, digests %v", ids[i], len(md.svc.Nodes()), md.svc.ShardDigests()[:4])
		}
		t.Fatalf("mesh did not converge to %d nodes within 10s", wantNodes)
	}
	waitConverged(18)

	// Compiled snapshots must be byte-identical across the mesh.
	var snaps [][]byte
	for _, md := range ds {
		var buf bytes.Buffer
		if err := md.svc.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, buf.Bytes())
	}
	for i := 1; i < len(snaps); i++ {
		if !bytes.Equal(snaps[0], snaps[i]) {
			t.Fatalf("snapshot of %s differs from %s", ids[i], ids[0])
		}
	}

	// A forget on daemon b must disappear mesh-wide.
	if resp := clients[1].roundTrip(t, `{"op":"similarity","a":"mesh-a-n0","b":"mesh-a-n1"}`); !resp.OK {
		t.Fatalf("replicated node not queryable on mesh-b: %+v", resp)
	}
	ds[1].svc.Forget("mesh-a-n0")
	waitConverged(17)
	for i, md := range ds {
		if _, err := md.svc.RatioMap("mesh-a-n0"); err == nil {
			t.Fatalf("%s still knows the forgotten node", ids[i])
		}
	}

	// peer-status over the wire must report the mesh and live counters.
	resp := clients[0].roundTrip(t, `{"op":"peer-status"}`)
	if !resp.OK || resp.Peering == nil {
		t.Fatalf("peer-status = %+v", resp)
	}
	if resp.Peering.Self != "mesh-a" || len(resp.Peering.Peers) != 2 {
		t.Fatalf("peer-status report = %+v", resp.Peering)
	}
	if resp.Peering.Stats.Rounds == 0 || resp.Peering.Stats.DeltasApplied == 0 {
		t.Fatalf("peer-status stats flat: %+v", resp.Peering.Stats)
	}
}

// meshConverged reports whether every daemon holds exactly wantNodes nodes
// and all shard digests agree.
func meshConverged(ds []*meshDaemon, wantNodes int) bool {
	ref := ds[0].svc.ShardDigests()
	if len(ds[0].svc.Nodes()) != wantNodes {
		return false
	}
	for _, md := range ds[1:] {
		if len(md.svc.Nodes()) != wantNodes {
			return false
		}
		got := md.svc.ShardDigests()
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
	}
	return true
}

// TestMixedCodecMeshConvergesOverUDP is the rolling-upgrade regression: one
// JSON-pinned daemon (a non-upgraded release) meshed with two
// binary-negotiating daemons must still converge to byte-identical
// snapshots. The binary pair must actually upgrade their link (bin_msgs
// and bin_sent move) while the JSON daemon never sees or sends a binary
// datagram.
func TestMixedCodecMeshConvergesOverUDP(t *testing.T) {
	ids := []string{"mix-legacy", "mix-b", "mix-c"}
	codecs := []string{"json", "", ""}
	ds := make([]*meshDaemon, len(ids))
	for i, id := range ids {
		ds[i] = startMeshDaemon(t, id, codecs[i])
	}

	clients := make([]*testClient, len(ds))
	for i := range ds {
		clients[i] = dialDaemon(t, ds[i].qpc)
		defer clients[i].close()
	}
	for i := range ds {
		target := ds[(i+1)%len(ds)].gpc.LocalAddr().String()
		resp := clients[i].roundTrip(t, fmt.Sprintf(`{"op":"peer-join","addr":"%s"}`, target))
		if !resp.OK {
			t.Fatalf("peer-join from %s: %+v", ids[i], resp)
		}
	}
	for i, c := range clients {
		for j := 0; j < 6; j++ {
			req := fmt.Sprintf(`{"op":"observe","node":"%s-n%d","replicas":["r%d","r%d"]}`,
				ids[i], j, j%3, (j+1)%3)
			if resp := c.roundTrip(t, req); !resp.OK {
				t.Fatalf("observe on %s: %+v", ids[i], resp)
			}
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && !meshConverged(ds, 18) {
		time.Sleep(25 * time.Millisecond)
	}
	if !meshConverged(ds, 18) {
		for i, md := range ds {
			t.Logf("%s: %d nodes", ids[i], len(md.svc.Nodes()))
		}
		t.Fatal("mixed-codec mesh did not converge within 10s")
	}

	var snaps [][]byte
	for _, md := range ds {
		var buf bytes.Buffer
		if err := md.svc.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, buf.Bytes())
	}
	for i := 1; i < len(snaps); i++ {
		if !bytes.Equal(snaps[0], snaps[i]) {
			t.Fatalf("snapshot of %s differs from %s", ids[i], ids[0])
		}
	}

	// The binary pair upgraded; the legacy daemon stayed pure JSON.
	legacy := ds[0].peer.Stats()
	if legacy.BinMsgs != 0 || legacy.BinSent != 0 {
		t.Fatalf("JSON-pinned daemon touched binary: in=%d out=%d", legacy.BinMsgs, legacy.BinSent)
	}
	if got := ds[1].peer.Stats(); got.BinSent == 0 && ds[2].peer.Stats().BinSent == 0 {
		t.Fatalf("binary daemons never sent a binary datagram: %+v / %+v", got, ds[2].peer.Stats())
	}
	if got := ds[1].peer.Stats(); got.BadMsgs != 0 {
		t.Fatalf("mixed mesh produced decode failures on mix-b: %+v", got)
	}
}

// TestPeeringOpsDisabledWithoutEngine pins the structured error for daemons
// started without a gossip engine.
func TestPeeringOpsDisabledWithoutEngine(t *testing.T) {
	d := testDaemon()
	if resp := do(t, d, `{"op":"peer-status"}`); resp.OK || resp.Error == "" {
		t.Fatalf("peer-status without engine = %+v", resp)
	}
	if resp := do(t, d, `{"op":"peer-join","addr":"127.0.0.1:1"}`); resp.OK || resp.Error == "" {
		t.Fatalf("peer-join without engine = %+v", resp)
	}
}
