package crpdaemon

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/crp"
	"repro/internal/obs"
)

func TestDecodeRequestBounds(t *testing.T) {
	longID := strings.Repeat("x", MaxIDBytes+1)
	manyReplicas := `["` + strings.Repeat(`r","`, MaxListEntries) + `r"]`
	cases := []struct {
		name    string
		raw     string
		wantErr string
	}{
		{"valid", `{"op":"observe","node":"n1","replicas":["r1","r2"]}`, ""},
		{"valid utf8 id", `{"op":"observe","node":"nœud-1","replicas":["r1"]}`, ""},
		{"empty object", `{}`, ""}, // op dispatch rejects it downstream
		{"truncated json", `{"op":"obs`, "bad request"},
		{"truncated mid-list", `{"op":"observe","replicas":["r1",`, "bad request"},
		{"empty payload", ``, "bad request"},
		{"not an object", `[1,2,3]`, "bad request"},
		{"oversized payload", `{"op":"` + strings.Repeat("a", MaxRequestSize) + `"}`, "request too large"},
		{"oversized node id", `{"op":"observe","node":"` + longID + `"}`, "node is"},
		{"oversized replica id", `{"op":"observe","replicas":["` + longID + `"]}`, "replicas[0]"},
		{"oversized candidate id", `{"op":"closest","candidates":["` + longID + `"]}`, "candidates[0]"},
		{"too many replicas", `{"op":"observe","replicas":` + manyReplicas + `}`, "replicas list"},
		{"nul in id", `{"op":"observe","node":"a\u0000b"}`, "NUL"},
		{"negative k", `{"op":"closest","client":"c","k":-1}`, "k -1"},
		{"huge k", `{"op":"closest","client":"c","k":100000}`, "k 100000"},
		{"negative n", `{"op":"distinct_clusters","n":-5}`, "n -5"},
		{"huge n", `{"op":"distinct_clusters","n":2097153}`, "n 2097153"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := decodeRequest([]byte(tc.raw))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("decodeRequest(%q) = %v, want ok", truncate(tc.raw), err)
				}
				return
			}
			if err == nil {
				t.Fatalf("decodeRequest(%q) accepted, want error containing %q", truncate(tc.raw), tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func truncate(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}

// TestHandleRejectsHostilePayloads drives the same payloads through the
// public Handle path: every one must produce a structured JSON error reply,
// never a panic or an empty reply.
func TestHandleRejectsHostilePayloads(t *testing.T) {
	d, pc := startDaemon(t, Config{Registry: obs.NewRegistry()})
	defer d.Close()
	_ = pc

	payloads := []string{
		`{"op":"observe","node":"` + strings.Repeat("x", MaxIDBytes+1) + `","replicas":["r1"]}`,
		`{"op":"closest","client":"c","k":-7}`,
		`{"op":`,
		strings.Repeat("A", MaxRequestSize+1),
		`{"op":"observe","replicas":["` + strings.Repeat("z", 4096) + `"]}`,
		"\x00\x01\x02\x03",
	}
	for i, p := range payloads {
		wire := d.Handle([]byte(p))
		var resp Response
		if err := json.Unmarshal(wire, &resp); err != nil {
			t.Fatalf("payload %d: reply is not JSON: %v (%q)", i, err, wire)
		}
		if resp.OK || resp.Error == "" {
			t.Fatalf("payload %d accepted: %+v", i, resp)
		}
	}
}

// FuzzDecodeRequest asserts the decoder never panics and that everything it
// accepts also survives dispatch. The corpus seeds cover every op plus the
// boundary shapes the regression table pins down.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"op":"observe","node":"n1","replicas":["r1","r2"]}`,
		`{"op":"similarity","a":"n1","b":"n2"}`,
		`{"op":"ratio_map","node":"n1"}`,
		`{"op":"closest","client":"c1","candidates":["n1","n2"],"k":3}`,
		`{"op":"distinct_clusters","n":5}`,
		`{"op":"same_cluster","node":"n1","threshold":0.1}`,
		`{"op":"stats"}`,
		`{"op":"observe","replicas":[]}`,
		`{"op":"closest","k":-1}`,
		`{"op":`,
		``,
		`[]`,
		`{"op":"observe","node":"\u0000"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	d, _ := startDaemon(f, Config{Registry: obs.NewRegistry()}, crp.WithWindow(8))
	f.Cleanup(func() { d.Close() })

	f.Fuzz(func(t *testing.T, raw []byte) {
		req, bin, err := decodeRequest(raw)
		if err != nil {
			return
		}
		// Accepted requests must be within bounds...
		if len(req.Node) > MaxIDBytes || len(req.Replicas) > MaxListEntries ||
			len(req.Candidates) > MaxListEntries || req.K < 0 || req.K > MaxK ||
			req.N < 0 || req.N > MaxN || len(req.Batch) > MaxBatch {
			t.Fatalf("decoder accepted out-of-bounds request: %+v", req)
		}
		// ...and must survive the full handler without panicking, yielding
		// a decodable reply in the request's codec.
		wire := d.Handle(raw)
		resp, respBin, err := DecodeResponse(wire)
		if err != nil {
			t.Fatalf("Handle reply undecodable: %v (%q)", err, wire)
		}
		if respBin != bin {
			t.Fatalf("request codec bin=%v but reply codec bin=%v (%+v)", bin, respBin, resp)
		}
	})
}
