package crpdaemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/obs"
)

// seedWire populates the daemon's service with nodes grouped into metros so
// that clustering and similarity queries have real structure to chew on.
func seedWire(t *testing.T, d *Daemon, metros, perMetro int) []string {
	t.Helper()
	nodes := make([]string, 0, metros*perMetro)
	at := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	for m := 0; m < metros; m++ {
		reps := []crp.ReplicaID{
			crp.ReplicaID(fmt.Sprintf("r%d-a", m)),
			crp.ReplicaID(fmt.Sprintf("r%d-b", m)),
		}
		for i := 0; i < perMetro; i++ {
			node := fmt.Sprintf("m%d-n%d", m, i)
			nodes = append(nodes, node)
			for p := 0; p < 5; p++ {
				if err := d.svc.Observe(crp.NodeID(node), at.Add(time.Duration(p)*time.Minute), reps...); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return nodes
}

// TestConcurrentMixedOpsStress hammers a live daemon with cheap queries
// while clustering requests run on the heavy pool, under -race. Every reply
// must be a well-formed JSON envelope that is either OK or a structured
// error (busy/timeout) — never a dropped or garbled datagram.
func TestConcurrentMixedOpsStress(t *testing.T) {
	reg := obs.NewRegistry()
	d, pc := startDaemon(t, Config{Registry: reg}, crp.WithWindow(10))
	defer d.Close()
	nodes := seedWire(t, d, 6, 5)

	const (
		cheapClients = 6
		heavyClients = 2
		perClient    = 40
	)
	var (
		wg       sync.WaitGroup
		okCount  atomic.Int64
		errCount atomic.Int64
	)
	fail := make(chan string, cheapClients+heavyClients)

	runClient := func(id int, reqFor func(i int) string) {
		defer wg.Done()
		c := dialDaemon(t, pc)
		defer c.close()
		for i := 0; i < perClient; i++ {
			req := reqFor(i)
			if _, err := c.conn.Write([]byte(req)); err != nil {
				fail <- fmt.Sprintf("client %d write: %v", id, err)
				return
			}
			c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
			n, err := c.conn.Read(c.buf)
			if err != nil {
				fail <- fmt.Sprintf("client %d read (req %s): %v", id, req, err)
				return
			}
			var resp Response
			if err := json.Unmarshal(c.buf[:n], &resp); err != nil {
				fail <- fmt.Sprintf("client %d garbled reply: %v", id, err)
				return
			}
			if resp.OK {
				okCount.Add(1)
			} else if resp.Error == "" {
				fail <- fmt.Sprintf("client %d: not-OK reply without error: %q", id, c.buf[:n])
				return
			} else {
				errCount.Add(1)
			}
		}
	}

	for cl := 0; cl < cheapClients; cl++ {
		wg.Add(1)
		go runClient(cl, func(i int) string {
			a, b := nodes[i%len(nodes)], nodes[(i*7+3)%len(nodes)]
			switch i % 3 {
			case 0:
				return fmt.Sprintf(`{"op":"similarity","a":"%s","b":"%s"}`, a, b)
			case 1:
				return fmt.Sprintf(`{"op":"closest","client":"%s","k":3}`, a)
			default:
				return `{"op":"nodes"}`
			}
		})
	}
	for cl := 0; cl < heavyClients; cl++ {
		wg.Add(1)
		go runClient(cheapClients+cl, func(i int) string {
			if i%2 == 0 {
				return `{"op":"distinct_clusters","n":4}`
			}
			return fmt.Sprintf(`{"op":"same_cluster","node":"%s"}`, nodes[i%len(nodes)])
		})
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}

	total := okCount.Load() + errCount.Load()
	if want := int64((cheapClients + heavyClients) * perClient); total != want {
		t.Errorf("answered %d requests, want %d", total, want)
	}
	if okCount.Load() == 0 {
		t.Error("no request succeeded under load")
	}

	// The instruments must have seen the traffic.
	snap := reg.Snapshot()
	for _, op := range []string{"similarity", "closest", "nodes", "distinct_clusters", "same_cluster"} {
		if snap.Counters["crpd.requests."+op] == 0 {
			t.Errorf("requests counter for %s is zero", op)
		}
		if snap.Histograms["crpd.latency."+op].Count == 0 {
			t.Errorf("latency histogram for %s is empty", op)
		}
	}
}

// TestCloseDrainsInFlight holds a clustering handler in flight and checks
// that Close blocks until it finishes, then returns.
func TestCloseDrainsInFlight(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	cfg := Config{
		Registry:     obs.NewRegistry(),
		HeavyWorkers: 1,
		Hook: func(op string) {
			if op == "distinct_clusters" {
				started <- struct{}{}
				<-block
			}
		},
	}
	d, pc := startDaemon(t, cfg, crp.WithWindow(10))
	seedWire(t, d, 3, 3)

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"op":"distinct_clusters","n":2}`)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never started")
	}

	closed := make(chan error, 1)
	go func() { closed <- d.Close() }()
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v while a handler was still in flight", err)
	case <-time.After(100 * time.Millisecond):
		// Close is (correctly) waiting on the drain.
	}

	close(block)
	select {
	case err := <-closed:
		if err != nil {
			t.Errorf("Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the handler finished")
	}
}

// TestCloseConcurrentAndIdempotent is the regression test for the
// double-close race: many goroutines closing at once must neither panic nor
// deadlock, and later Closes return the same result.
func TestCloseConcurrentAndIdempotent(t *testing.T) {
	d, _ := startDaemon(t, Config{Registry: obs.NewRegistry()})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = d.Close()
		}()
	}
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Errorf("repeat Close = %v", err)
	}
}

// TestRequestTimeoutIsStructured pins the deadline behaviour: with an
// unmeetable deadline the client still gets a JSON reply, flagged timedOut.
func TestRequestTimeoutIsStructured(t *testing.T) {
	reg := obs.NewRegistry()
	d, pc := startDaemon(t, Config{Registry: reg, Timeout: time.Nanosecond}, crp.WithWindow(10))
	defer d.Close()

	c := dialDaemon(t, pc)
	defer c.close()
	resp := c.roundTrip(t, `{"op":"nodes"}`)
	if resp.OK || !resp.TimedOut || resp.Error == "" {
		t.Fatalf("want structured timeout reply, got %+v", resp)
	}
	if reg.Counter("crpd.timeouts").Value() == 0 {
		t.Error("timeout not counted")
	}
}

// --- transient-socket-error resilience (regression for the serve loop
// exiting on any non-timeout ReadFrom/WriteTo error) ---

type fakeRead struct {
	data []byte
	err  error
}

// fakePC is a scriptable PacketConn: reads are fed through a channel and a
// bounded number of write errors can be injected.
type fakePC struct {
	readCh    chan fakeRead
	writes    chan []byte
	failNext  atomic.Int32
	closed    chan struct{}
	closeOnce sync.Once
}

func newFakePC() *fakePC {
	return &fakePC{
		readCh: make(chan fakeRead, 16),
		writes: make(chan []byte, 16),
		closed: make(chan struct{}),
	}
}

type fakeAddr struct{}

func (fakeAddr) Network() string { return "udp" }
func (fakeAddr) String() string  { return "fake:0" }

func (f *fakePC) ReadFrom(p []byte) (int, net.Addr, error) {
	select {
	case r := <-f.readCh:
		if r.err != nil {
			return 0, nil, r.err
		}
		n := copy(p, r.data)
		return n, fakeAddr{}, nil
	case <-f.closed:
		return 0, nil, net.ErrClosed
	}
}

func (f *fakePC) WriteTo(p []byte, _ net.Addr) (int, error) {
	if f.failNext.Add(-1) >= 0 {
		return 0, errors.New("injected write failure")
	}
	buf := append([]byte(nil), p...)
	select {
	case f.writes <- buf:
	case <-f.closed:
	}
	return len(p), nil
}

func (f *fakePC) Close() error {
	f.closeOnce.Do(func() { close(f.closed) })
	return nil
}

func (f *fakePC) LocalAddr() net.Addr              { return fakeAddr{} }
func (f *fakePC) SetDeadline(time.Time) error      { return nil }
func (f *fakePC) SetReadDeadline(time.Time) error  { return nil }
func (f *fakePC) SetWriteDeadline(time.Time) error { return nil }

func TestServeSurvivesTransientSocketErrors(t *testing.T) {
	pc := newFakePC()
	reg := obs.NewRegistry()
	d, err := Serve(pc, crp.NewService(), Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// 1. A non-timeout read error must not kill the loop.
	pc.readCh <- fakeRead{err: errors.New("transient ICMP unreachable")}

	// 2. A failed reply to one client must not kill the loop either. Wait
	// until the failure has been consumed (and counted) so the injection
	// cannot hit the next request's reply instead.
	pc.failNext.Store(1)
	pc.readCh <- fakeRead{data: []byte(`{"op":"observe","node":"n1","replicas":["r1"]}`)}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("crpd.write_errors").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injected write failure never surfaced in crpd.write_errors")
		}
		time.Sleep(time.Millisecond)
	}

	// 3. The next request must still be served end to end.
	pc.readCh <- fakeRead{data: []byte(`{"op":"nodes"}`)}
	var resp Response
	select {
	case wire := <-pc.writes:
		if err := json.Unmarshal(wire, &resp); err != nil {
			t.Fatalf("garbled reply: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon stopped serving after transient errors")
	}
	if !resp.OK || len(resp.Nodes) != 1 || resp.Nodes[0] != "n1" {
		t.Fatalf("post-error reply = %+v, want nodes [n1]", resp)
	}

	if err := d.Close(); err != nil {
		t.Errorf("Close = %v", err)
	}
	if got := reg.Counter("crpd.read_errors").Value(); got != 1 {
		t.Errorf("read_errors = %d, want 1", got)
	}
	if got := reg.Counter("crpd.write_errors").Value(); got != 1 {
		t.Errorf("write_errors = %d, want 1", got)
	}
}
