package crpdaemon

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/crp"
	"repro/internal/binwire"
	"repro/internal/obs"
)

// encodeRawRequest mirrors EncodeRequest's framing but skips checkRequest,
// so over-limit and malformed shapes reach the binary decoder.
func encodeRawRequest(t *testing.T, r *Request) []byte {
	t.Helper()
	var e binwire.Enc
	e.U8(binMagic)
	e.U8(binVersion)
	e.U8(kindReq)
	if err := encodeRequestBody(&e, r); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), e.Bytes()...)
}

// TestRequestNSBounds is the boundary table for the ns field, through both
// codecs: exact-limit accept, limit+1 reject, separator reject.
func TestRequestNSBounds(t *testing.T) {
	jsonReq := func(ns string) []byte {
		b, err := json.Marshal(Request{Op: "ratio_map", Node: "n1", NS: ns})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	binReq := func(ns string) []byte {
		return encodeRawRequest(t, &Request{Op: "ratio_map", Node: "n1", NS: ns})
	}
	cases := []struct {
		name string
		ns   string
		ok   bool
	}{
		{"at limit", strings.Repeat("x", MaxNSBytes), true},
		{"over limit", strings.Repeat("x", MaxNSBytes+1), false},
		{"separator", "bad!ns", false},
		{"nul", "bad\x00ns", false},
		{"plain", "cdnA", true},
	}
	for _, c := range cases {
		for codec, enc := range map[string]func(string) []byte{"json": jsonReq, "bin": binReq} {
			req, _, err := decodeRequest(enc(c.ns))
			if c.ok && err != nil {
				t.Errorf("%s/%s: rejected: %v", codec, c.name, err)
			}
			if !c.ok && err == nil {
				t.Errorf("%s/%s: ns %q accepted", codec, c.name, c.ns)
			}
			if c.ok && req.NS != c.ns {
				t.Errorf("%s/%s: ns did not survive decode: %q", codec, c.name, req.NS)
			}
		}
	}

	// All three presence bits together (threshold + candidates + ns) is the
	// widest legal flags byte; anything above must stay rejected.
	th := 0.5
	full := &Request{Op: "closest", Client: "c1", Candidates: []string{"n1"}, K: 1, Threshold: &th, NS: "cdnA"}
	raw, err := EncodeRequest(full, true)
	if err != nil {
		t.Fatal(err)
	}
	if raw[4] != 7 { // flags byte follows the opcode
		t.Fatalf("flags byte = %d, want 7", raw[4])
	}
	if _, _, err := decodeRequest(raw); err != nil {
		t.Fatalf("flags=7 request rejected: %v", err)
	}
	raw[4] = 8
	if _, _, err := decodeRequest(raw); err == nil {
		t.Fatal("reserved flag bit 8 accepted")
	}
}

// TestNSRequestBackCompat pins that the namespaced codec still decodes
// pre-namespace frames: the ns field rides at the end of the body behind
// flag bit 4, so a frame built by the old encoder — same version byte, no
// ns tail — decodes unchanged, and every checked-in fuzz seed (which
// includes the pre-refactor corpus entries) still goes through the decoder
// without a panic.
func TestNSRequestBackCompat(t *testing.T) {
	// A pre-namespace ratio_map frame, byte by byte: the old encoder wrote
	// exactly this — no bit 4, no trailing ns string.
	var e binwire.Enc
	e.U8(binMagic)
	e.U8(binVersion)
	e.U8(kindReq)
	e.U8(binOpCodes["ratio_map"])
	e.U8(0) // flags: nothing present
	for _, s := range []string{"n1", "", "", "", ""} {
		e.String(s)
	}
	e.Uvarint(0) // replicas
	e.Uvarint(0) // k
	e.Uvarint(0) // n
	req, bin, err := decodeRequest(e.Bytes())
	if err != nil || !bin {
		t.Fatalf("pre-namespace frame: bin=%v err=%v", bin, err)
	}
	if req.Op != "ratio_map" || req.Node != "n1" || req.NS != "" {
		t.Fatalf("pre-namespace frame decoded to %+v", req)
	}

	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeBinaryRequest")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	decoded := 0
	for _, ent := range entries {
		body, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(body)), "\n")
		if len(lines) != 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: unexpected corpus format", ent.Name())
		}
		quoted := strings.TrimSuffix(strings.TrimPrefix(lines[1], "[]byte("), ")")
		raw, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: %v", ent.Name(), err)
		}
		// Corruption seeds must keep failing; valid seeds must keep
		// round-tripping. Either way: no panic, no drift.
		req, bin, err := decodeRequest([]byte(raw))
		if err != nil {
			continue
		}
		decoded++
		if bin {
			re, err := EncodeRequest(&req, true)
			if err != nil {
				t.Fatalf("%s: decoded seed unencodable: %v", ent.Name(), err)
			}
			if string(re) != raw {
				t.Fatalf("%s: seed re-encode drifted", ent.Name())
			}
		}
	}
	if decoded == 0 {
		t.Fatal("no corpus seed decoded — corpus lost its valid entries")
	}
}

// TestNSDispatch drives namespaced queries end to end through Handle in
// both codecs: a scoped ratio_map / similarity / closest answers from one
// CDN's signal only, and ns on an op without scoped semantics is a
// structured error, not a silent ignore.
func TestNSDispatch(t *testing.T) {
	svc := crp.NewService()
	if err := svc.EnableFusion(crp.FusionConfig{}); err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Serve(pc, svc, Config{Registry: obs.NewRegistry()})
	if err != nil {
		pc.Close()
		t.Fatal(err)
	}
	defer d.Close()

	handle := func(req Request, bin bool) Response {
		raw, err := EncodeRequest(&req, bin)
		if err != nil {
			t.Fatal(err)
		}
		resp, respBin, err := DecodeResponse(d.Handle(raw))
		if err != nil {
			t.Fatalf("reply undecodable: %v", err)
		}
		if respBin != bin {
			t.Fatalf("request codec bin=%v but reply codec bin=%v", bin, respBin)
		}
		return resp
	}

	// Two nodes that agree on cdnA and disagree on cdnB.
	seed := []Request{
		{Op: "observe", Node: "n1", Replicas: []string{"cdnA!r1", "cdnB!x1"}},
		{Op: "observe", Node: "n1", Replicas: []string{"cdnA!r2", "cdnB!x1"}},
		{Op: "observe", Node: "n2", Replicas: []string{"cdnA!r1", "cdnB!y1"}},
		{Op: "observe", Node: "n2", Replicas: []string{"cdnA!r2", "cdnB!y1"}},
	}
	for _, r := range seed {
		if resp := handle(r, true); !resp.OK {
			t.Fatalf("observe = %+v", resp)
		}
	}

	for _, bin := range []bool{false, true} {
		rm := handle(Request{Op: "ratio_map", Node: "n1", NS: "cdnB"}, bin)
		if !rm.OK || len(rm.RatioMap) != 1 || rm.RatioMap["cdnB!x1"] == 0 {
			t.Fatalf("bin=%v: cdnB ratio_map = %+v", bin, rm)
		}
		simA := handle(Request{Op: "similarity", A: "n1", B: "n2", NS: "cdnA"}, bin)
		if !simA.OK || simA.Similarity == nil || *simA.Similarity < 0.999 {
			t.Fatalf("bin=%v: cdnA similarity = %+v", bin, simA)
		}
		simB := handle(Request{Op: "similarity", A: "n1", B: "n2", NS: "cdnB"}, bin)
		if !simB.OK || simB.Similarity == nil || *simB.Similarity != 0 {
			t.Fatalf("bin=%v: cdnB similarity = %+v", bin, simB)
		}
		cl := handle(Request{Op: "closest", Client: "n1", Candidates: []string{"n2"}, K: 1, NS: "cdnA"}, bin)
		if !cl.OK || len(cl.Ranked) != 1 || cl.Ranked[0].Node != "n2" || cl.Ranked[0].Similarity < 0.999 {
			t.Fatalf("bin=%v: cdnA closest = %+v", bin, cl)
		}
		// Unscoped queries keep working beside the scoped ones (fused kernel).
		fused := handle(Request{Op: "similarity", A: "n1", B: "n2"}, bin)
		if !fused.OK || fused.Similarity == nil || *fused.Similarity <= 0 || *fused.Similarity >= 1 {
			t.Fatalf("bin=%v: fused similarity = %+v", bin, fused)
		}
		// ns on an op without scoped semantics: structured rejection.
		bad := handle(Request{Op: "stats", NS: "cdnA"}, bin)
		if bad.OK || !strings.Contains(bad.Error, "does not support ns scoping") {
			t.Fatalf("bin=%v: ns'd stats = %+v", bin, bad)
		}
		// Unknown namespace is an empty answer, not a crash.
		missing := handle(Request{Op: "ratio_map", Node: "n1", NS: "cdnZ"}, bin)
		if !missing.OK || len(missing.RatioMap) != 0 {
			t.Fatalf("bin=%v: unknown-ns ratio_map = %+v", bin, missing)
		}
	}
}

// TestStatsReplySummarizesNSFamilies is the reply-size regression for the
// per-namespace gauge families: a fused deployment that has seen thousands
// of namespaces would overflow the UDP reply budget if the stats op
// exported one gauge per namespace, so the exported snapshot must carry the
// six-field summary instead — and still fit in one datagram.
func TestStatsReplySummarizesNSFamilies(t *testing.T) {
	svc := crp.NewService()
	if err := svc.EnableFusion(crp.FusionConfig{}); err != nil {
		t.Fatal(err)
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// No Registry override: the daemon must default to obs.Default(), which
	// is where the service's ns gauges live.
	d, err := Serve(pc, svc, Config{})
	if err != nil {
		pc.Close()
		t.Fatal(err)
	}
	defer d.Close()

	// 2000 namespaces ≈ 74 KB of raw gauge lines — over MaxReplySize on
	// their own, so without the summary the reply could only degrade.
	const numNS = 2000
	for i := 0; i < numNS; i++ {
		r := crp.Qualify(crp.Namespace(fmt.Sprintf("cdn%04d", i)), "r1")
		if err := svc.Observe(crp.NodeID("n1"), d.now(), r); err != nil {
			t.Fatal(err)
		}
	}

	raw, err := EncodeRequest(&Request{Op: "stats"}, false)
	if err != nil {
		t.Fatal(err)
	}
	wire := d.Handle(raw)
	if len(wire) > MaxReplySize {
		t.Fatalf("stats reply is %d bytes, exceeds MaxReplySize", len(wire))
	}
	resp, _, err := DecodeResponse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Stats == nil {
		t.Fatalf("stats reply = %+v", resp)
	}
	if got := resp.Stats.Gauges["crp.service.ns_observes.count"]; got < numNS {
		t.Fatalf("ns_observes.count = %d, want >= %d", got, numNS)
	}
	for name := range resp.Stats.Gauges {
		if strings.HasPrefix(name, "crp.service.ns.") {
			t.Fatalf("raw per-namespace gauge %q leaked into the exported snapshot", name)
		}
	}
}
