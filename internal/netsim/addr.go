package netsim

import (
	"fmt"
	"net/netip"
)

// addrAllocator hands out synthetic IPv4 prefixes from 10.0.0.0/8 to
// autonomous systems, and individual addresses to hosts within them.
// Prefix lengths vary (like real BGP tables) so that the ASN module's
// longest-prefix-match lookup is exercised with non-uniform masks.
type addrAllocator struct {
	next uint32 // next unallocated address in host byte order
	end  uint32
}

func newAddrAllocator() *addrAllocator {
	return &addrAllocator{
		next: 0x0A000000,             // 10.0.0.0
		end:  0x0A000000 + 1<<24 - 1, // end of 10.0.0.0/8
	}
}

// allocPrefix reserves one /bits prefix and returns it.
func (a *addrAllocator) allocPrefix(bits int) (netip.Prefix, error) {
	if bits < 8 || bits > 24 {
		return netip.Prefix{}, fmt.Errorf("netsim: prefix length %d out of range [8,24]", bits)
	}
	size := uint32(1) << (32 - bits)
	// Align the start of the block to its size.
	start := (a.next + size - 1) &^ (size - 1)
	if start+size-1 > a.end {
		return netip.Prefix{}, fmt.Errorf("netsim: address space exhausted allocating /%d", bits)
	}
	a.next = start + size
	return netip.PrefixFrom(addrFromUint32(start), bits), nil
}

func addrFromUint32(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

func uint32FromAddr(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// hostAddr returns the n-th usable host address inside prefix p
// (n is zero-based; network and broadcast addresses are skipped).
func hostAddr(p netip.Prefix, n int) (netip.Addr, error) {
	size := uint32(1) << (32 - p.Bits())
	if uint32(n)+2 >= size {
		return netip.Addr{}, fmt.Errorf("netsim: host index %d does not fit in %v", n, p)
	}
	return addrFromUint32(uint32FromAddr(p.Addr()) + uint32(n) + 1), nil
}
