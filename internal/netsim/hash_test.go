package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixDeterministic(t *testing.T) {
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Error("Mix is not deterministic")
	}
}

func TestMixOrderSensitive(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Error("Mix(1,2) == Mix(2,1): argument order should matter")
	}
}

func TestMixArityDistinct(t *testing.T) {
	// Different arities with a shared prefix must not collide trivially.
	seen := map[uint64]string{}
	cases := map[string]uint64{
		"(1)":     Mix(1),
		"(1,0)":   Mix(1, 0),
		"(1,0,0)": Mix(1, 0, 0),
	}
	for name, h := range cases {
		if prev, dup := seen[h]; dup {
			t.Errorf("hash collision between %s and %s", name, prev)
		}
		seen[h] = name
	}
}

func TestUnitRange(t *testing.T) {
	f := func(x uint64) bool {
		u := Unit(x)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitAtUniformish(t *testing.T) {
	// The mean of many hashed units should be near 0.5 and the values should
	// cover the full range — a smoke test that the mixer isn't degenerate.
	const n = 10000
	sum, lo, hi := 0.0, 1.0, 0.0
	for i := uint64(0); i < n; i++ {
		u := UnitAt(42, i)
		sum += u
		lo = math.Min(lo, u)
		hi = math.Max(hi, u)
	}
	mean := sum / n
	if mean < 0.48 || mean > 0.52 {
		t.Errorf("mean of hashed units = %.4f, want ~0.5", mean)
	}
	if lo > 0.01 || hi < 0.99 {
		t.Errorf("hashed units cover [%.4f, %.4f], want nearly [0,1)", lo, hi)
	}
}

func TestSplitmix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip a substantial number of output bits.
	base := splitmix64(0x123456789abcdef)
	for bit := 0; bit < 64; bit++ {
		flipped := splitmix64(0x123456789abcdef ^ (1 << bit))
		diff := base ^ flipped
		n := 0
		for diff != 0 {
			n += int(diff & 1)
			diff >>= 1
		}
		if n < 10 {
			t.Errorf("flipping input bit %d changed only %d output bits", bit, n)
		}
	}
}
