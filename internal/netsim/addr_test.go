package netsim

import (
	"net/netip"
	"testing"
)

func TestAllocPrefixAlignedAndDisjoint(t *testing.T) {
	a := newAddrAllocator()
	var prefixes []netip.Prefix
	for _, bits := range []int{16, 20, 15, 18, 24, 15} {
		p, err := a.allocPrefix(bits)
		if err != nil {
			t.Fatalf("allocPrefix(%d): %v", bits, err)
		}
		if p.Bits() != bits {
			t.Errorf("got /%d, want /%d", p.Bits(), bits)
		}
		// The base address must be aligned to the prefix size.
		base := uint32FromAddr(p.Addr())
		size := uint32(1) << (32 - bits)
		if base%size != 0 {
			t.Errorf("prefix %v base not aligned to size %d", p, size)
		}
		for _, prev := range prefixes {
			if prev.Overlaps(p) {
				t.Errorf("prefix %v overlaps earlier %v", p, prev)
			}
		}
		prefixes = append(prefixes, p)
	}
}

func TestAllocPrefixStaysInTenSlashEight(t *testing.T) {
	a := newAddrAllocator()
	ten := netip.MustParsePrefix("10.0.0.0/8")
	for i := 0; i < 100; i++ {
		p, err := a.allocPrefix(18)
		if err != nil {
			t.Fatalf("allocPrefix #%d: %v", i, err)
		}
		if !ten.Overlaps(p) || !ten.Contains(p.Addr()) {
			t.Fatalf("prefix %v escapes 10.0.0.0/8", p)
		}
	}
}

func TestAllocPrefixExhaustion(t *testing.T) {
	a := newAddrAllocator()
	// 10/8 holds exactly 256 /16s.
	for i := 0; i < 256; i++ {
		if _, err := a.allocPrefix(16); err != nil {
			t.Fatalf("allocPrefix #%d should fit: %v", i, err)
		}
	}
	if _, err := a.allocPrefix(16); err == nil {
		t.Error("allocating a 257th /16 from 10/8 should fail")
	}
}

func TestAllocPrefixRejectsBadLengths(t *testing.T) {
	a := newAddrAllocator()
	for _, bits := range []int{0, 7, 25, 33, -1} {
		if _, err := a.allocPrefix(bits); err == nil {
			t.Errorf("allocPrefix(%d) should fail", bits)
		}
	}
}

func TestHostAddr(t *testing.T) {
	p := netip.MustParsePrefix("10.4.0.0/24")
	first, err := hostAddr(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := netip.MustParseAddr("10.4.0.1"); first != want {
		t.Errorf("hostAddr(p, 0) = %v, want %v", first, want)
	}
	last, err := hostAddr(p, 253)
	if err != nil {
		t.Fatal(err)
	}
	if want := netip.MustParseAddr("10.4.0.254"); last != want {
		t.Errorf("hostAddr(p, 253) = %v, want %v", last, want)
	}
	if _, err := hostAddr(p, 254); err == nil {
		t.Error("hostAddr should refuse the broadcast address")
	}
}

func TestAddrUint32RoundTrip(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.255.255.255", "10.128.3.77"} {
		a := netip.MustParseAddr(s)
		if got := addrFromUint32(uint32FromAddr(a)); got != a {
			t.Errorf("round trip of %v = %v", a, got)
		}
	}
}
