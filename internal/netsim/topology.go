// Package netsim provides a deterministic wide-area Internet simulator: a
// geographic topology of hosts grouped into metros and autonomous systems,
// and a latency model with stable, diurnal and noisy components. It stands in
// for the live Internet used by the CRP paper's evaluation (PlanetLab nodes,
// King data-set DNS servers, Akamai's network view).
package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"net/netip"
	"sort"
	"sync/atomic"
	"time"
)

// HostID identifies a host within a Topology. IDs are dense: they index the
// Topology's host table.
type HostID int

// ASN is an autonomous-system number.
type ASN uint32

// HostKind distinguishes the roles hosts play in an experiment.
type HostKind int

const (
	// KindReplica is a CDN replica server (an Akamai-like edge node).
	KindReplica HostKind = iota + 1
	// KindCandidate is a candidate server for closest-node selection
	// (the paper uses Meridian-running PlanetLab nodes).
	KindCandidate
	// KindClient is a client host; per the paper's methodology clients are
	// recursive DNS servers that double as their own LDNS.
	KindClient
)

func (k HostKind) String() string {
	switch k {
	case KindReplica:
		return "replica"
	case KindCandidate:
		return "candidate"
	case KindClient:
		return "client"
	default:
		return fmt.Sprintf("HostKind(%d)", int(k))
	}
}

// Host is a network endpoint in the simulated topology.
type Host struct {
	ID     HostID
	Kind   HostKind
	Name   string // fully-qualified synthetic DNS name, e.g. "c0042.client.sim."
	Addr   netip.Addr
	Coord  Coord
	ASN    ASN
	Region string
	Metro  int // metro ID

	// AccessRTTMs is the host's last-mile contribution to the RTT of any
	// path through it (both directions combined).
	AccessRTTMs float64
	// CongestionAmpMs is the peak of the host's diurnal congestion swing.
	CongestionAmpMs float64
	// LDNS is the host's local DNS resolver. Clients in the paper's
	// methodology are DNS servers themselves, so this defaults to the
	// host's own ID.
	LDNS HostID
}

// AS is an autonomous system: a set of address prefixes homed at one or more
// metros.
type AS struct {
	ASN      ASN
	Region   string
	Metros   []int
	Prefixes []netip.Prefix
}

// Params configures topology generation.
type Params struct {
	Seed          int64
	NumClients    int
	NumCandidates int
	NumReplicas   int
	// LocalASesPerMetro is how many single-metro ISPs each metro hosts.
	LocalASesPerMetro int
	// BackboneASes is how many multi-metro ASes to create. Backbone ASes
	// make ASN-based clustering coarse, as observed in the paper.
	BackboneASes int
	// PoPMetroFraction is the fraction of each region's metros (largest
	// first) that host CDN points of presence. Real CDNs deploy in major
	// peering locations, not every city, so clients in minor metros are
	// served from — and share redirections with — the nearest major metro.
	// Defaults to 0.5 when zero.
	PoPMetroFraction float64
	Regions          []Region
}

// DefaultParams mirrors the paper's evaluation scale: 1,000 client DNS
// servers, 240 active candidate servers, and a CDN deployment large enough
// that each client sees a small (<20) set of nearby replicas.
func DefaultParams() Params {
	return Params{
		Seed:              1,
		NumClients:        1000,
		NumCandidates:     240,
		NumReplicas:       600,
		LocalASesPerMetro: 5,
		BackboneASes:      20,
		PoPMetroFraction:  0.5,
		Regions:           DefaultRegions(),
	}
}

// Topology is an immutable generated network. All methods are safe for
// concurrent use.
type Topology struct {
	params Params
	seed   uint64

	metros []Metro
	ases   []*AS
	asByN  map[ASN]*AS

	hosts      []*Host
	replicas   []HostID
	candidates []HostID
	clients    []HostID

	byName map[string]HostID
	byAddr map[netip.Addr]HostID

	// perturb holds the optional Perturb (wrapped in perturbBox) consulted
	// by the time-varying latency model. See SetPerturb.
	perturb atomic.Value
}

// Generate builds a topology from p. Generation is deterministic in p.
func Generate(p Params) (*Topology, error) {
	if p.NumClients < 0 || p.NumCandidates < 0 || p.NumReplicas < 0 {
		return nil, errors.New("netsim: negative host count")
	}
	if len(p.Regions) == 0 {
		return nil, errors.New("netsim: no regions")
	}
	if p.LocalASesPerMetro <= 0 {
		return nil, errors.New("netsim: LocalASesPerMetro must be positive")
	}
	if p.PoPMetroFraction == 0 {
		p.PoPMetroFraction = 0.5
	}
	if p.PoPMetroFraction < 0 || p.PoPMetroFraction > 1 {
		return nil, errors.New("netsim: PoPMetroFraction outside (0,1]")
	}
	for _, r := range p.Regions {
		if r.Metros <= 0 {
			return nil, fmt.Errorf("netsim: region %q has no metros", r.Name)
		}
		if r.LatMin >= r.LatMax || r.LonMin >= r.LonMax {
			return nil, fmt.Errorf("netsim: region %q has an empty bounding box", r.Name)
		}
	}

	t := &Topology{
		params: p,
		seed:   uint64(p.Seed),
		asByN:  make(map[ASN]*AS),
		byName: make(map[string]HostID),
		byAddr: make(map[netip.Addr]HostID),
	}
	rng := rand.New(rand.NewPCG(uint64(p.Seed), 0x9e3779b97f4a7c15))

	t.generateMetros(rng)
	if err := t.generateASes(rng); err != nil {
		return nil, err
	}
	if err := t.generateHosts(rng); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Topology) generateMetros(rng *rand.Rand) {
	id := 0
	for _, r := range t.params.Regions {
		for i := 0; i < r.Metros; i++ {
			c := Coord{
				Lat: r.LatMin + rng.Float64()*(r.LatMax-r.LatMin),
				Lon: r.LonMin + rng.Float64()*(r.LonMax-r.LonMin),
			}
			// Zipf-like metro sizes: the first metros of each region are the
			// large population centers.
			w := 1 / math.Pow(float64(i+1), 0.7)
			t.metros = append(t.metros, Metro{ID: id, Region: r.Name, Center: c, Weight: w})
			id++
		}
	}
}

func (t *Topology) generateASes(rng *rand.Rand) error {
	alloc := newAddrAllocator()
	next := ASN(64512) // private-use ASN range, same spirit as 10/8 addresses

	newAS := func(region string, metros []int) (*AS, error) {
		as := &AS{ASN: next, Region: region, Metros: metros}
		next++
		nPrefix := 1 + rng.IntN(3)
		for i := 0; i < nPrefix; i++ {
			bits := 18 + rng.IntN(5) // /18 .. /22
			pfx, err := alloc.allocPrefix(bits)
			if err != nil {
				return nil, err
			}
			as.Prefixes = append(as.Prefixes, pfx)
		}
		t.ases = append(t.ases, as)
		t.asByN[as.ASN] = as
		return as, nil
	}

	// Local single-metro ISPs.
	for mi := range t.metros {
		m := &t.metros[mi]
		for i := 0; i < t.params.LocalASesPerMetro; i++ {
			as, err := newAS(m.Region, []int{m.ID})
			if err != nil {
				return err
			}
			m.ASNs = append(m.ASNs, as.ASN)
		}
	}

	// Backbone ASes spanning several metros (usually within one region,
	// sometimes across regions). Nodes of one backbone AS can be thousands
	// of km apart, which is what makes pure ASN clustering low quality.
	for i := 0; i < t.params.BackboneASes; i++ {
		span := 2 + rng.IntN(3)
		var metros []int
		if rng.Float64() < 0.75 {
			// Intra-region backbone: pick metros from one region.
			region := t.params.Regions[rng.IntN(len(t.params.Regions))]
			candidates := t.metrosInRegion(region.Name)
			for len(metros) < span && len(candidates) > 0 {
				j := rng.IntN(len(candidates))
				metros = append(metros, candidates[j])
				candidates = append(candidates[:j], candidates[j+1:]...)
			}
		} else {
			// Transit backbone: metros anywhere.
			for len(metros) < span {
				metros = append(metros, rng.IntN(len(t.metros)))
			}
		}
		if len(metros) == 0 {
			continue
		}
		as, err := newAS(t.metros[metros[0]].Region, metros)
		if err != nil {
			return err
		}
		for _, mid := range metros {
			t.metros[mid].ASNs = append(t.metros[mid].ASNs, as.ASN)
		}
	}
	return nil
}

func (t *Topology) metrosInRegion(region string) []int {
	var out []int
	for _, m := range t.metros {
		if m.Region == region {
			out = append(out, m.ID)
		}
	}
	return out
}

// hostSpec bundles the per-kind generation knobs.
type hostSpec struct {
	kind       HostKind
	count      int
	weightOf   func(Region) float64
	scatterDeg float64 // gaussian scatter around the metro center
	namePrefix string
	// popOnly restricts placement to each region's PoP metros (the largest
	// ones) — used for CDN replicas.
	popOnly    bool
	access     func(rng *rand.Rand) float64
	congestion func(rng *rand.Rand) float64
}

func (t *Topology) generateHosts(rng *rand.Rand) error {
	specs := []hostSpec{
		{
			kind: KindReplica, count: t.params.NumReplicas,
			weightOf:   func(r Region) float64 { return r.ReplicaWeight },
			scatterDeg: 0.15, namePrefix: "r", popOnly: true,
			// Replica servers sit in ISP PoPs: short, stable access paths.
			access:     func(rng *rand.Rand) float64 { return 0.4 + rng.Float64()*1.6 },
			congestion: func(rng *rand.Rand) float64 { return rng.Float64() * 3 },
		},
		{
			kind: KindCandidate, count: t.params.NumCandidates,
			weightOf:   func(r Region) float64 { return r.CandidateWeight },
			scatterDeg: 0.35, namePrefix: "s",
			// Candidate servers are university-hosted (PlanetLab-like).
			access:     func(rng *rand.Rand) float64 { return 1 + rng.Float64()*5 },
			congestion: func(rng *rand.Rand) float64 { return rng.Float64() * 8 },
		},
		{
			kind: KindClient, count: t.params.NumClients,
			weightOf:   func(r Region) float64 { return r.HostWeight },
			scatterDeg: 0.6, namePrefix: "c",
			// Clients are broadly distributed DNS servers with varied
			// last-mile quality.
			access:     func(rng *rand.Rand) float64 { return 2 + rng.ExpFloat64()*6 },
			congestion: func(rng *rand.Rand) float64 { return rng.Float64() * 14 },
		},
	}

	// Per-AS counter for address assignment.
	hostIdx := make(map[ASN]int)

	for _, spec := range specs {
		for i := 0; i < spec.count; i++ {
			region := pickRegion(rng, t.params.Regions, spec.weightOf)
			metro := t.pickMetro(rng, region.Name, spec.popOnly)
			asn := metro.ASNs[rng.IntN(len(metro.ASNs))]
			as := t.asByN[asn]

			pfx := as.Prefixes[rng.IntN(len(as.Prefixes))]
			addr, err := hostAddr(pfx, hostIdx[asn])
			if err != nil {
				return fmt.Errorf("assign address in AS%d: %w", asn, err)
			}
			hostIdx[asn]++

			id := HostID(len(t.hosts))
			access := spec.access(rng)
			if access > 45 {
				access = 45
			}
			h := &Host{
				ID:     id,
				Kind:   spec.kind,
				Name:   fmt.Sprintf("%s%04d.%s.sim.", spec.namePrefix, i, spec.kind),
				Addr:   addr,
				ASN:    asn,
				Region: region.Name,
				Metro:  metro.ID,
				Coord: Coord{
					Lat: clampLat(metro.Center.Lat + rng.NormFloat64()*spec.scatterDeg),
					Lon: wrapLon(metro.Center.Lon + rng.NormFloat64()*spec.scatterDeg),
				},
				AccessRTTMs:     access,
				CongestionAmpMs: spec.congestion(rng),
				LDNS:            id, // self, per the paper's methodology
			}
			t.hosts = append(t.hosts, h)
			t.byName[h.Name] = id
			t.byAddr[h.Addr] = id
			switch spec.kind {
			case KindReplica:
				t.replicas = append(t.replicas, id)
			case KindCandidate:
				t.candidates = append(t.candidates, id)
			case KindClient:
				t.clients = append(t.clients, id)
			}
		}
	}
	return nil
}

func pickRegion(rng *rand.Rand, regions []Region, weightOf func(Region) float64) Region {
	total := 0.0
	for _, r := range regions {
		total += weightOf(r)
	}
	x := rng.Float64() * total
	for _, r := range regions {
		x -= weightOf(r)
		if x < 0 {
			return r
		}
	}
	return regions[len(regions)-1]
}

func (t *Topology) pickMetro(rng *rand.Rand, region string, popOnly bool) *Metro {
	ids := t.metrosInRegion(region)
	if popOnly {
		// Metros are generated in descending-weight order per region, so
		// the PoP metros are the leading ones.
		k := (len(ids)*int(t.params.PoPMetroFraction*100) + 99) / 100
		if k < 1 {
			k = 1
		}
		if k < len(ids) {
			ids = ids[:k]
		}
	}
	total := 0.0
	for _, id := range ids {
		total += t.metros[id].Weight
	}
	x := rng.Float64() * total
	for _, id := range ids {
		x -= t.metros[id].Weight
		if x < 0 {
			return &t.metros[id]
		}
	}
	return &t.metros[ids[len(ids)-1]]
}

// Host returns the host with the given ID, or nil if out of range.
func (t *Topology) Host(id HostID) *Host {
	if id < 0 || int(id) >= len(t.hosts) {
		return nil
	}
	return t.hosts[id]
}

// NumHosts returns the total number of hosts of all kinds.
func (t *Topology) NumHosts() int { return len(t.hosts) }

// Replicas returns the IDs of all CDN replica servers.
func (t *Topology) Replicas() []HostID { return copyIDs(t.replicas) }

// Candidates returns the IDs of all candidate servers.
func (t *Topology) Candidates() []HostID { return copyIDs(t.candidates) }

// Clients returns the IDs of all client hosts.
func (t *Topology) Clients() []HostID { return copyIDs(t.clients) }

// HostByName resolves a synthetic DNS name to a host ID.
func (t *Topology) HostByName(name string) (HostID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// HostByAddr resolves an address to a host ID.
func (t *Topology) HostByAddr(addr netip.Addr) (HostID, bool) {
	id, ok := t.byAddr[addr]
	return id, ok
}

// ASes returns all autonomous systems, ordered by ASN.
func (t *Topology) ASes() []*AS {
	out := make([]*AS, len(t.ases))
	copy(out, t.ases)
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// ASOf returns the autonomous system of a host.
func (t *Topology) ASOf(id HostID) *AS {
	h := t.Host(id)
	if h == nil {
		return nil
	}
	return t.asByN[h.ASN]
}

// Metros returns the generated metros.
func (t *Topology) Metros() []Metro {
	out := make([]Metro, len(t.metros))
	copy(out, t.metros)
	return out
}

// Seed returns the seed the topology was generated with.
func (t *Topology) Seed() int64 { return t.params.Seed }

// Params returns the generation parameters.
func (t *Topology) Params() Params { return t.params }

func copyIDs(ids []HostID) []HostID {
	out := make([]HostID, len(ids))
	copy(out, ids)
	return out
}

// epochDay anchors diurnal phase computations; exported time helpers below
// express virtual time as a duration since the epoch.
const hoursPerDay = 24.0

// localHour returns the local solar hour-of-day at longitude lon for virtual
// time t.
func localHour(t time.Duration, lon float64) float64 {
	utcHours := t.Hours()
	h := math.Mod(utcHours+lon/15, hoursPerDay)
	if h < 0 {
		h += hoursPerDay
	}
	return h
}
