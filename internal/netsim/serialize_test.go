package netsim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTopologyJSONRoundTrip(t *testing.T) {
	orig := mustGenerate(t, smallParams())
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	loaded, err := LoadJSON(&buf)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}

	if loaded.NumHosts() != orig.NumHosts() {
		t.Fatalf("host counts: %d vs %d", loaded.NumHosts(), orig.NumHosts())
	}
	for i := 0; i < orig.NumHosts(); i++ {
		a, b := orig.Host(HostID(i)), loaded.Host(HostID(i))
		if *a != *b {
			t.Fatalf("host %d differs after round trip:\n%+v\n%+v", i, a, b)
		}
	}
	// The latency model must behave identically: same seed, same hosts.
	for i := 0; i < 30; i++ {
		a, b := HostID(i), HostID((i*13+7)%orig.NumHosts())
		at := time.Duration(i) * 7 * time.Minute
		if orig.RTTMs(a, b, at) != loaded.RTTMs(a, b, at) {
			t.Fatalf("RTT(%d,%d) differs after round trip", a, b)
		}
		if orig.MeasureRTTMs(a, b, at, 3) != loaded.MeasureRTTMs(a, b, at, 3) {
			t.Fatalf("MeasureRTT(%d,%d) differs after round trip", a, b)
		}
	}
	// Lookup tables rebuilt.
	h := orig.Host(orig.Clients()[0])
	if id, ok := loaded.HostByName(h.Name); !ok || id != h.ID {
		t.Errorf("HostByName after load = %v,%v", id, ok)
	}
	if len(loaded.ASes()) != len(orig.ASes()) {
		t.Errorf("AS counts differ: %d vs %d", len(loaded.ASes()), len(orig.ASes()))
	}
	if len(loaded.Replicas()) != len(orig.Replicas()) ||
		len(loaded.Candidates()) != len(orig.Candidates()) ||
		len(loaded.Clients()) != len(orig.Clients()) {
		t.Error("kind partitions differ after round trip")
	}
}

func TestLoadJSONRejectsCorruption(t *testing.T) {
	orig := mustGenerate(t, smallParams())
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	base := buf.String()

	corrupt := func(name string, mutate func(*topologyJSON)) {
		t.Run(name, func(t *testing.T) {
			var doc topologyJSON
			if err := json.Unmarshal([]byte(base), &doc); err != nil {
				t.Fatal(err)
			}
			mutate(&doc)
			raw, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := LoadJSON(bytes.NewReader(raw)); err == nil {
				t.Error("LoadJSON accepted corrupted input")
			}
		})
	}

	corrupt("host id gap", func(d *topologyJSON) { d.Hosts[3].ID = 999 })
	corrupt("bad addr", func(d *topologyJSON) { d.Hosts[0].Addr = "not-an-ip" })
	corrupt("bad kind", func(d *topologyJSON) { d.Hosts[0].Kind = 42 })
	corrupt("dup addr", func(d *topologyJSON) { d.Hosts[1].Addr = d.Hosts[0].Addr })
	corrupt("dup name", func(d *topologyJSON) { d.Hosts[1].Name = d.Hosts[0].Name })
	corrupt("unknown as", func(d *topologyJSON) { d.Hosts[0].ASN = 1 })
	corrupt("unknown metro", func(d *topologyJSON) { d.Hosts[0].Metro = 10_000 })
	corrupt("bad ldns", func(d *topologyJSON) { d.Hosts[0].LDNS = -2 })
	corrupt("dup as", func(d *topologyJSON) { d.ASes[1].ASN = d.ASes[0].ASN })
	corrupt("bad prefix", func(d *topologyJSON) { d.ASes[0].Prefixes[0] = "nope" })
	corrupt("as bad metro", func(d *topologyJSON) { d.ASes[0].Metros = []int{-1} })
	corrupt("metro order", func(d *topologyJSON) { d.Metros[0].ID = 5 })
}

func TestLoadJSONRejectsGarbage(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("{ not json")); err == nil {
		t.Error("LoadJSON accepted malformed JSON")
	}
}
