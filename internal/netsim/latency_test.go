package netsim

import (
	"math"
	"testing"
	"time"
)

func TestBaseRTTSymmetricAndZeroOnSelf(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	ids := topo.Clients()
	for i := 0; i < 20; i++ {
		a, b := ids[i], ids[(i*7+3)%len(ids)]
		if got := topo.BaseRTTMs(a, a); got != 0 {
			t.Errorf("BaseRTTMs(%d,%d) = %v, want 0", a, a, got)
		}
		ab, ba := topo.BaseRTTMs(a, b), topo.BaseRTTMs(b, a)
		if ab != ba {
			t.Errorf("BaseRTTMs asymmetric: %v vs %v", ab, ba)
		}
		if a != b && ab <= 0 {
			t.Errorf("BaseRTTMs(%d,%d) = %v, want > 0", a, b, ab)
		}
	}
}

func TestBaseRTTUnknownHostIsNaN(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	if got := topo.BaseRTTMs(0, HostID(topo.NumHosts())); !math.IsNaN(got) {
		t.Errorf("BaseRTTMs with bad host = %v, want NaN", got)
	}
}

func TestRTTGeographyDominates(t *testing.T) {
	// Same-metro pairs must usually be much closer than cross-region pairs;
	// this is the structure CRP exploits.
	topo := mustGenerate(t, smallParams())
	clients := topo.Clients()
	var sameMetro, crossRegion []float64
	for i := 0; i < len(clients); i++ {
		for j := i + 1; j < len(clients); j++ {
			a, b := topo.Host(clients[i]), topo.Host(clients[j])
			rtt := topo.BaseRTTMs(a.ID, b.ID)
			switch {
			case a.Metro == b.Metro:
				sameMetro = append(sameMetro, rtt)
			case a.Region != b.Region:
				crossRegion = append(crossRegion, rtt)
			}
		}
	}
	if len(sameMetro) == 0 || len(crossRegion) == 0 {
		t.Fatal("degenerate topology: need both same-metro and cross-region pairs")
	}
	if m1, m2 := mean(sameMetro), mean(crossRegion); m1*2 > m2 {
		t.Errorf("mean same-metro RTT %.1f ms not well below mean cross-region RTT %.1f ms", m1, m2)
	}
}

func TestASPenaltyZeroWithinAS(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	if got := topo.asPenaltyMs(64512, 64512); got != 0 {
		t.Errorf("same-AS penalty = %v, want 0", got)
	}
	p1 := topo.asPenaltyMs(64512, 64513)
	p2 := topo.asPenaltyMs(64513, 64512)
	if p1 != p2 {
		t.Errorf("AS penalty asymmetric: %v vs %v", p1, p2)
	}
	if p1 < 0 || p1 > 65 {
		t.Errorf("AS penalty %v out of expected range [0,65]", p1)
	}
}

func TestASPenaltyDistribution(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	small, large := 0, 0
	const n = 2000
	for i := 0; i < n; i++ {
		p := topo.asPenaltyMs(ASN(64512+i), ASN(64512+i+1000))
		if p < 4 {
			small++
		}
		if p >= 20 {
			large++
		}
	}
	if frac := float64(small) / n; frac < 0.45 || frac > 0.65 {
		t.Errorf("fraction of well-peered AS pairs = %.2f, want ~0.55", frac)
	}
	if frac := float64(large) / n; frac < 0.08 || frac > 0.25 {
		t.Errorf("fraction of heavy-penalty AS pairs = %.2f, want ~0.15", frac)
	}
}

func TestRTTIncludesCongestionAndVariesWithTime(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	a, b := topo.Clients()[0], topo.Clients()[1]
	base := topo.BaseRTTMs(a, b)
	varied := false
	for hour := 0; hour < 24; hour++ {
		rtt := topo.RTTMs(a, b, time.Duration(hour)*time.Hour)
		if rtt < base-1e-9 {
			t.Errorf("RTT %v at hour %d below base %v", rtt, hour, base)
		}
		if rtt > base+1e-9 {
			varied = true
		}
	}
	if !varied {
		t.Error("RTT never exceeded base over a day; congestion model inactive")
	}
}

func TestRTTDeterministicAtSameInstant(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	a, b := topo.Clients()[2], topo.Candidates()[3]
	at := 90 * time.Minute
	if r1, r2 := topo.RTTMs(a, b, at), topo.RTTMs(a, b, at); r1 != r2 {
		t.Errorf("RTT not deterministic: %v vs %v", r1, r2)
	}
}

func TestMeasureRTTNoiseBoundedAndSaltDecorrelates(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	a, b := topo.Clients()[0], topo.Candidates()[0]
	diverged := false
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * time.Minute
		truth := topo.RTTMs(a, b, at)
		m1 := topo.MeasureRTTMs(a, b, at, 1)
		m2 := topo.MeasureRTTMs(a, b, at, 2)
		if m1 != m2 {
			diverged = true
		}
		// Within ±7% barring the 1% outlier case; allow outliers by checking
		// only the lower bound tightly and upper loosely.
		if m1 < truth*0.92 {
			t.Errorf("measurement %v below noise floor of truth %v", m1, truth)
		}
		if m1 > truth*1.08+200 {
			t.Errorf("measurement %v above any plausible outlier of truth %v", m1, truth)
		}
	}
	if !diverged {
		t.Error("different salts never produced different measurements")
	}
	if got := topo.MeasureRTTMs(a, a, 0, 1); got != 0 {
		t.Errorf("self measurement = %v, want 0", got)
	}
}

func TestMeasureOutliersAreRare(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	a, b := topo.Clients()[5], topo.Candidates()[5]
	outliers := 0
	const n = 3000
	for i := 0; i < n; i++ {
		at := time.Duration(i) * time.Minute
		truth := topo.RTTMs(a, b, at)
		if topo.MeasureRTTMs(a, b, at, 7) > truth*1.08 {
			outliers++
		}
	}
	if frac := float64(outliers) / n; frac > 0.03 {
		t.Errorf("outlier fraction %.3f, want ~0.01", frac)
	}
}

func TestCongestionPeaksInLocalEvening(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	var h *Host
	for i := 0; i < topo.NumHosts(); i++ {
		if c := topo.Host(HostID(i)); c.CongestionAmpMs > 8 {
			h = c
			break
		}
	}
	if h == nil {
		t.Skip("no host with meaningful congestion amplitude")
	}
	// Scan a day in the host's local frame; the diurnal component (spikes
	// excluded) should be maximal near 20:00 local and zero in the local
	// early morning.
	best, bestHour := -1.0, -1.0
	for m := 0; m < 24*60; m += 10 {
		at := time.Duration(m) * time.Minute
		c := topo.congestionMs(h, at) - topo.spikeMs(h, at.Truncate(congestionBucket))
		if c > best {
			best, bestHour = c, localHour(at, h.Coord.Lon)
		}
	}
	if best <= 0 {
		t.Fatal("congestion never positive")
	}
	if bestHour < 17 || bestHour > 23 {
		t.Errorf("congestion peaks at local hour %.1f, want evening (17-23)", bestHour)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
