package netsim

import (
	"net/netip"
	"strings"
	"testing"
)

// smallParams keeps generation fast in unit tests.
func smallParams() Params {
	p := DefaultParams()
	p.NumClients = 120
	p.NumCandidates = 40
	p.NumReplicas = 80
	return p
}

func mustGenerate(t *testing.T, p Params) *Topology {
	t.Helper()
	topo, err := Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func TestGenerateCounts(t *testing.T) {
	p := smallParams()
	topo := mustGenerate(t, p)
	if got := len(topo.Clients()); got != p.NumClients {
		t.Errorf("clients = %d, want %d", got, p.NumClients)
	}
	if got := len(topo.Candidates()); got != p.NumCandidates {
		t.Errorf("candidates = %d, want %d", got, p.NumCandidates)
	}
	if got := len(topo.Replicas()); got != p.NumReplicas {
		t.Errorf("replicas = %d, want %d", got, p.NumReplicas)
	}
	if got := topo.NumHosts(); got != p.NumClients+p.NumCandidates+p.NumReplicas {
		t.Errorf("NumHosts = %d, want %d", got, p.NumClients+p.NumCandidates+p.NumReplicas)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, smallParams())
	b := mustGenerate(t, smallParams())
	if a.NumHosts() != b.NumHosts() {
		t.Fatalf("host counts differ: %d vs %d", a.NumHosts(), b.NumHosts())
	}
	for i := 0; i < a.NumHosts(); i++ {
		ha, hb := a.Host(HostID(i)), b.Host(HostID(i))
		if *ha != *hb {
			t.Fatalf("host %d differs across generations:\n%+v\n%+v", i, ha, hb)
		}
	}
}

func TestGenerateSeedChangesTopology(t *testing.T) {
	p := smallParams()
	a := mustGenerate(t, p)
	p.Seed = 2
	b := mustGenerate(t, p)
	same := 0
	for i := 0; i < a.NumHosts(); i++ {
		if a.Host(HostID(i)).Coord == b.Host(HostID(i)).Coord {
			same++
		}
	}
	if same == a.NumHosts() {
		t.Error("different seeds produced identical host placements")
	}
}

func TestGenerateHostInvariants(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	seenAddr := map[netip.Addr]bool{}
	seenName := map[string]bool{}
	for i := 0; i < topo.NumHosts(); i++ {
		h := topo.Host(HostID(i))
		if h.ID != HostID(i) {
			t.Fatalf("host %d has ID %d", i, h.ID)
		}
		if seenAddr[h.Addr] {
			t.Errorf("duplicate address %v", h.Addr)
		}
		seenAddr[h.Addr] = true
		if seenName[h.Name] {
			t.Errorf("duplicate name %q", h.Name)
		}
		seenName[h.Name] = true
		if !strings.HasSuffix(h.Name, ".sim.") {
			t.Errorf("host name %q is not under .sim.", h.Name)
		}
		if h.LDNS != h.ID {
			t.Errorf("host %d LDNS = %d, want self", h.ID, h.LDNS)
		}
		if h.AccessRTTMs < 0 || h.AccessRTTMs > 45 {
			t.Errorf("host %d access delay %v out of range", h.ID, h.AccessRTTMs)
		}
		as := topo.ASOf(h.ID)
		if as == nil {
			t.Fatalf("host %d has no AS", h.ID)
		}
		inPrefix := false
		for _, pfx := range as.Prefixes {
			if pfx.Contains(h.Addr) {
				inPrefix = true
			}
		}
		if !inPrefix {
			t.Errorf("host %d addr %v not inside its AS prefixes %v", h.ID, h.Addr, as.Prefixes)
		}
		// Region consistency: host is placed in its metro's region.
		m := topo.Metros()[h.Metro]
		if m.Region != h.Region {
			t.Errorf("host %d region %q != metro region %q", h.ID, h.Region, m.Region)
		}
	}
}

func TestGenerateLookupTables(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	h := topo.Host(topo.Clients()[0])
	if id, ok := topo.HostByName(h.Name); !ok || id != h.ID {
		t.Errorf("HostByName(%q) = %v,%v; want %v,true", h.Name, id, ok, h.ID)
	}
	if id, ok := topo.HostByAddr(h.Addr); !ok || id != h.ID {
		t.Errorf("HostByAddr(%v) = %v,%v; want %v,true", h.Addr, id, ok, h.ID)
	}
	if _, ok := topo.HostByName("nonexistent.sim."); ok {
		t.Error("HostByName of unknown name should report !ok")
	}
}

func TestGenerateRegionSkew(t *testing.T) {
	// The CDN deployment must be denser than the host population in
	// north-america and sparser in oceania+africa: this coverage skew drives
	// the tails of the paper's Figs. 4-5.
	p := DefaultParams()
	p.NumClients, p.NumCandidates, p.NumReplicas = 2000, 200, 1000
	topo := mustGenerate(t, p)

	frac := func(ids []HostID, region string) float64 {
		n := 0
		for _, id := range ids {
			if topo.Host(id).Region == region {
				n++
			}
		}
		return float64(n) / float64(len(ids))
	}
	if rf, cf := frac(topo.Replicas(), "north-america"), frac(topo.Clients(), "north-america"); rf <= cf {
		t.Errorf("replica fraction in north-america (%.2f) should exceed client fraction (%.2f)", rf, cf)
	}
	sparse := frac(topo.Replicas(), "oceania") + frac(topo.Replicas(), "africa")
	dense := frac(topo.Clients(), "oceania") + frac(topo.Clients(), "africa")
	if sparse >= dense {
		t.Errorf("replica fraction in oceania+africa (%.2f) should be below client fraction (%.2f)", sparse, dense)
	}
}

func TestGenerateBackboneASesSpanMetros(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	multi := 0
	for _, as := range topo.ASes() {
		if len(as.Metros) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-metro (backbone) ASes generated")
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"negative clients", func(p *Params) { p.NumClients = -1 }},
		{"no regions", func(p *Params) { p.Regions = nil }},
		{"zero ases per metro", func(p *Params) { p.LocalASesPerMetro = 0 }},
		{"region without metros", func(p *Params) { p.Regions[0].Metros = 0 }},
		{"empty bbox", func(p *Params) { p.Regions[0].LatMin = p.Regions[0].LatMax }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := smallParams()
			tt.mutate(&p)
			if _, err := Generate(p); err == nil {
				t.Error("Generate should fail")
			}
		})
	}
}

func TestHostOutOfRange(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	if topo.Host(-1) != nil {
		t.Error("Host(-1) should be nil")
	}
	if topo.Host(HostID(topo.NumHosts())) != nil {
		t.Error("Host(NumHosts) should be nil")
	}
}

func TestAccessorsReturnCopies(t *testing.T) {
	topo := mustGenerate(t, smallParams())
	ids := topo.Clients()
	ids[0] = -999
	if topo.Clients()[0] == -999 {
		t.Error("Clients() exposes internal slice")
	}
	ms := topo.Metros()
	ms[0].Region = "tampered"
	if topo.Metros()[0].Region == "tampered" {
		t.Error("Metros() exposes internal slice")
	}
}

func TestHostKindString(t *testing.T) {
	tests := []struct {
		kind HostKind
		want string
	}{
		{KindReplica, "replica"},
		{KindCandidate, "candidate"},
		{KindClient, "client"},
		{HostKind(99), "HostKind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}
