package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKmKnownPairs(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Coord
		wantKm float64
		tolKm  float64
	}{
		{
			name: "same point",
			a:    Coord{Lat: 40, Lon: -74}, b: Coord{Lat: 40, Lon: -74},
			wantKm: 0, tolKm: 0.001,
		},
		{
			name: "new york to london",
			a:    Coord{Lat: 40.7128, Lon: -74.0060}, b: Coord{Lat: 51.5074, Lon: -0.1278},
			wantKm: 5570, tolKm: 30,
		},
		{
			name: "sydney to auckland",
			a:    Coord{Lat: -33.8688, Lon: 151.2093}, b: Coord{Lat: -36.8485, Lon: 174.7633},
			wantKm: 2156, tolKm: 30,
		},
		{
			name: "antipodal-ish",
			a:    Coord{Lat: 0, Lon: 0}, b: Coord{Lat: 0, Lon: 180},
			wantKm: math.Pi * earthRadiusKm, tolKm: 1,
		},
		{
			name: "one degree of latitude",
			a:    Coord{Lat: 0, Lon: 0}, b: Coord{Lat: 1, Lon: 0},
			wantKm: 111.2, tolKm: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.DistanceKm(tt.b)
			if math.Abs(got-tt.wantKm) > tt.tolKm {
				t.Errorf("DistanceKm() = %.1f, want %.1f ± %.1f", got, tt.wantKm, tt.tolKm)
			}
		})
	}
}

func TestDistanceKmSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Coord{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		d1, d2 := a.DistanceKm(b), b.DistanceKm(a)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceKmNonNegativeAndBounded(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Coord{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		d := a.DistanceKm(b)
		return d >= 0 && d <= math.Pi*earthRadiusKm+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampLat(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0}, {45.5, 45.5}, {91, 89}, {-95, -89}, {89, 89}, {-89, -89},
	}
	for _, tt := range tests {
		if got := clampLat(tt.in); got != tt.want {
			t.Errorf("clampLat(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapLon(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0}, {-180, -180}, {180, -180}, {190, -170}, {-190, 170}, {360, 0}, {540, -180},
	}
	for _, tt := range tests {
		if got := wrapLon(tt.in); got != tt.want {
			t.Errorf("wrapLon(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
