package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestClockStartsAtEpoch(t *testing.T) {
	c := NewClock()
	if got := c.Now(); got != 0 {
		t.Errorf("new clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if got := c.Advance(10 * time.Minute); got != 10*time.Minute {
		t.Errorf("Advance returned %v, want 10m", got)
	}
	c.Advance(20 * time.Second)
	if got := c.Now(); got != 10*time.Minute+20*time.Second {
		t.Errorf("Now() = %v, want 10m20s", got)
	}
}

func TestClockSet(t *testing.T) {
	c := NewClock()
	c.Advance(time.Hour)
	c.Set(5 * time.Minute)
	if got := c.Now(); got != 5*time.Minute {
		t.Errorf("Now() after Set = %v, want 5m", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := time.Duration(workers*perWorker) * time.Millisecond
	if got := c.Now(); got != want {
		t.Errorf("Now() = %v after concurrent advances, want %v", got, want)
	}
}

func TestLocalHour(t *testing.T) {
	tests := []struct {
		name string
		at   time.Duration
		lon  float64
		want float64
	}{
		{"epoch at greenwich", 0, 0, 0},
		{"noon utc at greenwich", 12 * time.Hour, 0, 12},
		{"epoch at +90 east", 0, 90, 6},
		{"epoch at -90 west", 0, -90, 18},
		{"wraps across days", 30 * time.Hour, 0, 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := localHour(tt.at, tt.lon); got != tt.want {
				t.Errorf("localHour(%v, %v) = %v, want %v", tt.at, tt.lon, got, tt.want)
			}
		})
	}
}
