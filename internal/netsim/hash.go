package netsim

// Deterministic, stateless noise. All time-varying behaviour in the simulator
// (congestion, CDN measurement error, load spikes) is derived by hashing a
// seed together with the entity identifiers and a time bucket. This keeps the
// simulator reproducible bit-for-bit, safe for concurrent use without locks,
// and free of hidden state that would break replaying an experiment.

// splitmix64 is the finalizer from the SplitMix64 generator. It is a strong
// 64-bit mixing function: flipping any input bit flips ~half the output bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix hashes an arbitrary sequence of 64-bit values into one well-mixed
// 64-bit value. Mix() of the same inputs always yields the same output.
func Mix(vs ...uint64) uint64 {
	h := uint64(0x5851f42d4c957f2d)
	for _, v := range vs {
		h = splitmix64(h ^ v)
	}
	return splitmix64(h)
}

// Unit maps a hash to a float in [0, 1).
func Unit(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// UnitAt is shorthand for Unit(Mix(vs...)).
func UnitAt(vs ...uint64) float64 {
	return Unit(Mix(vs...))
}
