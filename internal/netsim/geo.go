package netsim

import "math"

// Coord is a geographic coordinate in decimal degrees.
type Coord struct {
	Lat float64 // latitude, -90..90
	Lon float64 // longitude, -180..180
}

const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle (haversine) distance to o in km.
func (c Coord) DistanceKm(o Coord) float64 {
	lat1 := c.Lat * math.Pi / 180
	lat2 := o.Lat * math.Pi / 180
	dLat := (o.Lat - c.Lat) * math.Pi / 180
	dLon := (o.Lon - c.Lon) * math.Pi / 180

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if a > 1 {
		a = 1
	}
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(a))
}

// clampLat keeps a latitude within the valid range after adding scatter.
func clampLat(lat float64) float64 {
	if lat > 89 {
		return 89
	}
	if lat < -89 {
		return -89
	}
	return lat
}

// wrapLon normalizes a longitude into [-180, 180).
func wrapLon(lon float64) float64 {
	for lon >= 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}
