package netsim

// Region is a rectangular world region with deployment weights. Weights
// control how hosts, CDN replica servers and candidate (PlanetLab-like)
// servers are distributed. The CDN's replica weights intentionally differ
// from the host weights: the paper's evaluation shows CRP degrading exactly
// where Akamai's coverage is thin (New Zealand, Iceland, Russia in their
// data), so the default deployment is dense in North America and Europe and
// sparse elsewhere.
type Region struct {
	Name string

	LatMin, LatMax float64
	LonMin, LonMax float64

	// HostWeight is the fraction of client hosts placed in this region.
	HostWeight float64
	// ReplicaWeight is the fraction of CDN replica servers in this region.
	ReplicaWeight float64
	// CandidateWeight is the fraction of candidate servers in this region.
	CandidateWeight float64
	// Metros is the number of metropolitan areas generated in this region.
	Metros int
}

// DefaultRegions models a six-region world roughly matching mid-2000s
// Internet demographics and Akamai's deployment skew.
func DefaultRegions() []Region {
	return []Region{
		{
			Name:   "north-america",
			LatMin: 25, LatMax: 50, LonMin: -125, LonMax: -70,
			HostWeight: 0.34, ReplicaWeight: 0.42, CandidateWeight: 0.48, Metros: 26,
		},
		{
			Name:   "europe",
			LatMin: 36, LatMax: 60, LonMin: -10, LonMax: 30,
			HostWeight: 0.27, ReplicaWeight: 0.33, CandidateWeight: 0.34, Metros: 22,
		},
		{
			Name:   "asia",
			LatMin: 5, LatMax: 45, LonMin: 60, LonMax: 145,
			HostWeight: 0.20, ReplicaWeight: 0.15, CandidateWeight: 0.10, Metros: 18,
		},
		{
			Name:   "south-america",
			LatMin: -35, LatMax: 5, LonMin: -80, LonMax: -40,
			HostWeight: 0.08, ReplicaWeight: 0.05, CandidateWeight: 0.04, Metros: 9,
		},
		{
			Name:   "oceania",
			LatMin: -45, LatMax: -10, LonMin: 110, LonMax: 180,
			HostWeight: 0.06, ReplicaWeight: 0.03, CandidateWeight: 0.02, Metros: 6,
		},
		{
			Name:   "africa",
			LatMin: -30, LatMax: 35, LonMin: -15, LonMax: 45,
			HostWeight: 0.05, ReplicaWeight: 0.02, CandidateWeight: 0.02, Metros: 6,
		},
	}
}

// Metro is a metropolitan area: a population center where hosts cluster and
// where ISPs (autonomous systems) and CDN points of presence are located.
// Metros give the topology its clusterable structure — hosts in the same
// metro are tens of ms apart, hosts in different metros much farther.
type Metro struct {
	ID     int
	Region string
	Center Coord
	// Weight is the relative probability that a host lands in this metro
	// within its region (Zipf-like: a few large metros, a long tail).
	Weight float64
	// ASNs lists the autonomous systems present in this metro.
	ASNs []ASN
}
