package netsim

import (
	"math"
	"time"
)

// The latency model decomposes an RTT into:
//
//	RTT(a,b,t) = path(a,b) + access(a) + access(b) + congestion(a,t) + congestion(b,t)
//	path(a,b)  = greatCircle(a,b)/100ms * inflation(a,b) + asPenalty(AS(a),AS(b))
//
// where inflation models non-great-circle routing (1.05–1.5x) and asPenalty
// models inter-domain routing indirectness (zero within an AS, heavy-tailed
// across ASes). Congestion is a per-host diurnal sinusoid peaking in the
// host's local evening plus rare hash-derived spikes. A separate Measure
// layer adds observation noise on top, so the "true" RTT used for scoring
// experiments and the noisy RTT seen by measurement subsystems (the CDN's
// monitors, King probes) are cleanly separated, exactly as the paper
// separates ground truth from the signals CRP consumes.

const (
	// kmPerMsRTT converts great-circle km to round-trip milliseconds:
	// light in fiber covers ~200 km per one-way ms, i.e. 100 km per RTT ms.
	kmPerMsRTT = 100.0

	// spikeBucket is the granularity of congestion spikes.
	spikeBucket = 5 * time.Minute
	// congestionBucket quantizes the diurnal curve so repeated measurements
	// within a short interval agree.
	congestionBucket = time.Minute
)

// Hash domains, to decorrelate the independent noise sources.
const (
	domainInflation uint64 = iota + 1
	domainASPenalty
	domainSpike
	domainMeasure
	domainOutlier
)

// BaseRTTMs returns the stable component of the round-trip time between a
// and b in milliseconds: propagation, routing inflation, AS penalty and
// access delays. It is symmetric and zero for a == b.
func (t *Topology) BaseRTTMs(a, b HostID) float64 {
	if a == b {
		return 0
	}
	// Canonicalize the pair so the result is exactly symmetric despite
	// floating-point evaluation order.
	lo, hi := pairOrder(a, b)
	ha, hb := t.Host(lo), t.Host(hi)
	if ha == nil || hb == nil {
		return math.NaN()
	}
	dist := ha.Coord.DistanceKm(hb.Coord)
	inflation := 1.05 + 0.45*UnitAt(t.seed, domainInflation, uint64(lo), uint64(hi))
	prop := dist / kmPerMsRTT * inflation
	return prop + ha.AccessRTTMs + hb.AccessRTTMs + t.asPenaltyMs(ha.ASN, hb.ASN)
}

// asPenaltyMs is the extra latency of crossing between two ASes. It is a
// deterministic function of the unordered AS pair: 55% of pairs peer well
// (<4 ms), 30% pay a moderate transit cost, 15% a heavy one. Same-AS paths
// pay nothing. The heavy tail produces the triangle-inequality violations
// that motivate detouring (the paper's prior work [42]).
func (t *Topology) asPenaltyMs(a, b ASN) float64 {
	if a == b {
		return 0
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	h := Mix(t.seed, domainASPenalty, uint64(lo), uint64(hi))
	class := Unit(h)
	mag := Unit(splitmix64(h))
	switch {
	case class < 0.55:
		return mag * 4
	case class < 0.85:
		return 4 + mag*16
	default:
		return 20 + mag*45
	}
}

// congestionMs returns host h's time-varying queueing delay at virtual time
// at. The diurnal component peaks around 20:00 local time; spikes are rare,
// short and heavy.
func (t *Topology) congestionMs(h *Host, at time.Duration) float64 {
	if h.CongestionAmpMs == 0 {
		return t.spikeMs(h, at)
	}
	at = at.Truncate(congestionBucket)
	// Peak at 20:00 local: sin reaches 1 when localHour == 20.
	phase := 2 * math.Pi * (localHour(at, h.Coord.Lon) - 14) / hoursPerDay
	s := math.Sin(phase)
	if s < 0 {
		s = 0
	}
	return h.CongestionAmpMs*s + t.spikeMs(h, at)
}

// spikeMs returns a transient congestion spike for h during the 5-minute
// bucket containing at (about 1.5% of buckets spike).
func (t *Topology) spikeMs(h *Host, at time.Duration) float64 {
	bucket := uint64(at / spikeBucket)
	hv := Mix(t.seed, domainSpike, uint64(h.ID), bucket)
	if Unit(hv) >= 0.015 {
		return 0
	}
	return 5 + Unit(splitmix64(hv))*60
}

// RTTMs returns the true instantaneous round-trip time between a and b at
// virtual time at, in milliseconds. This is the ground truth experiments
// score against. An installed Perturb contributes per-endpoint extra delay
// and shifts each endpoint's local time-varying state by its clock skew.
func (t *Topology) RTTMs(a, b HostID, at time.Duration) float64 {
	if a == b {
		return 0
	}
	base := t.BaseRTTMs(a, b)
	if math.IsNaN(base) {
		return base
	}
	p := t.perturbOf()
	rtt := base +
		t.congestionMs(t.Host(a), skewedTime(p, a, at)) +
		t.congestionMs(t.Host(b), skewedTime(p, b, at))
	if p != nil {
		rtt += p.ExtraRTTMs(a, at) + p.ExtraRTTMs(b, at)
	}
	return rtt
}

// MeasureRTTMs returns a noisy observation of RTT(a,b) at time at, as a
// measurement subsystem would see it: ±7% multiplicative error plus a 1%
// chance of a gross outlier (a retransmission or an overloaded prober).
// salt decorrelates independent observers — the CDN's monitoring system and
// a King probe measuring the same pair at the same instant see different
// errors.
func (t *Topology) MeasureRTTMs(a, b HostID, at time.Duration, salt uint64) float64 {
	rtt := t.RTTMs(a, b, at)
	if a == b {
		return 0
	}
	if math.IsNaN(rtt) {
		return rtt
	}
	lo, hi := pairOrder(a, b)
	bucket := uint64(at / congestionBucket)
	h := Mix(t.seed, domainMeasure, salt, uint64(lo), uint64(hi), bucket)
	rtt *= 1 + (Unit(h)-0.5)*0.14
	if Unit(Mix(t.seed, domainOutlier, salt, uint64(lo), uint64(hi), bucket)) < 0.01 {
		rtt += 30 + Unit(splitmix64(h))*150
	}
	return rtt
}

func pairOrder(a, b HostID) (HostID, HostID) {
	if a > b {
		return b, a
	}
	return a, b
}
