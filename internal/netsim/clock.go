package netsim

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual clock measuring time since the simulation epoch.
// Experiments that span weeks of probe traffic (the paper's Fig. 8 uses
// 2000-minute probe intervals over a multi-day window) advance the clock
// instead of sleeping. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock positioned at the simulation epoch.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time as an offset from the epoch.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Advancing by a negative duration is a programming error and panics:
// the simulator's deterministic-noise functions assume monotonic time.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		panic(fmt.Sprintf("netsim: Clock.Advance(%v): negative duration", d))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Set positions the clock at an absolute offset from the epoch. Unlike
// Advance it may move time backward; it exists for tests and for replaying
// recorded schedules.
func (c *Clock) Set(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = t
}
