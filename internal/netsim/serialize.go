package netsim

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
)

// Topology serialization: a generated world can be exported to JSON for
// external analysis (plotting host placements, feeding other tools) and
// reloaded without re-running the generator. Loading validates the same
// invariants generation guarantees, so a topology edited by hand (e.g., a
// hand-crafted regression scenario) is checked before use.

type hostJSON struct {
	ID              int     `json:"id"`
	Kind            int     `json:"kind"`
	Name            string  `json:"name"`
	Addr            string  `json:"addr"`
	Lat             float64 `json:"lat"`
	Lon             float64 `json:"lon"`
	ASN             uint32  `json:"asn"`
	Region          string  `json:"region"`
	Metro           int     `json:"metro"`
	AccessRTTMs     float64 `json:"accessRttMs"`
	CongestionAmpMs float64 `json:"congestionAmpMs"`
	LDNS            int     `json:"ldns"`
}

type asJSON struct {
	ASN      uint32   `json:"asn"`
	Region   string   `json:"region"`
	Metros   []int    `json:"metros"`
	Prefixes []string `json:"prefixes"`
}

type metroJSON struct {
	ID     int      `json:"id"`
	Region string   `json:"region"`
	Lat    float64  `json:"lat"`
	Lon    float64  `json:"lon"`
	Weight float64  `json:"weight"`
	ASNs   []uint32 `json:"asns"`
}

type topologyJSON struct {
	Seed   int64       `json:"seed"`
	Metros []metroJSON `json:"metros"`
	ASes   []asJSON    `json:"ases"`
	Hosts  []hostJSON  `json:"hosts"`
}

// WriteJSON serializes the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	out := topologyJSON{Seed: t.params.Seed}
	for _, m := range t.metros {
		asns := make([]uint32, len(m.ASNs))
		for i, a := range m.ASNs {
			asns[i] = uint32(a)
		}
		out.Metros = append(out.Metros, metroJSON{
			ID: m.ID, Region: m.Region, Lat: m.Center.Lat, Lon: m.Center.Lon,
			Weight: m.Weight, ASNs: asns,
		})
	}
	for _, as := range t.ases {
		prefixes := make([]string, len(as.Prefixes))
		for i, p := range as.Prefixes {
			prefixes[i] = p.String()
		}
		out.ASes = append(out.ASes, asJSON{
			ASN: uint32(as.ASN), Region: as.Region, Metros: as.Metros, Prefixes: prefixes,
		})
	}
	for _, h := range t.hosts {
		out.Hosts = append(out.Hosts, hostJSON{
			ID: int(h.ID), Kind: int(h.Kind), Name: h.Name, Addr: h.Addr.String(),
			Lat: h.Coord.Lat, Lon: h.Coord.Lon, ASN: uint32(h.ASN), Region: h.Region,
			Metro: h.Metro, AccessRTTMs: h.AccessRTTMs,
			CongestionAmpMs: h.CongestionAmpMs, LDNS: int(h.LDNS),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// LoadJSON reconstructs a topology from its JSON form, validating host
// numbering, address uniqueness and referential integrity.
func LoadJSON(r io.Reader) (*Topology, error) {
	var in topologyJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("netsim: decode topology: %w", err)
	}

	t := &Topology{
		params: Params{Seed: in.Seed},
		seed:   uint64(in.Seed),
		asByN:  make(map[ASN]*AS, len(in.ASes)),
		byName: make(map[string]HostID, len(in.Hosts)),
		byAddr: make(map[netip.Addr]HostID, len(in.Hosts)),
	}

	for i, m := range in.Metros {
		if m.ID != i {
			return nil, fmt.Errorf("netsim: metro %d out of order (ID %d)", i, m.ID)
		}
		metro := Metro{
			ID: m.ID, Region: m.Region,
			Center: Coord{Lat: m.Lat, Lon: m.Lon}, Weight: m.Weight,
		}
		for _, a := range m.ASNs {
			metro.ASNs = append(metro.ASNs, ASN(a))
		}
		t.metros = append(t.metros, metro)
	}

	for _, a := range in.ASes {
		as := &AS{ASN: ASN(a.ASN), Region: a.Region, Metros: a.Metros}
		for _, ps := range a.Prefixes {
			p, err := netip.ParsePrefix(ps)
			if err != nil {
				return nil, fmt.Errorf("netsim: AS%d prefix %q: %w", a.ASN, ps, err)
			}
			as.Prefixes = append(as.Prefixes, p)
		}
		if _, dup := t.asByN[as.ASN]; dup {
			return nil, fmt.Errorf("netsim: duplicate AS%d", a.ASN)
		}
		for _, mid := range as.Metros {
			if mid < 0 || mid >= len(t.metros) {
				return nil, fmt.Errorf("netsim: AS%d references unknown metro %d", a.ASN, mid)
			}
		}
		t.ases = append(t.ases, as)
		t.asByN[as.ASN] = as
	}

	for i, h := range in.Hosts {
		if h.ID != i {
			return nil, fmt.Errorf("netsim: host %d out of order (ID %d)", i, h.ID)
		}
		addr, err := netip.ParseAddr(h.Addr)
		if err != nil {
			return nil, fmt.Errorf("netsim: host %d addr %q: %w", h.ID, h.Addr, err)
		}
		kind := HostKind(h.Kind)
		switch kind {
		case KindReplica, KindCandidate, KindClient:
		default:
			return nil, fmt.Errorf("netsim: host %d has unknown kind %d", h.ID, h.Kind)
		}
		if _, ok := t.asByN[ASN(h.ASN)]; !ok {
			return nil, fmt.Errorf("netsim: host %d references unknown AS%d", h.ID, h.ASN)
		}
		if h.Metro < 0 || h.Metro >= len(t.metros) {
			return nil, fmt.Errorf("netsim: host %d references unknown metro %d", h.ID, h.Metro)
		}
		if h.LDNS < 0 || h.LDNS >= len(in.Hosts) {
			return nil, fmt.Errorf("netsim: host %d references unknown LDNS %d", h.ID, h.LDNS)
		}
		host := &Host{
			ID: HostID(h.ID), Kind: kind, Name: h.Name, Addr: addr,
			Coord: Coord{Lat: h.Lat, Lon: h.Lon}, ASN: ASN(h.ASN),
			Region: h.Region, Metro: h.Metro,
			AccessRTTMs: h.AccessRTTMs, CongestionAmpMs: h.CongestionAmpMs,
			LDNS: HostID(h.LDNS),
		}
		if _, dup := t.byName[host.Name]; dup {
			return nil, fmt.Errorf("netsim: duplicate host name %q", host.Name)
		}
		if _, dup := t.byAddr[host.Addr]; dup {
			return nil, fmt.Errorf("netsim: duplicate host address %v", host.Addr)
		}
		t.hosts = append(t.hosts, host)
		t.byName[host.Name] = host.ID
		t.byAddr[host.Addr] = host.ID
		switch kind {
		case KindReplica:
			t.replicas = append(t.replicas, host.ID)
		case KindCandidate:
			t.candidates = append(t.candidates, host.ID)
		case KindClient:
			t.clients = append(t.clients, host.ID)
		}
	}
	return t, nil
}
