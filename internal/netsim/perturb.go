package netsim

import (
	"time"
)

// Perturb is an injected perturbation of the latency model: a fault plane
// (or any other controller) that adds per-host delay and per-host clock
// skew on top of the generated topology's behaviour. The topology itself
// stays immutable — a perturbation is consulted, never written through —
// so two topologies generated from the same Params remain identical and a
// perturbed run is reproduced exactly by re-attaching an identical
// perturbation.
//
// Implementations must be deterministic functions of their inputs (and
// safe for concurrent use): the simulator's reproducibility contract
// extends through this hook.
type Perturb interface {
	// ExtraRTTMs is the additional one-host delay (in milliseconds) host h
	// contributes to any RTT evaluated at virtual time at. It is applied
	// once per endpoint, mirroring how congestionMs composes.
	ExtraRTTMs(h HostID, at time.Duration) float64
	// ClockSkew is host h's clock error at virtual time at: the offset
	// between h's local clock and true virtual time. Time-varying state
	// local to h (its diurnal congestion phase) is evaluated at the skewed
	// time, and measurement layers may stamp h's observations with it.
	ClockSkew(h HostID, at time.Duration) time.Duration
}

// perturbBox wraps a Perturb so atomic.Value sees one concrete type even
// when callers install different implementations over the topology's life.
type perturbBox struct{ p Perturb }

// SetPerturb installs (or, with nil, removes) the topology's perturbation.
// Safe to call concurrently with RTT evaluation; the switch is atomic.
func (t *Topology) SetPerturb(p Perturb) {
	t.perturb.Store(perturbBox{p: p})
}

// perturbOf returns the installed perturbation, or nil.
func (t *Topology) perturbOf() Perturb {
	if b, ok := t.perturb.Load().(perturbBox); ok {
		return b.p
	}
	return nil
}

// skewedTime returns virtual time as host h's clock reads it, clamped at
// the epoch so skew cannot produce negative simulation time.
func skewedTime(p Perturb, h HostID, at time.Duration) time.Duration {
	if p == nil {
		return at
	}
	at += p.ClockSkew(h, at)
	if at < 0 {
		return 0
	}
	return at
}
