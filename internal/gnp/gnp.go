// Package gnp implements Global Network Positioning (Ng & Zhang, INFOCOM
// 2002), the landmark-based coordinate embedding the CRP paper cites as the
// root of the absolute-positioning line of work ([30]). A small set of
// landmarks measures pairwise RTTs and solves for coordinates in a
// low-dimensional Euclidean space; every other host then measures the
// landmarks and solves for its own coordinates against theirs. Together
// with Vivaldi (decentralized embedding), Meridian (direct measurement),
// landmark binning (relative positioning) and CRP itself (measurement
// reuse), this completes the four approach families in the paper's related
// work for side-by-side comparison.
package gnp

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/netsim"
)

// Default embedding parameters: the GNP paper finds small dimensionalities
// sufficient and uses Simplex minimization; plain gradient descent with a
// decaying step reaches comparable quality on these scales.
const (
	DefaultDim        = 5
	DefaultIterations = 3000
	initialStep       = 0.05
	saltGNP           = 0x676e70
)

// Config parameterizes an embedding.
type Config struct {
	Topo      *netsim.Topology
	Landmarks []netsim.HostID
	Seed      int64
	Dim       int
	// Iterations is the descent iteration count for each solve.
	Iterations int
	// At is the virtual time measurements are taken.
	At time.Duration
}

// System holds landmark coordinates and embedded hosts.
type System struct {
	cfg       Config
	landmarks []netsim.HostID
	lcoords   [][]float64
	coords    map[netsim.HostID][]float64
}

// New solves the landmark coordinates (phase 1 of GNP) from their pairwise
// measured RTTs.
func New(cfg Config) (*System, error) {
	if cfg.Topo == nil {
		return nil, errors.New("gnp: Config.Topo is required")
	}
	if len(cfg.Landmarks) < 3 {
		return nil, errors.New("gnp: need at least three landmarks")
	}
	if cfg.Dim <= 0 {
		cfg.Dim = DefaultDim
	}
	if cfg.Dim >= len(cfg.Landmarks) {
		return nil, fmt.Errorf("gnp: dimension %d requires more than %d landmarks", cfg.Dim, len(cfg.Landmarks))
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = DefaultIterations
	}
	for _, l := range cfg.Landmarks {
		if cfg.Topo.Host(l) == nil {
			return nil, fmt.Errorf("gnp: unknown landmark %d", l)
		}
	}

	s := &System{
		cfg:       cfg,
		landmarks: append([]netsim.HostID(nil), cfg.Landmarks...),
		coords:    make(map[netsim.HostID][]float64),
	}

	// Landmark-to-landmark measurements.
	n := len(s.landmarks)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = cfg.Topo.MeasureRTTMs(s.landmarks[i], s.landmarks[j], cfg.At, saltGNP+uint64(i))
			}
		}
	}

	// Solve all landmark coordinates jointly by gradient descent on the
	// squared RTT error.
	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), 0x676e70_1))
	s.lcoords = make([][]float64, n)
	for i := range s.lcoords {
		s.lcoords[i] = randomVec(rng, cfg.Dim, 50)
	}
	for it := 0; it < cfg.Iterations; it++ {
		step := initialStep * (1 - float64(it)/float64(cfg.Iterations))
		for i := 0; i < n; i++ {
			grad := make([]float64, cfg.Dim)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				addGradient(grad, s.lcoords[i], s.lcoords[j], d[i][j])
			}
			for k := range grad {
				s.lcoords[i][k] -= step * grad[k]
			}
		}
	}
	for i, l := range s.landmarks {
		s.coords[l] = s.lcoords[i]
	}
	return s, nil
}

// randomVec draws a vector with entries in [-scale, scale).
func randomVec(rng *rand.Rand, dim int, scale float64) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * scale
	}
	return v
}

// addGradient accumulates the gradient of (||x−y|| − target)² w.r.t. x.
func addGradient(grad, x, y []float64, target float64) {
	dist := 0.0
	for k := range x {
		diff := x[k] - y[k]
		dist += diff * diff
	}
	dist = math.Sqrt(dist)
	if dist < 1e-9 {
		return
	}
	coeff := 2 * (dist - target) / dist
	for k := range x {
		grad[k] += coeff * (x[k] - y[k])
	}
}

// Embed solves coordinates for the given hosts (phase 2): each host
// measures the landmarks and descends on its own squared error against the
// fixed landmark coordinates.
func (s *System) Embed(hosts []netsim.HostID) error {
	rng := rand.New(rand.NewPCG(uint64(s.cfg.Seed), 0x676e70_2))
	for _, h := range hosts {
		if s.cfg.Topo.Host(h) == nil {
			return fmt.Errorf("gnp: unknown host %d", h)
		}
		targets := make([]float64, len(s.landmarks))
		for i, l := range s.landmarks {
			targets[i] = s.cfg.Topo.MeasureRTTMs(h, l, s.cfg.At, saltGNP+uint64(100+i))
		}
		x := randomVec(rng, s.cfg.Dim, 50)
		for it := 0; it < s.cfg.Iterations; it++ {
			step := initialStep * (1 - float64(it)/float64(s.cfg.Iterations))
			grad := make([]float64, s.cfg.Dim)
			for i := range s.landmarks {
				addGradient(grad, x, s.lcoords[i], targets[i])
			}
			for k := range grad {
				x[k] -= step * grad[k]
			}
		}
		s.coords[h] = x
	}
	return nil
}

// Coord returns a host's coordinate (copy).
func (s *System) Coord(h netsim.HostID) ([]float64, bool) {
	c, ok := s.coords[h]
	if !ok {
		return nil, false
	}
	out := make([]float64, len(c))
	copy(out, c)
	return out, true
}

// PredictMs predicts RTT(a, b) as the Euclidean coordinate distance.
func (s *System) PredictMs(a, b netsim.HostID) (float64, error) {
	ca, ok := s.coords[a]
	if !ok {
		return 0, fmt.Errorf("gnp: host %d not embedded", a)
	}
	cb, ok := s.coords[b]
	if !ok {
		return 0, fmt.Errorf("gnp: host %d not embedded", b)
	}
	sum := 0.0
	for k := range ca {
		diff := ca[k] - cb[k]
		sum += diff * diff
	}
	return math.Sqrt(sum), nil
}

// SelectClosest returns the candidate with the smallest predicted RTT to
// client, ties broken by ID.
func (s *System) SelectClosest(client netsim.HostID, candidates []netsim.HostID) (netsim.HostID, error) {
	if len(candidates) == 0 {
		return 0, errors.New("gnp: no candidates")
	}
	best, bestD := netsim.HostID(-1), math.Inf(1)
	for _, c := range candidates {
		d, err := s.PredictMs(client, c)
		if err != nil {
			return 0, err
		}
		if d < bestD || (d == bestD && c < best) {
			best, bestD = c, d
		}
	}
	return best, nil
}
