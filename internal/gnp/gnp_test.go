package gnp

import (
	"math"
	"testing"

	"repro/internal/binning"
	"repro/internal/netsim"
)

func testTopology(t *testing.T) *netsim.Topology {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 80
	p.NumCandidates = 40
	p.NumReplicas = 20
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func embeddedSystem(t *testing.T, topo *netsim.Topology) *System {
	t.Helper()
	landmarks, err := binning.ChooseLandmarks(topo, topo.Candidates(), 12)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{Topo: topo, Landmarks: landmarks, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hosts := append(topo.Clients(), topo.Candidates()...)
	if err := sys.Embed(hosts); err != nil {
		t.Fatalf("Embed: %v", err)
	}
	return sys
}

func TestNewValidation(t *testing.T) {
	topo := testTopology(t)
	if _, err := New(Config{Landmarks: topo.Candidates()[:5]}); err == nil {
		t.Error("nil topo should fail")
	}
	if _, err := New(Config{Topo: topo, Landmarks: topo.Candidates()[:2]}); err == nil {
		t.Error("two landmarks should fail")
	}
	if _, err := New(Config{Topo: topo, Landmarks: []netsim.HostID{-1, 2, 3}}); err == nil {
		t.Error("unknown landmark should fail")
	}
	if _, err := New(Config{Topo: topo, Landmarks: topo.Candidates()[:4], Dim: 9}); err == nil {
		t.Error("dim >= landmarks should fail")
	}
}

func TestLandmarkFitQuality(t *testing.T) {
	topo := testTopology(t)
	landmarks, err := binning.ChooseLandmarks(topo, topo.Candidates(), 12)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(Config{Topo: topo, Landmarks: landmarks, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Landmark-pair predictions should approximate the true RTTs: median
	// relative error under 50% (Euclidean embeddings can't be exact on
	// Internet-like latencies, but must capture the broad structure).
	var relErrs []float64
	for i := 0; i < len(landmarks); i++ {
		for j := i + 1; j < len(landmarks); j++ {
			pred, err := sys.PredictMs(landmarks[i], landmarks[j])
			if err != nil {
				t.Fatal(err)
			}
			truth := topo.RTTMs(landmarks[i], landmarks[j], 0)
			if truth > 0 {
				relErrs = append(relErrs, math.Abs(pred-truth)/truth)
			}
		}
	}
	within := 0
	for _, e := range relErrs {
		if e < 0.5 {
			within++
		}
	}
	if frac := float64(within) / float64(len(relErrs)); frac < 0.7 {
		t.Errorf("only %.0f%% of landmark pairs within 50%% relative error", frac*100)
	}
}

func TestEmbedPredictionsOrderPairs(t *testing.T) {
	topo := testTopology(t)
	sys := embeddedSystem(t, topo)
	clients := topo.Clients()

	correct, total := 0, 0
	for i := 0; i+2 < len(clients); i += 3 {
		a, b, c := clients[i], clients[i+1], clients[i+2]
		tb, tc := topo.BaseRTTMs(a, b), topo.BaseRTTMs(a, c)
		if math.Abs(tb-tc) < 25 {
			continue
		}
		pb, err := sys.PredictMs(a, b)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := sys.PredictMs(a, c)
		if err != nil {
			t.Fatal(err)
		}
		if (tb < tc) == (pb < pc) {
			correct++
		}
		total++
	}
	if total == 0 {
		t.Fatal("no informative triples")
	}
	if frac := float64(correct) / float64(total); frac < 0.7 {
		t.Errorf("GNP ordered only %.0f%% of clear triples correctly", frac*100)
	}
}

func TestEmbedErrors(t *testing.T) {
	topo := testTopology(t)
	sys := embeddedSystem(t, topo)
	if err := sys.Embed([]netsim.HostID{-1}); err == nil {
		t.Error("embedding an unknown host should fail")
	}
	if _, err := sys.PredictMs(topo.Clients()[0], netsim.HostID(1<<30)); err == nil {
		t.Error("predicting an unembedded host should fail")
	}
}

func TestCoordCopy(t *testing.T) {
	topo := testTopology(t)
	sys := embeddedSystem(t, topo)
	c, ok := sys.Coord(topo.Clients()[0])
	if !ok || len(c) != DefaultDim {
		t.Fatalf("Coord = %v, %v", c, ok)
	}
	c[0] = 1e9
	c2, _ := sys.Coord(topo.Clients()[0])
	if c2[0] == 1e9 {
		t.Error("Coord exposes internal storage")
	}
	if _, ok := sys.Coord(netsim.HostID(1 << 30)); ok {
		t.Error("Coord of unembedded host reported ok")
	}
}

func TestSelectClosestBeatsRandom(t *testing.T) {
	topo := testTopology(t)
	sys := embeddedSystem(t, topo)
	candidates := topo.Candidates()

	var selSum, randSum float64
	clients := topo.Clients()[:40]
	for i, c := range clients {
		pick, err := sys.SelectClosest(c, candidates)
		if err != nil {
			t.Fatal(err)
		}
		selSum += topo.BaseRTTMs(c, pick)
		randSum += topo.BaseRTTMs(c, candidates[(i*13)%len(candidates)])
	}
	if selSum >= randSum {
		t.Errorf("GNP selection (avg %.1f) no better than random (avg %.1f)",
			selSum/float64(len(clients)), randSum/float64(len(clients)))
	}
	if _, err := sys.SelectClosest(clients[0], nil); err == nil {
		t.Error("no candidates should fail")
	}
}

func TestDeterministic(t *testing.T) {
	topo := testTopology(t)
	landmarks, err := binning.ChooseLandmarks(topo, topo.Candidates(), 10)
	if err != nil {
		t.Fatal(err)
	}
	build := func() *System {
		sys, err := New(Config{Topo: topo, Landmarks: landmarks, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Embed(topo.Clients()[:10]); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a, b := build(), build()
	for _, h := range topo.Clients()[:10] {
		ca, _ := a.Coord(h)
		cb, _ := b.Coord(h)
		for k := range ca {
			if ca[k] != cb[k] {
				t.Fatalf("coordinates differ across identical runs for host %d", h)
			}
		}
	}
}
