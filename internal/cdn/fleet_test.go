package cdn

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

func TestNewFleetValidation(t *testing.T) {
	topo := testTopology(t)
	other := testTopology(t)
	cases := []struct {
		name string
		topo *netsim.Topology
		cfgs []Config
	}{
		{"nil topology", nil, []Config{{Namespace: "a"}}},
		{"no members", topo, nil},
		{"duplicate namespace", topo, []Config{{Namespace: "a"}, {Namespace: "a"}}},
		{"empty namespace in multi-member", topo, []Config{{Namespace: "a"}, {}}},
		{"separator in namespace", topo, []Config{{Namespace: "bad!ns"}}},
		{"oversized namespace", topo, []Config{{Namespace: strings.Repeat("x", 65)}}},
		{"foreign member topology", topo, []Config{{Namespace: "a", Topo: other}}},
	}
	for _, c := range cases {
		if _, err := NewFleet(c.topo, c.cfgs); err == nil {
			t.Errorf("%s: NewFleet accepted", c.name)
		}
	}
	// A single unnamed member is the legacy single-CDN identity and is fine.
	if _, err := NewFleet(topo, []Config{{}}); err != nil {
		t.Fatalf("single unnamed member rejected: %v", err)
	}
}

func TestFleetDirectory(t *testing.T) {
	topo := testTopology(t)
	f, err := NewFleet(topo, []Config{{Namespace: "zeta"}, {Namespace: "alpha"}})
	if err != nil {
		t.Fatal(err)
	}
	// Members keep config order; Namespaces sorts.
	if m := f.Members(); len(m) != 2 || m[0].Namespace() != "zeta" || m[1].Namespace() != "alpha" {
		t.Fatalf("Members out of config order: %v, %v", m[0].Namespace(), m[1].Namespace())
	}
	if ns := f.Namespaces(); len(ns) != 2 || ns[0] != "alpha" || ns[1] != "zeta" {
		t.Fatalf("Namespaces = %v, want sorted", ns)
	}
	if n, ok := f.Get("alpha"); !ok || n.Namespace() != "alpha" {
		t.Fatalf("Get(alpha) = %v, %v", n, ok)
	}
	if _, ok := f.Get("missing"); ok {
		t.Fatal("Get(missing) reported a member")
	}
}

// TestFleetMembersDivergeByNamespace: the namespace salts every noise
// source, so two members with otherwise identical configs redirect the same
// population differently — the independent-signal property the fused kernel
// consumes.
func TestFleetMembersDivergeByNamespace(t *testing.T) {
	topo := testTopology(t)
	f, err := NewFleet(topo, []Config{{Namespace: "cdnA"}, {Namespace: "cdnB"}})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := f.Get("cdnA")
	b, _ := f.Get("cdnB")
	name := DefaultNames[0]
	differ := 0
	for _, c := range topo.Clients()[:40] {
		ra, err := a.Redirect(name, c, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Redirect(name, c, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			differ++
			continue
		}
		for i := range ra {
			if ra[i] != rb[i] {
				differ++
				break
			}
		}
	}
	if differ == 0 {
		t.Fatal("two namespaces produced identical redirections for 40 clients")
	}
}

// TestFleetReplicaFraction: a fractional member deploys on a strict,
// deterministic subset of the topology's replica hosts.
func TestFleetReplicaFraction(t *testing.T) {
	topo := testTopology(t)
	f, err := NewFleet(topo, []Config{
		{Namespace: "full"},
		{Namespace: "sparse", ReplicaFraction: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	full, _ := f.Get("full")
	sparse, _ := f.Get("sparse")
	nf, ns := len(full.Replicas()), len(sparse.Replicas())
	if nf != len(topo.Replicas()) {
		t.Fatalf("full member has %d replicas, topology has %d", nf, len(topo.Replicas()))
	}
	if ns == 0 || ns >= nf {
		t.Fatalf("sparse member has %d replicas of %d; want a proper non-empty subset", ns, nf)
	}
	all := make(map[netsim.HostID]bool, nf)
	for _, r := range full.Replicas() {
		all[r] = true
	}
	for _, r := range sparse.Replicas() {
		if !all[r] {
			t.Fatalf("sparse replica %v is not a topology replica host", r)
		}
	}
	// The deployment gauges export per-member sizes as a summarizable family.
	snap := obs.Default().Snapshot()
	if got := snap.Gauges["cdn.ns.001.replicas"]; got != int64(ns) {
		t.Fatalf("cdn.ns.001.replicas = %d, want %d", got, ns)
	}
}

// TestFleetSetMapHookIsolation: a hook installed on one member fires for
// that member's redirections only, and unknown namespaces are rejected.
func TestFleetSetMapHookIsolation(t *testing.T) {
	topo := testTopology(t)
	f, err := NewFleet(topo, []Config{{Namespace: "cdnA"}, {Namespace: "cdnB"}})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	hook := func(ldns netsim.HostID, at, epochLen time.Duration, epoch uint64) (uint64, time.Duration) {
		calls.Add(1)
		return epoch, time.Duration(epoch) * epochLen
	}
	if err := f.SetMapHook("cdnA", hook); err != nil {
		t.Fatal(err)
	}
	if err := f.SetMapHook("missing", hook); err == nil {
		t.Fatal("SetMapHook on an unknown namespace accepted")
	}

	a, _ := f.Get("cdnA")
	b, _ := f.Get("cdnB")
	c := topo.Clients()[0]
	if _, err := a.Redirect(DefaultNames[0], c, time.Minute); err != nil {
		t.Fatal(err)
	}
	if calls.Load() == 0 {
		t.Fatal("hooked member redirected without consulting its hook")
	}
	before := calls.Load()
	if _, err := b.Redirect(DefaultNames[0], c, time.Minute); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Fatal("sibling member's redirect fired cdnA's hook")
	}
	// Removal restores the unhooked path.
	if err := f.SetMapHook("cdnA", nil); err != nil {
		t.Fatal(err)
	}
	before = calls.Load()
	if _, err := a.Redirect(DefaultNames[0], c, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Fatal("removed hook still fired")
	}
}
