package cdn

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
)

func testTopology(t *testing.T) *netsim.Topology {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 120
	p.NumCandidates = 40
	p.NumReplicas = 100
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func testCDN(t *testing.T, topo *netsim.Topology) *Network {
	t.Helper()
	n, err := New(Config{Topo: topo})
	if err != nil {
		t.Fatalf("cdn.New: %v", err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without topology should fail")
	}
	topo := testTopology(t)
	if _, err := New(Config{Topo: topo, Names: []string{"a.sim.", "a.sim."}}); err == nil {
		t.Error("New with duplicate names should fail")
	}
	p := netsim.DefaultParams()
	p.NumReplicas = 0
	p.NumClients, p.NumCandidates = 10, 5
	empty, err := netsim.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Topo: empty}); err == nil {
		t.Error("New over a topology with no replicas should fail")
	}
}

func TestNewDefaults(t *testing.T) {
	n := testCDN(t, testTopology(t))
	if got := n.TTL(); got != DefaultTTL {
		t.Errorf("TTL = %v, want %v", got, DefaultTTL)
	}
	names := n.Names()
	if len(names) != len(DefaultNames) {
		t.Fatalf("Names = %v, want defaults", names)
	}
}

func TestRedirectBasics(t *testing.T) {
	topo := testTopology(t)
	n := testCDN(t, topo)
	name := n.Names()[0]
	client := topo.Clients()[0]

	got, err := n.Redirect(name, client, 0)
	if err != nil {
		t.Fatalf("Redirect: %v", err)
	}
	if len(got) != DefaultAnswerCount {
		t.Fatalf("Redirect returned %d replicas, want %d", len(got), DefaultAnswerCount)
	}
	for _, id := range got {
		h := topo.Host(id)
		if h == nil || h.Kind != netsim.KindReplica {
			t.Errorf("redirected to non-replica host %v", id)
		}
		if !n.Serves(name, id) {
			t.Errorf("redirected to replica %v that does not serve %q", id, name)
		}
	}
	if got[0] == got[1] {
		t.Error("Redirect returned duplicate replicas")
	}
}

func TestRedirectErrors(t *testing.T) {
	topo := testTopology(t)
	n := testCDN(t, topo)
	if _, err := n.Redirect("nonexistent.sim.", topo.Clients()[0], 0); !errors.Is(err, ErrUnknownName) {
		t.Errorf("Redirect of unknown name: err = %v, want ErrUnknownName", err)
	}
	if _, err := n.Redirect(n.Names()[0], netsim.HostID(-5), 0); err == nil {
		t.Error("Redirect for unknown LDNS should fail")
	}
}

func TestRedirectDeterministicWithinEpoch(t *testing.T) {
	topo := testTopology(t)
	n := testCDN(t, topo)
	name := n.Names()[0]
	client := topo.Clients()[3]
	a, err := n.Redirect(name, client, 65*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Redirect(name, client, 65*time.Second+5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// 65s and 70s are in the same 30s mapping epoch [60s, 90s).
	if a[0] != b[0] || a[1] != b[1] {
		t.Errorf("answers differ within one mapping epoch: %v vs %v", a, b)
	}
}

func TestRedirectChurnsOverTime(t *testing.T) {
	topo := testTopology(t)
	n := testCDN(t, topo)
	name := n.Names()[0]
	client := topo.Clients()[5]
	seen := map[netsim.HostID]bool{}
	for i := 0; i < 40; i++ {
		at := time.Duration(i) * 10 * time.Minute
		got, err := n.Redirect(name, client, at)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range got {
			seen[id] = true
		}
	}
	// The paper observes hosts see a small (<20) but >1 set of frequent
	// replicas over time.
	if len(seen) < 2 {
		t.Errorf("client saw only %d distinct replicas over 40 probes; mapping never churns", len(seen))
	}
	if len(seen) > 25 {
		t.Errorf("client saw %d distinct replicas; redirection set should stay small", len(seen))
	}
}

func TestRedirectPrefersNearbyReplicas(t *testing.T) {
	topo := testTopology(t)
	n := testCDN(t, topo)
	name := n.Names()[0]
	// Average over many clients: the chosen replica should be much closer
	// than the median replica.
	better := 0
	clients := topo.Clients()[:50]
	for _, c := range clients {
		got, err := n.Redirect(name, c, 0)
		if err != nil {
			t.Fatal(err)
		}
		chosen := topo.BaseRTTMs(c, got[0])
		// Compare to a "random" replica (deterministic pick).
		other := n.Replicas()[int(c)%len(n.Replicas())]
		if chosen <= topo.BaseRTTMs(c, other) {
			better++
		}
	}
	if frac := float64(better) / float64(len(clients)); frac < 0.8 {
		t.Errorf("chosen replica beat a random one only %.0f%% of the time", frac*100)
	}
}

func TestNearbyClientsSeeOverlappingReplicas(t *testing.T) {
	// The core CRP hypothesis must hold in the simulator: same-metro clients
	// share redirections; cross-region clients almost never do.
	topo := testTopology(t)
	n := testCDN(t, topo)
	name := n.Names()[0]

	redirectSet := func(c netsim.HostID) map[netsim.HostID]bool {
		set := map[netsim.HostID]bool{}
		for i := 0; i < 12; i++ {
			got, err := n.Redirect(name, c, time.Duration(i)*10*time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range got {
				set[id] = true
			}
		}
		return set
	}
	overlap := func(a, b map[netsim.HostID]bool) int {
		n := 0
		for id := range a {
			if b[id] {
				n++
			}
		}
		return n
	}

	clients := topo.Clients()
	var sameMetroOverlap, crossRegionOverlap, sameMetroPairs, crossRegionPairs int
	sets := map[netsim.HostID]map[netsim.HostID]bool{}
	for _, c := range clients {
		sets[c] = nil
	}
	get := func(c netsim.HostID) map[netsim.HostID]bool {
		if sets[c] == nil {
			sets[c] = redirectSet(c)
		}
		return sets[c]
	}
	for i := 0; i < len(clients) && sameMetroPairs+crossRegionPairs < 400; i++ {
		for j := i + 1; j < len(clients); j++ {
			a, b := topo.Host(clients[i]), topo.Host(clients[j])
			switch {
			case a.Metro == b.Metro:
				sameMetroPairs++
				sameMetroOverlap += overlap(get(a.ID), get(b.ID))
			case a.Region != b.Region && crossRegionPairs < 200:
				crossRegionPairs++
				crossRegionOverlap += overlap(get(a.ID), get(b.ID))
			}
		}
	}
	if sameMetroPairs == 0 || crossRegionPairs == 0 {
		t.Fatal("degenerate test topology")
	}
	sameAvg := float64(sameMetroOverlap) / float64(sameMetroPairs)
	crossAvg := float64(crossRegionOverlap) / float64(crossRegionPairs)
	if sameAvg <= crossAvg*2 {
		t.Errorf("same-metro replica overlap (%.2f) not clearly above cross-region overlap (%.2f)",
			sameAvg, crossAvg)
	}
}

func TestFallbackForUnservedRegions(t *testing.T) {
	topo := testTopology(t)
	// A tiny threshold forces every answer down the fallback path.
	n, err := New(Config{Topo: topo, FallbackThresholdMs: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Redirect(n.Names()[0], topo.Clients()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range got {
		if !n.IsFallback(id) {
			t.Errorf("expected fallback replicas, got %v", id)
		}
	}
}

func TestServesSubsetsPerName(t *testing.T) {
	topo := testTopology(t)
	n := testCDN(t, topo)
	names := n.Names()
	if len(names) < 2 {
		t.Skip("need two names")
	}
	onlyFirst := 0
	for _, r := range n.Replicas() {
		if n.Serves(names[0], r) && !n.Serves(names[1], r) {
			onlyFirst++
		}
	}
	if onlyFirst == 0 {
		t.Error("every replica serves both names; per-name server sets should differ")
	}
	if n.Serves("bogus.sim.", n.Replicas()[0]) {
		t.Error("Serves of unknown name should be false")
	}
}

func TestRedirectConcurrentSafe(t *testing.T) {
	topo := testTopology(t)
	n := testCDN(t, topo)
	name := n.Names()[0]
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				c := topo.Clients()[(w*50+i)%len(topo.Clients())]
				if _, err := n.Redirect(name, c, time.Duration(i)*time.Minute); err != nil {
					t.Errorf("Redirect: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}

func TestGlobalNamesAnswerFallbackOnly(t *testing.T) {
	topo := testTopology(t)
	n, err := New(Config{Topo: topo, GlobalNames: []string{"global.cdn.sim."}})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Names()) != len(DefaultNames)+1 {
		t.Fatalf("Names = %v", n.Names())
	}
	for i, client := range topo.Clients()[:20] {
		got, err := n.Redirect("global.cdn.sim.", client, time.Duration(i)*time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range got {
			if !n.IsFallback(id) {
				t.Fatalf("global name answered non-fallback replica %v", id)
			}
		}
	}
}

func TestGlobalNameDuplicateRejected(t *testing.T) {
	topo := testTopology(t)
	if _, err := New(Config{Topo: topo, GlobalNames: []string{DefaultNames[0]}}); err == nil {
		t.Error("global name duplicating a regular name should fail")
	}
}

func TestRedirectTinyNeighborSet(t *testing.T) {
	// Regression: with a tiny candidate set, the load-spreading walk could
	// step past the end of the ranking when the tail index was already
	// used; it must clamp to the best unused replica instead.
	topo := testTopology(t)
	n, err := New(Config{Topo: topo, NeighborSetSize: 2, AnswerCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	name := n.Names()[0]
	for _, client := range topo.Clients()[:20] {
		for i := 0; i < 200; i++ {
			got, err := n.Redirect(name, client, time.Duration(i)*time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 2 && got[0] == got[1] {
				t.Fatalf("duplicate replicas in answer: %v", got)
			}
		}
	}
}
