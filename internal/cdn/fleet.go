package cdn

import (
	"errors"
	"fmt"
	"sort"
	"unicode/utf8"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Fleet coordinates N independent CDN networks over one topology — the
// multi-CDN substrate. Each member is an ordinary Network with its own
// namespace, seed domain, replica deployment, TTL, epoch length and noise
// profile; the fleet only owns the namespace directory, so everything a
// single Network supports (including the MapHook fault seam) works
// per-member, addressed by namespace: freezing CDN A's mapping leaves CDN B
// flapping on its own schedule.
type Fleet struct {
	members []*Network
	byNS    map[string]*Network
}

// NewFleet builds one Network per config, all over topo. Member configs may
// leave Topo nil (topo is filled in); a non-nil Topo must be topo itself.
// Namespaces must be distinct, and with more than one member every
// namespace must be non-empty — the empty namespace is the single-CDN
// identity and cannot coexist with siblings. Each member's replica
// deployment size is exported as the gauge cdn.ns.NNN.replicas (NNN = the
// member's index), a family obs.SummarizeGaugeFamily can fold.
func NewFleet(topo *netsim.Topology, cfgs []Config) (*Fleet, error) {
	if topo == nil {
		return nil, errors.New("cdn: NewFleet requires a topology")
	}
	if len(cfgs) == 0 {
		return nil, errors.New("cdn: NewFleet requires at least one member config")
	}
	f := &Fleet{byNS: make(map[string]*Network, len(cfgs))}
	for i, cfg := range cfgs {
		if cfg.Topo == nil {
			cfg.Topo = topo
		} else if cfg.Topo != topo {
			return nil, fmt.Errorf("cdn: fleet member %d has a different topology", i)
		}
		if err := validNamespace(cfg.Namespace); err != nil {
			return nil, fmt.Errorf("cdn: fleet member %d: %w", i, err)
		}
		if len(cfgs) > 1 && cfg.Namespace == "" {
			return nil, fmt.Errorf("cdn: fleet member %d has an empty namespace; a multi-CDN fleet needs every member named", i)
		}
		if _, dup := f.byNS[cfg.Namespace]; dup {
			return nil, fmt.Errorf("cdn: duplicate fleet namespace %q", cfg.Namespace)
		}
		n, err := New(cfg)
		if err != nil {
			return nil, fmt.Errorf("cdn: fleet member %q: %w", cfg.Namespace, err)
		}
		f.members = append(f.members, n)
		f.byNS[cfg.Namespace] = n
		obs.Default().Gauge(fmt.Sprintf("cdn.ns.%03d.replicas", i)).Set(int64(len(n.replicas)))
	}
	return f, nil
}

// validNamespace enforces the repo-wide namespace shape (see
// crp.Namespace.Valid — cdn deliberately does not import crp): NUL-free
// UTF-8, at most 64 bytes, no '!' separator.
func validNamespace(ns string) error {
	if ns == "" {
		return nil
	}
	if len(ns) > 64 {
		return fmt.Errorf("namespace is %d bytes, limit 64", len(ns))
	}
	if !utf8.ValidString(ns) {
		return errors.New("namespace is not valid UTF-8")
	}
	for i := 0; i < len(ns); i++ {
		if ns[i] == '!' || ns[i] == 0 {
			return fmt.Errorf("namespace contains forbidden byte %q", ns[i])
		}
	}
	return nil
}

// Namespaces returns the member namespaces in sorted order.
func (f *Fleet) Namespaces() []string {
	out := make([]string, 0, len(f.members))
	for ns := range f.byNS {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// Members returns the member networks in config order.
func (f *Fleet) Members() []*Network {
	return append([]*Network(nil), f.members...)
}

// Get returns the member network for a namespace.
func (f *Fleet) Get(ns string) (*Network, bool) {
	n, ok := f.byNS[ns]
	return n, ok
}

// SetMapHook installs (or removes, with nil) the mapping hook of one
// member, leaving its siblings' hooks untouched.
func (f *Fleet) SetMapHook(ns string, h MapHook) error {
	n, ok := f.byNS[ns]
	if !ok {
		return fmt.Errorf("cdn: no fleet member with namespace %q", ns)
	}
	n.SetMapHook(h)
	return nil
}
