// Package cdn simulates an Akamai-like content distribution network: a set
// of replica servers deployed across the topology's metros, and a DNS-driven
// mapping system that redirects each querying LDNS to the replicas its
// (noisy, drifting) measurements currently rank lowest-latency.
//
// The CRP paper's prior work established that Akamai redirections track
// network conditions and are refreshed on the order of tens of seconds; this
// mapping system reproduces that behaviour: answers change across mapping
// epochs because both the monitoring measurements and per-replica load vary,
// so nearby LDNSes accumulate overlapping — but not identical — replica
// sets, which is exactly the signal CRP consumes.
package cdn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Mapping-decision instruments, registered in the default obs registry:
// how often the mapping system localizes an answer versus handing out the
// global default set (the "owned-domain" answers CRP clients filter).
var metrics = struct {
	redirects *obs.Counter // localized answers from the neighbor set
	fallbacks *obs.Counter // sparse-coverage fallback to the default set
	globals   *obs.Counter // global-name answers (never localized)
}{
	redirects: obs.Default().Counter("cdn.redirects.localized"),
	fallbacks: obs.Default().Counter("cdn.redirects.fallback"),
	globals:   obs.Default().Counter("cdn.redirects.global"),
}

// Hash domains for the CDN's own noise sources.
const (
	domainServes uint64 = 0x6364_0001 + iota
	domainLoad
	domainOverload
	domainMonitor
	domainSlowLoad
	domainSpread
	domainSubset
)

// slowLoadBucket is the timescale of capacity/traffic shifts: replica
// preference drifts over hours, so redirection histories go stale — the
// effect behind the paper's Fig. 8 probe-interval study.
const slowLoadBucket = 4 * time.Hour

// Default configuration values.
const (
	DefaultTTL             = 20 * time.Second
	DefaultMappingEpoch    = 30 * time.Second
	DefaultNeighborSetSize = 30
	DefaultAnswerCount     = 2
	DefaultFallbackMs      = 140.0
)

// DefaultNames are the CDN-accelerated names the paper drove CRP with
// (the Yahoo image server and the Fox News site, both Akamai customers).
var DefaultNames = []string{"us.i1.yimg.cdn.sim.", "www.foxnews.cdn.sim."}

// Config parameterizes the CDN.
type Config struct {
	// Topo is the underlying topology; its replica hosts become this CDN's
	// replica servers. Required.
	Topo *netsim.Topology
	// Names are the CDN-accelerated DNS names. Each replica serves a random
	// ~70% subset of names, so different names expose overlapping but
	// distinct server sets. Defaults to DefaultNames.
	Names []string
	// GlobalNames are CDN names answered exclusively from the global
	// default server set regardless of the querying LDNS — like the
	// Akamai-owned-domain answers the paper's §VI recommends filtering.
	// They carry no positioning information and exist so that adaptive
	// name selection (crp.NameSelector) has something to reject.
	GlobalNames []string
	// TTL is the DNS TTL of answers (Akamai uses 20 s). Defaults to
	// DefaultTTL.
	TTL time.Duration
	// MappingEpoch is how often the mapping system re-evaluates its answers.
	// Defaults to DefaultMappingEpoch.
	MappingEpoch time.Duration
	// NeighborSetSize bounds how many nearby replicas the mapping system
	// considers per LDNS. Defaults to DefaultNeighborSetSize.
	NeighborSetSize int
	// AnswerCount is how many A records each response carries (Akamai
	// returns two). Defaults to DefaultAnswerCount.
	AnswerCount int
	// FallbackThresholdMs: if even the best nearby replica measures worse
	// than this, the CDN answers with its global default servers instead —
	// modelling Akamai's distant "owned-domain" fallback answers that the
	// paper suggests filtering out. Defaults to DefaultFallbackMs.
	FallbackThresholdMs float64

	// Namespace names this CDN when several run over one topology (see
	// Fleet). It doubles as the default seed-domain salt, so two CDNs with
	// otherwise identical configs produce independent deployments, mapping
	// noise and load processes. Empty is the legacy single-CDN identity and
	// changes nothing.
	Namespace string
	// SeedSalt, when non-zero, explicitly salts this CDN's hash-noise seed
	// instead of the Namespace-derived default.
	SeedSalt uint64
	// ReplicaFraction deploys this CDN on a deterministic subset of the
	// topology's replica hosts: each host joins with this probability
	// (seeded by the CDN's salted seed, so different CDNs draw different
	// subsets). 0 or 1 deploys on every host — the legacy behavior. This is
	// the replica-density axis of the fusion evaluation: a sparse CDN has
	// systematically coarser redirection signal (Hillmann-style mirror
	// placement differences).
	ReplicaFraction float64
	// LoadScale multiplies the mapping system's modeled per-replica load
	// (jitter, drift and overload shifts), so CDNs can differ in how noisy
	// their redirection policy is. 0 means 1 (unscaled).
	LoadScale float64
}

// ErrUnknownName is returned for lookups of names the CDN does not serve.
var ErrUnknownName = errors.New("cdn: name not served by this CDN")

// Network is a simulated CDN. It is safe for concurrent use.
type Network struct {
	cfg       Config
	topo      *netsim.Topology
	seed      uint64
	loadScale float64

	names    []string
	nameIdx  map[string]int
	isGlobal map[string]bool
	replicas []netsim.HostID
	// serves[nameIdx][replica index in replicas] reports whether that
	// replica serves the name.
	serves [][]bool
	// fallback[nameIdx] is the global default replica set for the name.
	fallback [][]netsim.HostID

	mu        sync.Mutex
	neighbors map[netsim.HostID][]netsim.HostID

	// mapHook holds the optional MapHook (wrapped in mapHookBox) consulted
	// by Redirect. See SetMapHook.
	mapHook atomic.Value
}

// MapHook lets a fault plane interpose on the mapping system's epoch
// bookkeeping. Redirect calls it with the querying LDNS, the query's
// virtual time, the configured mapping-epoch length and the epoch the
// query falls in; the hook returns the epoch identity and the measurement
// time the mapping computation should use instead. Returning the inputs
// unchanged is a no-op. Two fault shapes fall out naturally:
//
//   - a frozen map (stale answers across the TTL window): return a pinned
//     earlier epoch and that epoch's start time, so ranking reuses the
//     monitoring measurements and load state of the stale instant;
//   - an abrupt re-mapping event (YouLighter-style): return a different
//     epoch identity with the current measurement time, so every draw that
//     keys on the epoch changes at once.
//
// Hooks must be deterministic and safe for concurrent use.
type MapHook func(ldns netsim.HostID, at, epochLen time.Duration, epoch uint64) (uint64, time.Duration)

type mapHookBox struct{ h MapHook }

// SetMapHook installs (or, with nil, removes) the mapping hook.
func (n *Network) SetMapHook(h MapHook) {
	n.mapHook.Store(mapHookBox{h: h})
}

func (n *Network) mapHookOf() MapHook {
	if b, ok := n.mapHook.Load().(mapHookBox); ok {
		return b.h
	}
	return nil
}

// New builds a CDN over the given topology.
func New(cfg Config) (*Network, error) {
	if cfg.Topo == nil {
		return nil, errors.New("cdn: Config.Topo is required")
	}
	if len(cfg.Names) == 0 {
		cfg.Names = DefaultNames
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.MappingEpoch <= 0 {
		cfg.MappingEpoch = DefaultMappingEpoch
	}
	if cfg.NeighborSetSize <= 0 {
		cfg.NeighborSetSize = DefaultNeighborSetSize
	}
	if cfg.AnswerCount <= 0 {
		cfg.AnswerCount = DefaultAnswerCount
	}
	if cfg.FallbackThresholdMs <= 0 {
		cfg.FallbackThresholdMs = DefaultFallbackMs
	}
	if cfg.ReplicaFraction < 0 || cfg.ReplicaFraction > 1 {
		return nil, fmt.Errorf("cdn: ReplicaFraction %v outside [0,1]", cfg.ReplicaFraction)
	}
	if cfg.LoadScale < 0 {
		return nil, fmt.Errorf("cdn: negative LoadScale %v", cfg.LoadScale)
	}

	// The hash-noise seed: the topology seed, salted per CDN so independent
	// networks over one topology draw independent deployments, measurements
	// and load processes. An unsalted config (the single-CDN legacy shape)
	// keeps the bare topology seed, bit for bit.
	seed := uint64(cfg.Topo.Seed())
	switch {
	case cfg.SeedSalt != 0:
		seed ^= cfg.SeedSalt
	case cfg.Namespace != "":
		seed ^= fnv64str(cfg.Namespace)
	}

	replicas := cfg.Topo.Replicas()
	if f := cfg.ReplicaFraction; f > 0 && f < 1 {
		kept := make([]netsim.HostID, 0, len(replicas))
		for _, id := range replicas {
			if netsim.UnitAt(seed, domainSubset, uint64(id)) < f {
				kept = append(kept, id)
			}
		}
		replicas = kept
	}
	if len(replicas) == 0 {
		return nil, errors.New("cdn: topology has no replica hosts (after ReplicaFraction subsetting)")
	}

	n := &Network{
		cfg:       cfg,
		topo:      cfg.Topo,
		seed:      seed,
		loadScale: cfg.LoadScale,
		names:     append([]string(nil), cfg.Names...),
		nameIdx:   make(map[string]int, len(cfg.Names)+len(cfg.GlobalNames)),
		isGlobal:  make(map[string]bool, len(cfg.GlobalNames)),
		replicas:  replicas,
		neighbors: make(map[netsim.HostID][]netsim.HostID),
	}
	if n.loadScale == 0 {
		n.loadScale = 1
	}
	for _, g := range cfg.GlobalNames {
		n.names = append(n.names, g)
		n.isGlobal[g] = true
	}
	for i, name := range n.names {
		if _, dup := n.nameIdx[name]; dup {
			return nil, fmt.Errorf("cdn: duplicate name %q", name)
		}
		n.nameIdx[name] = i
	}

	// Assign each replica the subset of names it serves (~70% per name,
	// deterministic in the topology seed). Every name keeps at least one
	// server per metro where possible by construction of the 70% draw over
	// a large deployment; we additionally force the fallback servers in.
	n.serves = make([][]bool, len(n.names))
	for ni := range n.names {
		row := make([]bool, len(replicas))
		for ri, id := range replicas {
			row[ri] = netsim.UnitAt(n.seed, domainServes, uint64(ni), uint64(id)) < 0.7
		}
		n.serves[ni] = row
	}

	// Fallback servers: the three replicas with the lowest total distance to
	// all candidate servers — a proxy for "well-connected core deployment".
	n.fallback = make([][]netsim.HostID, len(n.names))
	core := n.coreReplicas(3)
	for ni := range n.names {
		n.fallback[ni] = core
		for _, id := range core {
			n.serves[ni][n.replicaIndex(id)] = true
		}
	}
	return n, nil
}

// coreReplicas picks k replicas minimizing summed base RTT to a sample of
// clients: the CDN's "origin-adjacent" deployment used for fallback answers.
func (n *Network) coreReplicas(k int) []netsim.HostID {
	clients := n.topo.Clients()
	if len(clients) > 50 {
		clients = clients[:50]
	}
	if len(clients) == 0 {
		clients = n.replicas[:min(5, len(n.replicas))]
	}
	type scored struct {
		id  netsim.HostID
		sum float64
	}
	all := make([]scored, 0, len(n.replicas))
	for _, r := range n.replicas {
		s := 0.0
		for _, c := range clients {
			s += n.topo.BaseRTTMs(r, c)
		}
		all = append(all, scored{r, s})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].sum < all[j].sum })
	if k > len(all) {
		k = len(all)
	}
	out := make([]netsim.HostID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

func (n *Network) replicaIndex(id netsim.HostID) int {
	for i, r := range n.replicas {
		if r == id {
			return i
		}
	}
	return -1
}

// Namespace returns the CDN's namespace ("" for the legacy single-CDN
// identity).
func (n *Network) Namespace() string { return n.cfg.Namespace }

// fnv64str is FNV-1a over a string, the Namespace-derived seed salt.
func fnv64str(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Names returns the CDN-accelerated names.
func (n *Network) Names() []string {
	return append([]string(nil), n.names...)
}

// TTL returns the DNS TTL the CDN attaches to answers.
func (n *Network) TTL() time.Duration { return n.cfg.TTL }

// Replicas returns the CDN's replica server host IDs.
func (n *Network) Replicas() []netsim.HostID {
	return append([]netsim.HostID(nil), n.replicas...)
}

// Serves reports whether replica id serves the given name.
func (n *Network) Serves(name string, id netsim.HostID) bool {
	ni, ok := n.nameIdx[name]
	if !ok {
		return false
	}
	ri := n.replicaIndex(id)
	return ri >= 0 && n.serves[ni][ri]
}

// FallbackSet returns the global default replica servers for name — the
// answer the CDN hands to resolvers it cannot localize.
func (n *Network) FallbackSet(name string) ([]netsim.HostID, error) {
	ni, ok := n.nameIdx[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	return append([]netsim.HostID(nil), n.fallback[ni]...), nil
}

// IsFallback reports whether id belongs to the global default server set of
// any name — the distant "owned-domain" answers a CRP client may filter.
func (n *Network) IsFallback(id netsim.HostID) bool {
	for _, set := range n.fallback {
		for _, f := range set {
			if f == id {
				return true
			}
		}
	}
	return false
}

// neighborSet returns (computing and caching on first use) the replicas the
// mapping system considers for an LDNS: the NeighborSetSize lowest base-RTT
// replicas.
func (n *Network) neighborSet(ldns netsim.HostID) []netsim.HostID {
	n.mu.Lock()
	defer n.mu.Unlock()
	if set, ok := n.neighbors[ldns]; ok {
		return set
	}
	type scored struct {
		id  netsim.HostID
		rtt float64
	}
	all := make([]scored, len(n.replicas))
	for i, r := range n.replicas {
		all[i] = scored{r, n.topo.BaseRTTMs(ldns, r)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].rtt < all[j].rtt })
	k := n.cfg.NeighborSetSize
	if k > len(all) {
		k = len(all)
	}
	set := make([]netsim.HostID, k)
	for i := 0; i < k; i++ {
		set[i] = all[i].id
	}
	n.neighbors[ldns] = set
	return set
}

// loadMs models per-replica load as seen by the mapping system during one
// epoch: a fast per-epoch jitter, a slow multi-hour drift in effective
// capacity, and occasional overload events that push traffic away from an
// otherwise-closest replica.
func (n *Network) loadMs(replica netsim.HostID, epoch uint64, at time.Duration) float64 {
	base := netsim.UnitAt(n.seed, domainLoad, uint64(replica), epoch) * 8
	base += netsim.UnitAt(n.seed, domainSlowLoad, uint64(replica), uint64(at/slowLoadBucket)) * 14
	if netsim.UnitAt(n.seed, domainOverload, uint64(replica), epoch) < 0.05 {
		base += 30 + netsim.UnitAt(n.seed, domainOverload+1, uint64(replica), epoch)*50
	}
	return base * n.loadScale
}

// Redirect returns the replica servers (AnswerCount of them, best first) the
// CDN's mapping system directs ldns to for name at virtual time at.
// The answer is deterministic within a mapping epoch.
func (n *Network) Redirect(name string, ldns netsim.HostID, at time.Duration) ([]netsim.HostID, error) {
	ni, ok := n.nameIdx[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	if n.topo.Host(ldns) == nil {
		return nil, fmt.Errorf("cdn: unknown LDNS host %d", ldns)
	}
	// Global names are answered from the default server set for everyone.
	if n.isGlobal[name] {
		metrics.globals.Inc()
		out := n.fallback[ni]
		k := min(n.cfg.AnswerCount, len(out))
		return append([]netsim.HostID(nil), out[:k]...), nil
	}

	epoch := uint64(at / n.cfg.MappingEpoch)
	epochStart := time.Duration(epoch) * n.cfg.MappingEpoch
	if hook := n.mapHookOf(); hook != nil {
		epoch, epochStart = hook(ldns, at, n.cfg.MappingEpoch, epoch)
	}

	type scored struct {
		id    netsim.HostID
		score float64
		rtt   float64
	}
	var ranked []scored
	for _, r := range n.neighborSet(ldns) {
		ri := n.replicaIndex(r)
		if !n.serves[ni][ri] {
			continue
		}
		rtt := n.topo.MeasureRTTMs(ldns, r, epochStart, netsim.Mix(domainMonitor, epoch))
		ranked = append(ranked, scored{r, rtt + n.loadMs(r, epoch, epochStart), rtt})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score < ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})

	// Sparse-coverage fallback: if even the best answer is far, hand out the
	// global default servers, as Akamai does for poorly-covered regions.
	if len(ranked) == 0 || ranked[0].rtt > n.cfg.FallbackThresholdMs {
		metrics.fallbacks.Inc()
		out := n.fallback[ni]
		k := min(n.cfg.AnswerCount, len(out))
		return append([]netsim.HostID(nil), out[:k]...), nil
	}

	// Load spreading: rather than always answering with the strict top
	// ranks, each answer slot samples geometrically down the ranking
	// (deterministically per epoch). Real CDNs spread request load this
	// way; for CRP it means nearby-but-not-identical vantage points share
	// some low-frequency replicas, giving cosine similarity its full
	// dynamic range rather than a near/far binary.
	metrics.redirects.Inc()
	k := min(n.cfg.AnswerCount, len(ranked))
	out := make([]netsim.HostID, 0, k)
	used := make(map[int]bool, k)
	for slot := 0; len(out) < k; slot++ {
		idx := 0
		for {
			if used[idx] {
				idx++
				continue
			}
			if idx+1 >= len(ranked) {
				break
			}
			// Advance with probability ~35%, capped so the tail of the
			// neighbor set is never selected.
			if netsim.UnitAt(n.seed, domainSpread, uint64(ldns), epoch, uint64(slot), uint64(idx)) >= 0.35 {
				break
			}
			if idx >= 5 {
				break
			}
			idx++
		}
		if idx >= len(ranked) {
			// The walk skipped a used run at the tail and stepped off the
			// end; fall back to the highest-ranked unused replica. (An
			// unused one always exists: k never exceeds len(ranked).)
			idx = len(ranked) - 1
			for used[idx] {
				idx--
			}
		}
		used[idx] = true
		out = append(out, ranked[idx].id)
	}
	return out, nil
}
