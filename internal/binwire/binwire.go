// Package binwire holds the primitives shared by the repo's compact binary
// wire codecs (the crpd query protocol and the gossip protocol): an
// append-style encoder and a cursor-style decoder over one datagram, in the
// same discipline as internal/dnswire — every read is bounds-checked against
// the buffer before it happens, counts are validated against both a declared
// ceiling and the bytes actually remaining, and a hostile or corrupted
// datagram can only ever produce an error, never an out-of-range access or
// an attacker-sized allocation.
//
// Scalars are unsigned LEB128 varints (signed values zig-zag first); strings
// and byte blobs are length-prefixed; fixed-width words (digest hashes,
// float bits) are big-endian. The message-level formats built on these
// primitives are defined by the owning packages and documented in
// DESIGN.md §9.
package binwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrShort is the uniform truncation error: any read past the end of the
// datagram. Like dnswire's errShortMessage it carries no offset — decoders
// wrap it with field context where that matters.
var ErrShort = errors.New("binwire: message truncated")

// Enc appends wire-format fields to a buffer. The zero value is ready to
// use; Reset lets hot paths reuse the backing array across messages.
type Enc struct {
	buf []byte
}

// Reset empties the encoder, keeping the backing array.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded message. The slice aliases the encoder's
// buffer and is only valid until the next Reset.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the current encoded size.
func (e *Enc) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Enc) U8(v byte) { e.buf = append(e.buf, v) }

// U64 appends a fixed-width big-endian word (digest hashes, float bits —
// values with full-entropy high bits, where a varint would inflate).
func (e *Enc) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// Uvarint appends an unsigned LEB128 varint.
func (e *Enc) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a zig-zag signed varint.
func (e *Enc) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// F64 appends a float64 as its fixed big-endian IEEE 754 bits; the bits
// round-trip exactly, including negative zero.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte blob.
func (e *Enc) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Time appends a wall-clock instant as seconds (zig-zag varint, so the zero
// time's year-1 instant encodes without the int64-nanosecond overflow that
// UnixNano would hit) plus sub-second nanoseconds (uvarint). Monotonic
// clock readings and locations are dropped, exactly as JSON marshaling
// drops them; Dec.Time restores the instant in UTC.
func (e *Enc) Time(t time.Time) {
	e.Varint(t.Unix())
	e.Uvarint(uint64(t.Nanosecond()))
}

// Dec walks one wire-format datagram. Every accessor checks the remaining
// bytes before reading and returns ErrShort (possibly wrapped) rather than
// touching memory past the message.
type Dec struct {
	buf []byte
	off int
}

// NewDec returns a decoder positioned at the start of raw.
func NewDec(raw []byte) *Dec { return &Dec{buf: raw} }

// Remaining returns the undecoded byte count.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Done fails if undecoded bytes remain — trailing garbage after a
// structurally complete message is a malformed datagram, not padding.
func (d *Dec) Done() error {
	if d.off != len(d.buf) {
		return fmt.Errorf("binwire: %d trailing bytes", len(d.buf)-d.off)
	}
	return nil
}

// U8 reads one byte.
func (d *Dec) U8() (byte, error) {
	if d.off+1 > len(d.buf) {
		return 0, ErrShort
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

// U64 reads a fixed-width big-endian word.
func (d *Dec) U64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, ErrShort
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrShort
	}
	d.off += n
	return v, nil
}

// Varint reads a zig-zag signed varint.
func (d *Dec) Varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrShort
	}
	d.off += n
	return v, nil
}

// F64 reads a fixed big-endian float64.
func (d *Dec) F64() (float64, error) {
	bits, err := d.U64()
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// Bool reads a boolean byte; any value other than 0 or 1 is malformed (a
// canonical encoding keeps same-state messages byte-identical).
func (d *Dec) Bool() (bool, error) {
	v, err := d.U8()
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, fmt.Errorf("binwire: boolean byte 0x%02x", v)
	}
	return v == 1, nil
}

// String reads a length-prefixed string of at most max bytes. The length is
// validated against both the ceiling and the remaining buffer before the
// copy, so a hostile length costs an error, not an allocation.
func (d *Dec) String(max int) (string, error) {
	n, err := d.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(max) {
		return "", fmt.Errorf("binwire: string of %d bytes exceeds the %d-byte limit", n, max)
	}
	if int(n) > d.Remaining() {
		return "", ErrShort
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Blob reads a length-prefixed byte blob of at most max bytes into a fresh
// slice, under the same validation order as String.
func (d *Dec) Blob(max int) ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(max) {
		return nil, fmt.Errorf("binwire: blob of %d bytes exceeds the %d-byte limit", n, max)
	}
	if int(n) > d.Remaining() {
		return nil, ErrShort
	}
	b := append([]byte(nil), d.buf[d.off:d.off+int(n)]...)
	d.off += int(n)
	return b, nil
}

// Count reads a collection count bounded by max AND by the bytes actually
// remaining: each element costs at least minElemBytes on the wire, so a
// count the message cannot physically contain is rejected before any
// caller sizes an allocation from it.
func (d *Dec) Count(max, minElemBytes int) (int, error) {
	n, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(max) {
		return 0, fmt.Errorf("binwire: count %d exceeds the limit %d", n, max)
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(d.Remaining()/minElemBytes) {
		return 0, ErrShort
	}
	return int(n), nil
}

// Time reads an instant written by Enc.Time, restored in UTC.
func (d *Dec) Time() (time.Time, error) {
	sec, err := d.Varint()
	if err != nil {
		return time.Time{}, err
	}
	nsec, err := d.Uvarint()
	if err != nil {
		return time.Time{}, err
	}
	if nsec >= 1e9 {
		return time.Time{}, fmt.Errorf("binwire: %d nanoseconds in a sub-second field", nsec)
	}
	return time.Unix(sec, int64(nsec)).UTC(), nil
}

// UvarintLen returns the encoded size of v, for size-budget packers that
// need exact wire costs before committing an element to a message.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// StringLen returns the encoded size of a length-prefixed string.
func StringLen(s string) int { return UvarintLen(uint64(len(s))) + len(s) }

// VarintLen returns the encoded size of a zig-zag signed varint.
func VarintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return UvarintLen(uv)
}

// TimeLen returns the encoded size of an instant.
func TimeLen(t time.Time) int {
	return VarintLen(t.Unix()) + UvarintLen(uint64(t.Nanosecond()))
}
