package binwire

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// TestRoundTrip drives every primitive through an encode/decode cycle and
// requires exact restoration plus a clean Done.
func TestRoundTrip(t *testing.T) {
	at := time.Date(2026, 8, 8, 12, 34, 56, 789123456, time.UTC)
	var e Enc
	e.U8(0xAB)
	e.U64(0xDEADBEEFCAFEF00D)
	e.Uvarint(0)
	e.Uvarint(1 << 60)
	e.Varint(-1 << 40)
	e.F64(math.Copysign(0, -1))
	e.F64(1.5e-300)
	e.Bool(true)
	e.Bool(false)
	e.String("")
	e.String("hello, 世界")
	e.Blob([]byte{0, 1, 2})
	e.Time(at)
	e.Time(time.Time{})

	d := NewDec(e.Bytes())
	if v, err := d.U8(); err != nil || v != 0xAB {
		t.Fatalf("U8 = %x, %v", v, err)
	}
	if v, err := d.U64(); err != nil || v != 0xDEADBEEFCAFEF00D {
		t.Fatalf("U64 = %x, %v", v, err)
	}
	if v, err := d.Uvarint(); err != nil || v != 0 {
		t.Fatalf("Uvarint = %d, %v", v, err)
	}
	if v, err := d.Uvarint(); err != nil || v != 1<<60 {
		t.Fatalf("Uvarint = %d, %v", v, err)
	}
	if v, err := d.Varint(); err != nil || v != -1<<40 {
		t.Fatalf("Varint = %d, %v", v, err)
	}
	if v, err := d.F64(); err != nil || math.Float64bits(v) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("F64 = %v, %v (negative zero must round-trip bit-exactly)", v, err)
	}
	if v, err := d.F64(); err != nil || v != 1.5e-300 {
		t.Fatalf("F64 = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || !v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.String(10); err != nil || v != "" {
		t.Fatalf("String = %q, %v", v, err)
	}
	if v, err := d.String(64); err != nil || v != "hello, 世界" {
		t.Fatalf("String = %q, %v", v, err)
	}
	if v, err := d.Blob(8); err != nil || string(v) != "\x00\x01\x02" {
		t.Fatalf("Blob = %x, %v", v, err)
	}
	if v, err := d.Time(); err != nil || !v.Equal(at) || v.Nanosecond() != at.Nanosecond() {
		t.Fatalf("Time = %v, %v", v, err)
	}
	if v, err := d.Time(); err != nil || !v.Equal(time.Time{}) {
		t.Fatalf("zero Time = %v, %v", v, err)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done = %v", err)
	}
}

// TestTruncation pins that every accessor fails with ErrShort on an empty
// buffer instead of reading past it.
func TestTruncation(t *testing.T) {
	probes := map[string]func(*Dec) error{
		"U8":      func(d *Dec) error { _, err := d.U8(); return err },
		"U64":     func(d *Dec) error { _, err := d.U64(); return err },
		"Uvarint": func(d *Dec) error { _, err := d.Uvarint(); return err },
		"Varint":  func(d *Dec) error { _, err := d.Varint(); return err },
		"F64":     func(d *Dec) error { _, err := d.F64(); return err },
		"Bool":    func(d *Dec) error { _, err := d.Bool(); return err },
		"String":  func(d *Dec) error { _, err := d.String(8); return err },
		"Time":    func(d *Dec) error { _, err := d.Time(); return err },
	}
	for name, probe := range probes {
		if err := probe(NewDec(nil)); !errors.Is(err, ErrShort) {
			t.Fatalf("%s on empty buffer = %v, want ErrShort", name, err)
		}
	}
	// A string length that overruns the remaining bytes must fail before
	// allocating.
	var e Enc
	e.Uvarint(1000)
	e.U8('x')
	if _, err := NewDec(e.Bytes()).String(4096); !errors.Is(err, ErrShort) {
		t.Fatalf("overrunning string length = %v, want ErrShort", err)
	}
}

// TestBounds pins the ceiling checks: string/count limits reject limit+1
// and accept the exact limit.
func TestBounds(t *testing.T) {
	var e Enc
	e.String(strings.Repeat("a", 16))
	if _, err := NewDec(e.Bytes()).String(16); err != nil {
		t.Fatalf("String at limit = %v, want ok", err)
	}
	if _, err := NewDec(e.Bytes()).String(15); err == nil {
		t.Fatal("String over limit accepted")
	}

	e.Reset()
	e.Uvarint(100)
	e.buf = append(e.buf, make([]byte, 100)...)
	if n, err := NewDec(e.Bytes()).Count(100, 1); err != nil || n != 100 {
		t.Fatalf("Count at limit = %d, %v", n, err)
	}
	if _, err := NewDec(e.Bytes()).Count(99, 1); err == nil {
		t.Fatal("Count over limit accepted")
	}
	// A count the message physically cannot contain (each element >= 2
	// bytes, but only 100 bytes remain) fails as truncation.
	if _, err := NewDec(e.Bytes()).Count(100, 2); !errors.Is(err, ErrShort) {
		t.Fatalf("physically impossible count = %v, want ErrShort", err)
	}

	// Non-canonical boolean bytes are malformed.
	if _, err := NewDec([]byte{2}).Bool(); err == nil {
		t.Fatal("Bool accepted 0x02")
	}
	// Sub-second field >= 1e9 is malformed.
	e.Reset()
	e.Varint(0)
	e.Uvarint(1e9)
	if _, err := NewDec(e.Bytes()).Time(); err == nil {
		t.Fatal("Time accepted 1e9 nanoseconds")
	}
}

// TestSizeHelpers pins the exact-size helpers against the encoder: packers
// budget with these, so a drifting helper silently breaks wire bounds.
func TestSizeHelpers(t *testing.T) {
	uvals := []uint64{0, 1, 127, 128, 1 << 20, 1<<64 - 1}
	for _, v := range uvals {
		var e Enc
		e.Uvarint(v)
		if got := UvarintLen(v); got != e.Len() {
			t.Fatalf("UvarintLen(%d) = %d, encoder wrote %d", v, got, e.Len())
		}
	}
	ivals := []int64{0, -1, 1, -64, 64, -1 << 40, 1<<63 - 1, -1 << 63}
	for _, v := range ivals {
		var e Enc
		e.Varint(v)
		if got := VarintLen(v); got != e.Len() {
			t.Fatalf("VarintLen(%d) = %d, encoder wrote %d", v, got, e.Len())
		}
	}
	for _, s := range []string{"", "x", strings.Repeat("y", 300)} {
		var e Enc
		e.String(s)
		if got := StringLen(s); got != e.Len() {
			t.Fatalf("StringLen(%d bytes) = %d, encoder wrote %d", len(s), got, e.Len())
		}
	}
	for _, at := range []time.Time{{}, time.Unix(1_800_000_000, 999_999_999), time.Unix(-5, 1)} {
		var e Enc
		e.Time(at)
		if got := TimeLen(at); got != e.Len() {
			t.Fatalf("TimeLen(%v) = %d, encoder wrote %d", at, got, e.Len())
		}
	}
}
