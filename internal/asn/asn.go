// Package asn provides the ASN-based clustering baseline the CRP paper
// compares against (§V-B): nodes are grouped by the autonomous system that
// originates their address prefix, on the hypothesis that same-AS nodes are
// nearby. The paper derives AS membership from RouteViews BGP data; here the
// prefix table is generated alongside the topology, and lookups use genuine
// longest-prefix matching over prefixes of varying length.
package asn

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"

	"repro/crp"
	"repro/internal/netsim"
)

// Table is an immutable IP→ASN longest-prefix-match table.
type Table struct {
	// byLen maps prefix length → masked address → ASN.
	byLen   map[int]map[uint32]netsim.ASN
	lengths []int // present lengths, descending
	size    int
}

// BuildTable constructs the routing table from a topology's AS prefixes.
func BuildTable(topo *netsim.Topology) (*Table, error) {
	if topo == nil {
		return nil, errors.New("asn: nil topology")
	}
	t := &Table{byLen: make(map[int]map[uint32]netsim.ASN)}
	for _, as := range topo.ASes() {
		for _, pfx := range as.Prefixes {
			if !pfx.Addr().Is4() {
				return nil, fmt.Errorf("asn: non-IPv4 prefix %v", pfx)
			}
			bits := pfx.Bits()
			m, ok := t.byLen[bits]
			if !ok {
				m = make(map[uint32]netsim.ASN)
				t.byLen[bits] = m
			}
			key := maskedKey(pfx.Addr(), bits)
			if prev, dup := m[key]; dup && prev != as.ASN {
				return nil, fmt.Errorf("asn: prefix %v announced by AS%d and AS%d", pfx, prev, as.ASN)
			}
			m[key] = as.ASN
			t.size++
		}
	}
	for bits := range t.byLen {
		t.lengths = append(t.lengths, bits)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(t.lengths)))
	return t, nil
}

// Len returns the number of prefixes in the table.
func (t *Table) Len() int { return t.size }

// Lookup returns the ASN originating the longest matching prefix for addr.
func (t *Table) Lookup(addr netip.Addr) (netsim.ASN, bool) {
	if !addr.Is4() {
		return 0, false
	}
	for _, bits := range t.lengths {
		if as, ok := t.byLen[bits][maskedKey(addr, bits)]; ok {
			return as, true
		}
	}
	return 0, false
}

func maskedKey(addr netip.Addr, bits int) uint32 {
	b := addr.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return v
	}
	return v &^ (1<<(32-bits) - 1)
}

// Clusters groups the given hosts by ASN, resolving each host's AS through
// the routing table (i.e., by its address, as the paper does with
// RouteViews, rather than by trusting any side-channel metadata). Each
// group's center is the member with the lowest total distance to the other
// members. Hosts whose addresses match no prefix become singletons.
// Node IDs in the result are the hosts' DNS names.
func Clusters(topo *netsim.Topology, table *Table, hosts []netsim.HostID, dist func(a, b netsim.HostID) float64) ([]crp.Cluster, error) {
	if topo == nil || table == nil {
		return nil, errors.New("asn: nil topology or table")
	}
	if dist == nil {
		dist = topo.BaseRTTMs
	}
	groups := make(map[netsim.ASN][]netsim.HostID)
	var unrouted []netsim.HostID
	for _, id := range hosts {
		h := topo.Host(id)
		if h == nil {
			return nil, fmt.Errorf("asn: unknown host %d", id)
		}
		if as, ok := table.Lookup(h.Addr); ok {
			groups[as] = append(groups[as], id)
		} else {
			unrouted = append(unrouted, id)
		}
	}

	name := func(id netsim.HostID) crp.NodeID { return crp.NodeID(topo.Host(id).Name) }

	asns := make([]netsim.ASN, 0, len(groups))
	for as := range groups {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	var out []crp.Cluster
	for _, as := range asns {
		members := groups[as]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		center := members[0]
		if len(members) > 2 {
			bestSum := -1.0
			for _, c := range members {
				sum := 0.0
				for _, m := range members {
					if m != c {
						sum += dist(c, m)
					}
				}
				if bestSum < 0 || sum < bestSum {
					center, bestSum = c, sum
				}
			}
		}
		cl := crp.Cluster{Center: name(center)}
		for _, m := range members {
			cl.Members = append(cl.Members, name(m))
		}
		sort.Slice(cl.Members, func(i, j int) bool { return cl.Members[i] < cl.Members[j] })
		out = append(out, cl)
	}
	for _, id := range unrouted {
		out = append(out, crp.Cluster{Center: name(id), Members: []crp.NodeID{name(id)}})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Center < out[j].Center
	})
	return out, nil
}
