// Package asn provides the ASN-based clustering baseline the CRP paper
// compares against (§V-B): nodes are grouped by the autonomous system that
// originates their address prefix, on the hypothesis that same-AS nodes are
// nearby. The paper derives AS membership from RouteViews BGP data; here the
// prefix table is generated alongside the topology, and lookups use genuine
// longest-prefix matching over prefixes of varying length.
//
// Since the aggregation plane arrived (crp/aggregate.go), Lookup is also on
// the per-probe ingest hot path — every keyed client observation resolves
// its prefix — so the table is a flat per-length sorted-array structure
// (binary search per distinct length, longest first) instead of the original
// map-of-maps: no per-call hashing, no pointer chasing, cache-friendly
// probes, and the matched prefix itself is recoverable for aggregation keys.
package asn

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"

	"repro/crp"
	"repro/internal/netsim"
)

// lenClass holds every prefix of one length: masked addresses sorted
// ascending with the originating ASN alongside.
type lenClass struct {
	bits int
	keys []uint32
	asns []netsim.ASN
}

// Table is an immutable IP→ASN longest-prefix-match table.
type Table struct {
	classes []lenClass // distinct prefix lengths, descending (longest first)
	size    int
}

// NewTable builds a table from an explicit prefix→ASN map. It rejects
// non-IPv4 prefixes; duplicate prefixes cannot occur in a map.
func NewTable(routes map[netip.Prefix]netsim.ASN) (*Table, error) {
	byLen := make(map[int]*lenClass)
	t := &Table{}
	for pfx, as := range routes {
		if !pfx.Addr().Is4() {
			return nil, fmt.Errorf("asn: non-IPv4 prefix %v", pfx)
		}
		bits := pfx.Bits()
		c, ok := byLen[bits]
		if !ok {
			c = &lenClass{bits: bits}
			byLen[bits] = c
		}
		c.keys = append(c.keys, maskedKey(pfx.Addr(), bits))
		c.asns = append(c.asns, as)
		t.size++
	}
	for _, c := range byLen {
		sort.Sort(c)
		t.classes = append(t.classes, *c)
	}
	sort.Slice(t.classes, func(i, j int) bool { return t.classes[i].bits > t.classes[j].bits })
	return t, nil
}

func (c *lenClass) Len() int           { return len(c.keys) }
func (c *lenClass) Less(i, j int) bool { return c.keys[i] < c.keys[j] }
func (c *lenClass) Swap(i, j int) {
	c.keys[i], c.keys[j] = c.keys[j], c.keys[i]
	c.asns[i], c.asns[j] = c.asns[j], c.asns[i]
}

// BuildTable constructs the routing table from a topology's AS prefixes.
func BuildTable(topo *netsim.Topology) (*Table, error) {
	if topo == nil {
		return nil, errors.New("asn: nil topology")
	}
	routes := make(map[netip.Prefix]netsim.ASN)
	for _, as := range topo.ASes() {
		for _, pfx := range as.Prefixes {
			if !pfx.Addr().Is4() {
				return nil, fmt.Errorf("asn: non-IPv4 prefix %v", pfx)
			}
			key := netip.PrefixFrom(pfx.Addr(), pfx.Bits()).Masked()
			if prev, dup := routes[key]; dup && prev != as.ASN {
				return nil, fmt.Errorf("asn: prefix %v announced by AS%d and AS%d", pfx, prev, as.ASN)
			}
			routes[key] = as.ASN
		}
	}
	return NewTable(routes)
}

// Len returns the number of prefixes in the table.
func (t *Table) Len() int { return t.size }

// Lookup returns the ASN originating the longest matching prefix for addr.
func (t *Table) Lookup(addr netip.Addr) (netsim.ASN, bool) {
	if !addr.Is4() {
		return 0, false
	}
	b := addr.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	for i := range t.classes {
		c := &t.classes[i]
		if as, ok := c.find(v); ok {
			return as, true
		}
	}
	return 0, false
}

// LookupPrefix is Lookup plus the matched prefix itself — what the
// aggregation plane keys its groups by.
func (t *Table) LookupPrefix(addr netip.Addr) (netip.Prefix, netsim.ASN, bool) {
	if !addr.Is4() {
		return netip.Prefix{}, 0, false
	}
	b := addr.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	for i := range t.classes {
		c := &t.classes[i]
		if as, ok := c.find(v); ok {
			key := v
			if c.bits <= 0 {
				key = 0
			} else if c.bits < 32 {
				key = v &^ (1<<(32-c.bits) - 1)
			}
			a := netip.AddrFrom4([4]byte{byte(key >> 24), byte(key >> 16), byte(key >> 8), byte(key)})
			return netip.PrefixFrom(a, c.bits), as, true
		}
	}
	return netip.Prefix{}, 0, false
}

// find binary-searches the class for the masked form of v.
func (c *lenClass) find(v uint32) (netsim.ASN, bool) {
	key := v
	if c.bits <= 0 {
		key = 0
	} else if c.bits < 32 {
		key = v &^ (1<<(32-c.bits) - 1)
	}
	lo, hi := 0, len(c.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.keys) && c.keys[lo] == key {
		return c.asns[lo], true
	}
	return 0, false
}

// KeyFunc adapts the table to the aggregation plane's KeyOf seam
// (crp.AggregatorConfig): a NodeID that parses as an IPv4 address and
// matches a prefix aggregates under that prefix's canonical string; all
// other IDs are declined and stay per-client. This is the routing-aware
// alternative to crp.PrefixKeyFunc's fixed-granularity masking.
func (t *Table) KeyFunc() func(crp.NodeID) (string, bool) {
	return func(n crp.NodeID) (string, bool) {
		addr, err := netip.ParseAddr(string(n))
		if err != nil {
			return "", false
		}
		pfx, _, ok := t.LookupPrefix(addr)
		if !ok {
			return "", false
		}
		return pfx.String(), true
	}
}

func maskedKey(addr netip.Addr, bits int) uint32 {
	b := addr.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return v
	}
	return v &^ (1<<(32-bits) - 1)
}

// Clusters groups the given hosts by ASN, resolving each host's AS through
// the routing table (i.e., by its address, as the paper does with
// RouteViews, rather than by trusting any side-channel metadata). Each
// group's center is the member with the lowest total distance to the other
// members. Hosts whose addresses match no prefix become singletons.
// Node IDs in the result are the hosts' DNS names.
func Clusters(topo *netsim.Topology, table *Table, hosts []netsim.HostID, dist func(a, b netsim.HostID) float64) ([]crp.Cluster, error) {
	if topo == nil || table == nil {
		return nil, errors.New("asn: nil topology or table")
	}
	if dist == nil {
		dist = topo.BaseRTTMs
	}
	groups := make(map[netsim.ASN][]netsim.HostID)
	var unrouted []netsim.HostID
	for _, id := range hosts {
		h := topo.Host(id)
		if h == nil {
			return nil, fmt.Errorf("asn: unknown host %d", id)
		}
		if as, ok := table.Lookup(h.Addr); ok {
			groups[as] = append(groups[as], id)
		} else {
			unrouted = append(unrouted, id)
		}
	}

	name := func(id netsim.HostID) crp.NodeID { return crp.NodeID(topo.Host(id).Name) }

	asns := make([]netsim.ASN, 0, len(groups))
	for as := range groups {
		asns = append(asns, as)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	var out []crp.Cluster
	for _, as := range asns {
		members := groups[as]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		center := members[0]
		if len(members) > 2 {
			bestSum := -1.0
			for _, c := range members {
				sum := 0.0
				for _, m := range members {
					if m != c {
						sum += dist(c, m)
					}
				}
				if bestSum < 0 || sum < bestSum {
					center, bestSum = c, sum
				}
			}
		}
		cl := crp.Cluster{Center: name(center)}
		for _, m := range members {
			cl.Members = append(cl.Members, name(m))
		}
		sort.Slice(cl.Members, func(i, j int) bool { return cl.Members[i] < cl.Members[j] })
		out = append(out, cl)
	}
	for _, id := range unrouted {
		out = append(out, crp.Cluster{Center: name(id), Members: []crp.NodeID{name(id)}})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Center < out[j].Center
	})
	return out, nil
}
