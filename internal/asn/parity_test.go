package asn

import (
	"math/rand"
	"net/netip"
	"testing"

	"repro/internal/netsim"
)

// refTable is the original map-of-maps lookup structure, preserved here as
// the reference implementation for the parity property test: the flat
// sorted-array Table must agree with it on every lookup, bit for bit. (The
// rewrite exists because walking a map per distinct prefix length per call
// is too slow for the aggregation plane's per-probe hot path.)
type refTable struct {
	byLen   map[int]map[uint32]netsim.ASN
	lengths []int // descending
}

func newRefTable(routes map[netip.Prefix]netsim.ASN) *refTable {
	t := &refTable{byLen: make(map[int]map[uint32]netsim.ASN)}
	for pfx, as := range routes {
		bits := pfx.Bits()
		m, ok := t.byLen[bits]
		if !ok {
			m = make(map[uint32]netsim.ASN)
			t.byLen[bits] = m
			// Insert the new length keeping the slice descending.
			pos := 0
			for pos < len(t.lengths) && t.lengths[pos] > bits {
				pos++
			}
			t.lengths = append(t.lengths, 0)
			copy(t.lengths[pos+1:], t.lengths[pos:])
			t.lengths[pos] = bits
		}
		m[maskedKey(pfx.Addr(), bits)] = as
	}
	return t
}

func (t *refTable) lookup(addr netip.Addr) (netsim.ASN, bool) {
	if !addr.Is4() {
		return 0, false
	}
	for _, bits := range t.lengths {
		if as, ok := t.byLen[bits][maskedKey(addr, bits)]; ok {
			return as, true
		}
	}
	return 0, false
}

// randomRoutes generates a routing table with nested and adjacent prefixes
// across many lengths, including the odd non-octet-aligned ones real BGP
// tables are full of.
func randomRoutes(rng *rand.Rand, n int) map[netip.Prefix]netsim.ASN {
	routes := make(map[netip.Prefix]netsim.ASN, n)
	for len(routes) < n {
		bits := 4 + rng.Intn(29) // 4..32
		v := rng.Uint32()
		if bits < 32 {
			v &^= 1<<(32-bits) - 1
		}
		a := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
		routes[netip.PrefixFrom(a, bits)] = netsim.ASN(1 + rng.Intn(5000))
	}
	return routes
}

// TestLookupParityWithReference pins the flat Table to the reference
// map-of-maps implementation: on random tables, for addresses drawn both
// uniformly and deliberately near prefix boundaries, every (ASN, ok) pair
// must match exactly.
func TestLookupParityWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		routes := randomRoutes(rng, 1+rng.Intn(300))
		flat, err := NewTable(routes)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefTable(routes)

		check := func(addr netip.Addr) {
			t.Helper()
			wantAS, wantOK := ref.lookup(addr)
			gotAS, gotOK := flat.Lookup(addr)
			if gotAS != wantAS || gotOK != wantOK {
				t.Fatalf("round %d: Lookup(%v) = AS%d,%v; reference says AS%d,%v",
					round, addr, gotAS, gotOK, wantAS, wantOK)
			}
			// LookupPrefix must agree with Lookup and return a prefix that
			// actually covers the address and exists in the table.
			pfx, pAS, pOK := flat.LookupPrefix(addr)
			if pOK != wantOK || pAS != wantAS {
				t.Fatalf("round %d: LookupPrefix(%v) = AS%d,%v; want AS%d,%v",
					round, addr, pAS, pOK, wantAS, wantOK)
			}
			if pOK {
				if !pfx.Contains(addr) {
					t.Fatalf("round %d: LookupPrefix(%v) returned non-covering %v", round, addr, pfx)
				}
				if _, exists := routes[pfx]; !exists {
					t.Fatalf("round %d: LookupPrefix(%v) returned %v, not a table entry", round, addr, pfx)
				}
			}
		}

		// Uniform addresses: mostly misses plus the occasional hit.
		for i := 0; i < 200; i++ {
			v := rng.Uint32()
			check(netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}))
		}
		// Boundary addresses: the base, last and one-past-the-end of every
		// prefix, where off-by-one masking bugs live.
		for pfx := range routes {
			base := maskedKey(pfx.Addr(), pfx.Bits())
			span := uint32(0)
			if pfx.Bits() < 32 {
				span = 1<<(32-pfx.Bits()) - 1
			}
			for _, v := range []uint32{base, base + span, base + span + 1, base - 1} {
				check(netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}))
			}
		}
	}
}
