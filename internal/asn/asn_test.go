package asn

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
)

func testTopology(t *testing.T) *netsim.Topology {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 150
	p.NumCandidates = 20
	p.NumReplicas = 30
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func TestBuildTable(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatalf("BuildTable: %v", err)
	}
	if table.Len() == 0 {
		t.Fatal("empty table")
	}
	if _, err := BuildTable(nil); err == nil {
		t.Error("BuildTable(nil) should fail")
	}
}

func TestLookupResolvesEveryHost(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.NumHosts(); i++ {
		h := topo.Host(netsim.HostID(i))
		as, ok := table.Lookup(h.Addr)
		if !ok {
			t.Fatalf("host %v (%v) matched no prefix", h.ID, h.Addr)
		}
		if as != h.ASN {
			t.Fatalf("host %v resolved to AS%d, want AS%d", h.ID, as, h.ASN)
		}
	}
}

func TestLookupMisses(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Lookup(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("address outside 10/8 should miss")
	}
	if _, ok := table.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("IPv6 address should miss")
	}
}

func TestLookupLongestPrefixWins(t *testing.T) {
	// A table with nested prefixes to verify LPM semantics.
	table, err := NewTable(map[netip.Prefix]netsim.ASN{
		netip.MustParsePrefix("10.1.0.0/16"): 100,
		netip.MustParsePrefix("10.1.2.0/24"): 200,
	})
	if err != nil {
		t.Fatal(err)
	}

	if as, ok := table.Lookup(netip.MustParseAddr("10.1.2.7")); !ok || as != 200 {
		t.Errorf("Lookup(10.1.2.7) = %v,%v; want 200 (the /24)", as, ok)
	}
	if as, ok := table.Lookup(netip.MustParseAddr("10.1.9.7")); !ok || as != 100 {
		t.Errorf("Lookup(10.1.9.7) = %v,%v; want 100 (the /16)", as, ok)
	}
}

func TestLookupPrefixReturnsMatch(t *testing.T) {
	table, err := NewTable(map[netip.Prefix]netsim.ASN{
		netip.MustParsePrefix("10.1.0.0/16"): 100,
		netip.MustParsePrefix("10.1.2.0/24"): 200,
		netip.MustParsePrefix("0.0.0.0/0"):   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr string
		pfx  string
		as   netsim.ASN
	}{
		{"10.1.2.7", "10.1.2.0/24", 200},
		{"10.1.9.7", "10.1.0.0/16", 100},
		{"192.0.2.1", "0.0.0.0/0", 7},
	}
	for _, c := range cases {
		pfx, as, ok := table.LookupPrefix(netip.MustParseAddr(c.addr))
		if !ok || pfx.String() != c.pfx || as != c.as {
			t.Errorf("LookupPrefix(%s) = %v, AS%d, %v; want %s, AS%d", c.addr, pfx, as, ok, c.pfx, c.as)
		}
	}
	if _, _, ok := table.LookupPrefix(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("IPv6 address should miss")
	}
}

func TestKeyFuncDeclinesNonAddresses(t *testing.T) {
	table, err := NewTable(map[netip.Prefix]netsim.ASN{
		netip.MustParsePrefix("10.1.0.0/16"): 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	keyOf := table.KeyFunc()
	if key, ok := keyOf("10.1.2.7"); !ok || key != "10.1.0.0/16" {
		t.Errorf("KeyFunc(10.1.2.7) = %q,%v; want 10.1.0.0/16", key, ok)
	}
	if _, ok := keyOf("candidate-007"); ok {
		t.Error("symbolic node ID should be declined")
	}
	if _, ok := keyOf("192.0.2.1"); ok {
		t.Error("address outside the table should be declined")
	}
}

func TestMaskedKey(t *testing.T) {
	a := netip.MustParseAddr("10.1.2.3")
	if got := maskedKey(a, 32); got != 0x0A010203 {
		t.Errorf("/32 key = %08x", got)
	}
	if got := maskedKey(a, 24); got != 0x0A010200 {
		t.Errorf("/24 key = %08x", got)
	}
	if got := maskedKey(a, 8); got != 0x0A000000 {
		t.Errorf("/8 key = %08x", got)
	}
	if got := maskedKey(a, 0); got != 0 {
		t.Errorf("/0 key = %08x", got)
	}
}

func TestClustersGroupByASN(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Clients()
	clusters, err := Clusters(topo, table, hosts, nil)
	if err != nil {
		t.Fatalf("Clusters: %v", err)
	}

	// Every host appears exactly once, and all members of a cluster share
	// an ASN.
	seen := map[string]bool{}
	total := 0
	for _, c := range clusters {
		total += len(c.Members)
		var as netsim.ASN
		for i, m := range c.Members {
			if seen[string(m)] {
				t.Fatalf("node %v in two clusters", m)
			}
			seen[string(m)] = true
			id, ok := topo.HostByName(string(m))
			if !ok {
				t.Fatalf("cluster member %q is not a host name", m)
			}
			if i == 0 {
				as = topo.Host(id).ASN
			} else if topo.Host(id).ASN != as {
				t.Fatalf("cluster %v mixes AS%d and AS%d", c.Center, as, topo.Host(id).ASN)
			}
		}
	}
	if total != len(hosts) {
		t.Errorf("clusters cover %d hosts, want %d", total, len(hosts))
	}
}

func TestClustersCenterMinimizesDistance(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := Clusters(topo, table, topo.Clients(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clusters {
		if len(c.Members) < 3 {
			continue
		}
		sumFrom := func(center string) float64 {
			cid, _ := topo.HostByName(center)
			s := 0.0
			for _, m := range c.Members {
				mid, _ := topo.HostByName(string(m))
				if mid != cid {
					s += topo.BaseRTTMs(cid, mid)
				}
			}
			return s
		}
		centerSum := sumFrom(string(c.Center))
		for _, m := range c.Members {
			if sumFrom(string(m)) < centerSum-1e-9 {
				t.Errorf("cluster %v: member %v beats center", c.Center, m)
			}
		}
		break // one thorough check is enough
	}
}

func TestClustersValidation(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Clusters(nil, table, nil, nil); err == nil {
		t.Error("nil topology should fail")
	}
	if _, err := Clusters(topo, nil, nil, nil); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := Clusters(topo, table, []netsim.HostID{-7}, nil); err == nil {
		t.Error("unknown host should fail")
	}
}

func TestClustersFewerThanCRPWouldFind(t *testing.T) {
	// Structural property from the paper: many co-located nodes sit in
	// different ASes, so ASN clustering leaves most nodes as singletons.
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := Clusters(topo, table, topo.Clients(), nil)
	if err != nil {
		t.Fatal(err)
	}
	clustered := 0
	for _, c := range clusters {
		if len(c.Members) >= 2 {
			clustered += len(c.Members)
		}
	}
	frac := float64(clustered) / float64(len(topo.Clients()))
	if frac > 0.8 {
		t.Errorf("ASN clustering grouped %.0f%% of nodes; expected substantial singleton fraction", frac*100)
	}
}
