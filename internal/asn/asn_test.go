package asn

import (
	"net/netip"
	"testing"

	"repro/internal/netsim"
)

func testTopology(t *testing.T) *netsim.Topology {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 150
	p.NumCandidates = 20
	p.NumReplicas = 30
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func TestBuildTable(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatalf("BuildTable: %v", err)
	}
	if table.Len() == 0 {
		t.Fatal("empty table")
	}
	if _, err := BuildTable(nil); err == nil {
		t.Error("BuildTable(nil) should fail")
	}
}

func TestLookupResolvesEveryHost(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.NumHosts(); i++ {
		h := topo.Host(netsim.HostID(i))
		as, ok := table.Lookup(h.Addr)
		if !ok {
			t.Fatalf("host %v (%v) matched no prefix", h.ID, h.Addr)
		}
		if as != h.ASN {
			t.Fatalf("host %v resolved to AS%d, want AS%d", h.ID, as, h.ASN)
		}
	}
}

func TestLookupMisses(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Lookup(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("address outside 10/8 should miss")
	}
	if _, ok := table.Lookup(netip.MustParseAddr("2001:db8::1")); ok {
		t.Error("IPv6 address should miss")
	}
}

func TestLookupLongestPrefixWins(t *testing.T) {
	// Hand-build a table with nested prefixes to verify LPM semantics.
	table := &Table{byLen: map[int]map[uint32]netsim.ASN{
		16: {maskedKey(netip.MustParseAddr("10.1.0.0"), 16): 100},
		24: {maskedKey(netip.MustParseAddr("10.1.2.0"), 24): 200},
	}, lengths: []int{24, 16}, size: 2}

	if as, ok := table.Lookup(netip.MustParseAddr("10.1.2.7")); !ok || as != 200 {
		t.Errorf("Lookup(10.1.2.7) = %v,%v; want 200 (the /24)", as, ok)
	}
	if as, ok := table.Lookup(netip.MustParseAddr("10.1.9.7")); !ok || as != 100 {
		t.Errorf("Lookup(10.1.9.7) = %v,%v; want 100 (the /16)", as, ok)
	}
}

func TestMaskedKey(t *testing.T) {
	a := netip.MustParseAddr("10.1.2.3")
	if got := maskedKey(a, 32); got != 0x0A010203 {
		t.Errorf("/32 key = %08x", got)
	}
	if got := maskedKey(a, 24); got != 0x0A010200 {
		t.Errorf("/24 key = %08x", got)
	}
	if got := maskedKey(a, 8); got != 0x0A000000 {
		t.Errorf("/8 key = %08x", got)
	}
	if got := maskedKey(a, 0); got != 0 {
		t.Errorf("/0 key = %08x", got)
	}
}

func TestClustersGroupByASN(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Clients()
	clusters, err := Clusters(topo, table, hosts, nil)
	if err != nil {
		t.Fatalf("Clusters: %v", err)
	}

	// Every host appears exactly once, and all members of a cluster share
	// an ASN.
	seen := map[string]bool{}
	total := 0
	for _, c := range clusters {
		total += len(c.Members)
		var as netsim.ASN
		for i, m := range c.Members {
			if seen[string(m)] {
				t.Fatalf("node %v in two clusters", m)
			}
			seen[string(m)] = true
			id, ok := topo.HostByName(string(m))
			if !ok {
				t.Fatalf("cluster member %q is not a host name", m)
			}
			if i == 0 {
				as = topo.Host(id).ASN
			} else if topo.Host(id).ASN != as {
				t.Fatalf("cluster %v mixes AS%d and AS%d", c.Center, as, topo.Host(id).ASN)
			}
		}
	}
	if total != len(hosts) {
		t.Errorf("clusters cover %d hosts, want %d", total, len(hosts))
	}
}

func TestClustersCenterMinimizesDistance(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := Clusters(topo, table, topo.Clients(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clusters {
		if len(c.Members) < 3 {
			continue
		}
		sumFrom := func(center string) float64 {
			cid, _ := topo.HostByName(center)
			s := 0.0
			for _, m := range c.Members {
				mid, _ := topo.HostByName(string(m))
				if mid != cid {
					s += topo.BaseRTTMs(cid, mid)
				}
			}
			return s
		}
		centerSum := sumFrom(string(c.Center))
		for _, m := range c.Members {
			if sumFrom(string(m)) < centerSum-1e-9 {
				t.Errorf("cluster %v: member %v beats center", c.Center, m)
			}
		}
		break // one thorough check is enough
	}
}

func TestClustersValidation(t *testing.T) {
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Clusters(nil, table, nil, nil); err == nil {
		t.Error("nil topology should fail")
	}
	if _, err := Clusters(topo, nil, nil, nil); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := Clusters(topo, table, []netsim.HostID{-7}, nil); err == nil {
		t.Error("unknown host should fail")
	}
}

func TestClustersFewerThanCRPWouldFind(t *testing.T) {
	// Structural property from the paper: many co-located nodes sit in
	// different ASes, so ASN clustering leaves most nodes as singletons.
	topo := testTopology(t)
	table, err := BuildTable(topo)
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := Clusters(topo, table, topo.Clients(), nil)
	if err != nil {
		t.Fatal(err)
	}
	clustered := 0
	for _, c := range clusters {
		if len(c.Members) >= 2 {
			clustered += len(c.Members)
		}
	}
	frac := float64(clustered) / float64(len(topo.Clients()))
	if frac > 0.8 {
		t.Errorf("ASN clustering grouped %.0f%% of nodes; expected substantial singleton fraction", frac*100)
	}
}
