// Package king implements the King latency-estimation technique (Gummadi et
// al., IMW 2002), which the CRP paper uses to collect "ground-truth" RTTs
// between its evaluation hosts. King estimates the RTT between two hosts A
// and B as the difference between (a) a recursive DNS query issued to A's
// nameserver that must be forwarded to B's nameserver and (b) a direct query
// answered by A's nameserver alone. In the paper's methodology the client
// hosts are themselves DNS servers, so the estimate approaches RTT(A, B)
// directly.
package king

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/dnsserver"
	"repro/internal/netsim"
)

// DefaultSamples is how many query pairs an estimate aggregates. King's
// accuracy depends on repeating the measurement and taking a low quantile,
// since queueing can only inflate an RTT sample.
const DefaultSamples = 3

// sampleSpacing separates repeated samples in virtual time so they observe
// independent measurement noise.
const sampleSpacing = 2 * time.Second

// Estimator measures pairwise RTTs with the King technique.
type Estimator struct {
	topo     *netsim.Topology
	recursor *dnsserver.Recursor
	probe    netsim.HostID
	samples  int
}

// New builds an estimator probing from the given measurement host.
func New(topo *netsim.Topology, probe netsim.HostID, samples int) (*Estimator, error) {
	if topo == nil {
		return nil, errors.New("king: nil topology")
	}
	if topo.Host(probe) == nil {
		return nil, fmt.Errorf("king: unknown probe host %d", probe)
	}
	if samples <= 0 {
		samples = DefaultSamples
	}
	return &Estimator{
		topo:     topo,
		recursor: &dnsserver.Recursor{Topo: topo},
		probe:    probe,
		samples:  samples,
	}, nil
}

// EstimateMs estimates RTT(a, b) in milliseconds starting at virtual time
// at. Per King, each sample is (recursive-through-a latency) minus
// (direct-to-a latency), and the estimate is the minimum over samples —
// noise in either leg only ever inflates a sample.
func (e *Estimator) EstimateMs(a, b netsim.HostID, at time.Duration) (float64, error) {
	if a == b {
		return 0, nil
	}
	ests := make([]float64, 0, e.samples)
	for i := 0; i < e.samples; i++ {
		t := at + time.Duration(i)*sampleSpacing
		direct, err := e.recursor.DirectLatencyMs(e.probe, a, t)
		if err != nil {
			return 0, err
		}
		recursive, err := e.recursor.RecursiveLatencyMs(e.probe, a, b, t)
		if err != nil {
			return 0, err
		}
		est := recursive - direct
		if est < 0 {
			est = 0
		}
		ests = append(ests, est)
	}
	sort.Float64s(ests)
	return ests[0], nil
}

// Matrix estimates the full RTT matrix among hosts at virtual time at.
// Entry [i][j] is the estimate between hosts[i] and hosts[j]; the matrix is
// symmetric with a zero diagonal.
func (e *Estimator) Matrix(hosts []netsim.HostID, at time.Duration) ([][]float64, error) {
	n := len(hosts)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			est, err := e.EstimateMs(hosts[i], hosts[j], at)
			if err != nil {
				return nil, err
			}
			m[i][j], m[j][i] = est, est
		}
	}
	return m, nil
}
