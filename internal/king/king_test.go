package king

import (
	"math"
	"testing"

	"repro/internal/netsim"
)

func testTopology(t *testing.T) *netsim.Topology {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 80
	p.NumCandidates = 20
	p.NumReplicas = 40
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func TestNewValidation(t *testing.T) {
	topo := testTopology(t)
	if _, err := New(nil, 0, 0); err == nil {
		t.Error("New(nil topo) should fail")
	}
	if _, err := New(topo, -1, 0); err == nil {
		t.Error("New with bad probe should fail")
	}
	if _, err := New(topo, topo.Candidates()[0], 0); err != nil {
		t.Errorf("New with default samples: %v", err)
	}
}

func TestEstimateSelfIsZero(t *testing.T) {
	topo := testTopology(t)
	e, err := New(topo, topo.Candidates()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EstimateMs(topo.Clients()[0], topo.Clients()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("self estimate = %v, want 0", got)
	}
}

func TestEstimateTracksTruth(t *testing.T) {
	topo := testTopology(t)
	e, err := New(topo, topo.Candidates()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	clients := topo.Clients()
	// Across many pairs, the median relative error of King estimates must be
	// modest — the paper treats King as usable ground truth.
	var relErrs []float64
	for i := 0; i < 40; i++ {
		a, b := clients[i], clients[(i+17)%len(clients)]
		if a == b {
			continue
		}
		est, err := e.EstimateMs(a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		truth := topo.RTTMs(a, b, 0)
		if truth <= 0 {
			continue
		}
		relErrs = append(relErrs, math.Abs(est-truth)/truth)
	}
	if len(relErrs) == 0 {
		t.Fatal("no pairs measured")
	}
	n := 0
	for _, r := range relErrs {
		if r < 0.25 {
			n++
		}
	}
	if frac := float64(n) / float64(len(relErrs)); frac < 0.7 {
		t.Errorf("only %.0f%% of King estimates within 25%% of truth", frac*100)
	}
}

func TestEstimateNonNegative(t *testing.T) {
	topo := testTopology(t)
	e, err := New(topo, topo.Candidates()[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		est, err := e.EstimateMs(topo.Clients()[i], topo.Clients()[i+30], 0)
		if err != nil {
			t.Fatal(err)
		}
		if est < 0 {
			t.Errorf("negative estimate %v", est)
		}
	}
}

func TestEstimateErrorsOnUnknownHosts(t *testing.T) {
	topo := testTopology(t)
	e, err := New(topo, topo.Candidates()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EstimateMs(-1, topo.Clients()[0], 0); err == nil {
		t.Error("EstimateMs with bad host should fail")
	}
	if _, err := e.EstimateMs(topo.Clients()[0], netsim.HostID(1<<30), 0); err == nil {
		t.Error("EstimateMs with bad host should fail")
	}
}

func TestMatrixSymmetricZeroDiagonal(t *testing.T) {
	topo := testTopology(t)
	e, err := New(topo, topo.Candidates()[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Clients()[:10]
	m, err := e.Matrix(hosts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != len(hosts) {
		t.Fatalf("matrix has %d rows, want %d", len(m), len(hosts))
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %v, want 0", i, i, m[i][i])
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetric at [%d][%d]: %v vs %v", i, j, m[i][j], m[j][i])
			}
			if i != j && m[i][j] <= 0 {
				t.Errorf("matrix [%d][%d] = %v, want > 0", i, j, m[i][j])
			}
		}
	}
}
