package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// memPlanJSON is a full-featured mem-transport plan: providers, a plain
// client group, a prefix-structured group feeding the aggregation plane off
// (prefix identities work without aggregation too), a gossip fault, and
// every deterministic gate the envelope offers.
const memPlanJSON = `{
  "name": "unit-mem",
  "seed": 99,
  "transport": "mem",
  "daemons": 3,
  "duration": "20s",
  "groups": [
    {"name": "origin", "kind": "providers", "size": 36, "home": 0, "probes": 4, "metros": 6},
    {"name": "web", "kind": "clients", "size": 30, "home": 0,
     "arrival": {"process": "constant", "rate": 12},
     "ops": {"observe": 0.5, "closest": 0.2, "topk": 0.1, "similarity": 0.2}},
    {"name": "edge", "kind": "bystanders", "size": 20, "home": 1, "prefix": "10.40.0.0/24", "codec": "binary",
     "arrival": {"process": "flash", "rate": 4, "spikes": [{"at": "5s", "width": "5s", "factor": 3}]},
     "ops": {"observe": 1}}
  ],
  "faults": {"seed": 5, "faults": [{"kind": "pkt-loss", "rate": 0.05, "target": "gossip"}]},
  "envelope": {"maxErrorRate": 0, "minCompleted": 100, "maxRateError": 0.25,
               "requireConverged": true, "maxConvergeRounds": 50, "requireSnapshotMatch": true}
}`

func decodeTestPlan(t *testing.T, raw string) *Plan {
	t.Helper()
	p, err := DecodePlan([]byte(raw))
	if err != nil {
		t.Fatalf("decode plan: %v", err)
	}
	return p
}

// TestScenarioMemDeterministic runs the mem plan twice and demands
// byte-identical Det slices — the property the CI rerun gate builds on —
// plus passing verdicts and exported scenario.group.* counters.
func TestScenarioMemDeterministic(t *testing.T) {
	runOnce := func() (*Report, []byte) {
		rep, err := Run(decodeTestPlan(t, memPlanJSON), Options{Registry: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		det, err := json.MarshalIndent(rep.Det, "", "  ")
		if err != nil {
			t.Fatalf("marshal det: %v", err)
		}
		return rep, det
	}
	rep1, det1 := runOnce()
	_, det2 := runOnce()

	if !bytes.Equal(det1, det2) {
		t.Fatalf("same-seed det reports differ:\n--- run1\n%s\n--- run2\n%s", det1, det2)
	}
	if !rep1.AllPass() {
		t.Fatalf("envelope gates failed: %+v\ndet: %s", rep1.FailedGates(), det1)
	}
	if !rep1.Det.Converged || !rep1.Det.SnapshotMatch {
		t.Fatalf("mesh fidelity not established: converged=%v snapshotMatch=%v",
			rep1.Det.Converged, rep1.Det.SnapshotMatch)
	}
	if rep1.Det.Activations["pkt-loss"] == 0 {
		t.Fatal("gossip fault declared but never activated")
	}
	if rep1.Stats == nil {
		t.Fatal("no stats snapshot in the report")
	}
	for _, g := range []string{"origin", "web", "edge"} {
		if rep1.Stats.Counters["scenario.group."+g+".offered"] == 0 {
			t.Errorf("scenario.group.%s.offered missing from the stats-op export", g)
		}
	}
	// Offered counts must reconcile: providers seed size*probes, driven
	// groups realize their Poisson schedules.
	if got := rep1.Det.Groups[0].Offered; got != 36*4 {
		t.Errorf("provider offered = %d, want %d", got, 36*4)
	}
}

// TestScenarioSingleDaemon: a daemons=1 plan runs without a gossip plane
// and converges trivially.
func TestScenarioSingleDaemon(t *testing.T) {
	const plan = `{
	  "name": "unit-single", "seed": 3, "daemons": 1, "duration": "5s",
	  "groups": [
	    {"name": "pro", "kind": "providers", "size": 12, "home": 0, "probes": 3},
	    {"name": "cli", "kind": "clients", "size": 8,
	     "arrival": {"process": "constant", "rate": 6},
	     "ops": {"observe": 0.4, "closest": 0.3, "cluster": 0.3}}
	  ],
	  "envelope": {"maxErrorRate": 0, "requireConverged": true}
	}`
	rep, err := Run(decodeTestPlan(t, plan), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.AllPass() {
		t.Fatalf("gates failed: %+v", rep.FailedGates())
	}
	if !rep.Det.Converged {
		t.Fatal("single daemon must converge trivially")
	}
}

// TestScenarioNSScopedGroup: an ns-scoped observe-only group must drive
// namespaced replicas through the daemon without errors.
func TestScenarioNSScopedGroup(t *testing.T) {
	const plan = `{
	  "name": "unit-ns", "seed": 21, "daemons": 1, "duration": "5s",
	  "groups": [
	    {"name": "cdn-b", "kind": "clients", "size": 10, "ns": "cdnb",
	     "arrival": {"process": "mobile", "rate": 8, "churnRate": 0.3, "period": "2s"},
	     "ops": {"observe": 1}}
	  ],
	  "envelope": {"maxErrorRate": 0, "minCompleted": 20}
	}`
	rep, err := Run(decodeTestPlan(t, plan), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.AllPass() {
		t.Fatalf("gates failed: %+v", rep.FailedGates())
	}
	if rep.Det.Groups[0].Errored != 0 {
		t.Fatalf("%d ns-scoped observes errored", rep.Det.Groups[0].Errored)
	}
}

// TestScenarioAggregationPlane: prefix-structured clients with
// aggregateBits on must aggregate (fewer tracked nodes than offered
// identities) and still serve queries.
func TestScenarioAggregationPlane(t *testing.T) {
	const plan = `{
	  "name": "unit-agg", "seed": 31, "daemons": 1, "duration": "8s", "aggregateBits": 24,
	  "groups": [
	    {"name": "origin", "kind": "providers", "size": 12, "home": 0, "probes": 3},
	    {"name": "homes", "kind": "clients", "size": 200, "prefix": "10.50.0.0/24",
	     "arrival": {"process": "constant", "rate": 40},
	     "ops": {"observe": 0.8, "closest": 0.2}}
	  ],
	  "envelope": {"maxErrorRate": 0}
	}`
	rep, err := Run(decodeTestPlan(t, plan), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.AllPass() {
		t.Fatalf("gates failed: %+v", rep.FailedGates())
	}
}

// TestCheckedInPlansDecode pins the two shipped plans: they must decode,
// validate, and declare the envelope gates their legacy counterparts
// enforce.
func TestCheckedInPlansDecode(t *testing.T) {
	cases := map[string]func(t *testing.T, p *Plan){
		"gossip_converge.json": func(t *testing.T, p *Plan) {
			if p.Transport != TransportMem || !p.Envelope.RequireSnapshotMatch || p.Envelope.MaxConvergeRounds != 50 {
				t.Errorf("gossip plan lost its legacy gates: %+v", p.Envelope)
			}
		},
		"crpd_stress.json": func(t *testing.T, p *Plan) {
			if p.Transport != TransportUDP || p.Envelope.MaxErrorRate == nil || p.Envelope.MinCompleted == 0 {
				t.Errorf("crpd plan lost its legacy gates: %+v", p.Envelope)
			}
		},
	}
	for name, check := range cases {
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("..", "..", "scenarios", name))
			if err != nil {
				t.Fatalf("read checked-in plan: %v", err)
			}
			p, err := DecodePlan(raw)
			if err != nil {
				t.Fatalf("checked-in plan invalid: %v", err)
			}
			check(t, p)
		})
	}
}

// udpSmokeJSON is the end-to-end regression: 3 real daemons on loopback
// UDP, gossip engines started, one provider and two driven groups (one
// binary-codec), ~4s of paced load.
const udpSmokeJSON = `{
  "name": "udp-smoke",
  "seed": 1234,
  "transport": "udp",
  "daemons": 3,
  "duration": "3s",
  "groups": [
    {"name": "origin", "kind": "providers", "size": 24, "home": 0, "probes": 3, "metros": 4},
    {"name": "web", "kind": "clients", "size": 16, "home": 0,
     "arrival": {"process": "constant", "rate": 30},
     "ops": {"observe": 0.5, "closest": 0.3, "similarity": 0.2}},
    {"name": "bin", "kind": "clients", "size": 8, "home": 1, "codec": "binary",
     "arrival": {"process": "constant", "rate": 15},
     "ops": {"observe": 0.7, "topk": 0.3}}
  ],
  "envelope": {"maxErrorRate": 0, "minCompleted": 30, "maxRateError": 0.5, "requireConverged": true}
}`

// TestScenarioUDPSmokeThreeDaemons is the CI smoke: convergence, verdicts,
// counter export and det-report rerun identity over real sockets.
func TestScenarioUDPSmokeThreeDaemons(t *testing.T) {
	if testing.Short() {
		t.Skip("paced real-UDP run")
	}
	runOnce := func() (*Report, []byte) {
		rep, err := Run(decodeTestPlan(t, udpSmokeJSON), Options{Registry: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		det, err := json.MarshalIndent(rep.Det, "", "  ")
		if err != nil {
			t.Fatalf("marshal det: %v", err)
		}
		return rep, det
	}
	rep, det1 := runOnce()

	if !rep.Det.Converged {
		t.Fatal("3-daemon UDP mesh did not converge")
	}
	if !rep.AllPass() {
		t.Fatalf("envelope gates failed: %+v\ndet: %s", rep.FailedGates(), det1)
	}
	if rep.Stats == nil {
		t.Fatal("no stats snapshot came back over the wire")
	}
	for _, g := range []string{"origin", "web", "bin"} {
		if rep.Stats.Counters["scenario.group."+g+".offered"] == 0 {
			t.Errorf("scenario.group.%s.offered missing from the wire stats export", g)
		}
	}
	for _, gd := range rep.Det.Groups {
		if gd.Offered == 0 || gd.Completed == 0 {
			t.Errorf("group %s drove no traffic: %+v", gd.Name, gd)
		}
	}

	_, det2 := runOnce()
	if !bytes.Equal(det1, det2) {
		t.Fatalf("same-seed UDP det reports differ:\n--- run1\n%s\n--- run2\n%s", det1, det2)
	}
}

// TestScenarioDriftBlock runs a plan carrying the drift block: the runner
// must tick the detector on the declared cadence, report the frame count
// and event list in the Det slice, and evaluate the drift-events gate. A
// stationary constant-rate workload must not look like a CDN remap.
func TestScenarioDriftBlock(t *testing.T) {
	const planJSON = `{
	  "name": "unit-drift",
	  "seed": 311,
	  "transport": "mem",
	  "daemons": 1,
	  "duration": "24s",
	  "drift": {"every": 4},
	  "groups": [
	    {"name": "web", "kind": "clients", "size": 30, "home": 0, "ns": "cdnA",
	     "arrival": {"process": "constant", "rate": 20},
	     "ops": {"observe": 0.8, "closest": 0.2}}
	  ],
	  "envelope": {"maxErrorRate": 0, "maxDriftEvents": 0}
	}`
	rep, err := Run(decodeTestPlan(t, planJSON), Options{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Det.DriftFrames != 6 {
		t.Fatalf("DriftFrames = %d, want 24 ticks / every 4 = 6", rep.Det.DriftFrames)
	}
	if len(rep.Det.DriftEvents) != 0 {
		t.Fatalf("stationary workload fired drift events: %+v", rep.Det.DriftEvents)
	}
	found := false
	for _, v := range rep.Det.Verdicts {
		if v.Gate == "drift-events" {
			found = true
			if !v.Pass {
				t.Fatalf("drift-events gate failed: %s", v.Detail)
			}
		}
	}
	if !found {
		t.Fatal("no drift-events verdict in the det report")
	}
}
