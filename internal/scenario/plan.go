// Package scenario is the declarative load harness for the daemon mesh.
//
// Every workload the repo evaluated before this package existed was a
// bespoke Go loop inside cmd/crpbench; adding a scenario meant writing
// driver code. A scenario here is *data*: a JSON plan declaring node groups
// (clients, providers, bystanders — optionally prefix-structured so their
// observations feed the aggregation plane), per-group arrival processes
// (constant, diurnal, flash-crowd, mobile-with-LDNS-churn), per-group op
// mixes over the daemon protocol (observe / closest / topk / similarity /
// cluster, JSON or binary codec, optional ns scoping), a fault schedule
// reusing internal/faults.Scenario verbatim on the gossip links, and an
// Envelope of pass/fail gates. The runner stands up a real multi-daemon
// gossip mesh — deterministically in memory on the seeded virtual clock, or
// over real UDP sockets — and drives it at the declared rates.
//
// Determinism contract: everything the virtual clock and the seed control —
// arrival counts, op choices, identities, and on the mem transport the
// entire mesh execution — is a pure function of the plan, so the report's
// Det slice is byte-identical across same-seed reruns and CI gates on it.
// Wall-clock measurements (latency percentiles, achieved QPS) live in the
// Timing slice, which is never part of that gate.
package scenario

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/crp"
	"repro/internal/faults"
)

// Group kinds.
const (
	// KindClients is a driven population whose ops count toward every
	// envelope gate.
	KindClients = "clients"
	// KindProviders is a seeded population: its nodes are observed into the
	// mesh before the clock starts and become the query-target pool for
	// driven groups on the same daemon. Providers take no arrival process.
	KindProviders = "providers"
	// KindBystanders is background load: driven like clients, metered like
	// clients, but exempt from the min-completed and latency gates.
	KindBystanders = "bystanders"
)

// Transports.
const (
	// TransportMem runs the mesh on the in-memory packet fabric with a
	// single-threaded pump and the virtual clock: fully deterministic,
	// including convergence rounds and snapshot bytes.
	TransportMem = "mem"
	// TransportUDP runs real daemons and gossip engines on loopback UDP
	// sockets with concurrent client workers: offered/completed counts stay
	// deterministic, timing and convergence latency do not.
	TransportUDP = "udp"
)

// Arrival process names.
const (
	ProcessConstant = "constant"
	ProcessDiurnal  = "diurnal"
	ProcessFlash    = "flash"
	ProcessMobile   = "mobile"
)

// Ops a group mix may weight. "closest" is a K=1 nearest query, "topk" the
// K=8 ranking, "cluster" the heavy SMF distinct-clusters query.
var planOps = map[string]bool{
	"observe": true, "closest": true, "topk": true,
	"similarity": true, "cluster": true,
}

// PlanError is a structured decode/validation failure naming the offending
// field, so a malformed plan points at exactly what to fix.
type PlanError struct {
	Field string
	Msg   string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("scenario: %s: %s", e.Field, e.Msg)
}

func planErr(field, format string, args ...any) error {
	return &PlanError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Spike is one flash-crowd burst: the group's base rate is multiplied by
// Factor while the virtual clock is inside [At, At+Width).
type Spike struct {
	At     faults.Duration `json:"at"`
	Width  faults.Duration `json:"width"`
	Factor float64         `json:"factor"`
}

// Arrival declares a driven group's arrival process on the virtual clock.
// Rates are ops per virtual second; every draw is a seeded hash, so the
// per-tick arrival sequence is a pure function of (plan seed, group).
type Arrival struct {
	// Process is one of constant, diurnal, flash, mobile.
	Process string `json:"process"`
	// Rate is the base rate (constant, flash, mobile), ops/second.
	Rate float64 `json:"rate,omitempty"`
	// Peak and Trough bound the diurnal sinusoid; the cycle starts at the
	// trough and peaks at Period/2.
	Peak   float64 `json:"peak,omitempty"`
	Trough float64 `json:"trough,omitempty"`
	// Period is the diurnal cycle length (default 24h), and for mobile the
	// LDNS re-home interval (default 1m).
	Period faults.Duration `json:"period,omitempty"`
	// Spikes are the flash-crowd bursts; windows must not overlap.
	Spikes []Spike `json:"spikes,omitempty"`
	// ChurnRate is the mobile per-member probability of re-homing onto a
	// different LDNS identity at each period boundary.
	ChurnRate float64 `json:"churnRate,omitempty"`
	// LDNSPool is the mobile group's distinct LDNS identity count
	// (default max(2, size/4)).
	LDNSPool int `json:"ldnsPool,omitempty"`
}

// Group declares one node population.
type Group struct {
	// Name keys the group's scenario.group.<name>.* metrics. Required;
	// lowercase [a-z0-9-], at most 32 bytes, unique within the plan.
	Name string `json:"name"`
	// Kind is clients, providers or bystanders.
	Kind string `json:"kind"`
	// Size is the member population.
	Size int `json:"size"`
	// Home is the daemon index the group's traffic lands on.
	Home int `json:"home"`
	// Prefix, when set, is an IPv4 CIDR the member identities are drawn
	// from (dotted-quad node IDs), so the population is prefix-structured
	// and — with the plan's aggregateBits — feeds the aggregation plane.
	Prefix string `json:"prefix,omitempty"`
	// NS scopes the group's observations and queries to one CDN namespace.
	NS string `json:"ns,omitempty"`
	// Codec picks the group's wire codec: "json" (default) or "binary".
	Codec string `json:"codec,omitempty"`
	// Arrival drives clients/bystanders; providers must leave it empty.
	Arrival Arrival `json:"arrival,omitempty"`
	// Ops weights the group's op mix; weights are relative, not normalized.
	Ops map[string]float64 `json:"ops,omitempty"`
	// Probes is the providers' per-node probe count at seed time (default 8).
	Probes int `json:"probes,omitempty"`
	// Metros structures a provider population into that many metro areas
	// with shared dominant replicas, so SMF clustering has real structure
	// to find (default 8).
	Metros int `json:"metros,omitempty"`
	// Replicas is the replica-ID pool size observes draw from (default 12).
	Replicas int `json:"replicas,omitempty"`
}

// DriftPlan attaches the CDN-change detector (internal/drift) to the run:
// every Every ticks the runner snapshots daemon 0's compiled ratio-map
// stream and feeds the detector, on the virtual clock. Mem transport only
// — the event sequence is part of the deterministic report slice, and only
// the virtual clock makes frame timing replayable.
type DriftPlan struct {
	// Every is the frame cadence in ticks (default 5).
	Every int `json:"every,omitempty"`
	// Sensitivity scales the detector's alarm thresholds (default 1;
	// above 1 is touchier, below 1 more tolerant).
	Sensitivity float64 `json:"sensitivity,omitempty"`
}

// Envelope declares the run's pass/fail gates. Zero-valued fields are not
// checked. Gates split into deterministic ones (error budget, completion
// floors, rate accuracy, convergence, snapshot match — reported in the Det
// slice) and timing ones (latency bounds — reported in the Timing slice).
type Envelope struct {
	// MaxErrorRate bounds errored/offered per client group. A pointer so an
	// explicit 0 ("no errors allowed") is distinguishable from unset.
	MaxErrorRate *float64 `json:"maxErrorRate,omitempty"`
	// MinCompleted is the per-client-group completed-op floor.
	MinCompleted int `json:"minCompleted,omitempty"`
	// MaxRateError bounds |offered-expected|/expected per driven group
	// (e.g. 0.05 = the declared QPS must be hit within 5%).
	MaxRateError float64 `json:"maxRateError,omitempty"`
	// RequireConverged demands the mesh reach identical shard digests.
	RequireConverged bool `json:"requireConverged,omitempty"`
	// MaxConvergeRounds bounds the mem-transport convergence round count
	// (implies RequireConverged).
	MaxConvergeRounds int `json:"maxConvergeRounds,omitempty"`
	// RequireSnapshotMatch demands every daemon's compiled snapshot
	// byte-equal a reference daemon fed the merged stream (mem transport).
	RequireSnapshotMatch bool `json:"requireSnapshotMatch,omitempty"`
	// MaxP99Ms bounds each client group's round-trip latency p99.
	MaxP99Ms float64 `json:"maxP99Ms,omitempty"`
	// MaxDriftEvents bounds the detector's fired alarms (requires the
	// plan's drift block). A pointer so an explicit 0 ("the workload must
	// not look like a CDN remap") is distinguishable from unset.
	MaxDriftEvents *int `json:"maxDriftEvents,omitempty"`
}

// Plan is one complete scenario.
type Plan struct {
	// Name labels the run in reports. Required.
	Name string `json:"name"`
	// Seed drives every random decision. Required (non-zero), so no plan
	// silently depends on an implicit default.
	Seed uint64 `json:"seed"`
	// Transport is mem (default) or udp.
	Transport string `json:"transport,omitempty"`
	// Daemons is the mesh size (default 3; 1 runs a single daemon with no
	// gossip plane).
	Daemons int `json:"daemons,omitempty"`
	// Codec pins the *gossip* codec: "" or "binary" negotiates binary,
	// "json" pins JSON, "mixed" pins daemon 0 to JSON (rolling upgrade).
	Codec string `json:"codec,omitempty"`
	// Duration is the driven window on the virtual clock. Required.
	Duration faults.Duration `json:"duration"`
	// Tick is the virtual scheduling quantum (default 1s).
	Tick faults.Duration `json:"tick,omitempty"`
	// Window / Shards shape every daemon's store identically (defaults
	// 10 / 64); Fanout / TTL shape rumor mongering (defaults 2 / 3).
	Window int `json:"window,omitempty"`
	Shards int `json:"shards,omitempty"`
	Fanout int `json:"fanout,omitempty"`
	TTL    int `json:"ttl,omitempty"`
	// AggregateBits, when non-zero, enables the prefix aggregation plane on
	// every daemon with /bits IPv4 grouping (crp.PrefixKeyFunc).
	AggregateBits int `json:"aggregateBits,omitempty"`
	// Drift, when present, runs the CDN-change detector against daemon
	// 0's compiled stream during the driven window (mem transport only).
	Drift *DriftPlan `json:"drift,omitempty"`
	// Groups is the node population. Required non-empty.
	Groups []Group `json:"groups"`
	// Faults is an internal/faults scenario applied verbatim to every
	// gossip link (WrapPacketConn label "gossip"). Only the pkt-* kinds
	// have a hook in a scenario run.
	Faults faults.Scenario `json:"faults,omitempty"`
	// Envelope is the pass/fail contract.
	Envelope Envelope `json:"envelope,omitempty"`
}

// Ticks is the driven tick count.
func (p *Plan) Ticks() int {
	return int(p.Duration.D() / p.Tick.D())
}

// DecodePlan decodes and validates a JSON plan, applying defaults. Unknown
// fields are rejected — a typoed gate name must not silently become a
// no-op scenario.
func DecodePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, planErr("plan", "decode: %v", err)
	}
	if dec.More() {
		return nil, planErr("plan", "trailing data after the plan object")
	}
	p.setDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

func (p *Plan) setDefaults() {
	if p.Transport == "" {
		p.Transport = TransportMem
	}
	if p.Daemons == 0 {
		p.Daemons = 3
	}
	if p.Tick == 0 {
		p.Tick = faults.Duration(time.Second)
	}
	if p.Window == 0 {
		p.Window = 10
	}
	if p.Shards == 0 {
		p.Shards = 64
	}
	if p.Fanout == 0 {
		p.Fanout = 2
	}
	if p.TTL == 0 {
		p.TTL = 3
	}
	if p.Drift != nil && p.Drift.Every == 0 {
		p.Drift.Every = 5
	}
	for i := range p.Groups {
		g := &p.Groups[i]
		if g.Probes == 0 {
			g.Probes = 8
		}
		if g.Metros == 0 {
			g.Metros = 8
		}
		if g.Replicas == 0 {
			g.Replicas = 12
		}
		if g.Kind == KindClients || g.Kind == KindBystanders {
			a := &g.Arrival
			if a.Period == 0 {
				switch a.Process {
				case ProcessDiurnal:
					a.Period = faults.Duration(24 * time.Hour)
				case ProcessMobile:
					a.Period = faults.Duration(time.Minute)
				}
			}
			if a.Process == ProcessMobile && a.LDNSPool == 0 {
				a.LDNSPool = max(2, g.Size/4)
			}
		}
	}
}

// Validate checks the whole plan; the first failure wins and names its
// field.
func (p *Plan) Validate() error {
	if p.Name == "" {
		return planErr("name", "required")
	}
	if p.Seed == 0 {
		return planErr("seed", "required and non-zero: every scenario must declare its seed")
	}
	switch p.Transport {
	case TransportMem, TransportUDP:
	default:
		return planErr("transport", "unknown transport %q (want mem or udp)", p.Transport)
	}
	if p.Daemons < 1 {
		return planErr("daemons", "must be >= 1, got %d", p.Daemons)
	}
	switch p.Codec {
	case "", "json", "binary":
	case "mixed":
		if p.Daemons < 2 {
			return planErr("codec", "mixed needs >= 2 daemons")
		}
	default:
		return planErr("codec", "unknown gossip codec %q (want json, binary or mixed)", p.Codec)
	}
	if p.Duration <= 0 {
		return planErr("duration", "required and positive")
	}
	if p.Tick <= 0 {
		return planErr("tick", "must be positive")
	}
	if p.Tick > p.Duration {
		return planErr("tick", "tick %v exceeds duration %v", p.Tick.D(), p.Duration.D())
	}
	if p.AggregateBits < 0 || p.AggregateBits > 32 {
		return planErr("aggregateBits", "must be in [0,32], got %d", p.AggregateBits)
	}
	if p.Drift != nil {
		if p.Transport != TransportMem {
			return planErr("drift", "the detector's event sequence is only deterministic on the mem transport")
		}
		if p.Drift.Every < 1 {
			return planErr("drift.every", "must be >= 1 tick, got %d", p.Drift.Every)
		}
		if p.Drift.Sensitivity < 0 {
			return planErr("drift.sensitivity", "negative: %v", p.Drift.Sensitivity)
		}
	}
	if len(p.Groups) == 0 {
		return planErr("groups", "at least one group is required")
	}
	seen := make(map[string]bool, len(p.Groups))
	for i := range p.Groups {
		if err := p.validateGroup(i, seen); err != nil {
			return err
		}
	}
	if err := p.Faults.Validate(); err != nil {
		return planErr("faults", "%v", err)
	}
	for i := range p.Faults.Faults {
		switch p.Faults.Faults[i].Kind {
		case faults.PacketLoss, faults.PacketDup, faults.PacketDelay, faults.PacketReorder:
		default:
			return planErr(fmt.Sprintf("faults.faults[%d].kind", i),
				"%q has no injection hook in a scenario run (only the pkt-* kinds apply, on the gossip links)",
				p.Faults.Faults[i].Kind)
		}
	}
	return p.validateEnvelope()
}

func (p *Plan) validateGroup(i int, seen map[string]bool) error {
	g := &p.Groups[i]
	field := func(sub string) string { return fmt.Sprintf("groups[%d].%s", i, sub) }
	if g.Name == "" {
		return planErr(field("name"), "required")
	}
	if len(g.Name) > 32 {
		return planErr(field("name"), "%q exceeds 32 bytes", g.Name)
	}
	for _, c := range []byte(g.Name) {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return planErr(field("name"), "%q: only [a-z0-9-] allowed (it keys metric names)", g.Name)
		}
	}
	if seen[g.Name] {
		return planErr(field("name"), "duplicate group name %q", g.Name)
	}
	seen[g.Name] = true
	switch g.Kind {
	case KindClients, KindProviders, KindBystanders:
	default:
		return planErr(field("kind"), "unknown group kind %q (want clients, providers or bystanders)", g.Kind)
	}
	if g.Size <= 0 {
		return planErr(field("size"), "must be positive, got %d", g.Size)
	}
	if g.Home < 0 || g.Home >= p.Daemons {
		return planErr(field("home"), "daemon index %d outside [0,%d)", g.Home, p.Daemons)
	}
	if g.Prefix != "" {
		pfx, err := netip.ParsePrefix(g.Prefix)
		if err != nil {
			return planErr(field("prefix"), "%v", err)
		}
		if !pfx.Addr().Is4() {
			return planErr(field("prefix"), "%q is not IPv4", g.Prefix)
		}
		if pfx.Bits() > 30 {
			return planErr(field("prefix"), "/%d leaves no member addresses (need <= /30)", pfx.Bits())
		}
	}
	if g.NS != "" {
		if err := crp.Namespace(g.NS).Valid(); err != nil {
			return planErr(field("ns"), "%v", err)
		}
	}
	switch g.Codec {
	case "", "json", "binary":
	default:
		return planErr(field("codec"), "unknown codec %q (want json or binary)", g.Codec)
	}
	if g.Probes < 0 {
		return planErr(field("probes"), "must be non-negative")
	}
	if g.Metros <= 0 {
		return planErr(field("metros"), "must be positive")
	}
	if g.Replicas <= 0 {
		return planErr(field("replicas"), "must be positive")
	}

	if g.Kind == KindProviders {
		if g.Arrival.Process != "" {
			return planErr(field("arrival.process"), "providers are seeded, not driven: no arrival process")
		}
		if len(g.Ops) != 0 {
			return planErr(field("ops"), "providers are seeded, not driven: no op mix")
		}
		return nil
	}
	if err := p.validateArrival(i, g); err != nil {
		return err
	}
	if len(g.Ops) == 0 {
		return planErr(field("ops"), "a driven group needs an op mix")
	}
	total := 0.0
	for op, w := range g.Ops {
		if !planOps[op] {
			return planErr(field("ops."+op), "unknown op (want observe, closest, topk, similarity or cluster)")
		}
		if w < 0 {
			return planErr(field("ops."+op), "negative weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return planErr(field("ops"), "op weights sum to zero")
	}
	return nil
}

func (p *Plan) validateArrival(i int, g *Group) error {
	a := &g.Arrival
	field := func(sub string) string { return fmt.Sprintf("groups[%d].arrival.%s", i, sub) }
	switch a.Process {
	case ProcessConstant, ProcessFlash, ProcessMobile:
		if a.Rate <= 0 {
			return planErr(field("rate"), "must be positive, got %v", a.Rate)
		}
		if a.Peak != 0 || a.Trough != 0 {
			return planErr(field("peak"), "peak/trough only apply to the diurnal process")
		}
	case ProcessDiurnal:
		if a.Trough < 0 {
			return planErr(field("trough"), "negative rate %v", a.Trough)
		}
		if a.Peak <= 0 || a.Peak < a.Trough {
			return planErr(field("peak"), "need peak >= trough > 0 shape, got peak %v trough %v", a.Peak, a.Trough)
		}
		if a.Rate != 0 {
			return planErr(field("rate"), "diurnal rate comes from peak/trough, not rate")
		}
		if a.Period <= 0 {
			return planErr(field("period"), "must be positive")
		}
	case "":
		return planErr(field("process"), "required for a driven group")
	default:
		return planErr(field("process"), "unknown arrival process %q (want constant, diurnal, flash or mobile)", a.Process)
	}
	if a.Process != ProcessFlash && len(a.Spikes) > 0 {
		return planErr(field("spikes"), "spikes only apply to the flash process")
	}
	for j, s := range a.Spikes {
		sf := func(sub string) string { return fmt.Sprintf("groups[%d].arrival.spikes[%d].%s", i, j, sub) }
		if s.Width <= 0 {
			return planErr(sf("width"), "must be positive")
		}
		if s.At < 0 {
			return planErr(sf("at"), "must be non-negative")
		}
		if s.Factor <= 1 {
			return planErr(sf("factor"), "must exceed 1, got %v", s.Factor)
		}
		for k := 0; k < j; k++ {
			prev := a.Spikes[k]
			if s.At.D() < prev.At.D()+prev.Width.D() && prev.At.D() < s.At.D()+s.Width.D() {
				return planErr(sf("at"), "window [%v,%v) overlaps spikes[%d] [%v,%v)",
					s.At.D(), s.At.D()+s.Width.D(), k, prev.At.D(), prev.At.D()+prev.Width.D())
			}
		}
	}
	if a.Process == ProcessMobile {
		if a.ChurnRate < 0 || a.ChurnRate > 1 {
			return planErr(field("churnRate"), "outside [0,1]: %v", a.ChurnRate)
		}
		if a.Period <= 0 {
			return planErr(field("period"), "must be positive")
		}
		if a.LDNSPool < 2 {
			return planErr(field("ldnsPool"), "need >= 2 identities, got %d", a.LDNSPool)
		}
	}
	return nil
}

func (p *Plan) validateEnvelope() error {
	e := &p.Envelope
	if e.MaxErrorRate != nil && (*e.MaxErrorRate < 0 || *e.MaxErrorRate > 1) {
		return planErr("envelope.maxErrorRate", "outside [0,1]: %v", *e.MaxErrorRate)
	}
	if e.MinCompleted < 0 {
		return planErr("envelope.minCompleted", "must be non-negative")
	}
	if e.MaxRateError < 0 {
		return planErr("envelope.maxRateError", "must be non-negative")
	}
	if e.MaxP99Ms < 0 {
		return planErr("envelope.maxP99Ms", "must be non-negative")
	}
	if e.MaxConvergeRounds < 0 {
		return planErr("envelope.maxConvergeRounds", "must be non-negative")
	}
	if p.Daemons == 1 && (e.RequireSnapshotMatch || e.MaxConvergeRounds > 0) {
		return planErr("envelope.requireSnapshotMatch", "meaningless with a single daemon (no mesh to converge)")
	}
	if p.Transport == TransportUDP {
		if e.MaxConvergeRounds > 0 {
			return planErr("envelope.maxConvergeRounds", "round counts are only deterministic on the mem transport")
		}
		if e.RequireSnapshotMatch {
			return planErr("envelope.requireSnapshotMatch", "snapshot bytes are only deterministic on the mem transport")
		}
	}
	if e.RequireSnapshotMatch && p.AggregateBits > 0 {
		return planErr("envelope.requireSnapshotMatch", "aggregated observations are local ingest compaction and never enter snapshots")
	}
	if e.MaxDriftEvents != nil {
		if *e.MaxDriftEvents < 0 {
			return planErr("envelope.maxDriftEvents", "must be non-negative")
		}
		if p.Drift == nil {
			return planErr("envelope.maxDriftEvents", "requires the plan's drift block (nothing runs the detector otherwise)")
		}
	}
	return nil
}
