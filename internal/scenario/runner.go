package scenario

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"net/netip"
	"sync"
	"time"

	"repro/crp"
	"repro/internal/crpdaemon"
	"repro/internal/drift"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/peering"
)

// Options tunes a run without touching the plan (the plan alone determines
// the deterministic slice; Options only picks where instruments land and
// where progress lines go).
type Options struct {
	// Registry receives the daemons', engines' and scenario's instruments
	// (default: a fresh private registry; crpbench passes obs.Default()).
	Registry *obs.Registry
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// scenarioBase anchors the virtual clock, matching the gossip harness.
var scenarioBase = time.Unix(1_800_000_000, 0)

// schedOp is one scheduled request: what to send, plus the observe facts
// the mirror service and target pools need. The schedule is built
// single-threaded from seeded hashes, so it is identical on both transports
// and across reruns.
type schedOp struct {
	gs  *groupState
	req crpdaemon.Request
	// For observes: the identity and replica set, so the mem runner can
	// mirror the mutation into the merged-stream reference service.
	observeNode string
	observeReps []string
}

// groupState is one group's live state during a run.
type groupState struct {
	g   *Group
	idx int
	ar  *arrivals
	// prefix-structured identity space (valid when hasPrefix).
	prefix    netip.Prefix
	hasPrefix bool
	bin       bool
	// Target pool: providers homed on the same daemon, plus this group's
	// own identities observed in *previous* ticks (promotion happens at
	// tick end, so a query never races its own observe).
	pool    []string
	poolSet map[string]bool
	// Counts. The obs counters feed the stats-op export; the local fields
	// feed the report without re-reading the registry.
	offered, completed, errored uint64
	expected                    float64
	cOffered                    *obs.Counter
	cCompleted                  *obs.Counter
	cErrored                    *obs.Counter
	cRetries                    *obs.Counter
	hLatency                    *obs.Histogram

	mu   sync.Mutex
	lats []time.Duration
}

func (gs *groupState) recordOutcome(resp crpdaemon.Response, rtt time.Duration) {
	gs.mu.Lock()
	if resp.OK {
		gs.completed++
		gs.cCompleted.Inc()
	} else {
		gs.errored++
		gs.cErrored.Inc()
	}
	gs.lats = append(gs.lats, rtt)
	gs.mu.Unlock()
	gs.hLatency.ObserveDuration(rtt)
}

// promote adds an observed identity to the target pool for later ticks.
func (gs *groupState) promote(node string) {
	if node == "" || gs.poolSet[node] {
		return
	}
	gs.poolSet[node] = true
	gs.pool = append(gs.pool, node)
}

type runner struct {
	p      *Plan
	reg    *obs.Registry
	logf   func(string, ...any)
	tickD  time.Duration
	groups []*groupState
	// providersOn[d] lists provider identities homed on daemon d, in plan
	// order — the seed of every driven group's target pool.
	providersOn [][]string
	maxProbes   int
}

// Run executes a plan and returns its report. The returned error covers
// harness failures only; envelope failures land in the report's verdicts so
// the caller can print them before deciding the exit code.
func Run(p *Plan, opt Options) (*Report, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	reg := opt.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	r := &runner{
		p:           p,
		reg:         reg,
		logf:        logf,
		tickD:       p.Tick.D(),
		providersOn: make([][]string, p.Daemons),
	}
	for i := range p.Groups {
		g := &p.Groups[i]
		gs := &groupState{
			g:          g,
			idx:        i,
			bin:        g.Codec == "binary",
			poolSet:    make(map[string]bool),
			cOffered:   reg.Counter("scenario.group." + g.Name + ".offered"),
			cCompleted: reg.Counter("scenario.group." + g.Name + ".completed"),
			cErrored:   reg.Counter("scenario.group." + g.Name + ".errored"),
			cRetries:   reg.Counter("scenario.group." + g.Name + ".retries"),
			hLatency:   reg.Histogram("scenario.group."+g.Name+".latency", nil),
		}
		if g.Prefix != "" {
			gs.prefix = netip.MustParsePrefix(g.Prefix)
			gs.hasPrefix = true
		}
		switch g.Kind {
		case KindProviders:
			for m := 0; m < g.Size; m++ {
				r.providersOn[g.Home] = append(r.providersOn[g.Home], r.identity(gs, m, 0))
			}
			if g.Probes > r.maxProbes {
				r.maxProbes = g.Probes
			}
		default:
			gs.ar = newArrivals(p.Seed, i, g.Arrival, r.tickD)
		}
		r.groups = append(r.groups, gs)
	}
	for _, gs := range r.groups {
		if gs.ar != nil {
			gs.pool = append(gs.pool, r.providersOn[gs.g.Home]...)
			for _, n := range gs.pool {
				gs.poolSet[n] = true
			}
		}
	}

	if p.Transport == TransportUDP {
		return r.runUDP()
	}
	return r.runMem()
}

// identity is member m's node ID at virtual offset t from the window start.
// Prefix groups get dotted-quad addresses inside their CIDR (so the
// aggregation plane groups them); mobile groups present as their current
// LDNS; everyone else is a stable symbolic name.
func (r *runner) identity(gs *groupState, m int, t time.Duration) string {
	if gs.ar != nil && gs.g.Arrival.Process == ProcessMobile {
		return fmt.Sprintf("%s-l%03d", gs.g.Name, gs.ar.ldnsAt(m, t))
	}
	if gs.hasPrefix {
		hosts := 1 << (32 - gs.prefix.Bits())
		base := gs.prefix.Masked().Addr().As4()
		off := uint32(m % hosts)
		v := (uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])) + off
		return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}).String()
	}
	return fmt.Sprintf("%s-m%03d", gs.g.Name, m)
}

// replica draws a wire replica ID from the group's pool, ns-qualified when
// the group is scoped.
func (r *runner) replica(gs *groupState, idx int) string {
	id := crp.ReplicaID(fmt.Sprintf("r%02d", idx%gs.g.Replicas))
	if gs.g.NS != "" {
		id = crp.Qualify(crp.Namespace(gs.g.NS), id)
	}
	return string(id)
}

// seedOps builds the provider-seeding schedule for probe round k: every
// provider node observed once, with a metro-structured replica distribution
// (65/20/10% on the metro's three local replicas, 5% cross-metro noise) so
// SMF clustering has real structure to find.
func (r *runner) seedOps(k int) []schedOp {
	var ops []schedOp
	for _, gs := range r.groups {
		if gs.g.Kind != KindProviders || k >= gs.g.Probes {
			continue
		}
		for m := 0; m < gs.g.Size; m++ {
			node := r.identity(gs, m, 0)
			metro := m % gs.g.Metros
			base := (metro * 3) % gs.g.Replicas
			reps := make([]string, 0, 3)
			for pick := 0; pick < 3; pick++ {
				u := netsim.UnitAt(r.p.Seed, domProviderSeed, uint64(gs.idx), uint64(m), uint64(k), uint64(pick))
				var idx int
				switch {
				case u < 0.65:
					idx = base
				case u < 0.85:
					idx = base + 1
				case u < 0.95:
					idx = base + 2
				default:
					idx = int(netsim.Mix(r.p.Seed, domProviderSeed, uint64(gs.idx), uint64(m), uint64(k), uint64(pick)) % uint64(gs.g.Replicas))
				}
				reps = append(reps, r.replica(gs, idx))
			}
			ops = append(ops, schedOp{
				gs:          gs,
				req:         crpdaemon.Request{Op: "observe", Node: node, Replicas: reps},
				observeNode: node,
				observeReps: reps,
			})
		}
	}
	return ops
}

// buildTick builds tick t's schedule across every driven group, in group
// order. All choices are stateless seeded hashes over (seed, group, tick,
// op index), so the schedule is a pure function of the plan.
func (r *runner) buildTick(t int) []schedOp {
	at := time.Duration(t) * r.tickD
	var ops []schedOp
	for _, gs := range r.groups {
		if gs.ar == nil {
			continue
		}
		n := gs.ar.Count(t)
		gs.expected += gs.ar.RateAt(at) * r.tickD.Seconds()
		for j := 0; j < n; j++ {
			ops = append(ops, r.buildOp(gs, t, j, at))
		}
	}
	return ops
}

func (r *runner) buildOp(gs *groupState, t, j int, at time.Duration) schedOp {
	seed := netsim.Mix(r.p.Seed, uint64(gs.idx)+1)
	op := pickOp(gs.g.Ops, seed, uint64(t), uint64(j))
	member := int(netsim.Mix(seed, domMemberPick, uint64(t), uint64(j)) % uint64(gs.g.Size))
	self := r.identity(gs, member, at)
	// Query ops need a resolvable target; before anything is in the pool
	// (tick 0 of a providerless plan) they degrade to observes, which is
	// itself a deterministic decision.
	if op != "observe" && len(gs.pool) == 0 {
		op = "observe"
	}
	pick := func(k uint64) string {
		i := netsim.Mix(seed, domTargetPick, uint64(t), uint64(j), k) % uint64(len(gs.pool))
		return gs.pool[i]
	}
	so := schedOp{gs: gs}
	switch op {
	case "observe":
		reps := make([]string, 0, 2)
		for k := 0; k < 2; k++ {
			idx := int(netsim.Mix(seed, domReplicaPick, uint64(t), uint64(j), uint64(k)) % uint64(gs.g.Replicas))
			reps = append(reps, r.replica(gs, idx))
		}
		so.req = crpdaemon.Request{Op: "observe", Node: self, Replicas: reps}
		so.observeNode = self
		so.observeReps = reps
	case "closest":
		so.req = crpdaemon.Request{Op: "closest", Client: pick(0), K: 1, NS: gs.g.NS}
	case "topk":
		so.req = crpdaemon.Request{Op: "closest", Client: pick(0), K: 8, NS: gs.g.NS}
	case "similarity":
		so.req = crpdaemon.Request{Op: "similarity", A: pick(0), B: pick(1), NS: gs.g.NS}
	case "cluster":
		so.req = crpdaemon.Request{Op: "distinct_clusters", N: 4}
	}
	return so
}

// promoteTick moves tick t's observed identities into their groups' target
// pools, in schedule order, so tick t+1 may query them.
func promoteTick(ops []schedOp) {
	for i := range ops {
		if ops[i].observeNode != "" && ops[i].gs.ar != nil {
			ops[i].gs.promote(ops[i].observeNode)
		}
	}
}

func encodeOp(so *schedOp) ([]byte, error) {
	raw, err := crpdaemon.EncodeRequest(&so.req, so.gs.bin)
	if err != nil {
		return nil, fmt.Errorf("scenario: encode %s for group %s: %w", so.req.Op, so.gs.g.Name, err)
	}
	return raw, nil
}

// gossipCodec is daemon i's pinned codec token under the plan's policy.
func (p *Plan) gossipCodec(i int) string {
	switch p.Codec {
	case "json":
		return "json"
	case "mixed":
		if i == 0 {
			return "json"
		}
	}
	return ""
}

func (r *runner) newService() (*crp.Service, error) {
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: r.p.Shards}, crp.WithWindow(r.p.Window))
	if r.p.AggregateBits > 0 {
		if err := svc.EnableAggregation(crp.AggregatorConfig{KeyOf: crp.PrefixKeyFunc(r.p.AggregateBits)}); err != nil {
			return nil, err
		}
	}
	return svc, nil
}

func (r *runner) faultPlane() (*faults.Plane, error) {
	if len(r.p.Faults.Faults) == 0 {
		return nil, nil
	}
	return faults.New(nil, r.p.Faults)
}

// ---------------------------------------------------------------------------
// mem transport: single-threaded, virtual clock, byte-replayable end to end.

func (r *runner) runMem() (*Report, error) {
	p := r.p
	plane, err := r.faultPlane()
	if err != nil {
		return nil, err
	}

	now := scenarioBase
	clock := func() time.Time { return now }

	mesh := peering.NewMemMesh()
	var daemons []*crpdaemon.Daemon
	var svcs []*crp.Service
	var engines []*peering.Peering
	var conns []net.PacketConn
	for i := 0; i < p.Daemons; i++ {
		svc, err := r.newService()
		if err != nil {
			return nil, err
		}
		var eng *peering.Peering
		if p.Daemons > 1 {
			addr := fmt.Sprintf("mem-d%02d", i)
			var pc net.PacketConn = mesh.Conn(addr)
			if plane != nil {
				pc = plane.WrapPacketConn(pc, "gossip")
			}
			eng, err = peering.New(peering.Config{
				Self:     fmt.Sprintf("daemon-%02d", i),
				Addr:     addr,
				Service:  svc,
				Fanout:   p.Fanout,
				TTL:      p.TTL,
				Seed:     p.Seed + uint64(i)*7919,
				Now:      clock,
				Resolve:  mesh.Resolve,
				Registry: r.reg,
				Codec:    p.gossipCodec(i),
			})
			if err != nil {
				return nil, err
			}
			eng.Attach(pc)
			conns = append(conns, pc)
			engines = append(engines, eng)
		}
		d, err := crpdaemon.New(svc, crpdaemon.Config{Registry: r.reg, Now: clock, Peering: eng})
		if err != nil {
			return nil, err
		}
		daemons = append(daemons, d)
		svcs = append(svcs, svc)
	}
	for i, eng := range engines {
		for j := 0; j < p.Daemons; j++ {
			if j != i {
				if err := eng.AddPeer(fmt.Sprintf("daemon-%02d", j), fmt.Sprintf("mem-d%02d", j)); err != nil {
					return nil, err
				}
			}
		}
	}

	// The mirror service replays every observe (same node, same virtual
	// timestamp, same replicas) into one merged store: the fidelity
	// reference a converged mesh must byte-match.
	var mirror *crp.Service
	if p.Envelope.RequireSnapshotMatch {
		if mirror, err = r.newService(); err != nil {
			return nil, err
		}
	}

	// The drift monitor watches daemon 0's compiled stream on the virtual
	// clock, so its frame timestamps and event sequence replay exactly.
	var mon *drift.Monitor
	var driftFrames int
	var driftEvents []drift.Event
	if p.Drift != nil {
		mon, err = drift.NewMonitor(svcs[0], drift.Config{Sensitivity: p.Drift.Sensitivity},
			drift.WithRegistry(r.reg), drift.WithClock(clock))
		if err != nil {
			return nil, err
		}
	}

	exec := func(so *schedOp) error {
		raw, err := encodeOp(so)
		if err != nil {
			return err
		}
		start := time.Now()
		wire := daemons[so.gs.g.Home].Handle(raw)
		resp, _, err := crpdaemon.DecodeResponse(wire)
		if err != nil {
			return fmt.Errorf("scenario: decode reply for group %s: %w", so.gs.g.Name, err)
		}
		so.gs.offered++
		so.gs.cOffered.Inc()
		so.gs.recordOutcome(resp, time.Since(start))
		if resp.OK && so.observeNode != "" && mirror != nil {
			reps := make([]crp.ReplicaID, len(so.observeReps))
			for i, rep := range so.observeReps {
				reps[i] = crp.ReplicaID(rep)
			}
			if err := mirror.Observe(crp.NodeID(so.observeNode), now, reps...); err != nil {
				return err
			}
		}
		return nil
	}

	// Gossip plumbing: one engine round = tick every engine at the current
	// virtual instant, then pump the fabric dry in index order.
	buf := make([]byte, peering.MaxMsgSize+1)
	round := func() {
		for _, eng := range engines {
			eng.Tick(now)
		}
		for progress := true; progress; {
			progress = false
			for i, pc := range conns {
				for {
					n, from, err := pc.ReadFrom(buf)
					if err != nil {
						break
					}
					engines[i].HandleDatagram(buf[:n], from)
					progress = true
				}
			}
		}
	}
	converged := func() bool {
		ref := svcs[0].ShardDigests()
		for _, svc := range svcs[1:] {
			got := svc.ShardDigests()
			for i := range ref {
				if got[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}

	wallStart := time.Now()

	// Provider seeding: one virtual minute per probe round, through the
	// daemon op path, so seeded state is metered like everything else.
	for k := 0; k < r.maxProbes; k++ {
		now = scenarioBase.Add(time.Duration(k) * time.Minute)
		for _, so := range r.seedOps(k) {
			if err := exec(&so); err != nil {
				return nil, err
			}
		}
	}
	seedEnd := scenarioBase.Add(time.Duration(r.maxProbes) * time.Minute)

	// Driven window: schedule, execute, promote, gossip — one tick at a
	// time on the virtual clock.
	ticks := p.Ticks()
	for t := 0; t < ticks; t++ {
		now = seedEnd.Add(time.Duration(t) * r.tickD)
		ops := r.buildTick(t)
		for i := range ops {
			if err := exec(&ops[i]); err != nil {
				return nil, err
			}
		}
		promoteTick(ops)
		if len(engines) > 0 {
			round()
		}
		if mon != nil && (t+1)%p.Drift.Every == 0 {
			driftFrames++
			driftEvents = append(driftEvents, mon.Tick()...)
		}
	}

	// Convergence phase: keep gossiping past the window until the digests
	// agree or the round budget runs out.
	det := r.newDetReport()
	det.Converged = p.Daemons == 1
	if len(engines) > 0 {
		maxRounds := p.Envelope.MaxConvergeRounds
		if maxRounds == 0 {
			maxRounds = 50
		}
		if converged() {
			det.Converged = true
		} else {
			for rd := 1; rd <= maxRounds; rd++ {
				now = now.Add(r.tickD)
				round()
				if converged() {
					det.Converged = true
					det.ConvergeRounds = rd
					break
				}
			}
		}
	}

	if mirror != nil && det.Converged {
		var ref bytes.Buffer
		if err := mirror.WriteSnapshot(&ref); err != nil {
			return nil, err
		}
		det.SnapshotMatch = true
		for _, svc := range svcs {
			var got bytes.Buffer
			if err := svc.WriteSnapshot(&got); err != nil {
				return nil, err
			}
			if !bytes.Equal(ref.Bytes(), got.Bytes()) {
				det.SnapshotMatch = false
				break
			}
		}
	}
	if plane != nil {
		det.Activations = plane.Activations()
	}
	det.DriftFrames = driftFrames
	det.DriftEvents = driftEvents

	rep := r.finishReport(det, wallStart, 0, nil)

	// Stats through the op path, daemon 0, same as a wire client would.
	statsRaw, err := crpdaemon.EncodeRequest(&crpdaemon.Request{Op: "stats"}, false)
	if err != nil {
		return nil, err
	}
	resp, _, err := crpdaemon.DecodeResponse(daemons[0].Handle(statsRaw))
	if err != nil {
		return nil, err
	}
	rep.Stats = resp.Stats
	return rep, nil
}

// ---------------------------------------------------------------------------
// udp transport: real sockets, real clocks, concurrent clients.

const (
	udpAttempts     = 8
	udpReadDeadline = 1 * time.Second
	udpConvergeWait = 10 * time.Second
)

// udpClient is one worker's connected socket to its group's home daemon.
// Workers are synchronous, so request/response pairing needs no IDs — and a
// timeout redials, so a late reply to an abandoned attempt lands on a dead
// port instead of corrupting the next exchange.
type udpClient struct {
	addr string
	conn net.Conn
	buf  []byte
}

func dialUDP(addr string) (*udpClient, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &udpClient{addr: addr, conn: conn, buf: make([]byte, crpdaemon.MaxReplySize+1)}, nil
}

func (c *udpClient) close() {
	if c.conn != nil {
		c.conn.Close()
	}
}

func (c *udpClient) exchange(raw []byte, retries *obs.Counter) (crpdaemon.Response, time.Duration, error) {
	start := time.Now()
	for attempt := 0; attempt < udpAttempts; attempt++ {
		if attempt > 0 {
			retries.Inc()
			c.conn.Close()
			conn, err := net.Dial("udp", c.addr)
			if err != nil {
				return crpdaemon.Response{}, 0, err
			}
			c.conn = conn
		}
		if _, err := c.conn.Write(raw); err != nil {
			continue
		}
		c.conn.SetReadDeadline(time.Now().Add(udpReadDeadline))
		n, err := c.conn.Read(c.buf)
		if err != nil {
			continue
		}
		resp, _, err := crpdaemon.DecodeResponse(c.buf[:n])
		if err != nil {
			return crpdaemon.Response{}, 0, fmt.Errorf("scenario: decode reply: %w", err)
		}
		return resp, time.Since(start), nil
	}
	return crpdaemon.Response{}, 0, fmt.Errorf("scenario: no reply from %s after %d attempts", c.addr, udpAttempts)
}

func (r *runner) runUDP() (*Report, error) {
	p := r.p
	plane, err := r.faultPlane()
	if err != nil {
		return nil, err
	}

	var daemons []*crpdaemon.Daemon
	var svcs []*crp.Service
	var engines []*peering.Peering
	var gossipConns []net.PacketConn
	defer func() {
		for _, eng := range engines {
			eng.Close()
		}
		for _, d := range daemons {
			d.Close()
		}
	}()

	for i := 0; i < p.Daemons; i++ {
		svc, err := r.newService()
		if err != nil {
			return nil, err
		}
		var eng *peering.Peering
		if p.Daemons > 1 {
			gpc, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			var pc net.PacketConn = gpc
			if plane != nil {
				pc = plane.WrapPacketConn(pc, "gossip")
			}
			eng, err = peering.New(peering.Config{
				Self:     fmt.Sprintf("daemon-%02d", i),
				Addr:     gpc.LocalAddr().String(),
				Service:  svc,
				Fanout:   p.Fanout,
				TTL:      p.TTL,
				Interval: 20 * time.Millisecond,
				Seed:     p.Seed + uint64(i)*7919,
				Registry: r.reg,
				Codec:    p.gossipCodec(i),
			})
			if err != nil {
				pc.Close()
				return nil, err
			}
			eng.Attach(pc)
			engines = append(engines, eng)
			gossipConns = append(gossipConns, pc)
		}
		qpc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		d, err := crpdaemon.Serve(qpc, svc, crpdaemon.Config{Registry: r.reg, Peering: eng})
		if err != nil {
			qpc.Close()
			return nil, err
		}
		daemons = append(daemons, d)
		svcs = append(svcs, svc)
	}
	for i, eng := range engines {
		for j := 0; j < p.Daemons; j++ {
			if j != i {
				if err := eng.AddPeer(fmt.Sprintf("daemon-%02d", j), gossipConns[j].LocalAddr().String()); err != nil {
					return nil, err
				}
			}
		}
	}
	for _, eng := range engines {
		if err := eng.Start(); err != nil {
			return nil, err
		}
	}

	// Per-group worker pools: min(8, size) connected sockets each, fed a
	// channel per tick with a barrier, so offered load is paced and
	// lockstep within the tick.
	type workItem struct {
		so *schedOp
		wg *sync.WaitGroup
	}
	var groupCh []chan workItem
	var workerWG sync.WaitGroup
	var workerErrMu sync.Mutex
	var workerErr error
	defer func() {
		for _, ch := range groupCh {
			if ch != nil {
				close(ch)
			}
		}
		workerWG.Wait()
	}()
	groupCh = make([]chan workItem, len(r.groups))
	for gi, gs := range r.groups {
		w := min(8, gs.g.Size)
		ch := make(chan workItem, 4*w)
		groupCh[gi] = ch
		addr := daemons[gs.g.Home].Addr().String()
		for k := 0; k < w; k++ {
			cli, err := dialUDP(addr)
			if err != nil {
				return nil, err
			}
			workerWG.Add(1)
			go func(gs *groupState, cli *udpClient) {
				defer workerWG.Done()
				defer cli.close()
				for item := range ch {
					raw, err := encodeOp(item.so)
					if err == nil {
						var resp crpdaemon.Response
						var rtt time.Duration
						resp, rtt, err = cli.exchange(raw, gs.cRetries)
						if err == nil {
							gs.recordOutcome(resp, rtt)
						}
					}
					if err != nil {
						workerErrMu.Lock()
						if workerErr == nil {
							workerErr = err
						}
						workerErrMu.Unlock()
					}
					item.wg.Done()
				}
			}(gs, cli)
		}
	}
	dispatch := func(ops []schedOp) error {
		var wg sync.WaitGroup
		for i := range ops {
			ops[i].gs.offered++
			ops[i].gs.cOffered.Inc()
			wg.Add(1)
			groupCh[ops[i].gs.idx] <- workItem{so: &ops[i], wg: &wg}
		}
		wg.Wait()
		workerErrMu.Lock()
		err := workerErr
		workerErrMu.Unlock()
		return err
	}

	wallStart := time.Now()
	for k := 0; k < r.maxProbes; k++ {
		if err := dispatch(r.seedOps(k)); err != nil {
			return nil, err
		}
	}

	// Driven window, paced against the wall clock: tick t's schedule is
	// released at start + t*tick, so the declared QPS is the real offered
	// rate (a slow tick just starts the next one immediately).
	ticks := p.Ticks()
	loadStart := time.Now()
	for t := 0; t < ticks; t++ {
		if wait := time.Until(loadStart.Add(time.Duration(t) * r.tickD)); wait > 0 {
			time.Sleep(wait)
		}
		ops := r.buildTick(t)
		if err := dispatch(ops); err != nil {
			return nil, err
		}
		promoteTick(ops)
	}

	// Convergence: poll the digests until they agree mesh-wide.
	det := r.newDetReport()
	det.Converged = p.Daemons == 1
	var convergeWait time.Duration
	if p.Daemons > 1 {
		convergeStart := time.Now()
		deadline := convergeStart.Add(udpConvergeWait)
		for {
			if digestsEqual(svcs) {
				det.Converged = true
				convergeWait = time.Since(convergeStart)
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	var activations map[faults.Kind]uint64
	if plane != nil {
		activations = plane.Activations()
	}
	rep := r.finishReport(det, wallStart, convergeWait, activations)

	// Stats over the wire from daemon 0 — the end-to-end export proof.
	cli, err := dialUDP(daemons[0].Addr().String())
	if err != nil {
		return nil, err
	}
	defer cli.close()
	statsRaw, err := crpdaemon.EncodeRequest(&crpdaemon.Request{Op: "stats"}, false)
	if err != nil {
		return nil, err
	}
	resp, _, err := cli.exchange(statsRaw, r.reg.Counter("scenario.stats.retries"))
	if err != nil {
		return nil, err
	}
	rep.Stats = resp.Stats
	return rep, nil
}

func digestsEqual(svcs []*crp.Service) bool {
	ref := svcs[0].ShardDigests()
	for _, svc := range svcs[1:] {
		got := svc.ShardDigests()
		for i := range ref {
			if got[i] != ref[i] {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// report assembly and envelope evaluation

func (r *runner) newDetReport() *DetReport {
	return &DetReport{
		Name:      r.p.Name,
		Seed:      r.p.Seed,
		Transport: r.p.Transport,
		Daemons:   r.p.Daemons,
		Ticks:     r.p.Ticks(),
	}
}

func (r *runner) finishReport(det *DetReport, wallStart time.Time, convergeWait time.Duration, udpActivations map[faults.Kind]uint64) *Report {
	e := &r.p.Envelope
	timing := TimingReport{
		WallMs:         ms(time.Since(wallStart)),
		ConvergeWaitMs: ms(convergeWait),
		Activations:    udpActivations,
	}

	for _, gs := range r.groups {
		det.Groups = append(det.Groups, GroupDet{
			Name:      gs.g.Name,
			Kind:      gs.g.Kind,
			Size:      gs.g.Size,
			Offered:   gs.offered,
			Completed: gs.completed,
			Errored:   gs.errored,
			Expected:  math.Round(gs.expected*1000) / 1000,
		})
		if gs.ar == nil {
			continue
		}
		gt := GroupTiming{
			Name:    gs.g.Name,
			P50Ms:   ms(percentile(gs.lats, 0.50)),
			P99Ms:   ms(percentile(gs.lats, 0.99)),
			MaxMs:   ms(percentile(gs.lats, 1.0)),
			Retries: gs.cRetries.Value(),
		}
		timing.Groups = append(timing.Groups, gt)

		gate := func(name string) string { return fmt.Sprintf("%s[%s]", name, gs.g.Name) }
		if gs.g.Kind == KindClients {
			if e.MaxErrorRate != nil {
				rate := 0.0
				if gs.offered > 0 {
					rate = float64(gs.errored) / float64(gs.offered)
				}
				det.Verdicts = append(det.Verdicts, verdict(gate("error-rate"), rate <= *e.MaxErrorRate,
					"%d/%d errored (%.4f, budget %.4f)", gs.errored, gs.offered, rate, *e.MaxErrorRate))
			}
			if e.MinCompleted > 0 {
				det.Verdicts = append(det.Verdicts, verdict(gate("min-completed"), gs.completed >= uint64(e.MinCompleted),
					"%d completed, floor %d", gs.completed, e.MinCompleted))
			}
			if e.MaxP99Ms > 0 {
				timing.Verdicts = append(timing.Verdicts, verdict(gate("p99"), gt.P99Ms <= e.MaxP99Ms,
					"p99 %.3fms, bound %.1fms", gt.P99Ms, e.MaxP99Ms))
			}
		}
		if e.MaxRateError > 0 && gs.expected > 0 {
			relErr := math.Abs(float64(gs.offered)-gs.expected) / gs.expected
			det.Verdicts = append(det.Verdicts, verdict(gate("rate"), relErr <= e.MaxRateError,
				"offered %d vs expected %.1f (err %.4f, bound %.4f)", gs.offered, gs.expected, relErr, e.MaxRateError))
		}
	}

	if e.RequireConverged || e.MaxConvergeRounds > 0 {
		det.Verdicts = append(det.Verdicts, verdict("converged", det.Converged,
			"mesh digest equality: %v", det.Converged))
	}
	if e.MaxConvergeRounds > 0 {
		det.Verdicts = append(det.Verdicts, verdict("converge-rounds",
			det.Converged && det.ConvergeRounds <= e.MaxConvergeRounds,
			"%d rounds past the window, bound %d", det.ConvergeRounds, e.MaxConvergeRounds))
	}
	if e.RequireSnapshotMatch {
		det.Verdicts = append(det.Verdicts, verdict("snapshot-match", det.SnapshotMatch,
			"converged stores byte-match the merged-stream mirror: %v", det.SnapshotMatch))
	}
	if e.MaxDriftEvents != nil {
		det.Verdicts = append(det.Verdicts, verdict("drift-events",
			len(det.DriftEvents) <= *e.MaxDriftEvents,
			"%d detector events over %d frames, budget %d",
			len(det.DriftEvents), det.DriftFrames, *e.MaxDriftEvents))
	}

	det.AllPass = true
	for _, v := range det.Verdicts {
		det.AllPass = det.AllPass && v.Pass
	}
	timing.AllPass = true
	for _, v := range timing.Verdicts {
		timing.AllPass = timing.AllPass && v.Pass
	}
	r.logf("scenario %s: %d det gates, %d timing gates, allPass=%v",
		r.p.Name, len(det.Verdicts), len(timing.Verdicts), det.AllPass && timing.AllPass)
	return &Report{Det: *det, Timing: timing}
}
