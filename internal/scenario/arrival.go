package scenario

import (
	"math"
	"time"

	"repro/internal/netsim"
)

// Hash domains for the scenario package's seeded draws. Every random
// decision is a stateless netsim.Mix over (plan seed, domain, coordinates),
// so the whole run is a pure function of the plan: no generator state to
// thread, no draw-order coupling between groups.
const (
	domArrival = 0x5ca1ab1e_00000001 + iota
	domOpPick
	domMemberPick
	domTargetPick
	domReplicaPick
	domLDNS
	domProviderSeed
)

// arrivals is one driven group's instantiated arrival process.
type arrivals struct {
	seed    uint64 // Mix(plan seed, group index + 1)
	a       Arrival
	tick    time.Duration
	tickSec float64
}

func newArrivals(planSeed uint64, groupIdx int, a Arrival, tick time.Duration) *arrivals {
	return &arrivals{
		seed:    netsim.Mix(planSeed, uint64(groupIdx)+1),
		a:       a,
		tick:    tick,
		tickSec: tick.Seconds(),
	}
}

// RateAt is the instantaneous target rate (ops/second) at virtual offset t
// from the scenario start.
func (ar *arrivals) RateAt(t time.Duration) float64 {
	switch ar.a.Process {
	case ProcessConstant, ProcessMobile:
		return ar.a.Rate
	case ProcessDiurnal:
		// Trough at t=0, peak at Period/2: raised-cosine day shape.
		frac := math.Mod(t.Seconds(), ar.a.Period.D().Seconds()) / ar.a.Period.D().Seconds()
		return ar.a.Trough + (ar.a.Peak-ar.a.Trough)*(1-math.Cos(2*math.Pi*frac))/2
	case ProcessFlash:
		for _, s := range ar.a.Spikes {
			if t >= s.At.D() && t < s.At.D()+s.Width.D() {
				return ar.a.Rate * s.Factor
			}
		}
		return ar.a.Rate
	}
	return 0
}

// Count is the arrival count for tick number `tick` (whose window starts at
// tick*ar.tick): a Poisson draw with mean RateAt·tickSeconds, seeded by
// (group seed, tick), so the sequence is pinned per seed.
func (ar *arrivals) Count(tick int) int {
	lambda := ar.RateAt(time.Duration(tick)*ar.tick) * ar.tickSec
	return poisson(lambda, ar.seed, uint64(tick))
}

// poisson draws Poisson(lambda) from the (seed, tick) hash stream. Knuth's
// product method is exact but needs ~lambda uniforms, so past lambda=30 we
// switch to the rounded-normal approximation (error < 1% there, and the
// long-run rate tests pin both paths).
func poisson(lambda float64, seed, tick uint64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		limit := math.Exp(-lambda)
		prod := 1.0
		n := 0
		for draw := uint64(0); ; draw++ {
			prod *= unitOpen(seed, domArrival, tick, draw)
			if prod <= limit {
				return n
			}
			n++
		}
	}
	// Box–Muller from two hash uniforms; clamp at zero.
	u1 := unitOpen(seed, domArrival, tick, 0)
	u2 := unitOpen(seed, domArrival, tick, 1)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	n := int(math.Round(lambda + math.Sqrt(lambda)*z))
	if n < 0 {
		return 0
	}
	return n
}

// unitOpen is UnitAt nudged off exact zero, since the Poisson product loop
// and Box–Muller's log both need (0,1).
func unitOpen(vs ...uint64) float64 {
	u := netsim.UnitAt(vs...)
	if u <= 0 {
		return 1e-12
	}
	return u
}

// pickOp selects the j-th op of a tick by cumulative weight over the
// group's mix. Iteration over opOrder (not the map) keeps the draw stable.
var opOrder = []string{"observe", "closest", "topk", "similarity", "cluster"}

func pickOp(ops map[string]float64, seed, tick, j uint64) string {
	total := 0.0
	for _, op := range opOrder {
		total += ops[op]
	}
	u := netsim.UnitAt(seed, domOpPick, tick, j) * total
	acc := 0.0
	for _, op := range opOrder {
		acc += ops[op]
		if acc > 0 && u < acc {
			return op
		}
	}
	return opOrder[0]
}

// ldnsAt is a mobile member's LDNS identity index at tick time t. The
// member re-rolls (probability ChurnRate) at each period boundary; the
// walk is evaluated sequentially over epochs so a member's identity history
// is consistent — but it is still a pure function of (seed, member, epoch).
func (ar *arrivals) ldnsAt(member int, t time.Duration) int {
	epoch := uint64(0)
	if p := ar.a.Period.D(); p > 0 {
		epoch = uint64(t / p)
	}
	id := int(netsim.Mix(ar.seed, domLDNS, uint64(member)) % uint64(ar.a.LDNSPool))
	for e := uint64(1); e <= epoch; e++ {
		if netsim.UnitAt(ar.seed, domLDNS, uint64(member), e) < ar.a.ChurnRate {
			id = int(netsim.Mix(ar.seed, domLDNS, uint64(member), e, 1) % uint64(ar.a.LDNSPool))
		}
	}
	return id
}
