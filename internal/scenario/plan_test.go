package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
)

// validPlan is a minimal well-formed plan the malformed-plan table mutates.
func validPlan() map[string]any {
	return map[string]any{
		"name":     "unit",
		"seed":     7,
		"duration": "10s",
		"groups": []map[string]any{
			{
				"name": "web", "kind": "clients", "size": 20, "home": 0,
				"arrival": map[string]any{"process": "constant", "rate": 5},
				"ops":     map[string]any{"observe": 1.0},
			},
		},
	}
}

func mutate(t testing.TB, fn func(p map[string]any)) []byte {
	t.Helper()
	p := validPlan()
	fn(p)
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal mutated plan: %v", err)
	}
	return raw
}

func group0(p map[string]any) map[string]any {
	return p["groups"].([]map[string]any)[0]
}

func TestDecodePlanValid(t *testing.T) {
	p, err := DecodePlan(mutate(t, func(map[string]any) {}))
	if err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if p.Transport != TransportMem || p.Daemons != 3 || p.Tick.D() != time.Second {
		t.Fatalf("defaults not applied: transport=%q daemons=%d tick=%v", p.Transport, p.Daemons, p.Tick.D())
	}
	if p.Ticks() != 10 {
		t.Fatalf("Ticks() = %d, want 10", p.Ticks())
	}
}

// TestDecodePlanMalformed is the exhaustive malformed-plan table: every row
// must fail with a PlanError naming the offending field.
func TestDecodePlanMalformed(t *testing.T) {
	cases := []struct {
		name   string
		raw    []byte
		field  string // PlanError.Field must contain this
		detail string // PlanError.Msg must contain this (optional)
	}{
		{
			name:  "missing seed",
			raw:   mutate(t, func(p map[string]any) { delete(p, "seed") }),
			field: "seed", detail: "required",
		},
		{
			name:  "zero seed",
			raw:   mutate(t, func(p map[string]any) { p["seed"] = 0 }),
			field: "seed",
		},
		{
			name:  "missing name",
			raw:   mutate(t, func(p map[string]any) { delete(p, "name") }),
			field: "name",
		},
		{
			name:  "missing duration",
			raw:   mutate(t, func(p map[string]any) { delete(p, "duration") }),
			field: "duration",
		},
		{
			name:  "unknown transport",
			raw:   mutate(t, func(p map[string]any) { p["transport"] = "tcp" }),
			field: "transport", detail: "tcp",
		},
		{
			name:  "bad gossip codec token",
			raw:   mutate(t, func(p map[string]any) { p["codec"] = "protobuf" }),
			field: "codec", detail: "protobuf",
		},
		{
			name:  "mixed codec single daemon",
			raw:   mutate(t, func(p map[string]any) { p["codec"] = "mixed"; p["daemons"] = 1 }),
			field: "codec",
		},
		{
			name:  "tick beyond duration",
			raw:   mutate(t, func(p map[string]any) { p["tick"] = "30s" }),
			field: "tick",
		},
		{
			name:  "aggregate bits out of range",
			raw:   mutate(t, func(p map[string]any) { p["aggregateBits"] = 48 }),
			field: "aggregateBits",
		},
		{
			name:  "no groups",
			raw:   mutate(t, func(p map[string]any) { p["groups"] = []map[string]any{} }),
			field: "groups",
		},
		{
			name:  "unknown group kind",
			raw:   mutate(t, func(p map[string]any) { group0(p)["kind"] = "spectators" }),
			field: "groups[0].kind", detail: "spectators",
		},
		{
			name:  "group name bad charset",
			raw:   mutate(t, func(p map[string]any) { group0(p)["name"] = "Web_Clients" }),
			field: "groups[0].name",
		},
		{
			name: "duplicate group name",
			raw: mutate(t, func(p map[string]any) {
				groups := p["groups"].([]map[string]any)
				dup := map[string]any{
					"name": "web", "kind": "providers", "size": 5, "home": 0,
				}
				p["groups"] = append(groups, dup)
			}),
			field: "groups[1].name", detail: "duplicate",
		},
		{
			name:  "non-positive size",
			raw:   mutate(t, func(p map[string]any) { group0(p)["size"] = 0 }),
			field: "groups[0].size",
		},
		{
			name:  "home out of range",
			raw:   mutate(t, func(p map[string]any) { group0(p)["home"] = 3 }),
			field: "groups[0].home",
		},
		{
			name:  "bad prefix",
			raw:   mutate(t, func(p map[string]any) { group0(p)["prefix"] = "10.0.0.0/244" }),
			field: "groups[0].prefix",
		},
		{
			name:  "ipv6 prefix",
			raw:   mutate(t, func(p map[string]any) { group0(p)["prefix"] = "2001:db8::/32" }),
			field: "groups[0].prefix", detail: "IPv4",
		},
		{
			name:  "bad group codec token",
			raw:   mutate(t, func(p map[string]any) { group0(p)["codec"] = "cbor" }),
			field: "groups[0].codec", detail: "cbor",
		},
		{
			name:  "bad namespace",
			raw:   mutate(t, func(p map[string]any) { group0(p)["ns"] = "bad!ns" }),
			field: "groups[0].ns",
		},
		{
			name: "provider with arrival",
			raw: mutate(t, func(p map[string]any) {
				group0(p)["kind"] = "providers"
			}),
			field: "groups[0].arrival.process",
		},
		{
			name: "driven group without ops",
			raw: mutate(t, func(p map[string]any) {
				delete(group0(p), "ops")
			}),
			field: "groups[0].ops",
		},
		{
			name: "unknown op",
			raw: mutate(t, func(p map[string]any) {
				group0(p)["ops"] = map[string]any{"traceroute": 1.0}
			}),
			field: "groups[0].ops.traceroute",
		},
		{
			name: "negative op weight",
			raw: mutate(t, func(p map[string]any) {
				group0(p)["ops"] = map[string]any{"observe": -2.0}
			}),
			field: "groups[0].ops.observe", detail: "negative",
		},
		{
			name: "negative rate",
			raw: mutate(t, func(p map[string]any) {
				group0(p)["arrival"] = map[string]any{"process": "constant", "rate": -5}
			}),
			field: "groups[0].arrival.rate",
		},
		{
			name: "unknown arrival process",
			raw: mutate(t, func(p map[string]any) {
				group0(p)["arrival"] = map[string]any{"process": "bursty", "rate": 5}
			}),
			field: "groups[0].arrival.process", detail: "bursty",
		},
		{
			name: "diurnal peak below trough",
			raw: mutate(t, func(p map[string]any) {
				group0(p)["arrival"] = map[string]any{"process": "diurnal", "peak": 2, "trough": 9}
			}),
			field: "groups[0].arrival.peak",
		},
		{
			name: "diurnal negative trough",
			raw: mutate(t, func(p map[string]any) {
				group0(p)["arrival"] = map[string]any{"process": "diurnal", "peak": 2, "trough": -1}
			}),
			field: "groups[0].arrival.trough",
		},
		{
			name: "overlapping flash windows",
			raw: mutate(t, func(p map[string]any) {
				group0(p)["arrival"] = map[string]any{
					"process": "flash", "rate": 5,
					"spikes": []map[string]any{
						{"at": "2s", "width": "4s", "factor": 3},
						{"at": "5s", "width": "2s", "factor": 2},
					},
				}
			}),
			field: "groups[0].arrival.spikes[1].at", detail: "overlaps",
		},
		{
			name: "spike factor not amplifying",
			raw: mutate(t, func(p map[string]any) {
				group0(p)["arrival"] = map[string]any{
					"process": "flash", "rate": 5,
					"spikes": []map[string]any{{"at": "2s", "width": "4s", "factor": 0.5}},
				}
			}),
			field: "groups[0].arrival.spikes[0].factor",
		},
		{
			name: "mobile churn rate out of range",
			raw: mutate(t, func(p map[string]any) {
				group0(p)["arrival"] = map[string]any{"process": "mobile", "rate": 5, "churnRate": 1.5}
			}),
			field: "groups[0].arrival.churnRate",
		},
		{
			name: "unsupported fault kind",
			raw: mutate(t, func(p map[string]any) {
				p["faults"] = map[string]any{
					"seed":   3,
					"faults": []map[string]any{{"kind": "probe-loss", "rate": 0.1}},
				}
			}),
			field: "faults.faults[0].kind",
		},
		{
			name: "converge rounds on udp",
			raw: mutate(t, func(p map[string]any) {
				p["transport"] = "udp"
				p["envelope"] = map[string]any{"maxConvergeRounds": 10}
			}),
			field: "envelope.maxConvergeRounds",
		},
		{
			name: "snapshot match on udp",
			raw: mutate(t, func(p map[string]any) {
				p["transport"] = "udp"
				p["envelope"] = map[string]any{"requireSnapshotMatch": true}
			}),
			field: "envelope.requireSnapshotMatch",
		},
		{
			name: "snapshot match with aggregation",
			raw: mutate(t, func(p map[string]any) {
				p["aggregateBits"] = 24
				p["envelope"] = map[string]any{"requireSnapshotMatch": true}
			}),
			field: "envelope.requireSnapshotMatch", detail: "aggregat",
		},
		{
			name: "drift on udp",
			raw: mutate(t, func(p map[string]any) {
				p["transport"] = "udp"
				p["drift"] = map[string]any{"every": 5}
			}),
			field: "drift", detail: "mem",
		},
		{
			name: "drift negative sensitivity",
			raw: mutate(t, func(p map[string]any) {
				p["drift"] = map[string]any{"sensitivity": -1}
			}),
			field: "drift.sensitivity",
		},
		{
			name: "drift event budget without detector",
			raw: mutate(t, func(p map[string]any) {
				p["envelope"] = map[string]any{"maxDriftEvents": 0}
			}),
			field: "envelope.maxDriftEvents", detail: "drift block",
		},
		{
			name: "negative drift event budget",
			raw: mutate(t, func(p map[string]any) {
				p["drift"] = map[string]any{}
				p["envelope"] = map[string]any{"maxDriftEvents": -1}
			}),
			field: "envelope.maxDriftEvents",
		},
		{
			name: "error budget out of range",
			raw: mutate(t, func(p map[string]any) {
				p["envelope"] = map[string]any{"maxErrorRate": 1.5}
			}),
			field: "envelope.maxErrorRate",
		},
		{
			name:  "unknown top-level field",
			raw:   []byte(`{"name":"x","seed":1,"duration":"5s","grops":[]}`),
			field: "plan",
		},
		{
			name:  "trailing data",
			raw:   append(mutate(t, func(map[string]any) {}), []byte(`{"second":"plan"}`)...),
			field: "plan", detail: "trailing",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodePlan(tc.raw)
			if err == nil {
				t.Fatalf("malformed plan accepted")
			}
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, want *PlanError: %v", err, err)
			}
			if !strings.Contains(pe.Field, tc.field) {
				t.Fatalf("error field %q does not name %q (msg: %s)", pe.Field, tc.field, pe.Msg)
			}
			if tc.detail != "" && !strings.Contains(pe.Msg, tc.detail) {
				t.Fatalf("error msg %q lacks %q", pe.Msg, tc.detail)
			}
		})
	}
}

func FuzzDecodeScenario(f *testing.F) {
	f.Add(mutate(f, func(map[string]any) {}))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","seed":1}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := DecodePlan(raw)
		if err != nil {
			return
		}
		// Accepted plans must round-trip: re-marshal and re-decode to an
		// equally valid plan. That pins the schema against fields that
		// validate but don't survive their own serialization.
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("accepted plan does not marshal: %v", err)
		}
		if _, err := DecodePlan(out); err != nil {
			t.Fatalf("round-tripped plan rejected: %v\nplan: %s", err, out)
		}
	})
}

// TestGenerateScenarioFuzzCorpus refreshes the checked-in seed corpus. Run
// with REGEN_FUZZ_CORPUS=1 when the schema changes.
func TestGenerateScenarioFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "1" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to regenerate")
	}
	seeds := [][]byte{
		mutate(t, func(map[string]any) {}),
		mutate(t, func(p map[string]any) { p["transport"] = "udp" }),
		mutate(t, func(p map[string]any) {
			p["aggregateBits"] = 24
			group0(p)["prefix"] = "10.20.0.0/24"
		}),
		mutate(t, func(p map[string]any) {
			group0(p)["arrival"] = map[string]any{"process": "diurnal", "peak": 9, "trough": 2, "period": "1h"}
		}),
		mutate(t, func(p map[string]any) {
			group0(p)["arrival"] = map[string]any{
				"process": "flash", "rate": 5,
				"spikes": []map[string]any{{"at": "2s", "width": "3s", "factor": 4}},
			}
		}),
		mutate(t, func(p map[string]any) {
			group0(p)["arrival"] = map[string]any{"process": "mobile", "rate": 5, "churnRate": 0.2}
		}),
		mutate(t, func(p map[string]any) {
			p["faults"] = faults.Scenario{Seed: 3, Faults: []faults.Fault{
				{Kind: faults.PacketLoss, Rate: 0.05, Target: "gossip"},
			}}
			p["envelope"] = map[string]any{"requireConverged": true, "maxConvergeRounds": 50}
		}),
		mutate(t, func(p map[string]any) {
			p["drift"] = map[string]any{"every": 3, "sensitivity": 1.5}
			p["envelope"] = map[string]any{"maxDriftEvents": 0}
		}),
		[]byte(`{}`),
		[]byte(`{"name":"x","seed":0,"duration":"1s"}`),
		[]byte(`not json at all`),
	}
	dir := "testdata/fuzz/FuzzDecodeScenario"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		if err := os.WriteFile(fmt.Sprintf("%s/seed-%02d", dir, i), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
