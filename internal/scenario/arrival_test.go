package scenario

import (
	"math"
	"testing"
	"time"

	"repro/internal/faults"
)

func constantArrival(rate float64) Arrival {
	return Arrival{Process: ProcessConstant, Rate: rate}
}

// TestArrivalSameSeedPinned: identical (seed, group) must reproduce the
// exact per-tick sequence, and a different seed must diverge — the
// scheduling layer under every byte-identical rerun gate.
func TestArrivalSameSeedPinned(t *testing.T) {
	a := newArrivals(42, 1, constantArrival(20), time.Second)
	b := newArrivals(42, 1, constantArrival(20), time.Second)
	diverged := false
	c := newArrivals(43, 1, constantArrival(20), time.Second)
	for tick := 0; tick < 500; tick++ {
		na, nb := a.Count(tick), b.Count(tick)
		if na != nb {
			t.Fatalf("tick %d: same seed diverged: %d vs %d", tick, na, nb)
		}
		if na != c.Count(tick) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("500 ticks of seed 42 and seed 43 were identical")
	}
}

// TestArrivalRateAccuracy: over a virtual hour, the realized count must be
// within ±5% of rate·3600 — on both Poisson paths (Knuth below λ=30, the
// normal approximation above).
func TestArrivalRateAccuracy(t *testing.T) {
	for _, rate := range []float64{3, 12, 80, 400} {
		ar := newArrivals(7, 2, constantArrival(rate), time.Second)
		total := 0
		for tick := 0; tick < 3600; tick++ {
			total += ar.Count(tick)
		}
		want := rate * 3600
		if err := math.Abs(float64(total)-want) / want; err > 0.05 {
			t.Errorf("rate %.0f/s: %d arrivals over an hour, want %.0f +/-5%% (err %.3f)", rate, total, want, err)
		}
	}
}

// TestDiurnalShape: the realized peak-window and trough-window totals must
// reproduce the declared peak/trough ratio. The windows are the central
// fifth of each half-cycle, so the analytic window means follow from the
// raised-cosine shape.
func TestDiurnalShape(t *testing.T) {
	const peak, trough = 50.0, 5.0
	period := time.Hour
	ar := newArrivals(11, 0, Arrival{
		Process: ProcessDiurnal, Peak: peak, Trough: trough, Period: faults.Duration(period),
	}, time.Second)

	sum := func(lo, hi int) float64 {
		total := 0.0
		for tick := lo; tick < hi; tick++ {
			total += float64(ar.Count(tick))
		}
		return total / float64(hi-lo)
	}
	// Trough is centered at t=0 (and 3600), peak at t=1800.
	troughMean := sum(0, 360) // first tenth of the cycle, hugging the trough
	peakMean := sum(1620, 1980)

	// Analytic means of rate(t) over the same windows.
	integral := func(lo, hi float64) float64 {
		// ∫ trough + (peak-trough)(1-cos(2πt/T))/2 dt over [lo,hi]
		mid := (peak + trough) / 2
		amp := (peak - trough) / 2
		T := period.Seconds()
		anti := func(x float64) float64 { return mid*x - amp*T/(2*math.Pi)*math.Sin(2*math.Pi*x/T) }
		return (anti(hi) - anti(lo)) / (hi - lo)
	}
	wantTrough := integral(0, 360)
	wantPeak := integral(1620, 1980)

	if err := math.Abs(peakMean-wantPeak) / wantPeak; err > 0.1 {
		t.Errorf("peak window mean %.2f, want %.2f (err %.3f)", peakMean, wantPeak, err)
	}
	if err := math.Abs(troughMean-wantTrough) / wantTrough; err > 0.15 {
		t.Errorf("trough window mean %.2f, want %.2f (err %.3f)", troughMean, wantTrough, err)
	}
	ratio := peakMean / troughMean
	wantRatio := wantPeak / wantTrough
	if math.Abs(ratio-wantRatio)/wantRatio > 0.2 {
		t.Errorf("peak/trough ratio %.2f, want %.2f from the plan", ratio, wantRatio)
	}
}

// TestFlashCrowdTotals: spikes must add exactly rate·width·(factor-1)
// expected arrivals, and the rate outside every window must stay at base.
func TestFlashCrowdTotals(t *testing.T) {
	ar := newArrivals(13, 3, Arrival{
		Process: ProcessFlash, Rate: 10,
		Spikes: []Spike{
			{At: faults.Duration(100 * time.Second), Width: faults.Duration(60 * time.Second), Factor: 5},
			{At: faults.Duration(400 * time.Second), Width: faults.Duration(30 * time.Second), Factor: 3},
		},
	}, time.Second)

	if got := ar.RateAt(50 * time.Second); got != 10 {
		t.Fatalf("baseline rate %v, want 10", got)
	}
	if got := ar.RateAt(120 * time.Second); got != 50 {
		t.Fatalf("in-spike rate %v, want 50", got)
	}
	if got := ar.RateAt(160 * time.Second); got != 10 {
		t.Fatalf("post-spike rate %v, want 10", got)
	}

	total := 0
	for tick := 0; tick < 600; tick++ {
		total += ar.Count(tick)
	}
	// 600s at 10/s, plus 60s·10·(5-1) plus 30s·10·(3-1) from the spikes.
	want := 600*10.0 + 60*10*4 + 30*10*2
	if err := math.Abs(float64(total)-want) / want; err > 0.05 {
		t.Errorf("flash total %d, want %.0f +/-5%% (err %.3f)", total, want, err)
	}
}

// TestMobileLDNSChurn: identities stay inside the pool, are pinned per
// seed, and actually churn across period boundaries at a plausible rate.
func TestMobileLDNSChurn(t *testing.T) {
	a := Arrival{Process: ProcessMobile, Rate: 5, ChurnRate: 0.5,
		Period: faults.Duration(time.Minute), LDNSPool: 4}
	ar := newArrivals(17, 0, a, time.Second)
	ar2 := newArrivals(17, 0, a, time.Second)

	changes, checks := 0, 0
	for m := 0; m < 40; m++ {
		prev := -1
		for epoch := 0; epoch < 20; epoch++ {
			at := time.Duration(epoch) * time.Minute
			id := ar.ldnsAt(m, at)
			if id < 0 || id >= 4 {
				t.Fatalf("member %d epoch %d: identity %d outside pool", m, epoch, id)
			}
			if id != ar2.ldnsAt(m, at) {
				t.Fatalf("member %d epoch %d: same seed diverged", m, epoch)
			}
			if prev >= 0 {
				checks++
				if id != prev {
					changes++
				}
			}
			prev = id
		}
	}
	// ChurnRate 0.5 with a 4-wide pool re-rolls to a different identity
	// ~37.5% of boundaries; require the churn to be clearly nonzero and
	// clearly below always-churning.
	frac := float64(changes) / float64(checks)
	if frac < 0.2 || frac > 0.55 {
		t.Errorf("observed churn fraction %.3f, want ~0.375", frac)
	}
}
