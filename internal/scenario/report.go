package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/drift"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Verdict is one envelope gate's outcome.
type Verdict struct {
	Gate   string `json:"gate"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// GroupDet is the deterministic slice of one group's outcome: pure counts,
// no clocks. Expected is the analytic op total (Σ rate·tick over the
// window), Offered the seeded Poisson realization — both are functions of
// the plan alone, on either transport.
type GroupDet struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Size      int     `json:"size"`
	Offered   uint64  `json:"offered"`
	Completed uint64  `json:"completed"`
	Errored   uint64  `json:"errored"`
	Expected  float64 `json:"expected,omitempty"`
}

// DetReport is the timing-independent slice of a run: byte-identical across
// same-seed reruns, which is what the CI determinism gate compares. On the
// udp transport the clock-dependent fields (convergence rounds, fault
// activations) are left zero — only the mem transport pins them.
type DetReport struct {
	Name      string     `json:"name"`
	Seed      uint64     `json:"seed"`
	Transport string     `json:"transport"`
	Daemons   int        `json:"daemons"`
	Ticks     int        `json:"ticks"`
	Groups    []GroupDet `json:"groups"`
	// Converged reports shard-digest equality across the mesh (trivially
	// true for a single daemon); ConvergeRounds is how many extra gossip
	// rounds past the driven window it took (mem transport only; 0 means
	// the mesh was already converged when the load stopped).
	Converged      bool `json:"converged"`
	ConvergeRounds int  `json:"convergeRounds,omitempty"`
	// SnapshotMatch reports whether every daemon's compiled snapshot is
	// byte-identical to the mirror service fed the merged op stream. Only
	// populated when the envelope demands it (mem transport).
	SnapshotMatch bool `json:"snapshotMatch,omitempty"`
	// Activations counts fault-plane firings per kind (mem transport; on
	// udp the gossip tick count is wall-clock-driven, so the counts are
	// real but not replayable).
	Activations map[faults.Kind]uint64 `json:"activations,omitempty"`
	// DriftFrames counts the detector frames captured from daemon 0's
	// compiled stream and DriftEvents the alarms they fired, in firing
	// order. Only populated when the plan carries a drift block (mem
	// transport); frame timestamps ride the virtual clock, so the events
	// are part of the byte-compared slice.
	DriftFrames int           `json:"driftFrames,omitempty"`
	DriftEvents []drift.Event `json:"driftEvents,omitempty"`
	Verdicts    []Verdict     `json:"verdicts"`
	AllPass     bool          `json:"allPass"`
}

// GroupTiming is one driven group's wall-clock slice.
type GroupTiming struct {
	Name    string  `json:"name"`
	P50Ms   float64 `json:"p50Ms"`
	P99Ms   float64 `json:"p99Ms"`
	MaxMs   float64 `json:"maxMs"`
	Retries uint64  `json:"retries,omitempty"`
}

// TimingReport is the wall-clock slice: real on both transports, gated only
// by the envelope's latency bounds, never byte-compared.
type TimingReport struct {
	WallMs float64 `json:"wallMs"`
	// ConvergeWaitMs is how long the udp mesh took to reach digest
	// equality after the driven window (0 on mem, where rounds are the
	// honest unit).
	ConvergeWaitMs float64                `json:"convergeWaitMs,omitempty"`
	Groups         []GroupTiming          `json:"groups"`
	Activations    map[faults.Kind]uint64 `json:"activations,omitempty"`
	Verdicts       []Verdict              `json:"verdicts"`
	AllPass        bool                   `json:"allPass"`
}

// Report is one scenario run's full outcome.
type Report struct {
	Det    DetReport    `json:"det"`
	Timing TimingReport `json:"timing"`
	// Stats is the shared registry snapshot fetched *through the stats op*
	// (over the wire on udp), so a passing run proves the scenario.group.*
	// instruments export end to end.
	Stats *obs.Snapshot `json:"stats,omitempty"`
}

// AllPass reports whether every gate — deterministic and timing — passed.
func (r *Report) AllPass() bool { return r.Det.AllPass && r.Timing.AllPass }

// FailedGates lists the failed verdicts across both slices.
func (r *Report) FailedGates() []Verdict {
	var out []Verdict
	for _, v := range r.Det.Verdicts {
		if !v.Pass {
			out = append(out, v)
		}
	}
	for _, v := range r.Timing.Verdicts {
		if !v.Pass {
			out = append(out, v)
		}
	}
	return out
}

func ms(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// percentile returns the q-th percentile of ds (exact, nearest-rank).
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func verdict(gate string, pass bool, format string, args ...any) Verdict {
	return Verdict{Gate: gate, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}
