package peering

import (
	"testing"
	"time"

	"repro/crp"
	"repro/internal/obs"
)

// Tombstone GC must run on the engine's injected clock, not on whatever
// timestamp the Tick caller holds. Deletion tombstones are stamped by the
// store's clock (Config.Now), so an engine on a virtual clock whose Tick is
// driven with wall time — a driver loop calling Tick(time.Now()) is the
// obvious shape — would compute a GC horizon epochs ahead of every virtual
// timestamp and reclaim live tombstones before peers learn of the forget.
func TestTombstoneGCUsesInjectedClock(t *testing.T) {
	mesh := NewMemMesh()
	vt := time.Unix(1_000, 0) // virtual epoch, decades behind wall time
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 4})
	p, err := New(Config{
		Self: "vclk-self", Addr: "vclk-self", Service: svc,
		TombstoneGC: 10 * time.Minute,
		Now:         func() time.Time { return vt },
		Registry:    obs.NewRegistry(), Resolve: mesh.Resolve, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Attach(mesh.Conn("vclk-self"))

	if err := svc.Observe("node-v", vt, "R1"); err != nil {
		t.Fatal(err)
	}
	svc.Forget("node-v") // tombstone stamped at vt by the injected clock

	// A wall-time Tick: rumor/digest pacing may use it freely, but the GC
	// horizon must not — the tombstone is 10 minutes old on the virtual
	// timeline, i.e. live.
	p.Tick(time.Now())
	if d, ok := svc.ExportDelta("node-v"); !ok || !d.Deleted {
		t.Fatalf("wall-time Tick GC'd a live tombstone (ok=%v, deleted=%v)", ok, d.Deleted)
	}
	if got := p.Stats().TombstonesGCed; got != 0 {
		t.Fatalf("tombstones_gced = %d after wall-time Tick, want 0", got)
	}

	// Once the virtual clock passes the horizon the tombstone is fair game,
	// whatever timestamp drives the Tick.
	vt = vt.Add(11 * time.Minute)
	p.Tick(time.Unix(0, 0))
	if _, ok := svc.ExportDelta("node-v"); ok {
		t.Fatal("tombstone survived GC past the virtual-clock horizon")
	}
	if got := p.Stats().TombstonesGCed; got != 1 {
		t.Fatalf("tombstones_gced = %d, want 1", got)
	}
}
