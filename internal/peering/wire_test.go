package peering

import (
	"strings"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/obs"
)

func TestDecodePeerMsgBounds(t *testing.T) {
	longID := strings.Repeat("x", MaxIDBytes+1)
	manyNodes := `["` + strings.Repeat(`n","`, MaxPullNodes) + `n"]`
	cases := []struct {
		name    string
		raw     string
		wantErr string
	}{
		{"valid join", `{"type":"join","from":"d1","addr":"127.0.0.1:9"}`, ""},
		{"valid digest", `{"type":"digest","from":"d1","shardCount":2,"digests":[1,2]}`, ""},
		{"valid delta", `{"type":"delta","from":"d1","ttl":3,"deltas":[{"node":"n1","version":1,"probes":[{"at":"2026-01-01T00:00:00Z","replicas":["r1"]}]}]}`, ""},
		{"valid pull", `{"type":"pull","from":"d1","nodes":["n1","n2"]}`, ""},
		{"empty payload", ``, "bad message"},
		{"truncated json", `{"type":"del`, "bad message"},
		{"not an object", `[1,2]`, "bad message"},
		{"unknown type", `{"type":"evict","from":"d1"}`, "unknown message type"},
		{"missing type", `{"from":"d1"}`, "unknown message type"},
		{"missing from", `{"type":"digest"}`, "from is required"},
		{"oversized payload", `{"type":"` + strings.Repeat("a", MaxMsgSize) + `"}`, "message too large"},
		{"oversized from", `{"type":"join","from":"` + longID + `"}`, "from is"},
		{"oversized addr", `{"type":"join","from":"d1","addr":"` + longID + `"}`, "addr is"},
		{"nul in from", `{"type":"join","from":"a\u0000b"}`, "NUL"},
		{"negative shard count", `{"type":"digest","from":"d1","shardCount":-1}`, "shardCount -1"},
		{"huge shard count", `{"type":"digest","from":"d1","shardCount":5000}`, "shardCount 5000"},
		{"negative shard index", `{"type":"diff","from":"d1","shards":[-1]}`, "shards[0]"},
		{"huge shard index", `{"type":"diff","from":"d1","shards":[4096]}`, "shards[0]"},
		{"empty meta node", `{"type":"diff","from":"d1","metas":[{"node":"","version":1}]}`, "empty node"},
		{"oversized meta node", `{"type":"diff","from":"d1","metas":[{"node":"` + longID + `","version":1}]}`, "metas[0].node"},
		{"empty delta node", `{"type":"delta","from":"d1","deltas":[{"node":"","version":1}]}`, "empty node"},
		{"oversized delta origin", `{"type":"delta","from":"d1","deltas":[{"node":"n","origin":"` + longID + `","version":1}]}`, "deltas[0].origin"},
		{"too many pull nodes", `{"type":"pull","from":"d1","nodes":` + manyNodes + `}`, "node list"},
		{"empty pull node", `{"type":"pull","from":"d1","nodes":[""]}`, "nodes[0] is empty"},
		{"negative ttl", `{"type":"delta","from":"d1","ttl":-1}`, "ttl -1"},
		{"huge ttl", `{"type":"delta","from":"d1","ttl":64}`, "ttl 64"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := decodePeerMsg([]byte(tc.raw))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("decodePeerMsg(%q) = %v, want ok", truncateRaw(tc.raw), err)
				}
				return
			}
			if err == nil {
				t.Fatalf("decodePeerMsg(%q) accepted, want error containing %q", truncateRaw(tc.raw), tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func truncateRaw(s string) string {
	if len(s) > 120 {
		return s[:120] + "..."
	}
	return s
}

// FuzzDecodePeerMsg asserts the gossip decoder never panics and that every
// accepted message also survives the full datagram handler — the same
// discipline FuzzDecodeRequest enforces on the crpd query path.
func FuzzDecodePeerMsg(f *testing.F) {
	seeds := []string{
		`{"type":"join","from":"d1","addr":"127.0.0.1:9000"}`,
		`{"type":"join-ack","from":"d2","addr":"127.0.0.1:9001"}`,
		`{"type":"digest","from":"d1","shardCount":4,"digests":[1,2,3,4]}`,
		`{"type":"diff","from":"d2","shards":[0,3],"metas":[{"node":"n1","origin":"d1","version":2}]}`,
		`{"type":"delta","from":"d1","ttl":3,"deltas":[{"node":"n1","origin":"d1","version":1,"probes":[{"at":"2026-01-01T00:00:00Z","replicas":["r1","r2"]}]}]}`,
		`{"type":"delta","from":"d1","ttl":1,"deltas":[{"node":"n2","origin":"d1","version":5,"deleted":true,"deletedAt":"2026-01-01T00:00:00Z"}]}`,
		`{"type":"pull","from":"d2","nodes":["n1","n2"]}`,
		`{"type":"digest","from":"d1","shardCount":-3}`,
		`{"type":"evict","from":"d1"}`,
		`{"type":`,
		``,
		`[]`,
		`{"type":"join","from":"\u0000"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	mesh := NewMemMesh()
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 4})
	p, err := New(Config{
		Self: "fuzz-self", Addr: "fuzz-self", Service: svc,
		Registry: obs.NewRegistry(), Resolve: mesh.Resolve, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	p.Attach(mesh.Conn("fuzz-self"))
	if err := p.AddPeer("fuzz-peer", "fuzz-peer"); err != nil {
		f.Fatal(err)
	}
	if err := svc.Observe("seed-node", time.Unix(0, 0), "r1", "r2"); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, bin, err := decodePeerMsg(raw)
		if err == nil {
			maxDeltas := MaxDeltas
			if bin {
				maxDeltas = MaxDeltasBinary
			}
			if !validTypes[m.Type] || len(m.Digests) > MaxShardCount ||
				len(m.Metas) > MaxMetas || len(m.Deltas) > maxDeltas ||
				len(m.Nodes) > MaxPullNodes || m.TTL < 0 || m.TTL > MaxTTL {
				t.Fatalf("decoder accepted out-of-bounds message: %+v", m)
			}
		}
		// Decoded or not, the handler must absorb the datagram without
		// panicking (bad messages only bump a counter).
		p.HandleDatagram(raw, memAddr("fuzz-peer"))
	})
}
