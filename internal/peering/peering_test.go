package peering

import (
	"net"
	"reflect"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/obs"
)

// testMesh is a small deterministic mesh of peering engines driven by hand:
// no goroutines, no tickers — Tick and pump are called explicitly.
type testMesh struct {
	mesh    *MemMesh
	svcs    []*crp.Service
	engines []*Peering
	conns   []net.PacketConn
	clock   time.Time
}

func newTestMesh(t testing.TB, n int, shape crp.StoreConfig, fanout int) *testMesh {
	t.Helper()
	tm := &testMesh{mesh: NewMemMesh(), clock: time.Unix(1_800_000_000, 0)}
	now := func() time.Time { return tm.clock }
	for i := 0; i < n; i++ {
		id := string(rune('a'+i)) + "-daemon"
		svc := crp.NewServiceWithStore(shape, crp.WithWindow(10))
		p, err := New(Config{
			Self: id, Addr: id, Service: svc,
			Fanout: fanout, Seed: uint64(100 + i),
			Now: now, Resolve: tm.mesh.Resolve, Registry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Attach(tm.mesh.Conn(id))
		tm.svcs = append(tm.svcs, svc)
		tm.engines = append(tm.engines, p)
		tm.conns = append(tm.conns, tm.mesh.Conn(id))
	}
	return tm
}

// fullMesh adds every engine as a peer of every other, bypassing the join
// handshake (which has its own test).
func (tm *testMesh) fullMesh(t testing.TB) {
	t.Helper()
	for i, p := range tm.engines {
		for j, q := range tm.engines {
			if i == j {
				continue
			}
			if err := p.AddPeer(q.cfg.Self, q.cfg.Addr); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// pump drains the fabric: for each engine in order, read every queued
// datagram and handle it; repeat until a full pass delivers nothing.
func (tm *testMesh) pump() {
	buf := make([]byte, MaxMsgSize)
	for progress := true; progress; {
		progress = false
		for i, pc := range tm.conns {
			for {
				n, from, err := pc.ReadFrom(buf)
				if err != nil {
					break
				}
				tm.engines[i].HandleDatagram(buf[:n], from)
				progress = true
			}
		}
	}
}

// tickAll advances the virtual clock and runs one gossip round everywhere.
func (tm *testMesh) tickAll() {
	tm.clock = tm.clock.Add(time.Second)
	for _, p := range tm.engines {
		p.Tick(tm.clock)
	}
	tm.pump()
}

// converged reports whether every engine's store digests match engine 0's.
func (tm *testMesh) converged() bool {
	ref := tm.svcs[0].ShardDigests()
	for _, svc := range tm.svcs[1:] {
		if !reflect.DeepEqual(svc.ShardDigests(), ref) {
			return false
		}
	}
	return true
}

func (tm *testMesh) converge(t *testing.T, maxRounds int) int {
	t.Helper()
	for r := 1; r <= maxRounds; r++ {
		tm.tickAll()
		if tm.converged() {
			return r
		}
	}
	t.Fatalf("mesh did not converge within %d rounds", maxRounds)
	return 0
}

func TestJoinHandshakeMeshesBothSides(t *testing.T) {
	tm := newTestMesh(t, 2, crp.StoreConfig{Shards: 8}, 2)
	if err := tm.engines[0].Join(tm.engines[1].cfg.Addr); err != nil {
		t.Fatal(err)
	}
	tm.pump()
	s0, s1 := tm.engines[0].Status(), tm.engines[1].Status()
	if len(s0.Peers) != 1 || s0.Peers[0].ID != "b-daemon" {
		t.Fatalf("daemon a peers = %+v, want [b-daemon]", s0.Peers)
	}
	if len(s1.Peers) != 1 || s1.Peers[0].ID != "a-daemon" {
		t.Fatalf("daemon b peers = %+v, want [a-daemon]", s1.Peers)
	}
}

func TestRumorPropagatesObservation(t *testing.T) {
	tm := newTestMesh(t, 3, crp.StoreConfig{Shards: 8}, 2)
	tm.fullMesh(t)
	if err := tm.svcs[0].Observe("n1", time.Unix(1, 0), "r1", "r2"); err != nil {
		t.Fatal(err)
	}
	tm.converge(t, 5)
	for i, svc := range tm.svcs {
		rm, err := svc.RatioMap("n1")
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		if len(rm) == 0 {
			t.Fatalf("daemon %d: empty ratio map", i)
		}
	}
	// The rumor path, not just anti-entropy, must have carried deltas.
	if applied := tm.engines[1].Stats().DeltasApplied + tm.engines[2].Stats().DeltasApplied; applied == 0 {
		t.Fatal("no deltas applied on the receiving daemons")
	}
}

func TestAntiEntropyRepairsMissedUpdate(t *testing.T) {
	tm := newTestMesh(t, 2, crp.StoreConfig{Shards: 8}, 1)
	tm.fullMesh(t)
	// Mutate daemon a's store but drop the rumor on the floor by clearing
	// the pending queue — only the digest exchange can repair this.
	if err := tm.svcs[0].Observe("n1", time.Unix(1, 0), "r1"); err != nil {
		t.Fatal(err)
	}
	tm.engines[0].mu.Lock()
	tm.engines[0].pending = map[crp.NodeID]int{}
	tm.engines[0].mu.Unlock()
	rounds := tm.converge(t, 5)
	if _, err := tm.svcs[1].RatioMap("n1"); err != nil {
		t.Fatalf("daemon b never learned n1 (converged in %d rounds): %v", rounds, err)
	}
	if tm.engines[1].Stats().Pulls == 0 && tm.engines[0].Stats().DeltasSent == 0 {
		t.Fatal("anti-entropy moved no data")
	}
}

func TestLastWriterWinsOnConcurrentUpdates(t *testing.T) {
	tm := newTestMesh(t, 2, crp.StoreConfig{Shards: 8}, 1)
	tm.fullMesh(t)
	// Both daemons observe the same node with different replica sets before
	// any gossip: equal versions, so the greater origin (b-daemon) must win
	// everywhere.
	if err := tm.svcs[0].Observe("n1", time.Unix(1, 0), "ra"); err != nil {
		t.Fatal(err)
	}
	if err := tm.svcs[1].Observe("n1", time.Unix(1, 0), "rb"); err != nil {
		t.Fatal(err)
	}
	tm.converge(t, 8)
	for i, svc := range tm.svcs {
		rm, err := svc.RatioMap("n1")
		if err != nil {
			t.Fatalf("daemon %d: %v", i, err)
		}
		if _, ok := rm["rb"]; !ok {
			t.Fatalf("daemon %d: ratio map %v, want b-daemon's write (rb) to win", i, rm)
		}
		if _, ok := rm["ra"]; ok {
			t.Fatalf("daemon %d: stale a-daemon write survived: %v", i, rm)
		}
	}
}

func TestForgetPropagatesAsTombstone(t *testing.T) {
	tm := newTestMesh(t, 3, crp.StoreConfig{Shards: 8}, 2)
	tm.fullMesh(t)
	if err := tm.svcs[0].Observe("n1", time.Unix(1, 0), "r1"); err != nil {
		t.Fatal(err)
	}
	tm.converge(t, 5)
	// Forget on daemon b (not the origin) must disappear from all three.
	tm.svcs[1].Forget("n1")
	tm.converge(t, 8)
	for i, svc := range tm.svcs {
		if _, err := svc.RatioMap("n1"); err == nil {
			t.Fatalf("daemon %d still knows forgotten node n1", i)
		}
		if got := len(svc.Nodes()); got != 0 {
			t.Fatalf("daemon %d has %d nodes, want 0", i, got)
		}
	}
}

func TestTombstoneGCReclaimsAfterHorizon(t *testing.T) {
	tm := newTestMesh(t, 2, crp.StoreConfig{Shards: 8}, 1)
	tm.fullMesh(t)
	if err := tm.svcs[0].Observe("n1", time.Unix(1, 0), "r1"); err != nil {
		t.Fatal(err)
	}
	tm.converge(t, 5)
	tm.svcs[0].Forget("n1")
	tm.converge(t, 8)
	// Advance the clock past the GC horizon (default 10m): the next ticks
	// must reclaim the tombstones on both daemons without disturbing
	// convergence.
	tm.clock = tm.clock.Add(11 * time.Minute)
	tm.tickAll()
	gced := tm.engines[0].Stats().TombstonesGCed + tm.engines[1].Stats().TombstonesGCed
	if gced == 0 {
		t.Fatal("no tombstones reclaimed after the horizon")
	}
	if !tm.converged() {
		tm.converge(t, 5) // transient GC skew must heal
	}
}

func TestShapeMismatchIsCountedNotApplied(t *testing.T) {
	tm := newTestMesh(t, 1, crp.StoreConfig{Shards: 8}, 1)
	p := tm.engines[0]
	if err := p.AddPeer("z-daemon", "z-daemon"); err != nil {
		t.Fatal(err)
	}
	p.HandleDatagram([]byte(`{"type":"digest","from":"z-daemon","shardCount":4,"digests":[1,2,3,4]}`), memAddr("z-daemon"))
	if got := p.Stats().ShapeMismatch; got != 1 {
		t.Fatalf("shape mismatch counter = %d, want 1", got)
	}
}

func TestStatusReportsPeersAndLag(t *testing.T) {
	tm := newTestMesh(t, 2, crp.StoreConfig{Shards: 8}, 1)
	tm.fullMesh(t)
	if err := tm.svcs[0].Observe("n1", time.Unix(1, 0), "r1"); err != nil {
		t.Fatal(err)
	}
	tm.converge(t, 8)
	tm.tickAll() // one quiescent round so the digest exchange records lag 0
	st := tm.engines[0].Status()
	if st.Self != "a-daemon" || st.ShardCount != 8 {
		t.Fatalf("status header wrong: %+v", st)
	}
	if len(st.Peers) != 1 || st.Peers[0].ID != "b-daemon" {
		t.Fatalf("peers = %+v", st.Peers)
	}
	if st.Peers[0].Lag != 0 {
		t.Fatalf("converged mesh reports lag %d, want 0", st.Peers[0].Lag)
	}
	if st.Stats.Rounds == 0 || st.Stats.DigestsSent == 0 {
		t.Fatalf("stats not accumulating: %+v", st.Stats)
	}
}

// TestBackgroundLoopConvergesOverMemMesh exercises Start/Close: real
// goroutines, ticker-driven, no manual pump — the read loop must spin on
// the mesh's timeout errors without burning away and still converge.
func TestBackgroundLoopConvergesOverMemMesh(t *testing.T) {
	mesh := NewMemMesh()
	var engines []*Peering
	var svcs []*crp.Service
	for i := 0; i < 2; i++ {
		id := string(rune('a'+i)) + "-bg"
		svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 8}, crp.WithWindow(10))
		p, err := New(Config{
			Self: id, Addr: id, Service: svc,
			Fanout: 1, Interval: 5 * time.Millisecond,
			Resolve: mesh.Resolve, Registry: obs.NewRegistry(), Seed: uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Attach(mesh.Conn(id))
		engines = append(engines, p)
		svcs = append(svcs, svc)
	}
	for _, p := range engines {
		if err := p.Start(); err != nil {
			t.Fatal(err)
		}
		defer p.Close()
	}
	if err := engines[0].AddPeer("b-bg", "b-bg"); err != nil {
		t.Fatal(err)
	}
	if err := engines[1].AddPeer("a-bg", "a-bg"); err != nil {
		t.Fatal(err)
	}
	if err := svcs[0].Observe("n1", time.Unix(1, 0), "r1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := svcs[1].RatioMap("n1"); err == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("background loops never replicated n1")
}
