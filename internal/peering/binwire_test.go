package peering

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/binwire"
	"repro/internal/obs"
)

// sampleMsgs covers every message type with every field its type uses,
// including the encoding edge cases (zero time, tombstones, empty
// collections, explicit codec token).
func sampleMsgs() []Msg {
	thresholdAt := time.Date(2026, 8, 8, 10, 20, 30, 123456789, time.UTC)
	return []Msg{
		{Type: MsgJoin, From: "d1", Addr: "127.0.0.1:9000", Codec: CodecBinary},
		{Type: MsgJoinAck, From: "d2", Addr: "127.0.0.1:9001"},
		{Type: MsgDigest, From: "d1", ShardCount: 4, Digests: []uint64{0, 1, 1<<64 - 1, 42}, Codec: CodecBinary},
		{Type: MsgDiff, From: "d2", Shards: []int{0, 3, MaxShardCount - 1}, Metas: []crp.NodeMeta{
			{Node: "n1", Origin: "d1", Version: 2},
			{Node: "n2", Origin: "d2", Version: 9, Deleted: true},
		}},
		{Type: MsgDelta, From: "d1", TTL: 3, Deltas: []crp.NodeDelta{
			{NodeMeta: crp.NodeMeta{Node: "n1", Origin: "d1", Version: 1}, Probes: []crp.Probe{
				{At: thresholdAt, Replicas: []crp.ReplicaID{"r1", "r2"}},
				{At: thresholdAt.Add(time.Second), Replicas: nil},
			}},
			{NodeMeta: crp.NodeMeta{Node: "n2", Origin: "d2", Version: 5, Deleted: true}, DeletedAt: thresholdAt},
		}},
		{Type: MsgPull, From: "d2", Nodes: []string{"n1", "n2"}},
		{Type: MsgDelta, From: "d1", TTL: 1, Deltas: []crp.NodeDelta{
			{NodeMeta: crp.NodeMeta{Node: "n3", Version: 1}},
		}},
		// Namespaced replica IDs ride inside the ID strings ("ns!replica"),
		// so a multi-CDN deployment needs no frame change — but the corpus
		// must cover them, including one at the exact MaxIDBytes boundary.
		{Type: MsgDelta, From: "d1", TTL: 2, Deltas: []crp.NodeDelta{
			{NodeMeta: crp.NodeMeta{Node: "n4", Origin: "d1", Version: 3}, Probes: []crp.Probe{
				{At: thresholdAt, Replicas: []crp.ReplicaID{
					"cdnA!r1", "cdnB!r1",
					crp.ReplicaID("cdnA!" + strings.Repeat("r", MaxIDBytes-len("cdnA!"))),
				}},
			}},
		}},
	}
}

// asJSON canonicalizes a decoded Msg for comparison: JSON marshaling
// sidesteps time.Time's internal-representation differences (wall vs
// monotonic, location pointers) while still comparing every wire-visible
// field.
func asJSON(t *testing.T, m Msg) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestBinaryPeerMsgRoundTrip pins decode(encode(x)) == x for the binary
// codec on every message type, and that the codec flag reports binary.
func TestBinaryPeerMsgRoundTrip(t *testing.T) {
	for _, m := range sampleMsgs() {
		raw, err := encodeBinaryPeerMsg(&m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		if raw[0] != binMagic {
			t.Fatalf("%s: first byte 0x%02x, want the binary magic", m.Type, raw[0])
		}
		got, bin, err := decodePeerMsg(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if !bin {
			t.Fatalf("%s: decode reported JSON for a binary datagram", m.Type)
		}
		if asJSON(t, got) != asJSON(t, m) {
			t.Fatalf("%s: round trip mismatch:\n got %s\nwant %s", m.Type, asJSON(t, got), asJSON(t, m))
		}
		// Canonical encoding: re-encoding the decoded message is
		// byte-identical (the determinism the bench rerun gate relies on).
		again, err := encodeBinaryPeerMsg(&got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", m.Type, err)
		}
		if !bytes.Equal(raw, again) {
			t.Fatalf("%s: re-encode not byte-identical", m.Type)
		}
	}
}

// TestCrossCodecPeerMsg is the JSON↔binary property test: for generated
// messages, decoding the JSON encoding and decoding the binary encoding
// yield identical messages.
func TestCrossCodecPeerMsg(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	id := func(prefix string) string {
		return fmt.Sprintf("%s-%02d", prefix, rng.Intn(100))
	}
	at := func() time.Time {
		return time.Unix(1_700_000_000+rng.Int63n(1_000_000), rng.Int63n(1_000_000_000)).UTC()
	}
	types := []string{MsgJoin, MsgJoinAck, MsgDelta, MsgDigest, MsgDiff, MsgPull}
	for i := 0; i < 200; i++ {
		m := Msg{Type: types[rng.Intn(len(types))], From: id("d"), TTL: rng.Intn(MaxTTL + 1)}
		if rng.Intn(2) == 0 {
			m.Addr = id("addr")
		}
		if rng.Intn(2) == 0 {
			m.Codec = CodecBinary
		}
		switch m.Type {
		case MsgDigest:
			m.ShardCount = 1 + rng.Intn(8)
			m.Digests = make([]uint64, rng.Intn(8))
			for j := range m.Digests {
				m.Digests[j] = rng.Uint64()
			}
		case MsgDiff:
			for j := 0; j < rng.Intn(4); j++ {
				m.Shards = append(m.Shards, rng.Intn(MaxShardCount))
				m.Metas = append(m.Metas, crp.NodeMeta{
					Node: crp.NodeID(id("n")), Origin: id("d"),
					Version: rng.Uint64() % 1000, Deleted: rng.Intn(2) == 0,
				})
			}
		case MsgDelta:
			for j := 0; j < 1+rng.Intn(3); j++ {
				d := crp.NodeDelta{NodeMeta: crp.NodeMeta{
					Node: crp.NodeID(id("n")), Origin: id("d"), Version: rng.Uint64() % 1000,
				}}
				if rng.Intn(3) == 0 {
					d.Deleted, d.DeletedAt = true, at()
				}
				for k := 0; k < rng.Intn(3); k++ {
					p := crp.Probe{At: at()}
					for l := 0; l < rng.Intn(3); l++ {
						p.Replicas = append(p.Replicas, crp.ReplicaID(id("r")))
					}
					d.Probes = append(d.Probes, p)
				}
				m.Deltas = append(m.Deltas, d)
			}
		case MsgPull:
			for j := 0; j < 1+rng.Intn(4); j++ {
				m.Nodes = append(m.Nodes, id("n"))
			}
		}

		jsonRaw, err := encodePeerMsg(&m, false)
		if err != nil {
			t.Fatalf("case %d: json encode: %v", i, err)
		}
		binRaw, err := encodePeerMsg(&m, true)
		if err != nil {
			t.Fatalf("case %d: binary encode: %v", i, err)
		}
		if len(binRaw) >= len(jsonRaw) {
			t.Fatalf("case %d (%s): binary encoding %d bytes, JSON %d — binary must be smaller",
				i, m.Type, len(binRaw), len(jsonRaw))
		}
		fromJSON, bin, err := decodePeerMsg(jsonRaw)
		if err != nil || bin {
			t.Fatalf("case %d: json decode: bin=%v err=%v", i, bin, err)
		}
		fromBin, bin, err := decodePeerMsg(binRaw)
		if err != nil || !bin {
			t.Fatalf("case %d: binary decode: bin=%v err=%v", i, bin, err)
		}
		if asJSON(t, fromJSON) != asJSON(t, fromBin) {
			t.Fatalf("case %d: codecs disagree:\n json %s\n bin  %s",
				i, asJSON(t, fromJSON), asJSON(t, fromBin))
		}
	}
}

// TestBinaryPeerMsgBounds is the boundary table for the binary decoder:
// exact-limit accept, limit+1 reject, mirroring the JSON table above it in
// wire_test.go.
func TestBinaryPeerMsgBounds(t *testing.T) {
	decode := func(m *Msg) error {
		raw, err := encodeBinaryPeerMsg(m)
		if err != nil {
			return err
		}
		_, _, err = decodePeerMsg(raw)
		return err
	}
	base := func() Msg { return Msg{Type: MsgDigest, From: "d1"} }

	t.Run("from at limit", func(t *testing.T) {
		m := base()
		m.From = strings.Repeat("x", MaxIDBytes)
		if err := decode(&m); err != nil {
			t.Fatalf("MaxIDBytes from rejected: %v", err)
		}
	})
	t.Run("from over limit", func(t *testing.T) {
		m := base()
		m.From = strings.Repeat("x", MaxIDBytes+1)
		if err := decode(&m); err == nil {
			t.Fatal("oversized from accepted")
		}
	})
	t.Run("codec over limit", func(t *testing.T) {
		m := base()
		m.Codec = strings.Repeat("c", MaxCodecBytes+1)
		if err := decode(&m); err == nil {
			t.Fatal("oversized codec token accepted")
		}
	})
	t.Run("ttl at limit", func(t *testing.T) {
		m := Msg{Type: MsgDelta, From: "d1", TTL: MaxTTL}
		if err := decode(&m); err != nil {
			t.Fatalf("MaxTTL rejected: %v", err)
		}
	})
	t.Run("ttl over limit", func(t *testing.T) {
		m := Msg{Type: MsgDelta, From: "d1", TTL: MaxTTL + 1}
		if err := decode(&m); err == nil {
			t.Fatal("TTL over limit accepted")
		}
	})
	t.Run("digests at limit", func(t *testing.T) {
		m := base()
		m.ShardCount = MaxShardCount
		m.Digests = make([]uint64, MaxShardCount)
		if err := decode(&m); err != nil {
			t.Fatalf("MaxShardCount digests rejected: %v", err)
		}
	})
	t.Run("digests over limit", func(t *testing.T) {
		m := base()
		m.Digests = make([]uint64, MaxShardCount+1)
		if err := decode(&m); err == nil {
			t.Fatal("digest vector over limit accepted")
		}
	})
	t.Run("shard index over limit", func(t *testing.T) {
		m := Msg{Type: MsgDiff, From: "d1", Shards: []int{MaxShardCount}}
		if err := decode(&m); err == nil {
			t.Fatal("shard index at MaxShardCount accepted (valid range is [0, MaxShardCount))")
		}
	})
	t.Run("nodes at limit", func(t *testing.T) {
		m := Msg{Type: MsgPull, From: "d1", Nodes: make([]string, MaxPullNodes)}
		for i := range m.Nodes {
			m.Nodes[i] = fmt.Sprintf("n%d", i)
		}
		if err := decode(&m); err != nil {
			t.Fatalf("MaxPullNodes rejected: %v", err)
		}
	})
	t.Run("nodes over limit", func(t *testing.T) {
		m := Msg{Type: MsgPull, From: "d1", Nodes: make([]string, MaxPullNodes+1)}
		for i := range m.Nodes {
			m.Nodes[i] = fmt.Sprintf("n%d", i)
		}
		if err := decode(&m); err == nil {
			t.Fatal("pull node list over limit accepted")
		}
	})
	t.Run("replicas per probe at limit", func(t *testing.T) {
		reps := make([]crp.ReplicaID, MaxReplicasPerProbe)
		for i := range reps {
			reps[i] = crp.ReplicaID(fmt.Sprintf("r%d", i))
		}
		m := Msg{Type: MsgDelta, From: "d1", TTL: 1, Deltas: []crp.NodeDelta{{
			NodeMeta: crp.NodeMeta{Node: "n1", Version: 1},
			Probes:   []crp.Probe{{At: time.Unix(0, 0).UTC(), Replicas: reps}},
		}}}
		if err := decode(&m); err != nil {
			t.Fatalf("MaxReplicasPerProbe rejected: %v", err)
		}
	})
	t.Run("replicas per probe over limit", func(t *testing.T) {
		reps := make([]crp.ReplicaID, MaxReplicasPerProbe+1)
		for i := range reps {
			reps[i] = crp.ReplicaID(fmt.Sprintf("r%d", i))
		}
		m := Msg{Type: MsgDelta, From: "d1", TTL: 1, Deltas: []crp.NodeDelta{{
			NodeMeta: crp.NodeMeta{Node: "n1", Version: 1},
			Probes:   []crp.Probe{{At: time.Unix(0, 0).UTC(), Replicas: reps}},
		}}}
		if err := decode(&m); err == nil {
			t.Fatal("replica set over limit accepted")
		}
	})
	t.Run("deltas binary count over limit", func(t *testing.T) {
		// A count past MaxDeltasBinary is rejected by the ceiling check
		// before the remaining-bytes check can even apply.
		var e binwire.Enc
		e.U8(binMagic)
		e.U8(binVersion)
		e.U8(2) // delta type code
		e.String("d1")
		e.String("")
		e.String("")
		e.Uvarint(1) // ttl
		e.Uvarint(0) // shardCount
		e.Uvarint(0) // digests
		e.Uvarint(0) // shards
		e.Uvarint(0) // metas
		e.Uvarint(MaxDeltasBinary + 1)
		if _, err := decodeBinaryPeerMsg(e.Bytes()); err == nil {
			t.Fatal("binary delta count over limit accepted")
		}
	})
	t.Run("unknown type code", func(t *testing.T) {
		var e binwire.Enc
		e.U8(binMagic)
		e.U8(binVersion)
		e.U8(99)
		if _, _, err := decodePeerMsg(e.Bytes()); err == nil {
			t.Fatal("unknown type code accepted")
		}
	})
	t.Run("unknown version", func(t *testing.T) {
		raw, err := encodeBinaryPeerMsg(&Msg{Type: MsgJoin, From: "d1"})
		if err != nil {
			t.Fatal(err)
		}
		raw[1] = binVersion + 1
		if _, _, err := decodePeerMsg(raw); err == nil {
			t.Fatal("unknown binary version accepted")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		raw, err := encodeBinaryPeerMsg(&Msg{Type: MsgJoin, From: "d1"})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := decodePeerMsg(append(raw, 0)); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	})
	t.Run("every truncation fails cleanly", func(t *testing.T) {
		for _, m := range sampleMsgs() {
			raw, err := encodeBinaryPeerMsg(&m)
			if err != nil {
				t.Fatal(err)
			}
			for cut := 0; cut < len(raw); cut++ {
				if _, _, err := decodePeerMsg(raw[:cut]); err == nil {
					t.Fatalf("%s truncated to %d/%d bytes accepted", m.Type, cut, len(raw))
				}
			}
		}
	})
}

// TestWorstCaseDigestFitsTheWire pins the MaxShardCount sizing argument: the
// worst-case digest message at the full shard width — every digest word at
// its widest encoding, maximal sender identity — must encode under
// MaxMsgSize in both codecs. This is the test that made the former
// 4096-shard ceiling a lie.
func TestWorstCaseDigestFitsTheWire(t *testing.T) {
	digests := make([]uint64, MaxShardCount)
	for i := range digests {
		digests[i] = 1<<64 - 1 // 20 decimal digits in JSON, 8+ varint-free bytes in binary
	}
	m := Msg{
		Type:       MsgDigest,
		From:       strings.Repeat("x", MaxIDBytes),
		Addr:       strings.Repeat("y", MaxIDBytes),
		Codec:      CodecBinary,
		ShardCount: MaxShardCount,
		Digests:    digests,
	}
	for _, bin := range []bool{false, true} {
		raw, err := encodePeerMsg(&m, bin)
		if err != nil {
			t.Fatalf("bin=%v: worst-case digest unencodable: %v", bin, err)
		}
		if len(raw) > MaxMsgSize {
			t.Fatalf("bin=%v: worst-case digest is %d bytes, exceeds MaxMsgSize %d", bin, len(raw), MaxMsgSize)
		}
	}
}

// TestEncodeRejectsUnsendable is the 65508..65536-gap regression: a message
// whose encoding lands between the old 64 KiB bound and the UDP payload
// ceiling used to pass the encoder's size check and then fail at WriteTo.
// Now the encoder rejects it and nothing reaches the socket.
func TestEncodeRejectsUnsendable(t *testing.T) {
	// Build a pull message and pad the node list until the JSON encoding
	// lands inside the gap: coarse 64-byte entries up to just below the
	// ceiling, then one entry sized to land at 65512.
	m := Msg{Type: MsgPull, From: "d1"}
	entry := strings.Repeat("n", 60)
	for {
		raw, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) > 65507-128 {
			// Adding a node of length L grows the JSON by L+3 bytes
			// (quotes plus comma).
			m.Nodes = append(m.Nodes, strings.Repeat("q", 65512-len(raw)-3))
			break
		}
		m.Nodes = append(m.Nodes, fmt.Sprintf("%s%04d", entry, len(m.Nodes)))
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) <= 65507 || len(raw) > 65536 {
		t.Fatalf("setup failed to land in the gap: %d bytes", len(raw))
	}
	if _, err := encodePeerMsg(&m, false); err == nil {
		t.Fatalf("encoder accepted a %d-byte message no UDP datagram can carry", len(raw))
	}

	// Engine-level: the send path must drop it (send_errors) and write
	// nothing to the socket.
	mesh := NewMemMesh()
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 4})
	p, err := New(Config{
		Self: "gap-self", Addr: "gap-self", Service: svc,
		Registry: obs.NewRegistry(), Resolve: mesh.Resolve,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Attach(mesh.Conn("gap-self"))
	peerConn := mesh.Conn("gap-peer") // register before sending: MemMesh drops to unknown addrs
	if _, err := p.sendRaw(memAddr("gap-peer"), &m, false); err == nil {
		t.Fatal("sendRaw accepted an unsendable message")
	}
	if got := p.Stats().SendErrors; got != 1 {
		t.Fatalf("send_errors = %d, want 1", got)
	}
	buf := make([]byte, MaxMsgSize+1)
	if n, _, err := peerConn.ReadFrom(buf); err == nil {
		t.Fatalf("a %d-byte datagram reached the socket", n)
	}
}

// TestOversizedDatagramDropped is the read-side half of the truncation
// regression: a datagram larger than MaxMsgSize (only observable because the
// read buffer is one byte larger than the bound) is counted as oversize and
// never reaches a decoder.
func TestOversizedDatagramDropped(t *testing.T) {
	mesh := NewMemMesh()
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 4})
	p, err := New(Config{
		Self: "ovr-self", Addr: "ovr-self", Service: svc,
		Registry: obs.NewRegistry(), Resolve: mesh.Resolve,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Attach(mesh.Conn("ovr-self"))

	// Simulate what the read loop sees for a too-large datagram: its
	// MaxMsgSize+1 buffer filled completely.
	huge := make([]byte, MaxMsgSize+1)
	copy(huge, []byte(`{"type":"join","from":"ovr-peer"`)) // a truncated prefix of a valid message
	p.HandleDatagram(huge, memAddr("ovr-peer"))
	st := p.Stats()
	if st.OversizeMsgs != 1 {
		t.Fatalf("oversize_msgs = %d, want 1", st.OversizeMsgs)
	}
	if st.BadMsgs != 0 {
		t.Fatalf("bad_msgs = %d, want 0 — truncated bytes must not reach the decoder", st.BadMsgs)
	}
	if len(p.Status().Peers) != 0 {
		t.Fatal("truncated join registered a peer")
	}
}

// TestJSONOnlyEngineRejectsBinary pins the non-upgraded-daemon simulation: a
// JSON-pinned engine treats binary datagrams as undecodable and never
// advertises binary support.
func TestJSONOnlyEngineRejectsBinary(t *testing.T) {
	mesh := NewMemMesh()
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 4})
	p, err := New(Config{
		Self: "legacy", Addr: "legacy", Service: svc, Codec: "json",
		Registry: obs.NewRegistry(), Resolve: mesh.Resolve,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Attach(mesh.Conn("legacy"))
	if got := p.codecToken(); got != "" {
		t.Fatalf("JSON-only engine advertises codec %q", got)
	}
	raw, err := encodeBinaryPeerMsg(&Msg{Type: MsgJoin, From: "modern", Addr: "modern"})
	if err != nil {
		t.Fatal(err)
	}
	p.HandleDatagram(raw, memAddr("modern"))
	st := p.Stats()
	if st.BadMsgs != 1 || st.BinMsgs != 0 {
		t.Fatalf("bad_msgs = %d, bin_msgs = %d; want 1, 0", st.BadMsgs, st.BinMsgs)
	}
	if len(p.Status().Peers) != 0 {
		t.Fatal("binary join registered a peer on a JSON-only engine")
	}

	// Unknown codec values are config errors, not silent fallbacks.
	if _, err := New(Config{
		Self: "bad", Service: crp.NewServiceWithStore(crp.StoreConfig{Shards: 4}),
		Codec: "msgpack", Registry: obs.NewRegistry(),
	}); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestCodecNegotiationUpgrades pins the advertisement flow: two binary
// engines statically peered (no join handshake) upgrade to binary after the
// first digest advertisement, while a JSON peer never does.
func TestCodecNegotiationUpgrades(t *testing.T) {
	mesh := NewMemMesh()
	mk := func(self, codec string) *Peering {
		svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 4})
		p, err := New(Config{
			Self: self, Addr: self, Service: svc, Codec: codec,
			Registry: obs.NewRegistry(), Resolve: mesh.Resolve, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		p.Attach(mesh.Conn(self))
		return p
	}
	a, b := mk("up-a", ""), mk("up-b", "")
	if err := a.AddPeer("up-b", "up-b"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer("up-a", "up-a"); err != nil {
		t.Fatal(err)
	}
	// Statically added peers start on the JSON fallback.
	if a.peerByID("up-b").bin.Load() {
		t.Fatal("peer marked binary before any advertisement")
	}
	// One digest from a (JSON, carries the advertisement) upgrades b's view
	// of a; pump the mesh manually.
	a.Tick(time.Unix(10, 0))
	buf := make([]byte, MaxMsgSize+1)
	bc := mesh.Conn("up-b")
	for {
		n, from, err := bc.ReadFrom(buf)
		if err != nil {
			break
		}
		b.HandleDatagram(buf[:n], from)
	}
	if !b.peerByID("up-a").bin.Load() {
		t.Fatal("digest advertisement did not mark the sender binary-capable")
	}
	// b's next digest to a now goes binary.
	b.Tick(time.Unix(11, 0))
	ac := mesh.Conn("up-a")
	n, from, err := ac.ReadFrom(buf)
	if err != nil {
		t.Fatalf("no digest from b: %v", err)
	}
	if buf[0] != binMagic {
		t.Fatalf("upgraded peer still sent JSON (first byte 0x%02x)", buf[0])
	}
	a.HandleDatagram(buf[:n], from)
	if !a.peerByID("up-b").bin.Load() {
		t.Fatal("receiving a binary datagram did not mark the sender binary-capable")
	}
	if b.Stats().BinSent == 0 {
		t.Fatal("bin_sent did not count the binary digest")
	}
}

// TestSendDeltasPacksToBudget pins the size-driven batching: entries small
// enough to share a datagram are batched together (binary runs past the old
// count cap), and every emitted datagram respects MaxMsgSize.
func TestSendDeltasPacksToBudget(t *testing.T) {
	mesh := NewMemMesh()
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 4})
	p, err := New(Config{
		Self: "pack-self", Addr: "pack-self", Service: svc,
		Registry: obs.NewRegistry(), Resolve: mesh.Resolve,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Attach(mesh.Conn("pack-self"))
	conn := mesh.Conn("pack-peer") // register before sending: MemMesh drops to unknown addrs
	if err := p.AddPeer("pack-peer", "pack-peer"); err != nil {
		t.Fatal(err)
	}
	ps := p.peerByID("pack-peer")
	ps.bin.Store(true) // binary path: packing is budget-driven

	deltas := make([]crp.NodeDelta, 600) // 600 > the JSON MaxDeltas cap of 256
	for i := range deltas {
		deltas[i] = crp.NodeDelta{NodeMeta: crp.NodeMeta{
			Node: crp.NodeID(fmt.Sprintf("node-%04d", i)), Origin: "pack-self", Version: 1,
		}}
	}
	p.sendDeltas(ps, deltas, 1)

	buf := make([]byte, MaxMsgSize+1)
	msgs, total := 0, 0
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			break
		}
		if n > MaxMsgSize {
			t.Fatalf("packed datagram is %d bytes, exceeds MaxMsgSize", n)
		}
		m, bin, err := decodePeerMsg(buf[:n])
		if err != nil || !bin {
			t.Fatalf("packed datagram undecodable: bin=%v err=%v", bin, err)
		}
		msgs++
		total += len(m.Deltas)
	}
	if total != 600 {
		t.Fatalf("delivered %d deltas, want 600", total)
	}
	if msgs != 1 {
		// 600 minimal entries are ~11 KB — they must share one datagram
		// under size-driven packing (count-driven would need 19 at 32/msg).
		t.Fatalf("600 small deltas used %d datagrams, want 1", msgs)
	}
}

// corruptedSeeds returns the hand-built malformed binary datagrams the fuzz
// corpus checks in alongside the valid encodings: each one pins a distinct
// decoder rejection path.
func corruptedBinarySeeds(valid [][]byte) [][]byte {
	var out [][]byte
	for _, raw := range valid {
		out = append(out, raw[:len(raw)/2])                       // truncated mid-structure
		out = append(out, append(append([]byte(nil), raw...), 0)) // trailing byte
	}
	bad := append([]byte(nil), valid[0]...)
	bad[1] = binVersion + 1 // unsupported version
	out = append(out, bad)
	var e binwire.Enc
	e.U8(binMagic)
	e.U8(binVersion)
	e.U8(99) // unknown type code
	out = append(out, append([]byte(nil), e.Bytes()...))
	return out
}

// FuzzDecodeBinaryPeerMsg fuzzes the binary gossip decoder specifically:
// never panic, never accept an out-of-bounds message, and everything
// accepted re-encodes canonically and survives the full datagram handler.
// The checked-in corpus under testdata/fuzz seeds every message type plus
// the corruption shapes above (regenerate with REGEN_FUZZ_CORPUS=1).
func FuzzDecodeBinaryPeerMsg(f *testing.F) {
	var valid [][]byte
	for _, m := range sampleMsgs() {
		raw, err := encodeBinaryPeerMsg(&m)
		if err != nil {
			f.Fatal(err)
		}
		valid = append(valid, raw)
		f.Add(raw)
	}
	for _, raw := range corruptedBinarySeeds(valid) {
		f.Add(raw)
	}

	mesh := NewMemMesh()
	svc := crp.NewServiceWithStore(crp.StoreConfig{Shards: 4})
	p, err := New(Config{
		Self: "binfuzz-self", Addr: "binfuzz-self", Service: svc,
		Registry: obs.NewRegistry(), Resolve: mesh.Resolve, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	p.Attach(mesh.Conn("binfuzz-self"))
	if err := p.AddPeer("binfuzz-peer", "binfuzz-peer"); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, bin, err := decodePeerMsg(raw)
		if err != nil {
			p.HandleDatagram(raw, memAddr("binfuzz-peer")) // must not panic on rejects either
			return
		}
		if bin != (len(raw) > 0 && raw[0] == binMagic) {
			t.Fatalf("codec flag %v disagrees with the first byte", bin)
		}
		maxDeltas := MaxDeltas
		if bin {
			maxDeltas = MaxDeltasBinary
		}
		if len(m.From) > MaxIDBytes || m.TTL > MaxTTL || m.ShardCount > MaxShardCount ||
			len(m.Digests) > MaxShardCount || len(m.Deltas) > maxDeltas ||
			len(m.Metas) > MaxMetas || len(m.Nodes) > MaxPullNodes {
			t.Fatalf("decoder accepted out-of-bounds message: %+v", m)
		}
		if bin {
			// Accepted binary messages re-encode canonically: encode is
			// total on decoder output and a second decode agrees.
			re, err := encodeBinaryPeerMsg(&m)
			if err != nil {
				t.Fatalf("decoded message unencodable: %v", err)
			}
			m2, _, err := decodePeerMsg(re)
			if err != nil {
				t.Fatalf("re-encoded message undecodable: %v", err)
			}
			if asJSON(t, m) != asJSON(t, m2) {
				t.Fatalf("re-encode round trip drifted")
			}
		}
		p.HandleDatagram(raw, memAddr("binfuzz-peer"))
	})
}

// TestGenerateFuzzCorpus writes the checked-in seed corpus for
// FuzzDecodeBinaryPeerMsg. It is a no-op unless REGEN_FUZZ_CORPUS is set,
// so the corpus only changes deliberately.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeBinaryPeerMsg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var valid [][]byte
	for _, m := range sampleMsgs() {
		raw, err := encodeBinaryPeerMsg(&m)
		if err != nil {
			t.Fatal(err)
		}
		valid = append(valid, raw)
	}
	for i, raw := range append(valid, corruptedBinarySeeds(valid)...) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", raw)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
