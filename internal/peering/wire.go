package peering

import (
	"encoding/json"
	"fmt"
	"unicode/utf8"

	"repro/crp"
)

// Gossip wire protocol: one Msg per UDP datagram, in one of two codecs —
// compact binary (wire.go's bounds + binwire primitives, format in
// binwire.go and DESIGN.md §9) or JSON, the bootstrap/fallback codec every
// version speaks. The first byte routes: binMagic means binary, anything
// else (JSON starts with '{') means JSON. Both codecs share one bounds
// discipline, same as the crpd request path (internal/crpdaemon/decode.go):
// every field that sizes an allocation, keys a map or indexes a slice is
// bounded in the decode path before any handler logic runs, so a hostile or
// corrupted datagram costs one counter bump, never memory or CPU.

// Msg types.
const (
	// MsgJoin introduces a daemon to a peer: "add me at Addr". The receiver
	// answers MsgJoinAck (introducing itself back) so one join call meshes
	// both sides.
	MsgJoin = "join"
	// MsgJoinAck confirms a join and carries the receiver's identity.
	MsgJoinAck = "join-ack"
	// MsgDelta carries full node entries (rumor push or anti-entropy
	// repair). TTL is the remaining rumor hop budget.
	MsgDelta = "delta"
	// MsgDigest opens an anti-entropy round: per-shard digest words.
	MsgDigest = "digest"
	// MsgDiff answers a digest: the differing shard indices plus the
	// sender's entry metadata for those shards.
	MsgDiff = "diff"
	// MsgPull requests full entries for the named nodes.
	MsgPull = "pull"
)

// Wire bounds.
const (
	// MaxMsgSize bounds the raw datagram at the IPv4 UDP payload ceiling
	// (65535 - 8 UDP - 20 IP), matching crpdaemon.MaxReplySize. It used to
	// be 64 KiB, which left a 65508..65536-byte gap where a message passed
	// the encoder's own size check and then failed at WriteTo — the bound
	// now guarantees that whatever the encoder accepts is sendable.
	MaxMsgSize = 65507
	// MaxIDBytes bounds daemon IDs, addresses and node names (DNS-name
	// scale, like crpd's identity fields).
	MaxIDBytes = 255
	// MaxShardCount bounds the digest vector and any shard index. It is
	// sized from the wire, not the store: a digest message carries one
	// 64-bit word per shard, and at 2048 shards the worst case (every word
	// 20 decimal digits, a 255-byte sender ID) still encodes under
	// MaxMsgSize in JSON (~43 KiB) as well as binary (~16 KiB);
	// TestWorstCaseDigestFitsTheWire pins both. The former 4096 ceiling
	// was a lie — a 4096-shard digest worst-case JSON-encodes to ~86 KiB,
	// which the encoder itself would refuse to send, so anti-entropy could
	// never run at that width. New rejects wider stores up front. The crp
	// shard clamp tops out at 1024, so defaults keep 2x headroom.
	MaxShardCount = 2048
	// MaxMetas bounds the flat metadata list of a diff. It is a decode
	// sanity cap, not a fit guarantee: worst-case metas (255-byte node and
	// origin IDs) overflow a datagram well before this count, so outbound
	// diffs are packed to the byte budget (packMetas) and only whole
	// shards whose metas fit are claimed as covered.
	MaxMetas = 4096
	// MaxDeltas bounds the entries of one JSON delta message. Binary delta
	// messages are instead packed (and bounded) by the wire budget — see
	// MaxDeltasBinary.
	MaxDeltas = 256
	// MaxDeltasBinary is the decode sanity cap for binary delta messages,
	// whose batching is size-driven: entries are packed until the datagram
	// budget is reached, so tiny entries can exceed the JSON count cap.
	// The smallest possible entry is ~6 wire bytes, so a datagram can
	// physically hold ~10k; the cap sits above that and the decoder's
	// remaining-bytes check enforces the real ceiling.
	MaxDeltasBinary = 16384
	// MaxProbesPerDelta bounds one entry's probe window.
	MaxProbesPerDelta = 4096
	// MaxReplicasPerProbe bounds one probe's replica set.
	MaxReplicasPerProbe = 64
	// MaxPullNodes bounds the node list of a pull.
	MaxPullNodes = 1024
	// MaxTTL bounds the rumor hop budget.
	MaxTTL = 16
	// MaxCodecBytes bounds the codec-advertisement token.
	MaxCodecBytes = 16
)

// CodecBinary is the codec token advertised in join/join-ack/digest
// messages by engines that accept the compact binary codec. Unknown tokens
// are ignored (forward compatibility); an absent token means JSON only.
const CodecBinary = "bin1"

// Msg is one gossip datagram. Fields are pooled across types; decodePeerMsg
// checks only the bounds, handlers ignore fields their type doesn't use.
type Msg struct {
	Type string `json:"type"`
	// From is the sender's daemon ID.
	From string `json:"from"`
	// Addr is the sender's gossip listen address (join/join-ack), so the
	// receiver can add the sender as a peer.
	Addr string `json:"addr,omitempty"`
	// ShardCount is the sender's store width (digest); digest comparison is
	// only defined between equal widths.
	ShardCount int `json:"shardCount,omitempty"`
	// Digests is the per-shard digest vector (digest).
	Digests []uint64 `json:"digests,omitempty"`
	// Shards lists the differing shard indices (diff).
	Shards []int `json:"shards,omitempty"`
	// Metas is the flat entry-metadata list for those shards (diff).
	Metas []crp.NodeMeta `json:"metas,omitempty"`
	// Deltas carries full node entries (delta).
	Deltas []crp.NodeDelta `json:"deltas,omitempty"`
	// Nodes names the entries requested (pull).
	Nodes []string `json:"nodes,omitempty"`
	// TTL is the remaining rumor hop budget of the carried deltas (delta).
	TTL int `json:"ttl,omitempty"`
	// Codec advertises the sender's wire-codec support (join, join-ack and
	// digest — the periodic messages, so statically-peered meshes upgrade
	// without a handshake). CodecBinary means binary is accepted; empty or
	// unknown means JSON only.
	Codec string `json:"codec,omitempty"`
}

// validTypes gates Msg.Type.
var validTypes = map[string]bool{
	MsgJoin: true, MsgJoinAck: true, MsgDelta: true,
	MsgDigest: true, MsgDiff: true, MsgPull: true,
}

// decodePeerMsg parses and bounds-checks one gossip datagram in either
// codec, routed by the first byte. It is the single decode path — the
// socket loop and the deterministic in-memory harness both route through
// it. The returned bin flag reports which codec the sender used, which is
// how an engine learns a statically-added peer speaks binary.
func decodePeerMsg(raw []byte) (m Msg, bin bool, err error) {
	if len(raw) > MaxMsgSize {
		return m, false, fmt.Errorf("message too large: %d bytes exceeds the %d-byte limit", len(raw), MaxMsgSize)
	}
	if len(raw) > 0 && raw[0] == binMagic {
		m, err = decodeBinaryPeerMsg(raw)
		if err != nil {
			return m, true, err
		}
		return m, true, checkPeerMsg(&m, MaxDeltasBinary)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, false, fmt.Errorf("bad message: %v", err)
	}
	return m, false, checkPeerMsg(&m, MaxDeltas)
}

// checkPeerMsg validates the decoded fields against the wire bounds.
// maxDeltas is the codec's delta-count cap: JSON messages chunk by count,
// binary messages pack to the byte budget and carry a looser sanity cap.
func checkPeerMsg(m *Msg, maxDeltas int) error {
	if !validTypes[m.Type] {
		return fmt.Errorf("unknown message type %q", m.Type)
	}
	if err := checkID("from", m.From); err != nil {
		return err
	}
	if m.From == "" {
		return fmt.Errorf("from is required")
	}
	if err := checkID("addr", m.Addr); err != nil {
		return err
	}
	if m.ShardCount < 0 || m.ShardCount > MaxShardCount {
		return fmt.Errorf("shardCount %d outside [0, %d]", m.ShardCount, MaxShardCount)
	}
	if len(m.Digests) > MaxShardCount {
		return fmt.Errorf("digest vector has %d entries, limit %d", len(m.Digests), MaxShardCount)
	}
	if len(m.Shards) > MaxShardCount {
		return fmt.Errorf("shard list has %d entries, limit %d", len(m.Shards), MaxShardCount)
	}
	for i, s := range m.Shards {
		if s < 0 || s >= MaxShardCount {
			return fmt.Errorf("shards[%d] = %d outside [0, %d)", i, s, MaxShardCount)
		}
	}
	if len(m.Metas) > MaxMetas {
		return fmt.Errorf("meta list has %d entries, limit %d", len(m.Metas), MaxMetas)
	}
	for i := range m.Metas {
		if err := checkID(fmt.Sprintf("metas[%d].node", i), string(m.Metas[i].Node)); err != nil {
			return err
		}
		if m.Metas[i].Node == "" {
			return fmt.Errorf("metas[%d] has an empty node ID", i)
		}
		if err := checkID(fmt.Sprintf("metas[%d].origin", i), m.Metas[i].Origin); err != nil {
			return err
		}
	}
	if len(m.Deltas) > maxDeltas {
		return fmt.Errorf("delta list has %d entries, limit %d", len(m.Deltas), maxDeltas)
	}
	for i := range m.Deltas {
		if err := checkDelta(i, &m.Deltas[i]); err != nil {
			return err
		}
	}
	if len(m.Nodes) > MaxPullNodes {
		return fmt.Errorf("node list has %d entries, limit %d", len(m.Nodes), MaxPullNodes)
	}
	for i, n := range m.Nodes {
		if err := checkID(fmt.Sprintf("nodes[%d]", i), n); err != nil {
			return err
		}
		if n == "" {
			return fmt.Errorf("nodes[%d] is empty", i)
		}
	}
	if m.TTL < 0 || m.TTL > MaxTTL {
		return fmt.Errorf("ttl %d outside [0, %d]", m.TTL, MaxTTL)
	}
	if len(m.Codec) > MaxCodecBytes {
		return fmt.Errorf("codec token is %d bytes, limit %d", len(m.Codec), MaxCodecBytes)
	}
	return nil
}

// checkDelta bounds one carried node entry.
func checkDelta(i int, d *crp.NodeDelta) error {
	if err := checkID(fmt.Sprintf("deltas[%d].node", i), string(d.Node)); err != nil {
		return err
	}
	if d.Node == "" {
		return fmt.Errorf("deltas[%d] has an empty node ID", i)
	}
	if err := checkID(fmt.Sprintf("deltas[%d].origin", i), d.Origin); err != nil {
		return err
	}
	if len(d.Probes) > MaxProbesPerDelta {
		return fmt.Errorf("deltas[%d] has %d probes, limit %d", i, len(d.Probes), MaxProbesPerDelta)
	}
	for j := range d.Probes {
		if len(d.Probes[j].Replicas) > MaxReplicasPerProbe {
			return fmt.Errorf("deltas[%d].probes[%d] has %d replicas, limit %d",
				i, j, len(d.Probes[j].Replicas), MaxReplicasPerProbe)
		}
		for k, r := range d.Probes[j].Replicas {
			if err := checkID(fmt.Sprintf("deltas[%d].probes[%d].replicas[%d]", i, j, k), string(r)); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkID bounds one identity string: length-capped valid UTF-8 with no NULs
// (IDs end up as store keys, metric names and log fields). Mirrors crpdaemon's
// checkID; duplicated because importing crpdaemon here would cycle once the
// daemon grows peering ops.
func checkID(field, v string) error {
	if len(v) > MaxIDBytes {
		return fmt.Errorf("%s is %d bytes, limit %d", field, len(v), MaxIDBytes)
	}
	if !utf8.ValidString(v) {
		return fmt.Errorf("%s is not valid UTF-8", field)
	}
	for i := 0; i < len(v); i++ {
		if v[i] == 0 {
			return fmt.Errorf("%s contains a NUL byte", field)
		}
	}
	return nil
}
