package peering

import (
	"encoding/json"
	"fmt"
	"unicode/utf8"

	"repro/crp"
)

// Gossip wire protocol: one JSON Msg per UDP datagram, same discipline as
// the crpd request path (internal/crpdaemon/decode.go) — every field that
// sizes an allocation, keys a map or indexes a slice is bounded in one
// decode function before any handler logic runs, so a hostile or corrupted
// datagram costs one counter bump, never memory or CPU.

// Msg types.
const (
	// MsgJoin introduces a daemon to a peer: "add me at Addr". The receiver
	// answers MsgJoinAck (introducing itself back) so one join call meshes
	// both sides.
	MsgJoin = "join"
	// MsgJoinAck confirms a join and carries the receiver's identity.
	MsgJoinAck = "join-ack"
	// MsgDelta carries full node entries (rumor push or anti-entropy
	// repair). TTL is the remaining rumor hop budget.
	MsgDelta = "delta"
	// MsgDigest opens an anti-entropy round: per-shard digest words.
	MsgDigest = "digest"
	// MsgDiff answers a digest: the differing shard indices plus the
	// sender's entry metadata for those shards.
	MsgDiff = "diff"
	// MsgPull requests full entries for the named nodes.
	MsgPull = "pull"
)

// Wire bounds.
const (
	// MaxMsgSize bounds the raw datagram; it matches the read buffer.
	MaxMsgSize = 64 * 1024
	// MaxIDBytes bounds daemon IDs, addresses and node names (DNS-name
	// scale, like crpd's identity fields).
	MaxIDBytes = 255
	// MaxShardCount bounds the digest vector and any shard index; it is the
	// store's own width ceiling (crp shard clamp tops out at 1024, with
	// headroom for explicit wider configs).
	MaxShardCount = 4096
	// MaxMetas bounds the flat metadata list of a diff.
	MaxMetas = 4096
	// MaxDeltas bounds the entries of one delta message.
	MaxDeltas = 256
	// MaxProbesPerDelta bounds one entry's probe window.
	MaxProbesPerDelta = 4096
	// MaxReplicasPerProbe bounds one probe's replica set.
	MaxReplicasPerProbe = 64
	// MaxPullNodes bounds the node list of a pull.
	MaxPullNodes = 1024
	// MaxTTL bounds the rumor hop budget.
	MaxTTL = 16
)

// Msg is one gossip datagram. Fields are pooled across types; decodePeerMsg
// checks only the bounds, handlers ignore fields their type doesn't use.
type Msg struct {
	Type string `json:"type"`
	// From is the sender's daemon ID.
	From string `json:"from"`
	// Addr is the sender's gossip listen address (join/join-ack), so the
	// receiver can add the sender as a peer.
	Addr string `json:"addr,omitempty"`
	// ShardCount is the sender's store width (digest); digest comparison is
	// only defined between equal widths.
	ShardCount int `json:"shardCount,omitempty"`
	// Digests is the per-shard digest vector (digest).
	Digests []uint64 `json:"digests,omitempty"`
	// Shards lists the differing shard indices (diff).
	Shards []int `json:"shards,omitempty"`
	// Metas is the flat entry-metadata list for those shards (diff).
	Metas []crp.NodeMeta `json:"metas,omitempty"`
	// Deltas carries full node entries (delta).
	Deltas []crp.NodeDelta `json:"deltas,omitempty"`
	// Nodes names the entries requested (pull).
	Nodes []string `json:"nodes,omitempty"`
	// TTL is the remaining rumor hop budget of the carried deltas (delta).
	TTL int `json:"ttl,omitempty"`
}

// validTypes gates Msg.Type.
var validTypes = map[string]bool{
	MsgJoin: true, MsgJoinAck: true, MsgDelta: true,
	MsgDigest: true, MsgDiff: true, MsgPull: true,
}

// decodePeerMsg parses and bounds-checks one gossip datagram. It is the
// single decode path — the socket loop and the deterministic in-memory
// harness both route through it.
func decodePeerMsg(raw []byte) (Msg, error) {
	var m Msg
	if len(raw) > MaxMsgSize {
		return m, fmt.Errorf("message too large: %d bytes exceeds the %d-byte limit", len(raw), MaxMsgSize)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("bad message: %v", err)
	}
	if err := checkPeerMsg(&m); err != nil {
		return m, err
	}
	return m, nil
}

// checkPeerMsg validates the decoded fields against the wire bounds.
func checkPeerMsg(m *Msg) error {
	if !validTypes[m.Type] {
		return fmt.Errorf("unknown message type %q", m.Type)
	}
	if err := checkID("from", m.From); err != nil {
		return err
	}
	if m.From == "" {
		return fmt.Errorf("from is required")
	}
	if err := checkID("addr", m.Addr); err != nil {
		return err
	}
	if m.ShardCount < 0 || m.ShardCount > MaxShardCount {
		return fmt.Errorf("shardCount %d outside [0, %d]", m.ShardCount, MaxShardCount)
	}
	if len(m.Digests) > MaxShardCount {
		return fmt.Errorf("digest vector has %d entries, limit %d", len(m.Digests), MaxShardCount)
	}
	if len(m.Shards) > MaxShardCount {
		return fmt.Errorf("shard list has %d entries, limit %d", len(m.Shards), MaxShardCount)
	}
	for i, s := range m.Shards {
		if s < 0 || s >= MaxShardCount {
			return fmt.Errorf("shards[%d] = %d outside [0, %d)", i, s, MaxShardCount)
		}
	}
	if len(m.Metas) > MaxMetas {
		return fmt.Errorf("meta list has %d entries, limit %d", len(m.Metas), MaxMetas)
	}
	for i := range m.Metas {
		if err := checkID(fmt.Sprintf("metas[%d].node", i), string(m.Metas[i].Node)); err != nil {
			return err
		}
		if m.Metas[i].Node == "" {
			return fmt.Errorf("metas[%d] has an empty node ID", i)
		}
		if err := checkID(fmt.Sprintf("metas[%d].origin", i), m.Metas[i].Origin); err != nil {
			return err
		}
	}
	if len(m.Deltas) > MaxDeltas {
		return fmt.Errorf("delta list has %d entries, limit %d", len(m.Deltas), MaxDeltas)
	}
	for i := range m.Deltas {
		if err := checkDelta(i, &m.Deltas[i]); err != nil {
			return err
		}
	}
	if len(m.Nodes) > MaxPullNodes {
		return fmt.Errorf("node list has %d entries, limit %d", len(m.Nodes), MaxPullNodes)
	}
	for i, n := range m.Nodes {
		if err := checkID(fmt.Sprintf("nodes[%d]", i), n); err != nil {
			return err
		}
		if n == "" {
			return fmt.Errorf("nodes[%d] is empty", i)
		}
	}
	if m.TTL < 0 || m.TTL > MaxTTL {
		return fmt.Errorf("ttl %d outside [0, %d]", m.TTL, MaxTTL)
	}
	return nil
}

// checkDelta bounds one carried node entry.
func checkDelta(i int, d *crp.NodeDelta) error {
	if err := checkID(fmt.Sprintf("deltas[%d].node", i), string(d.Node)); err != nil {
		return err
	}
	if d.Node == "" {
		return fmt.Errorf("deltas[%d] has an empty node ID", i)
	}
	if err := checkID(fmt.Sprintf("deltas[%d].origin", i), d.Origin); err != nil {
		return err
	}
	if len(d.Probes) > MaxProbesPerDelta {
		return fmt.Errorf("deltas[%d] has %d probes, limit %d", i, len(d.Probes), MaxProbesPerDelta)
	}
	for j := range d.Probes {
		if len(d.Probes[j].Replicas) > MaxReplicasPerProbe {
			return fmt.Errorf("deltas[%d].probes[%d] has %d replicas, limit %d",
				i, j, len(d.Probes[j].Replicas), MaxReplicasPerProbe)
		}
		for k, r := range d.Probes[j].Replicas {
			if err := checkID(fmt.Sprintf("deltas[%d].probes[%d].replicas[%d]", i, j, k), string(r)); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkID bounds one identity string: length-capped valid UTF-8 with no NULs
// (IDs end up as store keys, metric names and log fields). Mirrors crpdaemon's
// checkID; duplicated because importing crpdaemon here would cycle once the
// daemon grows peering ops.
func checkID(field, v string) error {
	if len(v) > MaxIDBytes {
		return fmt.Errorf("%s is %d bytes, limit %d", field, len(v), MaxIDBytes)
	}
	if !utf8.ValidString(v) {
		return fmt.Errorf("%s is not valid UTF-8", field)
	}
	for i := 0; i < len(v); i++ {
		if v[i] == 0 {
			return fmt.Errorf("%s contains a NUL byte", field)
		}
	}
	return nil
}
