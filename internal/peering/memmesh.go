package peering

import (
	"errors"
	"net"
	"sync"
	"time"
)

// MemMesh is an in-memory datagram fabric for deterministic multi-daemon
// tests and the gossip convergence harness: every address owns a FIFO queue,
// WriteTo appends to the destination's queue, ReadFrom pops the caller's
// own. There are no goroutines and no timing — a single-threaded pump that
// drains queues in a fixed order replays identically every run, which is
// what makes the bench's same-seed reruns byte-identical. Conns are plain
// net.PacketConns, so faults.Plane.WrapPacketConn layers loss/dup/reorder
// on top exactly as it does on a UDP socket.
type MemMesh struct {
	mu     sync.Mutex
	queues map[string][]memPacket
}

type memPacket struct {
	data []byte
	from memAddr
}

// NewMemMesh returns an empty fabric.
func NewMemMesh() *MemMesh {
	return &MemMesh{queues: make(map[string][]memPacket)}
}

// Conn returns the packet conn bound to addr, creating its queue.
func (m *MemMesh) Conn(addr string) net.PacketConn {
	m.mu.Lock()
	if _, ok := m.queues[addr]; !ok {
		m.queues[addr] = nil
	}
	m.mu.Unlock()
	return &memConn{mesh: m, addr: memAddr(addr)}
}

// Resolve is the peering Config.Resolve hook for mesh addresses.
func (m *MemMesh) Resolve(s string) (net.Addr, error) {
	if s == "" {
		return nil, errors.New("memmesh: empty address")
	}
	return memAddr(s), nil
}

// Pending returns the total queued datagrams across the fabric, so a pump
// knows when the mesh is quiescent.
func (m *MemMesh) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, q := range m.queues {
		n += len(q)
	}
	return n
}

// errMeshEmpty signals an empty receive queue. It satisfies net.Error with
// Timeout() true so read loops treat it like a deadline miss.
var errMeshEmpty = &meshEmptyError{}

type meshEmptyError struct{}

func (*meshEmptyError) Error() string   { return "memmesh: no datagram queued" }
func (*meshEmptyError) Timeout() bool   { return true }
func (*meshEmptyError) Temporary() bool { return true }

// memAddr is a mesh address ("d0", "d1", ...).
type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

// memConn is one endpoint of the fabric.
type memConn struct {
	mesh *MemMesh
	addr memAddr
}

// ReadFrom pops the oldest datagram queued for this endpoint, or fails with
// a timeout-flagged error when none is queued (the fabric never blocks).
func (c *memConn) ReadFrom(b []byte) (int, net.Addr, error) {
	c.mesh.mu.Lock()
	q := c.mesh.queues[string(c.addr)]
	if len(q) == 0 {
		c.mesh.mu.Unlock()
		return 0, nil, errMeshEmpty
	}
	pkt := q[0]
	c.mesh.queues[string(c.addr)] = q[1:]
	c.mesh.mu.Unlock()
	n := copy(b, pkt.data)
	return n, pkt.from, nil
}

// WriteTo appends a copy of b to the destination queue. Unknown
// destinations absorb the datagram silently, like UDP.
func (c *memConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	dst := addr.String()
	pkt := memPacket{data: append([]byte(nil), b...), from: c.addr}
	c.mesh.mu.Lock()
	if _, ok := c.mesh.queues[dst]; ok {
		c.mesh.queues[dst] = append(c.mesh.queues[dst], pkt)
	}
	c.mesh.mu.Unlock()
	return len(b), nil
}

func (c *memConn) Close() error                     { return nil }
func (c *memConn) LocalAddr() net.Addr              { return c.addr }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }
