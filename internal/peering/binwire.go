package peering

import (
	"encoding/json"
	"fmt"
	"strconv"

	"repro/crp"
	"repro/internal/binwire"
)

// Compact binary codec for the gossip protocol. One datagram is:
//
//	byte 0   binMagic (0xCE — never a valid JSON first byte, so the first
//	         byte routes the codec)
//	byte 1   binVersion
//	byte 2   message type code
//	from     string
//	addr     string
//	codec    string (advertisement token, e.g. "bin1")
//	ttl      uvarint
//	shardCount uvarint
//	digests  uvarint count, then count fixed 8-byte words (digest hashes
//	         have full-entropy high bits; varints would inflate them)
//	shards   uvarint count, then count uvarints
//	metas    uvarint count, then per meta: node, origin, version uvarint,
//	         flags u8 (bit0 deleted)
//	deltas   uvarint count, then per delta: node, origin, version uvarint,
//	         flags u8 (bit0 deleted, bit1 deletedAt present),
//	         [deletedAt time], probes (uvarint count, then per probe:
//	         at time, replicas uvarint count + strings)
//	nodes    uvarint count, then count strings
//
// Strings are uvarint-length-prefixed; times are seconds (zig-zag varint)
// + nanoseconds (uvarint). Every message carries the full field set (empty
// collections cost one zero byte), mirroring the JSON union type, so the
// two codecs express exactly the same message set — the cross-codec
// property test in binwire_test.go pins that equivalence. Encoding is
// canonical (collections keep caller order, which the engine already
// sorts), so identical messages are byte-identical — the determinism the
// bench's rerun gate relies on.

const (
	// binMagic routes an inbound datagram to the binary decoder. JSON
	// messages always start with '{' (0x7B); 0xCE can never begin a valid
	// JSON document, so the two codecs are unambiguous on the wire.
	binMagic = 0xCE
	// binVersion is the binary format version; unknown versions are
	// rejected so a future format change cannot be misparsed.
	binVersion = 1
	// binOverhead is the byte budget reserved for the fixed message fields
	// (magic, version, type, IDs, codec token, counts) when packing
	// collections to the wire budget: 3 header bytes + two 255-byte IDs
	// with length prefixes + codec + ttl + shardCount + six counts, with
	// slack. Packers fill MaxMsgSize-binOverhead with entries and the
	// encoder's final size check still backstops the arithmetic.
	binOverhead = 640
)

// binTypeCodes maps Msg.Type to its wire code; binTypeNames is the inverse.
var binTypeCodes = map[string]byte{
	MsgJoin: 0, MsgJoinAck: 1, MsgDelta: 2, MsgDigest: 3, MsgDiff: 4, MsgPull: 5,
}

var binTypeNames = func() map[byte]string {
	m := make(map[byte]string, len(binTypeCodes))
	for name, code := range binTypeCodes {
		m[code] = name
	}
	return m
}()

// encodePeerMsg marshals one message in the requested codec, enforcing the
// datagram bound — anything it returns is guaranteed sendable.
func encodePeerMsg(m *Msg, bin bool) ([]byte, error) {
	var raw []byte
	if bin {
		var err error
		if raw, err = encodeBinaryPeerMsg(m); err != nil {
			return nil, err
		}
	} else {
		var err error
		if raw, err = json.Marshal(m); err != nil {
			return nil, err
		}
	}
	if len(raw) > MaxMsgSize {
		return nil, fmt.Errorf("peering: encoded message %d bytes exceeds %d", len(raw), MaxMsgSize)
	}
	return raw, nil
}

// encodeBinaryPeerMsg marshals one message in the binary codec.
func encodeBinaryPeerMsg(m *Msg) ([]byte, error) {
	code, ok := binTypeCodes[m.Type]
	if !ok {
		return nil, fmt.Errorf("peering: unknown message type %q", m.Type)
	}
	var e binwire.Enc
	e.U8(binMagic)
	e.U8(binVersion)
	e.U8(code)
	e.String(m.From)
	e.String(m.Addr)
	e.String(m.Codec)
	e.Uvarint(uint64(m.TTL))
	e.Uvarint(uint64(m.ShardCount))
	e.Uvarint(uint64(len(m.Digests)))
	for _, d := range m.Digests {
		e.U64(d)
	}
	e.Uvarint(uint64(len(m.Shards)))
	for _, s := range m.Shards {
		e.Uvarint(uint64(s))
	}
	e.Uvarint(uint64(len(m.Metas)))
	for i := range m.Metas {
		encodeBinaryMeta(&e, &m.Metas[i])
	}
	e.Uvarint(uint64(len(m.Deltas)))
	for i := range m.Deltas {
		encodeBinaryDelta(&e, &m.Deltas[i])
	}
	e.Uvarint(uint64(len(m.Nodes)))
	for _, n := range m.Nodes {
		e.String(n)
	}
	return append([]byte(nil), e.Bytes()...), nil
}

func encodeBinaryMeta(e *binwire.Enc, m *crp.NodeMeta) {
	e.String(string(m.Node))
	e.String(m.Origin)
	e.Uvarint(m.Version)
	var flags byte
	if m.Deleted {
		flags |= 1
	}
	e.U8(flags)
}

func encodeBinaryDelta(e *binwire.Enc, d *crp.NodeDelta) {
	e.String(string(d.Node))
	e.String(d.Origin)
	e.Uvarint(d.Version)
	var flags byte
	if d.Deleted {
		flags |= 1
	}
	if !d.DeletedAt.IsZero() {
		flags |= 2
	}
	e.U8(flags)
	if !d.DeletedAt.IsZero() {
		e.Time(d.DeletedAt)
	}
	e.Uvarint(uint64(len(d.Probes)))
	for i := range d.Probes {
		e.Time(d.Probes[i].At)
		e.Uvarint(uint64(len(d.Probes[i].Replicas)))
		for _, r := range d.Probes[i].Replicas {
			e.String(string(r))
		}
	}
}

// binMetaSize returns the exact wire size of one encoded meta.
func binMetaSize(m *crp.NodeMeta) int {
	return binwire.StringLen(string(m.Node)) + binwire.StringLen(m.Origin) +
		binwire.UvarintLen(m.Version) + 1
}

// binDeltaSize returns the exact wire size of one encoded delta; the
// size-budget packers commit an entry only when it fits.
func binDeltaSize(d *crp.NodeDelta) int {
	n := binwire.StringLen(string(d.Node)) + binwire.StringLen(d.Origin) +
		binwire.UvarintLen(d.Version) + 1
	if !d.DeletedAt.IsZero() {
		n += binwire.TimeLen(d.DeletedAt)
	}
	n += binwire.UvarintLen(uint64(len(d.Probes)))
	for i := range d.Probes {
		n += binwire.TimeLen(d.Probes[i].At)
		n += binwire.UvarintLen(uint64(len(d.Probes[i].Replicas)))
		for _, r := range d.Probes[i].Replicas {
			n += binwire.StringLen(string(r))
		}
	}
	return n
}

// deltaWireCost returns the wire cost of one delta entry in the given
// codec: exact for binary, exact-plus-separator for JSON (the marshaled
// entry plus the array comma). The packers budget collections with these so
// that what they build is guaranteed sendable.
func deltaWireCost(bin bool, d *crp.NodeDelta) int {
	if bin {
		return binDeltaSize(d)
	}
	raw, err := json.Marshal(d)
	if err != nil {
		// Unencodable entries can't be costed; return past any budget so the
		// packer isolates the entry and the encoder rejects it alone.
		return MaxMsgSize + 1
	}
	return len(raw) + 1
}

// metaWireCost is deltaWireCost for one diff metadata entry.
func metaWireCost(bin bool, m *crp.NodeMeta) int {
	if bin {
		return binMetaSize(m)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		return MaxMsgSize + 1
	}
	return len(raw) + 1
}

// shardIdxWireCost is the wire cost of one covered-shard index in a diff.
func shardIdxWireCost(bin bool, shard int) int {
	if bin {
		return binwire.UvarintLen(uint64(shard))
	}
	return len(strconv.Itoa(shard)) + 1
}

// decodeBinaryPeerMsg parses a binary-codec datagram. Structural bounds
// (string lengths, counts vs remaining bytes) are enforced here; the caller
// runs the shared checkPeerMsg semantic validation on the result, so both
// codecs answer to one bounds discipline.
func decodeBinaryPeerMsg(raw []byte) (Msg, error) {
	var m Msg
	d := binwire.NewDec(raw)
	if _, err := d.U8(); err != nil { // magic, already sniffed by the caller
		return m, fmt.Errorf("bad message: %v", err)
	}
	ver, err := d.U8()
	if err != nil {
		return m, fmt.Errorf("bad message: %v", err)
	}
	if ver != binVersion {
		return m, fmt.Errorf("unsupported binary version %d", ver)
	}
	code, err := d.U8()
	if err != nil {
		return m, fmt.Errorf("bad message: %v", err)
	}
	name, ok := binTypeNames[code]
	if !ok {
		return m, fmt.Errorf("unknown message type code %d", code)
	}
	m.Type = name
	if m.From, err = d.String(MaxIDBytes); err != nil {
		return m, fmt.Errorf("from: %v", err)
	}
	if m.Addr, err = d.String(MaxIDBytes); err != nil {
		return m, fmt.Errorf("addr: %v", err)
	}
	if m.Codec, err = d.String(MaxCodecBytes); err != nil {
		return m, fmt.Errorf("codec: %v", err)
	}
	ttl, err := d.Uvarint()
	if err != nil || ttl > MaxTTL {
		return m, fmt.Errorf("ttl: bad value")
	}
	m.TTL = int(ttl)
	sc, err := d.Uvarint()
	if err != nil || sc > MaxShardCount {
		return m, fmt.Errorf("shardCount: bad value")
	}
	m.ShardCount = int(sc)

	n, err := d.Count(MaxShardCount, 8)
	if err != nil {
		return m, fmt.Errorf("digests: %v", err)
	}
	if n > 0 {
		m.Digests = make([]uint64, n)
		for i := range m.Digests {
			if m.Digests[i], err = d.U64(); err != nil {
				return m, fmt.Errorf("digests[%d]: %v", i, err)
			}
		}
	}

	if n, err = d.Count(MaxShardCount, 1); err != nil {
		return m, fmt.Errorf("shards: %v", err)
	}
	if n > 0 {
		m.Shards = make([]int, n)
		for i := range m.Shards {
			s, err := d.Uvarint()
			if err != nil || s >= MaxShardCount {
				return m, fmt.Errorf("shards[%d]: bad value", i)
			}
			m.Shards[i] = int(s)
		}
	}

	if n, err = d.Count(MaxMetas, 4); err != nil {
		return m, fmt.Errorf("metas: %v", err)
	}
	if n > 0 {
		m.Metas = make([]crp.NodeMeta, n)
		for i := range m.Metas {
			if err := decodeBinaryMeta(d, &m.Metas[i]); err != nil {
				return m, fmt.Errorf("metas[%d]: %v", i, err)
			}
		}
	}

	if n, err = d.Count(MaxDeltasBinary, 5); err != nil {
		return m, fmt.Errorf("deltas: %v", err)
	}
	if n > 0 {
		m.Deltas = make([]crp.NodeDelta, n)
		for i := range m.Deltas {
			if err := decodeBinaryDelta(d, &m.Deltas[i]); err != nil {
				return m, fmt.Errorf("deltas[%d]: %v", i, err)
			}
		}
	}

	if n, err = d.Count(MaxPullNodes, 2); err != nil {
		return m, fmt.Errorf("nodes: %v", err)
	}
	if n > 0 {
		m.Nodes = make([]string, n)
		for i := range m.Nodes {
			if m.Nodes[i], err = d.String(MaxIDBytes); err != nil {
				return m, fmt.Errorf("nodes[%d]: %v", i, err)
			}
		}
	}
	if err := d.Done(); err != nil {
		return m, fmt.Errorf("bad message: %v", err)
	}
	return m, nil
}

func decodeBinaryMeta(d *binwire.Dec, m *crp.NodeMeta) error {
	var err error
	var node string
	if node, err = d.String(MaxIDBytes); err != nil {
		return err
	}
	m.Node = crp.NodeID(node)
	if m.Origin, err = d.String(MaxIDBytes); err != nil {
		return err
	}
	if m.Version, err = d.Uvarint(); err != nil {
		return err
	}
	flags, err := d.U8()
	if err != nil {
		return err
	}
	if flags > 1 {
		return fmt.Errorf("reserved meta flags 0x%02x", flags)
	}
	m.Deleted = flags&1 != 0
	return nil
}

func decodeBinaryDelta(d *binwire.Dec, nd *crp.NodeDelta) error {
	var err error
	var node string
	if node, err = d.String(MaxIDBytes); err != nil {
		return err
	}
	nd.Node = crp.NodeID(node)
	if nd.Origin, err = d.String(MaxIDBytes); err != nil {
		return err
	}
	if nd.Version, err = d.Uvarint(); err != nil {
		return err
	}
	flags, err := d.U8()
	if err != nil {
		return err
	}
	if flags > 3 {
		return fmt.Errorf("reserved delta flags 0x%02x", flags)
	}
	nd.Deleted = flags&1 != 0
	if flags&2 != 0 {
		if nd.DeletedAt, err = d.Time(); err != nil {
			return err
		}
	}
	n, err := d.Count(MaxProbesPerDelta, 3)
	if err != nil {
		return err
	}
	if n > 0 {
		nd.Probes = make([]crp.Probe, n)
		for i := range nd.Probes {
			p := &nd.Probes[i]
			if p.At, err = d.Time(); err != nil {
				return err
			}
			rn, err := d.Count(MaxReplicasPerProbe, 1)
			if err != nil {
				return err
			}
			if rn > 0 {
				p.Replicas = make([]crp.ReplicaID, rn)
				for j := range p.Replicas {
					r, err := d.String(MaxIDBytes)
					if err != nil {
						return err
					}
					p.Replicas[j] = crp.ReplicaID(r)
				}
			}
		}
	}
	return nil
}
