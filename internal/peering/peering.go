// Package peering is the gossip/anti-entropy plane that lets N crpd daemons
// replicate tracker state and converge to an identical store. The paper's
// positioning service needs no central measurement infrastructure — any host
// observing CDN redirections can contribute — so the production shape is a
// federation of daemons, each ingesting local probe streams and gossiping
// the resulting node entries to its peers.
//
// Replication is last-writer-wins per node entry (crp.NodeMeta.Supersedes),
// carried by two complementary mechanisms:
//
//   - rumor mongering: every local Observe/Forget enqueues its node; each
//     Tick pushes the queued entries, with a decrementing hop budget (TTL),
//     to Fanout randomly chosen peers. Fresh updates spread in O(log N)
//     rounds with high probability.
//   - push-pull anti-entropy: each Tick also sends one round-robin peer a
//     compact per-shard digest of the full replicated state. The receiver
//     answers with entry metadata for the differing shards; the initiator
//     then pushes entries it holds newer and pulls entries the peer holds
//     newer. Anti-entropy repairs whatever rumors miss (lost packets,
//     partitions, late joiners), giving eventual convergence under any
//     packet-loss rate below 100%.
//
// Deletions propagate as tombstones and are garbage-collected after a
// configured horizon; DESIGN.md §8 develops the convergence argument and
// the GC trade-offs. All sockets are plain net.PacketConns, so the fault
// plane's WrapPacketConn applies loss/dup/delay/reorder scenarios to gossip
// links exactly as it does to the daemon's query path.
package peering

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/crp"
	"repro/internal/obs"
)

// Config shapes one daemon's peering engine.
type Config struct {
	// Self is this daemon's ID, stamped as the origin of its local
	// mutations. Required, and must satisfy the wire ID bounds.
	Self string
	// Addr is the gossip listen address advertised in join messages.
	Addr string
	// Service is the replicated store. Required. New() takes ownership of
	// its replication hooks (SetOrigin/SetClock/SetMutationHook).
	Service *crp.Service
	// Fanout is how many peers each rumor push targets. Default 2.
	Fanout int
	// Interval is the Tick cadence of Start's background loop. Default 1s.
	Interval time.Duration
	// TTL is the initial rumor hop budget of a local mutation. Default 3.
	TTL int
	// TombstoneGC is the deletion-tombstone retention horizon. A peer
	// partitioned for longer than this may resurrect forgotten entries
	// through anti-entropy. Default 10m.
	TombstoneGC time.Duration
	// MaxDeltasPerMsg / MaxMetasPerMsg / MaxPullPerMsg chunk outbound
	// messages under the datagram size limit. Defaults 32 / 2048 / 512.
	MaxDeltasPerMsg int
	MaxMetasPerMsg  int
	MaxPullPerMsg   int
	// Seed feeds the fanout-selection RNG; same seed + same event order =
	// same peer choices, which is what makes the bench harness replayable.
	Seed uint64
	// Now is the virtual clock. Default time.Now.
	Now func() time.Time
	// Resolve turns a peer address string into a net.Addr. Default UDP
	// resolution; the in-memory mesh substitutes its own.
	Resolve func(string) (net.Addr, error)
	// Registry receives the peering metrics. Default obs.Default().
	Registry *obs.Registry
	// Codec pins the engine's wire codec: "" or "binary" negotiates the
	// compact binary codec with capable peers (JSON stays the bootstrap and
	// fallback codec, so mixed-version meshes interoperate); "json" pins the
	// engine to JSON — it never advertises or sends binary and treats
	// inbound binary datagrams as undecodable, exactly like a daemon
	// predating the binary codec. The mixed-codec mesh tests and the bench's
	// codec dimension use this.
	Codec string
}

// PeerInfo describes one known peer in a status report.
type PeerInfo struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Lag is the differing-shard count the last time a digest from/about
	// this peer was compared; 0 means the stores matched.
	Lag int64 `json:"lag"`
}

// StatsSnapshot is a point-in-time copy of the engine's counters. The
// convergence harness reports these rather than obs counters because they
// are per-engine and unpolluted by other daemons in the process.
type StatsSnapshot struct {
	Rounds         uint64 `json:"rounds"`
	Msgs           uint64 `json:"msgs"`
	BadMsgs        uint64 `json:"badMsgs"`
	DeltasSent     uint64 `json:"deltasSent"`
	DeltasApplied  uint64 `json:"deltasApplied"`
	DeltasStale    uint64 `json:"deltasStale"`
	DigestsSent    uint64 `json:"digestsSent"`
	DigestBytes    uint64 `json:"digestBytes"`
	Pulls          uint64 `json:"pulls"`
	Convergence    uint64 `json:"convergence"`
	ShapeMismatch  uint64 `json:"shapeMismatch"`
	SendErrors     uint64 `json:"sendErrors"`
	TombstonesGCed uint64 `json:"tombstonesGCed"`
	OversizeMsgs   uint64 `json:"oversizeMsgs"`
	BinMsgs        uint64 `json:"binMsgs"`
	BinSent        uint64 `json:"binSent"`
}

// StatusReport is the peer-status op payload.
type StatusReport struct {
	Self          string        `json:"self"`
	Addr          string        `json:"addr,omitempty"`
	ShardCount    int           `json:"shardCount"`
	PendingRumors int           `json:"pendingRumors"`
	Peers         []PeerInfo    `json:"peers"`
	Stats         StatsSnapshot `json:"stats"`
}

// stat is a counter kept twice: a local atomic for per-engine reporting and
// an obs counter for the process-wide registry snapshot.
type stat struct {
	v atomic.Uint64
	c *obs.Counter
}

func (s *stat) add(n uint64) {
	s.v.Add(n)
	s.c.Add(n)
}

func (s *stat) inc() { s.add(1) }

// peerState is one known peer.
type peerState struct {
	id      string
	addrStr string
	addr    net.Addr
	lag     *obs.Gauge // peering.peer.<id>.lag
	lagV    atomic.Int64
	// bin is latched when the peer advertises CodecBinary (join/join-ack/
	// digest) or sends any binary-decoded datagram; from then on this engine
	// speaks binary to it. Never unlatched — codec support is a property of
	// the peer's build, not of one message.
	bin atomic.Bool
}

// Peering is one daemon's gossip engine. Attach a socket, add peers (or
// Join), then either call Start for the background loop or drive Tick /
// HandleDatagram directly (the deterministic harness does the latter).
type Peering struct {
	cfg      Config
	svc      *crp.Service
	now      func() time.Time
	resolve  func(string) (net.Addr, error)
	reg      *obs.Registry
	jsonOnly bool

	mu      sync.Mutex
	pc      net.PacketConn
	peers   map[string]*peerState
	order   []string // sorted peer IDs, rebuilt on membership change
	pending map[crp.NodeID]int
	rng     *rand.Rand
	rr      int // anti-entropy round-robin cursor
	started bool
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup

	rounds, msgs, badMsgs           stat
	deltasSent, deltasApplied       stat
	deltasStale, digestsSent        stat
	digestBytes, pulls, convergence stat
	shapeMismatch, sendErrors, gced stat
	oversize, binMsgs, binSent      stat
}

// New builds a peering engine over cfg.Service and installs the service's
// replication hooks. Call before the service takes traffic.
func New(cfg Config) (*Peering, error) {
	if cfg.Service == nil {
		return nil, errors.New("peering: nil Service")
	}
	if cfg.Self == "" {
		return nil, errors.New("peering: empty Self ID")
	}
	if err := checkID("self", cfg.Self); err != nil {
		return nil, fmt.Errorf("peering: %w", err)
	}
	if sc := cfg.Service.ShardCount(); sc > MaxShardCount {
		// A digest message carries one word per shard; a wider store could
		// never complete an anti-entropy round, so refuse it up front instead
		// of silently livelocking (see the MaxShardCount sizing note).
		return nil, fmt.Errorf("peering: store has %d shards, wire limit %d", sc, MaxShardCount)
	}
	switch cfg.Codec {
	case "", "binary", "json":
	default:
		return nil, fmt.Errorf("peering: unknown codec %q", cfg.Codec)
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 3
	}
	if cfg.TTL > MaxTTL {
		cfg.TTL = MaxTTL
	}
	if cfg.TombstoneGC <= 0 {
		cfg.TombstoneGC = 10 * time.Minute
	}
	if cfg.MaxDeltasPerMsg <= 0 {
		cfg.MaxDeltasPerMsg = 32
	}
	if cfg.MaxMetasPerMsg <= 0 {
		cfg.MaxMetasPerMsg = 2048
	}
	if cfg.MaxMetasPerMsg > MaxMetas {
		cfg.MaxMetasPerMsg = MaxMetas
	}
	if cfg.MaxPullPerMsg <= 0 {
		cfg.MaxPullPerMsg = 512
	}
	if cfg.MaxPullPerMsg > MaxPullNodes {
		cfg.MaxPullPerMsg = MaxPullNodes
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Resolve == nil {
		cfg.Resolve = func(s string) (net.Addr, error) { return net.ResolveUDPAddr("udp", s) }
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	p := &Peering{
		cfg:      cfg,
		svc:      cfg.Service,
		now:      cfg.Now,
		resolve:  cfg.Resolve,
		reg:      cfg.Registry,
		jsonOnly: cfg.Codec == "json",
		peers:    make(map[string]*peerState),
		pending:  make(map[crp.NodeID]int),
		rng:      rand.New(rand.NewSource(int64(cfg.Seed))),
		done:     make(chan struct{}),
	}
	for _, c := range []struct {
		s    *stat
		name string
	}{
		{&p.rounds, "peering.rounds"},
		{&p.msgs, "peering.msgs"},
		{&p.badMsgs, "peering.bad_msgs"},
		{&p.deltasSent, "peering.deltas_sent"},
		{&p.deltasApplied, "peering.deltas_applied"},
		{&p.deltasStale, "peering.deltas_stale"},
		{&p.digestsSent, "peering.digests_sent"},
		{&p.digestBytes, "peering.digest_bytes"},
		{&p.pulls, "peering.pulls"},
		{&p.convergence, "peering.convergence"},
		{&p.shapeMismatch, "peering.shape_mismatch"},
		{&p.sendErrors, "peering.send_errors"},
		{&p.gced, "peering.tombstones_gced"},
		{&p.oversize, "peering.oversize_msgs"},
		{&p.binMsgs, "peering.bin_msgs"},
		{&p.binSent, "peering.bin_sent"},
	} {
		c.s.c = p.reg.Counter(c.name)
	}
	p.svc.SetOrigin(cfg.Self)
	p.svc.SetClock(cfg.Now)
	p.svc.SetMutationHook(p.noteMutation)
	return p, nil
}

// noteMutation queues a locally mutated node for rumor propagation with a
// full hop budget. Installed as the service's mutation hook.
func (p *Peering) noteMutation(node crp.NodeID) {
	p.mu.Lock()
	p.pending[node] = p.cfg.TTL
	p.mu.Unlock()
}

// Attach gives the engine its socket. The caller owns the conn's lifecycle
// (and typically routes it through faults.Plane.WrapPacketConn first).
func (p *Peering) Attach(pc net.PacketConn) {
	p.mu.Lock()
	p.pc = pc
	p.mu.Unlock()
}

// Start launches the background read loop and the gossip ticker. Attach
// must have been called.
func (p *Peering) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pc == nil {
		return errors.New("peering: Start before Attach")
	}
	if p.started {
		return errors.New("peering: already started")
	}
	p.started = true
	p.wg.Add(2)
	go p.readLoop(p.pc)
	go p.tickLoop()
	return nil
}

// Close stops the background goroutines. It does not close the attached
// socket (the caller owns it), but the read loop exits on the next read
// error or datagram after the done channel closes.
func (p *Peering) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	p.wg.Wait()
}

// readLoop drains the socket until Close (or a permanent socket error).
func (p *Peering) readLoop(pc net.PacketConn) {
	defer p.wg.Done()
	// One byte over the wire bound: a datagram that fills a MaxMsgSize
	// buffer exactly would be indistinguishable from a kernel-truncated
	// larger one, so the extra byte makes oversize detectable and
	// HandleDatagram drops (and counts) it instead of decoding garbage.
	buf := make([]byte, MaxMsgSize+1)
	for {
		select {
		case <-p.done:
			return
		default:
		}
		// A real UDP ReadFrom blocks indefinitely; a short deadline keeps
		// the loop responsive to Close without the caller having to close
		// the socket. MemMesh ignores deadlines and returns immediately.
		_ = pc.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		n, from, err := pc.ReadFrom(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			select {
			case <-p.done:
				return
			default:
			}
			// Transient socket errors must not kill the loop (same rule as
			// the daemon's read loop); back off briefly and retry.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		p.HandleDatagram(buf[:n], from)
	}
}

// tickLoop runs Tick every Interval until Close.
func (p *Peering) tickLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			p.Tick(p.now())
		}
	}
}

// AddPeer registers a peer without the join handshake (static -peers lists
// and the deterministic harness). Adding self or an already-known ID is a
// no-op (the address is refreshed).
func (p *Peering) AddPeer(id, addr string) error {
	if id == "" || id == p.cfg.Self {
		return nil
	}
	if err := checkID("peer", id); err != nil {
		return fmt.Errorf("peering: %w", err)
	}
	a, err := p.resolve(addr)
	if err != nil {
		return fmt.Errorf("peering: resolve %q: %w", addr, err)
	}
	p.mu.Lock()
	p.addPeerLocked(id, addr, a)
	p.mu.Unlock()
	return nil
}

// addPeerLocked inserts or refreshes a peer. Caller holds p.mu.
func (p *Peering) addPeerLocked(id, addrStr string, addr net.Addr) {
	if ps, ok := p.peers[id]; ok {
		ps.addrStr, ps.addr = addrStr, addr
		return
	}
	p.peers[id] = &peerState{
		id: id, addrStr: addrStr, addr: addr,
		lag: p.reg.Gauge("peering.peer." + id + ".lag"),
	}
	p.order = append(p.order, id)
	sort.Strings(p.order)
}

// Join sends a join to addr, introducing this daemon. The peer is added on
// its join-ack; the ack also registers us on the remote side, so one Join
// meshes both directions.
func (p *Peering) Join(addr string) error {
	a, err := p.resolve(addr)
	if err != nil {
		return fmt.Errorf("peering: resolve %q: %w", addr, err)
	}
	return p.send(a, Msg{Type: MsgJoin, From: p.cfg.Self, Addr: p.cfg.Addr, Codec: p.codecToken()})
}

// Status reports the engine's peers and counters.
func (p *Peering) Status() StatusReport {
	p.mu.Lock()
	peers := make([]PeerInfo, 0, len(p.order))
	for _, id := range p.order {
		ps := p.peers[id]
		peers = append(peers, PeerInfo{ID: ps.id, Addr: ps.addrStr, Lag: ps.lagV.Load()})
	}
	pending := len(p.pending)
	p.mu.Unlock()
	return StatusReport{
		Self:          p.cfg.Self,
		Addr:          p.cfg.Addr,
		ShardCount:    p.svc.ShardCount(),
		PendingRumors: pending,
		Peers:         peers,
		Stats:         p.Stats(),
	}
}

// Stats snapshots the engine-local counters.
func (p *Peering) Stats() StatsSnapshot {
	return StatsSnapshot{
		Rounds:         p.rounds.v.Load(),
		Msgs:           p.msgs.v.Load(),
		BadMsgs:        p.badMsgs.v.Load(),
		DeltasSent:     p.deltasSent.v.Load(),
		DeltasApplied:  p.deltasApplied.v.Load(),
		DeltasStale:    p.deltasStale.v.Load(),
		DigestsSent:    p.digestsSent.v.Load(),
		DigestBytes:    p.digestBytes.v.Load(),
		Pulls:          p.pulls.v.Load(),
		Convergence:    p.convergence.v.Load(),
		ShapeMismatch:  p.shapeMismatch.v.Load(),
		SendErrors:     p.sendErrors.v.Load(),
		TombstonesGCed: p.gced.v.Load(),
		OversizeMsgs:   p.oversize.v.Load(),
		BinMsgs:        p.binMsgs.v.Load(),
		BinSent:        p.binSent.v.Load(),
	}
}

// Tick runs one gossip round at virtual time now: rumor pushes of pending
// local mutations, one anti-entropy digest to the next peer in round-robin
// order, and tombstone GC. The background loop calls it on the Interval;
// the deterministic harness calls it directly.
func (p *Peering) Tick(now time.Time) {
	p.rounds.inc()

	// Drain the rumor queue under the lock, then do the sends without it.
	p.mu.Lock()
	var queue map[crp.NodeID]int
	if len(p.pending) > 0 {
		queue = p.pending
		p.pending = make(map[crp.NodeID]int)
	}
	targetsPerTTL := func() []*peerState {
		// One independent fanout draw per TTL batch: rng.Perm over the
		// sorted peer order keeps the choice deterministic for a given
		// seed and call sequence.
		k := p.cfg.Fanout
		if k > len(p.order) {
			k = len(p.order)
		}
		out := make([]*peerState, 0, k)
		for _, i := range p.rng.Perm(len(p.order))[:k] {
			out = append(out, p.peers[p.order[i]])
		}
		return out
	}
	var pushes []struct {
		to     *peerState
		deltas []crp.NodeDelta
		ttl    int
	}
	if queue != nil && len(p.order) > 0 {
		// Partition the queue by remaining TTL (a message carries one TTL),
		// sorted for determinism. Chunking into datagrams is deferred to
		// sendDeltas, which packs to the target peer's codec budget.
		byTTL := map[int][]crp.NodeID{}
		for node, ttl := range queue {
			byTTL[ttl] = append(byTTL[ttl], node)
		}
		ttls := make([]int, 0, len(byTTL))
		for ttl := range byTTL {
			ttls = append(ttls, ttl)
		}
		sort.Ints(ttls)
		for _, ttl := range ttls {
			nodes := byTTL[ttl]
			sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
			deltas := make([]crp.NodeDelta, 0, len(nodes))
			for _, node := range nodes {
				if d, ok := p.svc.ExportDelta(node); ok {
					deltas = append(deltas, d)
				}
			}
			if len(deltas) == 0 {
				continue
			}
			for _, ps := range targetsPerTTL() {
				pushes = append(pushes, struct {
					to     *peerState
					deltas []crp.NodeDelta
					ttl    int
				}{ps, deltas, ttl})
			}
		}
	}
	// Anti-entropy target: round-robin over the sorted peer order.
	var aeTarget *peerState
	if len(p.order) > 0 {
		aeTarget = p.peers[p.order[p.rr%len(p.order)]]
		p.rr++
	}
	p.mu.Unlock()

	for _, push := range pushes {
		p.sendDeltas(push.to, push.deltas, push.ttl)
	}
	if aeTarget != nil {
		msg := Msg{
			Type:       MsgDigest,
			From:       p.cfg.Self,
			ShardCount: p.svc.ShardCount(),
			Digests:    p.svc.ShardDigests(),
			// Digests recur forever, so the codec advertisement here is what
			// upgrades statically-peered meshes that never exchange joins.
			Codec: p.codecToken(),
		}
		if n, err := p.sendPeerSized(aeTarget, msg); err == nil {
			p.digestsSent.inc()
			p.digestBytes.add(uint64(n))
		}
	}
	// The GC horizon is anchored on the engine's injected clock, NOT the
	// caller-supplied now. Tombstone deletion times are stamped by the
	// store's clock (Config.Now via Service.SetClock), so the horizon must
	// come from the same timeline: a caller passing wall time to a
	// virtual-clocked engine — easy to do from a test or a driver loop —
	// would otherwise compute a horizon epochs ahead of the virtual
	// timestamps and silently GC live tombstones, un-replicating forgets.
	// The now parameter still drives the gossip round itself (rumor and
	// digest scheduling), where both timelines only affect pacing.
	if n := p.svc.GCTombstones(p.now().Add(-p.cfg.TombstoneGC)); n > 0 {
		p.gced.add(uint64(n))
	}
}

// codecToken returns the codec advertisement carried by outbound join,
// join-ack and digest messages: CodecBinary unless the engine is pinned to
// JSON.
func (p *Peering) codecToken() string {
	if p.jsonOnly {
		return ""
	}
	return CodecBinary
}

// binTo reports whether traffic to ps should use the binary codec: both
// sides must speak it.
func (p *Peering) binTo(ps *peerState) bool {
	return !p.jsonOnly && ps.bin.Load()
}

// send marshals and writes one message to addr in the JSON codec — the
// bootstrap path (join/join-ack and unknown destinations), which must stay
// readable by every peer version.
func (p *Peering) send(addr net.Addr, msg Msg) error {
	_, err := p.sendRaw(addr, &msg, false)
	return err
}

// sendPeer writes one message to a known peer in the best codec both sides
// speak.
func (p *Peering) sendPeer(ps *peerState, msg Msg) error {
	_, err := p.sendRaw(ps.addr, &msg, p.binTo(ps))
	return err
}

// sendPeerSized is sendPeer, also reporting the encoded size.
func (p *Peering) sendPeerSized(ps *peerState, msg Msg) (int, error) {
	return p.sendRaw(ps.addr, &msg, p.binTo(ps))
}

// sendRaw encodes (enforcing the datagram bound — dropping beats sending a
// datagram the receiver is guaranteed to reject) and writes one message.
// Every outbound message from a binary-capable engine carries the codec
// token, so a peer latches the upgrade on first contact of any kind — not
// just on joins or digests, which can be rare on a quiet mesh.
func (p *Peering) sendRaw(addr net.Addr, msg *Msg, bin bool) (int, error) {
	if msg.Codec == "" {
		msg.Codec = p.codecToken()
	}
	raw, err := encodePeerMsg(msg, bin)
	if err != nil {
		p.sendErrors.inc()
		return 0, err
	}
	p.mu.Lock()
	pc := p.pc
	p.mu.Unlock()
	if pc == nil {
		p.sendErrors.inc()
		return 0, errors.New("peering: no socket attached")
	}
	if _, err := pc.WriteTo(raw, addr); err != nil {
		p.sendErrors.inc()
		return 0, err
	}
	if bin {
		p.binSent.inc()
	}
	return len(raw), nil
}

// sendDeltas packs entries to the peer's wire budget — size-driven batching
// instead of a fixed per-message count — and sends one datagram per chunk.
// JSON chunks additionally honor the configured count cap (and the JSON
// decoder's MaxDeltas bound); binary chunks run to the byte budget. An entry
// too large for any datagram is isolated in its own chunk so the encoder's
// size check rejects it alone (a send error) without dragging down its
// batch.
func (p *Peering) sendDeltas(ps *peerState, deltas []crp.NodeDelta, ttl int) {
	bin := p.binTo(ps)
	maxCount := MaxDeltasBinary
	if !bin {
		maxCount = p.cfg.MaxDeltasPerMsg
		if maxCount > MaxDeltas {
			maxCount = MaxDeltas
		}
	}
	budget := MaxMsgSize - binOverhead
	var chunk []crp.NodeDelta
	used := 0
	flush := func() {
		if len(chunk) == 0 {
			return
		}
		msg := Msg{Type: MsgDelta, From: p.cfg.Self, Deltas: chunk, TTL: ttl}
		if err := p.sendPeer(ps, msg); err == nil {
			p.deltasSent.add(uint64(len(chunk)))
		}
		chunk, used = nil, 0
	}
	for i := range deltas {
		n := deltaWireCost(bin, &deltas[i])
		if len(chunk) > 0 && (used+n > budget || len(chunk) >= maxCount) {
			flush()
		}
		chunk = append(chunk, deltas[i])
		used += n
	}
	flush()
}

// HandleDatagram processes one inbound gossip datagram synchronously. The
// read loop and the deterministic harness both call it.
func (p *Peering) HandleDatagram(raw []byte, from net.Addr) {
	p.msgs.inc()
	if len(raw) > MaxMsgSize {
		// Oversized — or kernel-truncated: the read loop's bound+1 buffer is
		// what makes a datagram bigger than the bound detectable at all. The
		// bytes never reach a decoder.
		p.oversize.inc()
		return
	}
	if p.jsonOnly && len(raw) > 0 && raw[0] == binMagic {
		// A JSON-pinned engine behaves exactly like a daemon predating the
		// binary codec: binary datagrams are undecodable noise.
		p.badMsgs.inc()
		return
	}
	msg, bin, err := decodePeerMsg(raw)
	if err != nil {
		p.badMsgs.inc()
		return
	}
	if bin {
		p.binMsgs.inc()
	}
	if msg.From == p.cfg.Self {
		return
	}
	switch msg.Type {
	case MsgJoin:
		p.handleJoin(msg, from, true)
	case MsgJoinAck:
		p.handleJoin(msg, from, false)
	case MsgDelta:
		p.handleDelta(msg)
	case MsgDigest:
		p.handleDigest(msg)
	case MsgDiff:
		p.handleDiff(msg)
	case MsgPull:
		p.handlePull(msg)
	}
	// Codec learning runs after the handlers so a join has registered its
	// sender: an explicit advertisement or any binary-decoded datagram marks
	// the peer binary-capable.
	if !p.jsonOnly && (bin || msg.Codec == CodecBinary) {
		if ps := p.peerByID(msg.From); ps != nil {
			ps.bin.Store(true)
		}
	}
}

// handleJoin registers the sender as a peer; for a join (not an ack) it
// answers join-ack so the handshake meshes both sides. The advertised Addr
// wins over the datagram source (NAT rewrites aside, the advertised address
// is the one the peer actually listens on); an empty Addr falls back to the
// source address.
func (p *Peering) handleJoin(msg Msg, from net.Addr, ack bool) {
	addrStr := msg.Addr
	var addr net.Addr
	if addrStr != "" {
		a, err := p.resolve(addrStr)
		if err != nil {
			p.badMsgs.inc()
			return
		}
		addr = a
	} else if from != nil {
		addr, addrStr = from, from.String()
	} else {
		p.badMsgs.inc()
		return
	}
	p.mu.Lock()
	p.addPeerLocked(msg.From, addrStr, addr)
	p.mu.Unlock()
	if ack {
		_ = p.send(addr, Msg{Type: MsgJoinAck, From: p.cfg.Self, Addr: p.cfg.Addr, Codec: p.codecToken()})
	}
}

// handleDelta applies pushed entries and, while hop budget remains,
// re-enqueues the applied ones for forwarding — the rumor-mongering step.
func (p *Peering) handleDelta(msg Msg) {
	var forward []crp.NodeID
	for _, d := range msg.Deltas {
		applied, err := p.svc.ApplyDelta(d)
		if err != nil {
			p.badMsgs.inc()
			continue
		}
		if !applied {
			p.deltasStale.inc()
			continue
		}
		p.deltasApplied.inc()
		if msg.TTL > 1 {
			forward = append(forward, d.Node)
		}
	}
	if len(forward) > 0 {
		p.mu.Lock()
		for _, node := range forward {
			if msg.TTL-1 > p.pending[node] {
				p.pending[node] = msg.TTL - 1
			}
		}
		p.mu.Unlock()
	}
}

// handleDigest compares the sender's per-shard digests against the local
// store and answers with a diff: the differing shard indices plus the local
// entry metadata for those shards, packed to the datagram byte budget (and
// the MaxMetasPerMsg count cap) in whole shards only — a shard is claimed as
// covered only if every one of its metas is carried, because handleDiff
// reads absences from covered shards as "peer lacks this node". Shards that
// don't fit are left for later rounds, since anti-entropy repairs
// incrementally. Matching digests count toward the convergence counter.
func (p *Peering) handleDigest(msg Msg) {
	local := p.svc.ShardDigests()
	if msg.ShardCount != len(local) || len(msg.Digests) != len(local) {
		p.shapeMismatch.inc()
		return
	}
	var differing []int
	for i := range local {
		if local[i] != msg.Digests[i] {
			differing = append(differing, i)
		}
	}
	p.setPeerLag(msg.From, int64(len(differing)))
	if len(differing) == 0 {
		p.convergence.inc()
		return
	}
	ps := p.peerByID(msg.From)
	if ps == nil {
		return
	}
	bin := p.binTo(ps)
	reply := Msg{Type: MsgDiff, From: p.cfg.Self}
	count := p.cfg.MaxMetasPerMsg
	budget := MaxMsgSize - binOverhead
	for _, shard := range differing {
		metas, err := p.svc.ShardMetas(shard)
		if err != nil {
			continue
		}
		cost := shardIdxWireCost(bin, shard)
		for i := range metas {
			cost += metaWireCost(bin, &metas[i])
		}
		if len(reply.Shards) > 0 && (cost > budget || len(metas) > count) {
			break // this shard doesn't fit; later rounds will get to it
		}
		reply.Shards = append(reply.Shards, shard)
		reply.Metas = append(reply.Metas, metas...)
		budget -= cost
		count -= len(metas)
		if budget <= 0 || count <= 0 {
			break
		}
	}
	_ = p.sendPeer(ps, reply)
}

// handleDiff reconciles the peer's metadata against the local store: local
// entries that supersede (or that the peer lacks) are pushed as deltas with
// a one-hop budget; remote entries that supersede (or that we lack) are
// pulled. The covered-shard list makes absences meaningful — a node missing
// from the peer's metas for a listed shard really is unknown to the peer.
func (p *Peering) handleDiff(msg Msg) {
	ps := p.peerByID(msg.From)
	if ps == nil {
		return
	}
	shardSet := make(map[int]bool, len(msg.Shards))
	for _, s := range msg.Shards {
		shardSet[s] = true
	}
	remote := make(map[crp.NodeID]crp.NodeMeta, len(msg.Metas))
	for _, m := range msg.Metas {
		remote[m.Node] = m
	}
	localKnown := make(map[crp.NodeID]crp.NodeMeta)
	localNodes := make([]crp.NodeID, 0, len(msg.Metas))
	for shard := range shardSet {
		locals, err := p.svc.ShardMetas(shard)
		if err != nil {
			continue
		}
		for _, lm := range locals {
			localKnown[lm.Node] = lm
			localNodes = append(localNodes, lm.Node)
		}
	}
	sort.Slice(localNodes, func(i, j int) bool { return localNodes[i] < localNodes[j] })

	var push []crp.NodeID
	for _, node := range localNodes {
		rm, known := remote[node]
		if !known || localKnown[node].Supersedes(rm) {
			push = append(push, node)
		}
	}
	remoteNodes := make([]crp.NodeID, 0, len(remote))
	for node := range remote {
		remoteNodes = append(remoteNodes, node)
	}
	sort.Slice(remoteNodes, func(i, j int) bool { return remoteNodes[i] < remoteNodes[j] })
	var pull []string
	for _, node := range remoteNodes {
		if !shardSet[p.svc.ShardOf(node)] {
			continue // meta for a shard the diff doesn't claim to cover
		}
		lm, known := localKnown[node]
		if !known || remote[node].Supersedes(lm) {
			pull = append(pull, string(node))
		}
	}
	p.pushDeltas(ps, push)
	for start := 0; start < len(pull); start += p.cfg.MaxPullPerMsg {
		end := start + p.cfg.MaxPullPerMsg
		if end > len(pull) {
			end = len(pull)
		}
		if err := p.sendPeer(ps, Msg{Type: MsgPull, From: p.cfg.Self, Nodes: pull[start:end]}); err == nil {
			p.pulls.inc()
		}
	}
}

// handlePull answers a pull with the requested entries.
func (p *Peering) handlePull(msg Msg) {
	ps := p.peerByID(msg.From)
	if ps == nil {
		return
	}
	nodes := make([]crp.NodeID, 0, len(msg.Nodes))
	for _, n := range msg.Nodes {
		nodes = append(nodes, crp.NodeID(n))
	}
	p.pushDeltas(ps, nodes)
}

// pushDeltas exports and sends the named entries to one peer, packed to the
// wire budget by sendDeltas, with a one-hop budget (anti-entropy repairs are
// point-to-point; rumor fan-out is Tick's job).
func (p *Peering) pushDeltas(ps *peerState, nodes []crp.NodeID) {
	if len(nodes) == 0 {
		return
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	deltas := make([]crp.NodeDelta, 0, len(nodes))
	for _, node := range nodes {
		if d, ok := p.svc.ExportDelta(node); ok {
			deltas = append(deltas, d)
		}
	}
	p.sendDeltas(ps, deltas, 1)
}

// peerByID looks up a known peer.
func (p *Peering) peerByID(id string) *peerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peers[id]
}

// setPeerLag records the differing-shard count for a peer (gauge + status).
func (p *Peering) setPeerLag(id string, lag int64) {
	if ps := p.peerByID(id); ps != nil {
		ps.lag.Set(lag)
		ps.lagV.Store(lag)
	}
}
