package faults

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// Hash sub-domains for the plane's independent decision streams. They share
// nothing with netsim's own domains because every draw also mixes the
// scenario seed.
const (
	domProbeLoss uint64 = 0xFA_17_0001 + iota
	domChurnGate
	domChurnPick
	domFlap
	domPkt
	domCongGate
	domDelayJitter
)

// congGateBucket quantizes rate-gated congestion so repeated RTT
// evaluations within a short interval agree (mirrors netsim's buckets).
const congGateBucket = time.Minute

// Option customizes a Plane.
type Option func(*Plane)

// WithRegistry directs the plane's activation counters to reg instead of
// obs.Default().
func WithRegistry(reg *obs.Registry) Option {
	return func(p *Plane) { p.reg = reg }
}

// WithClock attaches the virtual clock that gates packet-level fault
// windows (the simulation-level hooks receive explicit times instead).
// Without a clock, packet faults see virtual time 0: windows starting at 0
// are always active, later windows never are.
func WithClock(c *netsim.Clock) Option {
	return func(p *Plane) { p.clock = c }
}

// Plane is a compiled fault scenario: the deterministic decision procedure
// every layer consults. It is safe for concurrent use; all methods are
// stateless hashes apart from the activation counters.
type Plane struct {
	topo  *netsim.Topology
	sc    Scenario
	clock *netsim.Clock
	reg   *obs.Registry

	// churnPool is the LDNS identity pool churned hosts re-home to.
	churnPool []netsim.HostID

	// acts counts activations per fault index; kindCounters mirror them
	// into obs per kind ("faults.activations.<kind>").
	acts         []atomic.Uint64
	kindCounters map[Kind]*obs.Counter
}

// New compiles a scenario into a plane over the given topology. A nil
// topology is accepted when the scenario contains only pkt-* faults — the
// packet path never consults the topology, and standalone consumers of
// WrapPacketConn (the gossip mesh harness) have no simulated network at all.
func New(topo *netsim.Topology, sc Scenario, opts ...Option) (*Plane, error) {
	if topo == nil {
		for i := range sc.Faults {
			if !pktKinds[sc.Faults[i].Kind] {
				return nil, fmt.Errorf("faults: nil topology, but fault %d (%s) needs one", i, sc.Faults[i].Kind)
			}
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	p := &Plane{
		topo:         topo,
		sc:           sc,
		reg:          obs.Default(),
		acts:         make([]atomic.Uint64, len(sc.Faults)),
		kindCounters: make(map[Kind]*obs.Counter),
	}
	if topo != nil {
		p.churnPool = topo.Clients()
	}
	for _, opt := range opts {
		opt(p)
	}
	for _, f := range sc.Faults {
		if _, ok := p.kindCounters[f.Kind]; !ok {
			p.kindCounters[f.Kind] = p.reg.Counter("faults.activations." + string(f.Kind))
		}
	}
	return p, nil
}

// Scenario returns the plane's (validated) scenario.
func (p *Plane) Scenario() Scenario { return p.sc }

// fired records one activation of fault i.
func (p *Plane) fired(i int) {
	p.acts[i].Add(1)
	p.kindCounters[p.sc.Faults[i].Kind].Inc()
}

// Activations returns the per-kind activation counts accumulated by this
// plane (not the process-wide obs counters, which outlive it).
func (p *Plane) Activations() map[Kind]uint64 {
	out := make(map[Kind]uint64)
	for i := range p.sc.Faults {
		out[p.sc.Faults[i].Kind] += p.acts[i].Load()
	}
	return out
}

// hostMatch reports whether fault f scopes host h (by region).
func (p *Plane) hostMatch(f *Fault, h netsim.HostID) bool {
	if f.Target == "" {
		return true
	}
	host := p.topo.Host(h)
	return host != nil && host.Region == f.Target
}

// --- netsim.Perturb ---------------------------------------------------------

var _ netsim.Perturb = (*Plane)(nil)

// ExtraRTTMs sums the active congestion storms covering host h at virtual
// time at. A fault with Rate in (0,1) gates per host per minute bucket, so
// a storm can be made intermittent.
func (p *Plane) ExtraRTTMs(h netsim.HostID, at time.Duration) float64 {
	extra := 0.0
	for i := range p.sc.Faults {
		f := &p.sc.Faults[i]
		if f.Kind != Congestion || !f.active(at) || !p.hostMatch(f, h) {
			continue
		}
		if f.Rate > 0 && f.Rate < 1 {
			bucket := uint64(at / congGateBucket)
			if netsim.UnitAt(p.sc.Seed, domCongGate, uint64(i), uint64(h), bucket) >= f.Rate {
				continue
			}
		}
		extra += f.ExtraMs
		p.fired(i)
	}
	return extra
}

// ClockSkew sums the active clock-skew faults covering host h at virtual
// time at: the offset h's own clock reads relative to true time.
func (p *Plane) ClockSkew(h netsim.HostID, at time.Duration) time.Duration {
	var skew time.Duration
	for i := range p.sc.Faults {
		f := &p.sc.Faults[i]
		if f.Kind != ClockSkew || !f.active(at) || !p.hostMatch(f, h) {
			continue
		}
		skew += f.Skew.D()
		p.fired(i)
	}
	return skew
}

// --- probe-path hooks (consulted by the experiment harness) ----------------

// ProbeLost reports whether host h's probe at virtual time at yields no
// observation: its LDNS is inside an outage window, or the resolution is
// individually lost (a DNS timeout after retries).
func (p *Plane) ProbeLost(h netsim.HostID, at time.Duration) bool {
	lost := false
	for i := range p.sc.Faults {
		f := &p.sc.Faults[i]
		if !f.active(at) || !p.hostMatch(f, h) {
			continue
		}
		switch f.Kind {
		case LDNSOutage:
			p.fired(i)
			lost = true
		case ProbeLoss:
			if netsim.UnitAt(p.sc.Seed, domProbeLoss, uint64(i), uint64(h), uint64(at)) < f.Rate {
				p.fired(i)
				lost = true
			}
		}
	}
	return lost
}

// ResolverFor returns the LDNS identity host h actually probes through at
// virtual time at: h itself, or — under an active churn fault — a
// deterministically drawn alternate from the client population. With a
// churn Period, the identity re-rolls every Period; otherwise once per
// window.
func (p *Plane) ResolverFor(h netsim.HostID, at time.Duration) netsim.HostID {
	for i := range p.sc.Faults {
		f := &p.sc.Faults[i]
		if f.Kind != LDNSChurn || !f.active(at) || !p.hostMatch(f, h) || len(p.churnPool) == 0 {
			continue
		}
		bucket := uint64(0)
		if f.Period > 0 {
			bucket = uint64(at / f.Period.D())
		}
		if netsim.UnitAt(p.sc.Seed, domChurnGate, uint64(i), uint64(h), bucket) >= f.Rate {
			continue
		}
		pick := p.churnPool[netsim.Mix(p.sc.Seed, domChurnPick, uint64(i), uint64(h), bucket)%uint64(len(p.churnPool))]
		if pick == h {
			pick = p.churnPool[(netsim.Mix(p.sc.Seed, domChurnPick, uint64(i), uint64(h), bucket)+1)%uint64(len(p.churnPool))]
		}
		if pick != h {
			p.fired(i)
			return pick
		}
	}
	return h
}

// --- CDN mapping hook -------------------------------------------------------

// MapEpoch implements cdn.MapHook: it freezes the mapping state to the
// epoch containing a cdn-freeze fault's start, and rehashes the epoch
// identity every cdn-flap period, producing abrupt wholesale re-mappings.
// It is the hook of the unnamed (single-CDN) network; CDN-scoped faults do
// not apply through it.
func (p *Plane) MapEpoch(ldns netsim.HostID, at, epochLen time.Duration, epoch uint64) (uint64, time.Duration) {
	return p.mapEpochNS("", ldns, at, epochLen, epoch)
}

// MapHookFor returns the cdn.MapHook for the fleet member named ns: only
// cdn-freeze/cdn-flap faults whose CDN scope is empty (fleet-wide) or
// exactly ns apply, so one scenario can freeze CDN A's mapping while CDN B
// keeps flapping on its own schedule. Install per member via
// cdn.Fleet.SetMapHook.
func (p *Plane) MapHookFor(ns string) func(ldns netsim.HostID, at, epochLen time.Duration, epoch uint64) (uint64, time.Duration) {
	return func(ldns netsim.HostID, at, epochLen time.Duration, epoch uint64) (uint64, time.Duration) {
		return p.mapEpochNS(ns, ldns, at, epochLen, epoch)
	}
}

// mapEpochNS is the shared mapping-hook body: MapEpoch with a CDN-namespace
// filter.
func (p *Plane) mapEpochNS(ns string, ldns netsim.HostID, at, epochLen time.Duration, epoch uint64) (uint64, time.Duration) {
	epochStart := time.Duration(epoch) * epochLen
	for i := range p.sc.Faults {
		f := &p.sc.Faults[i]
		if !f.active(at) || !p.hostMatch(f, ldns) {
			continue
		}
		if f.CDN != "" && f.CDN != ns {
			continue
		}
		switch f.Kind {
		case CDNFreeze:
			epoch = uint64(f.Start.D() / epochLen)
			epochStart = time.Duration(epoch) * epochLen
			p.fired(i)
		case CDNFlap:
			bucket := uint64(0)
			if f.Period > 0 {
				bucket = uint64((at - f.Start.D()) / f.Period.D())
			}
			// Preserve the epoch's time meaning but replace its identity,
			// so every epoch-keyed draw (monitor salt, load, spread)
			// changes at once — an abrupt re-mapping event.
			epoch = netsim.Mix(p.sc.Seed, domFlap, uint64(i), bucket)
			p.fired(i)
		}
	}
	return epoch, epochStart
}

// --- packet-path decisions (consulted by WrapPacketConn) --------------------

// pktNow is the virtual time packet-fault windows are evaluated at.
func (p *Plane) pktNow() time.Duration {
	if p.clock == nil {
		return 0
	}
	return p.clock.Now()
}

// pktDecide reports whether the idx-th packet crossing (label, dir) is hit
// by an active fault of the given kind, returning the fault's parameters.
func (p *Plane) pktDecide(kind Kind, label, dir string, idx uint64) (bool, *Fault) {
	now := p.pktNow()
	for i := range p.sc.Faults {
		f := &p.sc.Faults[i]
		if f.Kind != kind || !f.active(now) {
			continue
		}
		if f.Target != "" && f.Target != label {
			continue
		}
		rate := f.Rate
		if rate == 0 {
			rate = 1 // pkt-delay may omit the rate: delay everything
		}
		if netsim.UnitAt(p.sc.Seed, domPkt, uint64(i), hashString(kind, label, dir), idx) < rate {
			p.fired(i)
			return true, f
		}
	}
	return false, nil
}

// delayFor returns the hash-jittered delay for one sent packet (±50% of
// ExtraMs), or 0.
func (p *Plane) delayFor(label string, idx uint64) time.Duration {
	hit, f := p.pktDecide(PacketDelay, label, "tx", idx)
	if !hit {
		return 0
	}
	jitter := 0.5 + netsim.UnitAt(p.sc.Seed, domDelayJitter, hashString(f.Kind, label, "tx"), idx)
	return time.Duration(f.ExtraMs * jitter * float64(time.Millisecond))
}

// hashString folds identifying strings into one hash input.
func hashString(kind Kind, label, dir string) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
		h = (h ^ 0xFF) * 1099511628211
	}
	mix(string(kind))
	mix(label)
	mix(dir)
	return h
}

// String summarizes the plane for logs.
func (p *Plane) String() string {
	return fmt.Sprintf("faults.Plane{seed=%d, faults=%d}", p.sc.Seed, len(p.sc.Faults))
}
