package faults

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func d(v time.Duration) Duration { return Duration(v) }

// TestCDNEventSchedulePinsWindows pins the compiled schedule exactly for a
// scenario mixing all three CDN fault shapes.
func TestCDNEventSchedulePinsWindows(t *testing.T) {
	sc := Scenario{
		Seed: 99,
		Faults: []Fault{
			{Kind: CDNFreeze, CDN: "cdnB", Start: d(5 * time.Minute), Stop: d(20 * time.Minute)},
			{Kind: CDNFlap, Start: d(30 * time.Minute), Stop: d(44 * time.Minute)},
			{Kind: CDNFlap, Period: d(2 * time.Minute), Start: d(46 * time.Minute), Stop: d(52 * time.Minute)},
		},
	}
	got := sc.CDNEventSchedule(30*time.Second, time.Hour)
	want := EventSchedule{
		Seed:     99,
		EpochLen: d(30 * time.Second),
		Horizon:  d(time.Hour),
		Events: []TruthEvent{
			// Freeze: from the first epoch boundary after 5m the pin is
			// observable as both a shift onto the pinned epoch and a stale
			// mapping; thaw remap at the window close.
			{Kind: EventRemap, CDN: "cdnB", Fault: 0, At: d(5*time.Minute + 30*time.Second), Deadline: d(20 * time.Minute)},
			{Kind: EventStale, CDN: "cdnB", Fault: 0, At: d(5*time.Minute + 30*time.Second), Deadline: d(20 * time.Minute)},
			{Kind: EventRemap, CDN: "cdnB", Fault: 0, At: d(20 * time.Minute), Deadline: d(time.Hour)},
			// Pinned flap: remap at start (no stale — the pinned identity
			// still jitters with the naturally advancing epochStart), thaw
			// remap at the close.
			{Kind: EventRemap, Fault: 1, At: d(30 * time.Minute), Deadline: d(44 * time.Minute)},
			{Kind: EventRemap, Fault: 1, At: d(44 * time.Minute), Deadline: d(time.Hour)},
			// Periodic flap: a remap at every period boundary, then the thaw.
			{Kind: EventRemap, Fault: 2, At: d(46 * time.Minute), Deadline: d(48 * time.Minute)},
			{Kind: EventRemap, Fault: 2, At: d(48 * time.Minute), Deadline: d(50 * time.Minute)},
			{Kind: EventRemap, Fault: 2, At: d(50 * time.Minute), Deadline: d(52 * time.Minute)},
			{Kind: EventRemap, Fault: 2, At: d(52 * time.Minute), Deadline: d(time.Hour)},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schedule mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCDNEventScheduleClipsToHorizon(t *testing.T) {
	sc := Scenario{
		Seed: 1,
		Faults: []Fault{
			// Open-ended pinned flap: clipped to the horizon, no thaw remap.
			{Kind: CDNFlap, Start: d(10 * time.Minute)},
			// Starts past the horizon: contributes nothing.
			{Kind: CDNFreeze, Start: d(2 * time.Hour)},
			// Non-CDN faults contribute nothing.
			{Kind: ProbeLoss, Rate: 0.5, Start: d(0)},
		},
	}
	got := sc.CDNEventSchedule(30*time.Second, time.Hour)
	want := []TruthEvent{
		{Kind: EventRemap, Fault: 0, At: d(10 * time.Minute), Deadline: d(time.Hour)},
	}
	if !reflect.DeepEqual(got.Events, want) {
		t.Fatalf("clipped schedule mismatch:\n got %+v\nwant %+v", got.Events, want)
	}
}

// TestCDNEventScheduleJSONStable round-trips the schedule through JSON: the
// drift experiment embeds it in reports that are byte-compared across
// reruns, so the encoding must be lossless.
func TestCDNEventScheduleJSONStable(t *testing.T) {
	sc := Scenario{
		Seed: 7,
		Faults: []Fault{
			{Kind: CDNFlap, CDN: "cdnB", Start: d(3 * time.Minute), Stop: d(9 * time.Minute)},
		},
	}
	sched := sc.CDNEventSchedule(30*time.Second, 30*time.Minute)
	b1, err := json.Marshal(sched)
	if err != nil {
		t.Fatal(err)
	}
	var back EventSchedule
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sched) {
		t.Fatalf("JSON roundtrip changed the schedule:\n got %+v\nwant %+v", back, sched)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("re-encoding not byte-identical:\n%s\n%s", b1, b2)
	}
}
