package faults

import (
	"net"
	"testing"
	"time"

	"repro/internal/netsim"
)

// udpPair returns two connected loopback UDP sockets.
func udpPair(t *testing.T) (a, b net.PacketConn, aAddr, bAddr net.Addr) {
	t.Helper()
	pa, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pb, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pa.Close(); pb.Close() })
	return pa, pb, pa.LocalAddr(), pb.LocalAddr()
}

func pktPlane(t *testing.T, f Fault) *Plane {
	t.Helper()
	plane, err := New(testTopo(t), Scenario{Seed: 17, Faults: []Fault{f}})
	if err != nil {
		t.Fatal(err)
	}
	return plane
}

func TestWrapPacketConnLossDropsEverything(t *testing.T) {
	a, b, _, bAddr := udpPair(t)
	plane := pktPlane(t, Fault{Kind: PacketLoss, Rate: 1})
	rb := plane.WrapPacketConn(b, "crpd")

	for i := 0; i < 3; i++ {
		if _, err := a.WriteTo([]byte("ping"), bAddr); err != nil {
			t.Fatal(err)
		}
	}
	rb.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 64)
	if n, _, err := rb.ReadFrom(buf); err == nil {
		t.Fatalf("read %q through a rate-1 loss fault, want timeout", buf[:n])
	}
	if plane.Activations()[PacketLoss] < 3 {
		t.Fatalf("loss activations = %d, want >= 3", plane.Activations()[PacketLoss])
	}
}

func TestWrapPacketConnLossRespectsLabel(t *testing.T) {
	a, b, _, bAddr := udpPair(t)
	plane := pktPlane(t, Fault{Kind: PacketLoss, Rate: 1, Target: "dns"})
	rb := plane.WrapPacketConn(b, "crpd") // fault targets "dns", not us

	if _, err := a.WriteTo([]byte("ping"), bAddr); err != nil {
		t.Fatal(err)
	}
	rb.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	n, _, err := rb.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("read = %q, %v; want ping through untargeted conn", buf[:n], err)
	}
}

func TestWrapPacketConnDupDeliversTwice(t *testing.T) {
	a, b, _, bAddr := udpPair(t)
	plane := pktPlane(t, Fault{Kind: PacketDup, Rate: 1})
	wa := plane.WrapPacketConn(a, "crpd")

	if _, err := wa.WriteTo([]byte("once"), bAddr); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := 0; i < 2; i++ {
		b.SetReadDeadline(time.Now().Add(time.Second))
		n, _, err := b.ReadFrom(buf)
		if err != nil {
			t.Fatalf("copy %d: %v", i+1, err)
		}
		if string(buf[:n]) != "once" {
			t.Fatalf("copy %d = %q", i+1, buf[:n])
		}
	}
	if plane.Activations()[PacketDup] == 0 {
		t.Fatal("dup fault never fired")
	}
}

func TestWrapPacketConnReorderSwapsAdjacent(t *testing.T) {
	a, b, _, bAddr := udpPair(t)
	plane := pktPlane(t, Fault{Kind: PacketReorder, Rate: 1})
	rb := plane.WrapPacketConn(b, "crpd")

	// Send A then B with a gap so arrival order is deterministic.
	if _, err := a.WriteTo([]byte("A"), bAddr); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := a.WriteTo([]byte("B"), bAddr); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 64)
	var got []string
	for len(got) < 2 {
		rb.SetReadDeadline(time.Now().Add(time.Second))
		n, _, err := rb.ReadFrom(buf)
		if err != nil {
			t.Fatalf("after %v: %v", got, err)
		}
		got = append(got, string(buf[:n]))
	}
	if got[0] != "B" || got[1] != "A" {
		t.Fatalf("delivery order %v, want [B A] (adjacent swap)", got)
	}
	if plane.Activations()[PacketReorder] == 0 {
		t.Fatal("reorder fault never fired")
	}
}

func TestWrapPacketConnDelaySlowsWrites(t *testing.T) {
	a, b, _, bAddr := udpPair(t)
	plane := pktPlane(t, Fault{Kind: PacketDelay, ExtraMs: 60})
	wa := plane.WrapPacketConn(a, "crpd")

	start := time.Now()
	if _, err := wa.WriteTo([]byte("slow"), bAddr); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Jitter is ±50%, so the floor is 30ms.
	if elapsed < 25*time.Millisecond {
		t.Fatalf("delayed write took %v, want >= ~30ms", elapsed)
	}
	b.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	if _, _, err := b.ReadFrom(buf); err != nil {
		t.Fatal(err)
	}
	if plane.Activations()[PacketDelay] == 0 {
		t.Fatal("delay fault never fired")
	}
}

func TestWrapPacketConnWindowGatedByClock(t *testing.T) {
	a, b, _, bAddr := udpPair(t)
	clk := netsim.NewClock()
	plane, err := New(testTopo(t), Scenario{Seed: 17, Faults: []Fault{
		{Kind: PacketLoss, Rate: 1, Start: Duration(time.Hour)},
	}}, WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	rb := plane.WrapPacketConn(b, "crpd")
	buf := make([]byte, 64)

	// Before the window: traffic flows.
	if _, err := a.WriteTo([]byte("early"), bAddr); err != nil {
		t.Fatal(err)
	}
	rb.SetReadDeadline(time.Now().Add(time.Second))
	if n, _, err := rb.ReadFrom(buf); err != nil || string(buf[:n]) != "early" {
		t.Fatalf("pre-window read = %q, %v", buf[:n], err)
	}

	// Advance into the window: traffic dies.
	clk.Advance(2 * time.Hour)
	if _, err := a.WriteTo([]byte("late"), bAddr); err != nil {
		t.Fatal(err)
	}
	rb.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, _, err := rb.ReadFrom(buf); err == nil {
		t.Fatalf("read %q inside the loss window, want timeout", buf[:n])
	}
}
