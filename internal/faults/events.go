package faults

import (
	"sort"
	"time"
)

// Ground-truth event kinds compiled from a scenario's CDN faults. They
// deliberately match the drift detector's alarm kinds so a scorer can join
// detections against the schedule without a translation table.
const (
	// EventRemap marks an instant where the CDN mapping identity changes
	// abruptly: a flap window opening, a flap period boundary, or a
	// freeze/flap window thawing back to the natural epoch rotation.
	EventRemap = "remap"
	// EventStale marks a window during which the CDN mapping is pinned
	// while the natural epoch rotation would have moved on — the mapping
	// is serving stale state for the whole window.
	EventStale = "stale"
)

// TruthEvent is one ground-truth CDN mapping event. At is the earliest
// instant the event is observable on the redirection stream; Deadline is
// the last instant a detection may be credited to it. Both are offsets on
// the same virtual clock the fault windows use.
type TruthEvent struct {
	Kind string `json:"kind"`
	// CDN is the fault's namespace scope; empty means the event applies to
	// every CDN the plane fronts.
	CDN string `json:"cdn,omitempty"`
	// Fault indexes the originating fault in Scenario.Faults.
	Fault    int      `json:"fault"`
	At       Duration `json:"at"`
	Deadline Duration `json:"deadline"`
}

// EventSchedule is the compiled ground-truth event list for one scenario,
// stable and JSON-serializable so experiment reports can embed it. Events
// are sorted by (At, Fault, Kind).
type EventSchedule struct {
	Seed     uint64       `json:"seed"`
	EpochLen Duration     `json:"epochLen"`
	Horizon  Duration     `json:"horizon"`
	Events   []TruthEvent `json:"events"`
}

// CDNEventSchedule compiles the scenario's cdn-freeze/cdn-flap faults into
// the ground-truth mapping events a detector watching the redirection
// stream should report, mirroring the Plane's mapping-hook semantics
// exactly:
//
//   - cdn-flap opens with an abrupt remap at Start. With Period > 0 it
//     remaps again at every period boundary inside the window; with
//     Period == 0 it pins one random epoch identity for the whole window.
//     Either way the hook leaves the epoch's time meaning (epochStart)
//     advancing naturally, so load and monitor noise keep evolving — a
//     flapped mapping shifts but never freezes, hence no stale window.
//   - cdn-freeze pins both the epoch identity and its time meaning to the
//     epoch containing Start — the mapping literally stops changing. Once
//     the natural rotation passes the first epoch boundary after Start the
//     pin becomes observable twice over: the served aggregate drifts from
//     the rotating-epoch mixture onto the single pinned epoch (a remap
//     shift), and the mapping is stale for the rest of the window.
//   - Both kinds thaw with a remap when the window closes before the
//     horizon (the pinned identity snaps back to the natural epoch).
//
// A remap event's Deadline is the next event boundary of the same fault
// (the window close for the last one); a thaw remap's Deadline is the
// horizon. A stale event's window is [first epoch boundary after Start,
// window close). epochLen is the CDN's mapping epoch (cdn.DefaultMappingEpoch
// unless overridden) and horizon clips open-ended windows.
func (s Scenario) CDNEventSchedule(epochLen, horizon time.Duration) EventSchedule {
	sched := EventSchedule{
		Seed:     s.Seed,
		EpochLen: Duration(epochLen),
		Horizon:  Duration(horizon),
	}
	if epochLen <= 0 || horizon <= 0 {
		return sched
	}
	for i := range s.Faults {
		f := &s.Faults[i]
		if f.Kind != CDNFreeze && f.Kind != CDNFlap {
			continue
		}
		start := f.Start.D()
		if start < 0 || start >= horizon {
			continue
		}
		stop := horizon
		if f.Stop > 0 && f.Stop.D() < horizon {
			stop = f.Stop.D()
		}
		if stop <= start {
			continue
		}
		add := func(kind string, at, deadline time.Duration) {
			sched.Events = append(sched.Events, TruthEvent{
				Kind: kind, CDN: f.CDN, Fault: i,
				At: Duration(at), Deadline: Duration(deadline),
			})
		}
		// First natural epoch boundary strictly after the window opens:
		// the instant a pinned mapping starts lagging the rotation.
		staleAt := (start/epochLen + 1) * epochLen
		switch f.Kind {
		case CDNFlap:
			if f.Period > 0 {
				for t := start; t < stop; t += f.Period.D() {
					deadline := t + f.Period.D()
					if deadline > stop {
						deadline = stop
					}
					add(EventRemap, t, deadline)
				}
			} else {
				add(EventRemap, start, stop)
			}
		case CDNFreeze:
			if staleAt < stop {
				add(EventRemap, staleAt, stop)
				add(EventStale, staleAt, stop)
			}
		}
		if stop < horizon {
			add(EventRemap, stop, horizon)
		}
	}
	sort.Slice(sched.Events, func(a, b int) bool {
		x, y := sched.Events[a], sched.Events[b]
		if x.At != y.At {
			return x.At < y.At
		}
		if x.Fault != y.Fault {
			return x.Fault < y.Fault
		}
		return x.Kind < y.Kind
	})
	return sched
}
