// Package faults is the simulator's deterministic fault-injection plane.
//
// The CRP results depend on redirection behaviour that is messy in the
// wild — DNS packet loss, stale CDN maps across the 20 s TTL window, LDNS
// outages and churn, regional congestion storms, skewed client clocks —
// yet the benign substrate alone never exercises them. This package
// declares those conditions as a *scenario*: a seeded, JSON-serializable
// script of faults, each active over a window of the virtual clock. Every
// injection decision is a stateless hash of (scenario seed, fault index,
// entity identifiers, time bucket), the same discipline netsim uses for
// its noise, so any run of a scenario is bit-reproducible and two planes
// built from the same scenario make identical decisions.
//
// A Plane compiled from a scenario plugs into each layer through injected
// hooks: netsim.Perturb for congestion storms and clock skew, cdn.MapHook
// for frozen/flapping mapping state, per-probe predicates the experiment
// harness consults for probe loss and LDNS outage/churn, and a wrapping
// net.PacketConn for loss/duplication/reordering/delay on the dnsserver
// and crpd UDP paths. Each fault exports an activation counter through
// internal/obs so tests and benches can assert a fault actually fired.
package faults

import (
	"encoding/json"
	"fmt"
	"time"
)

// Kind names a fault class.
type Kind string

// The fault classes the plane can inject.
const (
	// ProbeLoss drops individual CDN probe resolutions (a DNS timeout as
	// the probing client sees it): the probe yields no observation.
	ProbeLoss Kind = "probe-loss"
	// LDNSOutage takes the targeted hosts' resolvers down for the whole
	// window: every probe in the window is lost.
	LDNSOutage Kind = "ldns-outage"
	// LDNSChurn re-homes the targeted hosts onto a different LDNS identity
	// (drawn deterministically from the client population), polluting their
	// redirection histories the way resolver churn does in the wild.
	LDNSChurn Kind = "ldns-churn"
	// CDNFreeze pins the CDN mapping state to the epoch containing the
	// fault's start: answers inside the window are stale replays, emulating
	// TTL-boundary staleness and a wedged mapping system.
	CDNFreeze Kind = "cdn-freeze"
	// CDNFlap forces an abrupt re-mapping event every Period: the mapping
	// epoch identity is rehashed, so answers jump wholesale (the YouLighter
	// observation that CDN re-mappings are large and sudden).
	CDNFlap Kind = "cdn-flap"
	// Congestion is a regional congestion storm: every targeted host adds
	// ExtraMs of delay to paths through it for the window's duration.
	Congestion Kind = "congestion"
	// ClockSkew offsets the targeted hosts' clocks by Skew: their diurnal
	// state shifts and their probe observations carry skewed timestamps.
	ClockSkew Kind = "clock-skew"
	// PacketLoss drops datagrams crossing a wrapped PacketConn.
	PacketLoss Kind = "pkt-loss"
	// PacketDup delivers some sent datagrams twice.
	PacketDup Kind = "pkt-dup"
	// PacketDelay sleeps ExtraMs (±50%, hash-jittered) before sending.
	PacketDelay Kind = "pkt-delay"
	// PacketReorder swaps a received datagram with its successor.
	PacketReorder Kind = "pkt-reorder"
)

// kindsHost lists the kinds scoped by host region, kindsConn the kinds
// scoped by connection label.
var validKinds = map[Kind]bool{
	ProbeLoss: true, LDNSOutage: true, LDNSChurn: true,
	CDNFreeze: true, CDNFlap: true, Congestion: true, ClockSkew: true,
	PacketLoss: true, PacketDup: true, PacketDelay: true, PacketReorder: true,
}

// pktKinds are the kinds applied by WrapPacketConn rather than by the
// simulation-level hooks.
var pktKinds = map[Kind]bool{
	PacketLoss: true, PacketDup: true, PacketDelay: true, PacketReorder: true,
}

// Duration is a time.Duration that marshals to/from the human-readable
// string form ("90s", "20m") so scenario scripts stay writable by hand.
// A bare JSON number is accepted as nanoseconds.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "90s"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("faults: duration must be a string or integer nanoseconds: %s", b)
	}
	*d = Duration(ns)
	return nil
}

// D is shorthand for converting back to time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// Fault is one scripted fault.
type Fault struct {
	// Kind selects the fault class. Required.
	Kind Kind `json:"kind"`
	// Target scopes the fault. For host-scoped kinds it is a netsim region
	// code (e.g. "eu"); empty targets every host. For pkt-* kinds it is the
	// label given to WrapPacketConn; empty targets every wrapped conn.
	Target string `json:"target,omitempty"`
	// CDN scopes a cdn-freeze/cdn-flap fault to one CDN namespace in a
	// multi-CDN fleet: the fault only applies through the MapHookFor hook of
	// that namespace. Empty applies to every CDN (and is the only shape the
	// single-CDN MapEpoch hook sees).
	CDN string `json:"cdn,omitempty"`
	// Rate is the per-decision activation probability in (0,1] for the
	// probabilistic kinds (probe-loss, ldns-churn, pkt-loss/dup/reorder;
	// pkt-delay and congestion may use it to gate, default 1).
	Rate float64 `json:"rate,omitempty"`
	// ExtraMs is the added delay in milliseconds (congestion, pkt-delay).
	ExtraMs float64 `json:"extraMs,omitempty"`
	// Skew is the clock offset for clock-skew faults (may be negative).
	Skew Duration `json:"skew,omitempty"`
	// Period is the re-roll interval for ldns-churn identities and the
	// flap interval for cdn-flap. Zero means one draw for the whole window.
	Period Duration `json:"period,omitempty"`
	// Start and Stop bound the fault's active window on the virtual clock:
	// active while Start <= now < Stop. Stop zero means "never stops".
	Start Duration `json:"start,omitempty"`
	Stop  Duration `json:"stop,omitempty"`
}

// active reports whether the fault window covers virtual time at.
func (f *Fault) active(at time.Duration) bool {
	if at < f.Start.D() {
		return false
	}
	return f.Stop == 0 || at < f.Stop.D()
}

// validate checks one fault's parameters.
func (f *Fault) validate(i int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("faults: fault %d (%s): %s", i, f.Kind, fmt.Sprintf(format, args...))
	}
	if !validKinds[f.Kind] {
		return fmt.Errorf("faults: fault %d: unknown kind %q", i, f.Kind)
	}
	if f.Stop != 0 && f.Stop.D() <= f.Start.D() {
		return bad("stop %v must be after start %v", f.Stop.D(), f.Start.D())
	}
	if f.Rate < 0 || f.Rate > 1 {
		return bad("rate %v outside [0,1]", f.Rate)
	}
	if f.CDN != "" && f.Kind != CDNFreeze && f.Kind != CDNFlap {
		return bad("cdn scope only applies to cdn-freeze and cdn-flap")
	}
	switch f.Kind {
	case ProbeLoss, LDNSChurn, PacketLoss, PacketDup, PacketReorder:
		if f.Rate == 0 {
			return bad("rate is required")
		}
	case Congestion:
		if f.ExtraMs <= 0 {
			return bad("extraMs must be positive")
		}
	case PacketDelay:
		if f.ExtraMs <= 0 {
			return bad("extraMs must be positive")
		}
	case ClockSkew:
		if f.Skew == 0 {
			return bad("skew is required")
		}
	case CDNFlap:
		if f.Period < 0 {
			return bad("period must be non-negative")
		}
	}
	return nil
}

// Scenario is a complete fault script. The seed decorrelates this
// scenario's injection decisions from the topology's own noise and from
// other scenarios.
type Scenario struct {
	Seed   uint64  `json:"seed"`
	Faults []Fault `json:"faults"`
}

// Validate checks every fault in the scenario.
func (s *Scenario) Validate() error {
	for i := range s.Faults {
		if err := s.Faults[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// ParseScenario decodes and validates a JSON scenario script.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("faults: decode scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}
