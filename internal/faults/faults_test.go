package faults

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
)

func testTopo(t *testing.T) *netsim.Topology {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 30
	p.NumCandidates = 20
	p.NumReplicas = 60
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := Scenario{
		Seed: 42,
		Faults: []Fault{
			{Kind: ProbeLoss, Rate: 0.2, Start: Duration(10 * time.Minute), Stop: Duration(time.Hour)},
			{Kind: CDNFreeze, Target: "europe", Start: Duration(20 * time.Minute), Stop: Duration(40 * time.Minute)},
			{Kind: ClockSkew, Skew: Duration(-30 * time.Second)},
			{Kind: PacketDelay, Target: "crpd", ExtraMs: 15},
		},
	}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScenario(data)
	if err != nil {
		t.Fatalf("ParseScenario(%s): %v", data, err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario:\nin:  %+v\nout: %+v", sc, back)
	}
}

func TestScenarioDurationsAreHumanReadable(t *testing.T) {
	sc, err := ParseScenario([]byte(`{"seed":7,"faults":[
		{"kind":"probe-loss","rate":0.5,"start":"10m","stop":"1h30m"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	f := sc.Faults[0]
	if f.Start.D() != 10*time.Minute || f.Stop.D() != 90*time.Minute {
		t.Fatalf("parsed window %v..%v, want 10m..1h30m", f.Start.D(), f.Stop.D())
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		sc   string
	}{
		{"unknown kind", `{"faults":[{"kind":"meteor"}]}`},
		{"rate out of range", `{"faults":[{"kind":"probe-loss","rate":1.5}]}`},
		{"missing rate", `{"faults":[{"kind":"pkt-loss"}]}`},
		{"stop before start", `{"faults":[{"kind":"ldns-outage","start":"1h","stop":"30m"}]}`},
		{"congestion without extraMs", `{"faults":[{"kind":"congestion"}]}`},
		{"skew without skew", `{"faults":[{"kind":"clock-skew"}]}`},
	}
	for _, tc := range cases {
		if _, err := ParseScenario([]byte(tc.sc)); err == nil {
			t.Errorf("%s: scenario %s validated, want error", tc.name, tc.sc)
		}
	}
}

func TestCongestionStormRaisesRTT(t *testing.T) {
	topo := testTopo(t)
	clients := topo.Clients()
	a, b := clients[0], clients[1]
	at := 30 * time.Minute
	base := topo.RTTMs(a, b, at)

	plane, err := New(topo, Scenario{Seed: 9, Faults: []Fault{
		{Kind: Congestion, ExtraMs: 200, Start: 0, Stop: Duration(time.Hour)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	topo.SetPerturb(plane)
	defer topo.SetPerturb(nil)

	stormy := topo.RTTMs(a, b, at)
	if stormy < base+399 { // 200ms per endpoint
		t.Fatalf("storm RTT %0.1f, want >= %0.1f (base %0.1f + 2x200)", stormy, base+399, base)
	}
	after := topo.RTTMs(a, b, 2*time.Hour)
	if after != topo.RTTMs(a, b, 2*time.Hour) || after > base+300 {
		// outside the window the storm must be gone (diurnal drift between
		// the two instants is far below 300ms at this amplitude scale)
		t.Fatalf("post-window RTT %0.1f vs base %0.1f: storm leaked past its stop", after, base)
	}
	if plane.Activations()[Congestion] == 0 {
		t.Fatal("congestion fault never fired")
	}
}

func TestCongestionStormTargetsRegion(t *testing.T) {
	topo := testTopo(t)
	var inEU, outEU netsim.HostID = -1, -1
	for _, id := range topo.Clients() {
		switch topo.Host(id).Region {
		case "europe":
			if inEU < 0 {
				inEU = id
			}
		default:
			if outEU < 0 {
				outEU = id
			}
		}
	}
	if inEU < 0 || outEU < 0 {
		t.Skip("topology draw lacks both regions")
	}
	plane, err := New(topo, Scenario{Seed: 5, Faults: []Fault{
		{Kind: Congestion, Target: "europe", ExtraMs: 150},
	}})
	if err != nil {
		t.Fatal(err)
	}
	at := 10 * time.Minute
	if got := plane.ExtraRTTMs(inEU, at); got != 150 {
		t.Fatalf("europe host extra = %0.1f, want 150", got)
	}
	if got := plane.ExtraRTTMs(outEU, at); got != 0 {
		t.Fatalf("non-europe host extra = %0.1f, want 0", got)
	}
}

func TestClockSkewShiftsObservedTime(t *testing.T) {
	topo := testTopo(t)
	h := topo.Clients()[0]
	plane, err := New(topo, Scenario{Seed: 3, Faults: []Fault{
		{Kind: ClockSkew, Skew: Duration(45 * time.Minute), Start: 0, Stop: Duration(2 * time.Hour)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := plane.ClockSkew(h, time.Hour); got != 45*time.Minute {
		t.Fatalf("skew = %v, want 45m", got)
	}
	if got := plane.ClockSkew(h, 3*time.Hour); got != 0 {
		t.Fatalf("skew outside window = %v, want 0", got)
	}
	if plane.Activations()[ClockSkew] == 0 {
		t.Fatal("clock-skew fault never fired")
	}
}

func TestProbeLossIsSeededAndWindowed(t *testing.T) {
	topo := testTopo(t)
	sc := Scenario{Seed: 11, Faults: []Fault{
		{Kind: ProbeLoss, Rate: 0.5, Start: 0, Stop: Duration(time.Hour)},
	}}
	p1, err := New(topo, sc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(topo, sc)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	total := 0
	for _, h := range topo.Clients() {
		for i := 0; i < 6; i++ {
			at := time.Duration(i) * 10 * time.Minute
			total++
			l1, l2 := p1.ProbeLost(h, at), p2.ProbeLost(h, at)
			if l1 != l2 {
				t.Fatalf("same scenario disagreed on (%d, %v)", h, at)
			}
			if l1 {
				lost++
			}
			if p1.ProbeLost(h, at+2*time.Hour) {
				t.Fatalf("probe lost outside the fault window at %v", at+2*time.Hour)
			}
		}
	}
	frac := float64(lost) / float64(total)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("loss fraction %0.2f far from rate 0.5 over %d draws", frac, total)
	}
	// A different seed must make different decisions somewhere.
	p3, err := New(topo, Scenario{Seed: 12, Faults: sc.Faults})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, h := range topo.Clients() {
		for i := 0; i < 6; i++ {
			at := time.Duration(i) * 10 * time.Minute
			if p1.ProbeLost(h, at) != p3.ProbeLost(h, at) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 11 and 12 made identical loss decisions everywhere")
	}
}

func TestLDNSOutageLosesWholeWindow(t *testing.T) {
	topo := testTopo(t)
	plane, err := New(topo, Scenario{Seed: 2, Faults: []Fault{
		{Kind: LDNSOutage, Start: Duration(30 * time.Minute), Stop: Duration(time.Hour)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Clients()[0]
	if plane.ProbeLost(h, 10*time.Minute) {
		t.Fatal("probe lost before the outage window")
	}
	for at := 30 * time.Minute; at < time.Hour; at += 10 * time.Minute {
		if !plane.ProbeLost(h, at) {
			t.Fatalf("probe survived at %v inside the outage window", at)
		}
	}
	if plane.ProbeLost(h, time.Hour) {
		t.Fatal("probe lost at stop boundary: window must be half-open [start, stop)")
	}
}

func TestLDNSChurnRemapsDeterministically(t *testing.T) {
	topo := testTopo(t)
	sc := Scenario{Seed: 21, Faults: []Fault{
		{Kind: LDNSChurn, Rate: 1, Period: Duration(30 * time.Minute)},
	}}
	p1, err := New(topo, sc)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := New(topo, sc)
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Clients()[0]
	seen := map[netsim.HostID]bool{}
	for i := 0; i < 8; i++ {
		at := time.Duration(i) * 30 * time.Minute
		r1, r2 := p1.ResolverFor(h, at), p2.ResolverFor(h, at)
		if r1 != r2 {
			t.Fatalf("churn disagreed at %v: %d vs %d", at, r1, r2)
		}
		if r1 == h {
			t.Fatalf("rate-1 churn left identity unchanged at %v", at)
		}
		if topo.Host(r1) == nil {
			t.Fatalf("churned to unknown host %d", r1)
		}
		seen[r1] = true
	}
	if len(seen) < 2 {
		t.Fatalf("8 churn periods produced %d identities, want >= 2", len(seen))
	}
	if p1.Activations()[LDNSChurn] == 0 {
		t.Fatal("churn fault never fired")
	}
}

func TestMapEpochFreezePinsEpoch(t *testing.T) {
	topo := testTopo(t)
	const epochLen = 30 * time.Second
	start := 20 * time.Minute
	plane, err := New(topo, Scenario{Seed: 8, Faults: []Fault{
		{Kind: CDNFreeze, Start: Duration(start), Stop: Duration(start + 10*time.Minute)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Clients()[0]
	wantEpoch := uint64(start / epochLen)

	// Before the window: identity transform.
	e, es := plane.MapEpoch(h, 10*time.Minute, epochLen, uint64(10*time.Minute/epochLen))
	if e != uint64(10*time.Minute/epochLen) || es != time.Duration(e)*epochLen {
		t.Fatalf("pre-window transform changed the epoch: %d/%v", e, es)
	}
	// Inside: pinned to the epoch containing start, at every instant.
	for off := time.Duration(0); off < 10*time.Minute; off += 97 * time.Second {
		at := start + off
		e, es := plane.MapEpoch(h, at, epochLen, uint64(at/epochLen))
		if e != wantEpoch {
			t.Fatalf("epoch at %v = %d, want frozen %d", at, e, wantEpoch)
		}
		if es != time.Duration(wantEpoch)*epochLen {
			t.Fatalf("epoch start at %v = %v, want %v", at, es, time.Duration(wantEpoch)*epochLen)
		}
	}
	if plane.Activations()[CDNFreeze] == 0 {
		t.Fatal("freeze fault never fired")
	}
}

func TestMapEpochFlapRehashesPerPeriod(t *testing.T) {
	topo := testTopo(t)
	const epochLen = 30 * time.Second
	plane, err := New(topo, Scenario{Seed: 4, Faults: []Fault{
		{Kind: CDNFlap, Period: Duration(5 * time.Minute), Start: 0, Stop: Duration(time.Hour)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Clients()[0]
	e1, _ := plane.MapEpoch(h, time.Minute, epochLen, uint64(time.Minute/epochLen))
	e1b, _ := plane.MapEpoch(h, 2*time.Minute, epochLen, uint64(2*time.Minute/epochLen))
	e2, _ := plane.MapEpoch(h, 6*time.Minute, epochLen, uint64(6*time.Minute/epochLen))
	if e1 != e1b {
		t.Fatalf("flap identity changed within one period: %d vs %d", e1, e1b)
	}
	if e1 == e2 {
		t.Fatalf("flap identity did not change across periods: %d", e1)
	}
	if e1 == uint64(time.Minute/epochLen) {
		t.Fatal("flap returned the natural epoch unchanged")
	}
}

func TestActivationCountersReachRegistry(t *testing.T) {
	topo := testTopo(t)
	reg := obs.NewRegistry()
	plane, err := New(topo, Scenario{Seed: 6, Faults: []Fault{
		{Kind: Congestion, ExtraMs: 10},
	}}, WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	plane.ExtraRTTMs(topo.Clients()[0], time.Minute)
	snap := reg.Snapshot()
	if snap.Counters["faults.activations.congestion"] == 0 {
		t.Fatalf("registry counter not incremented: %+v", snap.Counters)
	}
}
