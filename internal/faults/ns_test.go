package faults

import (
	"testing"
	"time"
)

// TestMapHookForCDNScope: a cdn-freeze scoped to one namespace applies
// through that namespace's hook only — the sibling's hook and the legacy
// single-CDN MapEpoch both see an identity transform — while an unscoped
// fault applies everywhere.
func TestMapHookForCDNScope(t *testing.T) {
	topo := testTopo(t)
	const epochLen = 30 * time.Second
	start := 20 * time.Minute
	plane, err := New(topo, Scenario{Seed: 8, Faults: []Fault{
		{Kind: CDNFreeze, CDN: "cdnA", Start: Duration(start), Stop: Duration(start + 10*time.Minute)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Clients()[0]
	at := start + 3*time.Minute
	natural := uint64(at / epochLen)
	frozen := uint64(start / epochLen)

	if e, _ := plane.MapHookFor("cdnA")(h, at, epochLen, natural); e != frozen {
		t.Fatalf("cdnA hook epoch = %d, want frozen %d", e, frozen)
	}
	if e, es := plane.MapHookFor("cdnB")(h, at, epochLen, natural); e != natural || es != time.Duration(natural)*epochLen {
		t.Fatalf("cdnB hook perturbed by cdnA's fault: %d/%v", e, es)
	}
	if e, _ := plane.MapEpoch(h, at, epochLen, natural); e != natural {
		t.Fatalf("legacy MapEpoch perturbed by a CDN-scoped fault: %d", e)
	}

	// Unscoped: the fault is fleet-wide and reaches every hook.
	wide, err := New(topo, Scenario{Seed: 8, Faults: []Fault{
		{Kind: CDNFreeze, Start: Duration(start), Stop: Duration(start + 10*time.Minute)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, hook := range []func(h2 time.Duration) uint64{
		func(time.Duration) uint64 { e, _ := wide.MapHookFor("cdnA")(h, at, epochLen, natural); return e },
		func(time.Duration) uint64 { e, _ := wide.MapHookFor("cdnB")(h, at, epochLen, natural); return e },
		func(time.Duration) uint64 { e, _ := wide.MapEpoch(h, at, epochLen, natural); return e },
	} {
		if e := hook(at); e != frozen {
			t.Fatalf("fleet-wide freeze missed a hook: epoch %d, want %d", e, frozen)
		}
	}
}

// TestMapHookForCDNFlapScope mirrors the freeze test for the flap kind: the
// scoped namespace rehashes its epoch identity, the sibling keeps the
// natural one.
func TestMapHookForCDNFlapScope(t *testing.T) {
	topo := testTopo(t)
	const epochLen = 30 * time.Second
	plane, err := New(topo, Scenario{Seed: 4, Faults: []Fault{
		{Kind: CDNFlap, CDN: "cdnB", Period: Duration(5 * time.Minute), Start: 0, Stop: Duration(time.Hour)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Clients()[0]
	at := time.Minute
	natural := uint64(at / epochLen)
	if e, _ := plane.MapHookFor("cdnB")(h, at, epochLen, natural); e == natural {
		t.Fatal("scoped flap did not rehash cdnB's epoch")
	}
	if e, _ := plane.MapHookFor("cdnA")(h, at, epochLen, natural); e != natural {
		t.Fatalf("cdnA hook perturbed by cdnB's flap: %d", e)
	}
	if e, _ := plane.MapEpoch(h, at, epochLen, natural); e != natural {
		t.Fatalf("legacy MapEpoch perturbed by a CDN-scoped flap: %d", e)
	}
}

// TestScenarioRejectsCDNScopeOnOtherKinds: the CDN field only means
// something on the mapping-hook kinds; anywhere else it is a config error.
func TestScenarioRejectsCDNScopeOnOtherKinds(t *testing.T) {
	topo := testTopo(t)
	for _, f := range []Fault{
		{Kind: ProbeLoss, CDN: "cdnA", Rate: 0.5},
		{Kind: LDNSChurn, CDN: "cdnA", Rate: 0.5},
		{Kind: Congestion, CDN: "cdnA", ExtraMs: 10},
	} {
		if _, err := New(topo, Scenario{Seed: 1, Faults: []Fault{f}}); err == nil {
			t.Errorf("%s with a CDN scope accepted", f.Kind)
		}
	}
}
