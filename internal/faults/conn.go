package faults

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// WrapPacketConn interposes the plane's packet-level faults on a
// net.PacketConn. The label names this path in fault Target fields ("dns",
// "crpd", ...). Faults applied:
//
//   - pkt-loss: received datagrams are dropped before delivery (wrapping
//     both ends of a path loses traffic in both directions);
//   - pkt-reorder: a received datagram is held back and swapped with its
//     successor;
//   - pkt-dup: a sent datagram is written twice;
//   - pkt-delay: a send sleeps ExtraMs (hash-jittered ±50%) first.
//
// Decisions are deterministic in (scenario seed, label, direction, packet
// index), so a single-writer/single-reader exchange replays identically.
// The wrapper is safe for concurrent use to the same degree as the
// underlying conn; Close, deadlines and addresses pass straight through.
func (p *Plane) WrapPacketConn(pc net.PacketConn, label string) net.PacketConn {
	return &faultyPacketConn{PacketConn: pc, plane: p, label: label}
}

type faultyPacketConn struct {
	net.PacketConn
	plane *Plane
	label string

	rx atomic.Uint64 // received-packet index
	tx atomic.Uint64 // sent-packet index

	mu        sync.Mutex
	held      []byte   // reordered packet awaiting delivery
	heldFrom  net.Addr //
	heldReady bool     // true once a successor has been delivered
}

// ReadFrom applies loss and reordering to the receive path.
func (c *faultyPacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	for {
		// A held-back packet whose successor has already been delivered is
		// released before touching the socket.
		c.mu.Lock()
		if c.held != nil && c.heldReady {
			n := copy(b, c.held)
			from := c.heldFrom
			c.held, c.heldFrom, c.heldReady = nil, nil, false
			c.mu.Unlock()
			return n, from, nil
		}
		c.mu.Unlock()

		n, from, err := c.PacketConn.ReadFrom(b)
		if err != nil {
			return n, from, err
		}
		idx := c.rx.Add(1)
		if hit, _ := c.plane.pktDecide(PacketLoss, c.label, "rx", idx); hit {
			continue // dropped
		}
		if hit, _ := c.plane.pktDecide(PacketReorder, c.label, "rx", idx); hit {
			c.mu.Lock()
			if c.held == nil {
				// Hold this packet back; it is released after the next
				// delivered packet, swapping the pair.
				c.held = append([]byte(nil), b[:n]...)
				c.heldFrom = from
				c.heldReady = false
				c.mu.Unlock()
				continue
			}
			c.mu.Unlock()
		}
		c.mu.Lock()
		if c.held != nil {
			c.heldReady = true
		}
		c.mu.Unlock()
		return n, from, nil
	}
}

// WriteTo applies delay and duplication to the send path.
func (c *faultyPacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	idx := c.tx.Add(1)
	if d := c.plane.delayFor(c.label, idx); d > 0 {
		time.Sleep(d)
	}
	n, err := c.PacketConn.WriteTo(b, addr)
	if err != nil {
		return n, err
	}
	if hit, _ := c.plane.pktDecide(PacketDup, c.label, "tx", idx); hit {
		_, _ = c.PacketConn.WriteTo(b, addr)
	}
	return n, err
}
