// Package obs is a dependency-free observability layer: atomic counters,
// gauges and fixed-bucket latency histograms collected in a Registry whose
// Snapshot is a plain JSON-marshalable value. It exists so the hot paths —
// crpd request handling, crp.Service queries, the DNS front end and the CDN
// mapping system — can be measured under production-style concurrent load
// without pulling in a metrics dependency or perturbing the measured code
// (every instrument is a single atomic op on the fast path).
//
// All instrument methods are safe on a nil receiver (they no-op), so code
// can hold instrument pointers unconditionally and run uninstrumented when
// no registry is wired up.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (e.g., requests in flight).
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram. Bucket i counts observations v with
// bounds[i-1] < v <= bounds[i]; one implicit overflow bucket counts values
// above the last bound. Observations are lock-free (one atomic add per
// bucket plus a CAS loop for the running sum).
type Histogram struct {
	bounds []float64       // ascending upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is overflow
	sum    atomic.Uint64   // math.Float64bits of the running sum
}

// LatencyBuckets are the default upper bounds (in seconds) for request
// latency histograms: ~50µs to 2.5s, roughly exponential. The range covers
// both the sub-millisecond cheap ops and multi-hundred-millisecond SMF
// clustering requests crpd serves.
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// newHistogram builds a histogram over a defensive copy of bounds, which
// must be ascending and non-empty.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v; values above every bound land in the overflow slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records an elapsed time in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot captures the histogram's current state. Count always equals the
// sum of Counts (it is derived at capture time), so a snapshot taken during
// concurrent Observes is internally consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Bounds are the ascending bucket upper bounds; Counts has one extra
	// trailing element for observations above the last bound.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the average observed value, or 0 with no observations.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding the target rank. Values in the overflow bucket
// are attributed to the last finite bound, so tail quantiles are a lower
// bound when observations exceeded the histogram's range.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry is a named collection of instruments. Lookups get-or-create, so
// packages can grab their instruments at init time in any order; the zero
// name rules are "first registration wins" (a histogram re-registered with
// different bounds keeps the original bounds).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Library packages (crp,
// dnsserver, cdn) register their instruments here, mirroring expvar's
// model, so one snapshot shows the whole stack.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (nil bounds = LatencyBuckets). A nil registry
// returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// shaped for JSON export.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument. Individual instruments are captured
// atomically (histograms are internally consistent); the set as a whole is
// a best-effort cut across concurrently moving values, which is the usual
// contract for scrape-style metric export.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for n, c := range counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// SummarizeGaugeFamily collapses a numbered gauge family — every gauge named
// prefix + digits + suffix — into summary gauges named out + ".count",
// ".sum", ".min", ".mean", ".max" and ".p99" (nearest-rank), removing the
// family members from the snapshot. It exists for wire export: a snapshot
// carrying one gauge per store shard (up to 1024 since the store widened)
// can exceed a UDP reply's size budget, while the summary is six fields
// regardless of shard count. The in-process registry keeps full detail; only
// the exported copy is collapsed. No-op when no family member matches.
func (s *Snapshot) SummarizeGaugeFamily(prefix, suffix, out string) {
	var values []int64
	for name, v := range s.Gauges {
		if len(name) <= len(prefix)+len(suffix) ||
			name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
			continue
		}
		mid := name[len(prefix) : len(name)-len(suffix)]
		digits := len(mid) > 0
		for i := 0; i < len(mid); i++ {
			if mid[i] < '0' || mid[i] > '9' {
				digits = false
				break
			}
		}
		if !digits {
			continue
		}
		values = append(values, v)
		delete(s.Gauges, name)
	}
	if len(values) == 0 {
		return
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	sum := int64(0)
	for _, v := range values {
		sum += v
	}
	rank := (99*len(values) + 99) / 100 // nearest-rank p99, 1-based
	if rank > len(values) {
		rank = len(values)
	}
	s.Gauges[out+".count"] = int64(len(values))
	s.Gauges[out+".sum"] = sum
	s.Gauges[out+".min"] = values[0]
	s.Gauges[out+".mean"] = int64(math.Round(float64(sum) / float64(len(values))))
	s.Gauges[out+".max"] = values[len(values)-1]
	s.Gauges[out+".p99"] = values[rank-1]
}
