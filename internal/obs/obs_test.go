package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Error("Counter lookup did not return the registered instance")
	}

	g := r.Gauge("inflight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Errorf("gauge = %d, want -7", got)
	}
}

func TestNilInstrumentsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	c.Inc()
	g.Inc()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil instruments must no-op")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	// Upper bounds are inclusive: 1 lands in bucket 0, 1.5 in bucket 1,
	// values above every bound land in the overflow slot.
	for _, v := range []float64{0.5, 1.0, 1.5, 10.0, 99.9, 100.0, 1000.0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if wantSum := 0.5 + 1 + 1.5 + 10 + 99.9 + 100 + 1000; math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	// 100 uniform observations in (0, 40]: quantiles should interpolate.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.5, 20, 1.0},
		{0.25, 10, 1.0},
		{0.99, 39.6, 1.0},
		{1.0, 40, 0.01},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("q%.2f = %v, want %v ± %v", tc.q, got, tc.want, tc.tol)
		}
	}

	// Overflow observations clamp to the last finite bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(50)
	if got := h2.Snapshot().Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want clamp to 1", got)
	}

	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil) // default latency buckets
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
	if math.Abs(s.Sum-0.003) > 1e-12 {
		t.Errorf("sum = %v, want 0.003", s.Sum)
	}
}

// TestHistogramSnapshotConsistency takes snapshots while observers hammer
// the histogram and checks every snapshot is internally consistent (Count
// equals the bucket sum by construction, totals only move forward).
func TestHistogramSnapshotConsistency(t *testing.T) {
	h := newHistogram([]float64{0.25, 0.5, 0.75})
	const (
		writers = 4
		perW    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}

	var prev uint64
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		var sum uint64
		for _, c := range s.Counts {
			sum += c
		}
		if s.Count != sum {
			t.Fatalf("snapshot %d: Count %d != bucket sum %d", i, s.Count, sum)
		}
		if s.Count < prev {
			t.Fatalf("snapshot %d: count went backwards (%d -> %d)", i, prev, s.Count)
		}
		prev = s.Count
	}
	wg.Wait()

	final := h.Snapshot()
	if want := uint64(writers * perW); final.Count != want {
		t.Errorf("final count = %d, want %d", final.Count, want)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(2)
	r.Histogram("c", []float64{1, 2}).Observe(1.5)

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 3 || back.Gauges["b"] != 2 {
		t.Errorf("round trip lost values: %+v", back)
	}
	hs := back.Histograms["c"]
	if hs.Count != 1 || len(hs.Counts) != 3 {
		t.Errorf("histogram round trip: %+v", hs)
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h", nil).Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Errorf("shared counter = %d, want 1600", got)
	}
	if got := r.Histogram("h", nil).Snapshot().Count; got != 1600 {
		t.Errorf("histogram count = %d, want 1600", got)
	}
}

func TestHistogramFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("h", []float64{1, 2, 3})
	h2 := r.Histogram("h", []float64{99})
	if h1 != h2 {
		t.Fatal("re-registration returned a different histogram")
	}
	if got := len(h1.Snapshot().Bounds); got != 3 {
		t.Errorf("bounds len = %d, want original 3", got)
	}
}

func TestSummarizeGaugeFamily(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 100; i++ {
		r.Gauge(fmt.Sprintf("fam.%03d.nodes", i)).Set(int64(i + 1)) // 1..100
	}
	r.Gauge("fam.total.nodes").Set(999) // middle not all digits: untouched
	r.Gauge("fams").Set(777)            // different name shape: untouched
	s := r.Snapshot()
	s.SummarizeGaugeFamily("fam.", ".nodes", "fam.nodes")

	want := map[string]int64{
		"fam.nodes.count": 100,
		"fam.nodes.sum":   5050,
		"fam.nodes.min":   1,
		"fam.nodes.mean":  51, // round(50.5)
		"fam.nodes.max":   100,
		"fam.nodes.p99":   99, // nearest-rank over 1..100
	}
	for name, v := range want {
		if got := s.Gauges[name]; got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
	for name := range s.Gauges {
		if len(name) > 4 && name[:4] == "fam." && name != "fam.total.nodes" &&
			name[:10] != "fam.nodes." {
			t.Errorf("family member %s not removed", name)
		}
	}
	if s.Gauges["fam.total.nodes"] != 999 || s.Gauges["fams"] != 777 {
		t.Errorf("non-family gauges disturbed: %v", s.Gauges)
	}

	// Summarizing a family with no members is a no-op.
	before := len(s.Gauges)
	s.SummarizeGaugeFamily("absent.", ".x", "absent.x")
	if len(s.Gauges) != before {
		t.Errorf("no-op summarize changed the snapshot")
	}
}
