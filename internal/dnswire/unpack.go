package dnswire

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// unpacker walks a wire-format message.
type unpacker struct {
	buf []byte
	off int
}

var errShortMessage = fmt.Errorf("dnswire: message truncated")

func (u *unpacker) uint8() (uint8, error) {
	if u.off+1 > len(u.buf) {
		return 0, errShortMessage
	}
	v := u.buf[u.off]
	u.off++
	return v, nil
}

func (u *unpacker) uint16() (uint16, error) {
	if u.off+2 > len(u.buf) {
		return 0, errShortMessage
	}
	v := binary.BigEndian.Uint16(u.buf[u.off:])
	u.off += 2
	return v, nil
}

func (u *unpacker) uint32() (uint32, error) {
	if u.off+4 > len(u.buf) {
		return 0, errShortMessage
	}
	v := binary.BigEndian.Uint32(u.buf[u.off:])
	u.off += 4
	return v, nil
}

func (u *unpacker) bytes(n int) ([]byte, error) {
	if n < 0 || u.off+n > len(u.buf) {
		return nil, errShortMessage
	}
	b := u.buf[u.off : u.off+n]
	u.off += n
	return b, nil
}

// name decodes a possibly-compressed domain name starting at the current
// offset. Compression pointers must point strictly backward, which both
// matches real-world encoders and bounds the walk.
func (u *unpacker) name() (string, error) {
	var sb strings.Builder
	off := u.off
	jumped := false
	maxPtr := u.off // pointers must target earlier offsets than this
	for {
		if off >= len(u.buf) {
			return "", errShortMessage
		}
		c := u.buf[off]
		switch {
		case c == 0:
			if !jumped {
				u.off = off + 1
			}
			if sb.Len() == 0 {
				return ".", nil
			}
			return sb.String(), nil
		case c&0xC0 == 0xC0:
			if off+2 > len(u.buf) {
				return "", errShortMessage
			}
			ptr := int(binary.BigEndian.Uint16(u.buf[off:]) & 0x3FFF)
			if ptr >= maxPtr {
				return "", fmt.Errorf("dnswire: compression pointer at %d does not point backward", off)
			}
			if !jumped {
				u.off = off + 2
				jumped = true
			}
			maxPtr = ptr
			off = ptr
		case c&0xC0 != 0:
			return "", fmt.Errorf("dnswire: reserved label type 0x%02x", c&0xC0)
		default:
			if off+1+int(c) > len(u.buf) {
				return "", errShortMessage
			}
			// A literal '.' inside a label cannot be represented in the
			// dotted string form this package uses, so such names are
			// rejected rather than decoded into something that cannot be
			// re-encoded.
			for _, b := range u.buf[off+1 : off+1+int(c)] {
				if b == '.' {
					return "", fmt.Errorf("dnswire: label contains a literal dot")
				}
			}
			sb.Write(u.buf[off+1 : off+1+int(c)])
			sb.WriteByte('.')
			if sb.Len() > maxNameLen {
				return "", fmt.Errorf("dnswire: decoded name exceeds %d bytes", maxNameLen)
			}
			off += 1 + int(c)
		}
	}
}

// Unpack decodes a wire-format DNS message.
func Unpack(data []byte) (*Message, error) {
	u := &unpacker{buf: data}
	m := &Message{}

	id, err := u.uint16()
	if err != nil {
		return nil, err
	}
	flags, err := u.uint16()
	if err != nil {
		return nil, err
	}
	m.ID = id
	m.Response = flags&(1<<15) != 0
	m.OpCode = OpCode(flags >> 11 & 0xF)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0xF)

	var counts [4]uint16
	for i := range counts {
		if counts[i], err = u.uint16(); err != nil {
			return nil, err
		}
	}

	for i := 0; i < int(counts[0]); i++ {
		q, err := u.question()
		if err != nil {
			return nil, fmt.Errorf("question %d: %w", i, err)
		}
		m.Questions = append(m.Questions, q)
	}
	sections := []*[]Record{&m.Answers, &m.Authority, &m.Additional}
	for s, dst := range sections {
		for i := 0; i < int(counts[s+1]); i++ {
			r, err := u.record()
			if err != nil {
				return nil, fmt.Errorf("section %d record %d: %w", s+1, i, err)
			}
			*dst = append(*dst, r)
		}
	}
	if u.off != len(data) {
		return nil, fmt.Errorf("dnswire: %d trailing bytes", len(data)-u.off)
	}
	return m, nil
}

func (u *unpacker) question() (Question, error) {
	name, err := u.name()
	if err != nil {
		return Question{}, err
	}
	typ, err := u.uint16()
	if err != nil {
		return Question{}, err
	}
	class, err := u.uint16()
	if err != nil {
		return Question{}, err
	}
	return Question{Name: name, Type: Type(typ), Class: Class(class)}, nil
}

func (u *unpacker) record() (Record, error) {
	name, err := u.name()
	if err != nil {
		return Record{}, err
	}
	typ, err := u.uint16()
	if err != nil {
		return Record{}, err
	}
	class, err := u.uint16()
	if err != nil {
		return Record{}, err
	}
	ttl, err := u.uint32()
	if err != nil {
		return Record{}, err
	}
	rdlen, err := u.uint16()
	if err != nil {
		return Record{}, err
	}
	end := u.off + int(rdlen)
	if end > len(u.buf) {
		return Record{}, errShortMessage
	}
	data, err := u.rdata(Type(typ), int(rdlen))
	if err != nil {
		return Record{}, err
	}
	if u.off != end {
		return Record{}, fmt.Errorf("dnswire: RDATA length mismatch for %s record", Type(typ))
	}
	return Record{Name: name, Type: Type(typ), Class: Class(class), TTL: ttl, Data: data}, nil
}

func (u *unpacker) rdata(typ Type, rdlen int) (RData, error) {
	switch typ {
	case TypeA:
		b, err := u.bytes(4)
		if err != nil {
			return nil, err
		}
		return &ARecord{Addr: netip.AddrFrom4([4]byte(b))}, nil
	case TypeNS:
		host, err := u.name()
		if err != nil {
			return nil, err
		}
		return &NSRecord{Host: host}, nil
	case TypeCNAME:
		target, err := u.name()
		if err != nil {
			return nil, err
		}
		return &CNAMERecord{Target: target}, nil
	case TypeTXT:
		if rdlen == 0 {
			// RFC 1035: TXT RDATA is "one or more" character strings.
			return nil, fmt.Errorf("dnswire: empty TXT record")
		}
		end := u.off + rdlen
		var strs []string
		for u.off < end {
			n, err := u.uint8()
			if err != nil {
				return nil, err
			}
			b, err := u.bytes(int(n))
			if err != nil {
				return nil, err
			}
			strs = append(strs, string(b))
		}
		return &TXTRecord{Strings: strs}, nil
	case TypeAAAA:
		b, err := u.bytes(16)
		if err != nil {
			return nil, err
		}
		return &AAAARecord{Addr: netip.AddrFrom16([16]byte(b))}, nil
	case TypePTR:
		target, err := u.name()
		if err != nil {
			return nil, err
		}
		return &PTRRecord{Target: target}, nil
	case TypeOPT:
		// Options are skipped; only the payload size (in CLASS) matters.
		if _, err := u.bytes(rdlen); err != nil {
			return nil, err
		}
		return &OPTRecord{}, nil
	case TypeSOA:
		soa := &SOARecord{}
		var err error
		if soa.MName, err = u.name(); err != nil {
			return nil, err
		}
		if soa.RName, err = u.name(); err != nil {
			return nil, err
		}
		fields := []*uint32{&soa.Serial, &soa.Refresh, &soa.Retry, &soa.Expire, &soa.Minimum}
		for _, f := range fields {
			if *f, err = u.uint32(); err != nil {
				return nil, err
			}
		}
		return soa, nil
	default:
		return nil, fmt.Errorf("dnswire: unsupported RR type %s", typ)
	}
}
