// Package dnswire implements the subset of the RFC 1035 DNS wire format the
// CRP system needs: queries and responses carrying A, NS, CNAME, TXT and SOA
// records, with full name-compression support on both encode and decode.
// CRP's deployment interface is ordinary DNS — clients learn their CDN
// redirections by resolving CDN-accelerated names — so the simulated CDN is
// served over this codec by internal/dnsserver.
package dnswire

import (
	"fmt"
	"net/netip"
	"strings"
)

// Type is a DNS RR type.
type Type uint16

// Supported RR types.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeTXT   Type = 16
)

func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypePTR:
		return "PTR"
	case TypeOPT:
		return "OPT"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS RR class.
type Class uint16

// ClassIN is the Internet class, the only one in use.
const ClassIN Class = 1

func (c Class) String() string {
	if c == ClassIN {
		return "IN"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// OpCode is a DNS operation code.
type OpCode uint8

// OpQuery is a standard query.
const OpQuery OpCode = 0

// RCode is a DNS response code.
type RCode uint8

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
)

func (r RCode) String() string {
	switch r {
	case RCodeNoError:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImp:
		return "NOTIMP"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// Header is the fixed 12-byte DNS message header, with the counts implied by
// the Message's section slices.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode
}

// Question is a DNS question-section entry.
type Question struct {
	Name  string // fully-qualified, trailing dot
	Type  Type
	Class Class
}

func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// Record is a DNS resource record.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32
	Data  RData
}

func (r Record) String() string {
	return fmt.Sprintf("%s %d %s %s %s", r.Name, r.TTL, r.Class, r.Type, r.Data)
}

// RData is the typed payload of a resource record.
type RData interface {
	fmt.Stringer
	// recordType returns the RR type this payload belongs to.
	recordType() Type
	// pack appends the wire encoding of the payload to p, possibly using
	// name compression against p's offset table.
	pack(p *packer) error
}

// ARecord is an IPv4 address record payload.
type ARecord struct {
	Addr netip.Addr
}

func (a *ARecord) recordType() Type { return TypeA }
func (a *ARecord) String() string   { return a.Addr.String() }

// NSRecord is a name-server record payload.
type NSRecord struct {
	Host string
}

func (n *NSRecord) recordType() Type { return TypeNS }
func (n *NSRecord) String() string   { return n.Host }

// CNAMERecord is a canonical-name record payload.
type CNAMERecord struct {
	Target string
}

func (c *CNAMERecord) recordType() Type { return TypeCNAME }
func (c *CNAMERecord) String() string   { return c.Target }

// TXTRecord is a text record payload.
type TXTRecord struct {
	Strings []string
}

func (t *TXTRecord) recordType() Type { return TypeTXT }
func (t *TXTRecord) String() string {
	quoted := make([]string, len(t.Strings))
	for i, s := range t.Strings {
		quoted[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(quoted, " ")
}

// SOARecord is a start-of-authority record payload.
type SOARecord struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

func (s *SOARecord) recordType() Type { return TypeSOA }
func (s *SOARecord) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		s.MName, s.RName, s.Serial, s.Refresh, s.Retry, s.Expire, s.Minimum)
}

// Message is a complete DNS message.
type Message struct {
	Header
	Questions  []Question
	Answers    []Record
	Authority  []Record
	Additional []Record
}

// MaxUDPPayload is the classic DNS-over-UDP payload limit.
const MaxUDPPayload = 512

// maxNameLen and maxLabelLen are the RFC 1035 limits.
const (
	maxNameLen  = 255
	maxLabelLen = 63
)

// splitName validates name (which must be fully qualified, ending in a dot)
// and splits it into labels, excluding the trailing empty root label.
func splitName(name string) ([]string, error) {
	if name == "" {
		return nil, fmt.Errorf("dnswire: empty name")
	}
	if !strings.HasSuffix(name, ".") {
		return nil, fmt.Errorf("dnswire: name %q is not fully qualified", name)
	}
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("dnswire: name %q exceeds %d bytes", name, maxNameLen)
	}
	if name == "." {
		return nil, nil
	}
	labels := strings.Split(name[:len(name)-1], ".")
	for _, l := range labels {
		if l == "" {
			return nil, fmt.Errorf("dnswire: name %q contains an empty label", name)
		}
		if len(l) > maxLabelLen {
			return nil, fmt.Errorf("dnswire: label %q exceeds %d bytes", l, maxLabelLen)
		}
	}
	return labels, nil
}

// EqualNames reports whether two fully-qualified names are equal under DNS's
// case-insensitivity rules, which fold ASCII letters only (RFC 4343) —
// arbitrary non-ASCII label bytes compare exactly.
func EqualNames(a, b string) bool {
	return asciiLower(a) == asciiLower(b)
}

// asciiLower lowercases ASCII letters and leaves every other byte intact.
// Unlike strings.ToLower it never rewrites invalid UTF-8 sequences, so
// distinct label bytes can never be conflated.
func asciiLower(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
