package dnswire

import (
	"fmt"
	"net/netip"
)

// Additional RR types beyond the core set: AAAA and PTR payloads, and the
// EDNS0 OPT pseudo-record (RFC 6891) that negotiates larger UDP payloads —
// without it every response over 512 bytes must truncate and force a TCP
// retry.

// Extended RR types.
const (
	TypeAAAA Type = 28
	TypeOPT  Type = 41
	TypePTR  Type = 12
)

// AAAARecord is an IPv6 address record payload.
type AAAARecord struct {
	Addr netip.Addr
}

func (a *AAAARecord) recordType() Type { return TypeAAAA }
func (a *AAAARecord) String() string   { return a.Addr.String() }

func (a *AAAARecord) pack(p *packer) error {
	if !a.Addr.Is6() || a.Addr.Is4In6() {
		return fmt.Errorf("dnswire: AAAA record address %v is not IPv6", a.Addr)
	}
	b := a.Addr.As16()
	p.bytes(b[:])
	return nil
}

// PTRRecord is a pointer record payload (reverse lookups).
type PTRRecord struct {
	Target string
}

func (r *PTRRecord) recordType() Type { return TypePTR }
func (r *PTRRecord) String() string   { return r.Target }
func (r *PTRRecord) pack(p *packer) error {
	return p.name(r.Target)
}

// OPTRecord is the EDNS0 pseudo-record. Only the UDP payload size is
// modelled (it rides in the record's CLASS field on the wire); options are
// not supported and unpack to an empty record.
type OPTRecord struct{}

func (o *OPTRecord) recordType() Type     { return TypeOPT }
func (o *OPTRecord) String() string       { return "OPT" }
func (o *OPTRecord) pack(p *packer) error { return nil }

// SetEDNS0 adds (or replaces) the OPT pseudo-record advertising the given
// maximum UDP payload size.
func (m *Message) SetEDNS0(udpSize uint16) {
	for i, r := range m.Additional {
		if r.Type == TypeOPT {
			m.Additional[i].Class = Class(udpSize)
			return
		}
	}
	m.Additional = append(m.Additional, Record{
		Name:  ".",
		Type:  TypeOPT,
		Class: Class(udpSize),
		Data:  &OPTRecord{},
	})
}

// EDNS0UDPSize returns the UDP payload size advertised by the message's OPT
// record, or (0, false) if the message carries none. Sizes below the classic
// 512-byte limit are rounded up to it, per RFC 6891.
func (m *Message) EDNS0UDPSize() (int, bool) {
	for _, r := range m.Additional {
		if r.Type == TypeOPT {
			size := int(r.Class)
			if size < MaxUDPPayload {
				size = MaxUDPPayload
			}
			return size, true
		}
	}
	return 0, false
}
