package dnswire

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleMessage() *Message {
	return &Message{
		Header: Header{
			ID:                 0x1234,
			Response:           true,
			Authoritative:      true,
			RecursionDesired:   true,
			RecursionAvailable: true,
			RCode:              RCodeNoError,
		},
		Questions: []Question{
			{Name: "img.yahoo.cdn.sim.", Type: TypeA, Class: ClassIN},
		},
		Answers: []Record{
			{
				Name: "img.yahoo.cdn.sim.", Type: TypeCNAME, Class: ClassIN, TTL: 20,
				Data: &CNAMERecord{Target: "g.cdn.sim."},
			},
			{
				Name: "g.cdn.sim.", Type: TypeA, Class: ClassIN, TTL: 20,
				Data: &ARecord{Addr: netip.MustParseAddr("10.1.2.3")},
			},
			{
				Name: "g.cdn.sim.", Type: TypeA, Class: ClassIN, TTL: 20,
				Data: &ARecord{Addr: netip.MustParseAddr("10.1.2.4")},
			},
		},
		Authority: []Record{
			{
				Name: "cdn.sim.", Type: TypeNS, Class: ClassIN, TTL: 300,
				Data: &NSRecord{Host: "ns1.cdn.sim."},
			},
		},
		Additional: []Record{
			{
				Name: "ns1.cdn.sim.", Type: TypeA, Class: ClassIN, TTL: 300,
				Data: &ARecord{Addr: netip.MustParseAddr("10.0.0.1")},
			},
		},
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\npacked:   %+v\nunpacked: %+v", m, got)
	}
}

func TestPackUsesCompression(t *testing.T) {
	m := sampleMessage()
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	// "cdn.sim." appears in six names; without compression the message would
	// repeat those 9 bytes each time. Check the packed form contains the
	// literal labels "cdn" at most twice (once in the question, possibly once
	// more via a non-suffix position).
	count := bytes.Count(wire, append([]byte{3}, []byte("cdn")...))
	if count > 1 {
		t.Errorf("label \"cdn\" encoded %d times; compression not applied", count)
	}
	// And a compressed message must round-trip.
	if _, err := Unpack(wire); err != nil {
		t.Fatalf("Unpack compressed: %v", err)
	}
}

func TestRoundTripAllRDataTypes(t *testing.T) {
	records := []Record{
		{Name: "a.example.", Type: TypeA, Class: ClassIN, TTL: 1,
			Data: &ARecord{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: "b.example.", Type: TypeNS, Class: ClassIN, TTL: 2,
			Data: &NSRecord{Host: "ns.b.example."}},
		{Name: "c.example.", Type: TypeCNAME, Class: ClassIN, TTL: 3,
			Data: &CNAMERecord{Target: "target.example."}},
		{Name: "d.example.", Type: TypeTXT, Class: ClassIN, TTL: 4,
			Data: &TXTRecord{Strings: []string{"hello", "world"}}},
		{Name: "e.example.", Type: TypeSOA, Class: ClassIN, TTL: 5,
			Data: &SOARecord{MName: "ns.example.", RName: "admin.example.",
				Serial: 2026070401, Refresh: 7200, Retry: 600, Expire: 86400, Minimum: 60}},
	}
	for _, r := range records {
		t.Run(r.Type.String(), func(t *testing.T) {
			m := &Message{Header: Header{ID: 9, Response: true}, Answers: []Record{r}}
			wire, err := m.Pack()
			if err != nil {
				t.Fatalf("Pack: %v", err)
			}
			got, err := Unpack(wire)
			if err != nil {
				t.Fatalf("Unpack: %v", err)
			}
			if !reflect.DeepEqual(m.Answers, got.Answers) {
				t.Errorf("round trip mismatch:\nin:  %+v\nout: %+v", m.Answers[0], got.Answers[0])
			}
		})
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	f := func(id uint16, resp, aa, tc, rd, ra bool, op, rc uint8) bool {
		m := &Message{Header: Header{
			ID: id, Response: resp, Authoritative: aa, Truncated: tc,
			RecursionDesired: rd, RecursionAvailable: ra,
			OpCode: OpCode(op & 0xF), RCode: RCode(rc & 0xF),
		}}
		wire, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(wire)
		if err != nil {
			return false
		}
		return got.Header == m.Header
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNameValidation(t *testing.T) {
	long := strings.Repeat("a", 64)
	tooLongName := strings.Repeat("abcdefg.", 32) + "com."
	tests := []struct {
		name    string
		qname   string
		wantErr bool
	}{
		{"valid", "example.com.", false},
		{"root", ".", false},
		{"not fqdn", "example.com", true},
		{"empty", "", true},
		{"empty label", "example..com.", true},
		{"long label", long + ".com.", true},
		{"name too long", tooLongName, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := &Message{Questions: []Question{{Name: tt.qname, Type: TypeA, Class: ClassIN}}}
			_, err := m.Pack()
			if (err != nil) != tt.wantErr {
				t.Errorf("Pack with name %q: err = %v, wantErr %v", tt.qname, err, tt.wantErr)
			}
		})
	}
}

func TestPackRejectsTypeMismatch(t *testing.T) {
	m := &Message{Answers: []Record{{
		Name: "x.example.", Type: TypeA, Class: ClassIN,
		Data: &CNAMERecord{Target: "y.example."},
	}}}
	if _, err := m.Pack(); err == nil {
		t.Error("Pack should reject a record whose Type disagrees with its payload")
	}
}

func TestPackRejectsNilData(t *testing.T) {
	m := &Message{Answers: []Record{{Name: "x.example.", Type: TypeA, Class: ClassIN}}}
	if _, err := m.Pack(); err == nil {
		t.Error("Pack should reject a record with nil data")
	}
}

func TestPackRejectsNonIPv4A(t *testing.T) {
	m := &Message{Answers: []Record{{
		Name: "x.example.", Type: TypeA, Class: ClassIN,
		Data: &ARecord{Addr: netip.MustParseAddr("2001:db8::1")},
	}}}
	if _, err := m.Pack(); err == nil {
		t.Error("Pack should reject an IPv6 address in an A record")
	}
}

func TestUnpackTruncated(t *testing.T) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail cleanly, never panic.
	for i := 0; i < len(wire); i++ {
		if _, err := Unpack(wire[:i]); err == nil {
			t.Errorf("Unpack of %d-byte prefix should fail", i)
		}
	}
}

func TestUnpackTrailingGarbage(t *testing.T) {
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unpack(append(wire, 0xDE, 0xAD)); err == nil {
		t.Error("Unpack should reject trailing bytes")
	}
}

func TestUnpackPointerLoop(t *testing.T) {
	// Header: ID 0, flags 0, one question. The question name is a pointer to
	// itself at offset 12.
	wire := []byte{
		0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xC0, 12, // pointer to offset 12 (itself)
		0, 1, 0, 1,
	}
	if _, err := Unpack(wire); err == nil {
		t.Error("Unpack should reject a self-referencing compression pointer")
	}
}

func TestUnpackForwardPointer(t *testing.T) {
	wire := []byte{
		0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xC0, 20, // pointer beyond the current offset
		0, 1, 0, 1,
		1, 'x', 0, 0,
	}
	if _, err := Unpack(wire); err == nil {
		t.Error("Unpack should reject a forward compression pointer")
	}
}

func TestUnpackReservedLabelType(t *testing.T) {
	wire := []byte{
		0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0x80, 1, // reserved label type 0b10
		0, 1, 0, 1,
	}
	if _, err := Unpack(wire); err == nil {
		t.Error("Unpack should reject reserved label types")
	}
}

func TestUnpackFuzzNoPanics(t *testing.T) {
	// Deterministic mutation fuzzing: flip bytes of a valid message and make
	// sure Unpack never panics (errors are fine).
	wire, err := sampleMessage().Pack()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(wire); i++ {
		for _, v := range []byte{0x00, 0xFF, 0xC0, wire[i] ^ 0x55} {
			mut := append([]byte(nil), wire...)
			mut[i] = v
			_, _ = Unpack(mut) // must not panic
		}
	}
}

func TestRecordStringFormats(t *testing.T) {
	r := Record{Name: "g.cdn.sim.", Type: TypeA, Class: ClassIN, TTL: 20,
		Data: &ARecord{Addr: netip.MustParseAddr("10.1.2.3")}}
	if got, want := r.String(), "g.cdn.sim. 20 IN A 10.1.2.3"; got != want {
		t.Errorf("Record.String() = %q, want %q", got, want)
	}
	q := Question{Name: "g.cdn.sim.", Type: TypeA, Class: ClassIN}
	if got, want := q.String(), "g.cdn.sim. IN A"; got != want {
		t.Errorf("Question.String() = %q, want %q", got, want)
	}
	txt := &TXTRecord{Strings: []string{"a b", "c"}}
	if got, want := txt.String(), `"a b" "c"`; got != want {
		t.Errorf("TXT.String() = %q, want %q", got, want)
	}
}

func TestTypeAndRCodeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeCNAME.String() != "CNAME" || Type(99).String() != "TYPE99" {
		t.Error("Type.String misbehaves")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(14).String() != "RCODE14" {
		t.Error("RCode.String misbehaves")
	}
	if ClassIN.String() != "IN" || Class(3).String() != "CLASS3" {
		t.Error("Class.String misbehaves")
	}
}

func TestEqualNames(t *testing.T) {
	if !EqualNames("Example.COM.", "example.com.") {
		t.Error("EqualNames should be case-insensitive")
	}
	if EqualNames("a.example.", "b.example.") {
		t.Error("EqualNames should distinguish different names")
	}
}

func TestCompressionCaseInsensitive(t *testing.T) {
	// Suffixes differing only in case must share compression entries and
	// still round-trip with their original spelling preserved in first use.
	m := &Message{
		Questions: []Question{{Name: "www.Example.COM.", Type: TypeA, Class: ClassIN}},
		Answers: []Record{{
			Name: "www.example.com.", Type: TypeCNAME, Class: ClassIN, TTL: 5,
			Data: &CNAMERecord{Target: "cdn.example.com."},
		}},
	}
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	// The answer name was compressed against the question; its decoded
	// spelling therefore matches the question's original case.
	if !EqualNames(got.Answers[0].Name, "www.example.com.") {
		t.Errorf("answer name = %q", got.Answers[0].Name)
	}
}
