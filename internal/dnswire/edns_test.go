package dnswire

import (
	"net/netip"
	"reflect"
	"testing"
)

func TestRoundTripAAAAAndPTR(t *testing.T) {
	records := []Record{
		{Name: "v6.example.", Type: TypeAAAA, Class: ClassIN, TTL: 30,
			Data: &AAAARecord{Addr: netip.MustParseAddr("2001:db8::42")}},
		{Name: "1.2.3.10.in-addr.arpa.", Type: TypePTR, Class: ClassIN, TTL: 60,
			Data: &PTRRecord{Target: "host.example."}},
	}
	for _, r := range records {
		t.Run(r.Type.String(), func(t *testing.T) {
			m := &Message{Header: Header{ID: 5, Response: true}, Answers: []Record{r}}
			wire, err := m.Pack()
			if err != nil {
				t.Fatalf("Pack: %v", err)
			}
			got, err := Unpack(wire)
			if err != nil {
				t.Fatalf("Unpack: %v", err)
			}
			if !reflect.DeepEqual(m.Answers, got.Answers) {
				t.Errorf("round trip mismatch:\nin:  %+v\nout: %+v", m.Answers[0], got.Answers[0])
			}
		})
	}
}

func TestAAAARejectsIPv4(t *testing.T) {
	m := &Message{Answers: []Record{{
		Name: "x.example.", Type: TypeAAAA, Class: ClassIN,
		Data: &AAAARecord{Addr: netip.MustParseAddr("192.0.2.1")},
	}}}
	if _, err := m.Pack(); err == nil {
		t.Error("Pack should reject an IPv4 address in an AAAA record")
	}
}

func TestSetEDNS0RoundTrip(t *testing.T) {
	m := &Message{
		Questions: []Question{{Name: "example.com.", Type: TypeA, Class: ClassIN}},
	}
	m.SetEDNS0(4096)
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	size, ok := got.EDNS0UDPSize()
	if !ok || size != 4096 {
		t.Errorf("EDNS0UDPSize = %d,%v; want 4096,true", size, ok)
	}
}

func TestSetEDNS0Replaces(t *testing.T) {
	m := &Message{}
	m.SetEDNS0(1232)
	m.SetEDNS0(4096)
	if len(m.Additional) != 1 {
		t.Fatalf("SetEDNS0 twice left %d additional records", len(m.Additional))
	}
	if size, _ := m.EDNS0UDPSize(); size != 4096 {
		t.Errorf("size = %d, want 4096", size)
	}
}

func TestEDNS0SizeFloor(t *testing.T) {
	m := &Message{}
	m.SetEDNS0(100) // below the classic limit
	size, ok := m.EDNS0UDPSize()
	if !ok || size != MaxUDPPayload {
		t.Errorf("EDNS0UDPSize = %d,%v; want floor of %d", size, ok, MaxUDPPayload)
	}
}

func TestEDNS0Absent(t *testing.T) {
	m := &Message{}
	if _, ok := m.EDNS0UDPSize(); ok {
		t.Error("message without OPT reported an EDNS0 size")
	}
}

func TestExtendedTypeStrings(t *testing.T) {
	if TypeAAAA.String() != "AAAA" || TypePTR.String() != "PTR" || TypeOPT.String() != "OPT" {
		t.Error("extended Type.String misbehaves")
	}
}
