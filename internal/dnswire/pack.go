package dnswire

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// packer accumulates a wire-format message and tracks name offsets for
// compression.
type packer struct {
	buf []byte
	// offsets maps a lowercase fully-qualified name suffix to the buffer
	// offset where it was first written, for compression pointers.
	offsets map[string]int
}

func newPacker() *packer {
	return &packer{
		buf:     make([]byte, 0, 512),
		offsets: make(map[string]int),
	}
}

func (p *packer) uint8(v uint8)   { p.buf = append(p.buf, v) }
func (p *packer) uint16(v uint16) { p.buf = binary.BigEndian.AppendUint16(p.buf, v) }
func (p *packer) uint32(v uint32) { p.buf = binary.BigEndian.AppendUint32(p.buf, v) }
func (p *packer) bytes(b []byte)  { p.buf = append(p.buf, b...) }

// name appends a possibly-compressed domain name. For each suffix of the
// name already present in the message, a 2-byte pointer is emitted instead
// of the remaining labels.
func (p *packer) name(name string) error {
	labels, err := splitName(name)
	if err != nil {
		return err
	}
	for i := range labels {
		suffix := asciiLower(strings.Join(labels[i:], ".")) + "."
		if off, ok := p.offsets[suffix]; ok {
			p.uint16(0xC000 | uint16(off))
			return nil
		}
		// Record this suffix's position if it can be addressed by a
		// 14-bit pointer.
		if len(p.buf) < 0x4000 {
			p.offsets[suffix] = len(p.buf)
		}
		p.uint8(uint8(len(labels[i])))
		p.bytes([]byte(labels[i]))
	}
	p.uint8(0) // root label
	return nil
}

func (a *ARecord) pack(p *packer) error {
	if !a.Addr.Is4() {
		return fmt.Errorf("dnswire: A record address %v is not IPv4", a.Addr)
	}
	b := a.Addr.As4()
	p.bytes(b[:])
	return nil
}

func (n *NSRecord) pack(p *packer) error    { return p.name(n.Host) }
func (c *CNAMERecord) pack(p *packer) error { return p.name(c.Target) }

func (t *TXTRecord) pack(p *packer) error {
	if len(t.Strings) == 0 {
		return fmt.Errorf("dnswire: TXT record with no strings")
	}
	for _, s := range t.Strings {
		if len(s) > 255 {
			return fmt.Errorf("dnswire: TXT string exceeds 255 bytes")
		}
		p.uint8(uint8(len(s)))
		p.bytes([]byte(s))
	}
	return nil
}

func (s *SOARecord) pack(p *packer) error {
	if err := p.name(s.MName); err != nil {
		return err
	}
	if err := p.name(s.RName); err != nil {
		return err
	}
	p.uint32(s.Serial)
	p.uint32(s.Refresh)
	p.uint32(s.Retry)
	p.uint32(s.Expire)
	p.uint32(s.Minimum)
	return nil
}

// Pack encodes the message into wire format.
func (m *Message) Pack() ([]byte, error) {
	if len(m.Questions) > 0xFFFF || len(m.Answers) > 0xFFFF ||
		len(m.Authority) > 0xFFFF || len(m.Additional) > 0xFFFF {
		return nil, fmt.Errorf("dnswire: section exceeds 65535 entries")
	}
	p := newPacker()
	p.uint16(m.ID)
	p.uint16(m.flags())
	p.uint16(uint16(len(m.Questions)))
	p.uint16(uint16(len(m.Answers)))
	p.uint16(uint16(len(m.Authority)))
	p.uint16(uint16(len(m.Additional)))

	for _, q := range m.Questions {
		if err := p.name(q.Name); err != nil {
			return nil, fmt.Errorf("question %q: %w", q.Name, err)
		}
		p.uint16(uint16(q.Type))
		p.uint16(uint16(q.Class))
	}
	for _, section := range [][]Record{m.Answers, m.Authority, m.Additional} {
		for _, r := range section {
			if err := p.record(r); err != nil {
				return nil, err
			}
		}
	}
	return p.buf, nil
}

func (p *packer) record(r Record) error {
	if r.Data == nil {
		return fmt.Errorf("dnswire: record %q has no data", r.Name)
	}
	if got := r.Data.recordType(); got != r.Type {
		return fmt.Errorf("dnswire: record %q type %s does not match payload type %s",
			r.Name, r.Type, got)
	}
	if err := p.name(r.Name); err != nil {
		return fmt.Errorf("record %q: %w", r.Name, err)
	}
	p.uint16(uint16(r.Type))
	p.uint16(uint16(r.Class))
	p.uint32(r.TTL)
	// Reserve RDLENGTH, pack RDATA, then patch the length in.
	lenAt := len(p.buf)
	p.uint16(0)
	if err := r.Data.pack(p); err != nil {
		return fmt.Errorf("record %q: %w", r.Name, err)
	}
	rdlen := len(p.buf) - lenAt - 2
	if rdlen > 0xFFFF {
		return fmt.Errorf("dnswire: record %q RDATA exceeds 65535 bytes", r.Name)
	}
	binary.BigEndian.PutUint16(p.buf[lenAt:], uint16(rdlen))
	return nil
}

func (m *Message) flags() uint16 {
	var f uint16
	if m.Response {
		f |= 1 << 15
	}
	f |= uint16(m.OpCode&0xF) << 11
	if m.Authoritative {
		f |= 1 << 10
	}
	if m.Truncated {
		f |= 1 << 9
	}
	if m.RecursionDesired {
		f |= 1 << 8
	}
	if m.RecursionAvailable {
		f |= 1 << 7
	}
	f |= uint16(m.RCode & 0xF)
	return f
}
