package dnswire

import (
	"net/netip"
	"reflect"
	"testing"
)

// FuzzUnpack checks that the decoder never panics on arbitrary input and
// that any message it accepts survives a pack/unpack round trip (the
// canonical re-encoding must parse to the same structure).
func FuzzUnpack(f *testing.F) {
	// Seed the corpus with valid messages of every supported shape.
	seeds := []*Message{
		{
			Header:    dnsHeader(1, false),
			Questions: []Question{{Name: "example.com.", Type: TypeA, Class: ClassIN}},
		},
		{
			Header:    dnsHeader(2, true),
			Questions: []Question{{Name: "img.yahoo.cdn.sim.", Type: TypeA, Class: ClassIN}},
			Answers: []Record{
				{Name: "img.yahoo.cdn.sim.", Type: TypeCNAME, Class: ClassIN, TTL: 20,
					Data: &CNAMERecord{Target: "g.cdn.sim."}},
				{Name: "g.cdn.sim.", Type: TypeA, Class: ClassIN, TTL: 20,
					Data: &ARecord{Addr: netip.MustParseAddr("10.1.2.3")}},
			},
		},
		{
			Header: dnsHeader(3, true),
			Answers: []Record{
				{Name: "v6.sim.", Type: TypeAAAA, Class: ClassIN, TTL: 60,
					Data: &AAAARecord{Addr: netip.MustParseAddr("2001:db8::1")}},
				{Name: "txt.sim.", Type: TypeTXT, Class: ClassIN, TTL: 60,
					Data: &TXTRecord{Strings: []string{"hello", "world"}}},
				{Name: "sim.", Type: TypeSOA, Class: ClassIN, TTL: 300,
					Data: &SOARecord{MName: "ns1.sim.", RName: "ops.sim.",
						Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5}},
			},
		},
	}
	for _, m := range seeds {
		wire, err := m.Pack()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0, 12, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unpack(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must re-encode and re-decode to the same message.
		wire, err := msg.Pack()
		if err != nil {
			// Some decodable messages are not encodable (e.g., an A record
			// is always 4 bytes so this shouldn't happen for supported
			// types) — flag it.
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		again, err := Unpack(wire)
		if err != nil {
			t.Fatalf("re-encoded message failed to parse: %v", err)
		}
		if !reflect.DeepEqual(msg, again) {
			t.Fatalf("round trip not stable:\nfirst:  %+v\nsecond: %+v", msg, again)
		}
	})
}

func dnsHeader(id uint16, response bool) Header {
	return Header{ID: id, Response: response, RecursionDesired: true}
}
