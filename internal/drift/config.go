// Package drift is the CDN-change detector: an unsupervised monitor over
// the stream of compiled ratio-map snapshots (crp.DriftFrame) that flags
// CDN remapping events — mass redirection shifts, replica-set churn, and
// frozen maps going stale — while staying quiet under client-side LDNS
// churn.
//
// Each (namespace, group) stream keeps an exponentially-decayed baseline
// centroid and a short window of recent frames. Two drift statistics are
// computed per frame against the baseline: the cosine distance of the
// windowed recent centroid, and the Jaccard drift of the top-mass replica
// sets. Client-side LDNS churn is rejected by common-mode subtraction:
// churn re-homes clients and therefore moves every namespace's stream of
// the same population together, while a CDN event moves only the faulted
// namespace, so a stream's effective drift is capped at twice the part of
// its raw drift that its quietest peer namespace (same group) cannot
// explain. Either statistic crossing its threshold (scaled by the
// configured sensitivity) raises a remap alarm; a near-identical map
// persisting while the service keeps accepting probes raises a stale alarm.
// Hysteresis makes one underlying event fire exactly once: an alarmed
// stream re-arms only after the statistics stay calm for a configured
// number of frames, and the baseline keeps decaying toward the new regime
// so a persistent shift is absorbed rather than re-reported.
//
// The detector is fully deterministic: it draws no randomness and iterates
// every structure in sorted order, so the same frame sequence yields the
// byte-identical event log and report.
package drift

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
)

// Config shapes the detector. The zero value of any field means "use the
// default"; DecodeConfig and New apply defaults before validating.
type Config struct {
	// Sensitivity scales the trip thresholds: the effective centroid and
	// Jaccard thresholds are the configured ones divided by Sensitivity,
	// so 2.0 is twice as eager and 0.5 twice as tolerant. Default 1.
	Sensitivity float64 `json:"sensitivity,omitempty"`
	// Window is how many recent frames the drift centroid averages. Small
	// windows react faster and keep event peaks sharp; large windows trade
	// latency for noise suppression. Default 2.
	Window int `json:"window,omitempty"`
	// BaselineAlpha is the EWMA weight of the newest frame in the decayed
	// baseline centroid. Default 0.25.
	BaselineAlpha float64 `json:"baselineAlpha,omitempty"`
	// CentroidThreshold is the base cosine-distance trip point between the
	// recent centroid and the baseline, applied to the common-mode-rejected
	// effective distance. Default 0.018 — roughly twice the sampling noise
	// floor of a population aggregate and half a mapping flap's shift.
	CentroidThreshold float64 `json:"centroidThreshold,omitempty"`
	// JaccardThreshold is the base trip point for 1 - Jaccard(topRecent,
	// topBaseline) over the top-mass replica sets. Default 0.5.
	JaccardThreshold float64 `json:"jaccardThreshold,omitempty"`
	// TopMass is the cumulative-mass quantile defining a stream's
	// top replica set for the Jaccard statistic. Default 0.5.
	TopMass float64 `json:"topMass,omitempty"`
	// WarmupFrames is how many frames a stream must deliver before its
	// alarms arm; the decayed baseline is still converging early on and
	// reads as drift. The baseline accumulates during warmup. Default 8.
	WarmupFrames int `json:"warmupFrames,omitempty"`
	// CalmFrames is how many consecutive calm frames (score below the
	// re-arm fraction of the trip point) an alarmed stream needs before it
	// can fire again. Default 3.
	CalmFrames int `json:"calmFrames,omitempty"`
	// StaleFrames is how many consecutive near-identical frames (see
	// StaleEpsilon) — while the service keeps accepting probes — flag a
	// stream's map as stale. -1 disables stale detection. Default 6.
	StaleFrames int `json:"staleFrames,omitempty"`
	// StaleEpsilon is the frame-to-frame cosine distance at or below which
	// two consecutive compiled maps count as "the same" for stale
	// detection. Natural epoch rotation keeps consecutive frames well
	// above it; a frozen mapping collapses an order of magnitude below.
	// Default 2e-4.
	StaleEpsilon float64 `json:"staleEpsilon,omitempty"`
	// MinSupport is the minimum stream support (tracked nodes, or absorbed
	// probes for aggregation groups) for a frame's stream to be considered.
	// Default 2.
	MinSupport int `json:"minSupport,omitempty"`
}

// rearmFraction: an alarmed stream counts a frame as calm only when its
// score drops below this fraction of the trip point, so the alarm doesn't
// chatter around the threshold.
const rearmFraction = 0.6

// DefaultConfig returns the detector defaults.
func DefaultConfig() Config {
	var c Config
	c.applyDefaults()
	return c
}

func (c *Config) applyDefaults() {
	if c.Sensitivity == 0 {
		c.Sensitivity = 1
	}
	if c.Window == 0 {
		c.Window = 2
	}
	if c.BaselineAlpha == 0 {
		c.BaselineAlpha = 0.25
	}
	if c.CentroidThreshold == 0 {
		c.CentroidThreshold = 0.018
	}
	if c.JaccardThreshold == 0 {
		c.JaccardThreshold = 0.5
	}
	if c.TopMass == 0 {
		c.TopMass = 0.5
	}
	if c.WarmupFrames == 0 {
		c.WarmupFrames = 8
	}
	if c.CalmFrames == 0 {
		c.CalmFrames = 3
	}
	if c.StaleFrames == 0 {
		c.StaleFrames = 6
	}
	if c.StaleEpsilon == 0 {
		c.StaleEpsilon = 2e-4
	}
	if c.MinSupport == 0 {
		c.MinSupport = 2
	}
}

func (c Config) validate() error {
	switch {
	case c.Sensitivity <= 0 || c.Sensitivity > 100:
		return fmt.Errorf("drift: sensitivity %v out of range (0, 100]", c.Sensitivity)
	case c.Window < 1 || c.Window > 256:
		return fmt.Errorf("drift: window %d out of range [1, 256]", c.Window)
	case c.BaselineAlpha <= 0 || c.BaselineAlpha > 1:
		return fmt.Errorf("drift: baselineAlpha %v out of range (0, 1]", c.BaselineAlpha)
	case c.CentroidThreshold <= 0 || c.CentroidThreshold > 1:
		return fmt.Errorf("drift: centroidThreshold %v out of range (0, 1]", c.CentroidThreshold)
	case c.JaccardThreshold <= 0 || c.JaccardThreshold > 1:
		return fmt.Errorf("drift: jaccardThreshold %v out of range (0, 1]", c.JaccardThreshold)
	case c.TopMass <= 0 || c.TopMass > 1:
		return fmt.Errorf("drift: topMass %v out of range (0, 1]", c.TopMass)
	case c.WarmupFrames < 1 || c.WarmupFrames > 1<<16:
		return fmt.Errorf("drift: warmupFrames %d out of range [1, 65536]", c.WarmupFrames)
	case c.CalmFrames < 1 || c.CalmFrames > 1<<16:
		return fmt.Errorf("drift: calmFrames %d out of range [1, 65536]", c.CalmFrames)
	case c.StaleFrames < -1 || c.StaleFrames > 1<<16:
		return fmt.Errorf("drift: staleFrames %d out of range [-1, 65536]", c.StaleFrames)
	case c.StaleEpsilon <= 0 || c.StaleEpsilon > 0.5:
		return fmt.Errorf("drift: staleEpsilon %v out of range (0, 0.5]", c.StaleEpsilon)
	case c.MinSupport < 0:
		return fmt.Errorf("drift: minSupport %d negative", c.MinSupport)
	}
	return nil
}

// DecodeConfig parses a detector config from JSON with the same discipline
// as the other wire-facing decoders in this repo: unknown fields and
// trailing data are errors, defaults are applied, and the result is
// validated. The crpd -drift-config flag and the scenario runner's drift
// block both come through here.
func DecodeConfig(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("drift: decode config: %w", err)
	}
	if dec.More() {
		return Config{}, errors.New("drift: trailing data after the config object")
	}
	c.applyDefaults()
	if err := c.validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
