package drift

import (
	"time"

	"repro/internal/obs"
)

// metrics are the drift.* instruments. They land in the default registry
// unless WithRegistry redirects them, mirroring the faults plane's pattern,
// so the crpd stats op surfaces them alongside every other subsystem.
type metrics struct {
	frames  *obs.Counter // drift.frames — snapshot frames consumed
	events  *obs.Counter // drift.events — alarms fired, all kinds
	remaps  *obs.Counter // drift.events.remap
	stales  *obs.Counter // drift.events.stale
	streams *obs.Gauge   // drift.streams — distinct (ns, group) streams seen
	alarmed *obs.Gauge   // drift.alarmed — streams currently in alarm
}

func newMetrics(r *obs.Registry) metrics {
	if r == nil {
		r = obs.Default()
	}
	return metrics{
		frames:  r.Counter("drift.frames"),
		events:  r.Counter("drift.events"),
		remaps:  r.Counter("drift.events.remap"),
		stales:  r.Counter("drift.events.stale"),
		streams: r.Gauge("drift.streams"),
		alarmed: r.Gauge("drift.alarmed"),
	}
}

type options struct {
	registry *obs.Registry
	interval time.Duration
	now      func() time.Time
}

// Option configures New and NewMonitor.
type Option func(*options)

// WithRegistry directs the drift.* instruments into r instead of the
// process-wide default registry (tests and per-daemon registries).
func WithRegistry(r *obs.Registry) Option {
	return func(o *options) { o.registry = r }
}
