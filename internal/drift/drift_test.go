package drift

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/crp"
	"repro/internal/obs"
)

var t0 = time.Date(2006, 11, 12, 0, 0, 0, 0, time.UTC)

func mkFrame(idx int, observes uint64, m crp.RatioMap) crp.DriftFrame {
	return crp.DriftFrame{
		At:       t0.Add(time.Duration(idx) * time.Minute),
		Observes: observes,
		Streams:  []crp.FrameStream{{NS: "cdnA", Support: 10, Map: m}},
	}
}

// jittered returns base with multiplicative noise — the sampling jitter a
// stationary population aggregate shows frame to frame. Keys are walked in
// sorted order so the rng draws land on the same keys every run (map
// iteration order would otherwise leak into the sequence).
func jittered(base map[string]float64, rng *rand.Rand, noise float64) crp.RatioMap {
	ids := make([]string, 0, len(base))
	for id := range base {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make(crp.RatioMap, len(base))
	sum := 0.0
	for _, id := range ids {
		v := base[id] * (1 + noise*(2*rng.Float64()-1))
		out[crp.ReplicaID(id)] = v
		sum += v
	}
	for id := range out {
		out[id] /= sum
	}
	return out
}

func dist(ids ...string) map[string]float64 {
	m := make(map[string]float64, len(ids))
	for i, id := range ids {
		m[id] = 1 / float64(i+2) // uneven but overlapping masses
	}
	return m
}

// stepFrames builds a run that is stationary around distribution A, then
// abruptly and persistently switches to distribution B at frame switchAt.
func stepFrames(n, switchAt int, seed int64) []crp.DriftFrame {
	rng := rand.New(rand.NewSource(seed))
	a := dist("r0", "r1", "r2", "r3", "r4")
	b := dist("r5", "r6", "r7", "r8", "r9")
	frames := make([]crp.DriftFrame, 0, n)
	for i := 0; i < n; i++ {
		base := a
		if i >= switchAt {
			base = b
		}
		frames = append(frames, mkFrame(i, uint64(10*(i+1)), jittered(base, rng, 0.05)))
	}
	return frames
}

func TestDetectorFiresOnceOnPersistentShift(t *testing.T) {
	det, err := New(Config{}, WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for _, f := range stepFrames(60, 30, 1) {
		events = append(events, det.ObserveFrame(f)...)
	}
	if len(events) != 1 {
		t.Fatalf("want exactly one event for one persistent shift (hysteresis), got %d: %+v", len(events), events)
	}
	ev := events[0]
	if ev.Kind != KindRemap || ev.NS != "cdnA" {
		t.Fatalf("unexpected event %+v", ev)
	}
	if ev.Frame < 31 || ev.Frame > 33 {
		t.Fatalf("detection frame %d, want within a couple frames of the shift at 31", ev.Frame)
	}
	st := det.Status()
	if st.Events != 1 || st.Frames != 60 {
		t.Fatalf("status events/frames = %d/%d", st.Events, st.Frames)
	}
	// Long after the shift the baseline has absorbed the new regime and
	// the stream has re-armed.
	if st.Streams[0].Alarmed {
		t.Fatalf("stream still alarmed after baseline convergence: %+v", st.Streams[0])
	}
}

func TestDetectorRefiresAfterRearm(t *testing.T) {
	det, err := New(Config{}, WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	a := dist("r0", "r1", "r2", "r3", "r4")
	b := dist("r5", "r6", "r7", "r8", "r9")
	var events []Event
	for i := 0; i < 90; i++ {
		base := a
		if i >= 30 && i < 60 {
			base = b
		}
		events = append(events, det.ObserveFrame(mkFrame(i, uint64(10*(i+1)), jittered(base, rng, 0.05)))...)
	}
	// Two regime changes (A→B at 30, B→A at 60) — exactly two remaps.
	if len(events) != 2 {
		t.Fatalf("want two events for two shifts, got %d: %+v", len(events), events)
	}
}

func TestDetectorQuietUnderStationaryJitter(t *testing.T) {
	// LDNS churn re-homes clients inside the same population, so the
	// aggregate stream stays stationary up to sampling jitter. The
	// detector must stay silent on such a stream even with generous noise.
	det, err := New(Config{}, WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	base := dist("r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7")
	for i := 0; i < 200; i++ {
		if evs := det.ObserveFrame(mkFrame(i, uint64(10*(i+1)), jittered(base, rng, 0.10))); len(evs) > 0 {
			t.Fatalf("event fired on stationary jitter at frame %d: %+v", i, evs)
		}
	}
}

func TestDetectorFlagsStaleStream(t *testing.T) {
	det, err := New(Config{}, WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	base := dist("r0", "r1", "r2", "r3")
	var events []Event
	frozen := jittered(base, rng, 0)
	for i := 0; i < 40; i++ {
		var m crp.RatioMap
		if i < 20 {
			m = jittered(base, rng, 0.05)
		} else {
			m = frozen // byte-identical map while observes keep advancing
		}
		events = append(events, det.ObserveFrame(mkFrame(i, uint64(10*(i+1)), m))...)
	}
	var stales []Event
	for _, e := range events {
		if e.Kind == KindStale {
			stales = append(stales, e)
		}
	}
	if len(stales) != 1 {
		t.Fatalf("want exactly one stale event, got %+v", events)
	}
	if got := stales[0].Frame; got != 27 {
		// Freeze starts at frame 21 (first repeat of frame 20's map);
		// StaleFrames=6 identical repeats fire at frame 27.
		t.Fatalf("stale fired at frame %d, want 27", got)
	}
}

func TestDetectorStaleNeedsIngest(t *testing.T) {
	// The same frozen map without any new probes is "no traffic", not a
	// stale mapping: no alarm.
	det, err := New(Config{}, WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	frozen := jittered(dist("r0", "r1", "r2"), rng, 0)
	for i := 0; i < 40; i++ {
		if evs := det.ObserveFrame(mkFrame(i, 100, frozen)); len(evs) > 0 {
			t.Fatalf("stale fired without ingest at frame %d: %+v", i, evs)
		}
	}
}

func TestDetectorDeterministicRerun(t *testing.T) {
	frames := stepFrames(80, 40, 6)
	run := func() ([]byte, []byte) {
		det, err := New(Config{}, WithRegistry(obs.NewRegistry()))
		if err != nil {
			t.Fatal(err)
		}
		var events []Event
		for _, f := range frames {
			events = append(events, det.ObserveFrame(f)...)
		}
		evb, err := json.Marshal(events)
		if err != nil {
			t.Fatal(err)
		}
		stb, err := json.Marshal(det.Status())
		if err != nil {
			t.Fatal(err)
		}
		return evb, stb
	}
	ev1, st1 := run()
	ev2, st2 := run()
	if string(ev1) != string(ev2) {
		t.Fatalf("event logs differ across same-input reruns:\n%s\n%s", ev1, ev2)
	}
	if string(st1) != string(st2) {
		t.Fatalf("status reports differ across same-input reruns:\n%s\n%s", st1, st2)
	}
}

func TestDetectorSkipsThinStreams(t *testing.T) {
	det, err := New(Config{MinSupport: 5}, WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	f := crp.DriftFrame{
		At:       t0,
		Observes: 10,
		Streams:  []crp.FrameStream{{NS: "cdnA", Support: 1, Map: crp.RatioMap{"r0": 1}}},
	}
	for i := 0; i < 30; i++ {
		f.Observes += 10
		if evs := det.ObserveFrame(f); len(evs) > 0 {
			t.Fatalf("thin stream fired: %+v", evs)
		}
	}
	if st := det.Status(); len(st.Streams) != 0 {
		t.Fatalf("thin stream tracked: %+v", st.Streams)
	}
}

func TestMonitorTickAgainstLiveService(t *testing.T) {
	svc := crp.NewService(crp.WithWindow(8))
	clock := t0
	mon, err := NewMonitor(svc, Config{},
		WithRegistry(obs.NewRegistry()),
		WithClock(func() time.Time { return clock }))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for n := 0; n < 4; n++ {
			node := crp.NodeID(fmt.Sprintf("n%d", n))
			svc.Observe(node, clock, crp.Qualify("cdnA", crp.ReplicaID(fmt.Sprintf("r%d", (i+n)%3))))
		}
		clock = clock.Add(time.Minute)
		mon.Tick()
	}
	st := mon.Status()
	if st.Frames != 10 {
		t.Fatalf("frames = %d, want 10", st.Frames)
	}
	if len(st.Streams) != 1 || st.Streams[0].NS != "cdnA" {
		t.Fatalf("streams = %+v", st.Streams)
	}
}
