package drift

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestDecodeConfigDefaults(t *testing.T) {
	c, err := DecodeConfig([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, DefaultConfig()) {
		t.Fatalf("empty config %+v != defaults %+v", c, DefaultConfig())
	}
	c, err = DecodeConfig([]byte(`{"sensitivity": 2, "staleFrames": -1}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Sensitivity != 2 || c.StaleFrames != -1 || c.Window != 2 {
		t.Fatalf("overrides not applied: %+v", c)
	}
}

func TestDecodeConfigRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty input", ``, "decode config"},
		{"not json", `sensitivity: 1`, "decode config"},
		{"wrong type", `{"sensitivity": "high"}`, "decode config"},
		{"unknown field", `{"sensitivty": 1}`, "unknown field"},
		{"trailing data", `{} {}`, "trailing data"},
		{"trailing garbage", `{"window": 4} tail`, "trailing data"},
		{"array not object", `[1, 2]`, "decode config"},
		{"negative sensitivity", `{"sensitivity": -1}`, "sensitivity"},
		{"huge sensitivity", `{"sensitivity": 1000}`, "sensitivity"},
		{"zero-width window", `{"window": -3}`, "window"},
		{"window overflow", `{"window": 100000}`, "window"},
		{"alpha above one", `{"baselineAlpha": 1.5}`, "baselineAlpha"},
		{"alpha negative", `{"baselineAlpha": -0.25}`, "baselineAlpha"},
		{"centroid threshold above one", `{"centroidThreshold": 2}`, "centroidThreshold"},
		{"jaccard threshold negative", `{"jaccardThreshold": -0.5}`, "jaccardThreshold"},
		{"top mass above one", `{"topMass": 1.01}`, "topMass"},
		{"warmup negative", `{"warmupFrames": -2}`, "warmupFrames"},
		{"calm negative", `{"calmFrames": -2}`, "calmFrames"},
		{"stale below disable", `{"staleFrames": -2}`, "staleFrames"},
		{"stale epsilon negative", `{"staleEpsilon": -0.001}`, "staleEpsilon"},
		{"stale epsilon above half", `{"staleEpsilon": 0.6}`, "staleEpsilon"},
		{"min support negative", `{"minSupport": -1}`, "minSupport"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeConfig([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted malformed config %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func FuzzDecodeDriftConfig(f *testing.F) {
	for _, seed := range driftConfigCorpus {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		c, err := DecodeConfig(raw)
		if err != nil {
			return
		}
		// Accepted configs must construct a detector and round-trip: the
		// re-encoded config decodes to the identical value (defaults are
		// already materialized, so the trip is a fixed point).
		if _, err := New(c); err != nil {
			t.Fatalf("accepted config rejected by New: %v\nconfig: %+v", err, c)
		}
		out, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("accepted config does not marshal: %v", err)
		}
		back, err := DecodeConfig(out)
		if err != nil {
			t.Fatalf("round-tripped config rejected: %v\nconfig: %s", err, out)
		}
		if !reflect.DeepEqual(back, c) {
			t.Fatalf("round trip not a fixed point:\n in: %+v\nout: %+v", c, back)
		}
	})
}

// driftConfigCorpus seeds the fuzzer and regenerates the checked-in corpus.
var driftConfigCorpus = []string{
	`{}`,
	`{"sensitivity": 1}`,
	`{"sensitivity": 0.5, "window": 8, "baselineAlpha": 0.1}`,
	`{"centroidThreshold": 0.3, "jaccardThreshold": 0.4, "topMass": 0.8}`,
	`{"warmupFrames": 10, "calmFrames": 5, "staleFrames": -1, "minSupport": 4}`,
	`{"sensitivity": 2, "staleFrames": 12}`,
	`{"staleEpsilon": 0.001, "window": 2}`,
}

// TestGenerateDriftConfigFuzzCorpus refreshes the checked-in seed corpus.
// Run with REGEN_FUZZ_CORPUS=1 when the schema changes.
func TestGenerateDriftConfigFuzzCorpus(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "1" {
		t.Skip("set REGEN_FUZZ_CORPUS=1 to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeDriftConfig")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range driftConfigCorpus {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(seed) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
