package drift

import (
	"math"
	"sort"
	"time"

	"repro/crp"
)

// EventKind labels a detected CDN mapping event. The values match the
// faults package's ground-truth event kinds so experiment scorers can join
// detections to the truth schedule directly.
type EventKind string

const (
	// KindRemap is an abrupt mass-redirection shift: the recent centroid
	// or the top-mass replica set moved away from the decayed baseline.
	KindRemap EventKind = "remap"
	// KindStale is a frozen map: the stream's ratio map stayed within
	// StaleEpsilon of itself across StaleFrames frames while the service
	// kept accepting probes.
	KindStale EventKind = "stale"
)

// Event is one fired alarm. At is the timestamp of the frame that fired it
// and Frame its index in the detector's frame sequence.
type Event struct {
	Kind  EventKind `json:"kind"`
	NS    string    `json:"ns"`
	Group string    `json:"group,omitempty"`
	At    time.Time `json:"at"`
	Frame int       `json:"frame"`
	// Score is the threshold-normalized drift score at firing time (>= 1
	// for remap events; 0 for stale events, which are counted, not
	// scored).
	Score float64 `json:"score"`
	// CentroidDist and JaccardDrift are the effective (common-mode
	// rejected) statistics behind Score.
	CentroidDist float64 `json:"centroidDist"`
	JaccardDrift float64 `json:"jaccardDrift"`
	// StaleRun is the identical-frame run length for stale events.
	StaleRun int `json:"staleRun,omitempty"`
}

// StreamStatus is the point-in-time state of one monitored stream.
type StreamStatus struct {
	NS           string  `json:"ns"`
	Group        string  `json:"group,omitempty"`
	Frames       int     `json:"frames"`
	Support      int     `json:"support"`
	Alarmed      bool    `json:"alarmed"`
	Score        float64 `json:"score"`
	CentroidDist float64 `json:"centroidDist"`
	JaccardDrift float64 `json:"jaccardDrift"`
	StaleRun     int     `json:"staleRun"`
	Events       int     `json:"events"`
}

// Status is the detector summary served by the crpd drift-status op.
// Streams are sorted by (NS, Group) and Recent holds the last few events,
// oldest first.
type Status struct {
	Config  Config         `json:"config"`
	Frames  int            `json:"frames"`
	Events  int            `json:"events"`
	Streams []StreamStatus `json:"streams,omitempty"`
	Recent  []Event        `json:"recent,omitempty"`
}

// maxRecentEvents bounds Status.Recent.
const maxRecentEvents = 32

// svec is a ratio map compiled to sorted parallel slices — every detector
// statistic runs on svecs via merge joins, so no map iteration order ever
// reaches a float.
type svec struct {
	ids  []string
	vals []float64
}

func fromMap(m crp.RatioMap) svec {
	v := svec{
		ids:  make([]string, 0, len(m)),
		vals: make([]float64, 0, len(m)),
	}
	for id := range m {
		v.ids = append(v.ids, string(id))
	}
	sort.Strings(v.ids)
	for _, id := range v.ids {
		v.vals = append(v.vals, m[crp.ReplicaID(id)])
	}
	return v
}

// cosineDist is 1 - cosine(a, b); 1 when either side is empty.
func cosineDist(a, b svec) float64 {
	dot, na, nb := 0.0, 0.0, 0.0
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] == b.ids[j]:
			dot += a.vals[i] * b.vals[j]
			i++
			j++
		case a.ids[i] < b.ids[j]:
			i++
		default:
			j++
		}
	}
	for _, v := range a.vals {
		na += v * v
	}
	for _, v := range b.vals {
		nb += v * v
	}
	if na == 0 || nb == 0 {
		return 1
	}
	d := 1 - dot/math.Sqrt(na*nb)
	if d < 0 {
		return 0
	}
	return d
}

// ewma merges cur into base with weight alpha, dropping entries whose
// weight decays below noise.
func ewma(base, cur svec, alpha float64) svec {
	const floor = 1e-12
	out := svec{
		ids:  make([]string, 0, len(base.ids)+len(cur.ids)),
		vals: make([]float64, 0, len(base.ids)+len(cur.ids)),
	}
	push := func(id string, v float64) {
		if v > floor {
			out.ids = append(out.ids, id)
			out.vals = append(out.vals, v)
		}
	}
	i, j := 0, 0
	for i < len(base.ids) || j < len(cur.ids) {
		switch {
		case j >= len(cur.ids) || (i < len(base.ids) && base.ids[i] < cur.ids[j]):
			push(base.ids[i], (1-alpha)*base.vals[i])
			i++
		case i >= len(base.ids) || cur.ids[j] < base.ids[i]:
			push(cur.ids[j], alpha*cur.vals[j])
			j++
		default:
			push(base.ids[i], (1-alpha)*base.vals[i]+alpha*cur.vals[j])
			i++
			j++
		}
	}
	return out
}

// topSet returns the smallest replica set covering at least mass of v's
// weight, heaviest first (ties broken by id), returned sorted by id.
func topSet(v svec, mass float64) []string {
	idx := make([]int, len(v.ids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if v.vals[idx[a]] != v.vals[idx[b]] {
			return v.vals[idx[a]] > v.vals[idx[b]]
		}
		return v.ids[idx[a]] < v.ids[idx[b]]
	})
	total := 0.0
	for _, w := range v.vals {
		total += w
	}
	var out []string
	acc := 0.0
	for _, i := range idx {
		if acc >= mass*total {
			break
		}
		out = append(out, v.ids[i])
		acc += v.vals[i]
	}
	sort.Strings(out)
	return out
}

// jaccardDrift is 1 - |a∩b|/|a∪b| over two sorted string sets; 0 when both
// are empty.
func jaccardDrift(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter, union := 0, 0
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			i++
		case i >= len(a) || b[j] < a[i]:
			j++
		default:
			inter++
			i++
			j++
		}
		union++
	}
	return 1 - float64(inter)/float64(union)
}

// streamState is the per-(ns, group) detector state.
type streamState struct {
	ns, group string
	frames    int
	support   int
	ring      []svec // last Window frames, oldest first
	base      svec
	haveBase  bool
	alarmed   bool
	calm      int
	staleRun  int
	staleOn   bool // stale alarm latched for the current frozen run
	lastVec   svec
	haveLast  bool
	lastObs   uint64
	score     float64
	cd, jd    float64
	events    int
}

// Detector consumes DriftFrames and fires Events. It is not safe for
// concurrent use; Monitor wraps it with a lock and a clock for live
// daemons.
type Detector struct {
	cfg     Config
	effC    float64 // CentroidThreshold / Sensitivity
	effJ    float64 // JaccardThreshold / Sensitivity
	streams map[string]*streamState
	order   []string // sorted stream keys, maintained on insert
	frames  int
	events  int
	recent  []Event
	m       metrics
}

// New builds a detector. The zero Config takes every default; see
// DefaultConfig.
func New(cfg Config, opts ...Option) (*Detector, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Detector{
		cfg:     cfg,
		effC:    cfg.CentroidThreshold / cfg.Sensitivity,
		effJ:    cfg.JaccardThreshold / cfg.Sensitivity,
		streams: make(map[string]*streamState),
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	d.m = newMetrics(o.registry)
	return d, nil
}

// measuredStream carries one stream's raw per-frame statistics between the
// ingest pass and the alarm pass.
type measuredStream struct {
	ss     *streamState
	cd, jd float64
}

// ObserveFrame feeds one snapshot frame through every stream's statistics
// and returns the events fired by this frame: stale events in stream
// order, then remap events in stream order. Feeding the same frame
// sequence to a fresh detector returns the byte-identical event sequence.
//
// Remap alarms run in two passes. The first pass updates each stream's
// window, baseline, and staleness and records the raw centroid/Jaccard
// drift. The second pass rejects common-mode motion: client-side LDNS
// churn re-homes clients and therefore moves every namespace observed by
// the same population (group) together, while a CDN event moves only the
// faulted namespace. A stream's effective drift is min(raw, 2*(raw -
// quietest peer's raw)) — it must be large in absolute terms AND at least
// half of it must be unexplained by whatever its calmest peer namespace
// saw. Streams with no peer namespace in their group fall back to the raw
// statistic (a single-CDN deployment cannot separate churn from remaps).
func (d *Detector) ObserveFrame(f crp.DriftFrame) []Event {
	d.frames++
	d.m.frames.Inc()
	var fired []Event
	var ms []measuredStream
	for i := range f.Streams {
		st := &f.Streams[i]
		if st.Support < d.cfg.MinSupport || len(st.Map) == 0 {
			continue
		}
		key := st.NS + "\x00" + st.Group
		ss := d.streams[key]
		if ss == nil {
			ss = &streamState{ns: st.NS, group: st.Group}
			d.streams[key] = ss
			d.order = append(d.order, key)
			sort.Strings(d.order)
			d.m.streams.Set(int64(len(d.streams)))
		}
		evs, cd, jd, measured := d.ingest(ss, st, f)
		fired = append(fired, evs...)
		if measured {
			ms = append(ms, measuredStream{ss: ss, cd: cd, jd: jd})
		}
	}
	for i := range ms {
		m := &ms[i]
		cd, jd := m.cd, m.jd
		minCd, minJd, havePeer := 0.0, 0.0, false
		for j := range ms {
			p := &ms[j]
			if p.ss.group != m.ss.group || p.ss.ns == m.ss.ns {
				continue
			}
			if !havePeer || p.cd < minCd {
				minCd = p.cd
			}
			if !havePeer || p.jd < minJd {
				minJd = p.jd
			}
			havePeer = true
		}
		if havePeer {
			cd = effectiveDrift(cd, minCd)
			jd = effectiveDrift(jd, minJd)
		}
		fired = append(fired, d.alarm(m.ss, cd, jd, f)...)
	}
	if n := len(fired); n > 0 {
		d.events += n
		d.m.events.Add(uint64(n))
		d.recent = append(d.recent, fired...)
		if len(d.recent) > maxRecentEvents {
			d.recent = d.recent[len(d.recent)-maxRecentEvents:]
		}
	}
	d.m.alarmed.Set(d.alarmedCount())
	return fired
}

// effectiveDrift caps a raw drift statistic at twice its differential over
// the quietest peer namespace: common-mode motion cancels, one-sided
// motion passes through.
func effectiveDrift(raw, peerMin float64) float64 {
	diff := raw - peerMin
	if diff < 0 {
		diff = 0
	}
	if 2*diff < raw {
		return 2 * diff
	}
	return raw
}

// ingest runs the per-stream pass: staleness, window and baseline updates,
// and the raw drift statistics. measured reports whether the stream is out
// of warmup and produced statistics for the alarm pass.
func (d *Detector) ingest(ss *streamState, st *crp.FrameStream, f crp.DriftFrame) (out []Event, cd, jd float64, measured bool) {
	ss.frames++
	ss.support = st.Support
	cur := fromMap(st.Map)

	// Staleness: consecutive compiled maps within StaleEpsilon of each
	// other while the service keeps accepting probes. Natural epoch
	// rotation keeps consecutive frames well above the epsilon; a frozen
	// mapping collapses orders of magnitude below it.
	if ss.haveLast && f.Observes > ss.lastObs && cosineDist(cur, ss.lastVec) <= d.cfg.StaleEpsilon {
		ss.staleRun++
	} else {
		ss.staleRun = 0
		ss.staleOn = false
	}
	ss.lastVec, ss.haveLast, ss.lastObs = cur, true, f.Observes
	if d.cfg.StaleFrames >= 0 && ss.staleRun >= d.cfg.StaleFrames && !ss.staleOn &&
		ss.frames > d.cfg.WarmupFrames {
		ss.staleOn = true
		ss.events++
		d.m.stales.Inc()
		out = append(out, Event{
			Kind: KindStale, NS: ss.ns, Group: ss.group,
			At: f.At, Frame: d.frames, StaleRun: ss.staleRun,
		})
	}

	// Recent-window centroid vs the decayed baseline.
	ss.ring = append(ss.ring, cur)
	if len(ss.ring) > d.cfg.Window {
		ss.ring = ss.ring[1:]
	}
	if !ss.haveBase {
		ss.base, ss.haveBase = cur, true
		return out, 0, 0, false
	}
	if ss.frames > d.cfg.WarmupFrames {
		recent := centroid(ss.ring)
		cd = cosineDist(recent, ss.base)
		jd = jaccardDrift(topSet(recent, d.cfg.TopMass), topSet(ss.base, d.cfg.TopMass))
		measured = true
	}
	// The baseline always decays toward the current regime, alarmed or
	// not: a persistent shift is absorbed, the score falls, and the stream
	// re-arms for the next event.
	ss.base = ewma(ss.base, cur, d.cfg.BaselineAlpha)
	return out, cd, jd, measured
}

// alarm scores one stream's effective drift and applies the hysteresis.
func (d *Detector) alarm(ss *streamState, cd, jd float64, f crp.DriftFrame) []Event {
	score := cd / d.effC
	if s := jd / d.effJ; s > score {
		score = s
	}
	ss.score, ss.cd, ss.jd = score, cd, jd
	if ss.alarmed {
		if score < rearmFraction {
			ss.calm++
			if ss.calm >= d.cfg.CalmFrames {
				ss.alarmed, ss.calm = false, 0
			}
		} else {
			ss.calm = 0
		}
		return nil
	}
	if score < 1 {
		return nil
	}
	ss.alarmed, ss.calm = true, 0
	ss.events++
	d.m.remaps.Inc()
	return []Event{{
		Kind: KindRemap, NS: ss.ns, Group: ss.group,
		At: f.At, Frame: d.frames,
		Score: score, CentroidDist: cd, JaccardDrift: jd,
	}}
}

// centroid averages a ring of normalized svecs (merge-join, sorted order).
func centroid(ring []svec) svec {
	if len(ring) == 1 {
		return ring[0]
	}
	acc := ring[0]
	for i := 1; i < len(ring); i++ {
		// Running mean via merge: after k merges acc holds the sum; scale
		// once at the end.
		acc = addVec(acc, ring[i])
	}
	out := svec{ids: acc.ids, vals: make([]float64, len(acc.vals))}
	inv := 1 / float64(len(ring))
	for i, v := range acc.vals {
		out.vals[i] = v * inv
	}
	return out
}

func addVec(a, b svec) svec {
	out := svec{
		ids:  make([]string, 0, len(a.ids)+len(b.ids)),
		vals: make([]float64, 0, len(a.ids)+len(b.ids)),
	}
	i, j := 0, 0
	for i < len(a.ids) || j < len(b.ids) {
		switch {
		case j >= len(b.ids) || (i < len(a.ids) && a.ids[i] < b.ids[j]):
			out.ids = append(out.ids, a.ids[i])
			out.vals = append(out.vals, a.vals[i])
			i++
		case i >= len(a.ids) || b.ids[j] < a.ids[i]:
			out.ids = append(out.ids, b.ids[j])
			out.vals = append(out.vals, b.vals[j])
			j++
		default:
			out.ids = append(out.ids, a.ids[i])
			out.vals = append(out.vals, a.vals[i]+b.vals[j])
			i++
			j++
		}
	}
	return out
}

func (d *Detector) alarmedCount() int64 {
	n := int64(0)
	for _, ss := range d.streams {
		if ss.alarmed || ss.staleOn {
			n++
		}
	}
	return n
}

// Frames returns how many frames the detector has consumed.
func (d *Detector) Frames() int { return d.frames }

// Events returns how many events have fired in total.
func (d *Detector) Events() int { return d.events }

// Status summarizes the detector deterministically: streams sorted by
// (NS, Group), the last few events oldest-first.
func (d *Detector) Status() Status {
	st := Status{
		Config: d.cfg,
		Frames: d.frames,
		Events: d.events,
	}
	for _, key := range d.order {
		ss := d.streams[key]
		st.Streams = append(st.Streams, StreamStatus{
			NS: ss.ns, Group: ss.group,
			Frames: ss.frames, Support: ss.support,
			Alarmed: ss.alarmed || ss.staleOn,
			Score:   ss.score, CentroidDist: ss.cd, JaccardDrift: ss.jd,
			StaleRun: ss.staleRun, Events: ss.events,
		})
	}
	st.Recent = append(st.Recent, d.recent...)
	return st
}
