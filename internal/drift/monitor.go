package drift

import (
	"sync"
	"time"

	"repro/crp"
)

// DefaultInterval is the live monitor's frame cadence: one snapshot per CDN
// mapping epoch keeps the recent window a small multiple of the epoch
// without re-walking the store more often than its state can change.
const DefaultInterval = 30 * time.Second

// Monitor runs a Detector against a live service: every interval it taps
// Service.DriftFrame and feeds the detector. It is what crpd -drift
// constructs — Start launches the ticker goroutine, Tick exists for
// virtual-clock drivers (the scenario runner ticks it explicitly and never
// calls Start), and Status serves the drift-status op. All methods are safe
// for concurrent use.
type Monitor struct {
	mu       sync.Mutex
	det      *Detector
	svc      *crp.Service
	interval time.Duration
	now      func() time.Time
	stop     chan struct{}
	done     chan struct{}
	started  bool
}

// monitor-specific options ride on the shared options struct.
func (o *options) applyMonitorDefaults() {
	if o.interval <= 0 {
		o.interval = DefaultInterval
	}
	if o.now == nil {
		o.now = time.Now
	}
}

// WithInterval sets the live frame cadence (Start's ticker period).
func WithInterval(d time.Duration) Option {
	return func(o *options) { o.interval = d }
}

// WithClock substitutes the monitor's time source, the same seam the
// faults and peering planes expose for deterministic tests.
func WithClock(now func() time.Time) Option {
	return func(o *options) { o.now = now }
}

// NewMonitor wraps a fresh detector around svc. The monitor is inert until
// Start (or explicit Tick) is called.
func NewMonitor(svc *crp.Service, cfg Config, opts ...Option) (*Monitor, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	o.applyMonitorDefaults()
	det, err := New(cfg, opts...)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		det:      det,
		svc:      svc,
		interval: o.interval,
		now:      o.now,
	}, nil
}

// Tick captures one frame at the monitor clock's current time and returns
// any events it fired.
func (m *Monitor) Tick() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.det.ObserveFrame(m.svc.DriftFrame(m.now()))
}

// Start launches the background ticker. Idempotent; Close stops it.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started {
		return
	}
	m.started = true
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.Tick()
			}
		}
	}(m.stop, m.done)
}

// Close stops the ticker goroutine, if Start launched one.
func (m *Monitor) Close() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	m.started = false
	stop, done := m.stop, m.done
	m.mu.Unlock()
	close(stop)
	<-done
}

// Status reports the underlying detector's state.
func (m *Monitor) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.det.Status()
}
