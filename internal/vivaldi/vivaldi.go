// Package vivaldi implements the Vivaldi decentralized network-coordinate
// system (Dabek et al., SIGCOMM 2004), one of the embedding-based
// positioning approaches the CRP paper positions itself against. It is used
// by this repository's ablation benchmarks as a third selection baseline:
// coordinates are computed from pairwise latency samples by simulating a
// mass-spring system, and distances between coordinates predict RTTs.
package vivaldi

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/netsim"
)

// Default algorithm constants from the Vivaldi paper.
const (
	DefaultDim     = 3
	DefaultCe      = 0.25 // error-estimate damping
	DefaultCc      = 0.25 // coordinate timestep
	DefaultRounds  = 60   // sampling rounds per node
	initialError   = 1.0
	minSpacing     = 1e-6 // displacement for coincident coordinates
	saltVivaldi    = 0x7669_7661
	sampleInterval = 10 * time.Second
)

// Coord is a Vivaldi network coordinate: a Euclidean vector plus the
// non-Euclidean "height" that models access-link delay.
type Coord struct {
	Vec    []float64
	Height float64
}

// DistanceMs predicts the RTT between two coordinates.
func DistanceMs(a, b Coord) float64 {
	s := 0.0
	for i := range a.Vec {
		d := a.Vec[i] - b.Vec[i]
		s += d * d
	}
	return math.Sqrt(s) + a.Height + b.Height
}

// Config parameterizes an embedding run.
type Config struct {
	Topo   *netsim.Topology
	Hosts  []netsim.HostID
	Seed   int64
	Dim    int
	Ce     float64
	Cc     float64
	Rounds int
}

// System holds the embedded coordinates of a set of hosts.
type System struct {
	coords map[netsim.HostID]*state
}

type state struct {
	coord Coord
	err   float64
}

// Embed runs the spring-relaxation simulation: every round, each host
// samples the RTT to a random other host and nudges its coordinate. The
// run is deterministic in Config.Seed.
func Embed(cfg Config) (*System, error) {
	if cfg.Topo == nil {
		return nil, errors.New("vivaldi: Config.Topo is required")
	}
	if len(cfg.Hosts) < 2 {
		return nil, errors.New("vivaldi: need at least two hosts")
	}
	if cfg.Dim <= 0 {
		cfg.Dim = DefaultDim
	}
	if cfg.Ce <= 0 {
		cfg.Ce = DefaultCe
	}
	if cfg.Cc <= 0 {
		cfg.Cc = DefaultCc
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = DefaultRounds
	}
	for _, id := range cfg.Hosts {
		if cfg.Topo.Host(id) == nil {
			return nil, fmt.Errorf("vivaldi: unknown host %d", id)
		}
	}

	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), 0x766976616c6469))
	sys := &System{coords: make(map[netsim.HostID]*state, len(cfg.Hosts))}
	for _, id := range cfg.Hosts {
		vec := make([]float64, cfg.Dim)
		for i := range vec {
			vec[i] = rng.NormFloat64() * 0.1 // tiny random start breaks symmetry
		}
		sys.coords[id] = &state{coord: Coord{Vec: vec}, err: initialError}
	}

	at := time.Duration(0)
	probe := uint64(0)
	for round := 0; round < cfg.Rounds; round++ {
		for _, id := range cfg.Hosts {
			peer := cfg.Hosts[rng.IntN(len(cfg.Hosts))]
			if peer == id {
				continue
			}
			probe++
			rtt := cfg.Topo.MeasureRTTMs(id, peer, at, saltVivaldi+probe)
			sys.update(id, peer, rtt, cfg)
		}
		at += sampleInterval
	}
	return sys, nil
}

// update applies one Vivaldi sample: node i observed rtt to node j.
func (s *System) update(i, j netsim.HostID, rtt float64, cfg Config) {
	si, sj := s.coords[i], s.coords[j]
	if rtt <= 0 {
		return
	}
	predicted := DistanceMs(si.coord, sj.coord)

	// Sample confidence balances the two nodes' error estimates.
	w := si.err / (si.err + sj.err)
	relErr := math.Abs(predicted-rtt) / rtt
	si.err = relErr*cfg.Ce*w + si.err*(1-cfg.Ce*w)
	if si.err < 0.01 {
		si.err = 0.01
	}

	// Move along the unit vector from j to i, scaled by the force.
	force := cfg.Cc * w * (rtt - predicted)
	dir := make([]float64, len(si.coord.Vec))
	norm := 0.0
	for k := range dir {
		dir[k] = si.coord.Vec[k] - sj.coord.Vec[k]
		norm += dir[k] * dir[k]
	}
	norm = math.Sqrt(norm)
	if norm < minSpacing {
		// Coincident points: pick an arbitrary deterministic direction.
		dir[0], norm = 1, 1
	}
	for k := range dir {
		si.coord.Vec[k] += force * dir[k] / norm
	}
	// Height absorbs the share of the force along the access link.
	si.coord.Height += force * 0.1
	if si.coord.Height < 0 {
		si.coord.Height = 0
	}
}

// Coord returns a host's embedded coordinate.
func (s *System) Coord(id netsim.HostID) (Coord, bool) {
	st, ok := s.coords[id]
	if !ok {
		return Coord{}, false
	}
	vec := make([]float64, len(st.coord.Vec))
	copy(vec, st.coord.Vec)
	return Coord{Vec: vec, Height: st.coord.Height}, true
}

// PredictMs predicts the RTT between two embedded hosts.
func (s *System) PredictMs(a, b netsim.HostID) (float64, error) {
	ca, ok := s.coords[a]
	if !ok {
		return 0, fmt.Errorf("vivaldi: host %d not embedded", a)
	}
	cb, ok := s.coords[b]
	if !ok {
		return 0, fmt.Errorf("vivaldi: host %d not embedded", b)
	}
	return DistanceMs(ca.coord, cb.coord), nil
}

// SelectClosest returns the candidate with the smallest predicted RTT to
// client.
func (s *System) SelectClosest(client netsim.HostID, candidates []netsim.HostID) (netsim.HostID, error) {
	if len(candidates) == 0 {
		return 0, errors.New("vivaldi: no candidates")
	}
	best, bestD := netsim.HostID(-1), math.Inf(1)
	for _, c := range candidates {
		d, err := s.PredictMs(client, c)
		if err != nil {
			return 0, err
		}
		if d < bestD || (d == bestD && c < best) {
			best, bestD = c, d
		}
	}
	return best, nil
}
