package vivaldi

import (
	"math"
	"testing"

	"repro/internal/netsim"
)

func testTopology(t *testing.T) *netsim.Topology {
	t.Helper()
	p := netsim.DefaultParams()
	p.NumClients = 80
	p.NumCandidates = 30
	p.NumReplicas = 20
	topo, err := netsim.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func embedAll(t *testing.T, topo *netsim.Topology) (*System, []netsim.HostID) {
	t.Helper()
	hosts := append(topo.Clients(), topo.Candidates()...)
	sys, err := Embed(Config{Topo: topo, Hosts: hosts, Seed: 1})
	if err != nil {
		t.Fatalf("Embed: %v", err)
	}
	return sys, hosts
}

func TestEmbedValidation(t *testing.T) {
	topo := testTopology(t)
	if _, err := Embed(Config{Hosts: topo.Clients()}); err == nil {
		t.Error("Embed without topo should fail")
	}
	if _, err := Embed(Config{Topo: topo, Hosts: topo.Clients()[:1]}); err == nil {
		t.Error("Embed with one host should fail")
	}
	if _, err := Embed(Config{Topo: topo, Hosts: []netsim.HostID{-1, 2}}); err == nil {
		t.Error("Embed with unknown host should fail")
	}
}

func TestDistanceMsSymmetricNonNegative(t *testing.T) {
	a := Coord{Vec: []float64{1, 2, 3}, Height: 2}
	b := Coord{Vec: []float64{4, 6, 3}, Height: 1}
	if got, want := DistanceMs(a, b), 8.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("DistanceMs = %v, want %v (5 + heights 3)", got, want)
	}
	if DistanceMs(a, b) != DistanceMs(b, a) {
		t.Error("DistanceMs not symmetric")
	}
	if DistanceMs(a, a) != 2*a.Height {
		t.Error("self distance should be twice the height")
	}
}

func TestEmbedPredictionsCorrelateWithTruth(t *testing.T) {
	topo := testTopology(t)
	sys, hosts := embedAll(t, topo)

	// Rank correlation proxy: for random triples (a, b, c), the coordinate
	// distances should order (b, c) relative to a the same way true RTTs do
	// clearly more often than chance.
	correct, total := 0, 0
	for i := 0; i+2 < len(hosts); i += 3 {
		a, b, c := hosts[i], hosts[i+1], hosts[i+2]
		tb, tc := topo.BaseRTTMs(a, b), topo.BaseRTTMs(a, c)
		if math.Abs(tb-tc) < 20 {
			continue // too close to call, skip ambiguous triples
		}
		pb, err := sys.PredictMs(a, b)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := sys.PredictMs(a, c)
		if err != nil {
			t.Fatal(err)
		}
		if (tb < tc) == (pb < pc) {
			correct++
		}
		total++
	}
	if total == 0 {
		t.Fatal("no informative triples")
	}
	if frac := float64(correct) / float64(total); frac < 0.75 {
		t.Errorf("embedding ordered only %.0f%% of clear triples correctly", frac*100)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	topo := testTopology(t)
	hosts := topo.Clients()[:20]
	s1, err := Embed(Config{Topo: topo, Hosts: hosts, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Embed(Config{Topo: topo, Hosts: hosts, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range hosts {
		c1, _ := s1.Coord(id)
		c2, _ := s2.Coord(id)
		for k := range c1.Vec {
			if c1.Vec[k] != c2.Vec[k] {
				t.Fatalf("host %d coordinate differs across identical runs", id)
			}
		}
	}
}

func TestCoordCopies(t *testing.T) {
	topo := testTopology(t)
	sys, hosts := embedAll(t, topo)
	c, ok := sys.Coord(hosts[0])
	if !ok {
		t.Fatal("Coord not found")
	}
	c.Vec[0] = 1e9
	c2, _ := sys.Coord(hosts[0])
	if c2.Vec[0] == 1e9 {
		t.Error("Coord exposes internal storage")
	}
	if _, ok := sys.Coord(netsim.HostID(-1)); ok {
		t.Error("Coord of unknown host reported ok")
	}
}

func TestPredictErrors(t *testing.T) {
	topo := testTopology(t)
	sys, hosts := embedAll(t, topo)
	if _, err := sys.PredictMs(hosts[0], netsim.HostID(-1)); err == nil {
		t.Error("PredictMs with unembedded host should fail")
	}
	if _, err := sys.PredictMs(netsim.HostID(-1), hosts[0]); err == nil {
		t.Error("PredictMs with unembedded host should fail")
	}
}

func TestSelectClosestBeatsRandom(t *testing.T) {
	topo := testTopology(t)
	sys, _ := embedAll(t, topo)
	candidates := topo.Candidates()

	var selSum, randSum float64
	clients := topo.Clients()[:40]
	for i, c := range clients {
		pick, err := sys.SelectClosest(c, candidates)
		if err != nil {
			t.Fatal(err)
		}
		selSum += topo.BaseRTTMs(c, pick)
		randSum += topo.BaseRTTMs(c, candidates[(i*7)%len(candidates)])
	}
	if selSum >= randSum {
		t.Errorf("vivaldi selection (avg %.1f) no better than random (avg %.1f)",
			selSum/float64(len(clients)), randSum/float64(len(clients)))
	}
	if _, err := sys.SelectClosest(clients[0], nil); err == nil {
		t.Error("SelectClosest with no candidates should fail")
	}
}
