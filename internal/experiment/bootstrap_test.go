package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestRunBootstrapShape(t *testing.T) {
	s := testScenario(t)
	points, err := s.RunBootstrap(BootstrapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Fatalf("points = %d, want 7 defaults", len(points))
	}
	// Quality improves (rank falls) as probes accumulate: the 10-probe
	// point must be clearly better than the 1-probe point, and close to the
	// 30-probe point — §VI's "10 probes suffice, ~100-minute bootstrap".
	byProbes := map[int]BootstrapPoint{}
	for _, p := range points {
		byProbes[p.Probes] = p
		if p.FracWithSignal <= 0 {
			t.Errorf("no clients with signal at %d probes", p.Probes)
		}
	}
	if byProbes[10].MeanRank > byProbes[1].MeanRank {
		t.Errorf("10-probe rank %.1f worse than 1-probe %.1f",
			byProbes[10].MeanRank, byProbes[1].MeanRank)
	}
	if byProbes[10].MeanRank > byProbes[30].MeanRank*1.5+2 {
		t.Errorf("10-probe rank %.1f not close to 30-probe %.1f",
			byProbes[10].MeanRank, byProbes[30].MeanRank)
	}
}

func TestRunBootstrapValidation(t *testing.T) {
	s := testScenario(t)
	if _, err := s.RunBootstrap(BootstrapConfig{ProbeCounts: []int{0}}); err == nil {
		t.Error("zero probe count should fail")
	}
	if _, err := s.RunBootstrap(BootstrapConfig{ProbeCounts: []int{-3}}); err == nil {
		t.Error("negative probe count should fail")
	}
}

func TestRenderBootstrap(t *testing.T) {
	s := testScenario(t)
	points, err := s.RunBootstrap(BootstrapConfig{ProbeCounts: []int{1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderBootstrap(points, 10*time.Minute)
	for _, want := range []string{"bootstrap", "probes", "50m0s", "mean rank"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
