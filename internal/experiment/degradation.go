package experiment

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/crp"
	"repro/internal/faults"
	"repro/internal/netsim"
)

// The degradation suite answers the question the benign experiments never
// ask: when the substrate misbehaves — probes time out, the CDN's map
// freezes across TTL windows, resolvers churn, a region storms — does CRP
// positioning degrade gracefully, or silently mis-cluster? It runs the
// same closest-node and SMF-clustering evaluation twice over identically
// generated scenarios, once clean and once with a fault plane attached,
// and reports both sides so tests can assert declared envelopes. Both runs
// are bit-reproducible: the topology, the CDN and the fault plane all
// derive every decision from seeds.

// DegradationConfig parameterizes one degradation run.
type DegradationConfig struct {
	// Params sizes the scenario (reduced scale is fine: the suite compares
	// faulted vs clean under identical conditions rather than reproducing
	// paper numbers). MeridianFailures is forced off — Meridian is not
	// under test here.
	Params ScenarioParams
	// Schedule drives probe collection. Zero value: 12 probes at 10-minute
	// intervals.
	Schedule ProbeSchedule
	// Faults is the fault scenario applied to the faulted run.
	Faults faults.Scenario
	// TopK is the recommendation depth scored (default 3).
	TopK int
	// Threshold is the SMF clustering threshold (default crp.DefaultThreshold).
	Threshold float64
}

func (c *DegradationConfig) setDefaults() {
	if c.Params.NumClients == 0 && c.Params.NumCandidates == 0 && c.Params.NumReplicas == 0 {
		c.Params = ScenarioParams{Seed: 1, NumClients: 40, NumCandidates: 60, NumReplicas: 150}
	}
	c.Params.MeridianFailures = false
	if c.Schedule.Interval == 0 {
		c.Schedule.Interval = 10 * time.Minute
	}
	if c.Schedule.Probes == 0 {
		c.Schedule.Probes = 12
	}
	if c.TopK <= 0 {
		c.TopK = 3
	}
	if c.Threshold == 0 {
		c.Threshold = crp.DefaultThreshold
	}
}

// DegradationMetrics is one side (clean or faulted) of a degradation run.
type DegradationMetrics struct {
	Clients int `json:"clients"`
	// MeanTop1Rank is the mean 0-based rank of CRP's top recommendation in
	// the true RTT ordering of all candidates (0 = optimal).
	MeanTop1Rank float64 `json:"meanTop1Rank"`
	// MeanTopKRTTMs / MeanOptimalRTTMs compare achieved against optimal
	// latency.
	MeanTopKRTTMs    float64 `json:"meanTopKRTTMs"`
	MeanOptimalRTTMs float64 `json:"meanOptimalRTTMs"`
	// FracNoSignal is the fraction of clients whose ratio maps carried no
	// similarity signal at all (every probe lost, or history gone stale).
	FracNoSignal float64 `json:"fracNoSignal"`
	// Clusters / GoodClusterFrac summarize SMF clustering of the candidate
	// population: the fraction of size >= 2 clusters whose intercluster
	// distance exceeds their intracluster distance (the paper's "good"
	// region).
	Clusters        int     `json:"clusters"`
	GoodClusterFrac float64 `json:"goodClusterFrac"`
}

// DegradationOutcome is a complete clean-vs-faulted comparison.
type DegradationOutcome struct {
	Clean   DegradationMetrics `json:"clean"`
	Faulted DegradationMetrics `json:"faulted"`
	// Activations counts, per fault kind, how often the plane actually
	// fired during the faulted run. A test asserting a fault's effect must
	// first assert its activation count is nonzero.
	Activations map[faults.Kind]uint64 `json:"activations"`
}

// Envelope declares how much degradation a fault scenario is allowed to
// cause. Zero-valued fields are not checked.
type Envelope struct {
	// MaxTop1RankSlack bounds the faulted mean top-1 rank to the clean
	// value plus this many ranks.
	MaxTop1RankSlack float64
	// MaxNoSignalFrac bounds the faulted fraction of signal-less clients.
	MaxNoSignalFrac float64
	// MaxGoodClusterDrop bounds the absolute drop in good-cluster fraction
	// versus the clean run.
	MaxGoodClusterDrop float64
}

// Check asserts the outcome stays within the envelope.
func (o *DegradationOutcome) Check(env Envelope) error {
	if env.MaxTop1RankSlack > 0 {
		if o.Faulted.MeanTop1Rank > o.Clean.MeanTop1Rank+env.MaxTop1RankSlack {
			return fmt.Errorf("experiment: mean top-1 rank degraded %0.2f -> %0.2f, beyond slack %0.2f",
				o.Clean.MeanTop1Rank, o.Faulted.MeanTop1Rank, env.MaxTop1RankSlack)
		}
	}
	if env.MaxNoSignalFrac > 0 {
		if o.Faulted.FracNoSignal > env.MaxNoSignalFrac {
			return fmt.Errorf("experiment: %0.3f of clients lost all signal, beyond %0.3f",
				o.Faulted.FracNoSignal, env.MaxNoSignalFrac)
		}
	}
	if env.MaxGoodClusterDrop > 0 {
		if drop := o.Clean.GoodClusterFrac - o.Faulted.GoodClusterFrac; drop > env.MaxGoodClusterDrop {
			return fmt.Errorf("experiment: good-cluster fraction dropped %0.3f -> %0.3f, beyond %0.3f",
				o.Clean.GoodClusterFrac, o.Faulted.GoodClusterFrac, env.MaxGoodClusterDrop)
		}
	}
	return nil
}

// RunDegradation builds two identical scenarios from cfg.Params, attaches
// the fault plane to the second, evaluates closest-node accuracy and SMF
// cluster quality on both, and returns the comparison.
func RunDegradation(cfg DegradationConfig) (*DegradationOutcome, error) {
	cfg.setDefaults()
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}

	clean, err := NewScenario(cfg.Params)
	if err != nil {
		return nil, err
	}
	cleanM, err := evalPositioning(clean, cfg)
	if err != nil {
		return nil, fmt.Errorf("clean run: %w", err)
	}

	faulted, err := NewScenario(cfg.Params)
	if err != nil {
		return nil, err
	}
	plane, err := faults.New(faulted.Topo, cfg.Faults)
	if err != nil {
		return nil, err
	}
	faulted.AttachFaults(plane)
	faultedM, err := evalPositioning(faulted, cfg)
	if err != nil {
		return nil, fmt.Errorf("faulted run: %w", err)
	}

	return &DegradationOutcome{
		Clean:       cleanM,
		Faulted:     faultedM,
		Activations: plane.Activations(),
	}, nil
}

// evalPositioning runs the reduced closest-node + clustering evaluation on
// one scenario. Evaluation-side ground truth must not see the fault
// plane's latency perturbations (we score against the network the paper's
// King measurements would see, not against the storm), so the perturbation
// is detached around truth RTT evaluation.
func evalPositioning(s *Scenario, cfg DegradationConfig) (DegradationMetrics, error) {
	var m DegradationMetrics
	evalAt := cfg.Schedule.End() + time.Minute

	// Collection happens with the fault plane fully attached: candidate
	// and client histories see the faulted CDN, resolvers and network.
	candMaps, err := s.candidateMaps(cfg.Schedule)
	if err != nil {
		return m, err
	}
	m.Clients = len(s.Clients)
	if m.Clients == 0 {
		return m, errors.New("experiment: scenario has no clients")
	}
	clientMaps := make(map[netsim.HostID]crp.RatioMap, m.Clients)
	for _, client := range s.Clients {
		tr, err := s.CollectTracker(client, cfg.Schedule)
		if err != nil {
			return m, err
		}
		clientMaps[client] = tr.RatioMap()
	}

	// Scoring happens against ground truth with the latency perturbation
	// detached: clean and faulted runs share the same yardstick (the calm
	// network the paper's King measurements would see), so the comparison
	// isolates what the faults did to CRP's *information*, not to the
	// scoring ruler.
	truth := func(a, b netsim.HostID) float64 {
		return s.TruthRTTMs(a, b, evalAt)
	}
	s.Topo.SetPerturb(nil)
	defer func() {
		if s.faults != nil {
			s.Topo.SetPerturb(s.faults)
		}
	}()

	var noSignal int
	for _, client := range s.Clients {
		ranked := crp.RankBySimilarity(clientMaps[client], candMaps)
		if len(ranked) == 0 {
			return m, fmt.Errorf("experiment: no candidates ranked for client %d", client)
		}
		if ranked[0].Similarity == 0 {
			noSignal++
		}

		// True ordering of candidates for this client.
		order := make([]netsim.HostID, len(s.Candidates))
		copy(order, s.Candidates)
		rtts := make(map[netsim.HostID]float64, len(order))
		for _, c := range order {
			rtts[c] = truth(client, c)
		}
		sort.Slice(order, func(i, j int) bool {
			if rtts[order[i]] != rtts[order[j]] {
				return rtts[order[i]] < rtts[order[j]]
			}
			return order[i] < order[j]
		})

		top1, ok := s.HostOf(ranked[0].Node)
		if !ok {
			return m, fmt.Errorf("experiment: unknown candidate %q", ranked[0].Node)
		}
		for i, c := range order {
			if c == top1 {
				m.MeanTop1Rank += float64(i)
				break
			}
		}
		k := cfg.TopK
		if k > len(ranked) {
			k = len(ranked)
		}
		sum := 0.0
		for i := 0; i < k; i++ {
			id, ok := s.HostOf(ranked[i].Node)
			if !ok {
				return m, fmt.Errorf("experiment: unknown candidate %q", ranked[i].Node)
			}
			sum += rtts[id]
		}
		m.MeanTopKRTTMs += sum / float64(k)
		m.MeanOptimalRTTMs += rtts[order[0]]
	}
	n := float64(m.Clients)
	m.MeanTop1Rank /= n
	m.MeanTopKRTTMs /= n
	m.MeanOptimalRTTMs /= n
	m.FracNoSignal = float64(noSignal) / n

	// SMF clustering of the candidate population, scored against truth.
	nodes := make([]crp.Node, 0, len(candMaps))
	for id, rm := range candMaps {
		nodes = append(nodes, crp.Node{ID: id, Map: rm})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	clusters, err := crp.ClusterSMF(nodes, crp.ClusterConfig{
		Threshold:  cfg.Threshold,
		SecondPass: true,
		Seed:       cfg.Params.Seed,
	})
	if err != nil {
		return m, err
	}
	dist := func(a, b crp.NodeID) float64 {
		ha, ok := s.HostOf(a)
		if !ok {
			return 0
		}
		hb, ok := s.HostOf(b)
		if !ok {
			return 0
		}
		return truth(ha, hb)
	}
	stats, err := crp.EvaluateClusters(clusters, dist)
	if err != nil {
		return m, err
	}
	m.Clusters = len(stats)
	if len(stats) > 0 {
		good := 0
		for _, st := range stats {
			if st.Good() {
				good++
			}
		}
		m.GoodClusterFrac = float64(good) / float64(len(stats))
	}
	return m, nil
}
