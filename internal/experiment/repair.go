package experiment

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"time"

	"repro/crp"
	"repro/internal/netsim"
)

// Overlay path repair, the paper's §IV-B second query type: "when a node
// along a path goes down, one can use knowledge of clusters to quickly
// repair the path and maintain its quality by using another node in the
// same cluster." The experiment builds good one-relay overlay paths, fails
// the relay, and compares repair policies: CRP same-cluster replacement, a
// random replacement, and the oracle best replacement.

// RepairConfig parameterizes the experiment.
type RepairConfig struct {
	// NumPaths is how many overlay paths to build and repair (default 200).
	NumPaths int
	// Schedule drives redirection collection (defaults as elsewhere).
	Schedule ProbeSchedule
	// Threshold is the SMF clustering threshold (default 0.1).
	Threshold float64
}

// RepairResult is one path's latencies (ms) under each policy.
type RepairResult struct {
	Src, Dst, Relay netsim.HostID
	// Before is the original relayed path latency; Direct the relay-free
	// path for reference.
	Before float64
	Direct float64
	// CRP, Random and Oracle are post-repair path latencies. CRPFound
	// reports whether the failed relay had any cluster-mate to promote;
	// when false, CRP falls back to the random replacement.
	CRP      float64
	CRPFound bool
	Random   float64
	Oracle   float64
}

// RepairOutcome aggregates the experiment.
type RepairOutcome struct {
	Results []RepairResult
	// Mean path latencies.
	MeanBefore, MeanCRP, MeanRandom, MeanOracle float64
	// FracCRPFound is the fraction of failed relays with a cluster-mate.
	FracCRPFound float64
	// FracCRPNearOracle is the fraction of CRP repairs within 20% (plus a
	// small absolute allowance) of the best possible repair.
	FracCRPNearOracle float64
}

// RunPathRepair builds NumPaths quality overlay paths among the clients,
// fails each path's relay and repairs it under each policy.
func (s *Scenario) RunPathRepair(cfg RepairConfig) (*RepairOutcome, error) {
	if cfg.NumPaths <= 0 {
		cfg.NumPaths = 200
	}
	if cfg.Schedule.Interval == 0 {
		cfg.Schedule.Interval = 10 * time.Minute
	}
	if cfg.Schedule.Probes == 0 {
		cfg.Schedule.Probes = 36
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = crp.DefaultThreshold
	}
	if len(s.Clients) < 4 {
		return nil, fmt.Errorf("experiment: need at least 4 clients, have %d", len(s.Clients))
	}

	// Cluster the client population on its redirection behaviour.
	maps, err := s.CollectRatioMaps(s.Clients, cfg.Schedule)
	if err != nil {
		return nil, err
	}
	nodes := make([]crp.Node, 0, len(s.Clients))
	for _, id := range s.Clients {
		nodes = append(nodes, crp.Node{ID: s.NodeID(id), Map: maps[id]})
	}
	clusters, err := crp.ClusterSMF(nodes, crp.ClusterConfig{
		Threshold: cfg.Threshold, SecondPass: true, Seed: s.Params.Seed,
	})
	if err != nil {
		return nil, err
	}
	clusterOf := make(map[netsim.HostID][]netsim.HostID)
	for _, c := range clusters {
		members := make([]netsim.HostID, 0, len(c.Members))
		for _, m := range c.Members {
			if id, ok := s.HostOf(m); ok {
				members = append(members, id)
			}
		}
		for _, id := range members {
			clusterOf[id] = members
		}
	}

	evalAt := cfg.Schedule.End() + time.Minute
	pathVia := func(src, relay, dst netsim.HostID) float64 {
		return s.Topo.RTTMs(src, relay, evalAt) + s.Topo.RTTMs(relay, dst, evalAt)
	}

	rng := rand.New(rand.NewPCG(uint64(s.Params.Seed), 0x7265_7061_6972))
	outcome := &RepairOutcome{}
	found, near := 0, 0
	for len(outcome.Results) < cfg.NumPaths {
		src := s.Clients[rng.IntN(len(s.Clients))]
		dst := s.Clients[rng.IntN(len(s.Clients))]
		if src == dst {
			continue
		}
		// The path's relay is the best intermediate node.
		relay, best := netsim.HostID(-1), math.Inf(1)
		for _, x := range s.Clients {
			if x == src || x == dst {
				continue
			}
			if d := pathVia(src, x, dst); d < best {
				relay, best = x, d
			}
		}
		if relay < 0 {
			continue
		}
		res := RepairResult{
			Src: src, Dst: dst, Relay: relay,
			Before: best,
			Direct: s.Topo.RTTMs(src, dst, evalAt),
		}

		// Random replacement.
		for {
			x := s.Clients[rng.IntN(len(s.Clients))]
			if x != src && x != dst && x != relay {
				res.Random = pathVia(src, x, dst)
				break
			}
		}

		// Oracle replacement.
		oracle := math.Inf(1)
		for _, x := range s.Clients {
			if x == src || x == dst || x == relay {
				continue
			}
			if d := pathVia(src, x, dst); d < oracle {
				oracle = d
			}
		}
		res.Oracle = oracle

		// CRP repair: the failed relay's most-similar cluster-mate.
		res.CRP = res.Random
		relayMap := maps[relay]
		bestSim := -1.0
		for _, mate := range clusterOf[relay] {
			if mate == relay || mate == src || mate == dst {
				continue
			}
			if sim := crp.CosineSimilarity(relayMap, maps[mate]); sim > bestSim {
				bestSim = sim
				res.CRP = pathVia(src, mate, dst)
				res.CRPFound = true
			}
		}
		if res.CRPFound {
			found++
			if res.CRP <= res.Oracle*1.2+5 {
				near++
			}
		}

		outcome.Results = append(outcome.Results, res)
		outcome.MeanBefore += res.Before
		outcome.MeanCRP += res.CRP
		outcome.MeanRandom += res.Random
		outcome.MeanOracle += res.Oracle
	}
	n := float64(len(outcome.Results))
	outcome.MeanBefore /= n
	outcome.MeanCRP /= n
	outcome.MeanRandom /= n
	outcome.MeanOracle /= n
	outcome.FracCRPFound = float64(found) / n
	if found > 0 {
		outcome.FracCRPNearOracle = float64(near) / float64(found)
	}
	return outcome, nil
}

// RenderPathRepair prints the repair experiment.
func RenderPathRepair(o *RepairOutcome) string {
	var sb strings.Builder
	sb.WriteString("§IV-B — overlay path repair after relay failure\n")
	fmt.Fprintf(&sb, "%-24s %14s\n", "policy", "mean path (ms)")
	fmt.Fprintf(&sb, "%-24s %14.1f\n", "original (pre-failure)", o.MeanBefore)
	fmt.Fprintf(&sb, "%-24s %14.1f\n", "oracle repair", o.MeanOracle)
	fmt.Fprintf(&sb, "%-24s %14.1f\n", "crp same-cluster repair", o.MeanCRP)
	fmt.Fprintf(&sb, "%-24s %14.1f\n", "random repair", o.MeanRandom)
	fmt.Fprintf(&sb, "paths: %d   relays with a cluster-mate: %.0f%%   repairs within 20%% of the oracle: %.0f%%\n",
		len(o.Results), 100*o.FracCRPFound, 100*o.FracCRPNearOracle)
	return sb.String()
}
