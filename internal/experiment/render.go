package experiment

import (
	"fmt"
	"strings"
)

// Text renderers: each experiment prints the same rows/series the paper's
// figure or table reports. Sorted per-client curves are summarized at
// fixed quantiles so runs are comparable against the published plots.

var seriesQuantiles = []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1}

// quantile reads a quantile from an ascending-sorted series.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := q * float64(len(sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func renderSeriesTable(sb *strings.Builder, header string, rows []struct {
	label  string
	series []float64
}) {
	fmt.Fprintf(sb, "%-22s", header)
	for _, q := range seriesQuantiles {
		fmt.Fprintf(sb, "%8s", fmt.Sprintf("p%g", q*100))
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(sb, "%-22s", r.label)
		for _, q := range seriesQuantiles {
			fmt.Fprintf(sb, "%8.1f", quantile(r.series, q))
		}
		fmt.Fprintf(sb, "   (n=%d)\n", len(r.series))
	}
}

// RenderFig4 prints the average-latency comparison of Fig. 4 plus the §V-A
// headline statistics.
func RenderFig4(o *ClosestNodeOutcome) string {
	var sb strings.Builder
	sb.WriteString("Fig. 4 — closest-node selection: latency to selected server (ms), per-client curves\n")
	renderSeriesTable(&sb, "series \\ quantile", []struct {
		label  string
		series []float64
	}{
		{"Meridian", o.SortedSeries(func(r ClientResult) float64 { return r.Meridian })},
		{"CRP Top1", o.SortedSeries(func(r ClientResult) float64 { return r.CRPTop1 })},
		{fmt.Sprintf("CRP Top%d", o.Config.TopK), o.SortedSeries(func(r ClientResult) float64 { return r.CRPTopK })},
		{"Optimal", o.SortedSeries(func(r ClientResult) float64 { return r.Optimal })},
	})
	st := o.Stats()
	fmt.Fprintf(&sb, "clients: %d   CRP Top%d within 7 ms of Meridian: %.0f%%   CRP beats Meridian: %.0f%%   Meridian ≥ 2x CRP: %.0f%%   no CRP signal: %.1f%%\n",
		st.Clients, o.Config.TopK,
		100*st.FracTopKNearMeridian, 100*st.FracCRPBeatsMeridian,
		100*st.FracMeridianTwiceCRP, 100*st.FracNoSignal)
	fmt.Fprintf(&sb, "mean latency (ms): optimal %.1f   crp-top%d %.1f   crp-top1 %.1f   meridian %.1f\n",
		st.MeanOptimal, o.Config.TopK, st.MeanCRPTopK, st.MeanCRPTop1, st.MeanMeridian)
	return sb.String()
}

// RenderFig5 prints the relative-error curves of Fig. 5 (selected minus
// optimal RTT).
func RenderFig5(o *ClosestNodeOutcome) string {
	var sb strings.Builder
	sb.WriteString("Fig. 5 — relative error vs optimal selection (ms), per-client curves\n")
	renderSeriesTable(&sb, "series \\ quantile", []struct {
		label  string
		series []float64
	}{
		{"Meridian", o.SortedSeries(func(r ClientResult) float64 { return r.Meridian - r.Optimal })},
		{"CRP Top1", o.SortedSeries(func(r ClientResult) float64 { return r.CRPTop1 - r.Optimal })},
		{fmt.Sprintf("CRP Top%d", o.Config.TopK), o.SortedSeries(func(r ClientResult) float64 { return r.CRPTopK - r.Optimal })},
	})
	return sb.String()
}

// RenderTable1 prints the clustering summary exactly in Table I's shape.
func RenderTable1(o *ClusteringOutcome) string {
	var sb strings.Builder
	sb.WriteString("Table I — summary statistics for clusters formed by CRP and ASN-based clustering\n")
	fmt.Fprintf(&sb, "%-14s %10s %10s %10s   [mean, median, max] cluster size\n",
		"Technique", "# nodes", "% nodes", "# clusters")
	row := func(r AlgorithmResult) {
		s := r.Summary
		fmt.Fprintf(&sb, "%-14s %10d %9.0f%% %10d   [%.2f, %.4g, %d]\n",
			r.Label, s.NodesClustered, 100*s.FracClustered, s.NumClusters,
			s.MeanSize, s.MedianSize, s.MaxSize)
	}
	for _, r := range o.CRPRows {
		row(r)
	}
	row(o.ASN)
	return sb.String()
}

// RenderFig6 prints the intra/inter-cluster distance CDF of Fig. 6 for the
// focus threshold.
func RenderFig6(o *ClusteringOutcome) string {
	focus := o.CRPRows[o.Focus]
	intra, inter := focus.IntraCDF()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 6 — CDF of intra-cluster distances, %s, clusters with diameter ≤ %g ms\n",
		focus.Label, o.Config.MaxDiameterMs)
	fmt.Fprintf(&sb, "%-10s %12s %12s %8s\n", "cluster", "intra (ms)", "inter (ms)", "good")
	for i := range intra {
		good := ""
		if inter[i] > intra[i] {
			good = "yes"
		}
		fmt.Fprintf(&sb, "%-10d %12.1f %12.1f %8s\n", i+1, intra[i], inter[i], good)
	}
	fmt.Fprintf(&sb, "good clusters (inter > intra): %.0f%% of %d evaluated\n",
		100*focus.GoodFraction(), len(focus.Stats))
	return sb.String()
}

// RenderFig7 prints the good-cluster bucket counts of Fig. 7.
func RenderFig7(o *ClusteringOutcome) string {
	focus := o.CRPRows[o.Focus]
	var sb strings.Builder
	sb.WriteString("Fig. 7 — number of good clusters per diameter bucket\n")
	fmt.Fprintf(&sb, "%-16s %10s %10s\n", "algorithm", "0-25 ms", "25-75 ms")
	fmt.Fprintf(&sb, "%-16s %10d %10d\n", "CRP", focus.GoodBuckets[0], focus.GoodBuckets[1])
	fmt.Fprintf(&sb, "%-16s %10d %10d\n", "ASN", o.ASN.GoodBuckets[0], o.ASN.GoodBuckets[1])
	return sb.String()
}

// RenderRankSeries prints Fig. 8 or Fig. 9: average-rank curves per
// configuration.
func RenderRankSeries(title string, series []RankSeries) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	rows := make([]struct {
		label  string
		series []float64
	}, len(series))
	for i, s := range series {
		rows[i].label = s.Label
		rows[i].series = s.AvgRanks
	}
	renderSeriesTable(&sb, "series \\ quantile", rows)
	for _, s := range series {
		fmt.Fprintf(&sb, "%-22s mean rank %.1f, %d/%d clients with signal\n",
			s.Label, s.Mean(), s.ClientsWithSignal, s.ClientsTotal)
	}
	return sb.String()
}

// RenderSimilarityAblation prints the similarity-metric ablation.
func RenderSimilarityAblation(rows []SimilarityAblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — similarity metric for closest-node selection\n")
	fmt.Fprintf(&sb, "%-16s %14s %12s\n", "metric", "mean RTT (ms)", "mean rank")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %14.1f %12.1f\n", r.Label, r.MeanRTT, r.MeanRank)
	}
	return sb.String()
}

// RenderCoverageSweep prints the CDN-coverage ablation.
func RenderCoverageSweep(points []CoveragePoint) string {
	var sb strings.Builder
	sb.WriteString("Ablation — CRP quality vs CDN deployment size\n")
	fmt.Fprintf(&sb, "%10s %16s %14s %12s\n", "replicas", "crp topK (ms)", "optimal (ms)", "no signal")
	for _, p := range points {
		fmt.Fprintf(&sb, "%10d %16.1f %14.1f %11.1f%%\n",
			p.Replicas, p.MeanCRPTopK, p.MeanOptimal, 100*p.FracNoSignal)
	}
	return sb.String()
}

// RenderCenterAblation prints the SMF-vs-random-centers ablation.
func RenderCenterAblation(rows []CenterAblationRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — SMF centers vs random centers\n")
	fmt.Fprintf(&sb, "%-16s %10s %10s %12s %12s\n", "policy", "# nodes", "# clusters", "good 0-25", "good 25-75")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %10d %10d %12d %12d\n",
			r.Label, r.Summary.NodesClustered, r.Summary.NumClusters,
			r.GoodBuckets[0], r.GoodBuckets[1])
	}
	return sb.String()
}

// RenderBaselineComparison prints the all-baselines comparison.
func RenderBaselineComparison(rows []BaselineRow) string {
	var sb strings.Builder
	sb.WriteString("Ablation — selection baselines, mean latency to selected server\n")
	fmt.Fprintf(&sb, "%-16s %14s\n", "system", "mean RTT (ms)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %14.1f\n", r.Label, r.MeanRTT)
	}
	return sb.String()
}
