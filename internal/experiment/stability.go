package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/crp"
)

// Cluster stability: applications act on clusters over time (peer
// selection, path repair), so cluster assignments computed from one day's
// redirections must still mostly hold the next day despite mapping churn,
// load drift and congestion. This extension experiment quantifies that with
// the pairwise agreement (Rand-index style) between clusterings computed
// from disjoint observation windows.

// StabilityConfig parameterizes the study.
type StabilityConfig struct {
	// NumNodes is how many clients to cluster (default 120).
	NumNodes int
	// Window is each observation window's length (default 1 day) at a
	// 10-minute probe interval; the second window starts Gap after the
	// first ends (default 1 day later).
	Window time.Duration
	Gap    time.Duration
	// Threshold is the SMF threshold (default 0.1).
	Threshold float64
}

// StabilityOutcome reports agreement between the two clusterings.
type StabilityOutcome struct {
	// PairAgreement is the fraction of node pairs on which the two
	// clusterings agree (same-cluster both times, or separated both times).
	PairAgreement float64
	// SameClusterRetained is the fraction of day-1 same-cluster pairs that
	// are still clustered together on day 2.
	SameClusterRetained float64
	// ClustersDay1 and ClustersDay2 count multi-node clusters.
	ClustersDay1, ClustersDay2 int
}

// RunClusterStability clusters the same nodes from two disjoint observation
// windows and measures assignment agreement.
func (s *Scenario) RunClusterStability(cfg StabilityConfig) (*StabilityOutcome, error) {
	if cfg.NumNodes <= 0 {
		cfg.NumNodes = 120
	}
	if cfg.NumNodes > len(s.Clients) {
		return nil, fmt.Errorf("experiment: %d nodes requested, only %d clients", cfg.NumNodes, len(s.Clients))
	}
	if cfg.Window <= 0 {
		cfg.Window = 24 * time.Hour
	}
	if cfg.Gap <= 0 {
		cfg.Gap = 24 * time.Hour
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = crp.DefaultThreshold
	}
	nodes := s.Clients[:cfg.NumNodes]
	interval := 10 * time.Minute
	probes := int(cfg.Window / interval)
	if probes < 1 {
		probes = 1
	}

	clusterAt := func(start time.Duration) (map[crp.NodeID]int, int, error) {
		maps, err := s.CollectRatioMaps(nodes, ProbeSchedule{
			Start: start, Interval: interval, Probes: probes,
		})
		if err != nil {
			return nil, 0, err
		}
		crpNodes := make([]crp.Node, 0, len(nodes))
		for _, id := range nodes {
			crpNodes = append(crpNodes, crp.Node{ID: s.NodeID(id), Map: maps[id]})
		}
		clusters, err := crp.ClusterSMF(crpNodes, crp.ClusterConfig{
			Threshold: cfg.Threshold, SecondPass: true, Seed: s.Params.Seed,
		})
		if err != nil {
			return nil, 0, err
		}
		assign := make(map[crp.NodeID]int, len(nodes))
		multi := 0
		for ci, c := range clusters {
			if c.Size() >= 2 {
				multi++
			}
			for _, m := range c.Members {
				assign[m] = ci
			}
		}
		return assign, multi, nil
	}

	day1, n1, err := clusterAt(0)
	if err != nil {
		return nil, err
	}
	day2, n2, err := clusterAt(cfg.Window + cfg.Gap)
	if err != nil {
		return nil, err
	}

	ids := make([]crp.NodeID, len(nodes))
	for i, id := range nodes {
		ids[i] = s.NodeID(id)
	}
	agree, total, togetherBoth, togetherDay1 := 0, 0, 0, 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			same1 := day1[ids[i]] == day1[ids[j]]
			same2 := day2[ids[i]] == day2[ids[j]]
			total++
			if same1 == same2 {
				agree++
			}
			if same1 {
				togetherDay1++
				if same2 {
					togetherBoth++
				}
			}
		}
	}
	out := &StabilityOutcome{ClustersDay1: n1, ClustersDay2: n2}
	if total > 0 {
		out.PairAgreement = float64(agree) / float64(total)
	}
	if togetherDay1 > 0 {
		out.SameClusterRetained = float64(togetherBoth) / float64(togetherDay1)
	}
	return out, nil
}

// RenderClusterStability prints the stability study.
func RenderClusterStability(o *StabilityOutcome) string {
	var sb strings.Builder
	sb.WriteString("Ablation — cluster stability across observation windows\n")
	fmt.Fprintf(&sb, "multi-node clusters: day 1 %d, day 2 %d\n", o.ClustersDay1, o.ClustersDay2)
	fmt.Fprintf(&sb, "pairwise agreement: %.0f%%   same-cluster pairs retained: %.0f%%\n",
		100*o.PairAgreement, 100*o.SameClusterRetained)
	return sb.String()
}
