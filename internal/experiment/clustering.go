package experiment

import (
	"fmt"
	"sort"
	"time"

	"repro/crp"
	"repro/internal/asn"
	"repro/internal/king"
	"repro/internal/netsim"
)

// ClusteringConfig parameterizes the Table I / Figs. 6–7 experiment.
type ClusteringConfig struct {
	// NumNodes is how many broadly distributed client DNS servers to
	// cluster (the paper uses 177).
	NumNodes int
	// Schedule drives redirection collection (default 10-minute probes for
	// one day).
	Schedule ProbeSchedule
	// Thresholds are the SMF similarity thresholds to summarize
	// (Table I uses 0.01, 0.1 and 0.5).
	Thresholds []float64
	// FocusThreshold selects the threshold used for the quality analysis of
	// Figs. 6–7 (the paper settles on 0.1).
	FocusThreshold float64
	// MaxDiameterMs drops clusters with larger diameters from the quality
	// analysis (the paper uses 75 ms — "larger clusters are few in number
	// and unlikely to be useful").
	MaxDiameterMs float64
	// SecondPass enables SMF's optional second pass.
	SecondPass bool
	// UseKing, when set, measures ground-truth distances with the King
	// technique (as the paper did) instead of reading the simulator's exact
	// RTTs.
	UseKing bool
}

func (c *ClusteringConfig) setDefaults() {
	if c.NumNodes <= 0 {
		c.NumNodes = 177
	}
	if c.Schedule.Interval == 0 {
		c.Schedule.Interval = 10 * time.Minute
	}
	if c.Schedule.Probes == 0 {
		c.Schedule.Probes = 144
	}
	if len(c.Thresholds) == 0 {
		c.Thresholds = []float64{0.01, 0.1, 0.5}
	}
	if c.FocusThreshold == 0 {
		c.FocusThreshold = crp.DefaultThreshold
	}
	if c.MaxDiameterMs == 0 {
		c.MaxDiameterMs = 75
	}
}

// AlgorithmResult is one row of Table I plus the quality statistics used by
// Figs. 6–7.
type AlgorithmResult struct {
	Label    string
	Summary  crp.Summary
	Clusters []crp.Cluster
	// Stats covers clusters of size ≥ 2 with diameter ≤ MaxDiameterMs.
	Stats []crp.ClusterStats
	// GoodBuckets counts good clusters with diameters in (0,25] and
	// (25,75] ms, Fig. 7's two buckets.
	GoodBuckets []int
}

// ClusteringOutcome is the complete clustering evaluation.
type ClusteringOutcome struct {
	Config ClusteringConfig
	Nodes  []netsim.HostID
	// CRPRows has one entry per threshold, in Thresholds order; Focus
	// indexes the FocusThreshold row. ASN is the baseline.
	CRPRows []AlgorithmResult
	Focus   int
	ASN     AlgorithmResult
}

// RunClustering reproduces the paper's clustering evaluation: CRP ratio maps
// are collected for a set of broadly distributed DNS servers, clustered with
// SMF at several thresholds, and compared against ASN-based clustering on
// the same nodes with the same ground-truth distances.
func (s *Scenario) RunClustering(cfg ClusteringConfig) (*ClusteringOutcome, error) {
	cfg.setDefaults()
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumNodes > len(s.Clients) {
		return nil, fmt.Errorf("experiment: %d nodes requested, only %d clients", cfg.NumNodes, len(s.Clients))
	}
	nodes := s.Clients[:cfg.NumNodes]
	evalAt := cfg.Schedule.End() + time.Minute

	dist, err := s.clusterDistance(nodes, evalAt, cfg.UseKing)
	if err != nil {
		return nil, err
	}

	maps, err := s.CollectRatioMaps(nodes, cfg.Schedule)
	if err != nil {
		return nil, err
	}
	crpNodes := make([]crp.Node, 0, len(nodes))
	for _, id := range nodes {
		crpNodes = append(crpNodes, crp.Node{ID: s.NodeID(id), Map: maps[id]})
	}

	outcome := &ClusteringOutcome{Config: cfg, Nodes: nodes, Focus: -1}
	for i, t := range cfg.Thresholds {
		clusters, err := crp.ClusterSMF(crpNodes, crp.ClusterConfig{
			Threshold:  t,
			SecondPass: cfg.SecondPass,
			Seed:       s.Params.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("SMF at t=%v: %w", t, err)
		}
		row, err := s.analyzeClusters(fmt.Sprintf("CRP (t=%g)", t), clusters, len(nodes), dist, cfg.MaxDiameterMs)
		if err != nil {
			return nil, err
		}
		outcome.CRPRows = append(outcome.CRPRows, row)
		if t == cfg.FocusThreshold {
			outcome.Focus = i
		}
	}
	if outcome.Focus < 0 {
		outcome.Focus = 0
	}

	table, err := asn.BuildTable(s.Topo)
	if err != nil {
		return nil, err
	}
	asnClusters, err := asn.Clusters(s.Topo, table, nodes, func(a, b netsim.HostID) float64 {
		return dist(s.NodeID(a), s.NodeID(b))
	})
	if err != nil {
		return nil, fmt.Errorf("asn clustering: %w", err)
	}
	outcome.ASN, err = s.analyzeClusters("ASN", asnClusters, len(nodes), dist, cfg.MaxDiameterMs)
	if err != nil {
		return nil, err
	}
	return outcome, nil
}

// clusterDistance builds the ground-truth DistanceFunc over the node set,
// fully precomputed so cluster evaluation is cheap and consistent.
func (s *Scenario) clusterDistance(nodes []netsim.HostID, at time.Duration, useKing bool) (crp.DistanceFunc, error) {
	var estimator *king.Estimator
	if useKing {
		var err error
		estimator, err = king.New(s.Topo, s.Candidates[0], 0)
		if err != nil {
			return nil, err
		}
	}
	matrix := make(map[crp.NodeID]map[crp.NodeID]float64, len(nodes))
	for _, id := range nodes {
		matrix[s.NodeID(id)] = make(map[crp.NodeID]float64, len(nodes))
	}
	for i, a := range nodes {
		for j := i + 1; j < len(nodes); j++ {
			b := nodes[j]
			var d float64
			if useKing {
				var err error
				d, err = estimator.EstimateMs(a, b, at)
				if err != nil {
					return nil, err
				}
			} else {
				d = s.TruthRTTMs(a, b, at)
			}
			matrix[s.NodeID(a)][s.NodeID(b)] = d
			matrix[s.NodeID(b)][s.NodeID(a)] = d
		}
	}
	return func(a, b crp.NodeID) float64 {
		if a == b {
			return 0
		}
		return matrix[a][b]
	}, nil
}

// analyzeClusters computes a Table I row and the Figs. 6–7 statistics.
func (s *Scenario) analyzeClusters(label string, clusters []crp.Cluster, total int, dist crp.DistanceFunc, maxDiameter float64) (AlgorithmResult, error) {
	stats, err := crp.EvaluateClusters(clusters, dist)
	if err != nil {
		return AlgorithmResult{}, err
	}
	kept := stats[:0]
	for _, st := range stats {
		if st.Diameter <= maxDiameter {
			kept = append(kept, st)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Intra < kept[j].Intra })
	return AlgorithmResult{
		Label:       label,
		Summary:     crp.Summarize(clusters, total),
		Clusters:    clusters,
		Stats:       kept,
		GoodBuckets: crp.GoodClusterCounts(kept, []float64{25, 75}),
	}, nil
}

// IntraCDF returns the sorted intracluster distances (the solid curve of
// Fig. 6) and, aligned with it, each cluster's intercluster distance (the
// circular points).
func (r AlgorithmResult) IntraCDF() (intra, inter []float64) {
	for _, st := range r.Stats {
		intra = append(intra, st.Intra)
		inter = append(inter, st.Inter)
	}
	return intra, inter
}

// GoodFraction is the fraction of evaluated clusters in the "good" region.
func (r AlgorithmResult) GoodFraction() float64 {
	if len(r.Stats) == 0 {
		return 0
	}
	n := 0
	for _, st := range r.Stats {
		if st.Good() {
			n++
		}
	}
	return float64(n) / float64(len(r.Stats))
}
