package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/crp"
	"repro/internal/cdn"
	"repro/internal/drift"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// The drift experiment scores the CDN-change detector end to end: a
// two-member fleet redirects a client population while the fault plane
// flaps or freezes the secondary CDN's mapping on a known schedule; the
// detector watches the service's ratio-map snapshot stream and its alarms
// are joined against faults.CDNEventSchedule — the compiled ground truth —
// for precision, recall and detection latency, swept across detector
// sensitivity × fault intensity. A churn-only cell re-homes clients' LDNS
// without touching any CDN and must stay alarm-free: the discriminator the
// whole subsystem exists for. Everything runs on the virtual clock with
// seeded draws, so the outcome is byte-identical across same-seed reruns.

// Fleet member namespaces of the drift evaluation.
const (
	DriftPrimaryNS   = "cdnA"
	DriftSecondaryNS = "cdnB"
)

// DriftParams sizes the drift evaluation.
type DriftParams struct {
	Seed        int64
	NumClients  int
	NumReplicas int
	// Interval is the probe cadence; every client resolves every (member,
	// name) pair once per tick.
	Interval time.Duration
	// Ticks is the run length; TicksPerFrame is the snapshot cadence in
	// ticks.
	Ticks         int
	TicksPerFrame int
	// Window is the per-node tracker window in probes.
	Window int
	// Sensitivities is the detector-sensitivity axis; DefaultSensitivity
	// is the one the pass/fail gates are evaluated at.
	Sensitivities      []float64
	DefaultSensitivity float64
	// SecondaryLoadScale makes the faulted CDN's mapping noisier than the
	// primary's.
	SecondaryLoadScale float64
}

// DefaultDriftParams returns the full-scale configuration.
func DefaultDriftParams() DriftParams {
	return DriftParams{
		Seed:               1,
		NumClients:         80,
		NumReplicas:        120,
		Interval:           time.Minute,
		Ticks:              150,
		TicksPerFrame:      2,
		Window:             40,
		Sensitivities:      []float64{0.5, 1, 2},
		DefaultSensitivity: 1,
		SecondaryLoadScale: 1.3,
	}
}

func (p *DriftParams) setDefaults() {
	d := DefaultDriftParams()
	if p.NumClients <= 0 {
		p.NumClients = d.NumClients
	}
	if p.NumReplicas <= 0 {
		p.NumReplicas = d.NumReplicas
	}
	if p.Interval <= 0 {
		p.Interval = d.Interval
	}
	if p.Ticks <= 0 {
		p.Ticks = d.Ticks
	}
	if p.TicksPerFrame <= 0 {
		p.TicksPerFrame = d.TicksPerFrame
	}
	if p.Window <= 0 {
		p.Window = d.Window
	}
	if len(p.Sensitivities) == 0 {
		p.Sensitivities = d.Sensitivities
	}
	if p.DefaultSensitivity <= 0 {
		p.DefaultSensitivity = d.DefaultSensitivity
	}
	if p.SecondaryLoadScale <= 0 {
		p.SecondaryLoadScale = d.SecondaryLoadScale
	}
}

// Horizon is the virtual run length.
func (p DriftParams) Horizon() time.Duration {
	return time.Duration(p.Ticks) * p.Interval
}

// driftScenario is one fault-intensity cell: a named fault schedule against
// the secondary CDN (or, for the churn control, against no CDN at all).
type driftScenario struct {
	name   string
	faults []faults.Fault
	// churn marks the LDNS-churn control cell: zero truth events, and the
	// gates require zero alarms.
	churn bool
}

func driftScenarios() []driftScenario {
	fd := func(d time.Duration) faults.Duration { return faults.Duration(d) }
	return []driftScenario{
		{
			name: "flap-low",
			faults: []faults.Fault{
				{Kind: faults.CDNFlap, CDN: DriftSecondaryNS, Start: fd(40 * time.Minute), Stop: fd(74 * time.Minute)},
			},
		},
		{
			name: "flap-high",
			faults: []faults.Fault{
				{Kind: faults.CDNFlap, CDN: DriftSecondaryNS, Start: fd(30 * time.Minute), Stop: fd(60 * time.Minute)},
				{Kind: faults.CDNFlap, CDN: DriftSecondaryNS, Start: fd(90 * time.Minute), Stop: fd(120 * time.Minute)},
			},
		},
		{
			name: "freeze",
			faults: []faults.Fault{
				{Kind: faults.CDNFreeze, CDN: DriftSecondaryNS, Start: fd(40 * time.Minute), Stop: fd(100 * time.Minute)},
			},
		},
		{
			name:  "churn-only",
			churn: true,
			faults: []faults.Fault{
				{Kind: faults.LDNSChurn, Rate: 0.6, Start: fd(40 * time.Minute), Stop: fd(100 * time.Minute)},
			},
		},
	}
}

// DriftDetection is one detector alarm, joined against the truth schedule.
type DriftDetection struct {
	Kind  string  `json:"kind"`
	NS    string  `json:"ns"`
	AtSec float64 `json:"at_sec"`
	Score float64 `json:"score,omitempty"`
	// Matched is true when the alarm fell inside an open truth window;
	// Fault is that truth event's fault index (-1 for false alarms).
	Matched bool `json:"matched"`
	Fault   int  `json:"fault"`
}

// DriftCell is one (scenario, sensitivity) point of the sweep.
type DriftCell struct {
	Scenario    string  `json:"scenario"`
	Sensitivity float64 `json:"sensitivity"`
	Frames      int     `json:"frames"`

	Truth       int `json:"truth"`
	Matched     int `json:"matched"`
	Missed      int `json:"missed"`
	FalseAlarms int `json:"false_alarms"`

	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// MeanLatencySec averages (detection - truth onset) over matches.
	MeanLatencySec float64 `json:"mean_latency_sec"`

	Detections []DriftDetection `json:"detections,omitempty"`
}

// DriftGate is one self-gating acceptance check.
type DriftGate struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// DriftOutcome is the full report; it carries no timings, so same-seed
// reruns produce the byte-identical file.
type DriftOutcome struct {
	Params      DriftParams                     `json:"params"`
	EpochLenSec float64                         `json:"epoch_len_sec"`
	HorizonSec  float64                         `json:"horizon_sec"`
	Truth       map[string]faults.EventSchedule `json:"truth"`
	Cells       []DriftCell                     `json:"cells"`
	Gates       []DriftGate                     `json:"gates"`
	AllPass     bool                            `json:"all_pass"`
}

// RunDrift executes the sensitivity × intensity sweep.
func RunDrift(p DriftParams) (*DriftOutcome, error) {
	p.setDefaults()
	tp := netsim.DefaultParams()
	tp.Seed = p.Seed
	tp.NumClients = p.NumClients
	tp.NumCandidates = 10
	tp.NumReplicas = p.NumReplicas
	topo, err := netsim.Generate(tp)
	if err != nil {
		return nil, fmt.Errorf("generate topology: %w", err)
	}

	out := &DriftOutcome{
		Params:      p,
		EpochLenSec: cdn.DefaultMappingEpoch.Seconds(),
		HorizonSec:  p.Horizon().Seconds(),
		Truth:       make(map[string]faults.EventSchedule),
	}
	for _, sc := range driftScenarios() {
		scenario := faults.Scenario{Seed: uint64(p.Seed), Faults: sc.faults}
		truth := scenario.CDNEventSchedule(cdn.DefaultMappingEpoch, p.Horizon())
		out.Truth[sc.name] = truth
		frames, err := collectDriftFrames(p, topo, scenario)
		if err != nil {
			return nil, fmt.Errorf("drift cell %s: %w", sc.name, err)
		}
		for _, sens := range p.Sensitivities {
			cell, err := scoreDriftCell(sc.name, sens, frames, truth)
			if err != nil {
				return nil, fmt.Errorf("drift cell %s @%v: %w", sc.name, sens, err)
			}
			out.Cells = append(out.Cells, *cell)
		}
	}
	out.Gates = driftGates(p, out.Cells)
	out.AllPass = true
	for _, g := range out.Gates {
		if !g.Pass {
			out.AllPass = false
		}
	}
	return out, nil
}

// collectDriftFrames drives the probe loop for one fault scenario and taps
// a snapshot frame every TicksPerFrame ticks.
func collectDriftFrames(p DriftParams, topo *netsim.Topology, scenario faults.Scenario) ([]crp.DriftFrame, error) {
	fleet, err := cdn.NewFleet(topo, []cdn.Config{
		{Namespace: DriftPrimaryNS},
		{Namespace: DriftSecondaryNS, LoadScale: p.SecondaryLoadScale},
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	plane, err := faults.New(topo, scenario, faults.WithRegistry(obs.NewRegistry()))
	if err != nil {
		return nil, fmt.Errorf("fault plane: %w", err)
	}
	for _, ns := range fleet.Namespaces() {
		if err := fleet.SetMapHook(ns, plane.MapHookFor(ns)); err != nil {
			return nil, err
		}
	}
	svc := crp.NewService(crp.WithWindow(p.Window))
	epoch := time.Date(2006, 11, 12, 0, 0, 0, 0, time.UTC)
	clients := topo.Clients()
	members := fleet.Members()
	var frames []crp.DriftFrame
	for t := 0; t < p.Ticks; t++ {
		at := time.Duration(t) * p.Interval
		for _, host := range clients {
			if plane.ProbeLost(host, at) {
				continue
			}
			ldns := plane.ResolverFor(host, at)
			node := crp.NodeID(topo.Host(host).Name)
			for _, m := range members {
				ns := crp.Namespace(m.Namespace())
				for _, name := range m.Names() {
					replicas, err := m.Redirect(name, ldns, at)
					if err != nil {
						return nil, fmt.Errorf("redirect %s/%s: %w", ns, name, err)
					}
					ids := make([]crp.ReplicaID, 0, len(replicas))
					for _, r := range replicas {
						if m.IsFallback(r) {
							continue
						}
						ids = append(ids, crp.Qualify(ns, crp.ReplicaID(topo.Host(r).Name)))
					}
					if len(ids) == 0 {
						continue
					}
					if err := svc.Observe(node, epoch.Add(at), ids...); err != nil {
						return nil, err
					}
				}
			}
		}
		if (t+1)%p.TicksPerFrame == 0 {
			frames = append(frames, svc.DriftFrame(epoch.Add(at)))
		}
	}
	return frames, nil
}

// scoreDriftCell replays one scenario's frames through a fresh detector at
// the given sensitivity and greedily joins its alarms to the truth windows:
// a detection matches the earliest still-unmatched truth event of the same
// kind whose CDN scope covers the alarm's namespace and whose
// [At, Deadline] window contains the alarm time.
func scoreDriftCell(name string, sens float64, frames []crp.DriftFrame, truth faults.EventSchedule) (*DriftCell, error) {
	det, err := drift.New(drift.Config{Sensitivity: sens}, drift.WithRegistry(obs.NewRegistry()))
	if err != nil {
		return nil, err
	}
	epoch := time.Date(2006, 11, 12, 0, 0, 0, 0, time.UTC)
	cell := &DriftCell{Scenario: name, Sensitivity: sens, Frames: len(frames), Truth: len(truth.Events)}
	matched := make([]bool, len(truth.Events))
	latencySum := 0.0
	for _, f := range frames {
		for _, ev := range det.ObserveFrame(f) {
			at := ev.At.Sub(epoch)
			d := DriftDetection{
				Kind: string(ev.Kind), NS: ev.NS, AtSec: at.Seconds(),
				Score: ev.Score, Fault: -1,
			}
			for i, te := range truth.Events {
				if matched[i] || te.Kind != d.Kind {
					continue
				}
				if te.CDN != "" && te.CDN != d.NS {
					continue
				}
				if at < te.At.D() || at > te.Deadline.D() {
					continue
				}
				matched[i] = true
				d.Matched, d.Fault = true, te.Fault
				cell.Matched++
				latencySum += (at - te.At.D()).Seconds()
				break
			}
			if !d.Matched {
				cell.FalseAlarms++
			}
			cell.Detections = append(cell.Detections, d)
		}
	}
	cell.Missed = cell.Truth - cell.Matched
	cell.Precision, cell.Recall = 1, 1
	if n := cell.Matched + cell.FalseAlarms; n > 0 {
		cell.Precision = float64(cell.Matched) / float64(n)
	}
	if cell.Truth > 0 {
		cell.Recall = float64(cell.Matched) / float64(cell.Truth)
	}
	if cell.Matched > 0 {
		cell.MeanLatencySec = latencySum / float64(cell.Matched)
	}
	return cell, nil
}

// driftGates evaluates the acceptance gates at the default sensitivity:
// aggregate precision >= 0.9 and recall >= 0.8 over the CDN-fault cells,
// and zero alarms of any kind on the churn-only control.
func driftGates(p DriftParams, cells []DriftCell) []DriftGate {
	churnNames := make(map[string]bool)
	for _, sc := range driftScenarios() {
		if sc.churn {
			churnNames[sc.name] = true
		}
	}
	truth, matchedN, falseN, churnAlarms := 0, 0, 0, 0
	for _, c := range cells {
		if c.Sensitivity != p.DefaultSensitivity {
			continue
		}
		if churnNames[c.Scenario] {
			churnAlarms += c.Matched + c.FalseAlarms
			continue
		}
		truth += c.Truth
		matchedN += c.Matched
		falseN += c.FalseAlarms
	}
	precision, recall := 1.0, 1.0
	if n := matchedN + falseN; n > 0 {
		precision = float64(matchedN) / float64(n)
	}
	if truth > 0 {
		recall = float64(matchedN) / float64(truth)
	}
	return []DriftGate{
		{
			Name: "precision", Pass: precision >= 0.9,
			Detail: fmt.Sprintf("fault cells @sens=%v: precision %.3f (matched %d, false %d), need >= 0.9",
				p.DefaultSensitivity, precision, matchedN, falseN),
		},
		{
			Name: "recall", Pass: recall >= 0.8,
			Detail: fmt.Sprintf("fault cells @sens=%v: recall %.3f (matched %d of %d truth events), need >= 0.8",
				p.DefaultSensitivity, recall, matchedN, truth),
		},
		{
			Name: "churn-quiet", Pass: churnAlarms == 0,
			Detail: fmt.Sprintf("churn-only cell @sens=%v: %d alarms, need 0 (LDNS churn must not read as a CDN event)",
				p.DefaultSensitivity, churnAlarms),
		},
	}
}

// RenderDrift formats the outcome as a table.
func RenderDrift(o *DriftOutcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "drift detector sweep: %d clients, %d ticks @ %v (frame every %d ticks), epoch %vs\n",
		o.Params.NumClients, o.Params.Ticks, o.Params.Interval, o.Params.TicksPerFrame, o.EpochLenSec)
	names := make([]string, 0, len(o.Truth))
	for name := range o.Truth {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  truth[%s]: %d events\n", name, len(o.Truth[name].Events))
	}
	fmt.Fprintf(&b, "%-12s %6s %7s %8s %7s %6s %10s %10s %12s\n",
		"scenario", "sens", "truth", "matched", "missed", "false", "precision", "recall", "latency(s)")
	for _, c := range o.Cells {
		fmt.Fprintf(&b, "%-12s %6.2f %7d %8d %7d %6d %10.3f %10.3f %12.1f\n",
			c.Scenario, c.Sensitivity, c.Truth, c.Matched, c.Missed, c.FalseAlarms,
			c.Precision, c.Recall, c.MeanLatencySec)
	}
	for _, g := range o.Gates {
		status := "PASS"
		if !g.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "gate %-12s %s  %s\n", g.Name, status, g.Detail)
	}
	return b.String()
}
