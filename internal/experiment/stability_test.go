package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestRunClusterStabilityShape(t *testing.T) {
	s := testScenario(t)
	out, err := s.RunClusterStability(StabilityConfig{
		NumNodes: 80,
		Window:   12 * time.Hour,
		Gap:      12 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.ClustersDay1 == 0 || out.ClustersDay2 == 0 {
		t.Fatalf("degenerate clusterings: %+v", out)
	}
	// Clusters are driven by stable geography, so assignments should agree
	// on the overwhelming majority of pairs and retain most co-memberships.
	if out.PairAgreement < 0.9 {
		t.Errorf("pairwise agreement %.2f; clusters not stable", out.PairAgreement)
	}
	// Roughly half of co-memberships persist across windows in this model
	// (SMF boundary churn); see EXPERIMENTS.md. Guard against collapse.
	if out.SameClusterRetained < 0.3 {
		t.Errorf("only %.0f%% of same-cluster pairs retained", 100*out.SameClusterRetained)
	}
}

func TestRunClusterStabilityValidation(t *testing.T) {
	s := testScenario(t)
	if _, err := s.RunClusterStability(StabilityConfig{NumNodes: 10_000}); err == nil {
		t.Error("too many nodes should fail")
	}
}

func TestRenderClusterStability(t *testing.T) {
	out := RenderClusterStability(&StabilityOutcome{
		PairAgreement: 0.97, SameClusterRetained: 0.8, ClustersDay1: 30, ClustersDay2: 31,
	})
	for _, want := range []string{"stability", "97%", "80%", "30"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
