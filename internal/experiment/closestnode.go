package experiment

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/crp"
	"repro/internal/netsim"
)

// ClosestNodeConfig parameterizes the Figs. 4–5 experiment.
type ClosestNodeConfig struct {
	// Schedule drives the redirection collection for clients and candidates.
	// The zero value uses a 10-minute interval for one day with an unbounded
	// window.
	Schedule ProbeSchedule
	// TopK is the size of the CRP "Top K" recommendation (the paper uses 5).
	TopK int
}

func (c *ClosestNodeConfig) setDefaults() {
	if c.Schedule.Interval == 0 {
		c.Schedule.Interval = 10 * time.Minute
	}
	if c.Schedule.Probes == 0 {
		c.Schedule.Probes = 144 // one day at 10-minute intervals
	}
	if c.TopK <= 0 {
		c.TopK = 5
	}
}

// ClientResult is one client's outcome in the closest-node experiment.
type ClientResult struct {
	Client netsim.HostID
	// Signal reports whether CRP had any nonzero similarity to a candidate.
	Signal bool
	// Optimal is the RTT to the truly closest candidate.
	Optimal float64
	// CRPTop1 is the RTT to CRP's best recommendation, CRPTopK the average
	// RTT over its top-K recommendations.
	CRPTop1 float64
	CRPTopK float64
	// CRPTop1Rank is the 0-based index of CRP's best recommendation in the
	// true RTT ordering of all candidates.
	CRPTop1Rank int
	// Meridian is the RTT to the Meridian recommendation, MeridianRank its
	// position in the true ordering.
	Meridian     float64
	MeridianRank int
}

// ClosestNodeOutcome is the complete result of the Figs. 4–5 experiment.
type ClosestNodeOutcome struct {
	Config  ClosestNodeConfig
	EvalAt  time.Duration
	Results []ClientResult
}

// RunClosestNode reproduces the paper's closest-node selection experiment:
// clients and candidates accumulate CDN redirections, then for every client
// we compare the candidate CRP recommends (Top-1 and Top-K) against the
// Meridian overlay's recommendation and the true optimum.
func (s *Scenario) RunClosestNode(cfg ClosestNodeConfig) (*ClosestNodeOutcome, error) {
	cfg.setDefaults()
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	evalAt := cfg.Schedule.End() + time.Minute

	candMaps, err := s.candidateMaps(cfg.Schedule)
	if err != nil {
		return nil, err
	}
	entry, err := s.meridianEntry()
	if err != nil {
		return nil, err
	}

	outcome := &ClosestNodeOutcome{Config: cfg, EvalAt: evalAt}
	for _, client := range s.Clients {
		tr, err := s.CollectTracker(client, cfg.Schedule)
		if err != nil {
			return nil, err
		}
		res, err := s.evaluateClient(client, tr.RatioMap(), candMaps, entry, evalAt, cfg.TopK)
		if err != nil {
			return nil, err
		}
		outcome.Results = append(outcome.Results, res)
	}
	return outcome, nil
}

// candidateMaps collects the candidate servers' ratio maps under a schedule.
func (s *Scenario) candidateMaps(ps ProbeSchedule) (map[crp.NodeID]crp.RatioMap, error) {
	maps, err := s.CollectRatioMaps(s.Candidates, ps)
	if err != nil {
		return nil, err
	}
	out := make(map[crp.NodeID]crp.RatioMap, len(maps))
	for id, m := range maps {
		out[s.NodeID(id)] = m
	}
	return out, nil
}

// meridianEntry picks the entry node for Meridian queries: the paper used
// its (healthy) measuring PlanetLab host, so we use the first member without
// an injected failure.
func (s *Scenario) meridianEntry() (netsim.HostID, error) {
	for _, id := range s.Meridian.Members() {
		if h, ok := s.Meridian.Health(id); ok && !h.Selfish && !h.Dead && !h.Partitioned {
			return id, nil
		}
	}
	return 0, errors.New("experiment: no healthy meridian entry node")
}

// evaluateClient scores CRP and Meridian recommendations for one client.
func (s *Scenario) evaluateClient(
	client netsim.HostID,
	clientMap crp.RatioMap,
	candMaps map[crp.NodeID]crp.RatioMap,
	entry netsim.HostID,
	evalAt time.Duration,
	topK int,
) (ClientResult, error) {
	res := ClientResult{Client: client}

	// True RTT ordering of candidates.
	type candRTT struct {
		id  netsim.HostID
		rtt float64
	}
	order := make([]candRTT, len(s.Candidates))
	rtts := make(map[netsim.HostID]float64, len(s.Candidates))
	for i, c := range s.Candidates {
		rtt := s.TruthRTTMs(client, c, evalAt)
		order[i] = candRTT{c, rtt}
		rtts[c] = rtt
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].rtt != order[j].rtt {
			return order[i].rtt < order[j].rtt
		}
		return order[i].id < order[j].id
	})
	rankOf := func(id netsim.HostID) int {
		for i, c := range order {
			if c.id == id {
				return i
			}
		}
		return len(order)
	}
	res.Optimal = order[0].rtt

	// CRP recommendations.
	ranked := crp.RankBySimilarity(clientMap, candMaps)
	if len(ranked) == 0 {
		return res, fmt.Errorf("experiment: no candidates ranked for client %d", client)
	}
	res.Signal = ranked[0].Similarity > 0
	top1, ok := s.HostOf(ranked[0].Node)
	if !ok {
		return res, fmt.Errorf("experiment: unknown candidate node %q", ranked[0].Node)
	}
	res.CRPTop1 = rtts[top1]
	res.CRPTop1Rank = rankOf(top1)
	k := topK
	if k > len(ranked) {
		k = len(ranked)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		id, ok := s.HostOf(ranked[i].Node)
		if !ok {
			return res, fmt.Errorf("experiment: unknown candidate node %q", ranked[i].Node)
		}
		sum += rtts[id]
	}
	res.CRPTopK = sum / float64(k)

	// Meridian recommendation.
	rec, _, err := s.Meridian.ClosestTo(entry, client, evalAt)
	if err != nil {
		return res, fmt.Errorf("meridian query for client %d: %w", client, err)
	}
	res.Meridian = rtts[rec]
	res.MeridianRank = rankOf(rec)
	return res, nil
}

// SortedSeries returns the outcome's per-client values for one metric,
// sorted ascending — the form in which the paper plots Figs. 4 and 5 (each
// curve sorted independently over the client population).
func (o *ClosestNodeOutcome) SortedSeries(metric func(ClientResult) float64) []float64 {
	out := make([]float64, 0, len(o.Results))
	for _, r := range o.Results {
		out = append(out, metric(r))
	}
	sort.Float64s(out)
	return out
}

// Headline statistics quoted in the paper's §V-A prose.
type ClosestNodeStats struct {
	Clients int
	// FracTopKNearMeridian is the fraction of clients where the CRP Top-K
	// latency differs from Meridian's by less than 7 ms (paper: ~65%).
	FracTopKNearMeridian float64
	// FracCRPBeatsMeridian is the fraction where CRP Top-K strictly
	// improves on Meridian (paper: >25%).
	FracCRPBeatsMeridian float64
	// FracMeridianTwiceCRP is the fraction where Meridian's RTT is at least
	// twice CRP Top-K's (paper: ~10%).
	FracMeridianTwiceCRP float64
	// MeanCRPTop1, MeanCRPTopK, MeanMeridian, MeanOptimal are population
	// means of the selected-server RTTs.
	MeanCRPTop1  float64
	MeanCRPTopK  float64
	MeanMeridian float64
	MeanOptimal  float64
	// FracNoSignal is the fraction of clients CRP had no information for.
	FracNoSignal float64
}

// Stats computes the headline statistics.
func (o *ClosestNodeOutcome) Stats() ClosestNodeStats {
	st := ClosestNodeStats{Clients: len(o.Results)}
	if st.Clients == 0 {
		return st
	}
	var near, beats, twice, noSignal int
	for _, r := range o.Results {
		if math.Abs(r.CRPTopK-r.Meridian) < 7 {
			near++
		}
		if r.CRPTopK < r.Meridian {
			beats++
		}
		if r.CRPTopK > 0 && r.Meridian >= 2*r.CRPTopK {
			twice++
		}
		if !r.Signal {
			noSignal++
		}
		st.MeanCRPTop1 += r.CRPTop1
		st.MeanCRPTopK += r.CRPTopK
		st.MeanMeridian += r.Meridian
		st.MeanOptimal += r.Optimal
	}
	n := float64(st.Clients)
	st.FracTopKNearMeridian = float64(near) / n
	st.FracCRPBeatsMeridian = float64(beats) / n
	st.FracMeridianTwiceCRP = float64(twice) / n
	st.FracNoSignal = float64(noSignal) / n
	st.MeanCRPTop1 /= n
	st.MeanCRPTopK /= n
	st.MeanMeridian /= n
	st.MeanOptimal /= n
	return st
}
