package experiment

import (
	"fmt"
	"sort"
	"time"

	"repro/crp"
	"repro/internal/netsim"
)

// The paper's Figs. 8–9 study how the probe interval and the probe window
// size affect CRP's closest-node quality, measured as the *average rank* of
// the recommended server in the true RTT ordering (rank 0 = optimal). This
// file implements both sweeps over a multi-day virtual experiment.

// RankSweepConfig parameterizes the sensitivity sweeps.
type RankSweepConfig struct {
	// Duration is the total virtual experiment span (default 13 days, the
	// paper's November 12–25 window).
	Duration time.Duration
	// CandidateInterval is the probing interval for candidate servers
	// (default 10 minutes).
	CandidateInterval time.Duration
	// DecisionPoints is how many selection decisions are averaged per
	// client, spaced through the second half of the experiment (default 5).
	DecisionPoints int
}

func (c *RankSweepConfig) setDefaults() {
	if c.Duration <= 0 {
		c.Duration = 13 * 24 * time.Hour
	}
	if c.CandidateInterval <= 0 {
		c.CandidateInterval = 10 * time.Minute
	}
	if c.DecisionPoints <= 0 {
		c.DecisionPoints = 5
	}
}

// RankSeries is one curve of Fig. 8 or Fig. 9: per-client average ranks,
// sorted ascending for plotting. Clients for which CRP never had signal at
// any decision point are excluded, which is why the paper's long-interval
// curves cover fewer DNS servers.
type RankSeries struct {
	Label    string
	AvgRanks []float64
	// ClientsTotal is the full client population; ClientsWithSignal is the
	// number plotted.
	ClientsTotal      int
	ClientsWithSignal int
}

// Mean returns the mean of the per-client average ranks.
func (rs RankSeries) Mean() float64 {
	if len(rs.AvgRanks) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range rs.AvgRanks {
		s += r
	}
	return s / float64(len(rs.AvgRanks))
}

// lookupHistory is a host's full redirection history: one entry per DNS
// lookup (probe step × CDN name), in time order.
type lookupHistory struct {
	times []time.Duration
	sets  [][]crp.ReplicaID
}

// collectHistory gathers a host's lookups under the schedule.
func (s *Scenario) collectHistory(host netsim.HostID, ps ProbeSchedule) (lookupHistory, error) {
	if err := ps.Validate(); err != nil {
		return lookupHistory{}, err
	}
	var h lookupHistory
	for i := 0; i < ps.Probes; i++ {
		at := ps.Start + time.Duration(i)*ps.Interval
		for _, name := range s.CDN.Names() {
			ids, err := s.lookup(name, host, at)
			if err != nil {
				return lookupHistory{}, err
			}
			if len(ids) == 0 {
				continue // lookup yielded only filtered fallback answers
			}
			h.times = append(h.times, at)
			h.sets = append(h.sets, ids)
		}
	}
	return h, nil
}

// mapUpTo builds the ratio map from the last `window` lookups at or before
// t (window 0 = all lookups so far).
func (h lookupHistory) mapUpTo(t time.Duration, window int) crp.RatioMap {
	end := sort.Search(len(h.times), func(i int) bool { return h.times[i] > t })
	start := 0
	if window > 0 && end-window > 0 {
		start = end - window
	}
	m := make(crp.RatioMap)
	n := end - start
	if n <= 0 {
		return m
	}
	perLookup := 1 / float64(n)
	for i := start; i < end; i++ {
		w := perLookup / float64(len(h.sets[i]))
		for _, r := range h.sets[i] {
			m[r] += w
		}
	}
	return m
}

// rankContext caches, per client, the true candidate orderings at each
// decision time, shared across all series of a sweep.
type rankContext struct {
	decisions []time.Duration
	// rankAt[d][candidate] is the candidate's rank at decision d.
	rankAt []map[netsim.HostID]int
}

func (s *Scenario) newRankContext(client netsim.HostID, cfg RankSweepConfig) rankContext {
	ctx := rankContext{}
	for i := 0; i < cfg.DecisionPoints; i++ {
		frac := 0.5 + 0.5*float64(i+1)/float64(cfg.DecisionPoints)
		ctx.decisions = append(ctx.decisions, time.Duration(float64(cfg.Duration)*frac))
	}
	for _, at := range ctx.decisions {
		type candRTT struct {
			id  netsim.HostID
			rtt float64
		}
		order := make([]candRTT, len(s.Candidates))
		for i, c := range s.Candidates {
			order[i] = candRTT{c, s.TruthRTTMs(client, c, at)}
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].rtt != order[j].rtt {
				return order[i].rtt < order[j].rtt
			}
			return order[i].id < order[j].id
		})
		ranks := make(map[netsim.HostID]int, len(order))
		for i, c := range order {
			ranks[c.id] = i
		}
		ctx.rankAt = append(ctx.rankAt, ranks)
	}
	return ctx
}

// avgRank evaluates one client's average Top-1 rank for a history+window
// combination. ok is false when CRP had no signal at every decision point.
func (s *Scenario) avgRank(
	ctx rankContext,
	h lookupHistory,
	window int,
	candMaps map[crp.NodeID]crp.RatioMap,
) (float64, bool) {
	sum, n := 0.0, 0
	for di, at := range ctx.decisions {
		m := h.mapUpTo(at, window)
		if len(m) == 0 {
			continue
		}
		best, ok := crp.SelectClosest(m, candMaps)
		if !ok {
			continue
		}
		id, found := s.HostOf(best.Node)
		if !found {
			continue
		}
		sum += float64(ctx.rankAt[di][id])
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// scheduleFor builds a probe schedule covering the sweep duration at the
// given interval.
func scheduleFor(interval, duration time.Duration) ProbeSchedule {
	probes := int(duration/interval) + 1
	return ProbeSchedule{Interval: interval, Probes: probes}
}

// RunProbeIntervalSweep reproduces Fig. 8: the average rank of CRP's Top-1
// recommendation under different probe intervals (the paper uses 20, 100,
// 500 and 2000 minutes) with an unbounded window.
func (s *Scenario) RunProbeIntervalSweep(intervals []time.Duration, cfg RankSweepConfig) ([]RankSeries, error) {
	cfg.setDefaults()
	if len(intervals) == 0 {
		return nil, fmt.Errorf("experiment: no intervals")
	}
	candMaps, err := s.candidateMaps(scheduleFor(cfg.CandidateInterval, cfg.Duration))
	if err != nil {
		return nil, err
	}

	series := make([]RankSeries, len(intervals))
	for i, iv := range intervals {
		series[i].Label = fmt.Sprintf("Top1 %d mins", int(iv.Minutes()))
		series[i].ClientsTotal = len(s.Clients)
	}
	for _, client := range s.Clients {
		ctx := s.newRankContext(client, cfg)
		for i, iv := range intervals {
			h, err := s.collectHistory(client, scheduleFor(iv, cfg.Duration))
			if err != nil {
				return nil, err
			}
			if r, ok := s.avgRank(ctx, h, 0, candMaps); ok {
				series[i].AvgRanks = append(series[i].AvgRanks, r)
			}
		}
	}
	finishSeries(series)
	return series, nil
}

// RunWindowSweep reproduces Fig. 9: the average rank of CRP's Top-1
// recommendation under different probe window sizes (the paper uses all, 30,
// 10 and 5 probes) with a fixed probe interval (the paper uses 10 minutes).
func (s *Scenario) RunWindowSweep(windows []int, probeInterval time.Duration, cfg RankSweepConfig) ([]RankSeries, error) {
	cfg.setDefaults()
	if len(windows) == 0 {
		return nil, fmt.Errorf("experiment: no windows")
	}
	if probeInterval <= 0 {
		probeInterval = 10 * time.Minute
	}
	candMaps, err := s.candidateMaps(scheduleFor(cfg.CandidateInterval, cfg.Duration))
	if err != nil {
		return nil, err
	}

	series := make([]RankSeries, len(windows))
	for i, w := range windows {
		if w == 0 {
			series[i].Label = "Top1 all probes"
		} else {
			series[i].Label = fmt.Sprintf("Top1 %d probes", w)
		}
		series[i].ClientsTotal = len(s.Clients)
	}
	sched := scheduleFor(probeInterval, cfg.Duration)
	for _, client := range s.Clients {
		ctx := s.newRankContext(client, cfg)
		h, err := s.collectHistory(client, sched)
		if err != nil {
			return nil, err
		}
		for i, w := range windows {
			if r, ok := s.avgRank(ctx, h, w, candMaps); ok {
				series[i].AvgRanks = append(series[i].AvgRanks, r)
			}
		}
	}
	finishSeries(series)
	return series, nil
}

func finishSeries(series []RankSeries) {
	for i := range series {
		sort.Float64s(series[i].AvgRanks)
		series[i].ClientsWithSignal = len(series[i].AvgRanks)
	}
}
